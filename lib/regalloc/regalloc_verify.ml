(* Independent verification of the two register allocators.  Both
   checks reconstruct what the allocator did from its input and output
   alone — instruction identities survive rewriting ([Instr.map_src_regs],
   [map_dst] and record updates preserve [id]; only inserted spill code,
   compensation moves and init loads are fresh) — and prove the
   allocation sound against a liveness analysis and a call-graph SCC
   computed here, not the ones the allocators used.

   Temp allocation ([check_temp_alloc]): pairing each input instruction
   with its output twin yields the virtual-to-physical assignment at
   every def and use.  The checks are:
   - consistency: one non-scratch physical register per virtual, never
     mixed with scratch uses (a spilled value lives in memory and only
     ever surfaces in scratch registers);
   - partition bounds: assigned registers come from the configuration's
     temp pool;
   - no clobbered live range: at a definition of [v] assigned [p], no
     other virtual [w] also assigned [p] may be in the def's
     instruction-level live-out;
   - spill-code shape: every inserted instruction is a stack-slot load
     into a scratch register or a store of scratch1.

   Global allocation ([check_global_alloc]): the promoted-home table is
   reconstructed from the output — globals from the init loads at the
   main entry (fresh loads from a [Mem_info.Global] region into a home
   register), locals as the remaining home registers written inside
   functions.  The checks are:
   - each global home holds exactly one global and vice versa;
   - a local home is touched by exactly one function, and that function
     is on no call-graph cycle (Tarjan SCC over the output's call
     graph) — a recursive instance would clobber its caller's value;
   - home indices stay inside the configuration's home partition;
   - shape of the rewrite: instructions deleted by promotion were
     loads/stores of promotable regions; inserted ones are the init
     loads and register-to-register compensation/store moves. *)

open Ilp_ir
open Ilp_machine
open Ilp_analysis

let is_scratch r =
  Reg.equal r Regfile.scratch1 || Reg.equal r Regfile.scratch2

let err ~check ~func ?block ?instr msg =
  Diagnostics.make Error ~check ~func ?block ?instr msg

(* ------------------------------------------------------------------ *)
(* Temp allocation                                                     *)
(* ------------------------------------------------------------------ *)

type obs = Phys of Reg.t | Spilled

let check_temp_alloc (config : Config.t) ~(before : Func.t)
    ~(after : Func.t) =
  let check = "temp-alloc" in
  let fname = before.Func.name in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let after_by_id : (int, Instr.t) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) -> Hashtbl.replace after_by_id i.Instr.id i)
        b.Block.instrs)
    after.Func.blocks;
  let temp_pool =
    List.fold_left
      (fun acc r -> Reg.Set.add r acc)
      Reg.Set.empty (Regfile.temps config)
  in
  (* vreg index -> observed assignment, with consistency checking *)
  let seen : (int, obs) Hashtbl.t = Hashtbl.create 128 in
  let observe ~block ~instr v obs =
    let k = Reg.index v in
    match (Hashtbl.find_opt seen k, obs) with
    | None, _ -> Hashtbl.replace seen k obs
    | Some Spilled, Spilled -> ()
    | Some (Phys p), Phys q when Reg.equal p q -> ()
    | Some prev, _ ->
        let show = function
          | Phys p -> Reg.to_string p
          | Spilled -> "<spilled>"
        in
        emit
          (err ~check ~func:fname ~block ~instr
             (Fmt.str "%a mapped to %s here but %s elsewhere" Reg.pp v
                (show obs) (show prev)))
  in
  let record ~block ~instr v p =
    if is_scratch p then observe ~block ~instr v Spilled
    else begin
      observe ~block ~instr v (Phys p);
      if not (Reg.Set.mem p temp_pool) then
        emit
          (err ~check ~func:fname ~block ~instr
             (Fmt.str "%a assigned %a, outside the temp partition" Reg.pp v
                Reg.pp p))
    end
  in
  (* correlate every input instruction with its output twin *)
  let cfg = Cfg_info.build before in
  Array.iter
    (fun (b : Block.t) ->
      let block = Label.to_string b.Block.label in
      List.iter
        (fun (i : Instr.t) ->
          let instr = Instr.to_string i in
          match Hashtbl.find_opt after_by_id i.Instr.id with
          | None ->
              emit
                (err ~check ~func:fname ~block ~instr
                   "instruction disappeared during temp allocation")
          | Some o ->
              (match (i.Instr.dst, o.Instr.dst) with
              | Some v, Some p when Reg.is_virtual v ->
                  if Reg.is_virtual p then
                    emit
                      (err ~check ~func:fname ~block ~instr
                         (Fmt.str "destination %a still virtual" Reg.pp p))
                  else record ~block ~instr v p
              | _ -> ());
              let rec pair ss os =
                match (ss, os) with
                | Instr.Oreg v :: ss, Instr.Oreg p :: os ->
                    if Reg.is_virtual v then
                      if Reg.is_virtual p then
                        emit
                          (err ~check ~func:fname ~block ~instr
                             (Fmt.str "source %a still virtual" Reg.pp p))
                      else record ~block ~instr v p;
                    pair ss os
                | _ :: ss, _ :: os -> pair ss os
                | [], [] -> ()
                | _ ->
                    emit
                      (err ~check ~func:fname ~block ~instr
                         "operand count changed during temp allocation")
              in
              pair i.Instr.srcs o.Instr.srcs)
        b.Block.instrs)
    cfg.Cfg_info.blocks;
  (* no two simultaneously live virtuals on one physical register: at a
     def of [v], nothing else carrying [v]'s register may be live *)
  let live = Liveness.compute cfg in
  let phys_of v =
    match Hashtbl.find_opt seen (Reg.index v) with
    | Some (Phys p) -> Some p
    | Some Spilled | None -> None
  in
  Array.iteri
    (fun bi (b : Block.t) ->
      let block = Label.to_string b.Block.label in
      let live_after = Liveness.instr_live_out cfg live bi in
      List.iteri
        (fun k (i : Instr.t) ->
          List.iter
            (fun v ->
              if Reg.is_virtual v then
                match phys_of v with
                | None -> ()
                | Some p ->
                    Reg.Set.iter
                      (fun w ->
                        if (not (Reg.equal w v)) && phys_of w = Some p then
                          emit
                            (err ~check ~func:fname ~block
                               ~instr:(Instr.to_string i)
                               (Fmt.str
                                  "%a clobbers %a: both share %a and %a is \
                                   live here"
                                  Reg.pp v Reg.pp w Reg.pp p Reg.pp w)))
                      live_after.(k))
            (Instr.defs i))
        b.Block.instrs)
    cfg.Cfg_info.blocks;
  (* inserted instructions must be spill code *)
  let before_ids : (int, unit) Hashtbl.t = Hashtbl.create 256 in
  List.iter
    (fun (b : Block.t) ->
      List.iter
        (fun (i : Instr.t) -> Hashtbl.replace before_ids i.Instr.id ())
        b.Block.instrs)
    before.Func.blocks;
  List.iter
    (fun (b : Block.t) ->
      let block = Label.to_string b.Block.label in
      List.iter
        (fun (i : Instr.t) ->
          if not (Hashtbl.mem before_ids i.Instr.id) then
            let ok =
              match (i.Instr.op, i.Instr.dst, i.Instr.srcs) with
              | Opcode.Ld, Some d, [ Instr.Oreg base ] ->
                  is_scratch d && Reg.equal base Reg.sp
              | Opcode.St, None, [ Instr.Oreg v; Instr.Oreg base ] ->
                  Reg.equal v Regfile.scratch1 && Reg.equal base Reg.sp
              | _ -> false
            in
            if not ok then
              emit
                (err ~check ~func:fname ~block ~instr:(Instr.to_string i)
                   "inserted instruction is not spill code"))
        b.Block.instrs)
    after.Func.blocks;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Global allocation                                                   *)
(* ------------------------------------------------------------------ *)

(* Tarjan's strongly connected components over the call graph;
   a function is "cyclic" when its SCC has more than one member or it
   calls itself directly.  Deliberately a different algorithm from the
   allocator's per-function DFS. *)
let cyclic_functions (p : Program.t) =
  let callees : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (f : Func.t) ->
      let targets =
        List.concat_map
          (fun (b : Block.t) ->
            List.filter_map
              (fun (i : Instr.t) ->
                if Instr.is_call i then
                  Option.map Label.to_string i.Instr.target
                else None)
              b.Block.instrs)
          f.Func.blocks
      in
      Hashtbl.replace callees f.Func.name targets)
    p.Program.functions;
  let index : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let lowlink : (string, int) Hashtbl.t = Hashtbl.create 32 in
  let on_stack : (string, unit) Hashtbl.t = Hashtbl.create 32 in
  let stack = ref [] in
  let counter = ref 0 in
  let cyclic : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  let rec strongconnect v =
    Hashtbl.replace index v !counter;
    Hashtbl.replace lowlink v !counter;
    incr counter;
    stack := v :: !stack;
    Hashtbl.replace on_stack v ();
    List.iter
      (fun w ->
        if Hashtbl.mem callees w then
          if not (Hashtbl.mem index w) then begin
            strongconnect w;
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find lowlink w))
          end
          else if Hashtbl.mem on_stack w then
            Hashtbl.replace lowlink v
              (min (Hashtbl.find lowlink v) (Hashtbl.find index w)))
      (Option.value (Hashtbl.find_opt callees v) ~default:[]);
    if Hashtbl.find lowlink v = Hashtbl.find index v then begin
      (* pop the component rooted at v *)
      let rec pop acc =
        match !stack with
        | w :: rest ->
            stack := rest;
            Hashtbl.remove on_stack w;
            if String.equal w v then w :: acc else pop (w :: acc)
        | [] -> acc
      in
      let comp = pop [] in
      match comp with
      | [ single ] ->
          (* singleton: cyclic only on a direct self-call *)
          let selfcall =
            List.exists (String.equal single)
              (Option.value (Hashtbl.find_opt callees single) ~default:[])
          in
          if selfcall then Hashtbl.replace cyclic single ()
      | _ -> List.iter (fun w -> Hashtbl.replace cyclic w ()) comp
    end
  in
  List.iter
    (fun (f : Func.t) ->
      if not (Hashtbl.mem index f.Func.name) then strongconnect f.Func.name)
    p.Program.functions;
  fun name -> Hashtbl.mem cyclic name

let check_global_alloc (config : Config.t) ~(before : Program.t)
    ~(after : Program.t) =
  let check = "global-alloc" in
  let diags = ref [] in
  let emit d = diags := d :: !diags in
  let home_base = Regfile.home_base config in
  let file_size = Regfile.file_size config in
  let is_home r =
    let k = Reg.index r in
    (not (Reg.is_virtual r)) && k >= home_base
  in
  let before_ids : (int, Instr.t) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) -> Hashtbl.replace before_ids i.Instr.id i)
            b.Block.instrs)
        f.Func.blocks)
    before.Program.functions;
  (* the global-home table, from main's fresh entry init loads *)
  let global_of_home : (int, string) Hashtbl.t = Hashtbl.create 16 in
  let home_of_global : (string, Reg.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) ->
      if String.equal f.Func.name "main" then
        match f.Func.blocks with
        | entry :: _ ->
            List.iter
              (fun (i : Instr.t) ->
                if not (Hashtbl.mem before_ids i.Instr.id) then
                  match (i.Instr.op, i.Instr.dst, i.Instr.mem) with
                  | ( Opcode.Ld,
                      Some h,
                      Some { Mem_info.region = Mem_info.Global g; _ } )
                    when is_home h ->
                      if Hashtbl.mem global_of_home (Reg.index h) then
                        emit
                          (err ~check ~func:"main"
                             ~block:(Label.to_string entry.Block.label)
                             ~instr:(Instr.to_string i)
                             (Fmt.str "home %a initialized twice" Reg.pp h))
                      else begin
                        Hashtbl.replace global_of_home (Reg.index h) g;
                        match Hashtbl.find_opt home_of_global g with
                        | Some h' when not (Reg.equal h h') ->
                            emit
                              (err ~check ~func:"main"
                                 ~block:(Label.to_string entry.Block.label)
                                 ~instr:(Instr.to_string i)
                                 (Fmt.str "global %s has homes %a and %a" g
                                    Reg.pp h Reg.pp h'))
                        | Some _ -> ()
                        | None -> Hashtbl.replace home_of_global g h
                      end
                  | _ -> ())
              entry.Block.instrs
        | [] -> ())
    after.Program.functions;
  (* which functions touch each non-global home *)
  let touchers : (int, (string * string * Instr.t) list) Hashtbl.t =
    Hashtbl.create 16
  in
  let is_init_load (i : Instr.t) fname =
    String.equal fname "main"
    && (not (Hashtbl.mem before_ids i.Instr.id))
    && i.Instr.op = Opcode.Ld
    &&
    match i.Instr.mem with
    | Some { Mem_info.region = Mem_info.Global _; _ } -> true
    | _ -> false
  in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              let touch r =
                if
                  is_home r
                  && (not (Hashtbl.mem global_of_home (Reg.index r)))
                  && not (is_init_load i f.Func.name)
                then
                  let prev =
                    Option.value
                      (Hashtbl.find_opt touchers (Reg.index r))
                      ~default:[]
                  in
                  Hashtbl.replace touchers (Reg.index r)
                    ((f.Func.name, Label.to_string b.Block.label, i) :: prev)
              in
              List.iter touch (Instr.defs i);
              List.iter touch (Instr.uses i);
              (* bounds of every home-partition register in sight *)
              List.iter
                (fun r ->
                  if (not (Reg.is_virtual r)) && Reg.index r >= file_size then
                    emit
                      (err ~check ~func:f.Func.name
                         ~block:(Label.to_string b.Block.label)
                         ~instr:(Instr.to_string i)
                         (Fmt.str
                            "%a is outside the configured register file \
                             (size %d)"
                            Reg.pp r file_size)))
                (Instr.defs i @ Instr.src_regs i))
            b.Block.instrs)
        f.Func.blocks)
    after.Program.functions;
  let is_cyclic = cyclic_functions after in
  Hashtbl.iter
    (fun h uses ->
      let funcs =
        List.sort_uniq String.compare (List.map (fun (f, _, _) -> f) uses)
      in
      match funcs with
      | [] -> ()
      | [ f ] ->
          if is_cyclic f then
            let _, block, i =
              List.nth uses (List.length uses - 1)
            in
            emit
              (err ~check ~func:f ~block ~instr:(Instr.to_string i)
                 (Fmt.str
                    "local home %a of %s would be clobbered across a \
                     call-graph cycle"
                    Reg.pp (Reg.of_index h) f))
      | many ->
          let _, block, i = List.nth uses (List.length uses - 1) in
          emit
            (err ~check ~func:(List.hd many) ~block ~instr:(Instr.to_string i)
               (Fmt.str "local home %a shared by functions %s" Reg.pp
                  (Reg.of_index h)
                  (String.concat ", " many))))
    touchers;
  (* shape of the rewrite: deletions are promotable-region memory ops,
     insertions are init loads or register moves *)
  let after_ids : (int, unit) Hashtbl.t = Hashtbl.create 1024 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) -> Hashtbl.replace after_ids i.Instr.id ())
            b.Block.instrs)
        f.Func.blocks)
    after.Program.functions;
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              if not (Hashtbl.mem after_ids i.Instr.id) then
                (* promotion deletes loads (uses substituted) and
                   replaces stores by fresh moves *)
                let promotable =
                  match i.Instr.mem with
                  | Some { Mem_info.region = Mem_info.Global _; _ }
                  | Some { Mem_info.region = Mem_info.Stack_slot _; _ } ->
                      Instr.is_load i || Instr.is_store i
                  | _ -> false
                in
                if not promotable then
                  emit
                    (err ~check ~func:f.Func.name
                       ~block:(Label.to_string b.Block.label)
                       ~instr:(Instr.to_string i)
                       "instruction disappeared during global allocation"))
            b.Block.instrs)
        f.Func.blocks)
    before.Program.functions;
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              if not (Hashtbl.mem before_ids i.Instr.id) then
                let ok =
                  is_init_load i f.Func.name
                  ||
                  match i.Instr.op with
                  | Opcode.Mov | Opcode.Li | Opcode.Fli -> true
                  | _ -> false
                in
                if not ok then
                  emit
                    (err ~check ~func:f.Func.name
                       ~block:(Label.to_string b.Block.label)
                       ~instr:(Instr.to_string i)
                       "inserted instruction is neither an init load nor a \
                        move"))
            b.Block.instrs)
        f.Func.blocks)
    after.Program.functions;
  List.rev !diags

(* ------------------------------------------------------------------ *)
(* Program-level drivers                                               *)
(* ------------------------------------------------------------------ *)

let check_temp_alloc_program (config : Config.t) ~(before : Program.t)
    ~(after : Program.t) =
  let after_funcs : (string, Func.t) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun (f : Func.t) -> Hashtbl.replace after_funcs f.Func.name f)
    after.Program.functions;
  List.concat_map
    (fun (f : Func.t) ->
      match Hashtbl.find_opt after_funcs f.Func.name with
      | Some o -> check_temp_alloc config ~before:f ~after:o
      | None ->
          [ err ~check:"temp-alloc" ~func:f.Func.name
              "function disappeared during temp allocation" ])
    before.Program.functions
