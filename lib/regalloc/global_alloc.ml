(* Global register allocation: promoting variables into home registers
   (Section 3 and Section 4.4 of the paper, after Wall's link-time
   allocator [16]).

   Scalar global variables and scalar locals of non-recursive functions
   are candidates.  Estimated dynamic use counts — static access counts
   weighted by 10^loop-depth — rank the candidates, and the top
   [home_regs] get a dedicated home register each, program-wide.  Loads
   from a promoted variable disappear (uses are substituted); stores
   become register moves.

   Locals of functions on call-graph cycles are excluded (a recursive
   instance would clobber its caller's value), as are parameters (they
   travel through memory by calling convention), arrays, and the
   [__sink] checksum cell (its stores are the benchmarks' observable
   output). *)

open Ilp_ir
open Ilp_machine
open Ilp_opt
open Ilp_analysis

type candidate =
  | Cand_global of string
  | Cand_local of string * int  (** function name, slot *)

let candidate_of_region = function
  | Mem_info.Global g when not (String.equal g "__sink") ->
      Some (Cand_global g)
  | Mem_info.Stack_slot (f, slot) -> Some (Cand_local (f, slot))
  | Mem_info.Global _ | Mem_info.Global_array _ | Mem_info.Global_array_view _
  | Mem_info.Stack_array _ | Mem_info.Arg_slot _ | Mem_info.Unknown ->
      None

(* Functions involved in call-graph cycles (including self-recursion). *)
let recursive_functions (p : Program.t) =
  let callees : (string, string list) Hashtbl.t = Hashtbl.create 32 in
  List.iter
    (fun (f : Func.t) ->
      let targets =
        List.concat_map
          (fun (b : Block.t) ->
            List.filter_map
              (fun (i : Instr.t) ->
                if Instr.is_call i then
                  Option.map Label.to_string i.Instr.target
                else None)
              b.Block.instrs)
          f.Func.blocks
      in
      Hashtbl.replace callees f.Func.name targets)
    p.Program.functions;
  let recursive : (string, unit) Hashtbl.t = Hashtbl.create 8 in
  (* DFS from each function looking for a path back to itself *)
  List.iter
    (fun (f : Func.t) ->
      let name = f.Func.name in
      let visited : (string, unit) Hashtbl.t = Hashtbl.create 16 in
      let rec reachable from =
        match Hashtbl.find_opt callees from with
        | None -> false
        | Some targets ->
            List.exists
              (fun t ->
                String.equal t name
                || (not (Hashtbl.mem visited t))
                   && begin
                        Hashtbl.replace visited t ();
                        reachable t
                      end)
              targets
      in
      if reachable name then Hashtbl.replace recursive name ())
    p.Program.functions;
  fun name -> Hashtbl.mem recursive name

(* Estimated dynamic accesses of each candidate. *)
let usage_counts (p : Program.t) is_recursive =
  let counts : (candidate, float) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) ->
      let cfg = Cfg_info.build f in
      let loops = Loops.compute cfg in
      Array.iteri
        (fun bi (b : Block.t) ->
          let weight = 10.0 ** float_of_int (min 5 (Loops.depth loops bi)) in
          List.iter
            (fun (i : Instr.t) ->
              match i.Instr.mem with
              | Some { Mem_info.region; _ } when Instr.is_memory i -> (
                  match candidate_of_region region with
                  | Some (Cand_local (g, _))
                    when is_recursive g || not (String.equal g f.Func.name) ->
                      ()
                  | Some c ->
                      let prev =
                        Option.value (Hashtbl.find_opt counts c) ~default:0.0
                      in
                      Hashtbl.replace counts c (prev +. weight)
                  | None -> ())
              | _ -> ())
            b.Block.instrs)
        cfg.Cfg_info.blocks)
    p.Program.functions;
  counts

(* Choose the top candidates and assign home registers. *)
let choose_homes (config : Config.t) counts =
  let ranked =
    Hashtbl.fold (fun c w acc -> (c, w) :: acc) counts []
    |> List.sort (fun (c1, w1) (c2, w2) ->
           match compare w2 w1 with 0 -> compare c1 c2 | n -> n)
  in
  let homes = Regfile.homes config in
  let table : (candidate, Reg.t) Hashtbl.t = Hashtbl.create 32 in
  List.iteri
    (fun i (c, _) ->
      match List.nth_opt homes i with
      | Some r -> Hashtbl.replace table c r
      | None -> ())
    ranked;
  table

let promoted_reg table region =
  match candidate_of_region region with
  | Some c -> Hashtbl.find_opt table c
  | None -> None

(* Rewrite one function: loads from promoted variables vanish, stores
   become moves.

   A deleted load's destination register is substituted by the home
   register — but only while the home still holds that value.  When the
   home is redefined (a store-turned-move, or a call, since callees
   write their own promoted variables) and the substituted register has
   remaining uses, a compensating move materialises the old value just
   before the redefinition. *)
let rewrite_func table (f : Func.t) =
  let deletable = Locality.block_local_vregs f in
  let home_regs =
    Hashtbl.fold (fun _ r acc -> Reg.Set.add r acc) table Reg.Set.empty
  in
  let rewrite_block (b : Block.t) =
    let instrs = Array.of_list b.Block.instrs in
    (* last source-use position of each virtual register *)
    let last_use : (int, int) Hashtbl.t = Hashtbl.create 32 in
    Array.iteri
      (fun k i ->
        List.iter
          (fun r ->
            if Reg.is_virtual r then Hashtbl.replace last_use (Reg.index r) k)
          (Instr.src_regs i))
      instrs;
    (* active substitutions: vreg -> home, plus the reverse index *)
    let subst : (int, Reg.t) Hashtbl.t = Hashtbl.create 16 in
    let by_home : (int, int list) Hashtbl.t = Hashtbl.create 16 in
    let lookup r =
      match Hashtbl.find_opt subst (Reg.index r) with
      | Some s -> s
      | None -> r
    in
    let out = ref [] in
    let emit i = out := i :: !out in
    (* the home register [h] is about to be redefined at position [k]:
       rescue any substituted value still needed later *)
    let flush_home k h =
      match Hashtbl.find_opt by_home (Reg.index h) with
      | None -> ()
      | Some vregs ->
          List.iter
            (fun v ->
              Hashtbl.remove subst v;
              match Hashtbl.find_opt last_use v with
              | Some last when last > k ->
                  emit
                    (Instr.make Opcode.Mov ~dst:(Reg.of_index v)
                       ~srcs:[ Instr.Oreg h ])
              | Some _ | None -> ())
            vregs;
          Hashtbl.remove by_home (Reg.index h)
    in
    let flush_all k = Reg.Set.iter (flush_home k) home_regs in
    let record_subst d home =
      Hashtbl.replace subst (Reg.index d) home;
      let prev =
        Option.value (Hashtbl.find_opt by_home (Reg.index home)) ~default:[]
      in
      Hashtbl.replace by_home (Reg.index home) (Reg.index d :: prev)
    in
    Array.iteri
      (fun k i ->
        let i = Subst.apply lookup i in
        match i.Instr.op with
        | Opcode.Ld -> (
            match (i.Instr.mem, i.Instr.dst) with
            | Some { Mem_info.region; _ }, Some d -> (
                match promoted_reg table region with
                | Some home ->
                    if deletable d then record_subst d home
                    else
                      emit
                        (Instr.make Opcode.Mov ~dst:d ~srcs:[ Instr.Oreg home ])
                | None -> emit i)
            | _ -> emit i)
        | Opcode.St -> (
            match (i.Instr.mem, i.Instr.srcs) with
            | Some { Mem_info.region; _ }, [ value; _base ] -> (
                match promoted_reg table region with
                | Some home ->
                    flush_home k home;
                    emit
                      (match value with
                      | Instr.Oreg r ->
                          Instr.make Opcode.Mov ~dst:home ~srcs:[ Instr.Oreg r ]
                      | Instr.Oimm n ->
                          Instr.make Opcode.Li ~dst:home ~srcs:[ Instr.Oimm n ]
                      | Instr.Ofimm x ->
                          Instr.make Opcode.Fli ~dst:home
                            ~srcs:[ Instr.Ofimm x ])
                | None -> emit i)
            | _ -> emit i)
        | Opcode.Call ->
            (* callees write their own promoted variables *)
            flush_all k;
            emit i
        | _ ->
            (* any other redefinition of a home register *)
            List.iter
              (fun d -> if Reg.Set.mem d home_regs then flush_home k d)
              (Instr.defs i);
            emit i)
      instrs;
    Block.make b.Block.label (List.rev !out)
  in
  Func.map_blocks rewrite_block f

(* Initial values of promoted globals are loaded from memory at the top
   of main (the loader already put them there). *)
let init_instrs (p : Program.t) table =
  let addr_of = fst (Program.layout p) in
  Hashtbl.fold
    (fun c home acc ->
      match c with
      | Cand_global g -> (
          match Hashtbl.find_opt addr_of g with
          | Some addr ->
              Instr.make Opcode.Ld ~dst:home ~srcs:[ Instr.Oimm addr ]
                ~mem:(Mem_info.make (Mem_info.Global g) (Mem_info.Const addr))
              :: acc
          | None -> acc)
      | Cand_local _ -> acc)
    table []

let insert_at_main_entry (p : Program.t) instrs =
  if instrs = [] then p
  else
    Program.map_functions
      (fun (f : Func.t) ->
        if not (String.equal f.Func.name "main") then f
        else
          match f.Func.blocks with
          | [] -> f
          | entry :: rest ->
              (* after the prologue, before everything else *)
              let entry_instrs =
                match entry.Block.instrs with
                | prologue :: body -> (prologue :: instrs) @ body
                | [] -> instrs
              in
              { f with
                Func.blocks = Block.make entry.Block.label entry_instrs :: rest
              })
      p

let run (config : Config.t) (p : Program.t) =
  let is_recursive = recursive_functions p in
  let counts = usage_counts p is_recursive in
  let table = choose_homes config counts in
  let p = Program.map_functions (rewrite_func table) p in
  insert_at_main_entry p (init_instrs p table)
