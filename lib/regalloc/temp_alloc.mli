(** Expression-temporary allocation: a function-wide linear scan mapping
    virtual registers onto the finite temp partition.

    The finite pool is what creates the "artificial dependencies" of
    Section 3: once two independent values share a physical temp, the
    scheduler must serialize them.  Freed registers recycle FIFO to keep
    reuse distances as long as the pool allows.

    Spilling: a value live across a call always spills (the temp
    partition is entirely caller-clobbered); pool exhaustion spills the
    interval ending furthest away.  Spill code uses the two reserved
    scratch registers, and spill slots grow the frame — the
    prologue/epilogue immediates and incoming argument-slot offsets are
    rewritten accordingly. *)

open Ilp_ir
open Ilp_machine

exception Error of string
(** Unallocatable input: a virtual register used before definition, an
    empty temp pool, or more than two spilled sources on one
    instruction. *)

val run_func : Config.t -> Func.t -> Func.t
val run : Config.t -> Program.t -> Program.t
(** After [run], no instruction operand is a virtual register. *)
