(* Expression-temporary allocation: function-wide linear scan mapping
   virtual registers onto the finite temp partition.

   The finite pool is exactly what creates the "artificial dependencies"
   of Section 3: once two independent values share a physical temp, the
   scheduler must serialize them.  Free registers are recycled FIFO
   (round-robin) to keep reuse distances as long as the pool allows,
   which is the friendliest policy for the scheduler.

   Spilling:
   - a virtual register live across a call is always spilled (there are
     no callee-saved temps; the callee uses the same pool);
   - when the pool is exhausted the interval with the furthest end is
     spilled and allocation restarts.

   Spill code uses the two reserved scratch registers, and spill slots
   grow the frame: the prologue/epilogue immediates and the incoming
   argument-slot offsets (identified by their [Mem_info.Arg_slot]
   annotations with non-negative offsets) are rewritten accordingly. *)

open Ilp_ir
open Ilp_machine
open Ilp_analysis

exception Error of string

type interval = { vreg : Reg.t; start_pos : int; end_pos : int }

(* global instruction numbering and per-vreg interval hulls *)
let build_intervals (cfg : Cfg_info.t) (live : Liveness.t) =
  let starts : (int, int) Hashtbl.t = Hashtbl.create 128 in
  let ends : (int, int) Hashtbl.t = Hashtbl.create 128 in
  let calls = ref [] in
  let touch r pos =
    if Reg.is_virtual r then begin
      let k = Reg.index r in
      (match Hashtbl.find_opt starts k with
      | None -> Hashtbl.replace starts k pos
      | Some s -> if pos < s then Hashtbl.replace starts k pos);
      match Hashtbl.find_opt ends k with
      | None -> Hashtbl.replace ends k pos
      | Some e -> if pos > e then Hashtbl.replace ends k pos
    end
  in
  let pos = ref 0 in
  Array.iteri
    (fun bi (b : Block.t) ->
      let block_start = !pos in
      List.iter
        (fun (i : Instr.t) ->
          if Instr.is_call i then calls := !pos :: !calls;
          List.iter (fun r -> touch r !pos) (Instr.uses i);
          List.iter (fun r -> touch r !pos) (Instr.defs i);
          incr pos)
        b.Block.instrs;
      let block_end = !pos - 1 in
      Reg.Set.iter
        (fun r -> touch r block_start)
        live.Liveness.live_in.(bi);
      Reg.Set.iter (fun r -> touch r block_end) live.Liveness.live_out.(bi);
      (* a register live out of a block inside a loop must survive the
         whole loop body; extending to the max position of any block
         from which it is live-in keeps the hull conservative *)
      ignore bi)
    cfg.Cfg_info.blocks;
  let intervals =
    Hashtbl.fold
      (fun k s acc ->
        let e =
          match Hashtbl.find_opt ends k with Some e -> e | None -> s
        in
        { vreg = Reg.of_index k; start_pos = s; end_pos = e } :: acc)
      starts []
  in
  (List.sort (fun a b -> compare a.start_pos b.start_pos) intervals,
   List.sort compare !calls)

(* The hull [start,end] above is not loop-safe on its own: a value
   defined before a loop and used inside must stay live for the whole
   loop.  Extend every interval overlapping a loop to cover that loop's
   full extent when the value is used inside it. *)
let extend_for_loops (cfg : Cfg_info.t) intervals =
  let loops = Loops.compute cfg in
  (* block position ranges *)
  let n = Cfg_info.n_blocks cfg in
  let block_first = Array.make n 0 and block_last = Array.make n 0 in
  let pos = ref 0 in
  Array.iteri
    (fun bi (b : Block.t) ->
      block_first.(bi) <- !pos;
      pos := !pos + List.length b.Block.instrs;
      block_last.(bi) <- !pos - 1)
    cfg.Cfg_info.blocks;
  let loop_ranges =
    List.map
      (fun (l : Loops.loop) ->
        let first =
          List.fold_left (fun acc b -> min acc block_first.(b)) max_int
            l.Loops.body
        in
        let last =
          List.fold_left (fun acc b -> max acc block_last.(b)) 0 l.Loops.body
        in
        (first, last))
      loops.Loops.loops
  in
  List.map
    (fun itv ->
      List.fold_left
        (fun itv (first, last) ->
          (* interval crosses into the loop: it must cover it entirely *)
          if itv.start_pos < first && itv.end_pos >= first && itv.end_pos < last
          then { itv with end_pos = last }
          else itv)
        itv loop_ranges)
    intervals

let crosses_call calls itv =
  List.exists (fun c -> itv.start_pos <= c && c < itv.end_pos) calls

(* Linear scan with a FIFO free list; returns assignments or the victim
   interval to spill. *)
let scan pool intervals spilled =
  let assignment : (int, Reg.t) Hashtbl.t = Hashtbl.create 128 in
  let free = Queue.create () in
  List.iter (fun r -> Queue.add r free) pool;
  let active = ref [] in
  let result = ref `Done in
  (try
     List.iter
       (fun itv ->
         if not (Hashtbl.mem spilled (Reg.index itv.vreg)) then begin
           (* expire finished intervals *)
           let still_active, expired =
             List.partition (fun a -> a.end_pos >= itv.start_pos) !active
           in
           active := still_active;
           List.iter
             (fun a -> Queue.add (Hashtbl.find assignment (Reg.index a.vreg)) free)
             (List.sort (fun a b -> compare a.end_pos b.end_pos) expired);
           if Queue.is_empty free then begin
             (* spill the active (or current) interval ending last *)
             let victim =
               List.fold_left
                 (fun v a -> if a.end_pos > v.end_pos then a else v)
                 itv !active
             in
             result := `Spill victim;
             raise Exit
           end
           else begin
             let r = Queue.pop free in
             Hashtbl.replace assignment (Reg.index itv.vreg) r;
             active := itv :: !active
           end
         end)
       intervals
   with Exit -> ());
  match !result with `Done -> `Assigned assignment | `Spill v -> `Spill v

(* Rewrite one function given assignments and spill slots. *)
let rewrite_func (f : Func.t) assignment spill_slot n_spills =
  let fname = f.Func.name in
  let old_frame = f.Func.frame_size in
  let new_frame = old_frame + n_spills in
  let nargs = f.Func.n_params in
  let spill_offset slot = old_frame - nargs + slot in
  let map_reg r =
    if Reg.is_virtual r then
      match Hashtbl.find_opt assignment (Reg.index r) with
      | Some p -> p
      | None -> raise (Error ("unallocated virtual register " ^ Reg.to_string r))
    else r
  in
  let rewrite_instr acc (i : Instr.t) =
    (* incoming argument slots move up by the spill count *)
    let i =
      match i.Instr.mem with
      | Some { Mem_info.region = Mem_info.Arg_slot (g, k); _ }
        when String.equal g fname && i.Instr.offset >= 0 ->
          { i with Instr.offset = new_frame - nargs + k }
      | _ -> i
    in
    (* prologue / epilogue immediates *)
    let i =
      match (i.Instr.op, i.Instr.dst, i.Instr.srcs) with
      | Opcode.Add, Some d, [ Instr.Oreg s; Instr.Oimm imm ]
        when Reg.equal d Reg.sp && Reg.equal s Reg.sp ->
          let imm' = if imm <= 0 then -new_frame else new_frame in
          { i with Instr.srcs = [ Instr.Oreg s; Instr.Oimm imm' ] }
      | _ -> i
    in
    (* spill loads for sources, at most two (scratch1, scratch2) *)
    let scratches = [ Regfile.scratch1; Regfile.scratch2 ] in
    let next_scratch = ref scratches in
    let loads = ref [] in
    let subst : (int, Reg.t) Hashtbl.t = Hashtbl.create 4 in
    List.iter
      (fun r ->
        if Reg.is_virtual r && not (Hashtbl.mem subst (Reg.index r)) then
          match Hashtbl.find_opt spill_slot (Reg.index r) with
          | Some slot ->
              let s =
                match !next_scratch with
                | s :: rest ->
                    next_scratch := rest;
                    s
                | [] -> raise (Error "more than two spilled sources")
              in
              let off = spill_offset slot in
              loads :=
                Instr.make Opcode.Ld ~dst:s ~srcs:[ Instr.Oreg Reg.sp ]
                  ~offset:off
                  ~mem:(Mem_info.make (Mem_info.Stack_slot (fname, off))
                          (Mem_info.Const off))
                :: !loads;
              Hashtbl.replace subst (Reg.index r) s
          | None -> ())
      (Instr.src_regs i);
    let lookup r =
      if Reg.is_virtual r then
        match Hashtbl.find_opt subst (Reg.index r) with
        | Some s -> s
        | None -> map_reg r
      else r
    in
    let i = Instr.map_src_regs lookup i in
    (* spilled destination goes through scratch1 then to its slot *)
    let tail, i =
      match i.Instr.dst with
      | Some d when Reg.is_virtual d -> (
          match Hashtbl.find_opt spill_slot (Reg.index d) with
          | Some slot ->
              let off = spill_offset slot in
              ( [ Instr.make Opcode.St
                    ~srcs:[ Instr.Oreg Regfile.scratch1; Instr.Oreg Reg.sp ]
                    ~offset:off
                    ~mem:(Mem_info.make (Mem_info.Stack_slot (fname, off))
                            (Mem_info.Const off)) ],
                { i with Instr.dst = Some Regfile.scratch1 } )
          | None -> ([], Instr.map_dst map_reg i))
      | Some _ | None -> ([], i)
    in
    (* acc is in reverse program order; !loads is already reversed *)
    List.rev_append tail (i :: (!loads @ acc))
  in
  let blocks =
    List.map
      (fun (b : Block.t) ->
        Block.make b.Block.label
          (List.rev (List.fold_left rewrite_instr [] b.Block.instrs)))
      f.Func.blocks
  in
  { f with Func.blocks; frame_size = new_frame }

let run_func (config : Config.t) (f : Func.t) =
  let cfg = Cfg_info.build f in
  let live = Liveness.compute cfg in
  if not (Reg.Set.is_empty live.Liveness.live_in.(0)) then
    raise
      (Error
         (Printf.sprintf "function %s uses virtual registers before definition"
            f.Func.name));
  let intervals, calls = build_intervals cfg live in
  let intervals = extend_for_loops cfg intervals in
  let spilled : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iter
    (fun itv ->
      if crosses_call calls itv then
        Hashtbl.replace spilled (Reg.index itv.vreg) ())
    intervals;
  let pool = Regfile.temps config in
  if pool = [] then raise (Error "temp partition is empty");
  let rec allocate () =
    match scan pool intervals spilled with
    | `Assigned assignment -> assignment
    | `Spill victim ->
        Hashtbl.replace spilled (Reg.index victim.vreg) ();
        allocate ()
  in
  let assignment = allocate () in
  let spill_slot : (int, int) Hashtbl.t = Hashtbl.create 16 in
  let n_spills = ref 0 in
  List.iter
    (fun itv ->
      if Hashtbl.mem spilled (Reg.index itv.vreg) then begin
        Hashtbl.replace spill_slot (Reg.index itv.vreg) !n_spills;
        incr n_spills
      end)
    intervals;
  rewrite_func f assignment spill_slot !n_spills

let run config (p : Program.t) =
  Program.map_functions (run_func config) p
