(* Physical register file layout.

   r0 is the stack pointer and r1 the return-value register.  r2 and r3
   are reserved scratch registers for spill code, outside the allocatable
   pools so spilling never shrinks the temp partition.  The machine
   configuration's [temp_regs] expression temporaries follow, then its
   [home_regs] home locations for promoted variables (Section 3 of the
   paper: the compiler divides the register set into these two disjoint
   parts). *)

open Ilp_ir
open Ilp_machine

let scratch1 = Reg.phys 2
let scratch2 = Reg.phys 3
let temp_base = 4

let temps (config : Config.t) =
  List.init config.Config.temp_regs (fun i -> Reg.phys (temp_base + i))

let home_base (config : Config.t) = temp_base + config.Config.temp_regs

let homes (config : Config.t) =
  List.init config.Config.home_regs (fun i ->
      Reg.phys (home_base config + i))

(* Total registers a simulator must provide for this configuration. *)
let file_size (config : Config.t) =
  home_base config + config.Config.home_regs
