(** Independent verification of the register allocators.

    Instruction identities survive the allocators' rewrites, so pairing
    each input instruction with its output twin reconstructs the
    allocation; the checks prove it sound against a liveness analysis
    and a call-graph SCC computed here, independent of the allocators'
    own machinery.  All findings are error-severity {!Diagnostics}. *)

open Ilp_ir
open Ilp_machine
open Ilp_analysis

val check_temp_alloc :
  Config.t -> before:Func.t -> after:Func.t -> Diagnostics.t list
(** Verifies one function's temp allocation: consistent one-register
    assignments, the temp-partition bound, no two simultaneously live
    virtuals sharing a physical register, and spill-code shape for
    every inserted instruction. *)

val check_temp_alloc_program :
  Config.t -> before:Program.t -> after:Program.t -> Diagnostics.t list

val check_global_alloc :
  Config.t -> before:Program.t -> after:Program.t -> Diagnostics.t list
(** Verifies a global-allocation rewrite: the init loads define an
    injective global/home table, every other touched home belongs to
    exactly one function that sits on no call-graph cycle, home indices
    stay inside the configured register file, and deleted/inserted
    instructions have the promotion shape. *)

val cyclic_functions : Program.t -> string -> bool
(** Whether a function participates in a call-graph cycle (Tarjan SCC;
    direct self-calls count). *)
