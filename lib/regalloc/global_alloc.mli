(** Global register allocation — home promotion (Sections 3 and 4.4,
    after Wall's link-time allocator \[16\]).

    Scalar globals and scalar locals of non-recursive functions are
    candidates; estimated dynamic use counts (static counts weighted by
    10^loop-depth) rank them, and the top [home_regs] each get a
    dedicated home register program-wide.  Loads of promoted variables
    disappear (uses are substituted while the home still holds the
    value, with compensating moves at redefinitions); stores become
    register moves.

    Excluded: locals of functions on call-graph cycles (a recursive
    instance would clobber its caller's value), parameters (they travel
    through memory by convention), arrays, and the [__sink] checksum
    cell (its stores are the benchmarks' observable output). *)

open Ilp_machine

val run : Config.t -> Ilp_ir.Program.t -> Ilp_ir.Program.t
