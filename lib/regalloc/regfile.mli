(** Physical register-file layout.

    r0 is the stack pointer and r1 the return-value register.  r2/r3 are
    reserved scratch registers for spill code, outside the allocatable
    pools.  The configuration's [temp_regs] expression temporaries
    follow, then its [home_regs] home locations for promoted variables —
    the two disjoint parts of Section 3's register split. *)

open Ilp_ir
open Ilp_machine

val scratch1 : Reg.t
val scratch2 : Reg.t

val temp_base : int
(** Index of the first temp register (4). *)

val temps : Config.t -> Reg.t list
val home_base : Config.t -> int
val homes : Config.t -> Reg.t list

val file_size : Config.t -> int
(** Registers a simulator must provide for the configuration. *)
