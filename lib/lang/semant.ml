(* Semantic analysis: name resolution and type checking, lowering the raw
   AST to the typed AST.

   Typing rules:
   - arithmetic (+ - * /) on two ints is int, on two reals is real; a
     mixed operation promotes the int operand to real;
   - % << >> & | ^ ! require ints;
   - comparisons and the short-circuit && || produce int (0 or 1);
   - assignment promotes int to real implicitly; real to int requires an
     explicit [int(...)] cast;
   - array indices are ints;
   - a for-loop variable is an already-declared int scalar. *)

exception Error of string * Ast.pos

type signature = { sig_params : Ast.ty list; sig_return : Ast.ty option }

type env = {
  globals : (string, Tast.var_ref) Hashtbl.t;
  functions : (string, signature) Hashtbl.t;
  locals : (string, Tast.var_ref) Hashtbl.t;  (** current function *)
}

let error pos fmt = Printf.ksprintf (fun msg -> raise (Error (msg, pos))) fmt

let lookup_var env pos name =
  match Hashtbl.find_opt env.locals name with
  | Some vr -> vr
  | None -> (
      match Hashtbl.find_opt env.globals name with
      | Some vr -> vr
      | None -> error pos "undeclared variable %s" name)

let promote pos (e : Tast.texpr) (ty : Ast.ty) =
  match (e.Tast.tty, ty) with
  | Ast.Tint, Ast.Tint | Ast.Treal, Ast.Treal -> e
  | Ast.Tint, Ast.Treal -> { Tast.tnode = Tast.Tcast (Ast.Treal, e); tty = Ast.Treal }
  | Ast.Treal, Ast.Tint ->
      error pos "implicit real-to-int conversion (use int(...))"

let rec check_expr env (e : Ast.expr) : Tast.texpr =
  let pos = e.Ast.epos in
  match e.Ast.enode with
  | Ast.Eint n -> { Tast.tnode = Tast.Tint_lit n; tty = Ast.Tint }
  | Ast.Ereal f -> { Tast.tnode = Tast.Treal_lit f; tty = Ast.Treal }
  | Ast.Evar name ->
      let vr = lookup_var env pos name in
      if Tast.is_array vr then error pos "%s is an array, expected a scalar" name;
      Tast.var_expr vr
  | Ast.Eindex (name, idx) ->
      let vr = lookup_var env pos name in
      if not (Tast.is_array vr) then error pos "%s is not an array" name;
      let tidx = check_expr env idx in
      if tidx.Tast.tty <> Ast.Tint then error pos "array index must be int";
      { Tast.tnode = Tast.Tindex (vr, tidx); tty = vr.Tast.vr_ty }
  | Ast.Eunary (Ast.Uneg, a) ->
      let ta = check_expr env a in
      { Tast.tnode = Tast.Tunary (Ast.Uneg, ta); tty = ta.Tast.tty }
  | Ast.Eunary (Ast.Unot, a) ->
      let ta = check_expr env a in
      if ta.Tast.tty <> Ast.Tint then error pos "! requires an int operand";
      { Tast.tnode = Tast.Tunary (Ast.Unot, ta); tty = Ast.Tint }
  | Ast.Ebinary (op, a, b) -> check_binary env pos op a b
  | Ast.Ecall (name, args) -> (
      match Hashtbl.find_opt env.functions name with
      | None -> error pos "call to undeclared function %s" name
      | Some s ->
          if List.length args <> List.length s.sig_params then
            error pos "%s expects %d arguments, got %d" name
              (List.length s.sig_params) (List.length args);
          let targs =
            List.map2
              (fun arg ty -> promote pos (check_expr env arg) ty)
              args s.sig_params
          in
          let tty =
            match s.sig_return with
            | Some ty -> ty
            | None -> error pos "%s returns no value" name
          in
          { Tast.tnode = Tast.Tcall (name, targs); tty })
  | Ast.Ecast (ty, a) ->
      let ta = check_expr env a in
      { Tast.tnode = Tast.Tcast (ty, ta); tty = ty }

and check_binary env pos op a b =
  let ta = check_expr env a in
  let tb = check_expr env b in
  let int_only () =
    if ta.Tast.tty <> Ast.Tint || tb.Tast.tty <> Ast.Tint then
      error pos "%s requires int operands" (Ast.binop_name op)
  in
  match op with
  | Ast.Bmod | Ast.Bshl | Ast.Bshr | Ast.Bbit_and | Ast.Bbit_or
  | Ast.Bbit_xor | Ast.Band | Ast.Bor ->
      int_only ();
      { Tast.tnode = Tast.Tbinary (op, ta, tb); tty = Ast.Tint }
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge ->
      let common =
        if ta.Tast.tty = Ast.Treal || tb.Tast.tty = Ast.Treal then Ast.Treal
        else Ast.Tint
      in
      let ta = promote pos ta common and tb = promote pos tb common in
      { Tast.tnode = Tast.Tbinary (op, ta, tb); tty = Ast.Tint }
  | Ast.Badd | Ast.Bsub | Ast.Bmul | Ast.Bdiv ->
      let common =
        if ta.Tast.tty = Ast.Treal || tb.Tast.tty = Ast.Treal then Ast.Treal
        else Ast.Tint
      in
      let ta = promote pos ta common and tb = promote pos tb common in
      { Tast.tnode = Tast.Tbinary (op, ta, tb); tty = common }

let check_cond env (e : Ast.expr) =
  let te = check_expr env e in
  if te.Tast.tty <> Ast.Tint then
    error e.Ast.epos "condition must be int (0 = false)";
  te

(* Declarations are function-scoped; duplicate names in one function are
   rejected so that code generation's name-to-slot map is unambiguous. *)
let declare_local env pos name vr =
  if Hashtbl.mem env.locals name then
    error pos "duplicate declaration of %s" name;
  Hashtbl.replace env.locals name vr

let rec check_stmt env freturn (s : Ast.stmt) : Tast.tstmt =
  let pos = s.Ast.spos in
  match s.Ast.snode with
  | Ast.Sdecl (name, ty, init) ->
      let vr = { Tast.vr_name = name; vr_ty = ty; vr_kind = Tast.Vlocal } in
      let tinit =
        Option.map (fun e -> promote pos (check_expr env e) ty) init
      in
      declare_local env pos name vr;
      Tast.TSdecl (vr, tinit)
  | Ast.Sarr_decl (name, ty, size) ->
      if size <= 0 then error pos "array %s must have positive size" name;
      let vr =
        { Tast.vr_name = name; vr_ty = ty; vr_kind = Tast.Vlocal_array size }
      in
      declare_local env pos name vr;
      Tast.TSdecl (vr, None)
  | Ast.Sassign (name, e) ->
      let vr = lookup_var env pos name in
      if Tast.is_array vr then error pos "cannot assign to array %s" name;
      let te = promote pos (check_expr env e) vr.Tast.vr_ty in
      Tast.TSassign (vr, te)
  | Ast.Sindex_assign (name, idx, e) ->
      let vr = lookup_var env pos name in
      if not (Tast.is_array vr) then error pos "%s is not an array" name;
      let tidx = check_expr env idx in
      if tidx.Tast.tty <> Ast.Tint then error pos "array index must be int";
      let te = promote pos (check_expr env e) vr.Tast.vr_ty in
      Tast.TSindex_assign (vr, tidx, te)
  | Ast.Sif (cond, then_, else_) ->
      let tcond = check_cond env cond in
      Tast.TSif
        ( tcond,
          List.map (check_stmt env freturn) then_,
          List.map (check_stmt env freturn) else_ )
  | Ast.Swhile (cond, body) ->
      let tcond = check_cond env cond in
      Tast.TSwhile (tcond, List.map (check_stmt env freturn) body)
  | Ast.Sfor (hdr, body) ->
      let vr = lookup_var env pos hdr.Ast.for_var in
      if vr.Tast.vr_ty <> Ast.Tint || Tast.is_array vr then
        error pos "for-loop variable %s must be an int scalar" hdr.Ast.for_var;
      if hdr.Ast.for_step = 0 then error pos "for-loop step must be nonzero";
      let tinit = check_expr env hdr.Ast.for_init in
      if tinit.Tast.tty <> Ast.Tint then error pos "for-loop bound must be int";
      let tlimit = check_expr env hdr.Ast.for_limit in
      if tlimit.Tast.tty <> Ast.Tint then error pos "for-loop bound must be int";
      let tfor =
        { Tast.tf_var = vr; tf_init = tinit; tf_cmp = hdr.Ast.for_cmp;
          tf_limit = tlimit; tf_step = hdr.Ast.for_step }
      in
      Tast.TSfor (tfor, List.map (check_stmt env freturn) body)
  | Ast.Sreturn None ->
      if freturn <> None then error pos "missing return value";
      Tast.TSreturn None
  | Ast.Sreturn (Some e) -> (
      match freturn with
      | None -> error pos "returning a value from a function with no return type"
      | Some ty -> Tast.TSreturn (Some (promote pos (check_expr env e) ty)))
  | Ast.Sexpr e -> (
      (* statement calls may target functions with no return value *)
      match e.Ast.enode with
      | Ast.Ecall (name, args) -> (
          match Hashtbl.find_opt env.functions name with
          | None -> error pos "call to undeclared function %s" name
          | Some s ->
              if List.length args <> List.length s.sig_params then
                error pos "%s expects %d arguments, got %d" name
                  (List.length s.sig_params) (List.length args);
              let targs =
                List.map2
                  (fun arg ty -> promote pos (check_expr env arg) ty)
                  args s.sig_params
              in
              let tty = Option.value s.sig_return ~default:Ast.Tint in
              Tast.TSexpr { Tast.tnode = Tast.Tcall (name, targs); tty })
      | _ -> Tast.TSexpr (check_expr env e))
  | Ast.Ssink e -> Tast.TSsink (check_expr env e)

let check_func env (f : Ast.func) : Tast.tfunc =
  Hashtbl.reset env.locals;
  let tparams =
    List.mapi
      (fun i (name, ty) ->
        let vr = { Tast.vr_name = name; vr_ty = ty; vr_kind = Tast.Vparam i } in
        declare_local env Ast.no_pos name vr;
        vr)
      f.Ast.fparams
  in
  let tbody = List.map (check_stmt env f.Ast.freturn) f.Ast.fbody in
  { Tast.tf_name = f.Ast.fname; tf_params = tparams;
    tf_return = f.Ast.freturn; tf_body = tbody }

let check_program (prog : Ast.program) : Tast.tprogram =
  let env =
    { globals = Hashtbl.create 64;
      functions = Hashtbl.create 64;
      locals = Hashtbl.create 64;
    }
  in
  (* first pass: collect globals and function signatures *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dglobal (name, ty, _) ->
          if Hashtbl.mem env.globals name then
            error Ast.no_pos "duplicate global %s" name;
          Hashtbl.replace env.globals name
            { Tast.vr_name = name; vr_ty = ty; vr_kind = Tast.Vglobal }
      | Ast.Dglobal_array (name, ty, size, _) ->
          if Hashtbl.mem env.globals name then
            error Ast.no_pos "duplicate global %s" name;
          if size <= 0 then error Ast.no_pos "array %s must have positive size" name;
          Hashtbl.replace env.globals name
            { Tast.vr_name = name; vr_ty = ty;
              vr_kind = Tast.Vglobal_array size }
      | Ast.Dview _ -> ()
      | Ast.Dfun f ->
          if Hashtbl.mem env.functions f.Ast.fname then
            error Ast.no_pos "duplicate function %s" f.Ast.fname;
          Hashtbl.replace env.functions f.Ast.fname
            { sig_params = List.map snd f.Ast.fparams;
              sig_return = f.Ast.freturn;
            })
    prog;
  (* views resolve once every array is known *)
  List.iter
    (fun decl ->
      match decl with
      | Ast.Dview (vname, aname) -> (
          if Hashtbl.mem env.globals vname then
            error Ast.no_pos "duplicate global %s" vname;
          match Hashtbl.find_opt env.globals aname with
          | Some { Tast.vr_ty; vr_kind = Tast.Vglobal_array size; _ } ->
              Hashtbl.replace env.globals vname
                { Tast.vr_name = vname; vr_ty;
                  vr_kind = Tast.Vview (aname, size) }
          | Some _ | None ->
              error Ast.no_pos "view %s: %s is not a global array" vname aname)
      | Ast.Dglobal _ | Ast.Dglobal_array _ | Ast.Dfun _ -> ())
    prog;
  if not (Hashtbl.mem env.functions "main") then
    error Ast.no_pos "program has no main function";
  let tglobals =
    List.filter_map
      (fun decl ->
        match decl with
        | Ast.Dglobal (name, ty, init) ->
            Some { Tast.tg_name = name; tg_ty = ty; tg_words = 1; tg_init = init }
        | Ast.Dglobal_array (name, ty, size, _) ->
            Some { Tast.tg_name = name; tg_ty = ty; tg_words = size; tg_init = None }
        | Ast.Dview _ | Ast.Dfun _ -> None)
      prog
  in
  let tviews =
    List.filter_map
      (function
        | Ast.Dview (v, a) -> Some { Tast.tv_name = v; tv_base = a }
        | Ast.Dglobal _ | Ast.Dglobal_array _ | Ast.Dfun _ -> None)
      prog
  in
  let tfuncs =
    List.filter_map
      (function Ast.Dfun f -> Some (check_func env f) | _ -> None)
      prog
  in
  { Tast.tglobals; tviews; tfuncs }

(* Parse and check in one step; the usual entry point. *)
let compile_source src = check_program (Parser.parse_program src)
