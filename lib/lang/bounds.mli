(** Bound analysis over [Tast.tfor] headers.

    Classifies each counted loop for the unroller: [Counted] when
    [tf_init] and [tf_limit] constant-fold through the preceding
    straight-line code (enabling full unroll and remainder peeling),
    [Well_formed] when the bounds are unknown but classic factor
    unrolling is sound, and one of four degenerate reasons otherwise.
    The environment is a forward scalar-constant analysis; merges at
    control-flow joins use the flat lattice from the dataflow framework
    ([Ilp_analysis.Dataflow.Flat]). *)

module Env : sig
  type t
  (** Scalar name -> known constant value at the current program
      point; absent bindings are unknown. *)

  val empty : t
  val lookup : t -> string -> int option

  val eval : t -> Tast.texpr -> int option
  (** Constant-fold an int expression under the environment.  [None]
      when any subterm is opaque: calls, array loads, non-int subterms,
      division and modulo. *)

  val after_stmt : t -> Tast.tstmt -> t
  (** Abstract effect of executing one statement: foldable assignments
      record bindings, branches merge per-variable, loops kill what
      their bodies assign, calls kill everything. *)

  val after_stmts : t -> Tast.tstmt list -> t

  val at_body_entry : t -> Tast.tstmt list -> t
  (** The facts that hold on {e every} execution of a loop body: the
      incoming environment minus everything the body assigns
      (everything, if the body performs a call). *)

  val at_loop_entry : t -> Tast.tfor -> Tast.tstmt list -> t
  (** [at_body_entry], additionally killing the loop variable the
      header steps. *)
end

type classification =
  | Counted of { start : int; step : int; trips : int }
      (** init and limit fold to constants; the body runs exactly
          [trips] times and leaves the index at [start + trips*step] *)
  | Well_formed
      (** bounds unknown but the header is consistent: classic
          factor-unrolling with a remainder loop is sound *)
  | Degenerate_step  (** [tf_step = 0] *)
  | Direction_mismatch
      (** step sign disagrees with the comparison direction *)
  | Index_mutated  (** the body assigns or re-declares the index *)
  | Limit_mutated
      (** the limit expression is not invariant under the body — the
          lowering re-evaluates it every iteration, so any unrolling
          would change the iteration space *)

val classify : Env.t -> Tast.tfor -> Tast.tstmt list -> classification
(** [classify env hdr body] with [env] the constant environment at the
    loop statement. *)

val trip_count : classification -> int option
(** [Some trips] for [Counted], [None] otherwise. *)
