(* Abstract syntax of MiniMod, the small imperative language in which the
   benchmark suite is written (DESIGN.md, Section 2).

   MiniMod is deliberately close to the subset of Modula-2/C that the
   paper's benchmarks exercise: integer and real scalars, one-dimensional
   arrays, structured control flow, and recursive functions. *)

type ty = Tint | Treal [@@deriving eq, show { with_path = false }]

type unop = Uneg | Unot [@@deriving eq, show { with_path = false }]

type binop =
  | Badd
  | Bsub
  | Bmul
  | Bdiv
  | Bmod
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Band  (** short-circuit && *)
  | Bor  (** short-circuit || *)
  | Bbit_and
  | Bbit_or
  | Bbit_xor
  | Bshl
  | Bshr
[@@deriving eq, show { with_path = false }]

type pos = { line : int; col : int } [@@deriving eq, show { with_path = false }]

type expr = { enode : expr_node; epos : pos }

and expr_node =
  | Eint of int
  | Ereal of float
  | Evar of string
  | Eindex of string * expr
  | Eunary of unop * expr
  | Ebinary of binop * expr * expr
  | Ecall of string * expr list
  | Ecast of ty * expr  (** [int(e)] truncates, [real(e)] converts *)
[@@deriving eq, show { with_path = false }]

(* A counted [for] loop: [for (v = init; v <= limit; v = v + step)].
   The comparison operator is kept so that both upward and downward loops
   can be expressed; [step] is a compile-time constant, which is what
   makes the loop unrollable. *)
type for_header = {
  for_var : string;
  for_init : expr;
  for_cmp : binop;  (** [Blt], [Ble], [Bgt] or [Bge] *)
  for_limit : expr;
  for_step : int;
}
[@@deriving eq, show { with_path = false }]

type stmt = { snode : stmt_node; spos : pos }

and stmt_node =
  | Sdecl of string * ty * expr option
  | Sarr_decl of string * ty * int  (** local array of constant size *)
  | Sassign of string * expr
  | Sindex_assign of string * expr * expr  (** a[e1] = e2 *)
  | Sif of expr * stmt list * stmt list
  | Swhile of expr * stmt list
  | Sfor of for_header * stmt list
  | Sreturn of expr option
  | Sexpr of expr
  | Ssink of expr  (** store the value to the program checksum cell *)
[@@deriving eq, show { with_path = false }]

type top_decl =
  | Dglobal of string * ty * const option
  | Dglobal_array of string * ty * int * const list option
  | Dview of string * string
      (** [Dview (v, a)]: [v] is a view of global array [a]; accesses
          through different views of the same array are declared
          non-overlapping (the programmer's interprocedural alias
          knowledge, Section 4.4 of the paper) *)
  | Dfun of func

and const = Cint of int | Creal of float

and func = {
  fname : string;
  fparams : (string * ty) list;
  freturn : ty option;
  fbody : stmt list;
}
[@@deriving eq, show { with_path = false }]

type program = top_decl list [@@deriving eq, show { with_path = false }]

let no_pos = { line = 0; col = 0 }
let expr ?(pos = no_pos) enode = { enode; epos = pos }
let stmt ?(pos = no_pos) snode = { snode; spos = pos }

let is_comparison = function
  | Beq | Bne | Blt | Ble | Bgt | Bge -> true
  | Badd | Bsub | Bmul | Bdiv | Bmod | Band | Bor | Bbit_and | Bbit_or
  | Bbit_xor | Bshl | Bshr ->
      false

let binop_name = function
  | Badd -> "+"
  | Bsub -> "-"
  | Bmul -> "*"
  | Bdiv -> "/"
  | Bmod -> "%"
  | Beq -> "=="
  | Bne -> "!="
  | Blt -> "<"
  | Ble -> "<="
  | Bgt -> ">"
  | Bge -> ">="
  | Band -> "&&"
  | Bor -> "||"
  | Bbit_and -> "&"
  | Bbit_or -> "|"
  | Bbit_xor -> "^"
  | Bshl -> "<<"
  | Bshr -> ">>"
