(* Interprocedural range analysis over the typed AST.

   Structure: an outer chaotic iteration over (function summaries,
   global-scalar invariants, array-content invariants) — all monotone
   accumulators, switched from join to widen after a few rounds so the
   outer loop terminates — around an inner structural interpreter per
   function body that is flow-sensitive in locals and global scalars,
   widens at loop heads, narrows with two truncated descending sweeps,
   and refines environments through comparison guards.

   Soundness of the accumulators: a global scalar's invariant is the
   join of its initial value and every store the whole program can
   perform, so reading the invariant at any point over-approximates the
   cell; inside one function body stores are additionally tracked
   flow-sensitively until the next call (which may re-enter anything
   and is modelled by dropping back to the invariant).  Array contents
   are flow-insensitive only: the join of the zero-fill and every
   stored value. *)

module R = Ilp_analysis.Range
module V = R.V
module SMap = Map.Make (String)

type verdict = Proved_safe | Proved_oob | Unknown

let verdict_name = function
  | Proved_safe -> "proved-safe"
  | Proved_oob -> "proved-oob"
  | Unknown -> "unknown"

type site = {
  s_func : string;
  s_path : string;
  s_array : string;
  s_extent : int;
  s_write : bool;
  s_range : V.t;
  s_verdict : verdict;
}

type t = {
  sites : site list;
  scalar_ranges : (string * V.t) list;
  index_ranges : (string * V.t) list;
  content_ranges : (string * V.t) list;
}

(* ------------------------------------------------------------------ *)

type fsummary = {
  mutable params : V.t array;
  mutable ret : V.t;
  mutable called : bool;
}

(* One generation of the interprocedural accumulators. *)
type tables = {
  summaries : (string, fsummary) Hashtbl.t;
  glob_inv : (string, V.t) Hashtbl.t;  (** int global scalar invariants *)
  content : (string, V.t) Hashtbl.t;  (** storage name -> element values *)
  index_union : (string, V.t) Hashtbl.t;  (** global array -> subscripts *)
}

(* [rd] and [wr] alias the same tables during the ascending phase
   (chaotic iteration reads its own in-progress facts).  The
   descending (narrowing) rounds split them: reads come from a frozen
   post-fixpoint A, writes rebuild fresh tables, yielding F(A) -- which
   over-approximates the least fixpoint because F is monotone and A is
   above it.  Two such rounds recover most of what the accumulator
   widening gave away. *)
type state = {
  funcs : (string, Tast.tfunc) Hashtbl.t;
  mutable rd : tables;
  mutable wr : tables;
  mutable widening : bool;  (** accumulator joins switched to widen *)
  mutable changed : bool;
  mutable recording : bool;
  site_order : (string * string * string * bool, int) Hashtbl.t;
  mutable site_seq : int;
  site_tbl : (int, site) Hashtbl.t;
      (** keyed by discovery order; loop fixpoints walk a body several
          times during the recording pass, and the last walk (the final
          narrowing sweep) both is sound and has the sharpest ranges,
          so later records replace earlier ones *)
}

(* Environments: flow-sensitive scalar facts.  [locals] maps locals and
   parameters (absent = top); [globs] maps global scalars written since
   the last call (absent = the accumulated invariant). *)
type env = Dead | Live of { locals : V.t SMap.t; globs : V.t SMap.t }

let live_entry params = Live { locals = params; globs = SMap.empty }

let acc_get tbl key = Option.value (Hashtbl.find_opt tbl key) ~default:V.bot

(* Join [v] into an accumulator; flips [st.changed] on growth. *)
let acc_join st tbl key v =
  let cur = acc_get tbl key in
  let next =
    if st.widening then V.widen cur (V.join cur v) else V.join cur v
  in
  if not (V.equal next cur) then begin
    Hashtbl.replace tbl key next;
    st.changed <- true
  end

let glob_default st name = acc_get st.rd.glob_inv name

let lookup_local locals name =
  Option.value (SMap.find_opt name locals) ~default:V.top

let lookup_glob st globs name =
  Option.value (SMap.find_opt name globs) ~default:(glob_default st name)

let env_equal st a b =
  match (a, b) with
  | Dead, Dead -> true
  | Live a, Live b ->
      let keys m1 m2 =
        SMap.union (fun _ v _ -> Some v) m1 m2 |> SMap.bindings |> List.map fst
      in
      List.for_all
        (fun k ->
          V.equal (lookup_local a.locals k) (lookup_local b.locals k))
        (keys a.locals b.locals)
      && List.for_all
           (fun k ->
             V.equal (lookup_glob st a.globs k) (lookup_glob st b.globs k))
           (keys a.globs b.globs)
  | (Dead | Live _), _ -> false

let env_merge st f a b =
  match (a, b) with
  | Dead, e | e, Dead -> e
  | Live a, Live b ->
      (* absent locals are top on the side missing them *)
      let locals =
        SMap.merge
          (fun _ x y ->
            match (x, y) with
            | Some vx, Some vy -> Some (f vx vy)
            | _ -> None)
          a.locals b.locals
      in
      let globs =
        SMap.merge
          (fun k x y ->
            let vx = Option.value x ~default:(glob_default st k)
            and vy = Option.value y ~default:(glob_default st k) in
            Some (f vx vy))
          a.globs b.globs
      in
      Live { locals; globs }

let env_join st = env_merge st V.join
let env_widen st = env_merge st V.widen

let write_scalar st env (vr : Tast.var_ref) v =
  match env with
  | Dead -> Dead
  | Live e -> (
      match vr.Tast.vr_kind with
      | Tast.Vlocal | Tast.Vparam _ ->
          Live { e with locals = SMap.add vr.Tast.vr_name v e.locals }
      | Tast.Vglobal ->
          if vr.Tast.vr_ty = Tast.Tint then
            acc_join st st.wr.glob_inv vr.Tast.vr_name v;
          Live { e with globs = SMap.add vr.Tast.vr_name v e.globs }
      | Tast.Vglobal_array _ | Tast.Vview _ | Tast.Vlocal_array _ -> env)

let read_scalar st env (vr : Tast.var_ref) =
  match env with
  | Dead -> V.bot
  | Live e ->
      if vr.Tast.vr_ty <> Tast.Tint then V.top
      else (
        match vr.Tast.vr_kind with
        | Tast.Vlocal | Tast.Vparam _ -> lookup_local e.locals vr.Tast.vr_name
        | Tast.Vglobal -> lookup_glob st e.globs vr.Tast.vr_name
        | Tast.Vglobal_array _ | Tast.Vview _ | Tast.Vlocal_array _ -> V.top)

(* Calls may write any global: forget flow facts, fall back to the
   invariants. *)
let clobber_globals = function
  | Dead -> Dead
  | Live e -> Live { e with globs = SMap.empty }

(* Storage identity and declared extent of an array reference. *)
let storage_of fname (vr : Tast.var_ref) =
  match vr.Tast.vr_kind with
  | Tast.Vglobal_array n -> (vr.Tast.vr_name, n, true)
  | Tast.Vview (base, n) -> (base, n, true)
  | Tast.Vlocal_array n -> (fname ^ "." ^ vr.Tast.vr_name, n, false)
  | Tast.Vglobal | Tast.Vlocal | Tast.Vparam _ ->
      (* semant guarantees this cannot happen on an indexed reference *)
      (vr.Tast.vr_name, 0, false)

let in_extent extent =
  V.make (R.Interval.of_bounds (Fin 0) (Fin (extent - 1))) R.Congruence.top

let classify_site extent range =
  if V.is_bot range then Proved_safe
  else if
    V.equal (V.meet range (in_extent extent)) range
    (* every member within [0, extent) *)
    && (match range.V.iv with
       | R.Interval.Iv (Fin _, Fin _) -> true
       | _ -> false)
  then Proved_safe
  else if V.is_bot (V.meet range (in_extent extent)) then Proved_oob
  else Unknown

type fctx = { st : state; fname : string }

let record_site c path ~write vr range =
  let base, extent, global = storage_of c.fname vr in
  if global then acc_join c.st c.st.wr.index_union base range;
  if c.st.recording then begin
    let key = (c.fname, path, vr.Tast.vr_name, write) in
    let order =
      match Hashtbl.find_opt c.st.site_order key with
      | Some n -> n
      | None ->
          let n = c.st.site_seq in
          c.st.site_seq <- n + 1;
          Hashtbl.replace c.st.site_order key n;
          n
    in
    Hashtbl.replace c.st.site_tbl order
      {
        s_func = c.fname;
        s_path = path;
        s_array = vr.Tast.vr_name;
        s_extent = extent;
        s_write = write;
        s_range = range;
        s_verdict = classify_site extent range;
      }
  end

let summary_wr c name =
  match Hashtbl.find_opt c.st.wr.summaries name with
  | Some s -> s
  | None ->
      let s = { params = [||]; ret = V.bot; called = false } in
      Hashtbl.replace c.st.wr.summaries name s;
      s

(* The frozen summary a call's result is read from; [None] only for
   functions the post-fixpoint proves unreachable. *)
let summary_rd c name = Hashtbl.find_opt c.st.rd.summaries name

(* ------------------------------------------------------------------ *)
(* Expression evaluation (effectful: call-site summary joins, global
   clobbers, subscript recording). *)

let is_cmp = function
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge -> true
  | _ -> false

let rec eval c path env (e : Tast.texpr) : env * V.t =
  match env with
  | Dead -> (Dead, V.bot)
  | Live _ -> (
      match e.Tast.tnode with
      | Tast.Tint_lit n -> (env, V.of_const n)
      | Tast.Treal_lit _ -> (env, V.top)
      | Tast.Tvar vr -> (env, read_scalar c.st env vr)
      | Tast.Tindex (vr, ie) ->
          let env, iv = eval c path env ie in
          record_site c path ~write:false vr iv;
          let storage, _, _ = storage_of c.fname vr in
          let v =
            if e.Tast.tty = Tast.Tint then acc_get c.st.rd.content storage
            else V.top
          in
          (env, v)
      | Tast.Tunary (Ast.Uneg, a) ->
          let env, v = eval c path env a in
          (env, if e.Tast.tty = Tast.Tint then V.neg v else V.top)
      | Tast.Tunary (Ast.Unot, a) ->
          let env, _ = eval c path env a in
          (env, V.bool_result)
      | Tast.Tbinary ((Ast.Band | Ast.Bor), a, b) ->
          (* short-circuit: [b] may or may not run; its effects are
             monotone accumulator joins, so evaluating it
             unconditionally over-approximates *)
          let env, _ = eval c path env a in
          let env, _ = eval c path env b in
          (env, V.bool_result)
      | Tast.Tbinary (op, a, b) ->
          let env, va = eval c path env a in
          let env, vb = eval c path env b in
          let v =
            if e.Tast.tty <> Tast.Tint then V.top
            else if is_cmp op then V.bool_result
            else
              match op with
              | Ast.Badd -> V.add va vb
              | Ast.Bsub -> V.sub va vb
              | Ast.Bmul -> V.mul va vb
              | Ast.Bdiv -> V.div va vb
              | Ast.Bmod -> V.rem va vb
              | Ast.Bbit_and -> V.band va vb
              | Ast.Bbit_or -> V.bor va vb
              | Ast.Bbit_xor -> V.bxor va vb
              | Ast.Bshl -> V.shl va vb
              | Ast.Bshr -> V.shr va vb
              | _ -> V.top
          in
          (env, v)
      | Tast.Tcall (name, args) ->
          let env, vs =
            List.fold_left
              (fun (env, acc) a ->
                let env, v = eval c path env a in
                (env, v :: acc))
              (env, []) args
          in
          let vs = Array.of_list (List.rev vs) in
          let s = summary_wr c name in
          if not s.called then begin
            s.called <- true;
            c.st.changed <- true
          end;
          if Array.length s.params <> Array.length vs then
            s.params <- Array.map (fun _ -> V.bot) vs;
          Array.iteri
            (fun i v ->
              let cur = s.params.(i) in
              let next =
                if c.st.widening then V.widen cur (V.join cur v)
                else V.join cur v
              in
              if not (V.equal next cur) then begin
                s.params.(i) <- next;
                c.st.changed <- true
              end)
            vs;
          let env = clobber_globals env in
          let ret =
            match summary_rd c name with Some s -> s.ret | None -> V.bot
          in
          (env, if e.Tast.tty = Tast.Tint then ret else V.top)
      | Tast.Tcast (_, a) ->
          let env, v = eval c path env a in
          ( env,
            if e.Tast.tty = Tast.Tint && a.Tast.tty = Tast.Tint then v
            else V.top ))

(* Guard refinement: push the truth (or falsity) of a condition into
   the scalar operands of its comparisons. *)
let rec assume c path env (e : Tast.texpr) truth =
  match env with
  | Dead -> Dead
  | Live _ -> (
      match e.Tast.tnode with
      | Tast.Tunary (Ast.Unot, a) -> assume c path env a (not truth)
      | Tast.Tbinary (Ast.Band, a, b) when truth ->
          assume c path (assume c path env a true) b true
      | Tast.Tbinary (Ast.Bor, a, b) when not truth ->
          assume c path (assume c path env a false) b false
      | Tast.Tbinary (op, a, b) when is_cmp op ->
          let _, va = eval c path env a in
          let _, vb = eval c path env b in
          let refine =
            match (op, truth) with
            | Ast.Beq, true | Ast.Bne, false -> Some (V.assume_eq va vb)
            | Ast.Bne, true | Ast.Beq, false -> Some (V.assume_ne va vb)
            | Ast.Blt, true | Ast.Bge, false -> Some (V.assume_lt va vb)
            | Ast.Ble, true | Ast.Bgt, false -> Some (V.assume_le va vb)
            | Ast.Bgt, true | Ast.Ble, false ->
                let vb', va' = V.assume_lt vb va in
                Some (va', vb')
            | Ast.Bge, true | Ast.Blt, false ->
                let vb', va' = V.assume_le vb va in
                Some (va', vb')
            | _ -> None
          in
          (match refine with
          | None -> env
          | Some (va', vb') ->
              if V.is_bot va' || V.is_bot vb' then Dead
              else
                let set env ex v =
                  match ex.Tast.tnode with
                  | Tast.Tvar vr when ex.Tast.tty = Tast.Tint ->
                      write_scalar c.st env vr v
                  | _ -> env
                in
                set (set env a va') b vb')
      | Tast.Tvar vr when e.Tast.tty = Tast.Tint ->
          let v = read_scalar c.st env vr in
          if truth then
            (* v != 0: only endpoint shaving available *)
            let v', _ = V.assume_ne v (V.of_const 0) in
            if V.is_bot v' then Dead else write_scalar c.st env vr v'
          else
            let v' = V.meet v (V.of_const 0) in
            if V.is_bot v' then Dead else write_scalar c.st env vr v'
      | _ -> env)

(* ------------------------------------------------------------------ *)
(* Statements.  [benv] is the Bounds constant environment maintained in
   lock-step, so counted-loop classification here agrees with the
   unroller's. *)

let loop_fixpoint c st_join ~entry ~enter_body ~body_step ~exit_of =
  let inv = ref entry in
  let stable = ref false in
  let iter = ref 0 in
  while (not !stable) && !iter < 60 do
    incr iter;
    let out = body_step (enter_body !inv) in
    let nxt = st_join entry out in
    if env_equal c.st nxt !inv then stable := true
    else inv := if !iter >= 3 then env_widen c.st !inv nxt else nxt
  done;
  for _ = 1 to 2 do
    let out = body_step (enter_body !inv) in
    inv := st_join entry out
  done;
  exit_of !inv

let rec exec_stmts c (benv, env) path stmts =
  let _, benv, env =
    List.fold_left
      (fun (i, benv, env) stmt ->
        let env = exec_stmt c (benv, env) (Fmt.str "%s.%d" path i) stmt in
        (i + 1, Bounds.Env.after_stmt benv stmt, env))
      (0, benv, env) stmts
  in
  (benv, env)

and exec_stmt c (benv, env) path (stmt : Tast.tstmt) : env =
  match (stmt, env) with
  | _, Dead -> Dead
  | Tast.TSdecl (vr, init), Live _ -> (
      match vr.Tast.vr_kind with
      | Tast.Vlocal_array _ ->
          (* uninitialised stack storage: contents unknown *)
          let storage, _, _ = storage_of c.fname vr in
          acc_join c.st c.st.wr.content storage V.top;
          env
      | _ -> (
          match init with
          | None -> write_scalar c.st env vr V.top
          | Some e ->
              let env, v = eval c path env e in
              write_scalar c.st env vr
                (if vr.Tast.vr_ty = Tast.Tint then v else V.top)))
  | Tast.TSassign (vr, e), Live _ ->
      let env, v = eval c path env e in
      write_scalar c.st env vr (if vr.Tast.vr_ty = Tast.Tint then v else V.top)
  | Tast.TSindex_assign (vr, ie, ve), Live _ ->
      let env, iv = eval c path env ie in
      let env, v = eval c path env ve in
      record_site c path ~write:true vr iv;
      let storage, _, _ = storage_of c.fname vr in
      acc_join c.st c.st.wr.content storage
        (if vr.Tast.vr_ty = Tast.Tint then v else V.top);
      env
  | Tast.TSif (cond, ts, es), Live _ ->
      let env, _ = eval c path env cond in
      let t_env = assume c path env cond true in
      let e_env = assume c path env cond false in
      let _, t_out = exec_stmts c (benv, t_env) (path ^ ".then") ts in
      let _, e_out = exec_stmts c (benv, e_env) (path ^ ".else") es in
      env_join c.st t_out e_out
  | Tast.TSwhile (cond, body), Live _ ->
      let benv_body = Bounds.Env.at_body_entry benv body in
      loop_fixpoint c (env_join c.st) ~entry:env
        ~enter_body:(fun inv ->
          let inv, _ = eval c path inv cond in
          assume c path inv cond true)
        ~body_step:(fun env ->
          snd (exec_stmts c (benv_body, env) (path ^ ".body") body))
        ~exit_of:(fun inv ->
          let inv, _ = eval c path inv cond in
          assume c path inv cond false)
  | Tast.TSfor (hdr, body), Live _ -> exec_for c (benv, env) path hdr body
  | Tast.TSreturn eo, Live _ ->
      (match eo with
      | None -> ()
      | Some e ->
          let _, v = eval c path env e in
          let s = summary_wr c c.fname in
          let next =
            if c.st.widening then V.widen s.ret (V.join s.ret v)
            else V.join s.ret v
          in
          if not (V.equal next s.ret) then begin
            s.ret <- next;
            c.st.changed <- true
          end);
      Dead
  | (Tast.TSexpr e | Tast.TSsink e), Live _ ->
      let env, _ = eval c path env e in
      env

and exec_for c (benv, env) path hdr body =
  let idx = hdr.Tast.tf_var in
  let benv_body = Bounds.Env.at_loop_entry benv hdr body in
  let step = hdr.Tast.tf_step in
  match Bounds.classify benv hdr body with
  | Bounds.Counted { start; step = _; trips } when trips <= 0 ->
      write_scalar c.st env idx (V.of_const start)
  | Bounds.Counted { start; step; trips } ->
      let pin inv =
        write_scalar c.st inv idx (V.of_counted ~start ~step ~trips)
      in
      loop_fixpoint c (env_join c.st) ~entry:(pin env) ~enter_body:pin
        ~body_step:(fun env ->
          snd (exec_stmts c (benv_body, env) (path ^ ".body") body))
        ~exit_of:(fun inv ->
          write_scalar c.st inv idx (V.of_const (start + (trips * step))))
  | _ ->
      (* degenerate or symbolic bounds: desugar to the while form the
         lowering uses (limit re-evaluated every iteration) *)
      let env, v0 = eval c path env hdr.Tast.tf_init in
      let env = write_scalar c.st env idx v0 in
      let cond =
        {
          Tast.tnode =
            Tast.Tbinary (hdr.Tast.tf_cmp, Tast.var_expr idx, hdr.Tast.tf_limit);
          tty = Tast.Tint;
        }
      in
      loop_fixpoint c (env_join c.st) ~entry:env
        ~enter_body:(fun inv ->
          let inv, _ = eval c path inv cond in
          assume c path inv cond true)
        ~body_step:(fun env ->
          let _, env = exec_stmts c (benv_body, env) (path ^ ".body") body in
          match env with
          | Dead -> Dead
          | Live _ ->
              let v = read_scalar c.st env idx in
              write_scalar c.st env idx (V.add v (V.of_const step)))
        ~exit_of:(fun inv ->
          let inv, _ = eval c path inv cond in
          assume c path inv cond false)

(* ------------------------------------------------------------------ *)

let analyze_func st (f : Tast.tfunc) =
  let c = { st; fname = f.Tast.tf_name } in
  let n_params = List.length f.Tast.tf_params in
  let param i =
    match summary_rd c f.Tast.tf_name with
    | Some s when Array.length s.params = n_params -> s.params.(i)
    | _ -> V.bot
  in
  let locals =
    List.fold_left
      (fun (i, m) (vr : Tast.var_ref) ->
        let v = if vr.Tast.vr_ty = Tast.Tint then param i else V.top in
        (i + 1, SMap.add vr.Tast.vr_name v m))
      (0, SMap.empty) f.Tast.tf_params
    |> snd
  in
  ignore
    (exec_stmts c (Bounds.Env.empty, live_entry locals) f.Tast.tf_name
       f.Tast.tf_body)

let fresh_tables (p : Tast.tprogram) =
  let tb =
    {
      summaries = Hashtbl.create 17;
      glob_inv = Hashtbl.create 17;
      content = Hashtbl.create 17;
      index_union = Hashtbl.create 17;
    }
  in
  (* initial values of globals (memory starts zero-filled) *)
  List.iter
    (fun (g : Tast.tglobal) ->
      if g.Tast.tg_ty = Tast.Tint then
        let init =
          match g.Tast.tg_init with
          | Some (Ast.Cint n) -> V.of_const n
          | Some (Ast.Creal _) -> V.top
          | None -> V.of_const 0
        in
        if g.Tast.tg_words = 1 then Hashtbl.replace tb.glob_inv g.Tast.tg_name init
        else Hashtbl.replace tb.content g.Tast.tg_name init)
    p.Tast.tglobals;
  List.iter
    (fun (f : Tast.tfunc) ->
      if f.Tast.tf_name = "main" then
        Hashtbl.replace tb.summaries f.Tast.tf_name
          { params = [||]; ret = V.bot; called = true })
    p.Tast.tfuncs;
  tb

let copy_tables tb =
  {
    summaries =
      (let t = Hashtbl.create 17 in
       Hashtbl.iter
         (fun k (s : fsummary) ->
           Hashtbl.replace t k
             { params = Array.copy s.params; ret = s.ret; called = s.called })
         tb.summaries;
       t);
    glob_inv = Hashtbl.copy tb.glob_inv;
    content = Hashtbl.copy tb.content;
    index_union = Hashtbl.copy tb.index_union;
  }

let analyze (p : Tast.tprogram) : t =
  let st =
    {
      funcs = Hashtbl.create 17;
      rd = fresh_tables p;
      wr = fresh_tables p;
      widening = false;
      changed = false;
      recording = false;
      site_order = Hashtbl.create 64;
      site_seq = 0;
      site_tbl = Hashtbl.create 64;
    }
  in
  st.wr <- st.rd;
  List.iter (fun f -> Hashtbl.replace st.funcs f.Tast.tf_name f) p.Tast.tfuncs;
  let round () =
    st.changed <- false;
    List.iter
      (fun (f : Tast.tfunc) ->
        match Hashtbl.find_opt st.rd.summaries f.Tast.tf_name with
        | Some s when s.called -> analyze_func st f
        | _ -> ())
      p.Tast.tfuncs
  in
  (* ascending phase: rd and wr alias, widening after a grace period *)
  let r = ref 0 in
  let continue_ = ref true in
  while !continue_ && !r < 40 do
    incr r;
    st.widening <- !r > 6;
    round ();
    if not st.changed then continue_ := false
  done;
  (* descending (narrowing) rounds: evaluate F over the frozen
     post-fixpoint into fresh accumulators *)
  st.widening <- false;
  for _ = 1 to 2 do
    st.rd <- copy_tables st.wr;
    st.wr <- fresh_tables p;
    round ()
  done;
  (* recording round: reads from the narrowed generation *)
  st.rd <- copy_tables st.wr;
  st.wr <- fresh_tables p;
  st.recording <- true;
  round ();
  let globals_scalar =
    List.filter_map
      (fun (g : Tast.tglobal) ->
        if g.Tast.tg_ty = Tast.Tint && g.Tast.tg_words = 1 then
          Some (g.Tast.tg_name, acc_get st.rd.glob_inv g.Tast.tg_name)
        else None)
      p.Tast.tglobals
  in
  let global_arrays =
    List.filter_map
      (fun (g : Tast.tglobal) ->
        if g.Tast.tg_words > 1 then Some g.Tast.tg_name else None)
      p.Tast.tglobals
  in
  let sites =
    List.init st.site_seq (fun i -> Hashtbl.find st.site_tbl i)
  in
  {
    sites;
    scalar_ranges = globals_scalar;
    index_ranges =
      List.map (fun a -> (a, acc_get st.rd.index_union a)) global_arrays;
    content_ranges =
      List.filter_map
        (fun a ->
          if List.exists (fun (g : Tast.tglobal) -> g.Tast.tg_name = a && g.Tast.tg_ty = Tast.Tint) p.Tast.tglobals
          then Some (a, acc_get st.rd.content a)
          else None)
        global_arrays;
  }

let counts (t : t) =
  List.fold_left
    (fun (s, o, u) site ->
      match site.s_verdict with
      | Proved_safe -> (s + 1, o, u)
      | Proved_oob -> (s, o + 1, u)
      | Unknown -> (s, o, u + 1))
    (0, 0, 0) t.sites

let scalar_range t name =
  match List.assoc_opt name t.scalar_ranges with Some v -> v | None -> V.top

let index_range t name =
  match List.assoc_opt name t.index_ranges with Some v -> v | None -> V.bot
