(** Abstract interpretation of MiniMod programs over the
    {!Ilp_analysis.Range} reduced product (intervals x congruences).

    The analysis is interprocedural and runs to a global fixpoint:
    per-function summaries (joined argument ranges in, return range
    out), accumulated invariants for global scalars and array contents,
    and flow-sensitive local environments with widening at loop heads,
    truncated narrowing, comparison-guard refinement and
    {!Bounds}-aware exact ranges for counted loops.

    Its primary client is the static subscript sanitizer: every array
    access in the program receives a {!verdict} against the declared
    extent.  The exported invariants also feed the dynamic soundness
    property test (every executed subscript and every stored scalar
    must lie inside its static range). *)

type verdict = Proved_safe | Proved_oob | Unknown

val verdict_name : verdict -> string

type site = {
  s_func : string;  (** enclosing function *)
  s_path : string;  (** statement path within the function *)
  s_array : string;  (** array (or view) named by the access *)
  s_extent : int;  (** declared element count *)
  s_write : bool;
  s_range : Ilp_analysis.Range.V.t;  (** range of the subscript *)
  s_verdict : verdict;
}

type t = {
  sites : site list;  (** one per syntactic array access, program order *)
  scalar_ranges : (string * Ilp_analysis.Range.V.t) list;
      (** invariant range of each int global scalar: every value the
          cell can ever hold *)
  index_ranges : (string * Ilp_analysis.Range.V.t) list;
      (** per base global array: union of all subscript ranges used to
          access it (views included, under the base array's name) *)
  content_ranges : (string * Ilp_analysis.Range.V.t) list;
      (** per base global array: every value an element can hold *)
}

val analyze : Tast.tprogram -> t

val counts : t -> int * int * int
(** [(safe, oob, unknown)] over [sites]. *)

val scalar_range : t -> string -> Ilp_analysis.Range.V.t
(** Invariant of a global int scalar; top when untracked. *)

val index_range : t -> string -> Ilp_analysis.Range.V.t
(** Subscript union of a base global array; bottom when the program
    never accesses it. *)
