(* Random well-typed MiniMod programs, with shrinking — the fuzz corpus
   behind both the property test-suite and [ilp fuzz].

   Programs are generated as a small structured AST rather than as
   strings so that failing cases can shrink: every shrink step produces
   a program that is still well-typed, terminating and fault-free by
   the same construction rules the generator uses —

   - array subscripts are masked (& (size-1)) with power-of-two sizes,
     so they are always in range;
   - divisors and modulus operands are (expr & 7) + positive-constant,
     never zero;
   - loops are bounded counted loops whose loop variable is readable
     but never assignable in the body, so everything terminates;
   - at most one straight-line helper function, so no recursion;
   - declarations are never shrunk away, so dropping or simplifying
     code can never create a dangling variable reference.

   The generator draws from a caller-supplied [Random.State.t] (no
   QCheck dependency here — the QCheck wrapper in the test suite and
   the standalone fuzzer share this one definition of "random
   program"). *)

type expr =
  | Const of int
  | Var of string
  | Neg of expr
  | Binop of string * expr * expr  (** + - * & | ^ and comparisons *)
  | Div_mod of string * expr * expr * int
      (** [Div_mod (op, a, b, k)] renders [a op ((b & 7) + k)]:
          divisor in [k, k+7], never zero *)
  | Arr_read of string * expr * int  (** name, index, mask *)

(* Counted-loop header: every generated combination terminates because
   either the step agrees with the comparison direction and the limit
   is a constant or a never-assigned scalar, or the condition is false
   on entry (the statically-zero-trip degenerate shapes). *)
type limit = Lim_const of int | Lim_var of string

type for_header = {
  fh_init : int;
  fh_cmp : string;  (** "<", "<=", ">" or ">=" *)
  fh_limit : limit;
  fh_step : int;  (** nonzero; negative renders [lv = lv - s] *)
}

let for_up trips =
  { fh_init = 0; fh_cmp = "<"; fh_limit = Lim_const trips; fh_step = 1 }

type stmt =
  | Assign of string * expr
  | Arr_write of string * expr * int * expr  (** name, index, mask, rhs *)
  | If of expr * stmt list * stmt list
  | For of string * for_header * stmt list  (** loop var, header, body *)
  | Self_assign of string
      (** [v = v;] — the identity write.  Emitted on loop variables by
          the unroll-heavy mode: semantically nothing, but it makes the
          body assign the index, which the unroller must refuse. *)

type prog = {
  globals : (string * int) list;  (** name, initial value *)
  locals : (string * int) list;
  arrays : (string * int) list;  (** name, power-of-two size *)
  helper : expr option;  (** body of [helper(p, q)], over p and q *)
  call_helper : bool;
  stmts : stmt list;
}

let arr_words = 16

(* --- rendering --------------------------------------------------------- *)

let rec render_expr buf = function
  | Const n -> Buffer.add_string buf (string_of_int n)
  | Var v -> Buffer.add_string buf v
  | Neg e ->
      Buffer.add_string buf "(-";
      render_expr buf e;
      Buffer.add_char buf ')'
  | Binop (op, a, b) ->
      Buffer.add_char buf '(';
      render_expr buf a;
      Buffer.add_string buf (" " ^ op ^ " ");
      render_expr buf b;
      Buffer.add_char buf ')'
  | Div_mod (op, a, b, k) ->
      Buffer.add_char buf '(';
      render_expr buf a;
      Buffer.add_string buf (" " ^ op ^ " ((");
      render_expr buf b;
      Buffer.add_string buf (Printf.sprintf " & 7) + %d))" k)
  | Arr_read (a, idx, mask) ->
      Buffer.add_string buf (a ^ "[(");
      render_expr buf idx;
      Buffer.add_string buf (Printf.sprintf ") & %d]" mask)

let rec render_stmt buf indent s =
  let pad = String.make indent ' ' in
  match s with
  | Assign (v, e) ->
      Buffer.add_string buf (pad ^ v ^ " = ");
      render_expr buf e;
      Buffer.add_string buf ";\n"
  | Arr_write (a, idx, mask, e) ->
      Buffer.add_string buf (pad ^ a ^ "[(");
      render_expr buf idx;
      Buffer.add_string buf (Printf.sprintf ") & %d] = " mask);
      render_expr buf e;
      Buffer.add_string buf ";\n"
  | If (cond, then_, else_) ->
      Buffer.add_string buf (pad ^ "if (");
      render_expr buf cond;
      Buffer.add_string buf ") {\n";
      List.iter (render_stmt buf (indent + 2)) then_;
      (match else_ with
      | [] -> ()
      | _ ->
          Buffer.add_string buf (pad ^ "} else {\n");
          List.iter (render_stmt buf (indent + 2)) else_);
      Buffer.add_string buf (pad ^ "}\n")
  | For (lv, h, body) ->
      let limit =
        match h.fh_limit with
        | Lim_const n -> string_of_int n
        | Lim_var v -> v
      in
      let step =
        if h.fh_step >= 0 then Printf.sprintf "+ %d" h.fh_step
        else Printf.sprintf "- %d" (-h.fh_step)
      in
      Buffer.add_string buf
        (Printf.sprintf "%sfor (%s = %d; %s %s %s; %s = %s %s) {\n" pad lv
           h.fh_init lv h.fh_cmp limit lv lv step);
      List.iter (render_stmt buf (indent + 2)) body;
      Buffer.add_string buf (pad ^ "}\n")
  | Self_assign v -> Buffer.add_string buf (pad ^ v ^ " = " ^ v ^ ";\n")

let render (p : prog) =
  let buf = Buffer.create 512 in
  List.iter
    (fun (g, init) ->
      Buffer.add_string buf (Printf.sprintf "var %s : int = %d;\n" g init))
    p.globals;
  List.iter
    (fun (a, size) ->
      Buffer.add_string buf (Printf.sprintf "arr %s : int[%d];\n" a size))
    p.arrays;
  (match p.helper with
  | None -> ()
  | Some body ->
      Buffer.add_string buf "fun helper(p: int, q: int) : int { return ";
      render_expr buf body;
      Buffer.add_string buf "; }\n");
  Buffer.add_string buf "fun main() {\n";
  List.iter
    (fun (x, init) ->
      Buffer.add_string buf (Printf.sprintf "  var %s : int = %d;\n" x init))
    p.locals;
  Buffer.add_string buf "  var i : int = 0;\n  var j : int = 0;\n";
  List.iter (render_stmt buf 2) p.stmts;
  (match p.helper with
  | Some _ when p.call_helper ->
      let vars = List.map fst (p.globals @ p.locals) in
      let first = List.hd vars and last = List.nth vars (List.length vars - 1) in
      Buffer.add_string buf
        (Printf.sprintf "  %s = helper(%s, %s);\n"
           (fst (List.hd p.locals))
           first last)
  | _ -> ());
  (* observable result: mix everything into the sink *)
  let mix =
    String.concat " + "
      (List.map fst (p.globals @ p.locals)
      @ List.concat_map
          (fun (a, _) -> [ a ^ "[0]"; a ^ "[7]"; a ^ "[15]" ])
          p.arrays
      @ [ "i"; "j" ])
  in
  Buffer.add_string buf (Printf.sprintf "  sink(%s);\n}\n" mix);
  Buffer.contents buf

(* --- generation -------------------------------------------------------- *)

let int st lo hi = lo + Random.State.int st (hi - lo + 1)
let choose st l = List.nth l (Random.State.int st (List.length l))

(* readable variables / assignables / arrays in scope at a program point *)
type ctx = {
  int_vars : string list;
  writable : string list;
  arrs : (string * int) list;
}

let rec gen_expr st ctx depth : expr =
  if depth = 0 then gen_leaf st ctx
  else
    match int st 1 9 with
    | 1 | 2 -> gen_leaf st ctx
    | 3 | 4 | 5 ->
        Binop
          ( choose st [ "+"; "-"; "*"; "&"; "|"; "^" ],
            gen_expr st ctx (depth - 1),
            gen_expr st ctx (depth - 1) )
    | 6 ->
        Div_mod
          ( choose st [ "/"; "%" ],
            gen_expr st ctx (depth - 1),
            gen_expr st ctx (depth - 1),
            int st 1 9 )
    | 7 -> Neg (gen_expr st ctx (depth - 1))
    | 8 ->
        Binop
          ( choose st [ "=="; "!="; "<"; "<="; ">"; ">=" ],
            gen_expr st ctx (depth - 1),
            gen_expr st ctx (depth - 1) )
    | _ -> (
        match ctx.arrs with
        | [] -> gen_leaf st ctx
        | arrs ->
            let a, size = choose st arrs in
            Arr_read (a, gen_expr st ctx (depth - 1), size - 1))

and gen_leaf st ctx =
  match ctx.int_vars with
  | [] -> Const (int st 0 64)
  | vars -> if Random.State.bool st then Const (int st 0 64) else Var (choose st vars)

let gen_condition st ctx : expr =
  let a = gen_expr st ctx 1 and b = gen_expr st ctx 1 in
  match int st 0 3 with
  | 0 -> Binop ("<", a, b)
  | 1 -> Binop ("==", a, b)
  | 2 -> Binop ("&&", Binop ("<", a, b), Binop ("!=", gen_expr st ctx 1, Const 0))
  | _ -> Binop ("||", Binop (">=", a, b), Binop (">", gen_expr st ctx 1, Const 3))

let gen_assign st ctx =
  match ctx.writable with
  | [] -> Assign ("i", Const 0) (* unreachable: main always has writables *)
  | vars -> Assign (choose st vars, gen_expr st ctx 2)

let gen_arr_write st ctx =
  match ctx.arrs with
  | [] -> gen_assign st ctx
  | arrs ->
      let a, size = choose st arrs in
      Arr_write (a, gen_expr st ctx 1, size - 1, gen_expr st ctx 2)

let rec gen_stmt st ctx depth loop_vars : stmt =
  if depth = 0 then
    if Random.State.bool st then gen_assign st ctx else gen_arr_write st ctx
  else
    match int st 1 11 with
    | 1 | 2 | 3 | 4 -> gen_assign st ctx
    | 5 | 6 | 7 -> gen_arr_write st ctx
    | 8 | 9 ->
        let cond = gen_condition st ctx in
        let then_ = gen_block st ctx depth loop_vars in
        let else_ =
          if Random.State.bool st then gen_block st ctx depth loop_vars else []
        in
        If (cond, then_, else_)
    | _ -> (
        match loop_vars with
        | [] -> gen_assign st ctx
        | lv :: rest ->
            let trips = int st 1 12 in
            (* the loop variable is readable in the body but never
               assignable, so the loop always terminates *)
            let ctx' = { ctx with int_vars = lv :: ctx.int_vars } in
            For (lv, for_up trips, gen_block st ctx' depth rest))

and gen_block st ctx depth loop_vars =
  List.init (int st 1 4) (fun _ -> gen_stmt st ctx (depth - 1) loop_vars)

let generate_default (st : Random.State.t) : prog =
  let n_globals = int st 1 3 in
  let n_locals = int st 1 3 in
  let n_arrays = int st 1 2 in
  let globals =
    List.init n_globals (fun i -> (Printf.sprintf "g%d" i, int st 0 20))
  in
  let locals =
    List.init n_locals (fun i -> (Printf.sprintf "x%d" i, int st 0 20))
  in
  let arrays =
    List.init n_arrays (fun i -> (Printf.sprintf "a%d" i, arr_words))
  in
  let ctx =
    {
      int_vars = List.map fst (globals @ locals);
      writable = List.map fst (globals @ locals);
      arrs = arrays;
    }
  in
  let helper =
    Some
      (gen_expr st { int_vars = [ "p"; "q" ]; writable = []; arrs = [] } 2)
  in
  let stmts =
    List.init (int st 2 6) (fun _ -> gen_stmt st ctx 2 [ "i"; "j" ])
  in
  {
    globals;
    locals;
    arrays;
    helper;
    call_helper = Random.State.bool st;
    stmts;
  }

(* Aliasing-adversarial programs: one or two arrays hammered through
   affine indices over shared index locals — copies ([q = p], the
   pointer-copy stand-in), small positive and negative offsets applied
   before the mask, variable-plus-variable bases — the shapes the
   memory-dependence analysis must either prove apart or refuse to
   prune.  Same AST as the default mode, so rendering and shrinking are
   unchanged. *)
let generate_alias_heavy (st : Random.State.t) : prog =
  let arrays =
    List.init (int st 1 2) (fun i -> (Printf.sprintf "a%d" i, arr_words))
  in
  let globals = [ ("g0", int st 0 8) ] in
  let locals = [ ("p", int st 0 15); ("q", int st 0 15); ("x0", int st 0 20) ] in
  let index ivars =
    let base = Var (choose st ivars) in
    match int st 0 5 with
    | 0 -> base
    | 1 | 2 -> Binop ("+", base, Const (int st 1 3))
    | 3 -> Binop ("-", base, Const (int st 1 3))  (* negative before the mask *)
    | 4 -> Binop ("+", base, Var (choose st ivars))
    | _ -> Binop ("+", base, Var "g0")
  in
  let arr_rw ivars =
    let a, size = choose st arrays in
    let r, rsize = choose st arrays in
    let rhs =
      Binop
        ( choose st [ "+"; "-"; "^" ],
          Arr_read (r, index ivars, rsize - 1),
          if Random.State.bool st then Var (choose st ivars)
          else Const (int st 0 9) )
    in
    Arr_write (a, index ivars, size - 1, rhs)
  in
  let rec stmt depth ivars loop_vars =
    match int st 1 10 with
    | 1 -> Assign ("p", index ivars)
    | 2 -> Assign ("q", Var "p")
    | 3 ->
        Assign
          ( "q",
            Binop
              ( (if Random.State.bool st then "+" else "-"),
                Var "p",
                Const (int st 1 2) ) )
    | 4 when depth > 0 ->
        If
          ( Binop ("<", Var (choose st ivars), Const (int st 2 9)),
            block (depth - 1) ivars loop_vars,
            if Random.State.bool st then block (depth - 1) ivars loop_vars
            else [] )
    | (5 | 6) when depth > 0 -> (
        match loop_vars with
        | [] -> arr_rw ivars
        | lv :: rest ->
            For (lv, for_up (int st 2 8), block (depth - 1) (lv :: ivars) rest))
    | _ -> arr_rw ivars
  and block depth ivars loop_vars =
    List.init (int st 2 5) (fun _ -> stmt depth ivars loop_vars)
  in
  let stmts = block 2 [ "p"; "q" ] [ "i"; "j" ] in
  { globals; locals; arrays; helper = None; call_helper = false; stmts }

(* Unrolling-adversarial programs: innermost counted loops with the
   boundary trip counts the bound-aware unroller must get right — 0, 1,
   factor−1, factor and factor+1 for factors up to 8 — down-counting
   loops, steps beyond 1, inclusive comparisons, statically-zero-trip
   degenerate headers (step fighting the comparison with the condition
   false on entry, so execution still terminates), occasional index
   self-assignment (the [index_mutated] skip must fire, not miscompile)
   and loops whose limit lives in a never-assigned scalar the bound
   analysis cannot fold (the classic remainder path).  [s0] gives the
   careful mode accumulation chains to split. *)
let generate_unroll_heavy (st : Random.State.t) : prog =
  let globals = [ ("g0", int st 0 20); ("n0", int st 0 12) ] in
  let locals = [ ("x0", int st 0 20); ("s0", int st 0 9) ] in
  let arrays = [ ("a0", arr_words) ] in
  (* n0 is deliberately not writable: it may appear as a loop limit *)
  let ctx =
    {
      int_vars = [ "g0"; "n0"; "x0"; "s0" ];
      writable = [ "g0"; "x0"; "s0" ];
      arrs = arrays;
    }
  in
  let boundary_trips () =
    let f = choose st [ 2; 3; 4; 8 ] in
    match int st 0 4 with
    | 0 -> 0
    | 1 -> 1
    | 2 -> f - 1
    | 3 -> f
    | _ -> f + 1
  in
  let header () =
    let trips = boundary_trips () in
    match int st 0 9 with
    | 0 | 1 | 2 -> for_up trips
    | 3 ->
        { fh_init = int st 0 2;
          fh_cmp = "<";
          fh_limit = Lim_const (int st 0 12);
          fh_step = int st 2 3;
        }
    | 4 ->
        { fh_init = 0;
          fh_cmp = "<=";
          fh_limit = Lim_const (trips - 1);
          fh_step = 1;
        }
    | 5 | 6 ->
        { fh_init = trips; fh_cmp = ">"; fh_limit = Lim_const 0; fh_step = -1 }
    | 7 ->
        { fh_init = int st 4 12;
          fh_cmp = ">=";
          fh_limit = Lim_const (int st 0 3);
          fh_step = -(int st 1 2);
        }
    | 8 ->
        (* unknown bound: n0 is never assigned, so the loop terminates
           but the bound analysis must classify it Well_formed *)
        { fh_init = 0; fh_cmp = "<"; fh_limit = Lim_var "n0"; fh_step = 1 }
    | _ ->
        (* degenerate direction, false on entry: zero trips *)
        { fh_init = 0;
          fh_cmp = ">";
          fh_limit = Lim_const (int st 0 6);
          fh_step = 1;
        }
  in
  let rec stmt ctx depth loop_vars : stmt =
    match int st 1 12 with
    | 1 | 2 -> gen_assign st ctx
    | 3 | 4 -> gen_arr_write st ctx
    | 5 | 6 -> Assign ("s0", Binop ("+", Var "s0", gen_expr st ctx 1))
    | 7 when depth > 0 ->
        If (gen_condition st ctx, block ctx (depth - 1) loop_vars, [])
    | _ -> (
        match loop_vars with
        | [] -> Assign ("s0", Binop ("+", Var "s0", gen_expr st ctx 1))
        | lv :: rest ->
            let ctx' = { ctx with int_vars = lv :: ctx.int_vars } in
            let body = block ctx' (if depth > 0 then depth - 1 else 0) rest in
            let body =
              if int st 0 5 = 0 then body @ [ Self_assign lv ] else body
            in
            For (lv, header (), body))
  and block ctx depth loop_vars =
    List.init (int st 1 3) (fun _ -> stmt ctx depth loop_vars)
  in
  let stmts = List.init (int st 3 6) (fun _ -> stmt ctx 2 [ "i"; "j" ]) in
  { globals; locals; arrays; helper = None; call_helper = false; stmts }

(* Range-adversarial programs: subscripts whose safety — and whose
   mutual independence — is a value-range fact rather than a
   constant-offset fact.  Strided indices ([(v & m) * 2], [* 2 + 1],
   [* 3 + o]) interleave even and odd (or mod-3) cells of one array;
   window indices split another between an upper half ([8 + (v & 7)])
   and a masked lower half.  Loop bounds sit near the array extents and
   nested counted loops drive monotone accumulators through the
   widening/narrowing machinery.  Every subscript is built to already
   lie inside the array, so the rendered safety mask is the identity —
   the range analysis must carry interval and congruence information
   through multiply, add and mask to prove any of it.  Same AST as the
   default mode, so rendering and shrinking are unchanged. *)
let generate_range_heavy (st : Random.State.t) : prog =
  let arrays = [ ("a0", 32); ("r0", arr_words) ] in
  let globals = [ ("g0", int st 0 8) ] in
  let locals = [ ("p", int st 0 15); ("x0", int st 0 20); ("s0", int st 0 9) ] in
  (* strided index into a0, always in [0, 31] before the mask *)
  let stride_index ivars =
    let v = Var (choose st ivars) in
    match int st 0 6 with
    | 0 -> Binop ("*", Binop ("&", v, Const 15), Const 2)
    | 1 ->
        Binop ("+", Binop ("*", Binop ("&", v, Const 15), Const 2), Const 1)
    | 2 -> Binop ("*", Binop ("&", v, Const 7), Const 3)
    | 3 ->
        Binop
          ("+", Binop ("*", Binop ("&", v, Const 7), Const 3),
           Const (int st 1 2))
    | 4 -> Binop ("+", Const 16, Binop ("&", v, Const 15))
    | _ -> Binop ("&", Binop ("+", v, Const (int st 0 5)), Const 15)
  in
  (* split-window index into r0: upper half [8, 15] or lower [0, 7] *)
  let ring_index ivars =
    let v = Var (choose st ivars) in
    if Random.State.bool st then Binop ("+", Const 8, Binop ("&", v, Const 7))
    else Binop ("&", Binop ("+", v, Const (int st 0 4)), Const 7)
  in
  let arr_rw ivars =
    if int st 0 2 = 0 then
      Arr_write
        ( "r0", ring_index ivars, arr_words - 1,
          Binop
            ( choose st [ "+"; "^" ],
              Arr_read ("r0", ring_index ivars, arr_words - 1),
              if Random.State.bool st then Var (choose st ivars)
              else Const (int st 0 9) ) )
    else
      Arr_write
        ( "a0", stride_index ivars, 31,
          Binop
            ( choose st [ "+"; "-"; "^" ],
              Arr_read ("a0", stride_index ivars, 31),
              if Random.State.bool st then Var (choose st ivars)
              else Const (int st 0 9) ) )
  in
  let rec stmt depth ivars loop_vars =
    match int st 1 10 with
    | 1 -> Assign ("p", Binop ("&", Var (choose st ivars), Const 15))
    (* monotone accumulators: ascending chains the widening must cut *)
    | 2 -> Assign ("x0", Binop ("+", Var "x0", Const (int st 1 3)))
    | 3 -> Assign ("s0", Binop ("&", Binop ("+", Var "s0", Var "x0"), Const 1023))
    | 4 when depth > 0 ->
        If
          ( Binop ("<", Var "x0", Const (int st 50 200)),
            block (depth - 1) ivars loop_vars,
            if Random.State.bool st then block (depth - 1) ivars loop_vars
            else [] )
    | (5 | 6 | 7) when depth > 0 -> (
        match loop_vars with
        | [] -> arr_rw ivars
        | lv :: rest ->
            (* trip counts near the array extents *)
            For
              ( lv,
                for_up (int st 13 18),
                block (depth - 1) (lv :: ivars) rest ))
    | _ -> arr_rw ivars
  and block depth ivars loop_vars =
    List.init (int st 2 5) (fun _ -> stmt depth ivars loop_vars)
  in
  let stmts = block 3 [ "p"; "g0" ] [ "i"; "j" ] in
  { globals; locals; arrays; helper = None; call_helper = false; stmts }

let generate ?(mode = `Default) (st : Random.State.t) : prog =
  match mode with
  | `Default -> generate_default st
  | `Alias_heavy -> generate_alias_heavy st
  | `Unroll_heavy -> generate_unroll_heavy st
  | `Range_heavy -> generate_range_heavy st

(* --- shrinking --------------------------------------------------------- *)

(* Candidate simplifications of an expression, simplest first.  Every
   candidate only removes structure, so scoping and safety are
   preserved. *)
let rec shrink_expr (e : expr) : expr Seq.t =
  match e with
  | Const 0 -> Seq.empty
  | Const _ -> Seq.return (Const 0)
  | Var _ -> Seq.return (Const 0)
  | Neg a -> Seq.cons (Const 0) (Seq.cons a (Seq.map (fun a -> Neg a) (shrink_expr a)))
  | Binop (op, a, b) ->
      List.to_seq [ Const 0; a; b ]
      |> fun s ->
      Seq.append s
        (Seq.append
           (Seq.map (fun a -> Binop (op, a, b)) (shrink_expr a))
           (Seq.map (fun b -> Binop (op, a, b)) (shrink_expr b)))
  | Div_mod (op, a, b, k) ->
      List.to_seq [ Const 0; a ]
      |> fun s ->
      Seq.append s
        (Seq.append
           (Seq.map (fun a -> Div_mod (op, a, b, k)) (shrink_expr a))
           (Seq.map (fun b -> Div_mod (op, a, b, k)) (shrink_expr b)))
  | Arr_read (a, idx, mask) ->
      Seq.cons (Const 0)
        (Seq.map (fun idx -> Arr_read (a, idx, mask)) (shrink_expr idx))

(* Replace element [k] of [l] by each of [f l_k], or drop it. *)
let shrink_list (shrink_elt : 'a -> 'a Seq.t) (drop : bool) (l : 'a list) :
    'a list Seq.t =
  let n = List.length l in
  let dropped =
    if drop then
      Seq.init n (fun k -> List.filteri (fun i _ -> i <> k) l)
    else Seq.empty
  in
  let replaced =
    Seq.concat
      (Seq.init n (fun k ->
           Seq.map
             (fun e -> List.mapi (fun i x -> if i = k then e else x) l)
             (shrink_elt (List.nth l k))))
  in
  Seq.append dropped replaced

let rec shrink_stmt (s : stmt) : stmt Seq.t =
  match s with
  | Assign (v, e) -> Seq.map (fun e -> Assign (v, e)) (shrink_expr e)
  | Arr_write (a, idx, mask, e) ->
      Seq.append
        (Seq.map (fun idx -> Arr_write (a, idx, mask, e)) (shrink_expr idx))
        (Seq.map (fun e -> Arr_write (a, idx, mask, e)) (shrink_expr e))
  | If (cond, then_, else_) ->
      (* structural shrinks first: a branch alone (wrapped to keep it a
         single statement), then branch deletion, then recursion *)
      Seq.append
        (List.to_seq
           [ If (Const 1, then_, []); If (Const 1, else_, []) ]
        |> Seq.filter (function If (_, [], []) -> false | s' -> s' <> s))
        (Seq.append
           (Seq.map (fun then_ -> If (cond, then_, else_))
              (shrink_stmts then_))
           (Seq.append
              (Seq.map (fun else_ -> If (cond, then_, else_))
                 (shrink_stmts else_))
              (Seq.map (fun cond -> If (cond, then_, else_))
                 (shrink_expr cond))))
  | For (lv, hdr, body) ->
      (* a non-trivial header simplifies to a short plain up-count —
         strictly smaller by the header cost in [stmt_size] *)
      Seq.append
        (List.to_seq [ If (Const 1, body, []); For (lv, for_up 2, body) ]
        |> Seq.filter (fun s' -> s' <> s))
      @@ Seq.map (fun body -> For (lv, hdr, body)) (shrink_stmts body)
  | Self_assign _ -> Seq.empty (* droppable as a list element only *)

and shrink_stmts (l : stmt list) : stmt list Seq.t =
  shrink_list shrink_stmt true l

(* One round of candidate simplifications of a whole program, shallowest
   (biggest) first: drop a top-level statement, simplify a statement,
   drop the helper call, drop the helper. *)
let shrink_step (p : prog) : prog Seq.t =
  let stmts = Seq.map (fun stmts -> { p with stmts }) (shrink_stmts p.stmts) in
  let helper =
    match (p.helper, p.call_helper) with
    | Some _, true -> Seq.return { p with call_helper = false }
    | Some _, false -> Seq.return { p with helper = None }
    | None, _ -> Seq.empty
  in
  Seq.append stmts helper

(* AST node count, the measure that guarantees shrinking terminates. *)
let rec expr_size = function
  | Const _ | Var _ -> 1
  | Neg a -> 1 + expr_size a
  | Binop (_, a, b) | Div_mod (_, a, b, _) -> 1 + expr_size a + expr_size b
  | Arr_read (_, idx, _) -> 1 + expr_size idx

(* a plain up-counting unit-step constant-bound header costs nothing;
   anything richer costs one node, so shrinking a down-count or
   variable-bound loop to [for_up] is a strict decrease *)
let header_size h =
  match h with
  | { fh_init = 0; fh_cmp = "<"; fh_limit = Lim_const _; fh_step = 1 } -> 0
  | _ -> 1

let rec stmt_size = function
  | Assign (_, e) -> 1 + expr_size e
  | Arr_write (_, idx, _, e) -> 1 + expr_size idx + expr_size e
  | If (cond, then_, else_) ->
      1 + expr_size cond + stmts_size then_ + stmts_size else_
  | For (_, hdr, body) -> 1 + header_size hdr + stmts_size body
  | Self_assign _ -> 1

and stmts_size l = List.fold_left (fun acc s -> acc + stmt_size s) 0 l

let size (p : prog) =
  stmts_size p.stmts
  + (match p.helper with Some e -> 1 + expr_size e | None -> 0)
  + (if p.call_helper then 1 else 0)

(* Iteration-deepening greedy shrink: repeatedly take the first
   candidate that still fails, restarting the candidate scan from the
   shallowest simplifications after every success, until no candidate
   fails.  [still_fails] must be true of [p] itself.

   Only strictly smaller candidates are accepted — a few shrink_step
   rewrites are size-neutral (e.g. replacing an if condition by a
   constant), and without the strict decrease two failing size-neutral
   rewrites could ping-pong forever. *)
let shrink ~(still_fails : prog -> bool) (p : prog) : prog =
  let rec fixpoint p =
    let sz = size p in
    match
      Seq.find (fun c -> size c < sz && still_fails c) (shrink_step p)
    with
    | Some p' -> fixpoint p'
    | None -> p
  in
  fixpoint p
