(* Typed abstract syntax, produced by semantic analysis.

   Every expression carries its type and every variable reference its
   resolved kind, so later phases (loop unrolling, code generation) need
   no symbol tables. *)

type ty = Ast.ty = Tint | Treal [@@deriving eq, show { with_path = false }]

type kind =
  | Vglobal
  | Vglobal_array of int  (** element count *)
  | Vview of string * int  (** declared-disjoint view: base array, count *)
  | Vlocal
  | Vlocal_array of int
  | Vparam of int  (** parameter index *)
[@@deriving eq, show { with_path = false }]

type var_ref = { vr_name : string; vr_ty : ty; vr_kind : kind }
[@@deriving eq, show { with_path = false }]

type texpr = { tnode : tnode; tty : ty }

and tnode =
  | Tint_lit of int
  | Treal_lit of float
  | Tvar of var_ref
  | Tindex of var_ref * texpr
  | Tunary of Ast.unop * texpr
  | Tbinary of Ast.binop * texpr * texpr
  | Tcall of string * texpr list
  | Tcast of ty * texpr
[@@deriving eq, show { with_path = false }]

type tfor = {
  tf_var : var_ref;
  tf_init : texpr;
  tf_cmp : Ast.binop;
  tf_limit : texpr;
  tf_step : int;
}
[@@deriving eq, show { with_path = false }]

type tstmt =
  | TSdecl of var_ref * texpr option
  | TSassign of var_ref * texpr
  | TSindex_assign of var_ref * texpr * texpr
  | TSif of texpr * tstmt list * tstmt list
  | TSwhile of texpr * tstmt list
  | TSfor of tfor * tstmt list
  | TSreturn of texpr option
  | TSexpr of texpr
  | TSsink of texpr
[@@deriving eq, show { with_path = false }]

type tfunc = {
  tf_name : string;
  tf_params : var_ref list;
  tf_return : ty option;
  tf_body : tstmt list;
}
[@@deriving eq, show { with_path = false }]

type tglobal = {
  tg_name : string;
  tg_ty : ty;
  tg_words : int;  (** 1 for scalars *)
  tg_init : Ast.const option;
}
[@@deriving eq, show { with_path = false }]

type tview = { tv_name : string; tv_base : string }
[@@deriving eq, show { with_path = false }]

type tprogram = {
  tglobals : tglobal list;
  tviews : tview list;
  tfuncs : tfunc list;
}
[@@deriving eq, show { with_path = false }]

let int_expr n = { tnode = Tint_lit n; tty = Tint }
let var_expr vr = { tnode = Tvar vr; tty = vr.vr_ty }

let is_array vr =
  match vr.vr_kind with
  | Vglobal_array _ | Vlocal_array _ | Vview _ -> true
  | Vglobal | Vlocal | Vparam _ -> false

(* Calls appearing anywhere in an expression tree; used to decide whether
   evaluation can be freely reordered or duplicated. *)
let rec contains_call e =
  match e.tnode with
  | Tcall _ -> true
  | Tint_lit _ | Treal_lit _ | Tvar _ -> false
  | Tindex (_, i) -> contains_call i
  | Tunary (_, a) | Tcast (_, a) -> contains_call a
  | Tbinary (_, a, b) -> contains_call a || contains_call b

let rec map_expr f e =
  let e' =
    match e.tnode with
    | Tint_lit _ | Treal_lit _ | Tvar _ -> e
    | Tindex (v, i) -> { e with tnode = Tindex (v, map_expr f i) }
    | Tunary (op, a) -> { e with tnode = Tunary (op, map_expr f a) }
    | Tbinary (op, a, b) ->
        { e with tnode = Tbinary (op, map_expr f a, map_expr f b) }
    | Tcall (n, args) -> { e with tnode = Tcall (n, List.map (map_expr f) args) }
    | Tcast (t, a) -> { e with tnode = Tcast (t, map_expr f a) }
  in
  f e'
