(** Recursive-descent parser for MiniMod.

    Grammar sketch:
    {v
    program  := topdecl*
    topdecl  := "var" id ":" ty ("=" literal)? ";"
              | "arr" id ":" ty "[" int "]" ";"
              | "view" id "of" id ";"
              | "fun" id "(" params? ")" (":" ty)? block
    stmt     := "var" id ":" ty ("=" expr)? ";"
              | "arr" id ":" ty "[" int "]" ";"
              | id "=" expr ";"  |  id "[" expr "]" "=" expr ";"
              | "if" "(" expr ")" block ("else" (block | if-stmt))?
              | "while" "(" expr ")" block
              | "for" "(" id "=" e ";" id cmp e ";" id "=" id +/- int ")" block
              | "return" expr? ";"  |  "sink" "(" expr ")" ";"  |  expr ";"
    expr     := precedence climbing: || && | ^ & ==/!= </<=/>/>= <</>>
                +/- * / % with unary - and ! (C-like precedence)
    v} *)

exception Error of string * Ast.pos

val parse_program : string -> Ast.program
(** Raises {!Error} or {!Lexer.Error} on malformed input. *)
