(** Semantic analysis: name resolution and type checking, lowering the
    raw AST to the typed AST.

    Typing rules:
    - arithmetic (+ - * /) on two ints is int, on two reals is real; a
      mixed operation promotes the int operand to real;
    - [%], shifts, bitwise and the short-circuit [&&]/[||] require ints;
    - comparisons produce int (0 or 1);
    - assignment promotes int to real implicitly; real to int requires an
      explicit [int(...)];
    - array subscripts are ints;
    - a for-loop variable is an already-declared int scalar;
    - a [view] must name a declared global array. *)

exception Error of string * Ast.pos

val check_program : Ast.program -> Tast.tprogram

val compile_source : string -> Tast.tprogram
(** Parse and check in one step: the usual entry point. *)
