(* Code generation: typed AST to IR.

   Conventions (see DESIGN.md):
   - memory is word addressed; globals are laid out from
     [Program.globals_base] upward in declaration order, the stack grows
     downward from the top of memory;
   - every MiniMod variable lives in memory at this stage: globals at
     absolute addresses, locals and parameters in the stack frame.  Each
     access emits an explicit load or store, exactly the code the paper's
     "no global register allocation" configuration sees; the register
     allocator later promotes hot variables into home registers;
   - expression temporaries are fresh virtual registers whose live ranges
     never cross a basic-block boundary (conditions are compiled with
     branches, variables through memory), which the temp allocator relies
     on;
   - frame layout, for a function with [nargs] parameters and [L] local
     words: locals at sp+0 .. sp+L-1, incoming argument [i] at
     sp+F-nargs+i with F = L + nargs.  The prologue is "add sp, sp, -F",
     each return runs "add sp, sp, F" before [ret].  Callers store
     outgoing argument [i] at sp-nargs+i, below their own frame;
   - the return value travels in [Instr.ret_reg];
   - a designated one-word global [sink_name] receives values from
     [sink(e)], keeping benchmark computations observably live. *)

open Ilp_ir

let sink_name = "__sink"

exception Error of string

type var_location =
  | Loc_global of int  (** absolute address *)
  | Loc_global_array of int  (** absolute base address *)
  | Loc_view of int * string  (** base address, base array name *)
  | Loc_local of int  (** frame slot *)
  | Loc_local_array of int  (** first frame slot *)
  | Loc_param of int  (** parameter index *)

type func_state = {
  fname : string;
  nargs : int;
  frame_size : int;
  locations : (string, var_location) Hashtbl.t;
  global_addrs : (string, int) Hashtbl.t;
  mutable current_label : Label.t;
  mutable current_instrs : Instr.t list;  (** reversed *)
  mutable blocks : Block.t list;  (** reversed *)
}

let emit st i = st.current_instrs <- i :: st.current_instrs

(* Close the current block.  [terminated] tells whether the block already
   ends in a terminator; if not it falls through to the next block. *)
let close_block st =
  let block = Block.make st.current_label (List.rev st.current_instrs) in
  st.blocks <- block :: st.blocks;
  st.current_instrs <- []

let start_block st label =
  close_block st;
  st.current_label <- label

let fresh_label st hint = Label.fresh (st.fname ^ "." ^ hint)

(* --- variable locations ----------------------------------------------- *)

let location st name =
  match Hashtbl.find_opt st.locations name with
  | Some loc -> loc
  | None -> raise (Error ("codegen: no location for variable " ^ name))

let param_offset st i = st.frame_size - st.nargs + i

(* Load a scalar variable into a fresh virtual register. *)
let load_var st (vr : Tast.var_ref) =
  let v = Reg.virt () in
  (match location st vr.Tast.vr_name with
  | Loc_global addr ->
      emit st
        (Instr.make Opcode.Ld ~dst:v ~srcs:[ Instr.Oimm addr ]
           ~mem:(Mem_info.make (Mem_info.Global vr.Tast.vr_name)
                   (Mem_info.Const addr)))
  | Loc_local slot ->
      emit st
        (Instr.make Opcode.Ld ~dst:v ~srcs:[ Instr.Oreg Reg.sp ] ~offset:slot
           ~mem:(Mem_info.make (Mem_info.Stack_slot (st.fname, slot))
                   (Mem_info.Const slot)))
  | Loc_param i ->
      emit st
        (Instr.make Opcode.Ld ~dst:v ~srcs:[ Instr.Oreg Reg.sp ]
           ~offset:(param_offset st i)
           ~mem:(Mem_info.make (Mem_info.Arg_slot (st.fname, i))
                   (Mem_info.Const i)))
  | Loc_global_array _ | Loc_local_array _ | Loc_view _ ->
      raise (Error ("codegen: array used as scalar: " ^ vr.Tast.vr_name)));
  v

let store_var st (vr : Tast.var_ref) value =
  match location st vr.Tast.vr_name with
  | Loc_global addr ->
      emit st
        (Instr.make Opcode.St ~srcs:[ Instr.Oreg value; Instr.Oimm addr ]
           ~mem:(Mem_info.make (Mem_info.Global vr.Tast.vr_name)
                   (Mem_info.Const addr)))
  | Loc_local slot ->
      emit st
        (Instr.make Opcode.St
           ~srcs:[ Instr.Oreg value; Instr.Oreg Reg.sp ]
           ~offset:slot
           ~mem:(Mem_info.make (Mem_info.Stack_slot (st.fname, slot))
                   (Mem_info.Const slot)))
  | Loc_param i ->
      emit st
        (Instr.make Opcode.St
           ~srcs:[ Instr.Oreg value; Instr.Oreg Reg.sp ]
           ~offset:(param_offset st i)
           ~mem:(Mem_info.make (Mem_info.Arg_slot (st.fname, i))
                   (Mem_info.Const i)))
  | Loc_global_array _ | Loc_local_array _ | Loc_view _ ->
      raise (Error ("codegen: array used as scalar: " ^ vr.Tast.vr_name))

(* --- expressions -------------------------------------------------------- *)

let binop_int_opcode = function
  | Ast.Badd -> Opcode.Add
  | Ast.Bsub -> Opcode.Sub
  | Ast.Bmul -> Opcode.Mul
  | Ast.Bdiv -> Opcode.Div
  | Ast.Bmod -> Opcode.Rem
  | Ast.Bbit_and -> Opcode.And
  | Ast.Bbit_or -> Opcode.Or
  | Ast.Bbit_xor -> Opcode.Xor
  | Ast.Bshl -> Opcode.Shl
  | Ast.Bshr -> Opcode.Sra
  | Ast.Beq | Ast.Bne | Ast.Blt | Ast.Ble | Ast.Bgt | Ast.Bge | Ast.Band
  | Ast.Bor ->
      raise (Error "codegen: not a direct int binop")

let binop_real_opcode = function
  | Ast.Badd -> Opcode.Fadd
  | Ast.Bsub -> Opcode.Fsub
  | Ast.Bmul -> Opcode.Fmul
  | Ast.Bdiv -> Opcode.Fdiv
  | _ -> raise (Error "codegen: not a real binop")

let rec gen_expr st (e : Tast.texpr) : Reg.t =
  match e.Tast.tnode with
  | Tast.Tint_lit n ->
      let v = Reg.virt () in
      emit st (Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm n ]);
      v
  | Tast.Treal_lit f ->
      let v = Reg.virt () in
      emit st (Instr.make Opcode.Fli ~dst:v ~srcs:[ Instr.Ofimm f ]);
      v
  | Tast.Tvar vr -> load_var st vr
  | Tast.Tindex (vr, idx) -> gen_index_access st vr idx
  | Tast.Tunary (Ast.Uneg, a) ->
      let ra = gen_expr st a in
      let v = Reg.virt () in
      let op = if a.Tast.tty = Ast.Treal then Opcode.Fneg else Opcode.Neg in
      emit st (Instr.make op ~dst:v ~srcs:[ Instr.Oreg ra ]);
      v
  | Tast.Tunary (Ast.Unot, a) ->
      let ra = gen_expr st a in
      let v = Reg.virt () in
      emit st (Instr.make Opcode.Seq ~dst:v ~srcs:[ Instr.Oreg ra; Instr.Oimm 0 ]);
      v
  | Tast.Tbinary ((Ast.Band | Ast.Bor) as op, a, b) ->
      (* value context: strict evaluation on normalized booleans *)
      let ra = gen_expr st a in
      let rb = gen_expr st b in
      let na = Reg.virt () and nb = Reg.virt () and v = Reg.virt () in
      emit st (Instr.make Opcode.Sne ~dst:na ~srcs:[ Instr.Oreg ra; Instr.Oimm 0 ]);
      emit st (Instr.make Opcode.Sne ~dst:nb ~srcs:[ Instr.Oreg rb; Instr.Oimm 0 ]);
      let bop = if op = Ast.Band then Opcode.And else Opcode.Or in
      emit st (Instr.make bop ~dst:v ~srcs:[ Instr.Oreg na; Instr.Oreg nb ]);
      v
  | Tast.Tbinary (op, a, b) when Ast.is_comparison op ->
      gen_comparison st op a b
  | Tast.Tbinary (op, a, b) ->
      let ra = gen_expr st a in
      let rb = gen_expr st b in
      let v = Reg.virt () in
      let opcode =
        if e.Tast.tty = Ast.Treal then binop_real_opcode op
        else binop_int_opcode op
      in
      emit st (Instr.make opcode ~dst:v ~srcs:[ Instr.Oreg ra; Instr.Oreg rb ]);
      v
  | Tast.Tcall (name, args) -> gen_call st name args
  | Tast.Tcast (ty, a) ->
      let ra = gen_expr st a in
      if ty = a.Tast.tty then ra
      else
        let v = Reg.virt () in
        let op = if ty = Ast.Treal then Opcode.Itof else Opcode.Ftoi in
        emit st (Instr.make op ~dst:v ~srcs:[ Instr.Oreg ra ]);
        v

(* Comparison producing 0/1.  Integer comparisons map to set instructions
   (swapping operands for > and >=); real comparisons go through the FP
   compare instructions, negated via seq when needed. *)
and gen_comparison st op a b =
  let real = a.Tast.tty = Ast.Treal in
  let ra = gen_expr st a in
  let rb = gen_expr st b in
  let v = Reg.virt () in
  if not real then begin
    let opcode, x, y =
      match op with
      | Ast.Beq -> (Opcode.Seq, ra, rb)
      | Ast.Bne -> (Opcode.Sne, ra, rb)
      | Ast.Blt -> (Opcode.Slt, ra, rb)
      | Ast.Ble -> (Opcode.Sle, ra, rb)
      | Ast.Bgt -> (Opcode.Slt, rb, ra)
      | Ast.Bge -> (Opcode.Sle, rb, ra)
      | _ -> raise (Error "codegen: not a comparison")
    in
    emit st (Instr.make opcode ~dst:v ~srcs:[ Instr.Oreg x; Instr.Oreg y ]);
    v
  end
  else begin
    (match op with
    | Ast.Beq ->
        emit st (Instr.make Opcode.Feq ~dst:v ~srcs:[ Instr.Oreg ra; Instr.Oreg rb ])
    | Ast.Blt ->
        emit st (Instr.make Opcode.Flt ~dst:v ~srcs:[ Instr.Oreg ra; Instr.Oreg rb ])
    | Ast.Ble ->
        emit st (Instr.make Opcode.Fle ~dst:v ~srcs:[ Instr.Oreg ra; Instr.Oreg rb ])
    | Ast.Bgt ->
        emit st (Instr.make Opcode.Flt ~dst:v ~srcs:[ Instr.Oreg rb; Instr.Oreg ra ])
    | Ast.Bge ->
        emit st (Instr.make Opcode.Fle ~dst:v ~srcs:[ Instr.Oreg rb; Instr.Oreg ra ])
    | Ast.Bne ->
        let t = Reg.virt () in
        emit st (Instr.make Opcode.Feq ~dst:t ~srcs:[ Instr.Oreg ra; Instr.Oreg rb ]);
        emit st (Instr.make Opcode.Seq ~dst:v ~srcs:[ Instr.Oreg t; Instr.Oimm 0 ])
    | _ -> raise (Error "codegen: not a comparison"));
    v
  end

(* Array element access.  The index peephole recognises i, i+c and i-c so
   that the memory annotation records a symbolic offset the scheduler can
   disambiguate (A[i] vs A[i+1] in unrolled loops). *)
and gen_index_parts st (idx : Tast.texpr) : Reg.t option * int =
  match idx.Tast.tnode with
  | Tast.Tint_lit n -> (None, n)
  | Tast.Tbinary (Ast.Badd, e, { Tast.tnode = Tast.Tint_lit c; _ }) ->
      let base, c' = gen_index_parts st e in
      (base, c + c')
  | Tast.Tbinary (Ast.Badd, { Tast.tnode = Tast.Tint_lit c; _ }, e) ->
      let base, c' = gen_index_parts st e in
      (base, c + c')
  | Tast.Tbinary (Ast.Bsub, e, { Tast.tnode = Tast.Tint_lit c; _ }) ->
      let base, c' = gen_index_parts st e in
      (base, c' - c)
  | Tast.Tvar vr -> (Some (load_var st vr), 0)
  | _ -> (Some (gen_expr st idx), 0)

and gen_index_address st (vr : Tast.var_ref) idx :
    Instr.operand * int * Mem_info.t =
  let index_reg, const = gen_index_parts st idx in
  match (location st vr.Tast.vr_name, index_reg) with
  | Loc_global_array base, Some ri ->
      ( Instr.Oreg ri,
        base + const,
        Mem_info.make (Mem_info.Global_array vr.Tast.vr_name)
          (Mem_info.Sym (ri, const)) )
  | Loc_global_array base, None ->
      ( Instr.Oimm (base + const),
        0,
        Mem_info.make (Mem_info.Global_array vr.Tast.vr_name)
          (Mem_info.Const const) )
  | Loc_view (base, array_name), Some ri ->
      ( Instr.Oreg ri,
        base + const,
        Mem_info.make
          (Mem_info.Global_array_view (array_name, vr.Tast.vr_name))
          (Mem_info.Sym (ri, const)) )
  | Loc_view (base, array_name), None ->
      ( Instr.Oimm (base + const),
        0,
        Mem_info.make
          (Mem_info.Global_array_view (array_name, vr.Tast.vr_name))
          (Mem_info.Const const) )
  | Loc_local_array slot, Some ri ->
      let addr = Reg.virt () in
      emit st
        (Instr.make Opcode.Add ~dst:addr
           ~srcs:[ Instr.Oreg Reg.sp; Instr.Oreg ri ]);
      ( Instr.Oreg addr,
        slot + const,
        Mem_info.make (Mem_info.Stack_array (st.fname, slot))
          (Mem_info.Sym (ri, const)) )
  | Loc_local_array slot, None ->
      ( Instr.Oreg Reg.sp,
        slot + const,
        Mem_info.make (Mem_info.Stack_array (st.fname, slot))
          (Mem_info.Const const) )
  | (Loc_global _ | Loc_local _ | Loc_param _), _ ->
      raise (Error ("codegen: not an array: " ^ vr.Tast.vr_name))

and gen_index_access st vr idx =
  let base, offset, mem = gen_index_address st vr idx in
  let v = Reg.virt () in
  emit st (Instr.make Opcode.Ld ~dst:v ~srcs:[ base ] ~offset ~mem);
  v

(* Calls: evaluate arguments, store them below sp at the callee's incoming
   argument slots, call, and fetch the result from the return register. *)
and gen_call st name args =
  let arg_regs = List.map (gen_expr st) args in
  let nargs = List.length args in
  List.iteri
    (fun i r ->
      emit st
        (Instr.make Opcode.St
           ~srcs:[ Instr.Oreg r; Instr.Oreg Reg.sp ]
           ~offset:(i - nargs)
           ~mem:(Mem_info.make (Mem_info.Arg_slot (name, i)) (Mem_info.Const i))))
    arg_regs;
  emit st (Instr.make Opcode.Call ~target:(Label.of_string name));
  let v = Reg.virt () in
  emit st (Instr.make Opcode.Mov ~dst:v ~srcs:[ Instr.Oreg Instr.ret_reg ]);
  v

(* --- conditions --------------------------------------------------------- *)

(* Jump to [target] when [e] is false (resp. true); fall through
   otherwise.  Short-circuit && and || compile to branch chains, so no
   virtual register ever carries a value across a block boundary. *)
let rec gen_branch_false st (e : Tast.texpr) target =
  match e.Tast.tnode with
  | Tast.Tbinary (Ast.Band, a, b) ->
      gen_branch_false st a target;
      gen_branch_false st b target
  | Tast.Tbinary (Ast.Bor, a, b) ->
      let continue_label = fresh_label st "or" in
      gen_branch_true st a continue_label;
      gen_branch_false st b target;
      start_block st continue_label
  | Tast.Tunary (Ast.Unot, a) -> gen_branch_true st a target
  | Tast.Tbinary (op, a, b)
    when Ast.is_comparison op && a.Tast.tty <> Ast.Treal ->
      let ra = gen_expr st a in
      let rb = gen_expr st b in
      (* branch on the negated comparison *)
      let opcode, x, y =
        match op with
        | Ast.Beq -> (Opcode.Bne, ra, rb)
        | Ast.Bne -> (Opcode.Beq, ra, rb)
        | Ast.Blt -> (Opcode.Bge, ra, rb)
        | Ast.Ble -> (Opcode.Bgt, ra, rb)
        | Ast.Bgt -> (Opcode.Ble, ra, rb)
        | Ast.Bge -> (Opcode.Blt, ra, rb)
        | _ -> assert false
      in
      emit st
        (Instr.make opcode ~srcs:[ Instr.Oreg x; Instr.Oreg y ] ~target);
      start_block st (fresh_label st "ft")
  | _ ->
      let r = gen_expr st e in
      emit st
        (Instr.make Opcode.Beq ~srcs:[ Instr.Oreg r; Instr.Oimm 0 ] ~target);
      start_block st (fresh_label st "ft")

and gen_branch_true st (e : Tast.texpr) target =
  match e.Tast.tnode with
  | Tast.Tbinary (Ast.Bor, a, b) ->
      gen_branch_true st a target;
      gen_branch_true st b target
  | Tast.Tbinary (Ast.Band, a, b) ->
      let continue_label = fresh_label st "and" in
      gen_branch_false st a continue_label;
      gen_branch_true st b target;
      start_block st continue_label
  | Tast.Tunary (Ast.Unot, a) -> gen_branch_false st a target
  | Tast.Tbinary (op, a, b)
    when Ast.is_comparison op && a.Tast.tty <> Ast.Treal ->
      let ra = gen_expr st a in
      let rb = gen_expr st b in
      let opcode, x, y =
        match op with
        | Ast.Beq -> (Opcode.Beq, ra, rb)
        | Ast.Bne -> (Opcode.Bne, ra, rb)
        | Ast.Blt -> (Opcode.Blt, ra, rb)
        | Ast.Ble -> (Opcode.Ble, ra, rb)
        | Ast.Bgt -> (Opcode.Bgt, ra, rb)
        | Ast.Bge -> (Opcode.Bge, ra, rb)
        | _ -> assert false
      in
      emit st
        (Instr.make opcode ~srcs:[ Instr.Oreg x; Instr.Oreg y ] ~target);
      start_block st (fresh_label st "ft")
  | _ ->
      let r = gen_expr st e in
      emit st
        (Instr.make Opcode.Bne ~srcs:[ Instr.Oreg r; Instr.Oimm 0 ] ~target);
      start_block st (fresh_label st "ft")

(* --- statements --------------------------------------------------------- *)

(* The prologue/epilogue are emitted even for empty frames so that the
   register allocator can grow the frame for spill slots by rewriting
   their immediates. *)
let gen_epilogue st =
  emit st
    (Instr.make Opcode.Add ~dst:Reg.sp
       ~srcs:[ Instr.Oreg Reg.sp; Instr.Oimm st.frame_size ])

let rec gen_stmt st (s : Tast.tstmt) =
  match s with
  | Tast.TSdecl (vr, init) -> (
      match init with
      | None -> ()
      | Some e ->
          let r = gen_expr st e in
          store_var st vr r)
  | Tast.TSassign (vr, e) ->
      let r = gen_expr st e in
      store_var st vr r
  | Tast.TSindex_assign (vr, idx, e) ->
      (* evaluate the value first so its loads see pre-store memory *)
      let r = gen_expr st e in
      let base, offset, mem = gen_index_address st vr idx in
      emit st (Instr.make Opcode.St ~srcs:[ Instr.Oreg r; base ] ~offset ~mem)
  | Tast.TSif (cond, then_, []) ->
      let l_end = fresh_label st "endif" in
      gen_branch_false st cond l_end;
      List.iter (gen_stmt st) then_;
      start_block st l_end
  | Tast.TSif (cond, then_, else_) ->
      let l_else = fresh_label st "else" in
      let l_end = fresh_label st "endif" in
      gen_branch_false st cond l_else;
      List.iter (gen_stmt st) then_;
      emit st (Instr.make Opcode.Jmp ~target:l_end);
      start_block st l_else;
      List.iter (gen_stmt st) else_;
      start_block st l_end
  | Tast.TSwhile (cond, body) ->
      let l_test = fresh_label st "while" in
      let l_end = fresh_label st "endwhile" in
      start_block st l_test;
      gen_branch_false st cond l_end;
      List.iter (gen_stmt st) body;
      emit st (Instr.make Opcode.Jmp ~target:l_test);
      start_block st l_end
  | Tast.TSfor (hdr, body) ->
      let l_test = fresh_label st "for" in
      let l_end = fresh_label st "endfor" in
      let r_init = gen_expr st hdr.Tast.tf_init in
      store_var st hdr.Tast.tf_var r_init;
      start_block st l_test;
      let cond =
        { Tast.tnode =
            Tast.Tbinary (hdr.Tast.tf_cmp, Tast.var_expr hdr.Tast.tf_var,
                          hdr.Tast.tf_limit);
          tty = Ast.Tint;
        }
      in
      gen_branch_false st cond l_end;
      List.iter (gen_stmt st) body;
      let r_var = load_var st hdr.Tast.tf_var in
      let r_next = Reg.virt () in
      emit st
        (Instr.make Opcode.Add ~dst:r_next
           ~srcs:[ Instr.Oreg r_var; Instr.Oimm hdr.Tast.tf_step ]);
      store_var st hdr.Tast.tf_var r_next;
      emit st (Instr.make Opcode.Jmp ~target:l_test);
      start_block st l_end
  | Tast.TSreturn e ->
      (match e with
      | Some e ->
          let r = gen_expr st e in
          emit st (Instr.make Opcode.Mov ~dst:Instr.ret_reg ~srcs:[ Instr.Oreg r ])
      | None -> ());
      gen_epilogue st;
      if String.equal st.fname "main" then emit st (Instr.make Opcode.Halt)
      else emit st (Instr.make Opcode.Ret);
      start_block st (fresh_label st "dead")
  | Tast.TSexpr e -> ignore (gen_expr st e)
  | Tast.TSsink e ->
      let r = gen_expr st e in
      let addr = Hashtbl.find st.global_addrs sink_name in
      emit st
        (Instr.make Opcode.St ~srcs:[ Instr.Oreg r; Instr.Oimm addr ]
           ~mem:(Mem_info.make (Mem_info.Global sink_name) (Mem_info.Const addr)))

(* --- declarations and slot assignment ----------------------------------- *)

(* Collect the frame slots needed by a function body: every declared
   scalar gets one word, every local array its element count.  Duplicate
   declarations of the same name (created by loop unrolling) share their
   slot. *)
let assign_slots (f : Tast.tfunc) locations =
  let next = ref 0 in
  let add name words =
    if not (Hashtbl.mem locations name) then begin
      let slot = !next in
      next := !next + words;
      Hashtbl.replace locations name
        (if words = 1 then Loc_local slot else Loc_local_array slot)
    end
  in
  let rec walk_stmt s =
    match s with
    | Tast.TSdecl (vr, _) -> (
        match vr.Tast.vr_kind with
        | Tast.Vlocal -> add vr.Tast.vr_name 1
        | Tast.Vlocal_array n -> add vr.Tast.vr_name n
        | Tast.Vglobal | Tast.Vglobal_array _ | Tast.Vview _ | Tast.Vparam _
          ->
            ())
    | Tast.TSif (_, a, b) ->
        List.iter walk_stmt a;
        List.iter walk_stmt b
    | Tast.TSwhile (_, body) | Tast.TSfor (_, body) -> List.iter walk_stmt body
    | Tast.TSassign _ | Tast.TSindex_assign _ | Tast.TSreturn _ | Tast.TSexpr _
    | Tast.TSsink _ ->
        ()
  in
  List.iter walk_stmt f.Tast.tf_body;
  List.iteri
    (fun i vr -> Hashtbl.replace locations vr.Tast.vr_name (Loc_param i))
    f.Tast.tf_params;
  !next

let gen_func global_addrs global_locs (f : Tast.tfunc) : Func.t =
  let locations = Hashtbl.copy global_locs in
  let local_words = assign_slots f locations in
  let nargs = List.length f.Tast.tf_params in
  let frame_size = local_words + nargs in
  let st =
    { fname = f.Tast.tf_name; nargs; frame_size; locations; global_addrs;
      current_label = Label.of_string f.Tast.tf_name; current_instrs = [];
      blocks = [];
    }
  in
  emit st
    (Instr.make Opcode.Add ~dst:Reg.sp
       ~srcs:[ Instr.Oreg Reg.sp; Instr.Oimm (-frame_size) ]);
  List.iter (gen_stmt st) f.Tast.tf_body;
  (* implicit return for functions that fall off the end *)
  gen_epilogue st;
  emit st
    (Instr.make (if String.equal f.Tast.tf_name "main" then Opcode.Halt
                 else Opcode.Ret));
  close_block st;
  let blocks = List.rev st.blocks in
  (* Empty blocks (labels that collected no instructions, e.g. an endfor
     at the end of an if body, or dead blocks after returns) are merged
     forward: their labels alias the next non-empty block and all branch
     targets are rewritten.  The last block is never empty because the
     function-final epilogue lands in it. *)
  let alias : (string, Label.t) Hashtbl.t = Hashtbl.create 8 in
  let next_label = ref None in
  List.iter
    (fun (b : Block.t) ->
      if b.Block.instrs = [] then
        match !next_label with
        | Some l -> Hashtbl.replace alias (Label.to_string b.Block.label) l
        | None ->
            raise (Error ("codegen: empty final block in " ^ f.Tast.tf_name))
      else next_label := Some b.Block.label)
    (List.rev blocks);
  let resolve l =
    match Hashtbl.find_opt alias (Label.to_string l) with
    | Some l' -> l'
    | None -> l
  in
  let blocks =
    List.filter_map
      (fun (b : Block.t) ->
        if b.Block.instrs = [] then None
        else
          Some
            (Block.make b.Block.label
               (List.map
                  (fun (i : Instr.t) ->
                    match i.Instr.target with
                    | Some t when i.Instr.op <> Opcode.Call ->
                        { i with Instr.target = Some (resolve t) }
                    | _ -> i)
                  b.Block.instrs)))
      blocks
  in
  Func.make ~name:f.Tast.tf_name ~frame_size ~n_params:nargs blocks

let is_array_global (g : Tast.tglobal) = g.Tast.tg_words > 1

let gen_program (p : Tast.tprogram) : Program.t =
  (* the checksum cell is always the first global *)
  let globals =
    { Program.gname = sink_name; words = 1; init = Program.Zero }
    :: List.map
         (fun g ->
           let init =
             match g.Tast.tg_init with
             | Some (Ast.Cint n) -> Program.Ints [ n ]
             | Some (Ast.Creal f) -> Program.Floats [ f ]
             | None -> Program.Zero
           in
           { Program.gname = g.Tast.tg_name; words = g.Tast.tg_words; init })
         p.Tast.tglobals
  in
  let global_addrs = Hashtbl.create 64 in
  let next = ref Program.globals_base in
  List.iter
    (fun g ->
      Hashtbl.replace global_addrs g.Program.gname !next;
      next := !next + g.Program.words)
    globals;
  let global_locs = Hashtbl.create 64 in
  List.iter
    (fun g ->
      let addr = Hashtbl.find global_addrs g.Tast.tg_name in
      Hashtbl.replace global_locs g.Tast.tg_name
        (if g.Tast.tg_words = 1 && not (is_array_global g) then
           Loc_global addr
         else Loc_global_array addr))
    p.Tast.tglobals;
  List.iter
    (fun v ->
      match Hashtbl.find_opt global_addrs v.Tast.tv_base with
      | Some addr ->
          Hashtbl.replace global_locs v.Tast.tv_name
            (Loc_view (addr, v.Tast.tv_base))
      | None ->
          raise (Error ("codegen: view of unknown array " ^ v.Tast.tv_base)))
    p.Tast.tviews;
  let functions = List.map (gen_func global_addrs global_locs) p.Tast.tfuncs in
  Program.make ~globals ~functions
