(* Hand-written lexer for MiniMod. *)

type token =
  | INT of int
  | REAL of float
  | IDENT of string
  (* keywords *)
  | KVAR
  | KARR
  | KFUN
  | KIF
  | KELSE
  | KWHILE
  | KFOR
  | KRETURN
  | KSINK
  | KINT
  | KREAL_TY
  | KVIEW
  | KOF
  (* punctuation *)
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | ASSIGN
  (* operators *)
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | EOF

exception Error of string * Ast.pos

type t = {
  src : string;
  mutable pos : int;
  mutable line : int;
  mutable col : int;
}

let make src = { src; pos = 0; line = 1; col = 1 }

let position lx = { Ast.line = lx.line; col = lx.col }

let error lx msg = raise (Error (msg, position lx))

let peek_char lx =
  if lx.pos < String.length lx.src then Some lx.src.[lx.pos] else None

let peek_char2 lx =
  if lx.pos + 1 < String.length lx.src then Some lx.src.[lx.pos + 1] else None

let advance lx =
  (match peek_char lx with
  | Some '\n' ->
      lx.line <- lx.line + 1;
      lx.col <- 1
  | Some _ -> lx.col <- lx.col + 1
  | None -> ());
  lx.pos <- lx.pos + 1

let rec skip_ws_and_comments lx =
  match peek_char lx with
  | Some (' ' | '\t' | '\r' | '\n') ->
      advance lx;
      skip_ws_and_comments lx
  | Some '#' ->
      (* line comment *)
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws_and_comments lx
  | Some '/' when peek_char2 lx = Some '/' ->
      let rec to_eol () =
        match peek_char lx with
        | Some '\n' | None -> ()
        | Some _ ->
            advance lx;
            to_eol ()
      in
      to_eol ();
      skip_ws_and_comments lx
  | Some _ | None -> ()

let is_digit c = c >= '0' && c <= '9'
let is_alpha c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_alnum c = is_alpha c || is_digit c

let keyword_of_string = function
  | "var" -> Some KVAR
  | "arr" -> Some KARR
  | "fun" -> Some KFUN
  | "if" -> Some KIF
  | "else" -> Some KELSE
  | "while" -> Some KWHILE
  | "for" -> Some KFOR
  | "return" -> Some KRETURN
  | "sink" -> Some KSINK
  | "int" -> Some KINT
  | "real" -> Some KREAL_TY
  | "view" -> Some KVIEW
  | "of" -> Some KOF
  | _ -> None

let lex_number lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_digit c | None -> false) do
    advance lx
  done;
  let is_real =
    match (peek_char lx, peek_char2 lx) with
    | Some '.', Some c when is_digit c -> true
    | Some '.', _ -> true
    | _ -> false
  in
  if is_real then begin
    advance lx (* '.' *);
    while (match peek_char lx with Some c -> is_digit c | None -> false) do
      advance lx
    done;
    (match peek_char lx with
    | Some ('e' | 'E') ->
        advance lx;
        (match peek_char lx with
        | Some ('+' | '-') -> advance lx
        | _ -> ());
        while
          match peek_char lx with Some c -> is_digit c | None -> false
        do
          advance lx
        done
    | _ -> ());
    REAL (float_of_string (String.sub lx.src start (lx.pos - start)))
  end
  else INT (int_of_string (String.sub lx.src start (lx.pos - start)))

let lex_ident lx =
  let start = lx.pos in
  while (match peek_char lx with Some c -> is_alnum c | None -> false) do
    advance lx
  done;
  let s = String.sub lx.src start (lx.pos - start) in
  match keyword_of_string s with Some k -> k | None -> IDENT s

(* Next token together with the position where it starts. *)
let next lx =
  skip_ws_and_comments lx;
  let pos = position lx in
  let tok =
    match peek_char lx with
    | None -> EOF
    | Some c when is_digit c -> lex_number lx
    | Some c when is_alpha c -> lex_ident lx
    | Some c -> (
        let two result =
          advance lx;
          advance lx;
          result
        in
        let one result =
          advance lx;
          result
        in
        match (c, peek_char2 lx) with
        | '=', Some '=' -> two EQ
        | '=', _ -> one ASSIGN
        | '!', Some '=' -> two NE
        | '!', _ -> one BANG
        | '<', Some '=' -> two LE
        | '<', Some '<' -> two SHL
        | '<', _ -> one LT
        | '>', Some '=' -> two GE
        | '>', Some '>' -> two SHR
        | '>', _ -> one GT
        | '&', Some '&' -> two ANDAND
        | '&', _ -> one AMP
        | '|', Some '|' -> two OROR
        | '|', _ -> one PIPE
        | '^', _ -> one CARET
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '/', _ -> one SLASH
        | '%', _ -> one PERCENT
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | '[', _ -> one LBRACKET
        | ']', _ -> one RBRACKET
        | ',', _ -> one COMMA
        | ';', _ -> one SEMI
        | ':', _ -> one COLON
        | _ -> error lx (Printf.sprintf "unexpected character %C" c))
  in
  (tok, pos)

let token_name = function
  | INT n -> string_of_int n
  | REAL f -> string_of_float f
  | IDENT s -> Printf.sprintf "identifier %s" s
  | KVAR -> "var"
  | KARR -> "arr"
  | KFUN -> "fun"
  | KIF -> "if"
  | KELSE -> "else"
  | KWHILE -> "while"
  | KFOR -> "for"
  | KRETURN -> "return"
  | KSINK -> "sink"
  | KINT -> "int"
  | KREAL_TY -> "real"
  | KVIEW -> "view"
  | KOF -> "of"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | COMMA -> ","
  | SEMI -> ";"
  | COLON -> ":"
  | ASSIGN -> "="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | SLASH -> "/"
  | PERCENT -> "%"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | ANDAND -> "&&"
  | OROR -> "||"
  | BANG -> "!"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | SHL -> "<<"
  | SHR -> ">>"
  | EOF -> "end of input"
