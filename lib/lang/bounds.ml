(* Bound analysis over [Tast.tfor] headers.

   Unrolling wants to know, per counted loop, whether the trip count is
   a compile-time constant (full unroll / peeling), merely well-formed
   (classic factor unrolling with a remainder loop), or degenerate
   (leave the loop alone).  The analysis is a forward constant
   environment over scalars, threaded through the straight-line code
   that precedes the loop: assignments of foldable expressions record a
   binding, anything the environment cannot see (calls, loops,
   disagreeing branches) kills the affected bindings.  Per-variable
   merges at control-flow joins use the flat lattice from the PR 4
   dataflow framework ([Ilp_analysis.Dataflow.Flat]).

   The classification is deliberately conservative: a loop is only
   [Counted] when init and limit fold to constants, the step agrees
   with the comparison direction, the body never assigns the index
   variable, and the limit expression is invariant under the body (the
   lowering re-evaluates [tf_limit] every iteration, so a body that
   mutates a scalar the limit reads changes the iteration space —
   unrolling such a loop with any shifted or widened stride is a
   miscompile). *)

module Smap = Map.Make (String)

module Const = Ilp_analysis.Dataflow.Flat (struct
  type t = int

  let equal = Int.equal
  let pp = Fmt.int
end)

(* ------------------------------------------------------------------ *)
(* Syntactic facts about statements                                    *)

let rec expr_mentions name (e : Tast.texpr) =
  match e.Tast.tnode with
  | Tast.Tvar vr -> String.equal vr.Tast.vr_name name
  | Tast.Tint_lit _ | Tast.Treal_lit _ -> false
  | Tast.Tindex (vr, idx) ->
      String.equal vr.Tast.vr_name name || expr_mentions name idx
  | Tast.Tunary (_, a) | Tast.Tcast (_, a) -> expr_mentions name a
  | Tast.Tbinary (_, a, b) -> expr_mentions name a || expr_mentions name b
  | Tast.Tcall (_, args) -> List.exists (expr_mentions name) args

(* every scalar or array name the expression reads *)
let expr_names (e : Tast.texpr) : string list =
  let acc = ref [] in
  let rec go (e : Tast.texpr) =
    match e.Tast.tnode with
    | Tast.Tvar vr -> acc := vr.Tast.vr_name :: !acc
    | Tast.Tint_lit _ | Tast.Treal_lit _ -> ()
    | Tast.Tindex (vr, idx) ->
        acc := vr.Tast.vr_name :: !acc;
        go idx
    | Tast.Tunary (_, a) | Tast.Tcast (_, a) -> go a
    | Tast.Tbinary (_, a, b) ->
        go a;
        go b
    | Tast.Tcall (_, args) -> List.iter go args
  in
  go e;
  !acc

let rec stmt_contains_call (s : Tast.tstmt) =
  let ec = Tast.contains_call in
  match s with
  | Tast.TSdecl (_, init) -> Option.fold ~none:false ~some:ec init
  | Tast.TSassign (_, e) | Tast.TSexpr e | Tast.TSsink e -> ec e
  | Tast.TSindex_assign (_, idx, e) -> ec idx || ec e
  | Tast.TSif (c, a, b) ->
      ec c
      || List.exists stmt_contains_call a
      || List.exists stmt_contains_call b
  | Tast.TSwhile (c, body) -> ec c || List.exists stmt_contains_call body
  | Tast.TSfor (hdr, body) ->
      ec hdr.Tast.tf_init || ec hdr.Tast.tf_limit
      || List.exists stmt_contains_call body
  | Tast.TSreturn e -> Option.fold ~none:false ~some:ec e

(* names assigned or declared anywhere inside [s] — scalar targets,
   array targets of indexed stores, and loop variables *)
let rec assigned_names (s : Tast.tstmt) acc =
  match s with
  | Tast.TSdecl (vr, _) | Tast.TSassign (vr, _) -> vr.Tast.vr_name :: acc
  | Tast.TSindex_assign (vr, _, _) -> vr.Tast.vr_name :: acc
  | Tast.TSif (_, a, b) ->
      List.fold_left (Fun.flip assigned_names)
        (List.fold_left (Fun.flip assigned_names) acc a)
        b
  | Tast.TSwhile (_, body) -> List.fold_left (Fun.flip assigned_names) acc body
  | Tast.TSfor (hdr, body) ->
      List.fold_left (Fun.flip assigned_names)
        (hdr.Tast.tf_var.Tast.vr_name :: acc)
        body
  | Tast.TSreturn _ | Tast.TSexpr _ | Tast.TSsink _ -> acc

let assigned_in stmts = List.fold_left (Fun.flip assigned_names) [] stmts

(* does the loop body assign (or re-declare) the scalar [name]? *)
let mutates name stmts = List.mem name (assigned_in stmts)

(* ------------------------------------------------------------------ *)
(* Constant environment                                                *)

module Env = struct
  type t = int Smap.t
  (** scalar name -> known constant value; absent = unknown *)

  let empty : t = Smap.empty
  let lookup (env : t) name = Smap.find_opt name env

  (* constant-fold an int expression under [env]; [None] whenever any
     subterm is opaque (calls, array loads, non-int, div/mod — the
     latter to stay clear of rounding and division-by-zero) *)
  let rec eval (env : t) (e : Tast.texpr) : int option =
    if e.Tast.tty <> Ast.Tint then None
    else
      match e.Tast.tnode with
      | Tast.Tint_lit n -> Some n
      | Tast.Tvar vr -> lookup env vr.Tast.vr_name
      | Tast.Tunary (Ast.Uneg, a) -> Option.map Int.neg (eval env a)
      | Tast.Tbinary (op, a, b) -> (
          match (eval env a, eval env b) with
          | Some x, Some y -> (
              match op with
              | Ast.Badd -> Some (x + y)
              | Ast.Bsub -> Some (x - y)
              | Ast.Bmul -> Some (x * y)
              | _ -> None)
          | _ -> None)
      | _ -> None

  (* per-variable flat join of two branch environments: a binding
     survives the merge only where both paths agree *)
  let merge (a : t) (b : t) : t =
    let lift = function Some v -> Const.Known v | None -> Const.Top in
    Smap.merge
      (fun _ x y ->
        match Const.join (lift x) (lift y) with
        | Const.Known v -> Some v
        | Const.Bot | Const.Top -> None)
      a b

  let kill names (env : t) =
    List.fold_left (fun env n -> Smap.remove n env) env names

  (* abstract effect of executing [s] on the environment.  Any call
     kills everything: a callee may write globals, and tracking
     global/local provenance through shadowing is not worth the
     precision. *)
  let rec after_stmt (env : t) (s : Tast.tstmt) : t =
    if stmt_contains_call s then Smap.empty
    else
      match s with
      | Tast.TSdecl (vr, init) -> (
          match Option.map (eval env) init |> Option.join with
          | Some n -> Smap.add vr.Tast.vr_name n env
          | None -> Smap.remove vr.Tast.vr_name env)
      | Tast.TSassign (vr, e) -> (
          match eval env e with
          | Some n -> Smap.add vr.Tast.vr_name n env
          | None -> Smap.remove vr.Tast.vr_name env)
      | Tast.TSindex_assign (_, _, _) -> env
      | Tast.TSif (_, a, b) ->
          merge (after_stmts env a) (after_stmts env b)
      | Tast.TSwhile (_, body) -> kill (assigned_in body) env
      | Tast.TSfor (hdr, body) ->
          kill (hdr.Tast.tf_var.Tast.vr_name :: assigned_in body) env
      | Tast.TSreturn _ | Tast.TSexpr _ | Tast.TSsink _ -> env

  and after_stmts env stmts = List.fold_left after_stmt env stmts

  (* facts holding on every execution of a loop body: the incoming
     environment minus everything the body assigns (everything, if the
     body performs a call) *)
  let at_body_entry (env : t) stmts : t =
    if List.exists stmt_contains_call stmts then Smap.empty
    else kill (assigned_in stmts) env

  (* same, additionally killing the loop variable the header steps *)
  let at_loop_entry (env : t) (hdr : Tast.tfor) stmts : t =
    kill [ hdr.Tast.tf_var.Tast.vr_name ] (at_body_entry env stmts)
end

(* ------------------------------------------------------------------ *)
(* Classification                                                      *)

type classification =
  | Counted of { start : int; step : int; trips : int }
      (** init and limit fold to constants; the loop body runs exactly
          [trips] times and leaves the index at [start + trips*step] *)
  | Well_formed
      (** bounds unknown but the header is consistent: classic
          factor-unrolling with a remainder loop is sound *)
  | Degenerate_step  (** [tf_step = 0] *)
  | Direction_mismatch
      (** step sign disagrees with the comparison direction (or the
          comparison is not an ordering at all) *)
  | Index_mutated  (** the body assigns or re-declares the index *)
  | Limit_mutated
      (** the limit expression is not invariant under the body — the
          lowering re-evaluates it every iteration *)

(* is [tf_limit] invariant under one execution of the body?  The
   lowering evaluates the limit before every iteration, so unrolling
   (which checks it once per [factor] copies) is only sound when the
   body cannot change its value: no body statement assigns a scalar
   the limit reads, no indexed store hits an array the limit loads
   from, no call occurs while the limit depends on memory or globals —
   and the limit itself performs no call (re-evaluation count is
   observable) and does not read the index variable, which the header
   steps on every iteration. *)
let limit_invariant (hdr : Tast.tfor) body =
  let limit = hdr.Tast.tf_limit in
  (not (Tast.contains_call limit))
  && (not (expr_mentions hdr.Tast.tf_var.Tast.vr_name limit))
  &&
  let read = expr_names limit in
  let written = assigned_in body in
  List.for_all (fun n -> not (List.mem n written)) read
  && ((not (List.exists stmt_contains_call body))
     || (* calls can reach globals and arrays but not our locals; with
           no cheap kind information for every read name, require the
           limit to read nothing at all *)
     read = [])

let classify (env : Env.t) (hdr : Tast.tfor) (body : Tast.tstmt list) :
    classification =
  let var = hdr.Tast.tf_var.Tast.vr_name in
  let step = hdr.Tast.tf_step in
  if step = 0 then Degenerate_step
  else if mutates var body then Index_mutated
  else
    let direction_ok =
      match hdr.Tast.tf_cmp with
      | Ast.Blt | Ast.Ble -> step > 0
      | Ast.Bgt | Ast.Bge -> step < 0
      | _ -> false
    in
    if not direction_ok then Direction_mismatch
    else if not (limit_invariant hdr body) then Limit_mutated
    else
      match (Env.eval env hdr.Tast.tf_init, Env.eval env hdr.Tast.tf_limit) with
      | Some start, Some limit ->
          let trips =
            if step > 0 then
              let bound =
                match hdr.Tast.tf_cmp with
                | Ast.Ble -> limit + 1
                | _ -> limit
              in
              if start >= bound then 0 else (bound - start + step - 1) / step
            else
              let bound =
                match hdr.Tast.tf_cmp with
                | Ast.Bge -> limit - 1
                | _ -> limit
              in
              if start <= bound then 0 else (start - bound + -step - 1) / -step
          in
          Counted { start; step; trips }
      | _ -> Well_formed

let trip_count = function
  | Counted { trips; _ } -> Some trips
  | Well_formed | Degenerate_step | Direction_mismatch | Index_mutated
  | Limit_mutated ->
      None
