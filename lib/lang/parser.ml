(* Recursive-descent parser for MiniMod.

   Grammar sketch (see DESIGN.md):

     program   := topdecl*
     topdecl   := "var" id ":" ty ("=" literal)? ";"
                | "arr" id ":" ty "[" int "]" ";"
                | "fun" id "(" params? ")" (":" ty)? block
     stmt      := "var" id ":" ty ("=" expr)? ";"
                | "arr" id ":" ty "[" int "]" ";"
                | id "=" expr ";"   |   id "[" expr "]" "=" expr ";"
                | "if" "(" expr ")" block ("else" (block | if-stmt))?
                | "while" "(" expr ")" block
                | "for" "(" id "=" expr ";" id cmp expr ";" id "=" id ("+"|"-") int ")" block
                | "return" expr? ";"   |   "sink" "(" expr ")" ";"
                | expr ";"
     expr      := precedence climbing over || && | ^ & == != < <= > >=
                  << >> + - * / % with unary - and ! *)

exception Error of string * Ast.pos

type t = {
  lexer : Lexer.t;
  mutable tok : Lexer.token;
  mutable pos : Ast.pos;
}

let error p msg = raise (Error (msg, p.pos))

let advance p =
  let tok, pos = Lexer.next p.lexer in
  p.tok <- tok;
  p.pos <- pos

let make src =
  let lexer = Lexer.make src in
  let tok, pos = Lexer.next lexer in
  { lexer; tok; pos }

let expect p tok =
  if p.tok = tok then advance p
  else
    error p
      (Printf.sprintf "expected %s but found %s" (Lexer.token_name tok)
         (Lexer.token_name p.tok))

let expect_ident p =
  match p.tok with
  | Lexer.IDENT s ->
      advance p;
      s
  | t -> error p (Printf.sprintf "expected identifier, found %s" (Lexer.token_name t))

let expect_int p =
  match p.tok with
  | Lexer.INT n ->
      advance p;
      n
  | t -> error p (Printf.sprintf "expected integer, found %s" (Lexer.token_name t))

let parse_ty p =
  match p.tok with
  | Lexer.KINT ->
      advance p;
      Ast.Tint
  | Lexer.KREAL_TY ->
      advance p;
      Ast.Treal
  | t -> error p (Printf.sprintf "expected a type, found %s" (Lexer.token_name t))

(* Binary operator of a token, with precedence level (higher binds
   tighter).  Mirrors C precedence. *)
let binop_of_token = function
  | Lexer.OROR -> Some (Ast.Bor, 1)
  | Lexer.ANDAND -> Some (Ast.Band, 2)
  | Lexer.PIPE -> Some (Ast.Bbit_or, 3)
  | Lexer.CARET -> Some (Ast.Bbit_xor, 4)
  | Lexer.AMP -> Some (Ast.Bbit_and, 5)
  | Lexer.EQ -> Some (Ast.Beq, 6)
  | Lexer.NE -> Some (Ast.Bne, 6)
  | Lexer.LT -> Some (Ast.Blt, 7)
  | Lexer.LE -> Some (Ast.Ble, 7)
  | Lexer.GT -> Some (Ast.Bgt, 7)
  | Lexer.GE -> Some (Ast.Bge, 7)
  | Lexer.SHL -> Some (Ast.Bshl, 8)
  | Lexer.SHR -> Some (Ast.Bshr, 8)
  | Lexer.PLUS -> Some (Ast.Badd, 9)
  | Lexer.MINUS -> Some (Ast.Bsub, 9)
  | Lexer.STAR -> Some (Ast.Bmul, 10)
  | Lexer.SLASH -> Some (Ast.Bdiv, 10)
  | Lexer.PERCENT -> Some (Ast.Bmod, 10)
  | _ -> None

let rec parse_expr p = parse_binary p 0

and parse_binary p min_prec =
  let lhs = parse_unary p in
  let rec loop lhs =
    match binop_of_token p.tok with
    | Some (op, prec) when prec >= min_prec ->
        let pos = p.pos in
        advance p;
        let rhs = parse_binary p (prec + 1) in
        loop (Ast.expr ~pos (Ast.Ebinary (op, lhs, rhs)))
    | Some _ | None -> lhs
  in
  loop lhs

and parse_unary p =
  let pos = p.pos in
  match p.tok with
  | Lexer.MINUS ->
      advance p;
      Ast.expr ~pos (Ast.Eunary (Ast.Uneg, parse_unary p))
  | Lexer.BANG ->
      advance p;
      Ast.expr ~pos (Ast.Eunary (Ast.Unot, parse_unary p))
  | _ -> parse_primary p

and parse_primary p =
  let pos = p.pos in
  match p.tok with
  | Lexer.INT n ->
      advance p;
      Ast.expr ~pos (Ast.Eint n)
  | Lexer.REAL f ->
      advance p;
      Ast.expr ~pos (Ast.Ereal f)
  | Lexer.LPAREN ->
      advance p;
      let e = parse_expr p in
      expect p Lexer.RPAREN;
      e
  | Lexer.KINT ->
      (* cast: int(e) *)
      advance p;
      expect p Lexer.LPAREN;
      let e = parse_expr p in
      expect p Lexer.RPAREN;
      Ast.expr ~pos (Ast.Ecast (Ast.Tint, e))
  | Lexer.KREAL_TY ->
      advance p;
      expect p Lexer.LPAREN;
      let e = parse_expr p in
      expect p Lexer.RPAREN;
      Ast.expr ~pos (Ast.Ecast (Ast.Treal, e))
  | Lexer.IDENT name -> (
      advance p;
      match p.tok with
      | Lexer.LBRACKET ->
          advance p;
          let idx = parse_expr p in
          expect p Lexer.RBRACKET;
          Ast.expr ~pos (Ast.Eindex (name, idx))
      | Lexer.LPAREN ->
          advance p;
          let args = parse_args p in
          Ast.expr ~pos (Ast.Ecall (name, args))
      | _ -> Ast.expr ~pos (Ast.Evar name))
  | t -> error p (Printf.sprintf "expected expression, found %s" (Lexer.token_name t))

and parse_args p =
  if p.tok = Lexer.RPAREN then begin
    advance p;
    []
  end
  else
    let rec loop acc =
      let e = parse_expr p in
      match p.tok with
      | Lexer.COMMA ->
          advance p;
          loop (e :: acc)
      | _ ->
          expect p Lexer.RPAREN;
          List.rev (e :: acc)
    in
    loop []

let parse_literal p =
  match p.tok with
  | Lexer.INT n ->
      advance p;
      Ast.Cint n
  | Lexer.REAL f ->
      advance p;
      Ast.Creal f
  | Lexer.MINUS -> (
      advance p;
      match p.tok with
      | Lexer.INT n ->
          advance p;
          Ast.Cint (-n)
      | Lexer.REAL f ->
          advance p;
          Ast.Creal (-.f)
      | t ->
          error p
            (Printf.sprintf "expected numeric literal, found %s"
               (Lexer.token_name t)))
  | t ->
      error p
        (Printf.sprintf "expected numeric literal, found %s"
           (Lexer.token_name t))

let rec parse_block p =
  expect p Lexer.LBRACE;
  let rec loop acc =
    if p.tok = Lexer.RBRACE then begin
      advance p;
      List.rev acc
    end
    else loop (parse_stmt p :: acc)
  in
  loop []

and parse_stmt p =
  let pos = p.pos in
  match p.tok with
  | Lexer.KVAR ->
      advance p;
      let name = expect_ident p in
      expect p Lexer.COLON;
      let ty = parse_ty p in
      let init =
        if p.tok = Lexer.ASSIGN then begin
          advance p;
          Some (parse_expr p)
        end
        else None
      in
      expect p Lexer.SEMI;
      Ast.stmt ~pos (Ast.Sdecl (name, ty, init))
  | Lexer.KARR ->
      advance p;
      let name = expect_ident p in
      expect p Lexer.COLON;
      let ty = parse_ty p in
      expect p Lexer.LBRACKET;
      let size = expect_int p in
      expect p Lexer.RBRACKET;
      expect p Lexer.SEMI;
      Ast.stmt ~pos (Ast.Sarr_decl (name, ty, size))
  | Lexer.KIF -> parse_if p
  | Lexer.KWHILE ->
      advance p;
      expect p Lexer.LPAREN;
      let cond = parse_expr p in
      expect p Lexer.RPAREN;
      let body = parse_block p in
      Ast.stmt ~pos (Ast.Swhile (cond, body))
  | Lexer.KFOR -> parse_for p
  | Lexer.KRETURN ->
      advance p;
      if p.tok = Lexer.SEMI then begin
        advance p;
        Ast.stmt ~pos (Ast.Sreturn None)
      end
      else begin
        let e = parse_expr p in
        expect p Lexer.SEMI;
        Ast.stmt ~pos (Ast.Sreturn (Some e))
      end
  | Lexer.KSINK ->
      advance p;
      expect p Lexer.LPAREN;
      let e = parse_expr p in
      expect p Lexer.RPAREN;
      expect p Lexer.SEMI;
      Ast.stmt ~pos (Ast.Ssink e)
  | Lexer.IDENT name -> (
      advance p;
      match p.tok with
      | Lexer.ASSIGN ->
          advance p;
          let e = parse_expr p in
          expect p Lexer.SEMI;
          Ast.stmt ~pos (Ast.Sassign (name, e))
      | Lexer.LBRACKET ->
          advance p;
          let idx = parse_expr p in
          expect p Lexer.RBRACKET;
          expect p Lexer.ASSIGN;
          let e = parse_expr p in
          expect p Lexer.SEMI;
          Ast.stmt ~pos (Ast.Sindex_assign (name, idx, e))
      | Lexer.LPAREN ->
          advance p;
          let args = parse_args p in
          expect p Lexer.SEMI;
          Ast.stmt ~pos (Ast.Sexpr (Ast.expr ~pos (Ast.Ecall (name, args))))
      | t ->
          error p
            (Printf.sprintf "expected =, [ or ( after identifier, found %s"
               (Lexer.token_name t)))
  | t -> error p (Printf.sprintf "expected statement, found %s" (Lexer.token_name t))

and parse_if p =
  let pos = p.pos in
  expect p Lexer.KIF;
  expect p Lexer.LPAREN;
  let cond = parse_expr p in
  expect p Lexer.RPAREN;
  let then_ = parse_block p in
  let else_ =
    if p.tok = Lexer.KELSE then begin
      advance p;
      if p.tok = Lexer.KIF then [ parse_if p ] else parse_block p
    end
    else []
  in
  Ast.stmt ~pos (Ast.Sif (cond, then_, else_))

(* for (i = e1; i <cmp> e2; i = i +/- c) { ... } *)
and parse_for p =
  let pos = p.pos in
  expect p Lexer.KFOR;
  expect p Lexer.LPAREN;
  let var = expect_ident p in
  expect p Lexer.ASSIGN;
  let init = parse_expr p in
  expect p Lexer.SEMI;
  let var2 = expect_ident p in
  if not (String.equal var var2) then
    error p "for-loop condition must test the loop variable";
  let cmp =
    match p.tok with
    | Lexer.LT ->
        advance p;
        Ast.Blt
    | Lexer.LE ->
        advance p;
        Ast.Ble
    | Lexer.GT ->
        advance p;
        Ast.Bgt
    | Lexer.GE ->
        advance p;
        Ast.Bge
    | t ->
        error p
          (Printf.sprintf "expected comparison in for-loop, found %s"
             (Lexer.token_name t))
  in
  let limit = parse_expr p in
  expect p Lexer.SEMI;
  let var3 = expect_ident p in
  if not (String.equal var var3) then
    error p "for-loop increment must update the loop variable";
  expect p Lexer.ASSIGN;
  let var4 = expect_ident p in
  if not (String.equal var var4) then
    error p "for-loop increment must have the form i = i + c";
  let sign =
    match p.tok with
    | Lexer.PLUS ->
        advance p;
        1
    | Lexer.MINUS ->
        advance p;
        -1
    | t ->
        error p
          (Printf.sprintf "expected + or - in for-loop increment, found %s"
             (Lexer.token_name t))
  in
  let step = sign * expect_int p in
  expect p Lexer.RPAREN;
  let body = parse_block p in
  Ast.stmt ~pos
    (Ast.Sfor
       ( { Ast.for_var = var; for_init = init; for_cmp = cmp;
           for_limit = limit; for_step = step },
         body ))

let parse_top_decl p =
  match p.tok with
  | Lexer.KVIEW ->
      advance p;
      let vname = expect_ident p in
      expect p Lexer.KOF;
      let aname = expect_ident p in
      expect p Lexer.SEMI;
      Ast.Dview (vname, aname)
  | Lexer.KVAR ->
      advance p;
      let name = expect_ident p in
      expect p Lexer.COLON;
      let ty = parse_ty p in
      let init =
        if p.tok = Lexer.ASSIGN then begin
          advance p;
          Some (parse_literal p)
        end
        else None
      in
      expect p Lexer.SEMI;
      Ast.Dglobal (name, ty, init)
  | Lexer.KARR ->
      advance p;
      let name = expect_ident p in
      expect p Lexer.COLON;
      let ty = parse_ty p in
      expect p Lexer.LBRACKET;
      let size = expect_int p in
      expect p Lexer.RBRACKET;
      expect p Lexer.SEMI;
      Ast.Dglobal_array (name, ty, size, None)
  | Lexer.KFUN ->
      advance p;
      let name = expect_ident p in
      expect p Lexer.LPAREN;
      let params =
        if p.tok = Lexer.RPAREN then begin
          advance p;
          []
        end
        else
          let rec loop acc =
            let pname = expect_ident p in
            expect p Lexer.COLON;
            let ty = parse_ty p in
            match p.tok with
            | Lexer.COMMA ->
                advance p;
                loop ((pname, ty) :: acc)
            | _ ->
                expect p Lexer.RPAREN;
                List.rev ((pname, ty) :: acc)
          in
          loop []
      in
      let freturn =
        if p.tok = Lexer.COLON then begin
          advance p;
          Some (parse_ty p)
        end
        else None
      in
      let body = parse_block p in
      Ast.Dfun { Ast.fname = name; fparams = params; freturn; fbody = body }
  | t ->
      error p
        (Printf.sprintf "expected top-level declaration, found %s"
           (Lexer.token_name t))

let parse_program src =
  let p = make src in
  let rec loop acc =
    if p.tok = Lexer.EOF then List.rev acc
    else loop (parse_top_decl p :: acc)
  in
  loop []
