(* Loop unrolling at the typed-AST level (Figure 4-6 of the paper).

   The paper unrolled Linpack and Livermore by hand in two ways:

   - *naive*: duplicate the loop body inside the loop and let the normal
     optimizer remove redundant computations — here each copy [j] of the
     body sees the index expression [i + j*step], and the loop steps by
     [factor*step] with a scalar remainder loop after it;

   - *careful*: additionally reassociate long accumulation chains —
     a statement [s = s op e] (op associative and commutative) in copy
     [j > 0] updates a fresh partial accumulator [s_j] instead, and the
     partials fold into [s] after the loop.  Together with the symbolic
     memory disambiguation performed by the scheduler this removes the
     false inter-copy dependences that cap naive unrolling.

   On top of the factor-driven transform sits the bound analysis
   ([Bounds]): loops whose trip count folds to a compile-time constant
   can be *fully unrolled* (small trip counts: no loop, no remainder)
   or *peeled* ([trips mod factor] leading copies emitted straight-line
   so the main loop needs no remainder loop at all).  Both are gated
   behind [~bounds] so the classic curves stay measurable; the
   classification itself always runs, because it is also the correctness
   gate: loops with a degenerate header (zero step, step fighting the
   comparison direction), loops whose body assigns the index, and loops
   whose limit expression is not invariant under the body are skipped
   with a per-reason counter instead of being miscompiled.

   Only innermost counted loops are unrolled; loops containing [return]
   are left alone. *)

type mode = Naive | Careful

type skip_reason =
  | Degenerate_step
  | Direction_mismatch
  | Index_mutated
  | Limit_mutated
  | Has_return
  | Not_innermost

let all_skip_reasons =
  [ Degenerate_step; Direction_mismatch; Index_mutated; Limit_mutated;
    Has_return; Not_innermost ]

let skip_reason_name = function
  | Degenerate_step -> "degenerate_step"
  | Direction_mismatch -> "direction_mismatch"
  | Index_mutated -> "index_mutated"
  | Limit_mutated -> "limit_mutated"
  | Has_return -> "has_return"
  | Not_innermost -> "not_innermost"

type stats = {
  rolled : int;
  peeled : int;
  full : int;
  skipped : (skip_reason * int) list;
}

let no_stats =
  { rolled = 0; peeled = 0; full = 0;
    skipped = List.map (fun r -> (r, 0)) all_skip_reasons }

let skip_count stats reason =
  match List.assoc_opt reason stats.skipped with Some n -> n | None -> 0

(* substitute every occurrence of scalar [var] by expression [repl] *)
let rec subst_expr var repl (e : Tast.texpr) : Tast.texpr =
  match e.Tast.tnode with
  | Tast.Tvar vr when String.equal vr.Tast.vr_name var -> repl
  | Tast.Tvar _ | Tast.Tint_lit _ | Tast.Treal_lit _ -> e
  | Tast.Tindex (vr, idx) ->
      { e with Tast.tnode = Tast.Tindex (vr, subst_expr var repl idx) }
  | Tast.Tunary (op, a) ->
      { e with Tast.tnode = Tast.Tunary (op, subst_expr var repl a) }
  | Tast.Tbinary (op, a, b) ->
      { e with
        Tast.tnode =
          Tast.Tbinary (op, subst_expr var repl a, subst_expr var repl b)
      }
  | Tast.Tcall (n, args) ->
      { e with Tast.tnode = Tast.Tcall (n, List.map (subst_expr var repl) args) }
  | Tast.Tcast (t, a) ->
      { e with Tast.tnode = Tast.Tcast (t, subst_expr var repl a) }

let rec subst_stmt var repl (s : Tast.tstmt) : Tast.tstmt =
  let se = subst_expr var repl in
  match s with
  | Tast.TSdecl (vr, init) -> Tast.TSdecl (vr, Option.map se init)
  | Tast.TSassign (vr, e) -> Tast.TSassign (vr, se e)
  | Tast.TSindex_assign (vr, idx, e) -> Tast.TSindex_assign (vr, se idx, se e)
  | Tast.TSif (c, a, b) ->
      Tast.TSif (se c, List.map (subst_stmt var repl) a,
                 List.map (subst_stmt var repl) b)
  | Tast.TSwhile (c, body) ->
      Tast.TSwhile (se c, List.map (subst_stmt var repl) body)
  | Tast.TSfor (hdr, body) ->
      Tast.TSfor
        ( { hdr with Tast.tf_init = se hdr.Tast.tf_init;
            tf_limit = se hdr.Tast.tf_limit },
          List.map (subst_stmt var repl) body )
  | Tast.TSreturn e -> Tast.TSreturn (Option.map se e)
  | Tast.TSexpr e -> Tast.TSexpr (se e)
  | Tast.TSsink e -> Tast.TSsink (se e)

let rec stmt_has_return = function
  | Tast.TSreturn _ -> true
  | Tast.TSif (_, a, b) ->
      List.exists stmt_has_return a || List.exists stmt_has_return b
  | Tast.TSwhile (_, body) | Tast.TSfor (_, body) ->
      List.exists stmt_has_return body
  | Tast.TSdecl _ | Tast.TSassign _ | Tast.TSindex_assign _ | Tast.TSexpr _
  | Tast.TSsink _ ->
      false

let rec stmt_has_loop = function
  | Tast.TSwhile _ | Tast.TSfor _ -> true
  | Tast.TSif (_, a, b) ->
      List.exists stmt_has_loop a || List.exists stmt_has_loop b
  | Tast.TSdecl _ | Tast.TSassign _ | Tast.TSindex_assign _ | Tast.TSreturn _
  | Tast.TSexpr _ | Tast.TSsink _ ->
      false

(* does expression [e] mention scalar [name]? *)
let rec expr_mentions name (e : Tast.texpr) =
  match e.Tast.tnode with
  | Tast.Tvar vr -> String.equal vr.Tast.vr_name name
  | Tast.Tint_lit _ | Tast.Treal_lit _ -> false
  | Tast.Tindex (vr, idx) ->
      String.equal vr.Tast.vr_name name || expr_mentions name idx
  | Tast.Tunary (_, a) | Tast.Tcast (_, a) -> expr_mentions name a
  | Tast.Tbinary (_, a, b) -> expr_mentions name a || expr_mentions name b
  | Tast.Tcall (_, args) -> List.exists (expr_mentions name) args

(* does statement [s] mention scalar [name] anywhere — as a read in any
   expression, or as an assignment / declaration target? *)
let rec stmt_mentions name (s : Tast.tstmt) =
  let em = expr_mentions name in
  let eq vr = String.equal vr.Tast.vr_name name in
  match s with
  | Tast.TSdecl (vr, init) -> eq vr || Option.fold ~none:false ~some:em init
  | Tast.TSassign (vr, e) -> eq vr || em e
  | Tast.TSindex_assign (vr, idx, e) -> eq vr || em idx || em e
  | Tast.TSif (c, a, b) ->
      em c
      || List.exists (stmt_mentions name) a
      || List.exists (stmt_mentions name) b
  | Tast.TSwhile (c, body) -> em c || List.exists (stmt_mentions name) body
  | Tast.TSfor (hdr, body) ->
      eq hdr.Tast.tf_var || em hdr.Tast.tf_init || em hdr.Tast.tf_limit
      || List.exists (stmt_mentions name) body
  | Tast.TSreturn e -> Option.fold ~none:false ~some:em e
  | Tast.TSexpr e | Tast.TSsink e -> em e

(* accumulation statement [s = s op e] with op associative-commutative
   and e not mentioning s *)
let accumulator_pattern (s : Tast.tstmt) =
  match s with
  | Tast.TSassign
      (vr, { Tast.tnode = Tast.Tbinary ((Ast.Badd | Ast.Bmul) as op, a, b); _ })
    -> (
      let is_self e =
        match e.Tast.tnode with
        | Tast.Tvar v -> String.equal v.Tast.vr_name vr.Tast.vr_name
        | _ -> false
      in
      match (is_self a, is_self b) with
      | true, false when not (expr_mentions vr.Tast.vr_name b) ->
          Some (vr, op, b)
      | false, true when not (expr_mentions vr.Tast.vr_name a) ->
          Some (vr, op, a)
      | _ -> None)
  | _ -> None

let identity_lit (ty : Ast.ty) (op : Ast.binop) : Tast.texpr =
  match (ty, op) with
  | Ast.Tint, Ast.Badd -> { Tast.tnode = Tast.Tint_lit 0; tty = Ast.Tint }
  | Ast.Tint, _ -> { Tast.tnode = Tast.Tint_lit 1; tty = Ast.Tint }
  | Ast.Treal, Ast.Badd -> { Tast.tnode = Tast.Treal_lit 0.0; tty = Ast.Treal }
  | Ast.Treal, _ -> { Tast.tnode = Tast.Treal_lit 1.0; tty = Ast.Treal }

(* --- index canonicalisation (careful mode) -------------------------------

   Careful unrolling reassociates array subscripts so that every copy of
   the body computes the same non-constant base expression with the copy
   offset as a trailing constant: [yoff + (k + 2)] becomes
   [(yoff + k) + 2].  Local CSE then unifies the base across copies and
   the scheduler's symbolic disambiguation proves that stores from early
   copies do not interfere with loads in later copies (Section 4.4). *)

(* Flatten an int expression into a signed sum: a list of
   [(term, sign)] with sign ±1 plus a constant.  Subtraction negates
   the right-hand side's terms, so composite subtrahends ([a - b],
   nested chains like [k - j - 1]) flatten instead of opacifying the
   whole expression. *)
let rec flatten_sum (e : Tast.texpr) : (Tast.texpr * int) list * int =
  if e.Tast.tty <> Ast.Tint then ([ (e, 1) ], 0)
  else
    match e.Tast.tnode with
    | Tast.Tint_lit n -> ([], n)
    | Tast.Tbinary (Ast.Badd, a, b) ->
        let ta, ca = flatten_sum a in
        let tb, cb = flatten_sum b in
        (ta @ tb, ca + cb)
    | Tast.Tbinary (Ast.Bsub, a, b) ->
        let ta, ca = flatten_sum a in
        let tb, cb = flatten_sum b in
        (ta @ List.map (fun (t, s) -> (t, -s)) tb, ca - cb)
    | Tast.Tunary (Ast.Uneg, a) ->
        let ta, ca = flatten_sum a in
        (List.map (fun (t, s) -> (t, -s)) ta, -ca)
    | _ -> ([ (e, 1) ], 0)

(* Rebuild as [((pos_1 + pos_2 + ...) - neg_1 - ...) ± c]: positive
   terms first in source order, then negated terms, constant last — so
   two subscripts differing only by a constant share the whole base
   expression and CSE collapses it. *)
let normalize_index (e : Tast.texpr) : Tast.texpr =
  if e.Tast.tty <> Ast.Tint then e
  else
    let terms, c = flatten_sum e in
    let pos = List.filter_map (fun (t, s) -> if s > 0 then Some t else None) terms in
    let neg = List.filter_map (fun (t, s) -> if s < 0 then Some t else None) terms in
    match (pos, neg) with
    | [], [] -> Tast.int_expr c
    | _ ->
        let base =
          match pos with
          | t :: rest ->
              List.fold_left
                (fun acc t ->
                  { Tast.tnode = Tast.Tbinary (Ast.Badd, acc, t);
                    tty = Ast.Tint })
                t rest
          | [] -> Tast.int_expr 0
        in
        let base =
          List.fold_left
            (fun acc t ->
              { Tast.tnode = Tast.Tbinary (Ast.Bsub, acc, t); tty = Ast.Tint })
            base neg
        in
        if c = 0 then base
        else if c > 0 then
          { Tast.tnode = Tast.Tbinary (Ast.Badd, base, Tast.int_expr c);
            tty = Ast.Tint;
          }
        else
          { Tast.tnode = Tast.Tbinary (Ast.Bsub, base, Tast.int_expr (-c));
            tty = Ast.Tint;
          }

let normalize_expr (e : Tast.texpr) : Tast.texpr =
  Tast.map_expr
    (fun e ->
      match e.Tast.tnode with
      | Tast.Tindex (vr, idx) ->
          { e with Tast.tnode = Tast.Tindex (vr, normalize_index idx) }
      | _ -> e)
    e

let rec normalize_stmt (s : Tast.tstmt) : Tast.tstmt =
  match s with
  | Tast.TSdecl (vr, init) -> Tast.TSdecl (vr, Option.map normalize_expr init)
  | Tast.TSassign (vr, e) -> Tast.TSassign (vr, normalize_expr e)
  | Tast.TSindex_assign (vr, idx, e) ->
      Tast.TSindex_assign (vr, normalize_index idx, normalize_expr e)
  | Tast.TSif (c, a, b) ->
      Tast.TSif (normalize_expr c, List.map normalize_stmt a,
                 List.map normalize_stmt b)
  | Tast.TSwhile (c, body) ->
      Tast.TSwhile (normalize_expr c, List.map normalize_stmt body)
  | Tast.TSfor (hdr, body) ->
      Tast.TSfor
        ( { hdr with Tast.tf_init = normalize_expr hdr.Tast.tf_init;
            tf_limit = normalize_expr hdr.Tast.tf_limit },
          List.map normalize_stmt body )
  | Tast.TSreturn e -> Tast.TSreturn (Option.map normalize_expr e)
  | Tast.TSexpr e -> Tast.TSexpr (normalize_expr e)
  | Tast.TSsink e -> Tast.TSsink (normalize_expr e)

(* fresh partial-accumulator names; '$' cannot appear in source
   identifiers, so no collision is possible *)
let partial_name base j = Printf.sprintf "%s$u%d" base j

type acc_info = {
  acc_var : Tast.var_ref;
  acc_op : Ast.binop;
  partials : Tast.var_ref list;
}

(* Accumulators whose update chain may be split across [ncopies]
   per-copy partials (careful mode).  Splitting is only sound if
   nothing else observes the accumulator inside the loop: every body
   statement must either be an accumulation [vr = vr op e] with this
   same op, or not mention [vr] at all.  A read like [x = acc] (or a
   write with a different op) would see the partial stream, not the
   true running value.  The loop index is never a valid accumulator —
   copies substitute it with offset expressions. *)
let collect_acc_infos mode ncopies var body =
  if mode <> Careful || ncopies < 2 then []
  else
    let candidates =
      List.filter_map accumulator_pattern body
      |> List.map (fun (vr, op, _) -> (vr, op))
      |> List.sort_uniq compare
    in
    List.filter
      (fun ((vr : Tast.var_ref), op) ->
        (not (String.equal vr.Tast.vr_name var))
        && List.for_all
             (fun s ->
               match accumulator_pattern s with
               | Some (vr', op', _)
                 when String.equal vr'.Tast.vr_name vr.Tast.vr_name ->
                   op' = op
               | _ -> not (stmt_mentions vr.Tast.vr_name s))
             body)
      candidates
    |> List.map (fun (vr, op) ->
           let partials =
             List.init (ncopies - 1) (fun j ->
                 { Tast.vr_name = partial_name vr.Tast.vr_name (j + 1);
                   vr_ty = vr.Tast.vr_ty;
                   vr_kind = Tast.Vlocal;
                 })
           in
           { acc_var = vr; acc_op = op; partials })

(* body copy [j]: the index variable becomes [index_expr]; when
   [acc_infos] is non-empty accumulator updates in copy j > 0 target
   the j-th partial *)
let body_copy mode acc_infos var j index_expr body =
  let find_acc vr =
    List.find_opt
      (fun a -> String.equal a.acc_var.Tast.vr_name vr.Tast.vr_name)
      acc_infos
  in
  let redirect stmt =
    if j = 0 || mode <> Careful then stmt
    else
      match (stmt, accumulator_pattern stmt) with
      | Tast.TSassign (_, _), Some (vr, op, operand) -> (
          match find_acc vr with
          | Some info ->
              let p = List.nth info.partials (j - 1) in
              Tast.TSassign
                ( p,
                  { Tast.tnode = Tast.Tbinary (op, Tast.var_expr p, operand);
                    tty = p.Tast.vr_ty;
                  } )
          | None -> stmt)
      | _ -> stmt
  in
  let copied = List.map (fun s -> subst_stmt var index_expr (redirect s)) body in
  if mode = Careful then List.map normalize_stmt copied else copied

(* initialisation of partial accumulators *)
let partial_decls acc_infos =
  List.concat_map
    (fun info ->
      List.map
        (fun p ->
          Tast.TSdecl (p, Some (identity_lit p.Tast.vr_ty info.acc_op)))
        info.partials)
    acc_infos

(* fold partials back into the accumulator *)
let partial_folds acc_infos =
  List.map
    (fun info ->
      let combined =
        List.fold_left
          (fun acc p ->
            { Tast.tnode = Tast.Tbinary (info.acc_op, acc, Tast.var_expr p);
              tty = info.acc_var.Tast.vr_ty;
            })
          (Tast.var_expr info.acc_var) info.partials
      in
      Tast.TSassign (info.acc_var, combined))
    acc_infos

let offset_expr iv j step =
  if j = 0 then Tast.var_expr iv
  else
    { Tast.tnode =
        Tast.Tbinary
          (Ast.Badd, Tast.var_expr iv,
           { Tast.tnode = Tast.Tint_lit (j * step); tty = Ast.Tint });
      tty = Ast.Tint;
    }

(* Classic factor unrolling: [factor] copies inside the main loop, a
   scalar remainder loop after it. *)
let unroll_classic mode factor (hdr : Tast.tfor) body =
  let var = hdr.Tast.tf_var.Tast.vr_name in
  let step = hdr.Tast.tf_step in
  let acc_infos = collect_acc_infos mode factor var body in
  let copy j = body_copy mode acc_infos var j (offset_expr hdr.Tast.tf_var j step) body in
  let unrolled_body = List.concat (List.init factor copy) in
  (* main-loop limit shrinks so that all copies stay in range:
     i cmp limit && i+(factor-1)*step cmp limit *)
  let adjust = (factor - 1) * step in
  let new_limit =
    { Tast.tnode =
        Tast.Tbinary
          (Ast.Bsub, hdr.Tast.tf_limit,
           { Tast.tnode = Tast.Tint_lit adjust; tty = Ast.Tint });
      tty = Ast.Tint;
    }
  in
  let main_hdr =
    { hdr with Tast.tf_limit = new_limit; tf_step = factor * step }
  in
  (* remainder loop continues from the current value of the index *)
  let remainder_hdr =
    { hdr with Tast.tf_init = Tast.var_expr hdr.Tast.tf_var }
  in
  partial_decls acc_infos
  @ [ Tast.TSfor (main_hdr, unrolled_body) ]
  @ partial_folds acc_infos
  @ [ Tast.TSfor (remainder_hdr, body) ]

(* Full unroll of a [Counted] loop: [trips] straight-line copies, each
   seeing its literal index value, plus the final index assignment the
   loop would have left behind.  The bound analysis only returns
   [Counted] for call-free foldable headers, so dropping the init and
   limit expressions is unobservable. *)
let unroll_full mode ~start ~step ~trips (hdr : Tast.tfor) body =
  let iv = hdr.Tast.tf_var in
  let var = iv.Tast.vr_name in
  let acc_infos = collect_acc_infos mode trips var body in
  let copy j =
    body_copy mode acc_infos var j (Tast.int_expr (start + (j * step))) body
  in
  let copies = List.concat (List.init trips copy) in
  partial_decls acc_infos @ copies @ partial_folds acc_infos
  @ [ Tast.TSassign (iv, Tast.int_expr (start + (trips * step))) ]

(* Peeled unrolling of a [Counted] loop: [trips mod factor] leading
   copies at literal indices, then a main loop whose residual trip
   count is an exact multiple of [factor] — no remainder loop.  The
   main loop keeps the strict comparison in the counting direction with
   the folded exit value [start + trips*step]: every copy [i + j*step]
   (j < factor) stays in range because the last main iteration starts
   at [start + (trips-factor)*step], and the condition fails exactly at
   the exit value, which is also the index value the original loop
   leaves behind. *)
let unroll_peel mode factor ~start ~step ~trips (hdr : Tast.tfor) body =
  let iv = hdr.Tast.tf_var in
  let var = iv.Tast.vr_name in
  let rem = trips mod factor in
  let peel j = body_copy mode [] var 0 (Tast.int_expr (start + (j * step))) body in
  let peeled = List.concat (List.init rem peel) in
  let acc_infos = collect_acc_infos mode factor var body in
  let copy j = body_copy mode acc_infos var j (offset_expr iv j step) body in
  let unrolled_body = List.concat (List.init factor copy) in
  let main_hdr =
    { hdr with
      Tast.tf_init = Tast.int_expr (start + (rem * step));
      tf_cmp = (if step > 0 then Ast.Blt else Ast.Bgt);
      tf_limit = Tast.int_expr (start + (trips * step));
      tf_step = factor * step;
    }
  in
  peeled
  @ partial_decls acc_infos
  @ [ Tast.TSfor (main_hdr, unrolled_body) ]
  @ partial_folds acc_infos

(* mutable counters threaded through one [program_stats] run *)
type counters = {
  mutable n_rolled : int;
  mutable n_peeled : int;
  mutable n_full : int;
  mutable n_skips : (skip_reason * int ref) list;
}

let fresh_counters () =
  { n_rolled = 0; n_peeled = 0; n_full = 0;
    n_skips = List.map (fun r -> (r, ref 0)) all_skip_reasons }

let count_skip cnt reason = incr (List.assoc reason cnt.n_skips)

(* Rewrite statements, unrolling innermost counted loops.  [env] is the
   constant environment at the current program point; it feeds the
   bound analysis that classifies each loop. *)
let rec unroll_stmts ~mode ~factor ~bounds ~full_threshold cnt env stmts =
  let recurse = unroll_stmts ~mode ~factor ~bounds ~full_threshold cnt in
  let env = ref env in
  List.concat_map
    (fun s ->
      let out =
        match s with
        | Tast.TSfor (hdr, body) ->
            if List.exists stmt_has_loop body then begin
              count_skip cnt Not_innermost;
              let body_env = Bounds.Env.at_loop_entry !env hdr body in
              [ Tast.TSfor (hdr, recurse body_env body) ]
            end
            else if List.exists stmt_has_return body then begin
              count_skip cnt Has_return;
              [ s ]
            end
            else begin
              match Bounds.classify !env hdr body with
              | Bounds.Degenerate_step ->
                  count_skip cnt Degenerate_step;
                  [ s ]
              | Bounds.Direction_mismatch ->
                  count_skip cnt Direction_mismatch;
                  [ s ]
              | Bounds.Index_mutated ->
                  count_skip cnt Index_mutated;
                  [ s ]
              | Bounds.Limit_mutated ->
                  count_skip cnt Limit_mutated;
                  [ s ]
              | Bounds.Counted { start; step; trips }
                when bounds && trips <= full_threshold ->
                  cnt.n_full <- cnt.n_full + 1;
                  unroll_full mode ~start ~step ~trips hdr body
              | Bounds.Counted { start; step; trips } when bounds ->
                  cnt.n_peeled <- cnt.n_peeled + 1;
                  unroll_peel mode factor ~start ~step ~trips hdr body
              | Bounds.Counted _ | Bounds.Well_formed ->
                  cnt.n_rolled <- cnt.n_rolled + 1;
                  unroll_classic mode factor hdr body
            end
        | Tast.TSwhile (c, body) ->
            [ Tast.TSwhile (c, recurse (Bounds.Env.at_body_entry !env body) body) ]
        | Tast.TSif (c, a, b) -> [ Tast.TSif (c, recurse !env a, recurse !env b) ]
        | Tast.TSdecl _ | Tast.TSassign _ | Tast.TSindex_assign _
        | Tast.TSreturn _ | Tast.TSexpr _ | Tast.TSsink _ ->
            [ s ]
      in
      env := Bounds.Env.after_stmt !env s;
      out)
    stmts

let program_stats ?(bounds = false) ?(full_threshold = 8) mode factor
    (p : Tast.tprogram) =
  if factor <= 1 then (p, no_stats)
  else begin
    let cnt = fresh_counters () in
    let p' =
      { p with
        Tast.tfuncs =
          List.map
            (fun f ->
              { f with
                Tast.tf_body =
                  unroll_stmts ~mode ~factor ~bounds ~full_threshold cnt
                    Bounds.Env.empty f.Tast.tf_body;
              })
            p.Tast.tfuncs;
      }
    in
    ( p',
      { rolled = cnt.n_rolled;
        peeled = cnt.n_peeled;
        full = cnt.n_full;
        skipped = List.map (fun (r, n) -> (r, !n)) cnt.n_skips;
      } )
  end

let program ?bounds ?full_threshold mode factor (p : Tast.tprogram) =
  fst (program_stats ?bounds ?full_threshold mode factor p)
