(* Loop unrolling at the typed-AST level (Figure 4-6 of the paper).

   The paper unrolled Linpack and Livermore by hand in two ways:

   - *naive*: duplicate the loop body inside the loop and let the normal
     optimizer remove redundant computations — here each copy [j] of the
     body sees the index expression [i + j*step], and the loop steps by
     [factor*step] with a scalar remainder loop after it;

   - *careful*: additionally reassociate long accumulation chains —
     a statement [s = s op e] (op associative and commutative) in copy
     [j > 0] updates a fresh partial accumulator [s_j] instead, and the
     partials fold into [s] after the loop.  Together with the symbolic
     memory disambiguation performed by the scheduler this removes the
     false inter-copy dependences that cap naive unrolling.

   Only innermost counted loops are unrolled; loops containing [return]
   are left alone. *)

type mode = Naive | Careful

(* substitute every occurrence of scalar [var] by expression [repl] *)
let rec subst_expr var repl (e : Tast.texpr) : Tast.texpr =
  match e.Tast.tnode with
  | Tast.Tvar vr when String.equal vr.Tast.vr_name var -> repl
  | Tast.Tvar _ | Tast.Tint_lit _ | Tast.Treal_lit _ -> e
  | Tast.Tindex (vr, idx) ->
      { e with Tast.tnode = Tast.Tindex (vr, subst_expr var repl idx) }
  | Tast.Tunary (op, a) ->
      { e with Tast.tnode = Tast.Tunary (op, subst_expr var repl a) }
  | Tast.Tbinary (op, a, b) ->
      { e with
        Tast.tnode =
          Tast.Tbinary (op, subst_expr var repl a, subst_expr var repl b)
      }
  | Tast.Tcall (n, args) ->
      { e with Tast.tnode = Tast.Tcall (n, List.map (subst_expr var repl) args) }
  | Tast.Tcast (t, a) ->
      { e with Tast.tnode = Tast.Tcast (t, subst_expr var repl a) }

let rec subst_stmt var repl (s : Tast.tstmt) : Tast.tstmt =
  let se = subst_expr var repl in
  match s with
  | Tast.TSdecl (vr, init) -> Tast.TSdecl (vr, Option.map se init)
  | Tast.TSassign (vr, e) -> Tast.TSassign (vr, se e)
  | Tast.TSindex_assign (vr, idx, e) -> Tast.TSindex_assign (vr, se idx, se e)
  | Tast.TSif (c, a, b) ->
      Tast.TSif (se c, List.map (subst_stmt var repl) a,
                 List.map (subst_stmt var repl) b)
  | Tast.TSwhile (c, body) ->
      Tast.TSwhile (se c, List.map (subst_stmt var repl) body)
  | Tast.TSfor (hdr, body) ->
      Tast.TSfor
        ( { hdr with Tast.tf_init = se hdr.Tast.tf_init;
            tf_limit = se hdr.Tast.tf_limit },
          List.map (subst_stmt var repl) body )
  | Tast.TSreturn e -> Tast.TSreturn (Option.map se e)
  | Tast.TSexpr e -> Tast.TSexpr (se e)
  | Tast.TSsink e -> Tast.TSsink (se e)

let rec stmt_has_return = function
  | Tast.TSreturn _ -> true
  | Tast.TSif (_, a, b) ->
      List.exists stmt_has_return a || List.exists stmt_has_return b
  | Tast.TSwhile (_, body) | Tast.TSfor (_, body) ->
      List.exists stmt_has_return body
  | Tast.TSdecl _ | Tast.TSassign _ | Tast.TSindex_assign _ | Tast.TSexpr _
  | Tast.TSsink _ ->
      false

let rec stmt_has_loop = function
  | Tast.TSwhile _ | Tast.TSfor _ -> true
  | Tast.TSif (_, a, b) ->
      List.exists stmt_has_loop a || List.exists stmt_has_loop b
  | Tast.TSdecl _ | Tast.TSassign _ | Tast.TSindex_assign _ | Tast.TSreturn _
  | Tast.TSexpr _ | Tast.TSsink _ ->
      false

(* does expression [e] mention scalar [name]? *)
let rec expr_mentions name (e : Tast.texpr) =
  match e.Tast.tnode with
  | Tast.Tvar vr -> String.equal vr.Tast.vr_name name
  | Tast.Tint_lit _ | Tast.Treal_lit _ -> false
  | Tast.Tindex (vr, idx) ->
      String.equal vr.Tast.vr_name name || expr_mentions name idx
  | Tast.Tunary (_, a) | Tast.Tcast (_, a) -> expr_mentions name a
  | Tast.Tbinary (_, a, b) -> expr_mentions name a || expr_mentions name b
  | Tast.Tcall (_, args) -> List.exists (expr_mentions name) args

(* does statement [s] mention scalar [name] anywhere — as a read in any
   expression, or as an assignment / declaration target? *)
let rec stmt_mentions name (s : Tast.tstmt) =
  let em = expr_mentions name in
  let eq vr = String.equal vr.Tast.vr_name name in
  match s with
  | Tast.TSdecl (vr, init) -> eq vr || Option.fold ~none:false ~some:em init
  | Tast.TSassign (vr, e) -> eq vr || em e
  | Tast.TSindex_assign (vr, idx, e) -> eq vr || em idx || em e
  | Tast.TSif (c, a, b) ->
      em c
      || List.exists (stmt_mentions name) a
      || List.exists (stmt_mentions name) b
  | Tast.TSwhile (c, body) -> em c || List.exists (stmt_mentions name) body
  | Tast.TSfor (hdr, body) ->
      eq hdr.Tast.tf_var || em hdr.Tast.tf_init || em hdr.Tast.tf_limit
      || List.exists (stmt_mentions name) body
  | Tast.TSreturn e -> Option.fold ~none:false ~some:em e
  | Tast.TSexpr e | Tast.TSsink e -> em e

(* accumulation statement [s = s op e] with op associative-commutative
   and e not mentioning s *)
let accumulator_pattern (s : Tast.tstmt) =
  match s with
  | Tast.TSassign
      (vr, { Tast.tnode = Tast.Tbinary ((Ast.Badd | Ast.Bmul) as op, a, b); _ })
    -> (
      let is_self e =
        match e.Tast.tnode with
        | Tast.Tvar v -> String.equal v.Tast.vr_name vr.Tast.vr_name
        | _ -> false
      in
      match (is_self a, is_self b) with
      | true, false when not (expr_mentions vr.Tast.vr_name b) ->
          Some (vr, op, b)
      | false, true when not (expr_mentions vr.Tast.vr_name a) ->
          Some (vr, op, a)
      | _ -> None)
  | _ -> None

let identity_lit (ty : Ast.ty) (op : Ast.binop) : Tast.texpr =
  match (ty, op) with
  | Ast.Tint, Ast.Badd -> { Tast.tnode = Tast.Tint_lit 0; tty = Ast.Tint }
  | Ast.Tint, _ -> { Tast.tnode = Tast.Tint_lit 1; tty = Ast.Tint }
  | Ast.Treal, Ast.Badd -> { Tast.tnode = Tast.Treal_lit 0.0; tty = Ast.Treal }
  | Ast.Treal, _ -> { Tast.tnode = Tast.Treal_lit 1.0; tty = Ast.Treal }

(* --- index canonicalisation (careful mode) -------------------------------

   Careful unrolling reassociates array subscripts so that every copy of
   the body computes the same non-constant base expression with the copy
   offset as a trailing constant: [yoff + (k + 2)] becomes
   [(yoff + k) + 2].  Local CSE then unifies the base across copies and
   the scheduler's symbolic disambiguation proves that stores from early
   copies do not interfere with loads in later copies (Section 4.4). *)

let rec flatten_sum (e : Tast.texpr) : Tast.texpr list * int =
  if e.Tast.tty <> Ast.Tint then ([ e ], 0)
  else
    match e.Tast.tnode with
    | Tast.Tint_lit n -> ([], n)
    | Tast.Tbinary (Ast.Badd, a, b) ->
        let ta, ca = flatten_sum a in
        let tb, cb = flatten_sum b in
        (ta @ tb, ca + cb)
    | Tast.Tbinary (Ast.Bsub, a, { Tast.tnode = Tast.Tint_lit n; _ }) ->
        let ta, ca = flatten_sum a in
        (ta, ca - n)
    | _ -> ([ e ], 0)

let normalize_index (e : Tast.texpr) : Tast.texpr =
  if e.Tast.tty <> Ast.Tint then e
  else
    let terms, c = flatten_sum e in
    match terms with
    | [] -> Tast.int_expr c
    | t :: rest ->
        let sum =
          List.fold_left
            (fun acc t ->
              { Tast.tnode = Tast.Tbinary (Ast.Badd, acc, t); tty = Ast.Tint })
            t rest
        in
        if c = 0 then sum
        else
          { Tast.tnode = Tast.Tbinary (Ast.Badd, sum, Tast.int_expr c);
            tty = Ast.Tint;
          }

let normalize_expr (e : Tast.texpr) : Tast.texpr =
  Tast.map_expr
    (fun e ->
      match e.Tast.tnode with
      | Tast.Tindex (vr, idx) ->
          { e with Tast.tnode = Tast.Tindex (vr, normalize_index idx) }
      | _ -> e)
    e

let rec normalize_stmt (s : Tast.tstmt) : Tast.tstmt =
  match s with
  | Tast.TSdecl (vr, init) -> Tast.TSdecl (vr, Option.map normalize_expr init)
  | Tast.TSassign (vr, e) -> Tast.TSassign (vr, normalize_expr e)
  | Tast.TSindex_assign (vr, idx, e) ->
      Tast.TSindex_assign (vr, normalize_index idx, normalize_expr e)
  | Tast.TSif (c, a, b) ->
      Tast.TSif (normalize_expr c, List.map normalize_stmt a,
                 List.map normalize_stmt b)
  | Tast.TSwhile (c, body) ->
      Tast.TSwhile (normalize_expr c, List.map normalize_stmt body)
  | Tast.TSfor (hdr, body) ->
      Tast.TSfor
        ( { hdr with Tast.tf_init = normalize_expr hdr.Tast.tf_init;
            tf_limit = normalize_expr hdr.Tast.tf_limit },
          List.map normalize_stmt body )
  | Tast.TSreturn e -> Tast.TSreturn (Option.map normalize_expr e)
  | Tast.TSexpr e -> Tast.TSexpr (normalize_expr e)
  | Tast.TSsink e -> Tast.TSsink (normalize_expr e)

(* fresh partial-accumulator names; '$' cannot appear in source
   identifiers, so no collision is possible *)
let partial_name base j = Printf.sprintf "%s$u%d" base j

type acc_info = {
  acc_var : Tast.var_ref;
  acc_op : Ast.binop;
  partials : Tast.var_ref list;
}

(* Unroll one counted loop by [factor]. *)
let unroll_for mode factor (hdr : Tast.tfor) body =
  let var = hdr.Tast.tf_var.Tast.vr_name in
  let step = hdr.Tast.tf_step in
  (* collect accumulators for careful mode *)
  let accs =
    if mode <> Careful then []
    else
      let candidates =
        List.filter_map accumulator_pattern body
        |> List.map (fun (vr, op, _) -> (vr, op))
        |> List.sort_uniq compare
      in
      (* Splitting an accumulator into per-copy partials is only sound if
         nothing else observes it inside the loop: every body statement
         must either be an accumulation [vr = vr op e] with this same op,
         or not mention [vr] at all.  A read like [x = acc] (or a write
         with a different op) would see the partial stream, not the true
         running value.  The loop index is never a valid accumulator —
         copies substitute it with offset expressions. *)
      List.filter
        (fun ((vr : Tast.var_ref), op) ->
          (not (String.equal vr.Tast.vr_name var))
          && List.for_all
               (fun s ->
                 match accumulator_pattern s with
                 | Some (vr', op', _)
                   when String.equal vr'.Tast.vr_name vr.Tast.vr_name ->
                     op' = op
                 | _ -> not (stmt_mentions vr.Tast.vr_name s))
               body)
        candidates
  in
  let acc_infos =
    List.map
      (fun (vr, op) ->
        let partials =
          List.init (factor - 1) (fun j ->
              { Tast.vr_name = partial_name vr.Tast.vr_name (j + 1);
                vr_ty = vr.Tast.vr_ty;
                vr_kind = Tast.Vlocal;
              })
        in
        { acc_var = vr; acc_op = op; partials })
      accs
  in
  let find_acc vr =
    List.find_opt
      (fun a -> String.equal a.acc_var.Tast.vr_name vr.Tast.vr_name)
      acc_infos
  in
  (* body copy [j]: index variable becomes [var + j*step]; in careful
     mode accumulator updates in copy j>0 target the j-th partial *)
  let copy j =
    let iv = hdr.Tast.tf_var in
    let index_expr =
      if j = 0 then Tast.var_expr iv
      else
        { Tast.tnode =
            Tast.Tbinary
              (Ast.Badd, Tast.var_expr iv,
               { Tast.tnode = Tast.Tint_lit (j * step); tty = Ast.Tint });
          tty = Ast.Tint;
        }
    in
    let redirect stmt =
      if j = 0 || mode <> Careful then stmt
      else
        match (stmt, accumulator_pattern stmt) with
        | Tast.TSassign (_, _), Some (vr, op, operand) -> (
            match find_acc vr with
            | Some info ->
                let p = List.nth info.partials (j - 1) in
                Tast.TSassign
                  ( p,
                    { Tast.tnode =
                        Tast.Tbinary (op, Tast.var_expr p, operand);
                      tty = p.Tast.vr_ty;
                    } )
            | None -> stmt)
        | _ -> stmt
    in
    let copied = List.map (fun s -> subst_stmt var index_expr (redirect s)) body in
    if mode = Careful then List.map normalize_stmt copied else copied
  in
  let unrolled_body = List.concat (List.init factor copy) in
  (* main-loop limit shrinks so that all copies stay in range:
     i cmp limit && i+(factor-1)*step cmp limit *)
  let adjust = (factor - 1) * step in
  let new_limit =
    { Tast.tnode =
        Tast.Tbinary
          (Ast.Bsub, hdr.Tast.tf_limit,
           { Tast.tnode = Tast.Tint_lit adjust; tty = Ast.Tint });
      tty = Ast.Tint;
    }
  in
  let main_hdr =
    { hdr with Tast.tf_limit = new_limit; tf_step = factor * step }
  in
  (* initialisation of partial accumulators *)
  let partial_decls =
    List.concat_map
      (fun info ->
        List.map
          (fun p ->
            Tast.TSdecl
              (p, Some (identity_lit p.Tast.vr_ty info.acc_op)))
          info.partials)
      acc_infos
  in
  (* fold partials back into the accumulator *)
  let partial_folds =
    List.map
      (fun info ->
        let combined =
          List.fold_left
            (fun acc p ->
              { Tast.tnode = Tast.Tbinary (info.acc_op, acc, Tast.var_expr p);
                tty = info.acc_var.Tast.vr_ty;
              })
            (Tast.var_expr info.acc_var) info.partials
        in
        Tast.TSassign (info.acc_var, combined))
      acc_infos
  in
  (* remainder loop continues from the current value of the index *)
  let remainder_hdr =
    { hdr with Tast.tf_init = Tast.var_expr hdr.Tast.tf_var }
  in
  partial_decls
  @ [ Tast.TSfor (main_hdr, unrolled_body) ]
  @ partial_folds
  @ [ Tast.TSfor (remainder_hdr, body) ]

(* Rewrite statements, unrolling innermost counted loops. *)
let rec unroll_stmts mode factor stmts =
  List.concat_map
    (fun s ->
      match s with
      | Tast.TSfor (hdr, body) ->
          if
            (not (List.exists stmt_has_loop body))
            && (not (List.exists stmt_has_return body))
            && factor > 1
          then unroll_for mode factor hdr body
          else [ Tast.TSfor (hdr, unroll_stmts mode factor body) ]
      | Tast.TSwhile (c, body) ->
          [ Tast.TSwhile (c, unroll_stmts mode factor body) ]
      | Tast.TSif (c, a, b) ->
          [ Tast.TSif (c, unroll_stmts mode factor a, unroll_stmts mode factor b) ]
      | Tast.TSdecl _ | Tast.TSassign _ | Tast.TSindex_assign _
      | Tast.TSreturn _ | Tast.TSexpr _ | Tast.TSsink _ ->
          [ s ])
    stmts

let program mode factor (p : Tast.tprogram) =
  if factor <= 1 then p
  else
    { p with
      Tast.tfuncs =
        List.map
          (fun f ->
            { f with Tast.tf_body = unroll_stmts mode factor f.Tast.tf_body })
          p.Tast.tfuncs;
    }
