(** Loop unrolling at the typed-AST level (Figure 4-6).

    The paper unrolled Linpack and Livermore by hand in two ways; both
    are reproduced as mechanical transforms of innermost counted loops:

    - {e naive}: duplicate the loop body, each copy [j] seeing the index
      expression [i + j*step]; the main loop steps by [factor*step] with
      a scalar remainder loop after it.  The normal optimizer then
      removes the redundant computations;
    - {e careful}: additionally (a) reassociate accumulation chains —
      [s = s op e] in copy [j > 0] updates a fresh partial accumulator,
      folded into [s] after the loop — and (b) canonicalise array
      subscripts to [(base) + constant] form so local CSE unifies the
      base across copies and the scheduler's symbolic disambiguation
      proves stores from early copies independent of loads in later
      copies.

    Loops containing [return], and non-innermost loops, are left
    alone. *)

type mode = Naive | Careful

val program : mode -> int -> Tast.tprogram -> Tast.tprogram
(** [program mode factor p]: unroll every innermost counted loop of
    every function by [factor] (1 = identity). *)
