(** Loop unrolling at the typed-AST level (Figure 4-6).

    The paper unrolled Linpack and Livermore by hand in two ways; both
    are reproduced as mechanical transforms of innermost counted loops:

    - {e naive}: duplicate the loop body, each copy [j] seeing the index
      expression [i + j*step]; the main loop steps by [factor*step] with
      a scalar remainder loop after it.  The normal optimizer then
      removes the redundant computations;
    - {e careful}: additionally (a) reassociate accumulation chains —
      [s = s op e] in copy [j > 0] updates a fresh partial accumulator,
      folded into [s] after the loop — and (b) canonicalise array
      subscripts to [(base) ± constant] form so local CSE unifies the
      base across copies and the scheduler's symbolic disambiguation
      proves stores from early copies independent of loads in later
      copies.

    The {!Bounds} analysis classifies every candidate loop first.
    Degenerate loops (zero step, step fighting the comparison
    direction, a body that assigns the index, a limit expression the
    body invalidates) are always skipped with a per-reason counter —
    unrolling them is a miscompile.  With [~bounds:true], loops whose
    trip count folds to a compile-time constant are additionally
    {e fully unrolled} (trip count ≤ [full_threshold]: straight-line
    copies, no loop, no remainder) or {e peeled} ([trips mod factor]
    leading copies so the main loop's residual count is an exact
    multiple of the factor — no remainder loop).

    Loops containing [return], and non-innermost loops, are left
    alone. *)

type mode = Naive | Careful

(** Why a candidate loop was left alone. *)
type skip_reason =
  | Degenerate_step  (** [tf_step = 0] *)
  | Direction_mismatch  (** step sign disagrees with the comparison *)
  | Index_mutated  (** the body assigns or re-declares the index *)
  | Limit_mutated
      (** the limit expression is not invariant under the body (the
          lowering re-evaluates it every iteration) *)
  | Has_return  (** the body contains [return] *)
  | Not_innermost  (** the body contains another loop *)

val all_skip_reasons : skip_reason list
(** Every reason, in a fixed order — the order reported interfaces
    (lint [--json]) use. *)

val skip_reason_name : skip_reason -> string
(** Stable snake_case name, e.g. ["degenerate_step"]. *)

type stats = {
  rolled : int;  (** classic factor unrolling with a remainder loop *)
  peeled : int;  (** remainder loop eliminated by peeling *)
  full : int;  (** fully unrolled — no loop left *)
  skipped : (skip_reason * int) list;
      (** one entry per {!skip_reason}, in [all_skip_reasons] order *)
}

val no_stats : stats
(** All-zero statistics (the factor ≤ 1 identity transform). *)

val skip_count : stats -> skip_reason -> int

val program :
  ?bounds:bool ->
  ?full_threshold:int ->
  mode ->
  int ->
  Tast.tprogram ->
  Tast.tprogram
(** [program mode factor p]: unroll every innermost counted loop of
    every function by [factor] (1 = identity).  [bounds] (default
    [false]) enables full unroll and peeling for loops with known trip
    counts; [full_threshold] (default 8) caps the trip count that is
    fully unrolled. *)

val program_stats :
  ?bounds:bool ->
  ?full_threshold:int ->
  mode ->
  int ->
  Tast.tprogram ->
  Tast.tprogram * stats
(** [program] plus per-loop transformation and skip counts. *)

val normalize_index : Tast.texpr -> Tast.texpr
(** Careful-mode subscript canonicalisation: flatten an int expression
    into a signed term sum and rebuild it as
    [((pos_1 + ...) - neg_1 - ...) ± constant].  Exposed for tests. *)
