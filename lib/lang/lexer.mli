(** Hand-written lexer for MiniMod. *)

type token =
  | INT of int
  | REAL of float
  | IDENT of string
  | KVAR
  | KARR
  | KFUN
  | KIF
  | KELSE
  | KWHILE
  | KFOR
  | KRETURN
  | KSINK
  | KINT
  | KREAL_TY
  | KVIEW
  | KOF
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | COMMA
  | SEMI
  | COLON
  | ASSIGN
  | PLUS
  | MINUS
  | STAR
  | SLASH
  | PERCENT
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | ANDAND
  | OROR
  | BANG
  | AMP
  | PIPE
  | CARET
  | SHL
  | SHR
  | EOF

exception Error of string * Ast.pos

type t
(** Mutable lexer state over one source string. *)

val make : string -> t

val next : t -> token * Ast.pos
(** The next token and the position where it starts; [EOF] at the end.
    ['#'] and ["//"] start line comments.  Raises {!Error} on an
    unexpected character. *)

val token_name : token -> string
(** For error messages. *)
