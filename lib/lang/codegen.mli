(** Code generation: typed AST to IR.

    Every MiniMod variable lives in memory at this stage — globals at
    absolute addresses, locals and parameters in the stack frame — and
    each access emits an explicit load or store, which is exactly the
    code the paper's "no global register allocation" configuration
    measures; home promotion happens later in [Ilp_regalloc].
    Expression temporaries are fresh virtual registers.  Loads and
    stores carry {!Ilp_ir.Mem_info} annotations, with array subscripts
    of the form [e ± c] recorded symbolically for the scheduler's
    disambiguation.

    Calling convention: outgoing argument [i] is stored at [sp-nargs+i]
    below the caller's frame; the callee's prologue claims it; results
    travel in [Instr.ret_reg]; return addresses live outside simulated
    memory.  See the implementation header for the frame layout. *)

exception Error of string

val sink_name : string
(** The reserved checksum global, always the first global (["__sink"]). *)

val gen_program : Tast.tprogram -> Ilp_ir.Program.t
