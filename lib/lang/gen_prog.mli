(** Random well-typed MiniMod programs, with shrinking.

    The fuzz corpus behind both the property test-suite (via its QCheck
    wrapper) and [ilp fuzz].  Programs are a small structured AST so
    failing cases shrink; every generated or shrunk program is
    well-typed, terminating and fault-free by construction (masked
    subscripts, nonzero divisors, bounded counted loops with read-only
    loop variables, no recursion, declarations never shrunk away). *)

type expr =
  | Const of int
  | Var of string
  | Neg of expr
  | Binop of string * expr * expr
  | Div_mod of string * expr * expr * int
      (** [a op ((b & 7) + k)]: divisor in [\[k, k+7\]], never zero *)
  | Arr_read of string * expr * int  (** name, index, mask *)

type limit = Lim_const of int | Lim_var of string

type for_header = {
  fh_init : int;
  fh_cmp : string;  (** "<", "<=", ">" or ">=" *)
  fh_limit : limit;
  fh_step : int;  (** nonzero; negative renders [lv = lv - s] *)
}
(** Counted-loop header.  Every generated combination terminates: the
    step agrees with the comparison direction against a constant or
    never-assigned limit, or the condition is false on entry. *)

val for_up : int -> for_header
(** [for_up trips]: the plain [lv = 0; lv < trips; lv = lv + 1]
    header. *)

type stmt =
  | Assign of string * expr
  | Arr_write of string * expr * int * expr
  | If of expr * stmt list * stmt list
  | For of string * for_header * stmt list  (** loop var, header, body *)
  | Self_assign of string
      (** [v = v;] — semantically the identity, but on a loop variable
          it makes the body assign the index, which the unroller must
          skip rather than miscompile *)

type prog = {
  globals : (string * int) list;  (** name, initial value *)
  locals : (string * int) list;
  arrays : (string * int) list;  (** name, power-of-two size *)
  helper : expr option;
  call_helper : bool;
  stmts : stmt list;
}

val render : prog -> string
(** MiniMod source text: declarations, helper, [main] ending in a
    [sink(...)] mix of every variable and three cells of each array. *)

val generate :
  ?mode:[ `Default | `Alias_heavy | `Unroll_heavy | `Range_heavy ] ->
  Random.State.t ->
  prog
(** [`Default] draws the general corpus.  [`Alias_heavy] (the
    aliasing-adversarial mode behind [ilp fuzz --alias-heavy]) hammers
    one or two arrays through affine indices over shared index locals:
    copies ([q = p]), small positive {e and negative} offsets applied
    before the subscript mask, variable-plus-variable bases — the
    shapes the memory-dependence analysis must either prove apart or
    refuse to prune.  [`Unroll_heavy] (behind [ilp fuzz
    --unroll-heavy]) stresses the bound-aware unroller: boundary trip
    counts (0, 1, factor±1 up to factor 8), down-counting loops, steps
    beyond 1, inclusive comparisons, statically-zero-trip degenerate
    headers, index self-assignment and unknown scalar bounds.
    [`Range_heavy] (behind [ilp fuzz --range-heavy]) stresses the
    value-range analysis: stride-2 and stride-3 index arithmetic
    interleaving even/odd and mod-3 cells, split upper/lower array
    windows, loop bounds near the array extents, and nested counted
    loops driving monotone accumulators through widening — subscripts
    are built to be in range before their safety mask, so the range
    product must prove what the mask otherwise guarantees. *)

val size : prog -> int
(** AST node count — the strictly decreasing measure [shrink] minimises. *)

val shrink_step : prog -> prog Seq.t
(** One round of candidate simplifications, shallowest (biggest) first:
    drop a top-level statement, hoist a branch or loop body, simplify
    subexpressions, drop the helper.  Suitable directly as a QCheck2
    [~shrink]. *)

val shrink : still_fails:(prog -> bool) -> prog -> prog
(** Greedy fixpoint over {!shrink_step}: repeatedly take the first
    strictly smaller (by {!size}) candidate that still fails,
    restarting from the shallowest candidates after each success, until
    none does.  The strict decrease guarantees termination even when
    size-neutral rewrites (e.g. replacing a condition by a constant)
    would otherwise cycle.  [still_fails] should be true of the
    input. *)
