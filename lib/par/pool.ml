(* Fixed-size domain pool with deterministic indexed batches.

   One mutex guards the whole pool state.  A batch is published as a
   closure [body] plus an index counter; workers (and the caller, which
   participates) repeatedly claim the next index under the mutex and run
   [body] outside it.  Results land in caller-owned slots indexed by the
   item, so scheduling never affects output order.  Workers with nothing
   to do block on [has_work]; the caller blocks on [all_done] until the
   last in-flight item of its batch has finished. *)

type t = {
  size : int;  (* parallel width, including the calling domain *)
  mutex : Mutex.t;
  has_work : Condition.t;
  all_done : Condition.t;
  mutable body : (int -> unit) option;  (* current batch, if any *)
  mutable limit : int;  (* items in the current batch *)
  mutable next : int;  (* next unclaimed index *)
  mutable in_flight : int;  (* claimed but not yet finished *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.size

(* Claim and run items of the current batch until none are left; must be
   entered with the mutex held, returns with it held. *)
let drain_batch t =
  let continue = ref true in
  while !continue do
    match t.body with
    | Some body when t.next < t.limit ->
        let i = t.next in
        t.next <- t.next + 1;
        t.in_flight <- t.in_flight + 1;
        Mutex.unlock t.mutex;
        body i;
        (* [body] is exception-free by construction: [map] wraps the
           user function and records failures in its result slots. *)
        Mutex.lock t.mutex;
        t.in_flight <- t.in_flight - 1;
        if t.next >= t.limit && t.in_flight = 0 then
          Condition.broadcast t.all_done
    | _ -> continue := false
  done

let worker_loop t =
  Mutex.lock t.mutex;
  while not t.stop do
    drain_batch t;
    if not t.stop then Condition.wait t.has_work t.mutex
  done;
  Mutex.unlock t.mutex

let create ~jobs =
  let size = max 1 jobs in
  let t =
    { size;
      mutex = Mutex.create ();
      has_work = Condition.create ();
      all_done = Condition.create ();
      body = None;
      limit = 0;
      next = 0;
      in_flight = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <- List.init (size - 1) (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  t.stop <- true;
  Condition.broadcast t.has_work;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [body] on indices [0, n): publish the batch, wake the workers,
   join in, and wait for the stragglers. *)
let run_batch t n body =
  if n > 0 then begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: used after shutdown"
    end;
    if t.body <> None then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: nested batch on the same pool"
    end;
    t.body <- Some body;
    t.limit <- n;
    t.next <- 0;
    Condition.broadcast t.has_work;
    drain_batch t;
    while t.in_flight > 0 do
      Condition.wait t.all_done t.mutex
    done;
    t.body <- None;
    Mutex.unlock t.mutex
  end

let map t f (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let out = Array.make n None in
  (* first-by-index failure wins, so error behaviour is deterministic *)
  let failure : (int * exn * Printexc.raw_backtrace) option ref = ref None in
  let fail_mutex = Mutex.create () in
  run_batch t n (fun i ->
      match f xs.(i) with
      | y -> out.(i) <- Some y
      | exception e ->
          let bt = Printexc.get_raw_backtrace () in
          Mutex.lock fail_mutex;
          (match !failure with
          | Some (j, _, _) when j < i -> ()
          | Some _ | None -> failure := Some (i, e, bt));
          Mutex.unlock fail_mutex);
  match !failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map (function Some y -> y | None -> assert false) out

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let map_reduce t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map t f xs)
