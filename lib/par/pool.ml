(* Work-stealing domain pool with deterministic indexed batches.

   Each participant (the caller is participant 0, plus [size - 1] worker
   domains) owns a deque of tasks: a growable circular buffer in
   Chase-Lev style, except that every operation takes the deque's own
   lock instead of using the lock-free CAS protocol — steals are rare
   and tasks are coarse (a whole capture, or a trace segment of ~10^5
   dynamic instructions), so contention on a per-deque mutex is noise,
   and the locked variant is obviously correct under the OCaml memory
   model.

   The owner pushes and pops at the young end (LIFO, so a chain's
   freshly spawned continuation stays hot in its own deque); idle
   participants steal from the old end (FIFO, oldest-first), which takes
   the work most likely to be large and least likely to be in the
   owner's cache.  A batch seeds the deques round-robin; a running task
   may spawn a continuation into its participant's own deque
   ([map_chunked]), which is how one long trace replay is split into
   stealable segments without ever running two segments of the same item
   concurrently.

   Determinism is by construction, not by scheduling: every result is
   written into a caller-owned slot at its item's index, continuations
   carry their item's index, and the batch only returns when every task
   (including spawned continuations) has finished — so [map]/[map_chunked]
   are exactly [Array.map]-equivalent whatever the interleaving.

   Idle participants block on a condition variable (no busy-waiting —
   this must also behave on a single-core host).  A sequence number
   bumped whenever new work becomes visible closes the scan-then-sleep
   race: a participant records [seq] before scanning every deque, and
   goes to sleep only if [seq] is unchanged, so it cannot sleep through
   work published after its scan began. *)

type task = int -> unit
(* a task receives the index of the participant running it, so it can
   spawn continuations into that participant's own deque *)

module Deque = struct
  type t = {
    lock : Mutex.t;
    mutable buf : task option array;  (* circular, capacity a power of 2 *)
    mutable head : int;  (* index of the oldest task, in [0, capacity) *)
    mutable len : int;
  }

  let create () =
    { lock = Mutex.create (); buf = Array.make 8 None; head = 0; len = 0 }

  (* double the buffer, rebasing the live window to index 0 *)
  let grow d =
    let cap = Array.length d.buf in
    let nbuf = Array.make (2 * cap) None in
    for k = 0 to d.len - 1 do
      nbuf.(k) <- d.buf.((d.head + k) land (cap - 1))
    done;
    d.buf <- nbuf;
    d.head <- 0

  (* young end: only the owner pushes *)
  let push d task =
    Mutex.lock d.lock;
    if d.len = Array.length d.buf then grow d;
    d.buf.((d.head + d.len) land (Array.length d.buf - 1)) <- Some task;
    d.len <- d.len + 1;
    Mutex.unlock d.lock

  (* young end: the owner's own claim *)
  let pop d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        d.len <- d.len - 1;
        let k = (d.head + d.len) land (Array.length d.buf - 1) in
        let task = d.buf.(k) in
        d.buf.(k) <- None;
        task
      end
    in
    Mutex.unlock d.lock;
    r

  (* old end: what idle participants take *)
  let steal d =
    Mutex.lock d.lock;
    let r =
      if d.len = 0 then None
      else begin
        let k = d.head in
        let task = d.buf.(k) in
        d.buf.(k) <- None;
        d.head <- (d.head + 1) land (Array.length d.buf - 1);
        d.len <- d.len - 1;
        task
      end
    in
    Mutex.unlock d.lock;
    r
end

type t = {
  size : int;  (* parallel width, including the calling domain *)
  mutex : Mutex.t;  (* guards [active], [seq], [stop] and the conditions *)
  wake : Condition.t;  (* workers: a batch started, work appeared, or stop *)
  all_done : Condition.t;  (* caller: the current batch has drained *)
  deques : Deque.t array;  (* deques.(p) is owned by participant p *)
  pending : int Atomic.t;  (* unfinished tasks of the current batch *)
  idle : int Atomic.t;  (* participants blocked on [wake] *)
  mutable active : bool;  (* a batch is in progress *)
  mutable seq : int;  (* bumped whenever work may have appeared *)
  mutable stop : bool;
  mutable workers : unit Domain.t list;
}

let jobs t = t.size

(* Mark one task finished; the last one closes the batch and wakes both
   the idle workers and the waiting caller. *)
let finish_one t =
  if Atomic.fetch_and_add t.pending (-1) = 1 then begin
    Mutex.lock t.mutex;
    t.active <- false;
    Condition.broadcast t.wake;
    Condition.broadcast t.all_done;
    Mutex.unlock t.mutex
  end

(* Spawn a continuation from inside a running task: it becomes one more
   pending task in participant [p]'s own deque.  The increment happens
   before the spawning task is marked finished, so [pending] can never
   dip to zero while a chain still has work.  Sleepers are only poked
   when someone is actually idle. *)
let spawn t p task =
  Atomic.incr t.pending;
  Deque.push t.deques.(p) task;
  if Atomic.get t.idle > 0 then begin
    Mutex.lock t.mutex;
    t.seq <- t.seq + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex
  end

(* Run tasks as participant [p] until neither the own deque nor a steal
   yields anything.  [body] closures are exception-free by construction:
   [map]/[map_chunked] wrap the user function and record failures in
   their result slots. *)
let work t p =
  let continue = ref true in
  while !continue do
    match Deque.pop t.deques.(p) with
    | Some task ->
        task p;
        finish_one t
    | None ->
        (* steal oldest-first, scanning the other participants starting
           just after [p] so thieves spread out *)
        let stolen = ref None in
        let i = ref 1 in
        while !stolen = None && !i < t.size do
          stolen := Deque.steal t.deques.((p + !i) mod t.size);
          incr i
        done;
        (match !stolen with
        | Some task ->
            task p;
            finish_one t
        | None -> continue := false)
  done

let worker_loop t p =
  Mutex.lock t.mutex;
  while not t.stop do
    if t.active then begin
      let seen = t.seq in
      Mutex.unlock t.mutex;
      work t p;
      Mutex.lock t.mutex;
      (* sleep only if nothing new was published since the scan began;
         otherwise rescan immediately *)
      if t.seq = seen && t.active && not t.stop then begin
        Atomic.incr t.idle;
        Condition.wait t.wake t.mutex;
        Atomic.decr t.idle
      end
    end
    else begin
      Atomic.incr t.idle;
      Condition.wait t.wake t.mutex;
      Atomic.decr t.idle
    end
  done;
  Mutex.unlock t.mutex

let create ~jobs =
  let size = max 1 jobs in
  let t =
    { size;
      mutex = Mutex.create ();
      wake = Condition.create ();
      all_done = Condition.create ();
      deques = Array.init size (fun _ -> Deque.create ());
      pending = Atomic.make 0;
      idle = Atomic.make 0;
      active = false;
      seq = 0;
      stop = false;
      workers = [];
    }
  in
  t.workers <-
    List.init (size - 1) (fun k ->
        Domain.spawn (fun () -> worker_loop t (k + 1)));
  t

let shutdown t =
  Mutex.lock t.mutex;
  let workers = t.workers in
  t.workers <- [];
  t.stop <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  List.iter Domain.join workers

let with_pool ~jobs f =
  let t = create ~jobs in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)

(* Run [tasks] to completion: seed the deques round-robin, wake the
   workers, join in as participant 0, and wait for the stragglers.
   Misuse that previously hung is detected here: a batch submitted while
   another is in flight (a nested [map]/[map_reduce]/[map_chunked] on
   the same pool, or concurrent use from two domains) and use after
   [shutdown] both raise [Invalid_argument]. *)
let run_batch t (tasks : task array) =
  let n = Array.length tasks in
  if n > 0 then begin
    Mutex.lock t.mutex;
    if t.stop then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: used after shutdown"
    end;
    if t.active then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: nested batch on the same pool"
    end;
    Atomic.set t.pending n;
    Array.iteri (fun i task -> Deque.push t.deques.(i mod t.size) task) tasks;
    t.active <- true;
    t.seq <- t.seq + 1;
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex;
    work t 0;
    Mutex.lock t.mutex;
    while t.active do
      Condition.wait t.all_done t.mutex
    done;
    Mutex.unlock t.mutex
  end

type ('s, 'b) progress = More of 's | Done of 'b

(* Chunkable deterministic map: item [i] starts with [start xs.(i)] and
   keeps stepping while the task yields [More]; each [More] becomes a
   fresh task in the running participant's own deque, so between two
   chunks of one item the participant (or a thief) can interleave other
   items' work.  Results land at item indices; if items fail, the
   exception of the lowest-index item wins, however stealing reorders
   completion. *)
let map_chunked t ~start ~step (xs : 'a array) : 'b array =
  let n = Array.length xs in
  let out = Array.make n None in
  let failure : (int * exn * Printexc.raw_backtrace) option ref = ref None in
  let fail_mutex = Mutex.create () in
  let record i e bt =
    Mutex.lock fail_mutex;
    (match !failure with
    | Some (j, _, _) when j < i -> ()
    | Some _ | None -> failure := Some (i, e, bt));
    Mutex.unlock fail_mutex
  in
  let rec advance i progress p =
    match progress with
    | Done y -> out.(i) <- Some y
    | More s -> spawn t p (fun p' -> run_step i s p')
  and run_step i s p =
    match step s with
    | progress -> advance i progress p
    | exception e -> record i e (Printexc.get_raw_backtrace ())
  in
  run_batch t
    (Array.init n (fun i p ->
         match start xs.(i) with
         | progress -> advance i progress p
         | exception e -> record i e (Printexc.get_raw_backtrace ())));
  match !failure with
  | Some (_, e, bt) -> Printexc.raise_with_backtrace e bt
  | None ->
      Array.map (function Some y -> y | None -> assert false) out

let map t f (xs : 'a array) : 'b array =
  (* [start] always answers [Done], so [step] is unreachable *)
  map_chunked t ~start:(fun x -> Done (f x)) ~step:(fun s -> More s) xs

let map_list t f xs = Array.to_list (map t f (Array.of_list xs))

let map_reduce t ~map:f ~reduce ~init xs =
  Array.fold_left reduce init (map t f xs)
