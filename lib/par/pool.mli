(** A work-stealing domain pool with deterministic data-parallel
    [map]/[map_chunked]/[map_reduce] over indexed work items.

    The pool owns [jobs - 1] worker domains (the caller is participant
    0, so [jobs = 1] degenerates to sequential execution in the calling
    domain).  Every participant owns a deque of tasks — a Chase-Lev
    style circular buffer, lock-protected rather than lock-free —
    pushing and popping at the young end (LIFO) and being stolen from at
    the old end by idle participants (oldest-first).  A batch seeds the
    deques round-robin; tasks may spawn continuations into the running
    participant's own deque ({!map_chunked}), which is how one long item
    is split into stealable chunks.

    Determinism is structural, not scheduling-dependent: each result is
    written into a pre-sized slot of the output array at its item's
    index, so [map pool f xs] returns exactly what [Array.map f xs]
    returns, whatever the interleaving — including which exception
    escapes (lowest item index wins).

    Hand-rolled over [Domain] + [Mutex]/[Condition] + [Atomic] only: no
    extra dependencies, no busy-waiting (idle participants block on a
    condition variable, so oversubscribing a small host is safe).

    Restrictions, {e enforced}: batches must not nest — a task must not
    itself call {!map}/{!map_chunked}/{!map_reduce} on the same pool —
    and a pool must not be used after {!shutdown}.  Both misuses raise
    [Invalid_argument] instead of deadlocking. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs] participants ([jobs - 1] new domains plus the
    caller).  [jobs] is clamped to at least 1. *)

val jobs : t -> int
(** Parallel width of the pool, including the calling domain. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f]: bracket [create]/[shutdown] around [f], also on
    exceptions. *)

type ('s, 'b) progress =
  | More of 's  (** the item needs another chunk, resuming from ['s] *)
  | Done of 'b  (** the item's final result *)

val map_chunked :
  t ->
  start:('a -> ('s, 'b) progress) ->
  step:('s -> ('s, 'b) progress) ->
  'a array ->
  'b array
(** Deterministic parallel map over chunkable items.  Item [i] begins
    with [start xs.(i)] and, while the answer is [More s], continues
    with [step s] — each continuation is a separate task, so a
    participant (or a thief) can interleave other items' chunks between
    two chunks of one item; chunks of a single item never run
    concurrently, and each sees every effect of its predecessor.  The
    result array is indexed like [xs].  If items raise (in [start] or
    any [step]), the exception of the {e lowest-index} item is re-raised
    in the caller with its backtrace once the batch has drained,
    whatever order stealing completed items in; a failed item spawns no
    further chunks. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel map: same result as [Array.map f xs],
    including which exception escapes (lowest item index).  Equivalent
    to {!map_chunked} with a [start] that always answers [Done]. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [map_reduce t ~map ~reduce ~init xs]: parallel {!map}, then a
    sequential left fold of [reduce] over the results in index order —
    [Array.fold_left reduce init (Array.map map xs)], deterministically,
    whatever the scheduling. *)
