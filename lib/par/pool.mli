(** A small fixed-size domain pool with deterministic data-parallel
    [map]/[map_reduce] over indexed work items.

    The pool owns [jobs - 1] worker domains (the caller is the remaining
    worker, so [jobs = 1] degenerates to plain sequential execution in
    the calling domain).  A batch hands out item indices from a shared
    counter under a mutex; each result is written into a pre-sized slot
    of the output array at its item's index, so the output order never
    depends on domain scheduling — [map pool f xs] returns exactly what
    [Array.map f xs] returns, whatever the interleaving.

    Hand-rolled over [Domain] + [Mutex]/[Condition] only: no extra
    dependencies, no busy-waiting (idle workers block on a condition
    variable).

    Restrictions: batches must not nest — [f] must not itself call
    {!map}/{!map_reduce} on the same pool — and a pool must not be used
    after {!shutdown}. *)

type t

val create : jobs:int -> t
(** Spawn a pool of [jobs] workers ([jobs - 1] new domains plus the
    caller).  [jobs] is clamped to at least 1. *)

val jobs : t -> int
(** Parallel width of the pool, including the calling domain. *)

val shutdown : t -> unit
(** Stop and join the worker domains.  Idempotent. *)

val with_pool : jobs:int -> (t -> 'a) -> 'a
(** [with_pool ~jobs f]: bracket [create]/[shutdown] around [f], also on
    exceptions. *)

val map : t -> ('a -> 'b) -> 'a array -> 'b array
(** Deterministic parallel map: same result as [Array.map f xs].  If one
    or more applications of [f] raise, the exception raised by the item
    with the {e lowest index} is re-raised in the caller (with its
    backtrace) once the batch has drained — so exception behaviour is
    deterministic too. *)

val map_list : t -> ('a -> 'b) -> 'a list -> 'b list
(** {!map} over a list, preserving order. *)

val map_reduce : t -> map:('a -> 'b) -> reduce:('b -> 'b -> 'b) -> init:'b -> 'a array -> 'b
(** [map_reduce t ~map ~reduce ~init xs]: parallel {!map}, then a
    sequential left fold of [reduce] over the results in index order —
    [Array.fold_left reduce init (Array.map map xs)], deterministically,
    whatever the scheduling. *)
