(** ASCII pipeline-occupancy diagrams, reproducing the execution
    diagrams of Section 2 (Figures 2-1 … 2-7) and the start-up transient
    of Figure 4-2.

    Instructions are rows; time runs left to right in minor cycles with
    ['|'] marks between base cycles.  Stages: [F]etch and [D]ecode (one
    base cycle each), [E]xecute (the operation latency), [W]rite-back.
    Issue times come from the same in-order model used for measurement,
    so structural hazards appear in the picture exactly as they cost
    cycles. *)

open Ilp_machine

val render : ?max_cycles:int -> Config.t -> Ilp_ir.Instr.t list -> string

val independent_instrs : ?cls:[ `Int | `Mixed ] -> int -> Ilp_ir.Instr.t list
(** [n] mutually independent instructions — all integer adds, or a
    rotating add/load/FP-add/shift mix. *)

val dependent_instrs : int -> Ilp_ir.Instr.t list
(** A serial chain: each instruction consumes its predecessor's result
    (the Figure 1-1 (b) shape). *)

val render_vector : ?vector_length:int -> string list -> string
(** Figure 2-8: vector instructions issue serially, each spawning a
    chained string of element operations ([E] per element). *)
