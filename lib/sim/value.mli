(** Runtime values: each memory word and register holds either an
    integer or a floating-point number.  The tag doubles as a dynamic
    type check on executed code — an FP instruction applied to an
    integer word indicates a compiler bug. *)

type t = Int of int | Float of float

exception Type_error of string

val zero : t

val to_int : t -> int
(** Raises {!Type_error} on floats. *)

val to_float : t -> float
(** Raises {!Type_error} on ints. *)

val equal : t -> t -> bool
val pp : t Fmt.t
val to_string : t -> string
