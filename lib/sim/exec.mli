(** Functional execution of IR programs.

    The executor interprets a fully register-allocated program (no
    virtual registers) and drives an observer with every executed
    instruction in program order; timing models, mix counters and cache
    simulators all consume this dynamic stream, so one functional pass
    can feed several observers at once.

    Machine state: a physical register file, a flat word-addressed
    memory (globals low, stack high), and a return-address stack managed
    by call/ret.  Return addresses never touch simulated memory, keeping
    the calling convention out of the measured instruction stream. *)

open Ilp_ir

exception Fault of string
(** Division by zero, out-of-range memory access, unknown label,
    malformed instruction, or exceeded step budget. *)

type observer = Instr.t -> int -> unit
(** [observer instr addr]: called after each instruction executes;
    [addr] is the effective address of a load or store, [-1]
    otherwise. *)

type options = {
  mem_words : int;  (** memory size in words (default 2^20) *)
  max_steps : int;  (** execution budget before a fault *)
  registers : int;  (** size of the physical register file *)
}

val default_options : options

type outcome = {
  dyn_instrs : int;  (** dynamically executed instructions *)
  sink : Value.t;  (** final value of the checksum cell *)
  class_counts : int array;  (** dynamic count per instruction class *)
  per_function : (string * int) list;
      (** dynamic instructions per function, heaviest first *)
  memory : Value.t array;  (** final memory, for test inspection *)
  regs : Value.t array;  (** final register file *)
}

val nothing_observer : observer

val run :
  ?options:options ->
  ?observer:observer ->
  ?observers:observer list ->
  ?on_branch:(Instr.t -> bool -> unit) ->
  ?on_store:(Instr.t -> int -> Value.t -> unit) ->
  Program.t ->
  outcome
(** Execute from ["main"] until [halt] (or a return with an empty call
    stack).  All of [observer] and [observers] are driven by the same
    functional pass; [on_branch] additionally reports the outcome of
    every executed conditional branch (trace capture records these to
    replay control flow without re-interpreting), and
    [on_store instr addr value] every executed store with its effective
    address and stored value (the differential oracle compares these
    dynamic store streams across compilation stages).

    Raises {!Fault} if a function name collides with a basic-block label
    elsewhere in the program (the alias that makes function entries
    reachable by name would silently redirect those branches). *)
