(* Dynamic-trace capture: the first N executed instructions with their
   effective addresses, for debugging compiled code and for trace-style
   tooling (`ilp trace`). *)

open Ilp_ir

type entry = { instr : Instr.t; address : int  (** -1 if not memory *) }

let capture ?(limit = 200) ?options (p : Program.t) =
  let entries = ref [] in
  let n = ref 0 in
  let observer i addr =
    if !n < limit then begin
      entries := { instr = i; address = addr } :: !entries;
      incr n
    end
  in
  let outcome = Exec.run ?options ~observer p in
  (List.rev !entries, outcome)

let pp_entry ppf e =
  if e.address >= 0 then
    Fmt.pf ppf "%-40s  [addr %d]" (Instr.to_string e.instr) e.address
  else Fmt.string ppf (Instr.to_string e.instr)

let render entries =
  let buf = Buffer.create 1024 in
  List.iteri
    (fun k e -> Buffer.add_string buf (Fmt.str "%6d  %a\n" k pp_entry e))
    entries;
  Buffer.contents buf
