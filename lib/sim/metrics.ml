(* Measurement helpers shared by the experiment harness. *)

open Ilp_ir
open Ilp_machine

type run = {
  machine : string;
  dyn_instrs : int;
  minor_cycles : int;
  base_cycles : float;
  speedup : float;  (** instructions per base cycle = ILP exploited *)
  stall_cycles : int;
  class_counts : int array;
  sink : Value.t;
}

let registers_of = function
  | Some o -> o.Exec.registers
  | None -> Exec.default_options.Exec.registers

(* Execute [program] once, timed against [config].  The program must be
   fully register-allocated and scheduled for [config] beforehand. *)
let measure ?cache ?options (config : Config.t) program =
  let timing = Timing.create ?cache ~registers:(registers_of options) config in
  let outcome = Exec.run ?options ~observer:(Timing.observer timing) program in
  Timing.finish timing;
  { machine = config.Config.name;
    dyn_instrs = outcome.Exec.dyn_instrs;
    minor_cycles = Timing.minor_cycles timing;
    base_cycles = Timing.base_cycles timing;
    speedup = Timing.speedup timing;
    stall_cycles = timing.Timing.stall_cycles;
    class_counts = outcome.Exec.class_counts;
    sink = outcome.Exec.sink;
  }

(* Time [program] against [config] by replaying a captured trace instead
   of re-interpreting; bit-identical to [measure] of the same program
   (see Trace_buffer). *)
let measure_replay ?cache ?options (config : Config.t) trace program =
  let timing = Timing.create ?cache ~registers:(registers_of options) config in
  Trace_buffer.replay trace program timing;
  Timing.finish timing;
  { machine = config.Config.name;
    dyn_instrs = Trace_buffer.dyn_instrs trace;
    minor_cycles = Timing.minor_cycles timing;
    base_cycles = Timing.base_cycles timing;
    speedup = Timing.speedup timing;
    stall_cycles = timing.Timing.stall_cycles;
    class_counts = Trace_buffer.class_counts trace;
    sink = Trace_buffer.sink trace;
  }

(* ---- Segmented replay ---------------------------------------------- *)

(* Default segment length in dynamic instructions.  Large enough that
   the per-segment snapshot/resume cost is noise, small enough that the
   heaviest workload splits into dozens of segments a work-stealing
   scheduler can interleave. *)
let default_segment = 1 lsl 17

(* A replay in flight, paused at a packet boundary.  The prepared
   binary and the trace are shared immutable data; the cursor is
   single-owner mutable state and the snapshot is plain copied data, so
   a chain of [replay_segmented_step] calls may hop between domains as
   long as each handoff orders the previous step before the next (a
   work-stealing pool's deque does exactly that). *)
type segmented = {
  sg_config : Config.t;
  sg_trace : Trace_buffer.t;
  sg_prepared : Trace_buffer.prepared;
  sg_cursor : Trace_buffer.cursor;
  sg_snap : Timing.snapshot;
  sg_segment : int;
}

let finish_run (config : Config.t) trace timing =
  Timing.finish timing;
  { machine = config.Config.name;
    dyn_instrs = Trace_buffer.dyn_instrs trace;
    minor_cycles = Timing.minor_cycles timing;
    base_cycles = Timing.base_cycles timing;
    speedup = Timing.speedup timing;
    stall_cycles = timing.Timing.stall_cycles;
    class_counts = Trace_buffer.class_counts trace;
    sink = Trace_buffer.sink trace;
  }

(* Advance one segment on [timing] and package the outcome.  The +1 on
   the final comparison is unnecessary here (unlike [replay]) because an
   overrunning walk raises inside [replay_steps] on the segment that
   crosses the trace length. *)
let seg_advance config trace pr cu segment timing =
  Trace_buffer.replay_steps pr cu timing ~max_steps:segment;
  if Trace_buffer.cursor_done cu then `Done (finish_run config trace timing)
  else
    `More
      { sg_config = config;
        sg_trace = trace;
        sg_prepared = pr;
        sg_cursor = cu;
        sg_snap = Timing.snapshot timing;
        sg_segment = segment;
      }

let replay_segmented_start ?cache ?options ?(segment = default_segment)
    (config : Config.t) trace program =
  let segment = max 1 segment in
  let pr = Trace_buffer.prepare trace program in
  let cu = Trace_buffer.start pr in
  let timing = Timing.create ?cache ~registers:(registers_of options) config in
  seg_advance config trace pr cu segment timing

let replay_segmented_step sg =
  seg_advance sg.sg_config sg.sg_trace sg.sg_prepared sg.sg_cursor
    sg.sg_segment (Timing.resume sg.sg_snap)

(* The sequential driver: equivalent to [measure_replay], exercising the
   same segment chain a parallel scheduler would. *)
let measure_replay_segmented ?cache ?options ?segment config trace program =
  let rec drive = function
    | `Done run -> run
    | `More sg -> drive (replay_segmented_step sg)
  in
  drive (replay_segmented_start ?cache ?options ?segment config trace program)

(* Dynamic instruction-class frequencies of a run, as fractions. *)
let class_frequencies run : Superpipelining.frequencies =
  let total = float_of_int (Array.fold_left ( + ) 0 run.class_counts) in
  if total = 0.0 then Array.make Iclass.count 0.0
  else Array.map (fun c -> float_of_int c /. total) run.class_counts

let harmonic_mean = function
  | [] -> invalid_arg "Metrics.harmonic_mean: empty list"
  | xs ->
      let n = float_of_int (List.length xs) in
      let denom = List.fold_left (fun acc x -> acc +. (1.0 /. x)) 0.0 xs in
      n /. denom

let geometric_mean = function
  | [] -> invalid_arg "Metrics.geometric_mean: empty list"
  | xs ->
      let n = float_of_int (List.length xs) in
      let sum = List.fold_left (fun acc x -> acc +. log x) 0.0 xs in
      exp (sum /. n)

let arithmetic_mean = function
  | [] -> invalid_arg "Metrics.arithmetic_mean: empty list"
  | xs ->
      List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let pp_run ppf r =
  Fmt.pf ppf "%-24s %10d instrs %12.1f base cycles  speedup %.3f" r.machine
    r.dyn_instrs r.base_cycles r.speedup
