(* Functional execution of IR programs.

   The executor interprets a fully register-allocated program (no virtual
   registers) and drives an observer callback with every executed
   instruction, in program order.  Timing models, instruction-mix
   counters and cache simulators all consume this dynamic stream, so one
   functional pass can feed several observers at once.

   Machine state: a physical register file, a flat word-addressed memory
   (globals low, stack high), and a return-address stack managed by
   call/ret — return addresses never touch simulated memory, which keeps
   the calling convention out of the measured instruction stream, as on
   the MultiTitan with its dedicated PSW return-PC. *)

open Ilp_ir

exception Fault of string

type observer = Instr.t -> int -> unit
(** [observer instr addr]: [addr] is the effective address of a load or
    store, or [-1] for other instructions. *)

type options = {
  mem_words : int;
  max_steps : int;
  registers : int;  (** size of the physical register file *)
}

let default_options =
  { mem_words = 1 lsl 20; max_steps = 400_000_000; registers = 256 }

type outcome = {
  dyn_instrs : int;  (** dynamically executed instructions *)
  sink : Value.t;  (** final value of the checksum cell *)
  class_counts : int array;  (** dynamic count per instruction class *)
  per_function : (string * int) list;
      (** dynamic instructions per function, heaviest first *)
  memory : Value.t array;  (** final memory, for test inspection *)
  regs : Value.t array;  (** final register file *)
}

(* Resolved code addresses: function index, block index, instruction
   index within the block. *)
type code_pos = { fn : int; blk : int; ins : int }

type resolved = {
  prog_code : Instr.t array array array;  (** [fn].(blk).(ins) *)
  block_of_label : (string, code_pos) Hashtbl.t;
  entry : code_pos;
}

let resolve (p : Program.t) =
  let functions = Array.of_list p.Program.functions in
  let block_of_label = Hashtbl.create 256 in
  let prog_code =
    Array.mapi
      (fun fn f ->
        let blocks = Array.of_list f.Func.blocks in
        Array.mapi
          (fun blk b ->
            Hashtbl.replace block_of_label
              (Label.to_string b.Block.label)
              { fn; blk; ins = 0 };
            Array.of_list b.Block.instrs)
          blocks)
      functions
  in
  (* the entry block of every function is also reachable by function
     name.  A basic block elsewhere carrying the same label would be
     silently shadowed here, redirecting branches to the function entry
     (or calls into the block): refuse to run such a program.  The
     benign case is a function whose entry block is labelled with its
     own name, which codegen always emits. *)
  Array.iteri
    (fun fn f ->
      match f.Func.blocks with
      | [] -> ()
      | _ :: _ ->
          (match Hashtbl.find_opt block_of_label f.Func.name with
          | Some pos when pos.fn <> fn || pos.blk <> 0 ->
              raise
                (Fault
                   (Printf.sprintf
                      "function name %s collides with a basic-block label"
                      f.Func.name))
          | Some _ | None -> ());
          Hashtbl.replace block_of_label f.Func.name
            { fn; blk = 0; ins = 0 })
    functions;
  let entry =
    match Hashtbl.find_opt block_of_label "main" with
    | Some pos -> pos
    | None -> raise (Fault "program has no main function")
  in
  { prog_code; block_of_label; entry }

let init_memory (p : Program.t) mem_words =
  let memory = Array.make mem_words Value.zero in
  let addr = ref Program.globals_base in
  List.iter
    (fun g ->
      (match g.Program.init with
      | Program.Zero -> ()
      | Program.Ints ns ->
          List.iteri (fun i n -> memory.(!addr + i) <- Value.Int n) ns
      | Program.Floats fs ->
          List.iteri (fun i f -> memory.(!addr + i) <- Value.Float f) fs);
      addr := !addr + g.Program.words)
    p.Program.globals;
  (memory, !addr)

let nothing_observer : observer = fun _ _ -> ()

let run ?(options = default_options) ?observer ?(observers = []) ?on_branch
    ?on_store (p : Program.t) : outcome =
  (* fan every executed instruction out to all observers in this one
     functional pass *)
  let observer =
    match (Option.to_list observer @ observers : observer list) with
    | [] -> nothing_observer
    | [ f ] -> f
    | fs -> fun i addr -> List.iter (fun f -> f i addr) fs
  in
  let r = resolve p in
  let memory, globals_end = init_memory p options.mem_words in
  let regs = Array.make options.registers Value.zero in
  let class_counts = Array.make Iclass.count 0 in
  let fn_counts = Array.make (Array.length r.prog_code) 0 in
  let fn_names =
    Array.of_list (List.map (fun f -> f.Func.name) p.Program.functions)
  in
  regs.(Reg.index Reg.sp) <- Value.Int (options.mem_words - 8);
  let call_stack = ref [] in
  let steps = ref 0 in
  let pos = ref r.entry in
  let running = ref true in
  let sink_addr = Program.globals_base in
  ignore globals_end;
  (* optimization may leave empty blocks behind; execution falls through
     them to the next block with instructions *)
  let rec normalize ({ fn; blk; ins } as p) =
    if blk >= Array.length r.prog_code.(fn) then
      raise (Fault "fell off the end of a function")
    else if ins < Array.length r.prog_code.(fn).(blk) then p
    else normalize { fn; blk = blk + 1; ins = 0 }
  in
  let find_label l =
    match Hashtbl.find_opt r.block_of_label (Label.to_string l) with
    | Some p -> normalize p
    | None -> raise (Fault ("jump to unknown label " ^ Label.to_string l))
  in
  let reg_value reg = regs.(Reg.index reg) in
  let operand_value = function
    | Instr.Oreg reg -> reg_value reg
    | Instr.Oimm n -> Value.Int n
    | Instr.Ofimm f -> Value.Float f
  in
  let set_dst (i : Instr.t) v =
    match i.Instr.dst with
    | Some d -> regs.(Reg.index d) <- v
    | None -> raise (Fault ("instruction without destination: " ^ Instr.to_string i))
  in
  let src (i : Instr.t) n = operand_value (List.nth i.Instr.srcs n) in
  let int_binop i f =
    set_dst i
      (Value.Int (f (Value.to_int (src i 0)) (Value.to_int (src i 1))))
  in
  let float_binop i f =
    set_dst i
      (Value.Float (f (Value.to_float (src i 0)) (Value.to_float (src i 1))))
  in
  let bool_of b = Value.Int (if b then 1 else 0) in
  let cmp_values a b =
    (* branches and seq/sne compare whatever is in the registers; mixed
       comparisons indicate a compiler bug *)
    match (a, b) with
    | Value.Int x, Value.Int y -> compare x y
    | Value.Float x, Value.Float y -> compare x y
    | Value.Int x, Value.Float y -> compare (float_of_int x) y
    | Value.Float x, Value.Int y -> compare x (float_of_int y)
  in
  let effective_address (i : Instr.t) base_operand =
    let base = Value.to_int (operand_value base_operand) in
    let addr = base + i.Instr.offset in
    if addr < 0 || addr >= options.mem_words then
      raise
        (Fault
           (Printf.sprintf "memory access out of range: %d (%s)" addr
              (Instr.to_string i)));
    addr
  in
  (* advance to the next instruction in straight-line order *)
  let advance () =
    let { fn; blk; ins } = !pos in
    pos := normalize { fn; blk; ins = ins + 1 }
  in
  while !running do
    incr steps;
    if !steps > options.max_steps then
      raise (Fault (Printf.sprintf "exceeded %d steps" options.max_steps));
    let { fn; blk; ins } = !pos in
    let i = r.prog_code.(fn).(blk).(ins) in
    class_counts.(Iclass.to_index (Instr.iclass i)) <-
      class_counts.(Iclass.to_index (Instr.iclass i)) + 1;
    fn_counts.(fn) <- fn_counts.(fn) + 1;
    let addr_for_observer = ref (-1) in
    (match i.Instr.op with
    | Opcode.Add -> int_binop i ( + )
    | Opcode.Sub -> int_binop i ( - )
    | Opcode.Mul -> int_binop i ( * )
    | Opcode.Div ->
        let b = Value.to_int (src i 1) in
        if b = 0 then raise (Fault "integer division by zero");
        int_binop i ( / )
    | Opcode.Rem ->
        let b = Value.to_int (src i 1) in
        if b = 0 then raise (Fault "integer modulo by zero");
        int_binop i (fun x y -> x mod y)
    | Opcode.Neg -> set_dst i (Value.Int (-Value.to_int (src i 0)))
    | Opcode.And -> int_binop i ( land )
    | Opcode.Or -> int_binop i ( lor )
    | Opcode.Xor -> int_binop i ( lxor )
    | Opcode.Not -> set_dst i (Value.Int (lnot (Value.to_int (src i 0))))
    | Opcode.Shl -> int_binop i (fun x y -> x lsl y)
    | Opcode.Shr -> int_binop i (fun x y -> x lsr y)
    | Opcode.Sra -> int_binop i (fun x y -> x asr y)
    | Opcode.Slt -> set_dst i (bool_of (cmp_values (src i 0) (src i 1) < 0))
    | Opcode.Sle -> set_dst i (bool_of (cmp_values (src i 0) (src i 1) <= 0))
    | Opcode.Seq -> set_dst i (bool_of (cmp_values (src i 0) (src i 1) = 0))
    | Opcode.Sne -> set_dst i (bool_of (cmp_values (src i 0) (src i 1) <> 0))
    | Opcode.Mov -> set_dst i (src i 0)
    | Opcode.Li -> set_dst i (src i 0)
    | Opcode.Fli -> set_dst i (src i 0)
    | Opcode.Nop -> ()
    | Opcode.Fadd -> float_binop i ( +. )
    | Opcode.Fsub -> float_binop i ( -. )
    | Opcode.Fmul -> float_binop i ( *. )
    | Opcode.Fdiv -> float_binop i ( /. )
    | Opcode.Fneg -> set_dst i (Value.Float (-.Value.to_float (src i 0)))
    | Opcode.Feq ->
        set_dst i (bool_of (Value.to_float (src i 0) = Value.to_float (src i 1)))
    | Opcode.Flt ->
        set_dst i (bool_of (Value.to_float (src i 0) < Value.to_float (src i 1)))
    | Opcode.Fle ->
        set_dst i (bool_of (Value.to_float (src i 0) <= Value.to_float (src i 1)))
    | Opcode.Itof -> set_dst i (Value.Float (float_of_int (Value.to_int (src i 0))))
    | Opcode.Ftoi ->
        set_dst i (Value.Int (int_of_float (Value.to_float (src i 0))))
    | Opcode.Ld -> (
        match i.Instr.srcs with
        | [ base ] ->
            let addr = effective_address i base in
            addr_for_observer := addr;
            set_dst i memory.(addr)
        | _ -> raise (Fault ("malformed load: " ^ Instr.to_string i)))
    | Opcode.St -> (
        match i.Instr.srcs with
        | [ v; base ] ->
            let addr = effective_address i base in
            addr_for_observer := addr;
            let value = operand_value v in
            memory.(addr) <- value;
            (match on_store with Some f -> f i addr value | None -> ())
        | _ -> raise (Fault ("malformed store: " ^ Instr.to_string i)))
    | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Ble | Opcode.Bgt
    | Opcode.Bge ->
        ()
    | Opcode.Jmp | Opcode.Call | Opcode.Ret | Opcode.Halt -> ());
    observer i !addr_for_observer;
    (* control flow *)
    (match i.Instr.op with
    | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Ble | Opcode.Bgt
    | Opcode.Bge ->
        let c = cmp_values (src i 0) (src i 1) in
        let taken =
          match i.Instr.op with
          | Opcode.Beq -> c = 0
          | Opcode.Bne -> c <> 0
          | Opcode.Blt -> c < 0
          | Opcode.Ble -> c <= 0
          | Opcode.Bgt -> c > 0
          | Opcode.Bge -> c >= 0
          | _ -> assert false
        in
        (match on_branch with Some f -> f i taken | None -> ());
        if taken then
          match i.Instr.target with
          | Some l -> pos := find_label l
          | None -> raise (Fault "branch without target")
        else advance ()
    | Opcode.Jmp -> (
        match i.Instr.target with
        | Some l -> pos := find_label l
        | None -> raise (Fault "jump without target"))
    | Opcode.Call -> (
        match i.Instr.target with
        | Some l ->
            let { fn; blk; ins } = !pos in
            call_stack := { fn; blk; ins } :: !call_stack;
            pos := find_label l
        | None -> raise (Fault "call without target"))
    | Opcode.Ret -> (
        match !call_stack with
        | ra :: rest ->
            call_stack := rest;
            pos := ra;
            advance ()
        | [] -> running := false)
    | Opcode.Halt -> running := false
    | _ -> advance ());
    ()
  done;
  let per_function =
    Array.to_list (Array.mapi (fun k c -> (fn_names.(k), c)) fn_counts)
    |> List.filter (fun (_, c) -> c > 0)
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  { dyn_instrs = !steps;
    sink = memory.(sink_addr);
    class_counts;
    per_function;
    memory;
    regs;
  }
