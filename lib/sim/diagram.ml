(* ASCII pipeline-occupancy diagrams, reproducing the execution diagrams
   of Section 2 (Figures 2-1 through 2-7) and the start-up transient of
   Figure 4-2.

   Instructions are rows; time runs left to right in minor cycles, with
   '|' marks between base cycles.  Stages:

     F  instruction fetch          (one base cycle, i.e. [m] minor cycles)
     D  decode                     (one base cycle)
     E  execute                    (the operation latency)
     W  write back                 (one base cycle)

   Issue times come from the same in-order issue model used for
   measurement, so structural hazards (class conflicts, issue width)
   appear in the picture exactly as they cost cycles. *)

open Ilp_ir
open Ilp_machine

type row = { instr : Instr.t; issue_at : int; latency : int }

(* Issue the straight-line [instrs] and record issue cycles. *)
let layout (config : Config.t) instrs =
  let timing = Timing.create config in
  List.map
    (fun i ->
      Timing.issue timing i (-1);
      { instr = i;
        issue_at = timing.Timing.now;
        latency = Config.latency config (Instr.iclass i);
      })
    instrs

let render ?(max_cycles = 24) (config : Config.t) instrs =
  let m = config.Config.pipe_degree in
  let rows = layout config instrs in
  let total_minor = max_cycles * m in
  let buf = Buffer.create 1024 in
  (* header: base cycle numbers *)
  Buffer.add_string buf "           ";
  for c = 0 to max_cycles - 1 do
    Buffer.add_string buf (Printf.sprintf "|%-*d" m (c mod 100))
  done;
  Buffer.add_char buf '\n';
  List.iteri
    (fun k r ->
      Buffer.add_string buf
        (Printf.sprintf "%-4s %5s " (Printf.sprintf "i%d" k)
           (Opcode.mnemonic r.instr.Instr.op));
      (* shift by two base cycles so the first instruction's fetch and
         decode stages are visible *)
      let issue_at = r.issue_at + (2 * m) in
      let fetch_start = issue_at - (2 * m) in
      let decode_start = issue_at - m in
      let exec_end = issue_at + r.latency in
      let wb_end = exec_end + m in
      for t = 0 to total_minor - 1 do
        if t mod m = 0 then Buffer.add_char buf '|';
        let c =
          if t >= fetch_start && t < decode_start then 'F'
          else if t >= decode_start && t < issue_at then 'D'
          else if t >= issue_at && t < exec_end then 'E'
          else if t >= exec_end && t < wb_end then 'W'
          else ' '
        in
        Buffer.add_char buf c
      done;
      Buffer.add_char buf '\n')
    rows;
  Buffer.contents buf

(* A stream of [n] mutually independent single-cycle instructions
   (distinct destination registers, no shared sources). *)
let independent_instrs ?(cls = `Int) n =
  List.init n (fun k ->
      let dst = Reg.phys (10 + k) in
      match cls with
      | `Int ->
          Instr.make Opcode.Add ~dst ~srcs:[ Instr.Oreg (Reg.phys 4); Instr.Oimm k ]
      | `Mixed ->
          let ops = [| Opcode.Add; Opcode.Ld; Opcode.Fadd; Opcode.Shl |] in
          let op = ops.(k mod 4) in
          if op = Opcode.Ld then
            Instr.make Opcode.Ld ~dst ~srcs:[ Instr.Oreg Reg.sp ] ~offset:k
          else Instr.make op ~dst ~srcs:[ Instr.Oreg (Reg.phys 4); Instr.Oimm k ])

(* A serial chain: each instruction consumes the previous result
   (Figure 1-1 (b) style). *)
let dependent_instrs n =
  List.init n (fun k ->
      let dst = Reg.phys (10 + k + 1) in
      let src = Reg.phys (10 + k) in
      Instr.make Opcode.Add ~dst ~srcs:[ Instr.Oreg src; Instr.Oimm 1 ])

(* Figure 2-8: execution in a vector machine.  Vector instructions issue
   serially (one per cycle, as the paper draws for readability); each
   results in a string of element operations, chained so a consumer
   starts one cycle after the first element of its producer. *)
let render_vector ?(vector_length = 8) (ops : string list) =
  let buf = Buffer.create 512 in
  let total = vector_length + List.length ops + 4 in
  Buffer.add_string buf "            ";
  for c = 0 to total - 1 do
    Buffer.add_string buf (Printf.sprintf "|%d" (c mod 10))
  done;
  Buffer.add_char buf '\n';
  List.iteri
    (fun k name ->
      Buffer.add_string buf (Printf.sprintf "%-10s  " name);
      (* fetch/decode in the two cycles before issue; elements chained *)
      let issue = k + 2 in
      for t = 0 to total - 1 do
        Buffer.add_char buf '|';
        let c =
          if t = issue - 2 then 'F'
          else if t = issue - 1 then 'D'
          else if t >= issue && t < issue + vector_length then 'E'
          else if t = issue + vector_length then 'W'
          else ' '
        in
        Buffer.add_char buf c
      done;
      Buffer.add_char buf '\n')
    ops;
  Buffer.contents buf
