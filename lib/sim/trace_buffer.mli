(** Capture-once/replay-many dynamic traces.

    {!capture} runs the functional interpreter once over a program and
    records the dynamic instruction stream compactly, per static
    instruction: effective-address sequences for loads and stores
    (packed int arrays) and taken-bit sequences for conditional branches
    (62 bits per word), plus the run summary.  The buffer costs roughly
    one word per dynamic memory access — a few megabytes for the
    heaviest benchmark — where the list-of-records {!Trace} capture
    could not hold the full stream.

    {!replay} then drives any {!Timing.t} from the buffer, walking a
    binary as flattened threaded code without re-interpreting it.  The
    binary must share instruction identities with the captured program:
    either the captured program itself, or any per-block reschedule of
    it (e.g. [List_sched.run] for a different machine).  That is safe
    because scheduling permutes instructions only within basic blocks
    and never across calls or the terminator, so branch outcomes and
    per-instruction address sequences are schedule-invariant.  Replay
    feeds {!Timing.issue_decoded} exactly the stream a direct
    {!Timing.observer} would see, so the resulting timing — cycles,
    stalls, histogram, cache behaviour — is bit-identical to a direct
    measurement of the same binary. *)

open Ilp_ir

exception Divergence of string
(** The buffer and the replayed binary disagree: an instruction stream
    ran short or was not fully consumed, a traced instruction is missing
    from the binary, or the replayed length differs from the capture. *)

type t

val capture :
  ?options:Exec.options -> ?observers:Exec.observer list -> Program.t -> t
(** Execute [p] once and record its dynamic trace.  Additional
    [observers] ride along on the same functional pass. *)

val dyn_instrs : t -> int
(** Dynamically executed instructions of the captured run. *)

val sink : t -> Value.t
(** Final checksum of the captured run. *)

val class_counts : t -> int array
(** Dynamic instruction-class counts of the captured run. *)

val footprint_words : t -> int
(** Approximate buffer size in words, for reporting. *)

type stats = {
  mem_streams : int;  (** static loads/stores with a recorded stream *)
  branch_streams : int;  (** static conditional branches traced *)
  addr_entries : int;  (** recorded effective addresses in total *)
  taken_bits : int;  (** recorded branch outcomes in total *)
  dyn : int;  (** dynamic instructions of the captured run *)
  packed_bytes : int;
      (** exact payload bytes when packed: 8 per address, 8 per 62
          taken bits *)
}

val stats : t -> stats
(** What this capture costs: traced static instructions (memory and
    branch streams), dynamic steps, and packed bytes. *)

val byte_size : t -> int
(** [= (stats t).packed_bytes]. *)

val equal : t -> t -> bool
(** Logical equality of two captures: same run summary and bit-identical
    recorded streams per traced instruction.  A buffer compares equal to
    its {!pack}/{!unpack} round trip. *)

(** {1 Packing for the persistent trace store}

    The in-memory buffer keys streams by [Instr.id] — a process-local
    counter.  {!pack} re-keys them by flat static position (functions in
    program order, blocks in layout order, instructions in block order),
    a pure function of the compiled program, so a packed trace written
    by one process re-attaches exactly in another process that compiled
    the same program.  [Ilp_store] serializes this form to disk. *)

type packed = {
  p_dyn_instrs : int;
  p_sink : Value.t;
  p_class_counts : int array;
  p_addrs : (int * int array) array;
      (** (flat position, effective addresses), sorted by position *)
  p_branches : (int * int * int array) array;
      (** (flat position, taken-bit count, packed words), sorted *)
}

val pack : t -> Program.t -> packed
(** Re-key the buffer's streams by flat static position in [program]
    (the program the trace was captured from, or any schedule-sibling
    built in this process).  Raises {!Divergence} if a traced
    instruction is not in the program. *)

val unpack : packed -> Program.t -> t
(** Re-attach a packed trace to [program]'s instruction identities.
    Raises {!Divergence} when a stream's position falls outside the
    program or appears twice.  [unpack (pack t p) p] is {!equal} to
    [t]. *)

val replay : t -> Program.t -> Timing.t -> unit
(** [replay t binary timing] drives [timing] with the captured stream
    laid over [binary].  Raises {!Divergence} if [binary] is not a
    schedule-sibling of the captured program.  Equivalent to {!prepare}
    followed by one whole-trace {!replay_steps}. *)

(** {1 Segmented replay}

    A replay can be cut into segments at any dynamic-instruction
    (packet) boundary: {!prepare} pays the per-(trace, binary) decode
    once, a {!cursor} holds the walk state, and each {!replay_steps}
    call advances at most [max_steps] dynamic instructions.  Combined
    with {!Timing.snapshot}/{!Timing.resume} at the same boundaries,
    segmented replay is bit-identical to an unsegmented {!replay} —
    whatever the cut positions, including empty and whole-trace
    segments — which is what lets a work-stealing scheduler interleave
    segments of long replays with other work. *)

type prepared
(** A trace bound to one concrete binary: instructions pre-decoded,
    control flattened to threaded code, recorded streams attached.
    Immutable after construction; many cursors may walk one [prepared]. *)

val prepare : t -> Program.t -> prepared
(** Bind the trace to [binary].  Raises {!Divergence} if the binary does
    not contain every traced memory instruction or branch. *)

type cursor
(** Walk state over a {!prepared} binary: instruction pointer, call
    stack, stream-consumption cursors and the dynamic-instruction count.
    Mutable, single-owner — advance it from one domain at a time. *)

val start : prepared -> cursor
(** A cursor at the entry point with nothing consumed. *)

val cursor_done : cursor -> bool
(** The walk has halted (and the end-of-trace checks have passed). *)

val steps : cursor -> int
(** Dynamic instructions replayed through this cursor so far. *)

val replay_steps : prepared -> cursor -> Timing.t -> max_steps:int -> unit
(** Replay at most [max_steps] further dynamic instructions into
    [timing] ([max_steps <= 0] replays nothing).  When the walk halts
    within this segment, the end-of-trace consistency checks run
    immediately.  Raises {!Divergence} exactly where an unsegmented
    {!replay} would. *)
