(** Capture-once/replay-many dynamic traces.

    {!capture} runs the functional interpreter once over a program and
    records the dynamic instruction stream compactly, per static
    instruction: effective-address sequences for loads and stores
    (packed int arrays) and taken-bit sequences for conditional branches
    (62 bits per word), plus the run summary.  The buffer costs roughly
    one word per dynamic memory access — a few megabytes for the
    heaviest benchmark — where the list-of-records {!Trace} capture
    could not hold the full stream.

    {!replay} then drives any {!Timing.t} from the buffer, walking a
    binary as flattened threaded code without re-interpreting it.  The
    binary must share instruction identities with the captured program:
    either the captured program itself, or any per-block reschedule of
    it (e.g. [List_sched.run] for a different machine).  That is safe
    because scheduling permutes instructions only within basic blocks
    and never across calls or the terminator, so branch outcomes and
    per-instruction address sequences are schedule-invariant.  Replay
    feeds {!Timing.issue_decoded} exactly the stream a direct
    {!Timing.observer} would see, so the resulting timing — cycles,
    stalls, histogram, cache behaviour — is bit-identical to a direct
    measurement of the same binary. *)

open Ilp_ir

exception Divergence of string
(** The buffer and the replayed binary disagree: an instruction stream
    ran short or was not fully consumed, a traced instruction is missing
    from the binary, or the replayed length differs from the capture. *)

type t

val capture :
  ?options:Exec.options -> ?observers:Exec.observer list -> Program.t -> t
(** Execute [p] once and record its dynamic trace.  Additional
    [observers] ride along on the same functional pass. *)

val dyn_instrs : t -> int
(** Dynamically executed instructions of the captured run. *)

val sink : t -> Value.t
(** Final checksum of the captured run. *)

val class_counts : t -> int array
(** Dynamic instruction-class counts of the captured run. *)

val footprint_words : t -> int
(** Approximate buffer size in words, for reporting. *)

val replay : t -> Program.t -> Timing.t -> unit
(** [replay t binary timing] drives [timing] with the captured stream
    laid over [binary].  Raises {!Divergence} if [binary] is not a
    schedule-sibling of the captured program.  Equivalent to {!prepare}
    followed by one whole-trace {!replay_steps}. *)

(** {1 Segmented replay}

    A replay can be cut into segments at any dynamic-instruction
    (packet) boundary: {!prepare} pays the per-(trace, binary) decode
    once, a {!cursor} holds the walk state, and each {!replay_steps}
    call advances at most [max_steps] dynamic instructions.  Combined
    with {!Timing.snapshot}/{!Timing.resume} at the same boundaries,
    segmented replay is bit-identical to an unsegmented {!replay} —
    whatever the cut positions, including empty and whole-trace
    segments — which is what lets a work-stealing scheduler interleave
    segments of long replays with other work. *)

type prepared
(** A trace bound to one concrete binary: instructions pre-decoded,
    control flattened to threaded code, recorded streams attached.
    Immutable after construction; many cursors may walk one [prepared]. *)

val prepare : t -> Program.t -> prepared
(** Bind the trace to [binary].  Raises {!Divergence} if the binary does
    not contain every traced memory instruction or branch. *)

type cursor
(** Walk state over a {!prepared} binary: instruction pointer, call
    stack, stream-consumption cursors and the dynamic-instruction count.
    Mutable, single-owner — advance it from one domain at a time. *)

val start : prepared -> cursor
(** A cursor at the entry point with nothing consumed. *)

val cursor_done : cursor -> bool
(** The walk has halted (and the end-of-trace checks have passed). *)

val steps : cursor -> int
(** Dynamic instructions replayed through this cursor so far. *)

val replay_steps : prepared -> cursor -> Timing.t -> max_steps:int -> unit
(** Replay at most [max_steps] further dynamic instructions into
    [timing] ([max_steps <= 0] replays nothing).  When the walk halts
    within this segment, the end-of-trace consistency checks run
    immediately.  Raises {!Divergence} exactly where an unsegmented
    {!replay} would. *)
