(* Runtime values: the simulated machine is word addressed and each word
   holds either an integer or a floating-point number.  The tag doubles
   as a type check on the executed code: an FP instruction applied to an
   integer word indicates a compiler bug. *)

type t = Int of int | Float of float

exception Type_error of string

let zero = Int 0

let to_int = function
  | Int n -> n
  | Float f -> raise (Type_error (Printf.sprintf "expected int, got %g" f))

let to_float = function
  | Float f -> f
  | Int n -> raise (Type_error (Printf.sprintf "expected float, got %d" n))

let equal a b =
  match (a, b) with
  | Int x, Int y -> x = y
  | Float x, Float y -> x = y
  | Int _, Float _ | Float _, Int _ -> false

let pp ppf = function
  | Int n -> Fmt.int ppf n
  | Float f -> Fmt.pf ppf "%g" f

let to_string v = Fmt.str "%a" pp v
