(** A direct-mapped data cache with a blocking miss penalty, for the
    Section 5.1 experiments on the interaction of cache misses with
    parallel instruction issue.

    Addresses are word addresses; a line holds [line_words] consecutive
    words.  The cache is write-allocate: loads and stores both fill the
    line on a miss. *)

type t

val create : ?lines:int -> ?line_words:int -> penalty:int -> unit -> t
(** [lines] (default 256) and [line_words] (default 4) must be powers of
    two; [penalty] is the miss cost in (minor) cycles.  Raises
    [Invalid_argument] otherwise. *)

val miss_penalty : t -> int

val access : t -> int -> bool
(** [access t addr] is [true] on a hit; a miss fills the line. *)

val accesses : t -> int
val misses : t -> int
val miss_rate : t -> float

type state
(** Full cache state — geometry, tags and hit/miss counters — as plain
    copied data, for checkpointing a simulation at a segment boundary. *)

val snapshot : t -> state
(** An independent copy of the cache's current state. *)

val of_state : state -> t
(** A fresh cache continuing exactly from [state]. *)

val restore : t -> state -> unit
(** Overwrite [t] with [state].  Raises [Invalid_argument] if the
    snapshot comes from a cache of different geometry or penalty. *)
