(** Measurement helpers shared by the experiment harness. *)

open Ilp_machine

type run = {
  machine : string;
  dyn_instrs : int;  (** dynamically executed instructions *)
  minor_cycles : int;
  base_cycles : float;  (** minor cycles / pipe degree *)
  speedup : float;
      (** instructions per base cycle — the ILP the machine exploits,
          equal to the speedup over the base machine running the same
          binary *)
  stall_cycles : int;
  class_counts : int array;  (** dynamic count per instruction class *)
  sink : Value.t;  (** final checksum *)
}

val measure :
  ?cache:Cache.t ->
  ?options:Exec.options ->
  Config.t ->
  Ilp_ir.Program.t ->
  run
(** Execute [program] once, timed against [config].  The program must be
    fully register-allocated (and normally scheduled for [config])
    beforehand. *)

val measure_replay :
  ?cache:Cache.t ->
  ?options:Exec.options ->
  Config.t ->
  Trace_buffer.t ->
  Ilp_ir.Program.t ->
  run
(** Time [program] against [config] by replaying a captured trace
    instead of re-interpreting.  Bit-identical to {!measure} of the same
    program when the trace was captured from a schedule-sibling of
    [program] (raises {!Trace_buffer.Divergence} otherwise);
    [options] only contributes the register-file size. *)

(** {1 Segmented replay}

    A replay cut into bounded segments at dynamic-instruction
    boundaries.  Each step replays at most [segment] instructions and
    checkpoints the full timing state ({!Timing.snapshot}), so the
    chain can be scheduled as separate tasks — possibly on different
    domains — and the final {!run} is bit-identical to
    {!measure_replay} whatever the segment size.  Note that when a
    [cache] is supplied, only the first segment mutates the caller's
    cache object: later segments continue from checkpointed copies, and
    the cumulative hit/miss counts live in the final (internal) copy —
    the {!run} itself is unaffected. *)

type segmented
(** A replay in flight, paused at a segment boundary. *)

val replay_segmented_start :
  ?cache:Cache.t ->
  ?options:Exec.options ->
  ?segment:int ->
  Config.t ->
  Trace_buffer.t ->
  Ilp_ir.Program.t ->
  [ `Done of run | `More of segmented ]
(** Prepare the replay and run its first segment ([segment] defaults to
    [2{^17}] dynamic instructions and is clamped to at least 1); a trace
    no longer than one segment completes immediately. *)

val replay_segmented_step : segmented -> [ `Done of run | `More of segmented ]
(** Resume from the checkpoint and run the next segment. *)

val measure_replay_segmented :
  ?cache:Cache.t ->
  ?options:Exec.options ->
  ?segment:int ->
  Config.t ->
  Trace_buffer.t ->
  Ilp_ir.Program.t ->
  run
(** Drive the whole segment chain sequentially; bit-identical to
    {!measure_replay}. *)

val class_frequencies : run -> Superpipelining.frequencies
(** The run's dynamic instruction-class mix, as fractions. *)

val harmonic_mean : float list -> float
(** Raises [Invalid_argument] on an empty list.  The paper's summary
    statistic for speedups. *)

val geometric_mean : float list -> float
val arithmetic_mean : float list -> float

val pp_run : run Fmt.t
