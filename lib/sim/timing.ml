(* In-order timing model (Section 3 of the paper).

   The model consumes the dynamic instruction stream produced by [Exec]
   and charges cycles according to a machine configuration:

   - at most [issue_width] instructions issue per (minor) cycle;
   - an instruction does not issue until all its source registers are
     ready (operation latency of the producer has elapsed) — results are
     bypassed, so a latency of 1 means a dependent instruction can issue
     in the very next cycle;
   - writes complete in order (a WAW hazard stalls issue);
   - if the instruction's class is served by declared functional units, a
     free unit must exist; issuing occupies it for the unit's issue
     latency.  Classes with no declared unit are unconstrained (ideal
     superscalar);
   - issue is strictly in order: the first stalled instruction ends the
     cycle's issue group;
   - control transfers are free (the paper assumes perfect branch
     prediction and branch-slot filling), so branches occupy an issue
     slot but never cause a control stall;
   - an optional data cache adds a blocking miss penalty (Section 5.1).

   Cycle counts are in minor cycles; [base_cycles] divides by the
   superpipelining degree to express time in base-machine cycles. *)

open Ilp_ir
open Ilp_machine

type unit_pool = { spec : Config.unit_spec; free_at : int array }

(* Pre-decoded fields of one static instruction: what [issue_decoded]
   consumes.  Decoding allocates (list maps plus [Array.of_list]), so
   the direct path memoizes it per [Instr.id] instead of paying it for
   every dynamic instruction. *)
type decoded = {
  d_cls : Iclass.t;
  d_is_load : bool;
  d_defs : int array;
  d_uses : int array;
}

module Int_table = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)

type t = {
  config : Config.t;
  reg_ready : int array;
  pools : unit_pool list;  (** in [config.units] declaration order *)
  pools_by_class : unit_pool list array;  (** indexed by class *)
  mutable now : int;  (** current minor cycle *)
  mutable issued_this_cycle : int;
  mutable instrs : int;
  mutable stall_cycles : int;
  cache : Cache.t option;
  mutable cache_stall_until : int;
  issue_histogram : int array;
      (** [issue_histogram.(k)]: cycles that issued exactly [k]
          instructions, recorded as cycles close *)
  mutable force_cycle_end : bool;
  mutable finished : bool;
  decoded : decoded Int_table.t;
      (** per-static-instruction decode memo for the direct path, keyed
          by [Instr.id]; replay pre-decodes its whole binary instead *)
}

let create ?cache ?(registers = Exec.default_options.Exec.registers)
    (config : Config.t) =
  let pools =
    List.map
      (fun spec ->
        { spec; free_at = Array.make spec.Config.multiplicity 0 })
      config.Config.units
  in
  let pools_by_class =
    Array.init Iclass.count (fun idx ->
        let c = Iclass.of_index idx in
        List.filter (fun p -> List.mem c p.spec.Config.classes) pools)
  in
  { config;
    reg_ready = Array.make registers 0;
    pools;
    pools_by_class;
    now = 0;
    issued_this_cycle = 0;
    instrs = 0;
    stall_cycles = 0;
    cache;
    cache_stall_until = 0;
    issue_histogram = Array.make (config.Config.issue_width + 1) 0;
    force_cycle_end = false;
    finished = false;
    decoded = Int_table.create 512;
  }

(* Complete mutable state of a timing model at an instruction (packet)
   boundary, as plain copied data: the hazard state that constrains
   future issue (scoreboard, functional-unit reservations, current
   cycle, the partially filled issue packet, cache tags and the blocking
   stall horizon) together with the accumulators (instruction count,
   stall cycles, issue histogram, cache counters).  A replay split into
   segments checkpoints here and continues in a fresh [t] — possibly in
   another domain — with bit-identical results; the accumulators ride
   along, so the "merge" of consecutive segments is the carry itself and
   the final segment's state is the whole run's state. *)
type snapshot = {
  snap_config : Config.t;
  snap_registers : int;
  snap_reg_ready : int array;
  snap_free_at : int array array;  (** per unit pool, declaration order *)
  snap_now : int;
  snap_issued_this_cycle : int;
  snap_instrs : int;
  snap_stall_cycles : int;
  snap_cache : Cache.state option;
  snap_cache_stall_until : int;
  snap_issue_histogram : int array;
  snap_force_cycle_end : bool;
  snap_finished : bool;
}

let snapshot t =
  { snap_config = t.config;
    snap_registers = Array.length t.reg_ready;
    snap_reg_ready = Array.copy t.reg_ready;
    snap_free_at =
      Array.of_list (List.map (fun p -> Array.copy p.free_at) t.pools);
    snap_now = t.now;
    snap_issued_this_cycle = t.issued_this_cycle;
    snap_instrs = t.instrs;
    snap_stall_cycles = t.stall_cycles;
    snap_cache = Option.map Cache.snapshot t.cache;
    snap_cache_stall_until = t.cache_stall_until;
    snap_issue_histogram = Array.copy t.issue_histogram;
    snap_force_cycle_end = t.force_cycle_end;
    snap_finished = t.finished;
  }

(* A fresh timing model continuing exactly where [snap] left off.  The
   snapshot is not consumed: resuming twice from the same snapshot gives
   two independent, identical continuations. *)
let resume snap =
  let t = create ~registers:snap.snap_registers snap.snap_config in
  Array.blit snap.snap_reg_ready 0 t.reg_ready 0
    (Array.length snap.snap_reg_ready);
  List.iteri
    (fun k p ->
      Array.blit snap.snap_free_at.(k) 0 p.free_at 0 (Array.length p.free_at))
    t.pools;
  Array.blit snap.snap_issue_histogram 0 t.issue_histogram 0
    (Array.length snap.snap_issue_histogram);
  let t =
    { t with
      cache = Option.map Cache.of_state snap.snap_cache;
      now = snap.snap_now;
      issued_this_cycle = snap.snap_issued_this_cycle;
      instrs = snap.snap_instrs;
      stall_cycles = snap.snap_stall_cycles;
      cache_stall_until = snap.snap_cache_stall_until;
      force_cycle_end = snap.snap_force_cycle_end;
      finished = snap.snap_finished;
    }
  in
  t

let next_cycle t =
  t.issue_histogram.(min t.issued_this_cycle
                       (Array.length t.issue_histogram - 1)) <-
    t.issue_histogram.(min t.issued_this_cycle
                         (Array.length t.issue_histogram - 1))
    + 1;
  t.now <- t.now + 1;
  t.issued_this_cycle <- 0;
  t.force_cycle_end <- false

(* Find a functional unit able to issue at [t.now]; [None] when the class
   is unconstrained, [Some None] when all units are busy. *)
let find_unit t cls =
  match t.pools_by_class.(Iclass.to_index cls) with
  | [] -> `Unconstrained
  | pools ->
      let rec search = function
        | [] -> `Busy
        | p :: rest ->
            let rec scan i =
              if i >= Array.length p.free_at then search rest
              else if p.free_at.(i) <= t.now then `Free (p, i)
              else scan (i + 1)
            in
            scan 0
      in
      search pools

(* registers ready at or before [t.now]?  [regs] holds register
   indices; plain loops, no allocation — this is the replay hot path. *)
let regs_ready t (regs : int array) bound =
  let ok = ref true in
  for k = 0 to Array.length regs - 1 do
    if t.reg_ready.(regs.(k)) > bound then ok := false
  done;
  !ok

(* Account one dynamic instruction given its pre-decoded fields: class,
   load-ness, def/use register indices, and the effective address of a
   memory operation or -1.  [issue] decodes an [Instr.t] down to exactly
   this, so direct observation and trace replay share one code path and
   produce identical timing. *)
let issue_decoded t ~cls ~is_load ~(defs : int array) ~(uses : int array)
    addr =
  let latency = ref (Config.latency t.config cls) in
  (* a cache miss on a load lengthens its latency; on a store it only
     blocks the pipeline (write-allocate, blocking cache) *)
  (match t.cache with
  | Some cache when addr >= 0 ->
      if not (Cache.access cache addr) then begin
        if is_load then latency := !latency + Cache.miss_penalty cache
        else
          t.cache_stall_until <-
            max t.cache_stall_until (t.now + Cache.miss_penalty cache)
      end
  | Some _ | None -> ());
  let rec try_issue () =
    if t.now < t.cache_stall_until then begin
      (* blocking-cache stall: charge the skipped cycles as stalls and
         close each of them normally, so the interrupted cycle and every
         stalled cycle still land in the issue histogram *)
      t.stall_cycles <- t.stall_cycles + (t.cache_stall_until - t.now);
      while t.now < t.cache_stall_until do
        next_cycle t
      done
    end;
    if
      t.issued_this_cycle >= t.config.Config.issue_width
      || t.force_cycle_end
    then begin
      next_cycle t;
      try_issue ()
    end
    else if
      not (regs_ready t uses t.now && regs_ready t defs (t.now + !latency))
    then begin
      t.stall_cycles <- t.stall_cycles + 1;
      next_cycle t;
      try_issue ()
    end
    else
      match find_unit t cls with
      | `Busy ->
          t.stall_cycles <- t.stall_cycles + 1;
          next_cycle t;
          try_issue ()
      | `Unconstrained ->
          Array.iter (fun d -> t.reg_ready.(d) <- t.now + !latency) defs;
          t.issued_this_cycle <- t.issued_this_cycle + 1;
          t.instrs <- t.instrs + 1;
          if t.config.Config.branch_ends_packet && Iclass.is_control cls then
            t.force_cycle_end <- true
      | `Free (pool, idx) ->
          pool.free_at.(idx) <- t.now + pool.spec.Config.issue_latency;
          Array.iter (fun d -> t.reg_ready.(d) <- t.now + !latency) defs;
          t.issued_this_cycle <- t.issued_this_cycle + 1;
          t.instrs <- t.instrs + 1;
          if t.config.Config.branch_ends_packet && Iclass.is_control cls then
            t.force_cycle_end <- true
  in
  try_issue ()

let reg_indices regs = Array.of_list (List.map Reg.index regs)

let decode (i : Instr.t) =
  { d_cls = Instr.iclass i;
    d_is_load = Instr.is_load i;
    d_defs = reg_indices (Instr.defs i);
    d_uses = reg_indices (Instr.uses i);
  }

(* Account one dynamic instruction; [addr] is the effective address of a
   memory operation or -1.  The decode is memoized per static
   instruction, so a hot loop pays it once, not once per iteration. *)
let issue t (i : Instr.t) addr =
  let d =
    match Int_table.find_opt t.decoded i.Instr.id with
    | Some d -> d
    | None ->
        let d = decode i in
        Int_table.add t.decoded i.Instr.id d;
        d
  in
  issue_decoded t ~cls:d.d_cls ~is_load:d.d_is_load ~defs:d.d_defs
    ~uses:d.d_uses addr

let observer t : Exec.observer = fun i addr -> issue t i addr

(* Total time: the cycle of the last issue plus the drain of the deepest
   outstanding result.  Once [finish] has closed the books, [t.now]
   already includes the drain. *)
let minor_cycles t =
  if t.finished then t.now
  else
    let drain = Array.fold_left max 0 t.reg_ready in
    max (t.now + 1) drain

(* Close the open issue cycle and charge the drain cycles, so the issue
   histogram accounts for every minor cycle of the run:
   [sum issue_histogram = minor_cycles].  Idempotent; no further issues
   are expected afterwards. *)
let finish t =
  if not t.finished then begin
    let total = minor_cycles t in
    next_cycle t;
    while t.now < total do
      next_cycle t
    done;
    t.finished <- true
  end

let base_cycles t =
  float_of_int (minor_cycles t) /. float_of_int t.config.Config.pipe_degree

let instrs t = t.instrs

(* Speedup over the base machine, which executes one instruction per base
   cycle with no stalls. *)
let speedup t =
  if t.instrs = 0 then 1.0 else float_of_int t.instrs /. base_cycles t
