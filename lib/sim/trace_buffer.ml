(* Capture-once/replay-many dynamic traces.

   A sweep like Figure 4-1 measures the same workload on many machine
   configurations.  The dynamic instruction stream is almost entirely
   shared between those measurements: compilation depends on the
   configuration only through the register split (regalloc) and the
   final per-block scheduling pass, and the scheduler permutes
   instructions *within* basic blocks only, never across calls or past
   the terminator (see Ddg).  So the branch decisions, the per-static-
   instruction effective-address sequences, and each instruction's
   dynamic execution count are invariant across every schedule of one
   pre-scheduled program.

   [capture] runs the functional interpreter once over a pre-scheduled
   program and records, per static instruction (keyed by [Instr.id]):

   - for loads and stores, the sequence of effective addresses, packed
     into growable int arrays;
   - for conditional branches, the sequence of taken bits, packed 62
     per word;

   plus the run summary (dynamic count, checksum, class mix).  Unlike
   [Trace.capture]'s list of records, this representation holds 10^7+
   entries in a few megabytes.

   [replay] then drives a [Timing.t] from the buffer over *any* sibling
   schedule of the captured program — the binary is walked as flattened
   threaded code, each instruction pre-decoded for [Timing.issue_decoded],
   with control transfers resolved from the recorded taken bits instead
   of re-interpreting the program.  Any mismatch between the buffer and
   the binary raises [Divergence] rather than producing wrong timings. *)

open Ilp_ir

exception Divergence of string

let divergence fmt = Printf.ksprintf (fun s -> raise (Divergence s)) fmt

(* growable packed int vector *)
module Ivec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 8 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1
end

(* growable bit vector: 62 taken-bits per word *)
module Bitvec = struct
  type t = { mutable data : int array; mutable len : int }

  let bits_per_word = 62

  let create () = { data = Array.make 4 0; len = 0 }

  let push v b =
    let w = v.len / bits_per_word and k = v.len mod bits_per_word in
    if w = Array.length v.data then begin
      let d = Array.make (2 * w) 0 in
      Array.blit v.data 0 d 0 w;
      v.data <- d
    end;
    if b then v.data.(w) <- v.data.(w) lor (1 lsl k);
    v.len <- v.len + 1

  let get v i =
    (v.data.(i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1
end

type t = {
  dyn_instrs : int;
  sink : Value.t;
  class_counts : int array;
  addrs : (int, Ivec.t) Hashtbl.t;
      (** [Instr.id] -> effective addresses, in execution order *)
  branches : (int, Bitvec.t) Hashtbl.t;
      (** [Instr.id] -> taken bits, in execution order *)
}

let dyn_instrs t = t.dyn_instrs
let sink t = t.sink
let class_counts t = t.class_counts

(* Approximate buffer size: one word per stored address, 1/62 word per
   branch outcome, plus per-stream bookkeeping. *)
let footprint_words t =
  let stream _ (v : Ivec.t) acc = acc + Array.length v.data + 2 in
  let bits _ (v : Bitvec.t) acc = acc + Array.length v.data + 2 in
  Hashtbl.fold stream t.addrs 0 + Hashtbl.fold bits t.branches 0

(* used words of a bit vector: 62 bits per word, rounded up *)
let bitvec_words len = (len + Bitvec.bits_per_word - 1) / Bitvec.bits_per_word

type stats = {
  mem_streams : int;
  branch_streams : int;
  addr_entries : int;
  taken_bits : int;
  dyn : int;
  packed_bytes : int;
}

(* Exact cost of the capture: stream counts, recorded entries, and the
   bytes the packed payload occupies (8 bytes per address, 8 bytes per
   62 taken bits — capacity slack in the growable vectors excluded). *)
let stats t =
  let addr_entries =
    Hashtbl.fold (fun _ (v : Ivec.t) acc -> acc + v.Ivec.len) t.addrs 0
  in
  let taken_bits =
    Hashtbl.fold (fun _ (v : Bitvec.t) acc -> acc + v.Bitvec.len) t.branches 0
  in
  let bit_words =
    Hashtbl.fold
      (fun _ (v : Bitvec.t) acc -> acc + bitvec_words v.Bitvec.len)
      t.branches 0
  in
  { mem_streams = Hashtbl.length t.addrs;
    branch_streams = Hashtbl.length t.branches;
    addr_entries;
    taken_bits;
    dyn = t.dyn_instrs;
    packed_bytes = 8 * (addr_entries + bit_words);
  }

let byte_size t = (stats t).packed_bytes

(* Logical equality: same run summary and, per traced instruction, the
   same recorded streams.  Capacity slack in the growable vectors is
   ignored, so a capture and its packed/unpacked image compare equal. *)
let equal a b =
  let ivec_eq (x : Ivec.t) (y : Ivec.t) =
    x.Ivec.len = y.Ivec.len
    &&
    let rec go i = i >= x.Ivec.len || (x.Ivec.data.(i) = y.Ivec.data.(i) && go (i + 1)) in
    go 0
  in
  let bitvec_eq (x : Bitvec.t) (y : Bitvec.t) =
    x.Bitvec.len = y.Bitvec.len
    &&
    let rec go i =
      i >= x.Bitvec.len || (Bitvec.get x i = Bitvec.get y i && go (i + 1))
    in
    go 0
  in
  let table_eq eq ta tb =
    Hashtbl.length ta = Hashtbl.length tb
    && Hashtbl.fold
         (fun id va acc ->
           acc
           && match Hashtbl.find_opt tb id with
              | Some vb -> eq va vb
              | None -> false)
         ta true
  in
  a.dyn_instrs = b.dyn_instrs
  && Value.equal a.sink b.sink
  && a.class_counts = b.class_counts
  && table_eq ivec_eq a.addrs b.addrs
  && table_eq bitvec_eq a.branches b.branches

(* ---- packing: a position-keyed external representation ------------- *)

(* The in-memory buffer keys its streams by [Instr.id] — a process-local
   atomic counter, worthless outside this run.  The packed form re-keys
   every stream by the instruction's flat static position (functions in
   program order, blocks in layout order, instructions in block order),
   which is a pure function of the compiled program.  Compilation is
   deterministic, so a packed trace written by one process re-attaches
   exactly in another, provided both hold the same program — the trace
   store guards that with a canonical program fingerprint. *)

(* flat enumeration shared by [pack] and [unpack]; must visit
   instructions in the same order as [prepare]'s numbering *)
let iter_flat (p : Program.t) f =
  let pos = ref 0 in
  List.iter
    (fun (fn : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          List.iter
            (fun (i : Instr.t) ->
              f !pos i;
              incr pos)
            b.Block.instrs)
        fn.Func.blocks)
    p.Program.functions

type packed = {
  p_dyn_instrs : int;
  p_sink : Value.t;
  p_class_counts : int array;
  p_addrs : (int * int array) array;
  p_branches : (int * int * int array) array;
}

let pack t (p : Program.t) =
  let pos_of_id = Hashtbl.create 1024 in
  let n = ref 0 in
  iter_flat p (fun pos (i : Instr.t) ->
      Hashtbl.replace pos_of_id i.Instr.id pos;
      n := pos + 1);
  let position id =
    match Hashtbl.find_opt pos_of_id id with
    | Some pos -> pos
    | None ->
        divergence
          "pack: traced instruction %d is not in the packed program" id
  in
  let addrs =
    Hashtbl.fold
      (fun id (v : Ivec.t) acc ->
        (position id, Array.sub v.Ivec.data 0 v.Ivec.len) :: acc)
      t.addrs []
  in
  let branches =
    Hashtbl.fold
      (fun id (v : Bitvec.t) acc ->
        ( position id,
          v.Bitvec.len,
          Array.sub v.Bitvec.data 0 (bitvec_words v.Bitvec.len) )
        :: acc)
      t.branches []
  in
  let by_pos x y = compare (fst x) (fst y) in
  let by_pos3 (x, _, _) (y, _, _) = compare x y in
  { p_dyn_instrs = t.dyn_instrs;
    p_sink = t.sink;
    p_class_counts = Array.copy t.class_counts;
    p_addrs = Array.of_list (List.sort by_pos addrs);
    p_branches = Array.of_list (List.sort by_pos3 branches);
  }

let unpack pk (p : Program.t) =
  let n = ref 0 in
  let ids = ref [||] in
  (* first pass sizes the table, second fills it *)
  iter_flat p (fun pos _ -> n := pos + 1);
  ids := Array.make (max 1 !n) (-1);
  iter_flat p (fun pos (i : Instr.t) -> !ids.(pos) <- i.Instr.id);
  let id_at what pos =
    if pos < 0 || pos >= !n then
      divergence
        "unpack: %s stream at static position %d, but the program has \
         only %d instructions"
        what pos !n
    else !ids.(pos)
  in
  let addrs = Hashtbl.create (Array.length pk.p_addrs) in
  Array.iter
    (fun (pos, data) ->
      let id = id_at "address" pos in
      if Hashtbl.mem addrs id then
        divergence "unpack: duplicate address stream at position %d" pos;
      Hashtbl.add addrs id
        { Ivec.data = Array.copy data; len = Array.length data })
    pk.p_addrs;
  let branches = Hashtbl.create (Array.length pk.p_branches) in
  Array.iter
    (fun (pos, len, words) ->
      let id = id_at "branch" pos in
      if Hashtbl.mem branches id then
        divergence "unpack: duplicate branch stream at position %d" pos;
      if Array.length words <> bitvec_words len then
        divergence
          "unpack: branch stream at position %d has %d words for %d bits"
          pos (Array.length words) len;
      Hashtbl.add branches id
        { Bitvec.data = Array.copy words; len })
    pk.p_branches;
  { dyn_instrs = pk.p_dyn_instrs;
    sink = pk.p_sink;
    class_counts = Array.copy pk.p_class_counts;
    addrs;
    branches;
  }

let capture ?options ?(observers = []) (p : Program.t) =
  let addrs = Hashtbl.create 1024 in
  let branches = Hashtbl.create 256 in
  let record (i : Instr.t) addr =
    if addr >= 0 then
      let v =
        match Hashtbl.find_opt addrs i.Instr.id with
        | Some v -> v
        | None ->
            let v = Ivec.create () in
            Hashtbl.add addrs i.Instr.id v;
            v
      in
      Ivec.push v addr
  in
  let on_branch (i : Instr.t) taken =
    let v =
      match Hashtbl.find_opt branches i.Instr.id with
      | Some v -> v
      | None ->
          let v = Bitvec.create () in
          Hashtbl.add branches i.Instr.id v;
          v
    in
    Bitvec.push v taken
  in
  let outcome =
    Exec.run ?options ~observers:(record :: observers) ~on_branch p
  in
  { dyn_instrs = outcome.Exec.dyn_instrs;
    sink = outcome.Exec.sink;
    class_counts = Array.copy outcome.Exec.class_counts;
    addrs;
    branches;
  }

(* instruction kinds in the flattened binary *)
let k_fall = 0

let k_branch = 1

let k_jump = 2

let k_call = 3

let k_ret = 4

let k_halt = 5

(* A trace bound to one concrete binary: every static instruction
   pre-decoded for [Timing.issue_decoded], the control structure
   flattened to threaded code, and the recorded address/taken-bit
   streams attached to their instructions.  Building this is the per-
   (trace, binary) cost; walking it is the per-dynamic-instruction
   cost, and the walk can be cut into segments at any instruction
   boundary (see [cursor]). *)
type prepared = {
  pr_trace : t;
  pr_n : int;  (* static instructions in the flattened binary *)
  pr_entry : int;
  pr_cls : Iclass.t array;
  pr_is_load : bool array;
  pr_defs : int array array;
  pr_uses : int array array;
  pr_kind : int array;
  pr_next : int array;
  pr_target : int array;
  pr_addr_stream : Ivec.t option array;
  pr_bit_stream : Bitvec.t option array;
}

let prepare t (p : Program.t) =
  let functions = Array.of_list p.Program.functions in
  let code =
    Array.map
      (fun (f : Func.t) ->
        Array.of_list
          (List.map (fun b -> Array.of_list b.Block.instrs) f.Func.blocks))
      functions
  in
  (* flat numbering of every instruction *)
  let base = Array.map (fun blocks -> Array.make (Array.length blocks) 0) code in
  let n = ref 0 in
  Array.iteri
    (fun fn blocks ->
      Array.iteri
        (fun blk instrs ->
          base.(fn).(blk) <- !n;
          n := !n + Array.length instrs)
        blocks)
    code;
  let n = !n in
  (* normalized start of block [blk]: Exec falls through empty blocks;
     -1 when that runs off the end of the function *)
  let rec norm fn blk =
    if blk >= Array.length code.(fn) then -1
    else if Array.length code.(fn).(blk) > 0 then base.(fn).(blk)
    else norm fn (blk + 1)
  in
  (* label resolution, mirroring Exec.resolve: blocks first, then every
     function name aliased to its entry block *)
  let label_pos : (string, int * int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun fn (f : Func.t) ->
      List.iteri
        (fun blk (b : Block.t) ->
          Hashtbl.replace label_pos (Label.to_string b.Block.label) (fn, blk))
        f.Func.blocks)
    functions;
  Array.iteri
    (fun fn (f : Func.t) ->
      if f.Func.blocks <> [] then begin
        (match Hashtbl.find_opt label_pos f.Func.name with
        | Some (fn', blk') when fn' <> fn || blk' <> 0 ->
            divergence "function name %s collides with a basic-block label"
              f.Func.name
        | Some _ | None -> ());
        Hashtbl.replace label_pos f.Func.name (fn, 0)
      end)
    functions;
  let entry =
    match Hashtbl.find_opt label_pos "main" with
    | Some (fn, blk) -> norm fn blk
    | None -> divergence "program has no main function"
  in
  (* pre-decode every static instruction *)
  let cls = Array.make n Iclass.Move in
  let is_load = Array.make n false in
  let defs = Array.make n [||] in
  let uses = Array.make n [||] in
  let kind = Array.make n k_fall in
  let next = Array.make n (-1) in
  let target = Array.make n (-1) in
  let addr_stream = Array.make n None in
  let bit_stream = Array.make n None in
  let matched_addrs = ref 0 and matched_bits = ref 0 in
  let reg_indices regs = Array.of_list (List.map Reg.index regs) in
  (* a target that does not resolve stays -1; that is only an error if
     control actually reaches it (Exec faults lazily the same way) *)
  let resolve_target (i : Instr.t) =
    match i.Instr.target with
    | None -> -1
    | Some l -> (
        match Hashtbl.find_opt label_pos (Label.to_string l) with
        | Some (fn, blk) -> norm fn blk
        | None -> -1)
  in
  Array.iteri
    (fun fn blocks ->
      Array.iteri
        (fun blk instrs ->
          Array.iteri
            (fun ins (i : Instr.t) ->
              let k = base.(fn).(blk) + ins in
              cls.(k) <- Instr.iclass i;
              is_load.(k) <- Instr.is_load i;
              defs.(k) <- reg_indices (Instr.defs i);
              uses.(k) <- reg_indices (Instr.uses i);
              next.(k) <-
                (if ins + 1 < Array.length instrs then k + 1
                 else norm fn (blk + 1));
              (match Hashtbl.find_opt t.addrs i.Instr.id with
              | Some v ->
                  addr_stream.(k) <- Some v;
                  incr matched_addrs
              | None -> ());
              (match Hashtbl.find_opt t.branches i.Instr.id with
              | Some v ->
                  bit_stream.(k) <- Some v;
                  incr matched_bits
              | None -> ());
              match i.Instr.op with
              | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Ble
              | Opcode.Bgt | Opcode.Bge ->
                  kind.(k) <- k_branch;
                  target.(k) <- resolve_target i
              | Opcode.Jmp ->
                  kind.(k) <- k_jump;
                  target.(k) <- resolve_target i
              | Opcode.Call ->
                  kind.(k) <- k_call;
                  target.(k) <- resolve_target i
              | Opcode.Ret -> kind.(k) <- k_ret
              | Opcode.Halt -> kind.(k) <- k_halt
              | _ -> kind.(k) <- k_fall)
            instrs)
        blocks)
    code;
  if !matched_addrs <> Hashtbl.length t.addrs then
    divergence
      "the replayed binary does not contain every traced memory \
       instruction (%d of %d streams bound)"
      !matched_addrs (Hashtbl.length t.addrs);
  if !matched_bits <> Hashtbl.length t.branches then
    divergence
      "the replayed binary does not contain every traced branch (%d of %d \
       streams bound)"
      !matched_bits
      (Hashtbl.length t.branches);
  { pr_trace = t;
    pr_n = n;
    pr_entry = entry;
    pr_cls = cls;
    pr_is_load = is_load;
    pr_defs = defs;
    pr_uses = uses;
    pr_kind = kind;
    pr_next = next;
    pr_target = target;
    pr_addr_stream = addr_stream;
    pr_bit_stream = bit_stream;
  }

(* Walk state over a prepared binary: instruction pointer, call stack,
   per-stream consumption cursors, and the count of dynamic instructions
   replayed so far.  Mutable and single-owner: exactly one domain
   advances a cursor at a time (a work-stealing pool hands it between
   domains with the necessary happens-before ordering). *)
type cursor = {
  mutable cu_ip : int;
  mutable cu_stack : int list;
  mutable cu_steps : int;
  mutable cu_running : bool;
  cu_acur : int array;
  cu_bcur : int array;
}

let cursor_done cu = not cu.cu_running
let steps cu = cu.cu_steps

(* Once the walk has halted, every recorded stream must have been
   consumed exactly. *)
let validate_end pr cu =
  if cu.cu_steps <> pr.pr_trace.dyn_instrs then
    divergence "replayed %d instructions of a %d-instruction trace"
      cu.cu_steps pr.pr_trace.dyn_instrs;
  for k = 0 to pr.pr_n - 1 do
    (match pr.pr_addr_stream.(k) with
    | Some v when cu.cu_acur.(k) <> v.Ivec.len ->
        divergence "address stream consumed partially (%d of %d)"
          cu.cu_acur.(k) v.Ivec.len
    | _ -> ());
    match pr.pr_bit_stream.(k) with
    | Some v when cu.cu_bcur.(k) <> v.Bitvec.len ->
        divergence "branch history consumed partially (%d of %d)"
          cu.cu_bcur.(k) v.Bitvec.len
    | _ -> ()
  done

(* A cursor at the entry point with nothing consumed.  An empty trace
   (or empty binary) starts already halted; the end checks run here so
   [cursor_done] always implies they have passed. *)
let start pr =
  let cu =
    { cu_ip = pr.pr_entry;
      cu_stack = [];
      cu_steps = 0;
      cu_running = pr.pr_n > 0 && pr.pr_trace.dyn_instrs > 0;
      cu_acur = Array.make (max 1 pr.pr_n) 0;
      cu_bcur = Array.make (max 1 pr.pr_n) 0;
    }
  in
  if not cu.cu_running then validate_end pr cu;
  cu

(* Replay at most [max_steps] dynamic instructions into [timing],
   advancing the cursor; a segment boundary falls between instruction
   packets, and the timing snapshot carries the partially filled packet,
   so cuts are exact wherever they land.  When the walk halts inside
   this segment the end-of-trace checks run immediately, so a
   divergence is never deferred to a later segment. *)
let replay_steps pr cu (timing : Timing.t) ~max_steps =
  let t = pr.pr_trace in
  let budget = ref max_steps in
  while cu.cu_running && !budget > 0 do
    let k = cu.cu_ip in
    if k < 0 then divergence "replay fell off the end of a function";
    cu.cu_steps <- cu.cu_steps + 1;
    decr budget;
    if cu.cu_steps > t.dyn_instrs then
      divergence "replay exceeds the captured trace (%d instructions)"
        t.dyn_instrs;
    let addr =
      match pr.pr_addr_stream.(k) with
      | None -> -1
      | Some v ->
          let c = cu.cu_acur.(k) in
          if c >= v.Ivec.len then
            divergence "address stream exhausted after %d accesses" c;
          cu.cu_acur.(k) <- c + 1;
          v.Ivec.data.(c)
    in
    Timing.issue_decoded timing ~cls:pr.pr_cls.(k)
      ~is_load:pr.pr_is_load.(k) ~defs:pr.pr_defs.(k) ~uses:pr.pr_uses.(k)
      addr;
    (match pr.pr_kind.(k) with
    | 0 (* fall *) -> cu.cu_ip <- pr.pr_next.(k)
    | 1 (* branch *) -> (
        match pr.pr_bit_stream.(k) with
        | None -> divergence "conditional branch has no recorded outcomes"
        | Some v ->
            let c = cu.cu_bcur.(k) in
            if c >= v.Bitvec.len then
              divergence "branch history exhausted after %d outcomes" c;
            cu.cu_bcur.(k) <- c + 1;
            cu.cu_ip <-
              (if Bitvec.get v c then pr.pr_target.(k) else pr.pr_next.(k)))
    | 2 (* jump *) -> cu.cu_ip <- pr.pr_target.(k)
    | 3 (* call *) ->
        cu.cu_stack <- pr.pr_next.(k) :: cu.cu_stack;
        cu.cu_ip <- pr.pr_target.(k)
    | 4 (* ret *) -> (
        match cu.cu_stack with
        | ra :: rest ->
            cu.cu_stack <- rest;
            cu.cu_ip <- ra
        | [] -> cu.cu_running <- false)
    | _ (* halt *) -> cu.cu_running <- false);
    if not cu.cu_running then validate_end pr cu
  done

let replay t (p : Program.t) (timing : Timing.t) =
  let pr = prepare t p in
  let cu = start pr in
  (* one step beyond the trace length, so a walk that fails to halt on
     time raises the overrun divergence rather than stopping silently *)
  replay_steps pr cu timing ~max_steps:(t.dyn_instrs + 1)
