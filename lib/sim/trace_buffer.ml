(* Capture-once/replay-many dynamic traces.

   A sweep like Figure 4-1 measures the same workload on many machine
   configurations.  The dynamic instruction stream is almost entirely
   shared between those measurements: compilation depends on the
   configuration only through the register split (regalloc) and the
   final per-block scheduling pass, and the scheduler permutes
   instructions *within* basic blocks only, never across calls or past
   the terminator (see Ddg).  So the branch decisions, the per-static-
   instruction effective-address sequences, and each instruction's
   dynamic execution count are invariant across every schedule of one
   pre-scheduled program.

   [capture] runs the functional interpreter once over a pre-scheduled
   program and records, per static instruction (keyed by [Instr.id]):

   - for loads and stores, the sequence of effective addresses, packed
     into growable int arrays;
   - for conditional branches, the sequence of taken bits, packed 62
     per word;

   plus the run summary (dynamic count, checksum, class mix).  Unlike
   [Trace.capture]'s list of records, this representation holds 10^7+
   entries in a few megabytes.

   [replay] then drives a [Timing.t] from the buffer over *any* sibling
   schedule of the captured program — the binary is walked as flattened
   threaded code, each instruction pre-decoded for [Timing.issue_decoded],
   with control transfers resolved from the recorded taken bits instead
   of re-interpreting the program.  Any mismatch between the buffer and
   the binary raises [Divergence] rather than producing wrong timings. *)

open Ilp_ir

exception Divergence of string

let divergence fmt = Printf.ksprintf (fun s -> raise (Divergence s)) fmt

(* growable packed int vector *)
module Ivec = struct
  type t = { mutable data : int array; mutable len : int }

  let create () = { data = Array.make 8 0; len = 0 }

  let push v x =
    if v.len = Array.length v.data then begin
      let d = Array.make (2 * v.len) 0 in
      Array.blit v.data 0 d 0 v.len;
      v.data <- d
    end;
    v.data.(v.len) <- x;
    v.len <- v.len + 1
end

(* growable bit vector: 62 taken-bits per word *)
module Bitvec = struct
  type t = { mutable data : int array; mutable len : int }

  let bits_per_word = 62

  let create () = { data = Array.make 4 0; len = 0 }

  let push v b =
    let w = v.len / bits_per_word and k = v.len mod bits_per_word in
    if w = Array.length v.data then begin
      let d = Array.make (2 * w) 0 in
      Array.blit v.data 0 d 0 w;
      v.data <- d
    end;
    if b then v.data.(w) <- v.data.(w) lor (1 lsl k);
    v.len <- v.len + 1

  let get v i =
    (v.data.(i / bits_per_word) lsr (i mod bits_per_word)) land 1 = 1
end

type t = {
  dyn_instrs : int;
  sink : Value.t;
  class_counts : int array;
  addrs : (int, Ivec.t) Hashtbl.t;
      (** [Instr.id] -> effective addresses, in execution order *)
  branches : (int, Bitvec.t) Hashtbl.t;
      (** [Instr.id] -> taken bits, in execution order *)
}

let dyn_instrs t = t.dyn_instrs
let sink t = t.sink
let class_counts t = t.class_counts

(* Approximate buffer size: one word per stored address, 1/62 word per
   branch outcome, plus per-stream bookkeeping. *)
let footprint_words t =
  let stream _ (v : Ivec.t) acc = acc + Array.length v.data + 2 in
  let bits _ (v : Bitvec.t) acc = acc + Array.length v.data + 2 in
  Hashtbl.fold stream t.addrs 0 + Hashtbl.fold bits t.branches 0

let capture ?options ?(observers = []) (p : Program.t) =
  let addrs = Hashtbl.create 1024 in
  let branches = Hashtbl.create 256 in
  let record (i : Instr.t) addr =
    if addr >= 0 then
      let v =
        match Hashtbl.find_opt addrs i.Instr.id with
        | Some v -> v
        | None ->
            let v = Ivec.create () in
            Hashtbl.add addrs i.Instr.id v;
            v
      in
      Ivec.push v addr
  in
  let on_branch (i : Instr.t) taken =
    let v =
      match Hashtbl.find_opt branches i.Instr.id with
      | Some v -> v
      | None ->
          let v = Bitvec.create () in
          Hashtbl.add branches i.Instr.id v;
          v
    in
    Bitvec.push v taken
  in
  let outcome =
    Exec.run ?options ~observers:(record :: observers) ~on_branch p
  in
  { dyn_instrs = outcome.Exec.dyn_instrs;
    sink = outcome.Exec.sink;
    class_counts = Array.copy outcome.Exec.class_counts;
    addrs;
    branches;
  }

(* instruction kinds in the flattened binary *)
let k_fall = 0

let k_branch = 1

let k_jump = 2

let k_call = 3

let k_ret = 4

let k_halt = 5

let replay t (p : Program.t) (timing : Timing.t) =
  let functions = Array.of_list p.Program.functions in
  let code =
    Array.map
      (fun (f : Func.t) ->
        Array.of_list
          (List.map (fun b -> Array.of_list b.Block.instrs) f.Func.blocks))
      functions
  in
  (* flat numbering of every instruction *)
  let base = Array.map (fun blocks -> Array.make (Array.length blocks) 0) code in
  let n = ref 0 in
  Array.iteri
    (fun fn blocks ->
      Array.iteri
        (fun blk instrs ->
          base.(fn).(blk) <- !n;
          n := !n + Array.length instrs)
        blocks)
    code;
  let n = !n in
  (* normalized start of block [blk]: Exec falls through empty blocks;
     -1 when that runs off the end of the function *)
  let rec norm fn blk =
    if blk >= Array.length code.(fn) then -1
    else if Array.length code.(fn).(blk) > 0 then base.(fn).(blk)
    else norm fn (blk + 1)
  in
  (* label resolution, mirroring Exec.resolve: blocks first, then every
     function name aliased to its entry block *)
  let label_pos : (string, int * int) Hashtbl.t = Hashtbl.create 256 in
  Array.iteri
    (fun fn (f : Func.t) ->
      List.iteri
        (fun blk (b : Block.t) ->
          Hashtbl.replace label_pos (Label.to_string b.Block.label) (fn, blk))
        f.Func.blocks)
    functions;
  Array.iteri
    (fun fn (f : Func.t) ->
      if f.Func.blocks <> [] then begin
        (match Hashtbl.find_opt label_pos f.Func.name with
        | Some (fn', blk') when fn' <> fn || blk' <> 0 ->
            divergence "function name %s collides with a basic-block label"
              f.Func.name
        | Some _ | None -> ());
        Hashtbl.replace label_pos f.Func.name (fn, 0)
      end)
    functions;
  let entry =
    match Hashtbl.find_opt label_pos "main" with
    | Some (fn, blk) -> norm fn blk
    | None -> divergence "program has no main function"
  in
  (* pre-decode every static instruction *)
  let cls = Array.make n Iclass.Move in
  let is_load = Array.make n false in
  let defs = Array.make n [||] in
  let uses = Array.make n [||] in
  let kind = Array.make n k_fall in
  let next = Array.make n (-1) in
  let target = Array.make n (-1) in
  let addr_stream = Array.make n None in
  let bit_stream = Array.make n None in
  let matched_addrs = ref 0 and matched_bits = ref 0 in
  let reg_indices regs = Array.of_list (List.map Reg.index regs) in
  (* a target that does not resolve stays -1; that is only an error if
     control actually reaches it (Exec faults lazily the same way) *)
  let resolve_target (i : Instr.t) =
    match i.Instr.target with
    | None -> -1
    | Some l -> (
        match Hashtbl.find_opt label_pos (Label.to_string l) with
        | Some (fn, blk) -> norm fn blk
        | None -> -1)
  in
  Array.iteri
    (fun fn blocks ->
      Array.iteri
        (fun blk instrs ->
          Array.iteri
            (fun ins (i : Instr.t) ->
              let k = base.(fn).(blk) + ins in
              cls.(k) <- Instr.iclass i;
              is_load.(k) <- Instr.is_load i;
              defs.(k) <- reg_indices (Instr.defs i);
              uses.(k) <- reg_indices (Instr.uses i);
              next.(k) <-
                (if ins + 1 < Array.length instrs then k + 1
                 else norm fn (blk + 1));
              (match Hashtbl.find_opt t.addrs i.Instr.id with
              | Some v ->
                  addr_stream.(k) <- Some v;
                  incr matched_addrs
              | None -> ());
              (match Hashtbl.find_opt t.branches i.Instr.id with
              | Some v ->
                  bit_stream.(k) <- Some v;
                  incr matched_bits
              | None -> ());
              match i.Instr.op with
              | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Ble
              | Opcode.Bgt | Opcode.Bge ->
                  kind.(k) <- k_branch;
                  target.(k) <- resolve_target i
              | Opcode.Jmp ->
                  kind.(k) <- k_jump;
                  target.(k) <- resolve_target i
              | Opcode.Call ->
                  kind.(k) <- k_call;
                  target.(k) <- resolve_target i
              | Opcode.Ret -> kind.(k) <- k_ret
              | Opcode.Halt -> kind.(k) <- k_halt
              | _ -> kind.(k) <- k_fall)
            instrs)
        blocks)
    code;
  if !matched_addrs <> Hashtbl.length t.addrs then
    divergence
      "the replayed binary does not contain every traced memory \
       instruction (%d of %d streams bound)"
      !matched_addrs (Hashtbl.length t.addrs);
  if !matched_bits <> Hashtbl.length t.branches then
    divergence
      "the replayed binary does not contain every traced branch (%d of %d \
       streams bound)"
      !matched_bits
      (Hashtbl.length t.branches);
  (* walk the threaded code, consuming the recorded streams *)
  let acur = Array.make n 0 in
  let bcur = Array.make n 0 in
  let stack = ref [] in
  let ip = ref entry in
  let steps = ref 0 in
  let running = ref (n > 0 && t.dyn_instrs > 0) in
  while !running do
    let k = !ip in
    if k < 0 then divergence "replay fell off the end of a function";
    incr steps;
    if !steps > t.dyn_instrs then
      divergence "replay exceeds the captured trace (%d instructions)"
        t.dyn_instrs;
    let addr =
      match addr_stream.(k) with
      | None -> -1
      | Some v ->
          let c = acur.(k) in
          if c >= v.Ivec.len then
            divergence "address stream exhausted after %d accesses" c;
          acur.(k) <- c + 1;
          v.Ivec.data.(c)
    in
    Timing.issue_decoded timing ~cls:cls.(k) ~is_load:is_load.(k)
      ~defs:defs.(k) ~uses:uses.(k) addr;
    match kind.(k) with
    | 0 (* fall *) -> ip := next.(k)
    | 1 (* branch *) -> (
        match bit_stream.(k) with
        | None -> divergence "conditional branch has no recorded outcomes"
        | Some v ->
            let c = bcur.(k) in
            if c >= v.Bitvec.len then
              divergence "branch history exhausted after %d outcomes" c;
            bcur.(k) <- c + 1;
            ip := (if Bitvec.get v c then target.(k) else next.(k)))
    | 2 (* jump *) -> ip := target.(k)
    | 3 (* call *) ->
        stack := next.(k) :: !stack;
        ip := target.(k)
    | 4 (* ret *) -> (
        match !stack with
        | ra :: rest ->
            stack := rest;
            ip := ra
        | [] -> running := false)
    | _ (* halt *) -> running := false
  done;
  if !steps <> t.dyn_instrs then
    divergence "replayed %d instructions of a %d-instruction trace" !steps
      t.dyn_instrs;
  (* every recorded stream must be consumed exactly *)
  for k = 0 to n - 1 do
    (match addr_stream.(k) with
    | Some v when acur.(k) <> v.Ivec.len ->
        divergence "address stream consumed partially (%d of %d)" acur.(k)
          v.Ivec.len
    | _ -> ());
    match bit_stream.(k) with
    | Some v when bcur.(k) <> v.Bitvec.len ->
        divergence "branch history consumed partially (%d of %d)" bcur.(k)
          v.Bitvec.len
    | _ -> ()
  done
