(** The in-order timing model (Section 3 of the paper).

    Consumes the dynamic instruction stream produced by {!Exec} and
    charges cycles according to a machine configuration:

    - at most [issue_width] instructions issue per (minor) cycle;
    - an instruction does not issue until its source registers are ready
      (results are bypassed: latency 1 means a dependent instruction can
      issue the very next cycle);
    - writes complete in order (a WAW hazard stalls);
    - a declared functional unit must be free; issuing occupies it for
      its issue latency.  Classes without units are unconstrained;
    - issue is strictly in order: the first stalled instruction ends the
      cycle's issue group;
    - control is free (perfect branch prediction and slot filling, the
      paper's assumption): branches occupy issue slots only;
    - an optional blocking data cache adds its miss penalty
      (Section 5.1).

    Counts are in minor cycles; {!base_cycles} divides by the
    superpipelining degree. *)

open Ilp_machine

type unit_pool = { spec : Config.unit_spec; free_at : int array }

(** Pre-decoded fields of one static instruction (see {!issue_decoded});
    the direct path memoizes these per [Instr.id]. *)
type decoded = {
  d_cls : Ilp_ir.Iclass.t;
  d_is_load : bool;
  d_defs : int array;
  d_uses : int array;
}

module Int_table : Hashtbl.S with type key = int

type t = {
  config : Config.t;
  reg_ready : int array;
  pools : unit_pool list;  (** in [config.units] declaration order *)
  pools_by_class : unit_pool list array;
  mutable now : int;  (** current minor cycle *)
  mutable issued_this_cycle : int;
  mutable instrs : int;
  mutable stall_cycles : int;
  cache : Cache.t option;
  mutable cache_stall_until : int;
  issue_histogram : int array;
      (** [issue_histogram.(k)]: completed cycles that issued exactly
          [k] instructions *)
  mutable force_cycle_end : bool;
  mutable finished : bool;  (** set by {!finish} *)
  decoded : decoded Int_table.t;
      (** per-static-instruction decode memo used by {!issue} *)
}

val create : ?cache:Cache.t -> ?registers:int -> Config.t -> t
(** [registers] sizes the scoreboard to the simulated register file;
    defaults to [Exec.default_options.registers]. *)

type snapshot
(** Complete mutable state of a timing model at an instruction (packet)
    boundary, as plain copied data: hazard state (scoreboard,
    functional-unit reservations, current cycle, partially filled issue
    packet, cache tags, blocking-stall horizon) plus the accumulators
    (instruction count, stall cycles, issue histogram, cache counters).
    Checkpointing here is exact: a run split at arbitrary boundaries by
    {!snapshot}/{!resume} is bit-identical to the unsegmented run, and
    the accumulators are carried through each segment in order, so the
    final segment's state {e is} the deterministic merge of all
    segments. *)

val snapshot : t -> snapshot
(** An independent copy of the model's current state; [t] may continue
    to be used. *)

val resume : snapshot -> t
(** A fresh timing model (with its own cache, when the snapshot recorded
    one) continuing exactly where the snapshot was taken.  The snapshot
    is not consumed: resuming twice yields two independent, identical
    continuations. *)

val issue : t -> Ilp_ir.Instr.t -> int -> unit
(** Account one dynamic instruction; the second argument is the
    effective address of a memory operation or [-1].  After the call,
    [t.now] is the minor cycle the instruction issued in. *)

val issue_decoded :
  t ->
  cls:Ilp_ir.Iclass.t ->
  is_load:bool ->
  defs:int array ->
  uses:int array ->
  int ->
  unit
(** Like {!issue}, but from pre-decoded fields: instruction class,
    whether it is a load, and def/use register {e indices}.  {!issue} is
    exactly this after decoding, so a trace replay that feeds the same
    decoded stream produces bit-identical timing. *)

val observer : t -> Exec.observer

val minor_cycles : t -> int
(** Total time: the last issue cycle plus the drain of the deepest
    outstanding result. *)

val finish : t -> unit
(** Close the open issue cycle and charge the result-drain cycles as
    zero-issue cycles, establishing the invariant
    [Array.fold_left (+) 0 t.issue_histogram = minor_cycles t].
    Idempotent; call once the dynamic stream is exhausted. *)

val base_cycles : t -> float
val instrs : t -> int

val speedup : t -> float
(** Instructions per base cycle = speedup over the base machine, which
    executes one instruction per base cycle without stalling. *)
