(** Dynamic-trace capture: the first N executed instructions with their
    effective addresses, for debugging compiled code (`ilp trace`). *)

open Ilp_ir

type entry = { instr : Instr.t; address : int  (** -1 if not memory *) }

val capture :
  ?limit:int -> ?options:Exec.options -> Program.t -> entry list * Exec.outcome
(** Run the program to completion, keeping the first [limit] (default
    200) executed instructions. *)

val pp_entry : entry Fmt.t
val render : entry list -> string
