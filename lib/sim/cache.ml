(* A small direct-mapped data cache with a blocking miss penalty, used
   for the Section 5.1 experiments on the interaction of cache misses
   with parallel instruction issue.

   Addresses are word addresses; a line holds [line_words] consecutive
   words.  The cache is write-allocate: loads and stores both fill the
   line on a miss. *)

type t = {
  lines : int;  (** number of lines, a power of two *)
  line_words : int;  (** words per line, a power of two *)
  penalty : int;  (** miss penalty in (minor) cycles *)
  tags : int array;  (** -1 = invalid *)
  mutable accesses : int;
  mutable misses : int;
}

let create ?(lines = 256) ?(line_words = 4) ~penalty () =
  if lines <= 0 || lines land (lines - 1) <> 0 then
    invalid_arg "Cache.create: lines must be a positive power of two";
  if line_words <= 0 || line_words land (line_words - 1) <> 0 then
    invalid_arg "Cache.create: line_words must be a positive power of two";
  { lines;
    line_words;
    penalty;
    tags = Array.make lines (-1);
    accesses = 0;
    misses = 0;
  }

let miss_penalty t = t.penalty

(* [access t addr] is [true] on a hit.  Misses fill the line. *)
let access t addr =
  t.accesses <- t.accesses + 1;
  let line_addr = addr / t.line_words in
  let index = line_addr land (t.lines - 1) in
  if t.tags.(index) = line_addr then true
  else begin
    t.misses <- t.misses + 1;
    t.tags.(index) <- line_addr;
    false
  end

let accesses t = t.accesses
let misses t = t.misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses
