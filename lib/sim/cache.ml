(* A small direct-mapped data cache with a blocking miss penalty, used
   for the Section 5.1 experiments on the interaction of cache misses
   with parallel instruction issue.

   Addresses are word addresses; a line holds [line_words] consecutive
   words.  The cache is write-allocate: loads and stores both fill the
   line on a miss. *)

type t = {
  lines : int;  (** number of lines, a power of two *)
  line_words : int;  (** words per line, a power of two *)
  penalty : int;  (** miss penalty in (minor) cycles *)
  tags : int array;  (** -1 = invalid *)
  mutable accesses : int;
  mutable misses : int;
}

let create ?(lines = 256) ?(line_words = 4) ~penalty () =
  if lines <= 0 || lines land (lines - 1) <> 0 then
    invalid_arg "Cache.create: lines must be a positive power of two";
  if line_words <= 0 || line_words land (line_words - 1) <> 0 then
    invalid_arg "Cache.create: line_words must be a positive power of two";
  { lines;
    line_words;
    penalty;
    tags = Array.make lines (-1);
    accesses = 0;
    misses = 0;
  }

let miss_penalty t = t.penalty

(* [access t addr] is [true] on a hit.  Misses fill the line. *)
let access t addr =
  t.accesses <- t.accesses + 1;
  let line_addr = addr / t.line_words in
  let index = line_addr land (t.lines - 1) in
  if t.tags.(index) = line_addr then true
  else begin
    t.misses <- t.misses + 1;
    t.tags.(index) <- line_addr;
    false
  end

let accesses t = t.accesses
let misses t = t.misses

(* Full cache state — geometry, tags and counters — as plain data, so a
   segmented replay can checkpoint the cache at a segment boundary and
   continue bit-identically in a different domain. *)
type state = {
  s_lines : int;
  s_line_words : int;
  s_penalty : int;
  s_tags : int array;
  s_accesses : int;
  s_misses : int;
}

let snapshot t =
  { s_lines = t.lines;
    s_line_words = t.line_words;
    s_penalty = t.penalty;
    s_tags = Array.copy t.tags;
    s_accesses = t.accesses;
    s_misses = t.misses;
  }

let of_state s =
  { lines = s.s_lines;
    line_words = s.s_line_words;
    penalty = s.s_penalty;
    tags = Array.copy s.s_tags;
    accesses = s.s_accesses;
    misses = s.s_misses;
  }

let restore t s =
  if t.lines <> s.s_lines || t.line_words <> s.s_line_words
     || t.penalty <> s.s_penalty
  then
    invalid_arg "Cache.restore: snapshot from a different cache geometry";
  Array.blit s.s_tags 0 t.tags 0 t.lines;
  t.accesses <- s.s_accesses;
  t.misses <- s.s_misses

let miss_rate t =
  if t.accesses = 0 then 0.0 else float_of_int t.misses /. float_of_int t.accesses
