(* Top-level compilation and measurement pipeline: the paper's
   "parameterizable code reorganization and simulation system".

   A MiniMod source program is compiled for a machine configuration at
   one of five cumulative optimization levels (the x-axis of Figure 4-8):

   - O0: no optimization at all (every variable in memory, original
     instruction order);
   - O1: + pipeline instruction scheduling;
   - O2: + intra-block optimizations (constant folding, local CSE and
     copy propagation, dead-code elimination);
   - O3: + global optimizations (loop-invariant code motion,
     dominator-based global CSE);
   - O4: + global register allocation (home promotion).

   Expression-temporary allocation always runs (the code could not
   execute otherwise); the temp-pool size comes from the machine
   configuration, as in Section 3. *)

open Ilp_lang
open Ilp_machine

type opt_level = O0 | O1 | O2 | O3 | O4

let opt_level_name = function
  | O0 -> "none"
  | O1 -> "sched"
  | O2 -> "sched+local"
  | O3 -> "sched+local+global"
  | O4 -> "sched+local+global+regalloc"

let all_levels = [ O0; O1; O2; O3; O4 ]

let level_rank = function O0 -> 0 | O1 -> 1 | O2 -> 2 | O3 -> 3 | O4 -> 4

let at_least level threshold = level_rank level >= level_rank threshold

type unroll_spec = { mode : Unroll.mode; factor : int }

(* Parse and type check MiniMod source. *)
let frontend source = Semant.compile_source source

let local_cleanup p =
  p |> Ilp_opt.Const_fold.run |> Ilp_opt.Local_cse.run |> Ilp_opt.Dce.run

(* Compile [source] for [config] at [level], stopping just short of the
   machine-specific scheduling pass.  The result depends on [config]
   only through the register split (temp_regs/home_regs), so configs
   that agree on those share one pre-scheduled program — and, because
   the instructions keep their identities across [schedule], one
   captured trace (see Trace_buffer). *)
let compile_unscheduled ?unroll ~level (config : Config.t) source =
  let tast = frontend source in
  let tast =
    match unroll with
    | Some { mode; factor } -> Unroll.program mode factor tast
    | None -> tast
  in
  let p = Codegen.gen_program tast in
  let p = if at_least level O2 then local_cleanup p else p in
  let p =
    if at_least level O3 then
      p |> Ilp_opt.Licm.run |> Ilp_opt.Global_cse.run |> local_cleanup
    else p
  in
  let p =
    if at_least level O4 then
      Ilp_regalloc.Global_alloc.run config p
      |> local_cleanup |> Ilp_opt.Coalesce.run
    else p
  in
  Ilp_regalloc.Temp_alloc.run config p

(* The final machine-specific pass: per-block list scheduling (from O1). *)
let schedule ~level (config : Config.t) p =
  if at_least level O1 then Ilp_sched.List_sched.run config p else p

(* Compile [source] for [config] at [level]. *)
let compile ?unroll ~level (config : Config.t) source =
  schedule ~level config (compile_unscheduled ?unroll ~level config source)

(* Compile and measure in one step. *)
let measure ?unroll ?(level = O4) ?cache ?options (config : Config.t) source =
  let program = compile ?unroll ~level config source in
  Ilp_sim.Metrics.measure ?cache ?options config program
