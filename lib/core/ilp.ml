(* Top-level compilation and measurement pipeline: the paper's
   "parameterizable code reorganization and simulation system".

   A MiniMod source program is compiled for a machine configuration at
   one of five cumulative optimization levels (the x-axis of Figure 4-8):

   - O0: no optimization at all (every variable in memory, original
     instruction order);
   - O1: + pipeline instruction scheduling;
   - O2: + intra-block optimizations (constant folding, local CSE and
     copy propagation, dead-code elimination);
   - O3: + global optimizations (loop-invariant code motion,
     dominator-based global CSE);
   - O4: + global register allocation (home promotion).

   Expression-temporary allocation always runs (the code could not
   execute otherwise); the temp-pool size comes from the machine
   configuration, as in Section 3.

   The level's pass sequence is materialised as an explicit list of
   named passes ([pipeline]) so that callers can observe the program
   after every stage ([?on_pass]) and so that [?check] can validate the
   IR between passes and name the offending pass when one breaks a
   well-formedness invariant.  The pass order is exactly the historical
   one — refactoring the pipeline must not change a single emitted
   instruction, or the figure reproductions would drift. *)

open Ilp_ir
open Ilp_lang
open Ilp_machine

type opt_level = O0 | O1 | O2 | O3 | O4

let opt_level_name = function
  | O0 -> "none"
  | O1 -> "sched"
  | O2 -> "sched+local"
  | O3 -> "sched+local+global"
  | O4 -> "sched+local+global+regalloc"

let all_levels = [ O0; O1; O2; O3; O4 ]

let level_rank = function O0 -> 0 | O1 -> 1 | O2 -> 2 | O3 -> 3 | O4 -> 4

let at_least level threshold = level_rank level >= level_rank threshold

type unroll_spec = { mode : Unroll.mode; factor : int; bounds : bool }

type pass = {
  pass_name : string;
  pass_stage : Validate.stage;
  pass_run : Program.t -> Program.t;
  pass_verify :
    (before:Program.t ->
    after:Program.t ->
    Ilp_analysis.Diagnostics.t list)
    option;
}

exception Pass_failed of { pass : string; issue : string }

(* Parse and type check MiniMod source. *)
let frontend source = Semant.compile_source source

let local_cleanup p =
  p |> Ilp_opt.Const_fold.run |> Ilp_opt.Local_cse.run |> Ilp_opt.Dce.run

(* The O2 cleanup group as named passes; [prefix] distinguishes the
   re-runs that mop up after the global passes. *)
let cleanup_passes prefix =
  let pass name run =
    {
      pass_name = prefix ^ name;
      pass_stage = `Virtual;
      pass_run = run;
      pass_verify = None;
    }
  in
  [
    pass "const_fold" Ilp_opt.Const_fold.run;
    pass "local_cse" Ilp_opt.Local_cse.run;
    pass "dce" Ilp_opt.Dce.run;
  ]

(* The post-codegen pass sequence for [level], in execution order.  The
   concatenation reproduces the historical pipeline exactly:
   [local_cleanup] after codegen (O2+), LICM + global CSE + cleanup
   (O3+), home promotion + cleanup + coalescing (O4), then mandatory
   expression-temporary allocation. *)
let pipeline ~level (config : Config.t) : pass list =
  let vpass name run =
    { pass_name = name; pass_stage = `Virtual; pass_run = run; pass_verify = None }
  in
  List.concat
    [
      (if at_least level O2 then cleanup_passes "" else []);
      (if at_least level O3 then
         [
           vpass "licm" Ilp_opt.Licm.run;
           vpass "global_cse" Ilp_opt.Global_cse.run;
         ]
         @ cleanup_passes "post_global."
       else []);
      (if at_least level O4 then
         [
           {
             pass_name = "global_alloc";
             pass_stage = `Virtual;
             pass_run = Ilp_regalloc.Global_alloc.run config;
             pass_verify =
               Some
                 (fun ~before ~after ->
                   Ilp_regalloc.Regalloc_verify.check_global_alloc config
                     ~before ~after);
           };
         ]
         @ cleanup_passes "post_alloc."
         @ [ vpass "coalesce" Ilp_opt.Coalesce.run ]
       else []);
      [
        {
          pass_name = "temp_alloc";
          pass_stage = `Allocated;
          pass_run = Ilp_regalloc.Temp_alloc.run config;
          pass_verify =
            Some
              (fun ~before ~after ->
                Ilp_regalloc.Regalloc_verify.check_temp_alloc_program config
                  ~before ~after);
        };
      ];
    ]

(* Well-formedness plus the error-severity static lint (definite
   assignment — a use some path reaches unassigned would read an
   arbitrary stale value) after each pass; at [`Allocated], physical
   register indices must additionally fit the configured file. *)
let validate_after ?max_reg ~pass ~stage p =
  (match Validate.check ~stage ?max_reg p with
  | [] -> ()
  | issue :: _ ->
      raise
        (Pass_failed { pass; issue = Fmt.str "%a" Validate.pp_issue issue }));
  match Ilp_analysis.Lint.errors_only p with
  | [] -> ()
  | d :: _ ->
      raise (Pass_failed { pass; issue = Ilp_analysis.Diagnostics.to_string d })

let run_pass ?(check = false) ?on_pass ~config p pass =
  let after = pass.pass_run p in
  if check then begin
    validate_after
      ~max_reg:(Ilp_regalloc.Regfile.file_size config)
      ~pass:pass.pass_name ~stage:pass.pass_stage after;
    match pass.pass_verify with
    | None -> ()
    | Some verify -> (
        match verify ~before:p ~after with
        | [] -> ()
        | d :: _ ->
            raise
              (Pass_failed
                 {
                   pass = pass.pass_name;
                   issue = Ilp_analysis.Diagnostics.to_string d;
                 }))
  end;
  (match on_pass with
  | Some f -> f pass.pass_name pass.pass_stage after
  | None -> ());
  after

(* Compile [source] for [config] at [level], stopping just short of the
   machine-specific scheduling pass.  The result depends on [config]
   only through the register split (temp_regs/home_regs), so configs
   that agree on those share one pre-scheduled program — and, because
   the instructions keep their identities across [schedule], one
   captured trace (see Trace_buffer). *)
let compile_unscheduled ?unroll ?(check = false) ?on_pass ~level
    (config : Config.t) source =
  let tast = frontend source in
  let tast =
    match unroll with
    | Some { mode; factor; bounds } -> Unroll.program ~bounds mode factor tast
    | None -> tast
  in
  let p = Codegen.gen_program tast in
  if check then validate_after ~pass:"codegen" ~stage:`Virtual p;
  (match on_pass with Some f -> f "codegen" `Virtual p | None -> ());
  List.fold_left (run_pass ~check ?on_pass ~config) p (pipeline ~level config)

(* The final machine-specific pass: per-block list scheduling (from O1).
   Under [~check] the scheduled program must be a DDG-respecting
   permutation of its input (Check_sched) and still well-formed; with
   [~memdep] the scheduler prunes memory edges the dependence analysis
   proves apart, and the checker re-justifies each removed edge from
   independently recomputed facts. *)
let schedule ?(check = false) ?(memdep = false) ?ranges ?on_pass ~level
    (config : Config.t) p =
  if at_least level O1 then begin
    let scheduled = Ilp_sched.List_sched.run ~memdep ?ranges config p in
    if check then begin
      (try
         Ilp_sched.Check_sched.check_program ~memdep ?ranges config
           ~original:p ~scheduled
       with Ilp_sched.Check_sched.Illegal msg ->
         raise (Pass_failed { pass = "list_sched"; issue = msg }));
      validate_after
        ~max_reg:(Ilp_regalloc.Regfile.file_size config)
        ~pass:"list_sched" ~stage:`Allocated scheduled
    end;
    (match on_pass with
    | Some f -> f "list_sched" `Allocated scheduled
    | None -> ());
    scheduled
  end
  else p

(* Compile [source] for [config] at [level]. *)
let compile ?unroll ?check ?memdep ?ranges ?on_pass ~level (config : Config.t)
    source =
  schedule ?check ?memdep ?ranges ?on_pass ~level config
    (compile_unscheduled ?unroll ?check ?on_pass ~level config source)

(* Compile and measure in one step. *)
let measure ?unroll ?(level = O4) ?memdep ?ranges ?cache ?options
    (config : Config.t) source =
  let program = compile ?unroll ?memdep ?ranges ~level config source in
  Ilp_sim.Metrics.measure ?cache ?options config program
