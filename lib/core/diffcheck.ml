(* Differential oracle over the compilation pipeline.

   Every optimization level of every workload must compute the same
   thing; this module proves it dynamically by executing the program at
   each stage boundary and comparing observable behaviour against the
   unoptimized reference.

   What counts as observable depends on how far apart the two programs
   are:

   - Across optimization passes, almost nothing dynamic is invariant:
     home promotion deletes loads and stores, CSE deletes recomputation,
     unrolling re-shapes control flow.  What IS invariant is the
     benchmark checksum protocol: the [__sink] global is explicitly
     excluded from home promotion (Global_alloc), no pass ever deletes
     or reorders a store, and all sink stores hit one address so the DDG
     orders them totally.  The final sink value and the exact sequence
     of values stored to the sink cell are therefore valid
     cross-stage observables ([compare_semantics]).

   - Between a program and its own list-scheduled form the instruction
     sets are identical, so the comparison tightens ([compare_exact]):
     dynamic instruction count, per-class counts, the sequence of values
     stored at every address (scheduling may interleave provably-disjoint
     stores differently but never reorders same-address stores — the DDG
     serialises those), final memory and final registers.

   Floats compare with a small relative tolerance in the cross-stage
   check: constant folding evaluates at compile time with the same FP
   semantics, but keeping a tolerance makes the oracle robust to
   evaluation-order changes a future pass might legally introduce. *)

open Ilp_ir
open Ilp_machine
open Ilp_sim

exception Mismatch of { stage : string; what : string }

let mismatch stage fmt =
  Printf.ksprintf (fun what -> raise (Mismatch { stage; what })) fmt

type observation = {
  outcome : Exec.outcome;
  sink_stream : Value.t list;  (** values stored to [__sink], in order *)
  stores_by_addr : (int, Value.t list) Hashtbl.t;
      (** per-address sequence of stored values, in store order *)
}

let observe ?options (p : Program.t) : observation =
  (* every MiniMod-compiled program has the reserved sink global;
     hand-built IR fragments may not — then there is no sink stream *)
  let sink_addr =
    match Program.global_address p Ilp_lang.Codegen.sink_name with
    | addr -> addr
    | exception Invalid_argument _ -> -1
  in
  let sink_rev = ref [] in
  let stores : (int, Value.t list) Hashtbl.t = Hashtbl.create 64 in
  let on_store _i addr value =
    if addr = sink_addr then sink_rev := value :: !sink_rev;
    let prev = Option.value ~default:[] (Hashtbl.find_opt stores addr) in
    Hashtbl.replace stores addr (value :: prev)
  in
  let outcome = Exec.run ?options ~on_store p in
  Hashtbl.filter_map_inplace (fun _ vs -> Some (List.rev vs)) stores;
  { outcome; sink_stream = List.rev !sink_rev; stores_by_addr = stores }

(* Relative-tolerance float comparison; exact for ints and for mixed
   tags (a tag change is always a bug). *)
let value_close a b =
  match (a, b) with
  | Value.Int x, Value.Int y -> x = y
  | Value.Float x, Value.Float y ->
      x = y
      || (Float.is_nan x && Float.is_nan y)
      || abs_float (x -. y) <= 1e-9 *. Float.max 1.0 (Float.max (abs_float x) (abs_float y))
  | _ -> false

let check_stream stage what ref_vs got_vs =
  if List.length ref_vs <> List.length got_vs then
    mismatch stage "%s: %d values vs %d in the reference" what
      (List.length got_vs) (List.length ref_vs);
  List.iteri
    (fun k (r, g) ->
      if not (value_close r g) then
        mismatch stage "%s: value #%d is %s, reference has %s" what k
          (Value.to_string g) (Value.to_string r))
    (List.combine ref_vs got_vs)

let compare_semantics ~stage ~(reference : observation) (got : observation) =
  if not (value_close reference.outcome.Exec.sink got.outcome.Exec.sink) then
    mismatch stage "final sink value is %s, reference computed %s"
      (Value.to_string got.outcome.Exec.sink)
      (Value.to_string reference.outcome.Exec.sink);
  check_stream stage "sink store stream" reference.sink_stream got.sink_stream

let compare_exact ~stage ~(reference : observation) (got : observation) =
  compare_semantics ~stage ~reference got;
  if reference.outcome.Exec.dyn_instrs <> got.outcome.Exec.dyn_instrs then
    mismatch stage "executed %d instructions, reference executed %d"
      got.outcome.Exec.dyn_instrs reference.outcome.Exec.dyn_instrs;
  Array.iteri
    (fun idx n ->
      let m = got.outcome.Exec.class_counts.(idx) in
      if n <> m then
        mismatch stage "executed %d %s instructions, reference executed %d" m
          (Iclass.name (Iclass.of_index idx))
          n)
    reference.outcome.Exec.class_counts;
  let check_addr addr ref_vs =
    let got_vs =
      Option.value ~default:[] (Hashtbl.find_opt got.stores_by_addr addr)
    in
    check_stream stage (Printf.sprintf "stores at address %d" addr) ref_vs
      got_vs
  in
  Hashtbl.iter check_addr reference.stores_by_addr;
  Hashtbl.iter
    (fun addr _ ->
      if not (Hashtbl.mem reference.stores_by_addr addr) then
        mismatch stage "stores at address %d that the reference never wrote"
          addr)
    got.stores_by_addr;
  let ref_mem = reference.outcome.Exec.memory
  and got_mem = got.outcome.Exec.memory in
  Array.iteri
    (fun addr v ->
      if not (Value.equal v got_mem.(addr)) then
        mismatch stage "final memory differs at address %d: %s vs %s" addr
          (Value.to_string got_mem.(addr))
          (Value.to_string v))
    ref_mem;
  let ref_regs = reference.outcome.Exec.regs
  and got_regs = got.outcome.Exec.regs in
  Array.iteri
    (fun r v ->
      if not (Value.equal v got_regs.(r)) then
        mismatch stage "final register r%d differs: %s vs %s" r
          (Value.to_string got_regs.(r))
          (Value.to_string v))
    ref_regs

(* Make a pass snapshot executable: programs before temp_alloc still
   use virtual registers, which the executor rejects.  Temp allocation
   is semantics-preserving (it always runs anyway), so allocating a
   snapshot only for execution cannot mask a bug in the snapshotted
   pass — and temp_alloc's own output is checked directly. *)
let executable (config : Config.t) ~(stage : Validate.stage) p =
  match stage with
  | `Virtual -> Ilp_regalloc.Temp_alloc.run config p
  | `Allocated -> p

type granularity = [ `Boundaries | `Every_pass ]

(* The pass names whose outputs are the paper's stage boundaries for
   [level]: post-opt (the last cleanup before register allocation) and
   post-regalloc (temp allocation, the last pre-scheduling pass).
   Post-codegen is the reference itself and post-schedule is handled by
   [compare_exact] against the unscheduled program. *)
let boundary_passes ~level =
  let post_opt =
    if Ilp.at_least level Ilp.O3 then [ "post_global.dce" ]
    else if Ilp.at_least level Ilp.O2 then [ "dce" ]
    else []
  in
  post_opt @ [ "temp_alloc" ]

let check_unscheduled ?unroll ?options ?(granularity = `Boundaries) ~level
    (config : Config.t) source =
  (* The in-pipeline reference is post-codegen of the SAME compilation
     (same unroll): unrolling happens before codegen and — in careful
     mode — legally reassociates FP accumulation, so later passes are
     measured against the program they actually transform.  The unroll
     transform itself is checked separately below, against the
     non-unrolled O0 program, where the float tolerance absorbs the
     reassociation drift. *)
  let wanted =
    match granularity with
    | `Every_pass -> fun _ -> true
    | `Boundaries ->
        let bs = boundary_passes ~level in
        fun name -> List.mem name bs
  in
  let reference = ref None in
  let snapshots = ref [] in
  let on_pass name stage p =
    if String.equal name "codegen" then
      reference := Some (observe ?options (executable config ~stage p))
    else if wanted name then snapshots := (name, stage, p) :: !snapshots
  in
  let unscheduled =
    Ilp.compile_unscheduled ?unroll ~check:true ~on_pass ~level config source
  in
  let reference = Option.get !reference in
  List.iter
    (fun (name, stage, p) ->
      let obs = observe ?options (executable config ~stage p) in
      compare_semantics ~stage:name ~reference obs)
    (List.rev !snapshots);
  (match unroll with
  | None -> ()
  | Some { Ilp.factor; _ } ->
      let base = Ilp.compile_unscheduled ~level:Ilp.O0 config source in
      compare_semantics
        ~stage:(Printf.sprintf "unroll x%d" factor)
        ~reference:(observe ?options base) reference);
  unscheduled

let check_compile ?unroll ?options ?granularity ?(memdep = false) ~level
    (config : Config.t) source =
  let unscheduled =
    check_unscheduled ?unroll ?options ?granularity ~level config source
  in
  let scheduled = Ilp.schedule ~check:true ~level config unscheduled in
  if not (Ilp.at_least level Ilp.O1) then scheduled
  else begin
    let unscheduled_obs = observe ?options unscheduled in
    let scheduled_obs = observe ?options scheduled in
    compare_exact ~stage:"list_sched" ~reference:unscheduled_obs scheduled_obs;
    if not memdep then scheduled
    else begin
      (* the disambiguated schedule is a distinct permutation: check it
         with the same exactness — per-address store streams catch a
         wrongly-pruned edge between same-address accesses — and return
         it, so a checked memdep compilation measures what it proved *)
      let disambiguated =
        Ilp.schedule ~check:true ~memdep:true ~level config unscheduled
      in
      let disambiguated_obs = observe ?options disambiguated in
      compare_exact ~stage:"list_sched(memdep)" ~reference:unscheduled_obs
        disambiguated_obs;
      disambiguated
    end
  end

let check_workload ?options ?granularity ?memdep ?(levels = Ilp.all_levels)
    ?(unroll_specs = []) (config : Config.t) source =
  List.iter
    (fun level ->
      ignore (check_compile ?options ?granularity ?memdep ~level config source))
    levels;
  List.iter
    (fun unroll ->
      ignore
        (check_compile ~unroll ?options ?granularity ?memdep ~level:Ilp.O4
           config source))
    unroll_specs
