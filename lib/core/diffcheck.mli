(** Differential oracle over the compilation pipeline.

    Executes a workload at stage boundaries and compares observable
    behaviour against the unoptimized reference, proving dynamically
    that every pass preserved semantics.

    Two comparison strengths:

    - {b cross-stage} ({!compare_semantics}): only the benchmark
      checksum protocol is invariant across optimization — the final
      value of the [__sink] global and the exact sequence of values
      stored to it.  ([__sink] is excluded from home promotion, no pass
      deletes or reorders stores, and same-address stores are totally
      ordered by the DDG.)  Floats compare with a small relative
      tolerance so legal FP reassociation — careful unrolling — is not
      flagged.
    - {b schedule-vs-input} ({!compare_exact}): list scheduling permutes
      instructions but deletes nothing, so dynamic instruction counts,
      per-class counts, the per-address store value sequences, final
      memory and final registers must all match exactly. *)

open Ilp_ir
open Ilp_machine
open Ilp_sim

exception Mismatch of { stage : string; what : string }
(** A stage's observable behaviour diverged from its reference;
    [stage] is the pass or boundary name ("dce", "list_sched",
    "unroll x4", ...). *)

type observation = {
  outcome : Exec.outcome;
  sink_stream : Value.t list;  (** values stored to [__sink], in order *)
  stores_by_addr : (int, Value.t list) Hashtbl.t;
      (** per-address sequence of stored values, in store order *)
}

val observe : ?options:Exec.options -> Program.t -> observation
(** Execute a (fully allocated) program, recording the dynamic store
    streams alongside the usual outcome. *)

val compare_semantics :
  stage:string -> reference:observation -> observation -> unit

val compare_exact :
  stage:string -> reference:observation -> observation -> unit

val executable : Config.t -> stage:Validate.stage -> Program.t -> Program.t
(** Temp-allocate a [`Virtual] pass snapshot so it can execute;
    identity on [`Allocated] programs. *)

type granularity = [ `Boundaries | `Every_pass ]
(** Where to execute: the paper's stage boundaries (post-codegen,
    post-opt, post-regalloc, post-schedule — a handful of executions
    per compile, the default) or after every single pass (best bug
    localisation; the fuzzer uses this on its small programs). *)

val check_unscheduled :
  ?unroll:Ilp.unroll_spec ->
  ?options:Exec.options ->
  ?granularity:granularity ->
  level:Ilp.opt_level ->
  Config.t ->
  string ->
  Program.t
(** The pre-scheduling part of {!check_compile}: compile with [~check],
    execute the chosen snapshots against the post-codegen reference (and
    when unrolling, the reference against the non-unrolled O0 program),
    and return the checked unscheduled program — ready for
    {!Ilp.schedule}.  The sweep engine's capture phase runs this so that
    capture-once/replay-many sweeps pay the differential executions once
    per capture, not once per machine configuration. *)

val check_compile :
  ?unroll:Ilp.unroll_spec ->
  ?options:Exec.options ->
  ?granularity:granularity ->
  ?memdep:bool ->
  level:Ilp.opt_level ->
  Config.t ->
  string ->
  Program.t
(** Compile [source] at [level] with {!Ilp.compile}'s [~check] (static
    IR validation after every pass, schedule legality after
    scheduling), execute the chosen snapshots, and compare each against
    the post-codegen reference of the same compilation; when unrolling,
    additionally compare that reference against the non-unrolled O0
    program.  Returns the final scheduled program.  Raises {!Mismatch}
    on divergence, {!Ilp.Pass_failed} on a static check failure.

    [?memdep] (default false) additionally builds the
    alias-disambiguated schedule ({!Ilp.schedule} with [~memdep:true],
    itself re-checked by [Check_sched]) and compares it
    {!compare_exact}-strictly — per-address store streams — against the
    unscheduled program, so a wrongly pruned dependence edge surfaces as
    a dynamic mismatch.  When both checks pass, the disambiguated
    schedule is the one returned — a checked memdep compilation measures
    the program it proved. *)

val check_workload :
  ?options:Exec.options ->
  ?granularity:granularity ->
  ?memdep:bool ->
  ?levels:Ilp.opt_level list ->
  ?unroll_specs:Ilp.unroll_spec list ->
  Config.t ->
  string ->
  unit
(** {!check_compile} at each of [levels] (default all five) and — at O4
    — each unroll spec in [unroll_specs] (default none). *)
