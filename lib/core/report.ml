(* Text rendering for experiment results: aligned tables and ASCII line
   charts, so every figure of the paper has a terminal rendition. *)

let fixed columns =
  (* column widths from content *)
  match columns with
  | [] -> ""
  | _ ->
      let n = List.length (List.hd columns) in
      let widths = Array.make n 0 in
      List.iter
        (fun row ->
          List.iteri
            (fun i cell -> widths.(i) <- max widths.(i) (String.length cell))
            row)
        columns;
      let render_row row =
        String.concat "  "
          (List.mapi
             (fun i cell -> Printf.sprintf "%*s" widths.(i) cell)
             row)
      in
      String.concat "\n" (List.map render_row columns)

(* A table with a header row, a separator, and data rows. *)
let table ~header rows =
  match rows with
  | [] -> fixed [ header ]
  | _ ->
      let n = List.length header in
      let widths = Array.make n 0 in
      List.iter
        (fun row ->
          List.iteri
            (fun i cell ->
              if i < n then widths.(i) <- max widths.(i) (String.length cell))
            row)
        (header :: rows);
      let render_row row =
        String.concat "  "
          (List.mapi (fun i cell -> Printf.sprintf "%-*s" widths.(i) cell) row)
      in
      let sep =
        String.concat "  "
          (List.init n (fun i -> String.make widths.(i) '-'))
      in
      String.concat "\n" (render_row header :: sep :: List.map render_row rows)

type series = { label : char; points : (float * float) list }

(* An ASCII scatter/line chart.  Each series is plotted with its label
   character; overlapping points show the later series.  Axes are scaled
   to the data (y from 0 unless [y_from_zero] is false). *)
let line_chart ?(width = 60) ?(height = 18) ?(y_from_zero = true)
    ?(x_label = "") ?(y_label = "") series =
  let all_points = List.concat_map (fun s -> s.points) series in
  match all_points with
  | [] -> "(no data)"
  | _ ->
      let xs = List.map fst all_points and ys = List.map snd all_points in
      let x_min = List.fold_left min infinity xs in
      let x_max = List.fold_left max neg_infinity xs in
      let y_min =
        if y_from_zero then 0.0 else List.fold_left min infinity ys
      in
      let y_max = List.fold_left max neg_infinity ys in
      let y_max = if y_max <= y_min then y_min +. 1.0 else y_max in
      let x_max = if x_max <= x_min then x_min +. 1.0 else x_max in
      let grid = Array.make_matrix height width ' ' in
      let plot x y c =
        let col =
          int_of_float
            ((x -. x_min) /. (x_max -. x_min) *. float_of_int (width - 1))
        in
        let row =
          int_of_float
            ((y -. y_min) /. (y_max -. y_min) *. float_of_int (height - 1))
        in
        if col >= 0 && col < width && row >= 0 && row < height then
          grid.(height - 1 - row).(col) <- c
      in
      (* connect consecutive points of each series with interpolation *)
      List.iter
        (fun s ->
          let sorted =
            List.sort (fun (a, _) (b, _) -> compare a b) s.points
          in
          let rec walk = function
            | (x1, y1) :: ((x2, y2) :: _ as rest) ->
                let steps = 24 in
                for k = 0 to steps do
                  let t = float_of_int k /. float_of_int steps in
                  plot (x1 +. (t *. (x2 -. x1))) (y1 +. (t *. (y2 -. y1)))
                    s.label
                done;
                walk rest
            | [ (x, y) ] -> plot x y s.label
            | [] -> ()
          in
          walk sorted)
        series;
      let buf = Buffer.create 1024 in
      if y_label <> "" then Buffer.add_string buf (y_label ^ "\n");
      Array.iteri
        (fun i row ->
          let y =
            y_max
            -. (float_of_int i /. float_of_int (height - 1) *. (y_max -. y_min))
          in
          Buffer.add_string buf (Printf.sprintf "%8.2f |" y);
          Buffer.add_string buf (String.init width (fun j -> row.(j)));
          Buffer.add_char buf '\n')
        grid;
      Buffer.add_string buf (Printf.sprintf "%8s +%s\n" "" (String.make width '-'));
      Buffer.add_string buf
        (Printf.sprintf "%8s  %-8.2f%*s%8.2f   %s\n" "" x_min (width - 16) ""
           x_max x_label);
      Buffer.contents buf

let section title body =
  let bar = String.make (String.length title) '=' in
  Printf.sprintf "%s\n%s\n\n%s\n" title bar body
