(** Random-program fuzzing of the whole compilation pipeline.

    Generates random well-typed MiniMod programs
    ({!Ilp_lang.Gen_prog}) and runs the differential oracle
    ({!Diffcheck}, at every-pass granularity) over each at every
    optimization level on a few stress configurations (unconstrained
    base machine, single-copy functional units, tiny temp pool) plus one
    careful-unroll factor.  Deterministic and reproducible at any job
    count: iteration [k] seeds its RNG from [(seed, k)] and the domain
    pool re-raises the lowest-index failure.  Failing programs are
    shrunk to a local minimum before being reported. *)

open Ilp_machine

type failure = {
  index : int;  (** which iteration failed *)
  seed : int;
  config_name : string;
  error : string;  (** what the oracle or a checker reported *)
  source : string;  (** shrunk MiniMod source that still fails *)
}

exception Failed of failure

val run :
  ?jobs:int ->
  ?configs:Config.t list ->
  ?levels:Ilp.opt_level list ->
  ?unroll_specs:Ilp.unroll_spec list ->
  ?alias_heavy:bool ->
  ?unroll_heavy:bool ->
  ?range_heavy:bool ->
  count:int ->
  seed:int ->
  unit ->
  unit
(** Check [count] random programs; raises {!Failed} with the shrunk
    counterexample of the lowest failing iteration, if any.  Every
    iteration additionally checks the alias-disambiguated schedule
    (memory-dependence pruning under [Check_sched] re-justification and
    exact store-stream comparison) and each unroll spec in
    [unroll_specs] at O4 (default: careful x3 classic plus careful x4
    bound-aware).  [?alias_heavy] draws from the aliasing-adversarial
    generator mode; [?unroll_heavy] draws from the unrolling-adversarial
    mode (small constant bounds, down-counting loops, boundary trip
    counts, index-mutating bodies) and widens the default spec list to
    both modes, factors up to 8, and both bound settings;
    [?range_heavy] draws from the range-adversarial mode (stride-2/3
    index arithmetic, split array windows, near-extent loop bounds,
    widening-stressing nested accumulators) — the shapes only the
    value-range product can disambiguate, so every edge it prunes is
    re-justified and store-stream-compared like the rest. *)
