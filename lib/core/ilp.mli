(** The top-level compilation and measurement pipeline — the paper's
    "parameterizable code reorganization and simulation system".

    A MiniMod source compiles for a machine configuration at one of five
    cumulative optimization levels (the x-axis of Figure 4-8); the
    resulting program runs on the functional simulator while the
    machine's timing model counts cycles. *)

open Ilp_machine

(** Cumulative optimization levels:
    - [O0]: no optimization at all (every variable in memory, original
      instruction order);
    - [O1]: + pipeline instruction scheduling;
    - [O2]: + intra-block optimizations (constant folding, local CSE and
      copy propagation, dead code elimination);
    - [O3]: + global optimizations (loop-invariant code motion,
      dominator-based global CSE);
    - [O4]: + global register allocation (home promotion).

    Expression-temporary allocation always runs; the temp-pool size
    comes from the machine configuration, as in Section 3. *)
type opt_level = O0 | O1 | O2 | O3 | O4

val opt_level_name : opt_level -> string
val all_levels : opt_level list
val level_rank : opt_level -> int
val at_least : opt_level -> opt_level -> bool

type unroll_spec = { mode : Ilp_lang.Unroll.mode; factor : int }

val frontend : string -> Ilp_lang.Tast.tprogram
(** Parse and type check. *)

val local_cleanup : Ilp_ir.Program.t -> Ilp_ir.Program.t
(** Constant folding, local CSE, DCE — the O2 pass group, also used to
    clean up after the global passes. *)

val compile_unscheduled :
  ?unroll:unroll_spec ->
  level:opt_level ->
  Config.t ->
  string ->
  Ilp_ir.Program.t
(** Everything {!compile} does short of the machine-specific scheduling
    pass: fully register-allocated, unscheduled.  Depends on [config]
    only through [temp_regs]/[home_regs], so configurations agreeing on
    those share one pre-scheduled program — the sharing contract
    [Ilp_sim.Trace_buffer] relies on. *)

val schedule : level:opt_level -> Config.t -> Ilp_ir.Program.t -> Ilp_ir.Program.t
(** The final per-block list-scheduling pass (identity below O1).
    Preserves instruction identities, so any two schedules of the same
    {!compile_unscheduled} result are replay-compatible. *)

val compile :
  ?unroll:unroll_spec ->
  level:opt_level ->
  Config.t ->
  string ->
  Ilp_ir.Program.t
(** Compile MiniMod source for [config] at [level]; the result is fully
    register-allocated and (from O1) scheduled for [config].  Equal to
    {!schedule} of {!compile_unscheduled}. *)

val measure :
  ?unroll:unroll_spec ->
  ?level:opt_level ->
  ?cache:Ilp_sim.Cache.t ->
  ?options:Ilp_sim.Exec.options ->
  Config.t ->
  string ->
  Ilp_sim.Metrics.run
(** Compile (default O4) and measure in one step. *)
