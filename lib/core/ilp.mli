(** The top-level compilation and measurement pipeline — the paper's
    "parameterizable code reorganization and simulation system".

    A MiniMod source compiles for a machine configuration at one of five
    cumulative optimization levels (the x-axis of Figure 4-8); the
    resulting program runs on the functional simulator while the
    machine's timing model counts cycles.

    The level's pass sequence is an explicit list of named passes
    ({!pipeline}).  [?check] validates the IR after every pass and
    raises {!Pass_failed} naming the offending pass; [?on_pass] observes
    the program after every pass (the differential oracle
    [Diffcheck] executes these snapshots against each other). *)

open Ilp_ir
open Ilp_machine

(** Cumulative optimization levels:
    - [O0]: no optimization at all (every variable in memory, original
      instruction order);
    - [O1]: + pipeline instruction scheduling;
    - [O2]: + intra-block optimizations (constant folding, local CSE and
      copy propagation, dead code elimination);
    - [O3]: + global optimizations (loop-invariant code motion,
      dominator-based global CSE);
    - [O4]: + global register allocation (home promotion).

    Expression-temporary allocation always runs; the temp-pool size
    comes from the machine configuration, as in Section 3. *)
type opt_level = O0 | O1 | O2 | O3 | O4

val opt_level_name : opt_level -> string
val all_levels : opt_level list
val level_rank : opt_level -> int
val at_least : opt_level -> opt_level -> bool

type unroll_spec = {
  mode : Ilp_lang.Unroll.mode;
  factor : int;
  bounds : bool;
      (** enable bound-aware full unroll / remainder peeling for loops
          with known trip counts *)
}

type pass = {
  pass_name : string;  (** e.g. ["dce"], ["post_global.const_fold"] *)
  pass_stage : Validate.stage;
      (** the well-formedness stage the program must satisfy {e after}
          this pass runs *)
  pass_run : Program.t -> Program.t;
  pass_verify :
    (before:Program.t ->
    after:Program.t ->
    Ilp_analysis.Diagnostics.t list)
    option;
      (** independent before/after verification run under [?check] —
          the register-allocation checkers
          ({!Ilp_regalloc.Regalloc_verify}) on ["global_alloc"] and
          ["temp_alloc"] *)
}
(** One named IR-to-IR stage of the compilation pipeline. *)

exception Pass_failed of { pass : string; issue : string }
(** Raised under [?check] when a pass breaks an invariant: IR
    well-formedness ({!Validate}, including register-file bounds at
    [`Allocated]) or an error-severity static lint finding
    ({!Ilp_analysis.Lint}) after any pass, a failed [pass_verify], or
    schedule illegality ({!Ilp_sched.Check_sched}) after
    ["list_sched"]. *)

val frontend : string -> Ilp_lang.Tast.tprogram
(** Parse and type check. *)

val local_cleanup : Program.t -> Program.t
(** Constant folding, local CSE, DCE — the O2 pass group, also used to
    clean up after the global passes. *)

val pipeline : level:opt_level -> Config.t -> pass list
(** The post-codegen, pre-scheduling pass sequence for [level], in
    execution order (always ending in ["temp_alloc"]).  Folding a
    codegen result through [pass_run] reproduces
    {!compile_unscheduled} exactly. *)

val compile_unscheduled :
  ?unroll:unroll_spec ->
  ?check:bool ->
  ?on_pass:(string -> Validate.stage -> Program.t -> unit) ->
  level:opt_level ->
  Config.t ->
  string ->
  Program.t
(** Everything {!compile} does short of the machine-specific scheduling
    pass: fully register-allocated, unscheduled.  Depends on [config]
    only through [temp_regs]/[home_regs], so configurations agreeing on
    those share one pre-scheduled program — the sharing contract
    [Ilp_sim.Trace_buffer] relies on.

    [?on_pass name stage program] fires after codegen and after every
    pipeline pass; [?check] (default false) validates the IR at each of
    those points and raises {!Pass_failed} naming the first pass whose
    output is malformed. *)

val schedule :
  ?check:bool ->
  ?memdep:bool ->
  ?ranges:bool ->
  ?on_pass:(string -> Validate.stage -> Program.t -> unit) ->
  level:opt_level ->
  Config.t ->
  Program.t ->
  Program.t
(** The final per-block list-scheduling pass (identity below O1).
    Preserves instruction identities, so any two schedules of the same
    {!compile_unscheduled} result are replay-compatible.  [?check]
    verifies the result is a DDG-respecting permutation of the input
    ({!Ilp_sched.Check_sched}) and still well-formed, raising
    {!Pass_failed} with pass ["list_sched"] otherwise.

    [?memdep] (default false) lets the scheduler drop memory
    serialization edges {!Ilp_analysis.Memdep} proves [No_alias]; under
    [?check], every removed edge is re-justified from independently
    recomputed analysis facts.  [?ranges] (default true) enables the
    value-range disambiguation tier inside that analysis. *)

val compile :
  ?unroll:unroll_spec ->
  ?check:bool ->
  ?memdep:bool ->
  ?ranges:bool ->
  ?on_pass:(string -> Validate.stage -> Program.t -> unit) ->
  level:opt_level ->
  Config.t ->
  string ->
  Program.t
(** Compile MiniMod source for [config] at [level]; the result is fully
    register-allocated and (from O1) scheduled for [config].  Equal to
    {!schedule} of {!compile_unscheduled}. *)

val measure :
  ?unroll:unroll_spec ->
  ?level:opt_level ->
  ?memdep:bool ->
  ?ranges:bool ->
  ?cache:Ilp_sim.Cache.t ->
  ?options:Ilp_sim.Exec.options ->
  Config.t ->
  string ->
  Ilp_sim.Metrics.run
(** Compile (default O4) and measure in one step. *)
