(* Reproduction drivers for every table and figure of the paper's
   evaluation (see DESIGN.md, experiment index).  Each experiment
   returns structured data plus a text rendering; the benchmark harness
   and the CLI both go through these entry points. *)

open Ilp_machine
module W = Ilp_workloads.Workload
module Registry = Ilp_workloads.Registry
module Metrics = Ilp_sim.Metrics
module Pool = Ilp_par.Pool

(* ------------------------------------------------------------------ *)
(* engine selection: serial, or a domain pool shared by every sweep    *)

(* [None]: the plain serial engine (capture and replay jobs run in the
   calling domain, in plan order).  [Some pool]: the same two-phase plan
   with both phases fanned out over the pool; a pool of 1 runs the jobs
   in the calling domain in the same order as the serial engine.  Either
   way every number is bit-identical (see test_par's determinism
   suite). *)
let engine : Pool.t option ref = ref None

let engine_jobs () = match !engine with None -> 1 | Some p -> Pool.jobs p

(* Run [f] with sweeps fanned out over a fresh [jobs]-domain pool
   ([jobs = 0] forces the serial engine), restoring the previous engine
   afterwards. *)
let with_jobs jobs f =
  let previous = !engine in
  let finish pool () =
    engine := previous;
    Option.iter Pool.shutdown pool
  in
  let pool = if jobs <= 0 then None else Some (Pool.create ~jobs) in
  Fun.protect ~finally:(finish pool) (fun () ->
      engine := pool;
      f ())

let par_map f xs =
  match !engine with None -> Array.map f xs | Some pool -> Pool.map pool f xs

(* Chunkable variant: each item is a chain of bounded steps.  The serial
   engine drives every chain to completion in index order — exactly the
   sequence of [start]/[step] calls the pool engine makes for that item —
   so results are bit-identical; the pool engine goes through
   [Pool.map_chunked], which lets idle workers steal other items (or
   other items' next chunks) between a long item's chunks instead of
   idling behind it. *)
let par_map_chunked ~start ~step xs =
  match !engine with
  | None ->
      Array.map
        (fun x ->
          let rec drive = function
            | Pool.Done y -> y
            | Pool.More s -> drive (step s)
          in
          drive (start x))
        xs
  | Some pool -> Pool.map_chunked pool ~start ~step xs

(* When set, every sweep proves its compilations: captures run the
   differential oracle over the pre-scheduling pipeline (Diffcheck, at
   stage-boundary granularity) and every replay's schedule is verified
   as a DDG-respecting permutation (Check_sched) and re-validated.  The
   differential executions happen once per capture — the capture/replay
   split keeps checking cost independent of how many machine
   configurations share a program.  The measured numbers are
   bit-identical with and without checking. *)
let checks : bool ref = ref false

let with_checks enabled f =
  let previous = !checks in
  Fun.protect
    ~finally:(fun () -> checks := previous)
    (fun () ->
      checks := enabled;
      f ())

(* ------------------------------------------------------------------ *)
(* the persistent trace store                                          *)

module Store = Ilp_store.Store

(* When set, phase 1 of every sweep looks its capture key up in the
   store before executing the workload and writes fresh captures back,
   so a warm sweep performs zero workload execution.  Safety over
   availability: any rejected file (corrupt, truncated, version-skewed,
   key-colliding, or failing stream re-attachment) is reported through
   [store_warn] and the engine falls back to a fresh capture. *)
let store : Store.t option ref = ref None

let with_store s f =
  let previous = !store in
  Fun.protect
    ~finally:(fun () -> store := previous)
    (fun () ->
      store := s;
      f ())

(* Store diagnostics go through this hook — by default to stderr, so
   stdout results stay byte-identical between cold and warm sweeps.
   Tests override it to collect the warnings they provoke. *)
let store_warn : (string -> unit) ref =
  ref (fun msg -> Printf.eprintf "ilp: trace store: %s\n%!" msg)

(* Workload executions the sweep engine actually performed (functional
   interpreter runs for capture).  The warm-sweep contract — and the
   bench harness — assert this stays zero when every group hits. *)
let captures_performed = Atomic.make 0
let capture_count () = Atomic.get captures_performed
let reset_capture_count () = Atomic.set captures_performed 0

let capture_fresh pre =
  Atomic.incr captures_performed;
  Ilp_sim.Trace_buffer.capture pre

let store_key ~workload ~unroll ~level config pre =
  let unroll_mode, unroll_factor =
    match unroll with
    | None -> (`None, 1)
    | Some { Ilp.mode = Ilp_lang.Unroll.Naive; factor; bounds = false } ->
        (`Naive, factor)
    | Some { Ilp.mode = Ilp_lang.Unroll.Careful; factor; bounds = false } ->
        (`Careful, factor)
    | Some { Ilp.mode = Ilp_lang.Unroll.Naive; factor; bounds = true } ->
        (`Naive_bounded, factor)
    | Some { Ilp.mode = Ilp_lang.Unroll.Careful; factor; bounds = true } ->
        (`Careful_bounded, factor)
  in
  Store.key_for ~workload ~unroll_mode ~unroll_factor
    ~opt_level:(Ilp.level_rank level) ~config
    ~fingerprint:(Ilp_store.Fingerprint.program pre)

(* Resolve the trace for one capture group: look the key up in the
   store (when one is installed), fall back to a fresh capture on miss
   or rejection, and write fresh captures back best-effort.  Under
   [check] a hit is re-captured anyway and the stored trace must be
   {!Ilp_sim.Trace_buffer.equal} to the fresh one — the store's
   differential oracle.  Returns the trace and how it was obtained. *)
let trace_for ?(check = false) ~workload ~unroll ~level config pre =
  match !store with
  | None -> (`Off, capture_fresh pre)
  | Some s -> (
      let key = store_key ~workload ~unroll ~level config pre in
      let save_back trace =
        try Store.save s key (Ilp_sim.Trace_buffer.pack trace pre)
        with Sys_error msg ->
          !store_warn
            (Printf.sprintf "could not write %s: %s"
               (Ilp_store.Codec.describe_key key) msg)
      in
      let capture_and_save () =
        let trace = capture_fresh pre in
        save_back trace;
        trace
      in
      match Store.lookup s key with
      | Ok (Some packed) -> (
          match Ilp_sim.Trace_buffer.unpack packed pre with
          | trace ->
              if check then begin
                let fresh = capture_fresh pre in
                if not (Ilp_sim.Trace_buffer.equal trace fresh) then
                  raise
                    (Ilp_sim.Trace_buffer.Divergence
                       (Printf.sprintf
                          "stored trace for %s differs from a fresh capture"
                          (Ilp_store.Codec.describe_key key)))
              end;
              (`Hit, trace)
          | exception Ilp_sim.Trace_buffer.Divergence msg ->
              !store_warn
                (Printf.sprintf
                   "rejecting stored trace for %s (did not re-attach: %s); \
                    falling back to capture"
                   (Ilp_store.Codec.describe_key key) msg);
              (`Rejected, capture_and_save ()))
      | Ok None -> (`Miss, capture_and_save ())
      | Error msg ->
          !store_warn
            (Printf.sprintf "%s; falling back to capture" msg);
          (`Rejected, capture_and_save ()))

(* ------------------------------------------------------------------ *)
(* shared measurement helpers                                          *)

(* Resolve a workload's effective unrolling (Linpack ships unrolled 4x)
   and the matching source text. *)
let workload_source ?unroll (w : W.t) =
  let unroll =
    match unroll with
    | Some u -> u
    | None ->
        if w.W.default_unroll > 1 then
          Some
            { Ilp.mode = Ilp_lang.Unroll.Naive;
              factor = w.W.default_unroll;
              bounds = false;
            }
        else None
  in
  let source =
    match unroll with
    | Some { Ilp.mode = Ilp_lang.Unroll.Careful; _ } ->
        W.source_for_mode w `Careful
    | Some _ | None -> w.W.source
  in
  (unroll, source)

(* Measure one workload on one machine configuration, compiled at [level]
   with the workload's default unrolling. *)
let measure_workload ?(level = Ilp.O4) ?unroll (w : W.t) (config : Config.t) =
  let unroll, source = workload_source ?unroll w in
  Ilp.measure ?unroll ~level config source

(* ------------------------------------------------------------------ *)
(* the two-phase sweep plan                                            *)

(* One cell of a sweep: measure [rq_workload], compiled at [rq_level]
   with [rq_unroll] (already resolved against the workload's default),
   on [rq_config]. *)
type request = {
  rq_workload : W.t;
  rq_source : string;
  rq_unroll : Ilp.unroll_spec option;
  rq_level : Ilp.opt_level;
  rq_config : Config.t;
  rq_memdep : bool;
      (** schedule with static memory-dependence disambiguation *)
}

let request ?(level = Ilp.O4) ?unroll ?(memdep = false) (w : W.t)
    (config : Config.t) =
  let unroll, source = workload_source ?unroll w in
  { rq_workload = w; rq_source = source; rq_unroll = unroll;
    rq_level = level; rq_config = config; rq_memdep = memdep }

(* Cells that agree on everything the unscheduled compile depends on —
   workload, unrolling, level, and the register split (the only part of
   the configuration [Ilp.compile_unscheduled] reads) — share one
   pre-scheduled program and one captured trace.  [rq_memdep] is
   deliberately absent: disambiguation only changes phase 2, so the
   on/off cells of the memdep study share a single capture. *)
let capture_key r =
  ( r.rq_workload.W.name, r.rq_unroll, r.rq_level,
    r.rq_config.Config.temp_regs, r.rq_config.Config.home_regs )

(* Execute a sweep as an explicit two-phase plan:

   - phase 1: one capture job per distinct [capture_key] — compile the
     unscheduled program and run the functional interpreter once;
   - phase 2: one replay job per request — schedule the shared program
     for the request's configuration and replay the captured trace
     through a fresh [Timing.t].

   Both phases fan out over the engine's domain pool (serial without
   one).  Jobs share only immutable data (the pre-scheduled program and
   the trace buffer); every job builds its own simulator state, and each
   result is written at its request's index, so the output is
   bit-identical whatever the parallelism. *)
let run_sweep (requests : request array) : Metrics.run array =
  let group_of_key = Hashtbl.create 16 in
  let representatives = ref [] in
  let n_groups = ref 0 in
  Array.iter
    (fun r ->
      let key = capture_key r in
      if not (Hashtbl.mem group_of_key key) then begin
        Hashtbl.add group_of_key key !n_groups;
        representatives := r :: !representatives;
        incr n_groups
      end)
    requests;
  let check = !checks in
  let captures =
    par_map
      (fun r ->
        let pre =
          if check then
            Diffcheck.check_unscheduled ?unroll:r.rq_unroll ~level:r.rq_level
              r.rq_config r.rq_source
          else
            Ilp.compile_unscheduled ?unroll:r.rq_unroll ~level:r.rq_level
              r.rq_config r.rq_source
        in
        let _how, trace =
          trace_for ~check ~workload:r.rq_workload.W.name ~unroll:r.rq_unroll
            ~level:r.rq_level r.rq_config pre
        in
        (pre, trace))
      (Array.of_list (List.rev !representatives))
  in
  (* Phase 2 as segment chains: the first chunk schedules the binary and
     replays one segment; each later chunk resumes the checkpointed
     timing for one more segment.  Under the pool this turns a heavy
     replay from one indivisible task into work the scheduler can
     interleave with the rest of the sweep. *)
  let progress = function
    | `Done run -> Pool.Done run
    | `More sg -> Pool.More sg
  in
  par_map_chunked
    ~start:(fun r ->
      let pre, trace = captures.(Hashtbl.find group_of_key (capture_key r)) in
      let binary =
        Ilp.schedule ~check ~memdep:r.rq_memdep ~level:r.rq_level r.rq_config
          pre
      in
      progress (Metrics.replay_segmented_start r.rq_config trace binary))
    ~step:(fun sg -> progress (Metrics.replay_segmented_step sg))
    requests

(* Measure one workload on many machine configurations through the
   plan: one capture per register-split group, one replay per
   configuration. *)
let measure_workload_many ?level ?unroll (w : W.t) (configs : Config.t list) =
  Array.to_list
    (run_sweep
       (Array.of_list (List.map (request ?level ?unroll w) configs)))

let suite_speedups ?level config =
  List.map
    (fun w -> (measure_workload ?level w config).Metrics.speedup)
    Registry.all

let harmonic_suite ?level config =
  Metrics.harmonic_mean (suite_speedups ?level config)

(* Harmonic-mean suite speedup of each configuration: one flat sweep
   over (workload x configuration), so phase 1 is one capture per
   workload and phase 2 one replay per cell, all independent jobs.
   Result indexed like [configs]. *)
let harmonic_suite_many ?level (configs : Config.t list) : float array =
  let configs = Array.of_list configs in
  let nc = Array.length configs in
  let workloads = Array.of_list Registry.all in
  let requests =
    Array.init
      (Array.length workloads * nc)
      (fun k -> request ?level workloads.(k / nc) configs.(k mod nc))
  in
  let runs = run_sweep requests in
  Array.init nc (fun ic ->
      Metrics.harmonic_mean
        (List.init (Array.length workloads) (fun iw ->
             runs.((iw * nc) + ic).Metrics.speedup)))

let degrees = [ 1; 2; 3; 4; 5; 6; 7; 8 ]

(* ------------------------------------------------------------------ *)
(* Figure 1-1: instruction-level parallelism of two code fragments      *)

type fig1_1 = { parallel_fragment : float; serial_fragment : float }

let fig1_1 () =
  let open Ilp_ir in
  let r n = Reg.phys n in
  let parallel =
    [ Builder.ld (r 11) ~base:(r 2) ~offset:23;
      Builder.addi (r 3) (r 3) 1;
      Builder.fadd (r 14) (r 14) (r 13) ]
  in
  let serial =
    [ Builder.addi (r 3) (r 3) 1;
      Builder.add (r 4) (r 3) (r 2);
      Builder.st ~value:(r 10) ~base:(r 4) ~offset:0 () ]
  in
  { parallel_fragment = Ilp_sched.Ddg.available_parallelism parallel;
    serial_fragment = Ilp_sched.Ddg.available_parallelism serial;
  }

let render_fig1_1 () =
  let r = fig1_1 () in
  Report.section "Figure 1-1: instruction-level parallelism"
    (Report.table
       ~header:[ "fragment"; "parallelism" ]
       [ [ "(a) independent"; Printf.sprintf "%.2f" r.parallel_fragment ];
         [ "(b) serial chain"; Printf.sprintf "%.2f" r.serial_fragment ] ])

(* ------------------------------------------------------------------ *)
(* Figures 2-1 .. 2-7: machine-taxonomy pipeline diagrams               *)

let render_fig2_diagrams () =
  let stream n = Ilp_sim.Diagram.independent_instrs n in
  let diagrams =
    [ ("Figure 2-1: base machine", Presets.base, stream 8);
      ( "Figure 2-2/2-3: underpipelined (loads every other cycle)",
        Presets.underpipelined,
        Ilp_sim.Diagram.independent_instrs ~cls:`Mixed 8 );
      ("Figure 2-4: superscalar (n=3)", Presets.superscalar 3, stream 9);
      ( "Figure 2-6: superpipelined (m=3)",
        Presets.superpipelined 3,
        stream 6 );
      ( "Figure 2-7: superpipelined superscalar (n=3, m=3)",
        Presets.superpipelined_superscalar ~n:3 ~m:3,
        stream 9 ) ]
  in
  String.concat "\n"
    (List.map
       (fun (title, config, instrs) ->
         Report.section title (Ilp_sim.Diagram.render config instrs))
       diagrams)

(* ------------------------------------------------------------------ *)
(* Table 2-1: average degree of superpipelining                         *)

type table2_1_row = {
  machine : string;
  with_paper_mix : float;
  with_measured_mix : float;
}

(* The measured mix comes from executing the whole benchmark suite: one
   capture job per workload, fanned out over the pool. *)
let measured_frequencies () =
  let runs =
    run_sweep
      (Array.of_list
         (List.map (fun w -> request w Presets.base) Registry.all))
  in
  let totals = Array.make Ilp_ir.Iclass.count 0 in
  Array.iter
    (fun (run : Metrics.run) ->
      Array.iteri
        (fun i c -> totals.(i) <- totals.(i) + c)
        run.Metrics.class_counts)
    runs;
  let sum = float_of_int (Array.fold_left ( + ) 0 totals) in
  Array.map (fun c -> float_of_int c /. sum) totals

let table2_1 () =
  let machines = [ Presets.multititan; Presets.cray1 () ] in
  let measured = measured_frequencies () in
  List.map
    (fun config ->
      { machine = config.Config.name;
        with_paper_mix =
          Superpipelining.average_degree config
            Superpipelining.paper_frequencies;
        with_measured_mix = Superpipelining.average_degree config measured;
      })
    machines

let render_table2_1 () =
  let rows = table2_1 () in
  let body =
    Report.table
      ~header:[ "machine"; "avg degree (paper mix)"; "avg degree (measured mix)" ]
      (List.map
         (fun r ->
           [ r.machine;
             Printf.sprintf "%.2f" r.with_paper_mix;
             Printf.sprintf "%.2f" r.with_measured_mix ])
         rows)
  in
  Report.section
    "Table 2-1: average degree of superpipelining (paper: MultiTitan 1.7, CRAY-1 4.4)"
    body

(* ------------------------------------------------------------------ *)
(* Figure 4-1: supersymmetry                                            *)

type fig4_1 = {
  degree : int;
  superscalar : float;  (** harmonic-mean speedup *)
  superpipelined : float;
}

(* [`Replay] captures each workload once and replays it against all 16
   machine configurations; [`Direct] re-executes per configuration (kept
   for the bench harness's direct-vs-replay wall-clock comparison). *)
let fig4_1 ?(engine = `Replay) () =
  match engine with
  | `Direct ->
      List.map
        (fun d ->
          { degree = d;
            superscalar = harmonic_suite (Presets.superscalar d);
            superpipelined = harmonic_suite (Presets.superpipelined d);
          })
        degrees
  | `Replay ->
      let ss = List.map Presets.superscalar degrees in
      let sp = List.map Presets.superpipelined degrees in
      let means = harmonic_suite_many (ss @ sp) in
      List.mapi
        (fun k d ->
          { degree = d;
            superscalar = means.(k);
            superpipelined = means.(List.length degrees + k);
          })
        degrees

let render_fig4_1 () =
  let rows = fig4_1 () in
  let chart =
    Report.line_chart ~x_label:"degree" ~y_label:"speedup (harmonic mean)"
      [ { Report.label = 'S';
          points =
            List.map (fun r -> (float_of_int r.degree, r.superscalar)) rows
        };
        { Report.label = 'P';
          points =
            List.map (fun r -> (float_of_int r.degree, r.superpipelined)) rows
        } ]
  in
  let body =
    Report.table
      ~header:[ "degree"; "superscalar"; "superpipelined" ]
      (List.map
         (fun r ->
           [ string_of_int r.degree;
             Printf.sprintf "%.3f" r.superscalar;
             Printf.sprintf "%.3f" r.superpipelined ])
         rows)
  in
  Report.section
    "Figure 4-1: supersymmetry (S = superscalar, P = superpipelined)"
    (body ^ "\n\n" ^ chart)

(* ------------------------------------------------------------------ *)
(* Figure 4-2: start-up transient                                        *)

let render_fig4_2 () =
  let instrs = Ilp_sim.Diagram.independent_instrs 6 in
  let ss = Ilp_sim.Diagram.render (Presets.superscalar 3) instrs in
  let sp = Ilp_sim.Diagram.render (Presets.superpipelined 3) instrs in
  Report.section
    "Figure 4-2: start-up in superscalar vs superpipelined (6 independent instructions)"
    ("superscalar degree 3:\n" ^ ss ^ "\nsuperpipelined degree 3:\n" ^ sp)

(* ------------------------------------------------------------------ *)
(* Figure 4-3: parallelism required for full utilization                *)

let fig4_3 ?(max_n = 5) ?(max_m = 5) () =
  List.map
    (fun m -> List.map (fun n -> n * m) (List.init max_n (fun i -> i + 1)))
    (List.rev (List.init max_m (fun i -> i + 1)))

let render_fig4_3 () =
  let grid = fig4_3 () in
  let rows =
    List.mapi
      (fun i row ->
        string_of_int (5 - i)
        :: List.map string_of_int row)
      grid
  in
  let body =
    Report.table ~header:[ "m\\n"; "1"; "2"; "3"; "4"; "5" ] rows
  in
  Report.section
    "Figure 4-3: instruction-level parallelism required for full utilization (n*m)"
    (body
   ^ "\n(MultiTitan avg degree ~1.7 on the m axis; CRAY-1 ~4.4: multiple\n\
      issue would need parallelism that slightly-parallel code lacks)")

(* ------------------------------------------------------------------ *)
(* Figure 4-4: CRAY-1, parallel issue with unit vs real latencies        *)

type fig4_4 = { multiplicity : int; unit_latency : float; real_latency : float }

let fig4_4 () =
  let unit = List.map (fun n -> Presets.cray1_unit_latencies ~issue_width:n ()) degrees in
  let real = List.map (fun n -> Presets.cray1 ~issue_width:n ()) degrees in
  let means = harmonic_suite_many (unit @ real) in
  List.mapi
    (fun k n ->
      { multiplicity = n;
        unit_latency = means.(k);
        real_latency = means.(List.length degrees + k);
      })
    degrees

let render_fig4_4 () =
  let rows = fig4_4 () in
  let chart =
    Report.line_chart ~x_label:"instruction issue multiplicity"
      ~y_label:"speedup vs 1-issue of same machine"
      [ { Report.label = 'U';
          points =
            List.map
              (fun r -> (float_of_int r.multiplicity, r.unit_latency))
              rows
        };
        { Report.label = 'R';
          points =
            List.map
              (fun r -> (float_of_int r.multiplicity, r.real_latency))
              rows
        } ]
  in
  let base_unit = (List.hd rows).unit_latency in
  let base_real = (List.hd rows).real_latency in
  let body =
    Report.table
      ~header:
        [ "issue width"; "all latencies = 1 (speedup)";
          "actual CRAY-1 latencies (speedup)" ]
      (List.map
         (fun r ->
           [ string_of_int r.multiplicity;
             Printf.sprintf "%.3f" (r.unit_latency /. base_unit);
             Printf.sprintf "%.3f" (r.real_latency /. base_real) ])
         rows)
  in
  Report.section
    "Figure 4-4: parallel issue on the CRAY-1 with unit (U) and real (R) latencies"
    (body ^ "\n\n" ^ chart)

(* ------------------------------------------------------------------ *)
(* Figure 4-5: instruction-level parallelism by benchmark                *)

type fig4_5 = { bench : string; by_degree : (int * float) list }

let fig4_5 () =
  let configs = Array.of_list (List.map Presets.superscalar degrees) in
  let nc = Array.length configs in
  let workloads = Array.of_list Registry.all in
  let requests =
    Array.init
      (Array.length workloads * nc)
      (fun k -> request workloads.(k / nc) configs.(k mod nc))
  in
  let runs = run_sweep requests in
  List.mapi
    (fun iw (w : W.t) ->
      { bench = w.W.name;
        by_degree =
          List.mapi (fun ic d -> (d, runs.((iw * nc) + ic).Metrics.speedup))
            degrees;
      })
    (Array.to_list workloads)

let render_fig4_5 () =
  let rows = fig4_5 () in
  let header = "benchmark" :: List.map string_of_int degrees in
  let body =
    Report.table ~header
      (List.map
         (fun r ->
           r.bench
           :: List.map (fun (_, s) -> Printf.sprintf "%.2f" s) r.by_degree)
         rows)
  in
  Report.section
    "Figure 4-5: parallelism by benchmark on ideal superscalar machines"
    body

(* ------------------------------------------------------------------ *)
(* Figure 4-6: parallelism vs loop unrolling                             *)

(* The unrolling study uses the forty temporary registers the paper
   mentions, and measures parallelism on a wide ideal superscalar
   machine. *)
let unroll_config = Config.make "ss16-40temps" ~issue_width:16 ~temp_regs:40

type fig4_6_series = {
  bench : string;
  mode : Ilp_lang.Unroll.mode;
  by_factor : (int * float) list;
}

let unroll_factors = [ 1; 2; 4; 6; 8; 10 ]

(* Every (benchmark, mode, factor) cell is its own capture (the
   unrolling changes the compiled program), so the whole grid fans out
   in phase 1 and phase 2 is one replay per capture. *)
let fig4_6 () =
  let series =
    List.concat_map
      (fun bench_name ->
        let w =
          match Registry.find bench_name with
          | Some w -> w
          | None -> invalid_arg ("fig4_6: unknown benchmark " ^ bench_name)
        in
        List.map
          (fun mode -> (bench_name, w, mode))
          [ Ilp_lang.Unroll.Naive; Ilp_lang.Unroll.Careful ])
      [ "linpack"; "livermore" ]
  in
  let series_arr = Array.of_list series in
  let factors = Array.of_list unroll_factors in
  let nf = Array.length factors in
  let requests =
    Array.init
      (Array.length series_arr * nf)
      (fun k ->
        let _, w, mode = series_arr.(k / nf) in
        let unroll =
          Some { Ilp.mode; factor = factors.(k mod nf); bounds = false }
        in
        request ~unroll w unroll_config)
  in
  let runs = run_sweep requests in
  List.mapi
    (fun is (bench, _, mode) ->
      { bench;
        mode;
        by_factor =
          List.mapi
            (fun ifc factor ->
              (factor, runs.((is * nf) + ifc).Metrics.speedup))
            unroll_factors;
      })
    series

let render_fig4_6 () =
  let rows = fig4_6 () in
  let mode_name = function
    | Ilp_lang.Unroll.Naive -> "naive"
    | Ilp_lang.Unroll.Careful -> "careful"
  in
  let header =
    "series" :: List.map string_of_int unroll_factors
  in
  let body =
    Report.table ~header
      (List.map
         (fun r ->
           (r.bench ^ "." ^ mode_name r.mode)
           :: List.map (fun (_, s) -> Printf.sprintf "%.2f" s) r.by_factor)
         rows)
  in
  let labels = [ 'l'; 'L'; 'v'; 'V' ] in
  let chart =
    Report.line_chart ~x_label:"iterations unrolled" ~y_label:"parallelism"
      (List.mapi
         (fun i r ->
           { Report.label = List.nth labels (i mod 4);
             points =
               List.map (fun (f, s) -> (float_of_int f, s)) r.by_factor
           })
         rows)
  in
  Report.section
    "Figure 4-6: parallelism vs loop unrolling (l/L = linpack naive/careful, v/V = livermore)"
    (body ^ "\n\n" ^ chart)

(* ------------------------------------------------------------------ *)
(* Figure 4-5/4-6 variant: bound-aware unrolling                        *)

(* The same machine and factor grid as Figure 4-6, with a third curve
   per benchmark: careful unrolling with bound analysis on, so loops
   with statically known trip counts are fully unrolled (short ones) or
   peeled (the rest) and no remainder loop survives.  Benchmarks whose
   bounds stay symbolic (linpack's parameterised kernels) degrade to the
   classic transform, which is the point of plotting them next to the
   constant-bound workloads. *)

type unroll_study_row = {
  us_bench : string;
  us_series : string;  (** "naive", "careful" or "careful-peel" *)
  us_by_factor : (int * float) list;
}

let unroll_study_series =
  [ (Ilp_lang.Unroll.Naive, false, "naive");
    (Ilp_lang.Unroll.Careful, false, "careful");
    (Ilp_lang.Unroll.Careful, true, "careful-peel") ]

let unroll_study () =
  let workloads =
    Array.of_list
      (List.filter_map Registry.find [ "linpack"; "livermore"; "smooth" ])
  in
  let series = Array.of_list unroll_study_series in
  let factors = Array.of_list unroll_factors in
  let nf = Array.length factors and ns = Array.length series in
  let requests =
    Array.init
      (Array.length workloads * ns * nf)
      (fun k ->
        let w = workloads.(k / (ns * nf)) in
        let mode, bounds, _ = series.(k mod (ns * nf) / nf) in
        let unroll =
          Some { Ilp.mode; factor = factors.(k mod nf); bounds }
        in
        request ~unroll w unroll_config)
  in
  let runs = run_sweep requests in
  List.concat
    (List.mapi
       (fun iw (w : W.t) ->
         List.mapi
           (fun is (_, _, name) ->
             { us_bench = w.W.name;
               us_series = name;
               us_by_factor =
                 List.mapi
                   (fun ifc factor ->
                     ( factor,
                       runs.((iw * ns * nf) + (is * nf) + ifc)
                         .Metrics.speedup ))
                   unroll_factors;
             })
           unroll_study_series)
       (Array.to_list workloads))

let render_unroll_study () =
  let rows = unroll_study () in
  let header = "series" :: List.map string_of_int unroll_factors in
  let body =
    Report.table ~header
      (List.map
         (fun r ->
           (r.us_bench ^ "." ^ r.us_series)
           :: List.map
                (fun (_, s) -> Printf.sprintf "%.2f" s)
                r.us_by_factor)
         rows)
  in
  Report.section
    "Figure 4-5/4-6 variant: bound-aware unrolling (full unroll + peeling \
     vs classic remainder loops)"
    body

(* ------------------------------------------------------------------ *)
(* Figure 4-7: optimization can add or subtract parallelism              *)

type fig4_7 = {
  original : float;
  branch_optimized : float;  (** one branch of the expression shrunk *)
  bottleneck_optimized : float;  (** the critical chain shrunk *)
}

(* Expression graphs built as straight-line code: a critical chain of
   six operations plus an independent side computation of four.
   Optimizing the side computation removes work without shortening the
   critical path (parallelism falls); optimizing the bottleneck chain
   shortens the path (parallelism rises). *)
let fig4_7 () =
  let open Ilp_ir in
  let r n = Reg.phys n in
  let chain ~start ~len ~into =
    List.init len (fun k ->
        if k = 0 then Builder.addi (r (into + k)) (r start) 1
        else Builder.addi (r (into + k)) (r (into + k - 1)) 1)
  in
  let side ~start ~len ~into = chain ~start ~len ~into in
  let join a b dst = Builder.add (r dst) (r a) (r b) in
  (* original: 5-op critical chain, 4-op side chain, 1 join = 10 ops,
     critical path 6 *)
  let original =
    chain ~start:4 ~len:5 ~into:20
    @ side ~start:5 ~len:4 ~into:40
    @ [ join 24 43 60 ]
  in
  (* optimize the side computation down to 2 ops: 8 ops, path still 6 *)
  let branch_opt =
    chain ~start:4 ~len:5 ~into:20
    @ side ~start:5 ~len:2 ~into:40
    @ [ join 24 41 60 ]
  in
  (* optimize the bottleneck chain down to 3 ops: 6 ops, path 4 *)
  let bottleneck_opt =
    chain ~start:4 ~len:3 ~into:20
    @ side ~start:5 ~len:2 ~into:40
    @ [ join 22 41 60 ]
  in
  { original = Ilp_sched.Ddg.available_parallelism original;
    branch_optimized = Ilp_sched.Ddg.available_parallelism branch_opt;
    bottleneck_optimized = Ilp_sched.Ddg.available_parallelism bottleneck_opt;
  }

let render_fig4_7 () =
  let r = fig4_7 () in
  Report.section
    "Figure 4-7: parallelism vs compiler optimizations (paper: 1.67 / 1.33 / 1.50)"
    (Report.table
       ~header:[ "expression graph"; "parallelism" ]
       [ [ "original"; Printf.sprintf "%.2f" r.original ];
         [ "one branch optimized"; Printf.sprintf "%.2f" r.branch_optimized ];
         [ "bottleneck optimized";
           Printf.sprintf "%.2f" r.bottleneck_optimized ] ])

(* ------------------------------------------------------------------ *)
(* Figure 4-8: effect of optimization level on parallelism               *)

type fig4_8 = { bench : string; by_level : (Ilp.opt_level * float) list }

let parallelism_config = Presets.superscalar 8

(* Each (benchmark, level) cell compiles differently, so each is its own
   capture job; the grid fans out across the pool. *)
let fig4_8 () =
  let levels = Array.of_list Ilp.all_levels in
  let nl = Array.length levels in
  let workloads = Array.of_list Registry.all in
  let requests =
    Array.init
      (Array.length workloads * nl)
      (fun k ->
        request ~level:levels.(k mod nl) workloads.(k / nl)
          parallelism_config)
  in
  let runs = run_sweep requests in
  List.mapi
    (fun iw (w : W.t) ->
      { bench = w.W.name;
        by_level =
          List.mapi
            (fun il level -> (level, runs.((iw * nl) + il).Metrics.speedup))
            Ilp.all_levels;
      })
    (Array.to_list workloads)

let render_fig4_8 () =
  let rows = fig4_8 () in
  let header =
    "benchmark" :: List.map Ilp.opt_level_name Ilp.all_levels
  in
  let body =
    Report.table ~header
      (List.map
         (fun r ->
           r.bench
           :: List.map (fun (_, s) -> Printf.sprintf "%.2f" s) r.by_level)
         rows)
  in
  Report.section
    "Figure 4-8: effect of optimization on parallelism (ideal superscalar degree 8)"
    body

(* ------------------------------------------------------------------ *)
(* Table 5-1: the cost of cache misses                                   *)

type table5_1_row = {
  machine : string;
  cycles_per_instr : float;
  cycle_ns : float;
  memory_ns : float;
  miss_cost_cycles : float;
  miss_cost_instrs : float;
}

let table5_1 () =
  let row machine cycles_per_instr cycle_ns memory_ns =
    let miss_cost_cycles = memory_ns /. cycle_ns in
    { machine; cycles_per_instr; cycle_ns; memory_ns; miss_cost_cycles;
      miss_cost_instrs = miss_cost_cycles /. cycles_per_instr;
    }
  in
  [ row "VAX 11/780" 10.0 200.0 1200.0;
    row "WRL Titan" 1.4 45.0 540.0;
    row "future superscalar" 0.5 5.0 350.0 ]

let render_table5_1 () =
  let rows = table5_1 () in
  Report.section
    "Table 5-1: the cost of cache misses (paper: 0.6 / 8.6 / 140 instruction times)"
    (Report.table
       ~header:
         [ "machine"; "cycles/instr"; "cycle (ns)"; "mem (ns)";
           "miss cost (cycles)"; "miss cost (instrs)" ]
       (List.map
          (fun r ->
            [ r.machine;
              Printf.sprintf "%.1f" r.cycles_per_instr;
              Printf.sprintf "%.0f" r.cycle_ns;
              Printf.sprintf "%.0f" r.memory_ns;
              Printf.sprintf "%.0f" r.miss_cost_cycles;
              Printf.sprintf "%.1f" r.miss_cost_instrs ])
          rows))

(* ------------------------------------------------------------------ *)
(* Section 5.1: cache misses dilute the benefit of parallel issue        *)

type sec5_1 = {
  analytic_improvement_with_cache : float;  (** paper: 33% *)
  analytic_improvement_no_cache : float;  (** paper: 100% *)
  simulated_speedup_no_cache : float;
  simulated_speedup_with_cache : float;
  simulated_miss_rate : float;
}

let sec5_1 () =
  (* analytic worked example straight from the paper *)
  let base_cpi = 1.0 and miss_cpi = 1.0 in
  let issue_cpi_parallel = 0.5 in
  let with_cache =
    (1.0 /. (issue_cpi_parallel +. miss_cpi)) /. (1.0 /. (base_cpi +. miss_cpi))
  in
  let no_cache = (1.0 /. issue_cpi_parallel) /. (1.0 /. base_cpi) in
  (* simulated counterpart on a real benchmark *)
  let w =
    match Registry.find "stanford" with
    | Some w -> w
    | None -> invalid_arg "sec5_1"
  in
  let run config cache =
    let source = w.W.source in
    let program = Ilp.compile ~level:Ilp.O4 config source in
    Metrics.measure ?cache config program
  in
  let narrow = Presets.base in
  let wide = Presets.superscalar 3 in
  let fresh_cache () = Some (Ilp_sim.Cache.create ~lines:64 ~line_words:4 ~penalty:12 ()) in
  let narrow_nc = run narrow None in
  let wide_nc = run wide None in
  let narrow_c = run narrow (fresh_cache ()) in
  let wide_c = run wide (fresh_cache ()) in
  { analytic_improvement_with_cache = (with_cache -. 1.0) *. 100.0;
    analytic_improvement_no_cache = (no_cache -. 1.0) *. 100.0;
    simulated_speedup_no_cache =
      wide_nc.Metrics.speedup /. narrow_nc.Metrics.speedup;
    simulated_speedup_with_cache =
      narrow_c.Metrics.base_cycles /. wide_c.Metrics.base_cycles;
    simulated_miss_rate =
      (* re-measure the miss rate on its own cache *)
      (let cache = Ilp_sim.Cache.create ~lines:64 ~line_words:4 ~penalty:12 () in
       let program = Ilp.compile ~level:Ilp.O4 narrow w.W.source in
       ignore (Metrics.measure ~cache narrow program);
       Ilp_sim.Cache.miss_rate cache);
  }

let render_sec5_1 () =
  let r = sec5_1 () in
  Report.section
    "Section 5.1: cache misses dilute parallel issue (paper: 33% vs 100%)"
    (Report.table
       ~header:[ "quantity"; "value" ]
       [ [ "analytic improvement, 3-issue, with cache burden";
           Printf.sprintf "%.0f%%" r.analytic_improvement_with_cache ];
         [ "analytic improvement, 3-issue, no cache burden";
           Printf.sprintf "%.0f%%" r.analytic_improvement_no_cache ];
         [ "simulated 3-issue speedup, no cache";
           Printf.sprintf "%.2fx" r.simulated_speedup_no_cache ];
         [ "simulated 3-issue speedup, blocking cache";
           Printf.sprintf "%.2fx" r.simulated_speedup_with_cache ];
         [ "simulated miss rate";
           Printf.sprintf "%.1f%%" (r.simulated_miss_rate *. 100.0) ] ])

(* ------------------------------------------------------------------ *)
(* Ablations called out in DESIGN.md                                     *)

(* Temp-pool sweep: the finite temp partition caps unrolled parallelism. *)
type ablation_temps_row = { temps : int; parallelism : float }

(* Every temp count is a different register split, hence its own capture
   job; the sweep is one parallel phase of captures plus their
   replays. *)
let ablation_temps () =
  let w =
    match Registry.find "linpack" with
    | Some w -> w
    | None -> invalid_arg "ablation_temps"
  in
  let temp_counts = [ 6; 8; 12; 16; 24; 32; 40; 56 ] in
  let unroll =
    Some { Ilp.mode = Ilp_lang.Unroll.Careful; factor = 10; bounds = false }
  in
  let requests =
    Array.of_list
      (List.map
         (fun temps ->
           let config =
             Config.make
               (Printf.sprintf "ss16-%dtemps" temps)
               ~issue_width:16 ~temp_regs:temps
           in
           request ~unroll w config)
         temp_counts)
  in
  let runs = run_sweep requests in
  List.mapi
    (fun k temps -> { temps; parallelism = runs.(k).Metrics.speedup })
    temp_counts

let render_ablation_temps () =
  let rows = ablation_temps () in
  Report.section
    "Ablation: temporary-register count vs parallelism (linpack, careful 10x)"
    (Report.table
       ~header:[ "temps"; "parallelism" ]
       (List.map
          (fun r ->
            [ string_of_int r.temps; Printf.sprintf "%.2f" r.parallelism ])
          rows))

(* Class conflicts: ideal superscalar vs one with single-copy units. *)
type ablation_conflicts_row = { degree : int; ideal : float; conflicts : float }

let ablation_class_conflicts () =
  let ds = [ 1; 2; 4; 8 ] in
  let ideal = List.map Presets.superscalar ds in
  let conflicted = List.map Presets.superscalar_with_class_conflicts ds in
  let means = harmonic_suite_many (ideal @ conflicted) in
  List.mapi
    (fun k d ->
      { degree = d;
        ideal = means.(k);
        conflicts = means.(List.length ds + k);
      })
    ds

let render_ablation_class_conflicts () =
  let rows = ablation_class_conflicts () in
  Report.section
    "Ablation: class conflicts (Section 2.3.2) - ideal vs single-copy functional units"
    (Report.table
       ~header:[ "degree"; "ideal"; "with class conflicts" ]
       (List.map
          (fun r ->
            [ string_of_int r.degree;
              Printf.sprintf "%.3f" r.ideal;
              Printf.sprintf "%.3f" r.conflicts ])
          rows))

(* ------------------------------------------------------------------ *)
(* Figure 2-8 and the Section 2.3 vector-equivalence argument            *)

let render_fig2_8 () =
  let picture =
    Ilp_sim.Diagram.render_vector ~vector_length:8
      [ "vload"; "vadd"; "vstore" ]
  in
  Report.section
    "Figure 2-8: execution in a vector machine (chained, one element per cycle)"
    picture

(* "A superscalar machine that can issue a fixed-point, floating-point,
   load, and a branch all in one cycle achieves the same effective
   parallelism" as a chained vector unit: one element per cycle. *)
type sec2_3_vector = {
  base_cycles_per_element : float;
  superscalar_cycles_per_element : float;
}

(* the paper's example: a vector load chained into a vector add — per
   element one load, one FP add, one fixed-point add and a branch.  The
   reduction runs many times so the one-time setup is amortized. *)
let vector_loop_source =
  {|
arr vx : real[512];
fun main() {
  var i : int;
  var rep : int;
  var s : real = 0.0;
  for (i = 0; i < 512; i = i + 1) { vx[i] = real(i % 7) * 0.5; }
  for (rep = 0; rep < 16; rep = rep + 1) {
    for (i = 0; i < 512; i = i + 1) {
      s = s + vx[i];
    }
  }
  sink(s);
}
|}

let sec2_3_vector () =
  let elements = 16.0 *. 512.0 in
  let cycles config =
    let r = Ilp.measure ~level:Ilp.O4 config vector_loop_source in
    r.Metrics.base_cycles
  in
  (* a 4-issue machine with one unit each for fixed-point, FP, memory
     and control: exactly the paper's hypothetical *)
  let one_unit name classes =
    { Config.unit_name = name; classes; issue_latency = 1; multiplicity = 1 }
  in
  let vector_equiv =
    Config.make "vector-equivalent" ~issue_width:4
      ~units:
        (let open Ilp_ir in
         [ one_unit "fixed"
             [ Iclass.Logical; Iclass.Shift; Iclass.Add_sub; Iclass.Move;
               Iclass.Int_mul; Iclass.Int_div ];
           one_unit "fp"
             [ Iclass.Fp_add; Iclass.Fp_mul; Iclass.Fp_div; Iclass.Fp_cvt ];
           one_unit "mem" [ Iclass.Load; Iclass.Store ];
           one_unit "ctl" [ Iclass.Branch; Iclass.Jump ] ])
  in
  { base_cycles_per_element = cycles Presets.base /. elements;
    superscalar_cycles_per_element = cycles vector_equiv /. elements;
  }

let render_sec2_3_vector () =
  let r = sec2_3_vector () in
  Report.section
    "Section 2.3: superscalar equivalence with a chained vector unit"
    (Report.table
       ~header:[ "machine"; "cycles per vector element" ]
       [ [ "base (1 issue)";
           Printf.sprintf "%.2f" r.base_cycles_per_element ];
         [ "4-issue, one fixed/FP/mem/ctl unit each";
           Printf.sprintf "%.2f" r.superscalar_cycles_per_element ] ]
    ^ "\n(a chained vector machine sustains 1.0 element per cycle; the\n\
       4-issue superscalar with one unit per kind approaches that rate,\n\
       held just above it by the loop's second control transfer, the\n\
       back-edge jump our compiler does not rotate away)")

(* ------------------------------------------------------------------ *)
(* Issue-width histogram (extension: where do the issue slots go?)      *)

type issue_histogram = { bench : string; buckets : float array }

let issue_histogram ?(width = 4) () =
  let config = Presets.superscalar width in
  List.map
    (fun w ->
      let unroll, source = workload_source w in
      let program = Ilp.compile ?unroll ~level:Ilp.O4 config source in
      let timing = Ilp_sim.Timing.create config in
      let _ =
        Ilp_sim.Exec.run ~observer:(Ilp_sim.Timing.observer timing) program
      in
      Ilp_sim.Timing.finish timing;
      let total =
        float_of_int
          (Array.fold_left ( + ) 0 timing.Ilp_sim.Timing.issue_histogram)
      in
      { bench = w.W.name;
        buckets =
          Array.map
            (fun c -> 100.0 *. float_of_int c /. total)
            timing.Ilp_sim.Timing.issue_histogram;
      })
    Registry.all

let render_issue_histogram () =
  let rows = issue_histogram () in
  let width = Array.length (List.hd rows).buckets - 1 in
  let header =
    "benchmark" :: List.init (width + 1) (fun k -> Printf.sprintf "%d/cyc" k)
  in
  Report.section
    "Extension: issue-width histogram (ideal superscalar degree 4, % of cycles)"
    (Report.table ~header
       (List.map
          (fun r ->
            r.bench
            :: Array.to_list
                 (Array.map (fun p -> Printf.sprintf "%.0f%%" p) r.buckets))
          rows))

(* ------------------------------------------------------------------ *)
(* Branch ablation (DESIGN.md decision 2)                                *)

type ablation_branch_row = {
  degree : int;
  issue_past_branches : float;
  branch_ends_packet : float;
}

let ablation_branch () =
  let ds = [ 1; 2; 4; 8 ] in
  let free = List.map Presets.superscalar ds in
  let limited =
    List.map
      (fun d ->
        Config.make
          (Printf.sprintf "superscalar-%d-bep" d)
          ~issue_width:d ~branch_ends_packet:true)
      ds
  in
  let means = harmonic_suite_many (free @ limited) in
  List.mapi
    (fun k d ->
      { degree = d;
        issue_past_branches = means.(k);
        branch_ends_packet = means.(List.length ds + k);
      })
    ds

let render_ablation_branch () =
  let rows = ablation_branch () in
  Report.section
    "Ablation: issuing past branches (perfect prediction) vs branches ending the packet"
    (Report.table
       ~header:[ "degree"; "issue past branches"; "branch ends packet" ]
       (List.map
          (fun r ->
            [ string_of_int r.degree;
              Printf.sprintf "%.3f" r.issue_past_branches;
              Printf.sprintf "%.3f" r.branch_ends_packet ])
          rows))

(* ------------------------------------------------------------------ *)
(* Extension: static memory disambiguation (alias-aware scheduling)     *)

type memdep_row = {
  md_bench : string;
  md_degree : int;
  md_conservative : float;  (** speedup, every memory pair serialized *)
  md_disambiguated : float;  (** speedup with proven-no-alias edges pruned *)
}

let memdep_degrees = [ 1; 2; 4; 8 ]

(* Memory-heavy workloads: the in-place neighbour-relaxation kernel
   built for this study plus the paper's two numeric array benchmarks.
   Each (workload, degree) cell is measured twice — conservative and
   alias-disambiguated scheduling — off one shared capture per workload,
   since [rq_memdep] is not part of the capture key. *)
let memdep_study () =
  let workloads =
    Array.of_list
      (List.filter_map Registry.find [ "smooth"; "linpack"; "livermore" ])
  in
  let ds = Array.of_list memdep_degrees in
  let nd = Array.length ds in
  let requests =
    Array.init
      (Array.length workloads * nd * 2)
      (fun k ->
        let w = workloads.(k / (nd * 2)) in
        let d = ds.(k mod (nd * 2) / 2) in
        request ~memdep:(k mod 2 = 1) w (Presets.superscalar d))
  in
  let runs = run_sweep requests in
  List.concat
    (List.mapi
       (fun iw (w : W.t) ->
         List.mapi
           (fun id d ->
             let cell = (iw * nd * 2) + (id * 2) in
             { md_bench = w.W.name;
               md_degree = d;
               md_conservative = runs.(cell).Metrics.speedup;
               md_disambiguated = runs.(cell + 1).Metrics.speedup;
             })
           memdep_degrees)
       (Array.to_list workloads))

let render_memdep () =
  let rows = memdep_study () in
  Report.section
    "Extension: static memory disambiguation (conservative vs alias-aware scheduling)"
    (Report.table
       ~header:
         [ "benchmark"; "degree"; "conservative"; "disambiguated"; "gain" ]
       (List.map
          (fun r ->
            [ r.md_bench;
              string_of_int r.md_degree;
              Printf.sprintf "%.3f" r.md_conservative;
              Printf.sprintf "%.3f" r.md_disambiguated;
              Printf.sprintf "%+.1f%%"
                (100.0 *. ((r.md_disambiguated /. r.md_conservative) -. 1.0))
            ])
          rows))

(* ------------------------------------------------------------------ *)
(* What the value-range tier of the disambiguation buys (extension)     *)

type rangedep_row = {
  rd_bench : string;
  rd_pairs : int;  (** same-block memory pairs with at least one store *)
  rd_pruned_sym : int;
      (** DDG edges pruned with the symbolic tiers alone
          ([Memdep.analyze ~ranges:false]) *)
  rd_pruned_rng : int;  (** edges pruned with the range tier enabled *)
  rd_sink_equal : bool;
      (** the range-sharpened and range-free schedules leave the same
          checksum in the sink cell *)
}

(* Per workload (at its shipped unroll factor): sum [Memdep.func_stats]
   over every compiled function with and without the value-range tier,
   and run the two resulting superscalar-4 schedules to the sink.  The
   range tier can only add [No_alias] verdicts on top of the symbolic
   tiers, so [rd_pruned_rng >= rd_pruned_sym] must hold everywhere —
   the bench harness enforces that, strict improvement somewhere, and
   checksum equality when it writes BENCH_rangedep.json. *)
let rangedep_study () =
  List.map
    (fun (w : W.t) ->
      let unroll =
        if w.W.default_unroll > 1 then
          Some
            { Ilp.mode = Ilp_lang.Unroll.Naive;
              factor = w.W.default_unroll;
              bounds = false;
            }
        else None
      in
      let program =
        Ilp.compile_unscheduled ?unroll ~level:Ilp.O4 Presets.base w.W.source
      in
      let tally ranges =
        List.fold_left
          (fun (pairs, pruned) f ->
            let s =
              Ilp_analysis.Memdep.func_stats
                (Ilp_analysis.Memdep.analyze ~ranges f)
                f
            in
            ( pairs + s.Ilp_analysis.Memdep.pairs,
              pruned + s.Ilp_analysis.Memdep.pruned ))
          (0, 0) program.Ilp_ir.Program.functions
      in
      let pairs, pruned_sym = tally false in
      let _, pruned_rng = tally true in
      let sink ranges =
        let p =
          Ilp.compile ?unroll ~memdep:true ~ranges ~level:Ilp.O4
            (Presets.superscalar 4) w.W.source
        in
        (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink
      in
      { rd_bench = w.W.name;
        rd_pairs = pairs;
        rd_pruned_sym = pruned_sym;
        rd_pruned_rng = pruned_rng;
        rd_sink_equal = sink false = sink true;
      })
    (Registry.all @ Registry.extras)

(* ------------------------------------------------------------------ *)
(* Static per-loop ILP bounds vs measured ILP (extension)               *)

(* For each (benchmark, machine) cell, compile the scheduled binary,
   derive static recurrence and resource bounds for every innermost
   loop (Static_bound), then run the program ONCE with the timing
   observer and the loop-iteration counter attached to the same
   functional pass.  The static bounds give a lower bound on minor
   cycles — and hence an upper bound on ILP — that the measured run
   must respect: the experiment hard-fails if measured cycles ever dip
   below the static floor, making every rendering of this figure a
   soundness check of the bound derivation.

   Trace replay does not drive instruction observers, so this study
   measures directly (one execution per cell) rather than through the
   capture/replay sweep machinery. *)

type static_bound_row = {
  sb_bench : string;
  sb_machine : string;
  sb_loops : int;  (** innermost loops with a nonzero recurrence bound *)
  sb_measured_cycles : int;
  sb_floor_cycles : int;
  sb_measured_ilp : float;
  sb_ceiling_ilp : float;
      (** dynamic instructions per base cycle if the run took exactly
          the static floor *)
}

let static_bounds_presets () =
  [ Presets.superscalar 4;
    Presets.superscalar 8;
    Presets.multititan;
    Presets.cray1 () ]

let static_bounds_cell config (w : W.t) =
  let unroll, source = workload_source w in
  let program = Ilp.compile ?unroll ~memdep:true ~level:Ilp.O4 config source in
  let sb = Ilp_sched.Static_bound.analyze config program in
  let counters = Ilp_sched.Static_bound.counters sb in
  let timing = Ilp_sim.Timing.create config in
  let outcome =
    Ilp_sim.Exec.run
      ~observers:
        [ Ilp_sim.Timing.observer timing;
          Ilp_sched.Static_bound.observer counters ]
      program
  in
  Ilp_sim.Timing.finish timing;
  let measured = Ilp_sim.Timing.minor_cycles timing in
  let floor =
    Ilp_sched.Static_bound.cycles_lb config sb counters
      ~dyn_instrs:outcome.Ilp_sim.Exec.dyn_instrs
      ~class_counts:outcome.Ilp_sim.Exec.class_counts
  in
  if measured < floor then
    failwith
      (Printf.sprintf
         "static bound unsound: %s on %s measured %d minor cycles < static \
          floor %d"
         w.W.name config.Config.name measured floor);
  let per_base cycles =
    float_of_int outcome.Ilp_sim.Exec.dyn_instrs
    *. float_of_int config.Config.pipe_degree
    /. float_of_int (max 1 cycles)
  in
  { sb_bench = w.W.name;
    sb_machine = config.Config.name;
    sb_loops =
      List.length
        (List.filter
           (fun (b : Ilp_sched.Static_bound.loop_bound) ->
             b.Ilp_sched.Static_bound.sb_recurrence > 0
             && Ilp_sched.Static_bound.traversals counters b > 0)
           sb.Ilp_sched.Static_bound.bounds);
    sb_measured_cycles = measured;
    sb_floor_cycles = floor;
    sb_measured_ilp = per_base measured;
    sb_ceiling_ilp = per_base floor;
  }

let static_bounds () =
  List.concat_map
    (fun config -> List.map (static_bounds_cell config) Registry.all)
    (static_bounds_presets ())

let render_static_bounds () =
  let rows = static_bounds () in
  Report.section
    "Extension: static per-loop ILP bounds (measured ILP vs static ceiling)"
    (Report.table
       ~header:
         [ "benchmark"; "machine"; "rec loops"; "cycles"; "floor";
           "measured"; "ceiling"; "tight" ]
       (List.map
          (fun r ->
            [ r.sb_bench;
              r.sb_machine;
              string_of_int r.sb_loops;
              string_of_int r.sb_measured_cycles;
              string_of_int r.sb_floor_cycles;
              Printf.sprintf "%.3f" r.sb_measured_ilp;
              Printf.sprintf "%.3f" r.sb_ceiling_ilp;
              Printf.sprintf "%.0f%%"
                (100.0 *. float_of_int r.sb_floor_cycles
                /. float_of_int (max 1 r.sb_measured_cycles)) ])
          rows)
    ^ "\n(the static floor combines per-loop register-recurrence cycles\n\
       with issue-width and functional-unit capacity over the whole\n\
       dynamic stream; measured minor cycles can never dip below it —\n\
       the study aborts if they do.  \"tight\" is floor/measured: how\n\
       much of the run the static bound already explains)")

(* ------------------------------------------------------------------ *)

let all : (string * (unit -> string)) list =
  [ ("fig1_1", render_fig1_1);
    ("fig2_diagrams", render_fig2_diagrams);
    ("fig2_8", render_fig2_8);
    ("sec2_3_vector", render_sec2_3_vector);
    ("table2_1", render_table2_1);
    ("fig4_1", render_fig4_1);
    ("fig4_2", render_fig4_2);
    ("fig4_3", render_fig4_3);
    ("fig4_4", render_fig4_4);
    ("fig4_5", render_fig4_5);
    ("fig4_6", render_fig4_6);
    ("fig4_5_unroll", render_unroll_study);
    ("fig4_7", render_fig4_7);
    ("fig4_8", render_fig4_8);
    ("table5_1", render_table5_1);
    ("sec5_1", render_sec5_1);
    ("issue_histogram", render_issue_histogram);
    ("ablation_temps", render_ablation_temps);
    ("ablation_class_conflicts", render_ablation_class_conflicts);
    ("ablation_branch", render_ablation_branch);
    ("memdep", render_memdep);
    ("fig4_static_bounds", render_static_bounds) ]

let find name = List.assoc_opt name all

let run_all () =
  String.concat "\n" (List.map (fun (_, render) -> render ()) all)
