(** Text rendering for experiment results: aligned tables and ASCII line
    charts, so every figure of the paper has a terminal rendition. *)

val fixed : string list list -> string
(** Right-aligned columns, no header. *)

val table : header:string list -> string list list -> string
(** Left-aligned columns with a header row and separator. *)

type series = { label : char; points : (float * float) list }

val line_chart :
  ?width:int ->
  ?height:int ->
  ?y_from_zero:bool ->
  ?x_label:string ->
  ?y_label:string ->
  series list ->
  string
(** Interpolated ASCII chart; overlapping points show the later
    series. *)

val section : string -> string -> string
(** A titled block. *)
