(* Random-program fuzzing of the whole compilation pipeline.

   Each iteration generates a random well-typed MiniMod program
   (Ilp_lang.Gen_prog) and runs the differential oracle over it at every
   optimization level on several machine configurations chosen to
   stress different parts of the compiler: the unconstrained base
   machine, a superscalar with single-copy functional units (unit
   booking in the scheduler), and a machine with a tiny temp pool
   (spilling in temp allocation).  Random programs are all-integer, so
   a careful-unroll pass is also exact and is checked at one factor.

   Iterations are independent and fan out over a Pool: item [k] derives
   its RNG deterministically from [(seed, k)], results land at their
   item index, and the pool re-raises the lowest-index failure — so a
   fuzz run is reproducible and reports the same counterexample at any
   [--jobs].  A failing program is shrunk (in the worker, preserving
   that determinism) to a local minimum that still fails before being
   reported. *)

open Ilp_machine
module Gen_prog = Ilp_lang.Gen_prog

type failure = {
  index : int;  (** which iteration failed *)
  seed : int;
  config_name : string;
  error : string;  (** what the oracle or a checker reported *)
  source : string;  (** shrunk MiniMod source that still fails *)
}

exception Failed of failure

let default_configs () =
  [
    Presets.base;
    Presets.superscalar_with_class_conflicts 4;
    Config.make "ss8-6temps" ~issue_width:8 ~temp_regs:6;
  ]

let default_levels = Ilp.all_levels

(* Random programs are all-integer, so careful unrolling is exact;
   every corpus checks one classic careful factor plus one bound-aware
   spec (full unroll / peeling for the known-trip-count loops the
   generator emits). *)
let default_unroll_specs =
  [
    { Ilp.mode = Ilp_lang.Unroll.Careful; factor = 3; bounds = false };
    { Ilp.mode = Ilp_lang.Unroll.Careful; factor = 4; bounds = true };
  ]

(* The unroll-heavy corpus generates boundary trip counts (0, 1,
   factor±1), down-counting loops and index-mutating bodies; check it
   across both modes, more factors, and both bound settings. *)
let unroll_heavy_specs =
  [
    { Ilp.mode = Ilp_lang.Unroll.Naive; factor = 2; bounds = true };
    { Ilp.mode = Ilp_lang.Unroll.Naive; factor = 3; bounds = false };
    { Ilp.mode = Ilp_lang.Unroll.Careful; factor = 4; bounds = true };
    { Ilp.mode = Ilp_lang.Unroll.Careful; factor = 8; bounds = true };
  ]

(* Random programs use a few dozen globals and tiny arrays; a small
   simulated memory makes the oracle's full-memory comparison (and each
   execution's allocation) cheap enough to run at every pass boundary. *)
let exec_options =
  { Ilp_sim.Exec.default_options with mem_words = 1 lsl 14 }

(* Why did checking [source] fail, as [Some (config_name, message)] —
   [None] when every check passes.  Any exception out of the pipeline
   counts as a failure: oracle mismatches and named pass failures, but
   also faults, validation errors or crashes a shrunk program might
   shift into. *)
(* Every iteration also checks the alias-disambiguated schedule
   ([~memdep:true]): Check_sched re-justifies each pruned edge
   statically and Diffcheck compares its per-address store streams
   against the unscheduled program, so a wrong [No_alias] verdict
   surfaces on the general corpus as well as the adversarial one. *)
let failure_of ~configs ~levels ~unroll_specs source =
  let explain = function
    | Diffcheck.Mismatch { stage; what } ->
        Printf.sprintf "differential mismatch after %s: %s" stage what
    | Ilp.Pass_failed { pass; issue } ->
        Printf.sprintf "pass %s: %s" pass issue
    | e -> Printexc.to_string e
  in
  List.find_map
    (fun config ->
      match
        Diffcheck.check_workload ~options:exec_options
          ~granularity:`Every_pass ~memdep:true ~levels ~unroll_specs config
          source
      with
      | () -> None
      | exception e -> Some (config.Config.name, explain e))
    configs

let check_one ~mode ~configs ~levels ~unroll_specs ~seed index =
  let st = Random.State.make [| 0x1197; seed; index |] in
  let prog = Gen_prog.generate ~mode st in
  let fails p =
    Option.is_some
      (failure_of ~configs ~levels ~unroll_specs (Gen_prog.render p))
  in
  match failure_of ~configs ~levels ~unroll_specs (Gen_prog.render prog) with
  | None -> ()
  | Some _ ->
      let shrunk = Gen_prog.shrink ~still_fails:fails prog in
      let source = Gen_prog.render shrunk in
      let config_name, error =
        match failure_of ~configs ~levels ~unroll_specs source with
        | Some f -> f
        | None -> assert false (* [shrink] only returns failing programs *)
      in
      raise (Failed { index; seed; config_name; error; source })

let run ?(jobs = 1) ?configs ?(levels = default_levels) ?unroll_specs
    ?(alias_heavy = false) ?(unroll_heavy = false) ?(range_heavy = false)
    ~count ~seed () =
  let configs =
    match configs with Some cs -> cs | None -> default_configs ()
  in
  let mode =
    if unroll_heavy then `Unroll_heavy
    else if alias_heavy then `Alias_heavy
    else if range_heavy then `Range_heavy
    else `Default
  in
  let unroll_specs =
    match unroll_specs with
    | Some specs -> specs
    | None -> if unroll_heavy then unroll_heavy_specs else default_unroll_specs
  in
  let items = Array.init count (fun k -> k) in
  let check = check_one ~mode ~configs ~levels ~unroll_specs ~seed in
  if jobs <= 1 then Array.iter check items
  else
    Ilp_par.Pool.with_pool ~jobs (fun pool ->
        ignore (Ilp_par.Pool.map pool check items))
