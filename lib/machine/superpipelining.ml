(* The average degree of superpipelining (Section 2.7, Table 2-1).

   Multiplying the latency of each instruction class by the dynamic
   frequency of that class gives a single number describing how deeply a
   machine is already pipelined relative to the base machine.  To the
   extent this exceeds one, the machine is already exploiting
   instruction-level parallelism without issuing multiple instructions
   per cycle. *)

open Ilp_ir

type frequencies = float array (* indexed by Iclass.to_index, sums to 1 *)

let frequencies_of_assoc assoc : frequencies =
  let table = Array.make Iclass.count 0.0 in
  List.iter (fun (c, f) -> table.(Iclass.to_index c) <- f) assoc;
  table

(* The instruction mix of Table 2-1: logical 10%, shift 10%,
   add/sub 20%, load 20%, store 15%, branch 15%, FP 10%. *)
let paper_frequencies =
  frequencies_of_assoc
    [ (Iclass.Logical, 0.10); (Iclass.Shift, 0.10); (Iclass.Add_sub, 0.20);
      (Iclass.Load, 0.20); (Iclass.Store, 0.15); (Iclass.Branch, 0.15);
      (Iclass.Fp_add, 0.10) ]

let total (freqs : frequencies) = Array.fold_left ( +. ) 0.0 freqs

(* Weighted average of per-class latencies, in the machine's own cycles. *)
let average_degree (config : Config.t) (freqs : frequencies) =
  let sum = ref 0.0 in
  Array.iteri
    (fun i f -> sum := !sum +. (f *. float_of_int config.Config.latencies.(i)))
    freqs;
  let t = total freqs in
  if t = 0.0 then 0.0 else !sum /. t

(* One row of Table 2-1: class, frequency, latency, contribution. *)
type row = {
  row_class : Iclass.t;
  frequency : float;
  latency : int;
  contribution : float;
}

let table (config : Config.t) (freqs : frequencies) =
  let t = total freqs in
  let rows =
    List.filter_map
      (fun c ->
        let f = freqs.(Iclass.to_index c) /. (if t = 0.0 then 1.0 else t) in
        if f = 0.0 then None
        else
          let l = Config.latency config c in
          Some
            { row_class = c;
              frequency = f;
              latency = l;
              contribution = f *. float_of_int l;
            })
      Iclass.all
  in
  (rows, List.fold_left (fun acc r -> acc +. r.contribution) 0.0 rows)
