(* Preset machine configurations used throughout the paper's evaluation. *)

open Ilp_ir

(* The base machine of Section 2.1: one instruction per cycle, all simple
   operations complete in one cycle.  Parallelism required to fully
   utilize it is exactly 1. *)
let base = Config.make "base"

(* Ideal superscalar machine of degree [n] (Section 2.3): n issues per
   cycle, unit latencies, no class conflicts. *)
let superscalar n =
  Config.make (Printf.sprintf "superscalar-%d" n) ~issue_width:n

(* Superpipelined machine of degree [m] (Section 2.4): one issue per
   minor cycle, every operation takes [m] minor cycles. *)
let superpipelined m =
  Config.make
    (Printf.sprintf "superpipelined-%d" m)
    ~pipe_degree:m
    ~latencies:(Config.scale_latencies (Config.latency_table []) m)

(* Superpipelined superscalar machine of degree (n, m) (Section 2.5). *)
let superpipelined_superscalar ~n ~m =
  Config.make
    (Printf.sprintf "sps-%dx%d" n m)
    ~issue_width:n ~pipe_degree:m
    ~latencies:(Config.scale_latencies (Config.latency_table []) m)

(* An underpipelined machine (Section 2.2, Figure 2-3): loads can only
   issue every other cycle, modelled with a dedicated load/store unit of
   issue latency 2. *)
let underpipelined =
  Config.make "underpipelined"
    ~units:
      [ { Config.unit_name = "mem";
          classes = [ Iclass.Load; Iclass.Store ];
          issue_latency = 2;
          multiplicity = 1;
        } ]

(* The MultiTitan (Section 2.7, Table 2-1): ALU operations one cycle;
   loads, stores and branches two cycles; floating point three cycles.
   Average degree of superpipelining 1.7. *)
let multititan_latencies =
  Config.latency_table
    [ (Iclass.Logical, 1); (Iclass.Shift, 1); (Iclass.Add_sub, 1);
      (Iclass.Int_mul, 3); (Iclass.Int_div, 12); (Iclass.Move, 1);
      (Iclass.Load, 2); (Iclass.Store, 2); (Iclass.Branch, 2);
      (Iclass.Jump, 2); (Iclass.Fp_add, 3); (Iclass.Fp_mul, 3);
      (Iclass.Fp_div, 12); (Iclass.Fp_cvt, 3) ]

let multititan = Config.make "MultiTitan" ~latencies:multititan_latencies

(* The CRAY-1 (Table 2-1): logical 1, shift 2, add/sub 3, load 11,
   store 1, branch 3, floating point 7.  Average degree of
   superpipelining 4.4.  [issue_width] is variable so Figure 4-4 can
   sweep issue multiplicity. *)
let cray1_latencies =
  Config.latency_table
    [ (Iclass.Logical, 1); (Iclass.Shift, 2); (Iclass.Add_sub, 3);
      (Iclass.Int_mul, 7); (Iclass.Int_div, 25); (Iclass.Move, 1);
      (Iclass.Load, 11); (Iclass.Store, 1); (Iclass.Branch, 3);
      (Iclass.Jump, 3); (Iclass.Fp_add, 7); (Iclass.Fp_mul, 7);
      (Iclass.Fp_div, 25); (Iclass.Fp_cvt, 7) ]

let cray1 ?(issue_width = 1) () =
  Config.make
    (Printf.sprintf "CRAY-1-issue%d" issue_width)
    ~issue_width ~latencies:cray1_latencies

(* The CRAY-1 as simulated in the study the paper criticises
   (Section 4.2, [1]): same machine but all functional units pretended to
   have one-cycle latency. *)
let cray1_unit_latencies ?(issue_width = 1) () =
  Config.make
    (Printf.sprintf "CRAY-1-unit-issue%d" issue_width)
    ~issue_width

(* A superscalar machine with class conflicts (Section 2.3.2): only the
   decode logic and register ports are duplicated, so each class is
   served by a single non-replicated unit. *)
let superscalar_with_class_conflicts n =
  let one_unit name classes =
    { Config.unit_name = name; classes; issue_latency = 1; multiplicity = 1 }
  in
  Config.make
    (Printf.sprintf "superscalar-%d-conflicts" n)
    ~issue_width:n
    ~units:
      [ one_unit "alu"
          [ Iclass.Logical; Iclass.Shift; Iclass.Add_sub; Iclass.Move ];
        one_unit "mul/div" [ Iclass.Int_mul; Iclass.Int_div ];
        one_unit "mem" [ Iclass.Load; Iclass.Store ];
        one_unit "ctl" [ Iclass.Branch; Iclass.Jump ];
        one_unit "fpadd" [ Iclass.Fp_add; Iclass.Fp_cvt ];
        one_unit "fpmul" [ Iclass.Fp_mul; Iclass.Fp_div ] ]

let by_name = function
  | "base" -> Some base
  | "multititan" -> Some multititan
  | "cray1" -> Some (cray1 ())
  | "cray1-unit" -> Some (cray1_unit_latencies ())
  | "underpipelined" -> Some underpipelined
  | _ -> None
