(** The average degree of superpipelining (Section 2.7, Table 2-1).

    Multiplying each instruction class's operation latency by the
    dynamic frequency of that class gives a single number describing how
    deeply a machine is already pipelined relative to the base machine.
    To the extent this exceeds one, the machine already exploits
    instruction-level parallelism without issuing multiple instructions
    per cycle — the paper's explanation of why the CRAY-1 gains almost
    nothing from multi-issue (Figure 4-4). *)

open Ilp_ir

type frequencies = float array
(** Dynamic frequency per class, indexed by [Iclass.to_index]. *)

val frequencies_of_assoc : (Iclass.t * float) list -> frequencies

val paper_frequencies : frequencies
(** The instruction mix of Table 2-1: logical 10%, shift 10%, add/sub
    20%, load 20%, store 15%, branch 15%, FP 10%. *)

val total : frequencies -> float

val average_degree : Config.t -> frequencies -> float
(** Frequency-weighted mean operation latency, in the machine's own
    cycles: 1.7 for the MultiTitan, 4.4 for the CRAY-1 under
    {!paper_frequencies}. *)

type row = {
  row_class : Iclass.t;
  frequency : float;
  latency : int;
  contribution : float;  (** frequency x latency *)
}

val table : Config.t -> frequencies -> row list * float
(** The rows of Table 2-1 (classes with nonzero frequency) and their
    total, the average degree of superpipelining. *)
