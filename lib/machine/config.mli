(** Machine configurations (the Section 3 interface of the paper).

    A configuration describes one point of the Section 2 design space:

    - [issue_width] is the superscalar degree [n]: the maximum number of
      instructions issued per (minor) cycle;
    - [pipe_degree] is the superpipelining degree [m]: minor cycles per
      base-machine cycle, so a degree-[m] machine's cycle time is 1/m of
      the base machine's, and simulated minor-cycle counts divide by [m]
      to give time in base cycles;
    - [latencies] gives each instruction class's operation latency in
      minor cycles — the time until a dependent instruction can issue;
    - [units] optionally imposes structural ("class conflict")
      constraints: classes not covered by any unit are unconstrained, as
      in an ideal superscalar machine;
    - [temp_regs] / [home_regs] set the compiler's register-file split
      between expression temporaries and home locations for promoted
      variables. *)

open Ilp_ir

type unit_spec = {
  unit_name : string;
  classes : Iclass.t list;  (** instruction classes the unit serves *)
  issue_latency : int;  (** minor cycles between issues to one copy *)
  multiplicity : int;  (** number of copies of the unit *)
}

type t = {
  name : string;
  issue_width : int;
  pipe_degree : int;
  latencies : int array;  (** indexed by [Iclass.to_index], minor cycles *)
  units : unit_spec list;
  temp_regs : int;
  home_regs : int;
  branch_ends_packet : bool;
      (** ablation switch (DESIGN.md decision 2): when set, a branch
          closes its cycle's issue group instead of letting issue
          continue past it under perfect prediction *)
}

val default_temp_regs : int
(** 16, the paper's Section 4.4 split. *)

val default_home_regs : int
(** 26, the paper's Section 4.4 split. *)

val latency : t -> Iclass.t -> int

val split_key : t -> string
(** Canonical register-split identifier ["tN.hM"].  The unscheduled
    compile — and therefore a captured trace — reads a configuration
    only through its register split, so this is the machine-side
    component of the trace store's content address: configurations
    with equal [split_key] share captures. *)

val latency_table : ?default:int -> (Iclass.t * int) list -> int array
(** Build a latency table; classes not mentioned get [default]
    (1 cycle). *)

val make :
  ?issue_width:int ->
  ?pipe_degree:int ->
  ?units:unit_spec list ->
  ?temp_regs:int ->
  ?home_regs:int ->
  ?latencies:int array ->
  ?branch_ends_packet:bool ->
  string ->
  t
(** Defaults describe the base machine: single issue, degree 1, unit
    latencies, no structural constraints.  Raises [Invalid_argument] on
    nonpositive width or degree. *)

val scale_latencies : int array -> int -> int array
(** Multiply every latency by the superpipelining degree: an operation
    of one base cycle takes [m] minor cycles on a degree-[m] machine. *)

val units_for : t -> Iclass.t -> unit_spec list
val has_unit_constraint : t -> Iclass.t -> bool

val max_latency : t -> int
(** The largest per-class latency, for bounding scheduler lookahead. *)

val pp : t Fmt.t
