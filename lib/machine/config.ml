(* Machine configurations (Section 3 of the paper).

   A configuration describes one point of the design space of Section 2:

   - [issue_width] is the superscalar degree [n]: the maximum number of
     instructions issued per (minor) cycle;
   - [pipe_degree] is the superpipelining degree [m]: the number of minor
     cycles per base-machine cycle, so a degree-[m] machine's cycle time
     is 1/m of the base machine's and simulated cycle counts must be
     divided by [m] to express time in base cycles;
   - [latencies] gives the operation latency of each instruction class in
     minor cycles (the time until a dependent instruction can issue);
   - [units] optionally imposes structural ("class conflict") constraints:
     classes not covered by any unit are unconstrained, as in an ideal
     superscalar machine;
   - [temp_regs]/[home_regs] describe the register-file split used by the
     compiler (Section 3, last paragraph). *)

open Ilp_ir

type unit_spec = {
  unit_name : string;
  classes : Iclass.t list;
  issue_latency : int;  (** minor cycles between issues to one copy *)
  multiplicity : int;  (** number of copies of the unit *)
}

type t = {
  name : string;
  issue_width : int;
  pipe_degree : int;
  latencies : int array;  (** indexed by [Iclass.to_index], minor cycles *)
  units : unit_spec list;
  temp_regs : int;
  home_regs : int;
  branch_ends_packet : bool;
      (** ablation switch: a taken-or-not branch closes the cycle's
          issue group (the paper's model assumes it does not) *)
}

let default_temp_regs = 16
let default_home_regs = 26

let latency t c = t.latencies.(Iclass.to_index c)

(* Canonical register-split identifier.  The unscheduled compile (and so
   a captured trace) reads a configuration only through this split, so
   it is the machine-side component of the trace store's content
   address: configurations with equal [split_key] share captures. *)
let split_key t = Printf.sprintf "t%d.h%d" t.temp_regs t.home_regs

(* Build a latency table from an association list; classes not mentioned
   get [default]. *)
let latency_table ?(default = 1) assoc =
  let table = Array.make Iclass.count default in
  List.iter (fun (c, l) -> table.(Iclass.to_index c) <- l) assoc;
  table

let make ?(issue_width = 1) ?(pipe_degree = 1) ?(units = [])
    ?(temp_regs = default_temp_regs) ?(home_regs = default_home_regs)
    ?(latencies = latency_table []) ?(branch_ends_packet = false) name =
  if issue_width < 1 then invalid_arg "Config.make: issue_width < 1";
  if pipe_degree < 1 then invalid_arg "Config.make: pipe_degree < 1";
  { name; issue_width; pipe_degree; latencies; units; temp_regs; home_regs;
    branch_ends_packet }

(* Scale every latency by the superpipelining degree: an operation that
   takes one base cycle takes [m] minor cycles on a degree-[m] machine. *)
let scale_latencies table m = Array.map (fun l -> l * m) table

let units_for t c =
  List.filter (fun u -> List.mem c u.classes) t.units

let has_unit_constraint t c = units_for t c <> []

(* Highest operation latency across all classes, used to bound scheduler
   lookahead. *)
let max_latency t = Array.fold_left max 1 t.latencies

let pp ppf t =
  Fmt.pf ppf "@[<v>machine %s: issue=%d degree=%d temps=%d homes=%d@," t.name
    t.issue_width t.pipe_degree t.temp_regs t.home_regs;
  List.iter
    (fun c ->
      Fmt.pf ppf "  %-8s latency %d@," (Iclass.name c)
        t.latencies.(Iclass.to_index c))
    Iclass.all;
  List.iter
    (fun u ->
      Fmt.pf ppf "  unit %s x%d issue-latency %d: %a@," u.unit_name
        u.multiplicity u.issue_latency
        Fmt.(list ~sep:comma Iclass.pp)
        u.classes)
    t.units;
  Fmt.pf ppf "@]"
