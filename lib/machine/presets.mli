(** Preset machine configurations used throughout the paper's
    evaluation. *)

val base : Config.t
(** The base machine of Section 2.1: one instruction per cycle, every
    simple operation completes in one cycle; the reference point all
    speedups are measured against. *)

val superscalar : int -> Config.t
(** [superscalar n]: the ideal superscalar machine of degree [n]
    (Section 2.3) — [n] issues per cycle, unit latencies, no class
    conflicts. *)

val superpipelined : int -> Config.t
(** [superpipelined m]: the superpipelined machine of degree [m]
    (Section 2.4) — one issue per minor cycle, every operation takes
    [m] minor cycles. *)

val superpipelined_superscalar : n:int -> m:int -> Config.t
(** Section 2.5: cycle time 1/m of the base machine, [n] issues per
    minor cycle; full utilization needs ILP of [n*m]. *)

val underpipelined : Config.t
(** Section 2.2 / Figure 2-3: loads and stores issue every other cycle
    (a single memory unit with issue latency 2). *)

val multititan : Config.t
(** The MultiTitan of Section 2.7 / Table 2-1: ALU 1 cycle; loads,
    stores and branches 2; floating point 3.  Average degree of
    superpipelining 1.7. *)

val multititan_latencies : int array

val cray1 : ?issue_width:int -> unit -> Config.t
(** The CRAY-1 of Table 2-1: logical 1, shift 2, add/sub 3, load 11,
    store 1, branch 3, FP 7.  Average degree of superpipelining 4.4.
    [issue_width] lets Figure 4-4 sweep issue multiplicity. *)

val cray1_latencies : int array

val cray1_unit_latencies : ?issue_width:int -> unit -> Config.t
(** The CRAY-1 as (mis)simulated by the study the paper criticises in
    Section 4.2: same machine, all functional-unit latencies pretended
    to be one cycle. *)

val superscalar_with_class_conflicts : int -> Config.t
(** A superscalar machine built by duplicating only decode and register
    ports (Section 2.3.2): each class served by one non-replicated
    functional unit, so class conflicts throttle issue. *)

val by_name : string -> Config.t option
(** Look up ["base"], ["multititan"], ["cray1"], ["cray1-unit"],
    ["underpipelined"]. *)
