(* Control-flow graph view of a function: blocks as an array, successor
   and predecessor edges, and a reverse postorder for dataflow passes. *)

open Ilp_ir

type t = {
  func : Func.t;
  blocks : Block.t array;
  index_of : (string, int) Hashtbl.t;
  succs : int list array;
  preds : int list array;
  rpo : int array;  (** reverse postorder of reachable blocks *)
}

let build (f : Func.t) =
  let blocks = Array.of_list f.Func.blocks in
  let n = Array.length blocks in
  let index_of = Hashtbl.create (2 * n) in
  Array.iteri
    (fun i b -> Hashtbl.replace index_of (Label.to_string b.Block.label) i)
    blocks;
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  Array.iteri
    (fun i b ->
      let explicit =
        List.filter_map
          (fun l -> Hashtbl.find_opt index_of (Label.to_string l))
          (Block.branch_targets b)
      in
      let fallthrough =
        if Block.falls_through b && i + 1 < n then [ i + 1 ] else []
      in
      succs.(i) <- List.sort_uniq compare (explicit @ fallthrough))
    blocks;
  Array.iteri
    (fun i ss -> List.iter (fun s -> preds.(s) <- i :: preds.(s)) ss)
    succs;
  (* reverse postorder from the entry *)
  let visited = Array.make n false in
  let order = ref [] in
  let rec dfs i =
    if not visited.(i) then begin
      visited.(i) <- true;
      List.iter dfs succs.(i);
      order := i :: !order
    end
  in
  if n > 0 then dfs 0;
  { func = f; blocks; index_of; succs; preds; rpo = Array.of_list !order }

let n_blocks t = Array.length t.blocks

let reachable t i = Array.exists (fun j -> j = i) t.rpo

(* Rebuild the function from (possibly rewritten) blocks. *)
let to_func t blocks =
  { t.func with Func.blocks = Array.to_list blocks }
