(* Which virtual registers are block-local?

   A pass may delete the defining instruction of a virtual register only
   if every occurrence of that register sits in the same block; global
   passes (global CSE, loop-invariant code motion) create cross-block
   registers whose definitions must survive local cleanups. *)

open Ilp_ir

let block_local_vregs (f : Func.t) =
  let home : (int, int) Hashtbl.t = Hashtbl.create 256 in
  let escaped : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  List.iteri
    (fun bi b ->
      List.iter
        (fun i ->
          let note r =
            if Reg.is_virtual r then
              match Hashtbl.find_opt home (Reg.index r) with
              | None -> Hashtbl.replace home (Reg.index r) bi
              | Some bj ->
                  if bj <> bi then Hashtbl.replace escaped (Reg.index r) ()
          in
          List.iter note (Instr.defs i);
          List.iter note (Instr.uses i))
        b.Block.instrs)
    f.Func.blocks;
  fun r ->
    Reg.is_virtual r && not (Hashtbl.mem escaped (Reg.index r))
