(** Reaching definitions — a forward may-instance of the {!Dataflow}
    framework over sets of (register, defining-instruction-id) sites. *)

open Ilp_ir

module Site : sig
  type t = { reg : Reg.t; instr_id : int }

  val compare : t -> t -> int
  val pp : t Fmt.t
end

module Set : Set.S with type elt = Site.t

type t = Set.t Dataflow.solution

val compute : Cfg_info.t -> t

val reaching_ids : t -> int -> Reg.t -> int list
(** Instruction ids of the definitions of a register that reach the
    entry of a block, sorted ascending. *)
