(** Diagnostics emitted by the static checkers ({!Lint}, the
    register-allocation verifier, validation): a severity, a stable
    location naming function / block / instruction, and a message.

    Locations use block labels and rendered instruction text rather
    than instruction ids, so output is stable across runs and suitable
    for CI diffing and substring assertions in tests. *)

type severity = Error | Warning | Info

val pp_severity : severity Fmt.t

type t = {
  severity : severity;
  check : string;  (** the emitting checker, e.g. ["def-assign"] *)
  func : string;
  block : string option;  (** block label *)
  instr : string option;  (** rendered instruction *)
  message : string;
}

val make :
  ?block:string ->
  ?instr:string ->
  severity ->
  check:string ->
  func:string ->
  string ->
  t

val is_error : t -> bool
val errors : t list -> t list

val compare : t -> t -> int
(** Severity first (errors before warnings before infos), then
    function, check, block, instruction, message. *)

val pp : t Fmt.t
val to_string : t -> string

val render : t list -> string
(** Sorted by {!compare}, one per line. *)
