(** Dominator trees, computed with the Cooper–Harvey–Kennedy iterative
    algorithm over the reverse postorder. *)

type t = {
  idom : int array;  (** immediate dominator; the entry maps to itself,
                         unreachable blocks to -1 *)
  rpo_number : int array;
}

val compute : Cfg_info.t -> t

val dominates : t -> int -> int -> bool
(** Reflexive.  Unreachable blocks dominate nothing. *)

val children : t -> int list array
(** Dominator-tree children of each block. *)
