(* Generic iterative dataflow over a Cfg_info.

   An analysis is a LATTICE (the per-block abstract value) plus a
   TRANSFER (per-function precomputed context, boundary/initial values,
   and the block transfer function).  The two solvers run the classic
   worklist iteration to a fixpoint, sweeping the reverse postorder
   (forward) or the postorder (backward) so that acyclic flow converges
   in one pass and loops in a handful.

   Conventions shared by every instance:

   - [init] is the solver's starting value everywhere — the lattice
     bottom for may-analyses (union join, e.g. liveness, reaching
     definitions) and the "universe" top for must-analyses
     (intersection join, e.g. definite assignment, available
     expressions), where it doubles as the identity of [join];
   - [boundary] enters at the entry block (forward) or at blocks
     without successors (backward);
   - blocks unreachable from the entry are never processed and keep
     [init]; instances that report per-instruction facts must skip
     them (execution cannot reach those blocks). *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end

module type TRANSFER = sig
  module L : LATTICE

  type ctx
  (** Whatever the transfer function precomputes per function
      (use/def sets, gen/kill sets, ...). *)

  val prepare : Cfg_info.t -> ctx
  val init : ctx -> L.t
  val boundary : ctx -> L.t

  val transfer : ctx -> int -> L.t -> L.t
  (** [transfer ctx b v] pushes [v] through block [b] — input value to
      output value (forward), output value to input value (backward). *)
end

type 'a solution = { inb : 'a array; outb : 'a array }

(* One worklist iteration shared by both directions.  [order] is the
   sweep order; [sources b] are the blocks whose solved values feed
   [b]'s input side; [dependents b] must be re-examined when [b]'s
   output side changes.  [at_boundary b] marks blocks that additionally
   join the boundary value. *)
let run_worklist (type a) (module L : LATTICE with type t = a) cfg ~order
    ~sources ~dependents ~at_boundary ~(boundary : a) ~(init : a)
    ~(transfer : int -> a -> a) =
  let n = Cfg_info.n_blocks cfg in
  let input = Array.make n init in
  let output = Array.make n init in
  let pending = Array.make n false in
  Array.iter (fun b -> pending.(b) <- true) order;
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if pending.(b) then begin
          pending.(b) <- false;
          let from_sources =
            List.fold_left
              (fun acc s -> L.join acc output.(s))
              init (sources b)
          in
          let in_v =
            if at_boundary b then L.join boundary from_sources
            else from_sources
          in
          let out_v = transfer b in_v in
          input.(b) <- in_v;
          if not (L.equal out_v output.(b)) then begin
            output.(b) <- out_v;
            List.iter
              (fun d -> pending.(d) <- true)
              (dependents b);
            changed := true
          end
        end)
      order
  done;
  (input, output)

module Forward (T : TRANSFER) = struct
  let solve (cfg : Cfg_info.t) : T.L.t solution =
    let ctx = T.prepare cfg in
    let input, output =
      run_worklist
        (module T.L)
        cfg ~order:cfg.Cfg_info.rpo
        ~sources:(fun b -> cfg.Cfg_info.preds.(b))
        ~dependents:(fun b -> cfg.Cfg_info.succs.(b))
        ~at_boundary:(fun b -> b = 0)
        ~boundary:(T.boundary ctx) ~init:(T.init ctx)
        ~transfer:(T.transfer ctx)
    in
    { inb = input; outb = output }
end

module Backward (T : TRANSFER) = struct
  let solve (cfg : Cfg_info.t) : T.L.t solution =
    let ctx = T.prepare cfg in
    let postorder =
      let rpo = cfg.Cfg_info.rpo in
      let n = Array.length rpo in
      Array.init n (fun k -> rpo.(n - 1 - k))
    in
    (* the backward "input" is the block's live-out side *)
    let output_side, input_side =
      run_worklist
        (module T.L)
        cfg ~order:postorder
        ~sources:(fun b -> cfg.Cfg_info.succs.(b))
        ~dependents:(fun b -> cfg.Cfg_info.preds.(b))
        ~at_boundary:(fun b -> cfg.Cfg_info.succs.(b) = [])
        ~boundary:(T.boundary ctx) ~init:(T.init ctx)
        ~transfer:(T.transfer ctx)
    in
    { inb = input_side; outb = output_side }
end

module type LATTICE_W = sig
  include LATTICE

  val widen : t -> t -> t
end

module type TRANSFER_W = sig
  module L : LATTICE_W

  type ctx

  val prepare : Cfg_info.t -> ctx
  val init : ctx -> L.t
  val boundary : ctx -> L.t
  val transfer : ctx -> int -> L.t -> L.t
end

(* Forward solver with widening at retreating-edge targets.  The
   ascending phase is the classic worklist iteration, except that a
   block whose input flows in over a retreating edge (a predecessor at
   an equal or later reverse-postorder position — every natural loop
   head qualifies) replaces plain join with [widen old incoming], so
   lattices of infinite height (intervals) still stabilise.  The result
   is a post-fixpoint; two descending sweeps then recompute each block
   from its predecessors without widening.  Starting from a
   post-fixpoint, every recomputation stays above the least fixpoint,
   so stopping after a fixed number of sweeps is sound — this is the
   standard narrowing truncation. *)
module Forward_widen (T : TRANSFER_W) = struct
  module L = T.L

  let solve (cfg : Cfg_info.t) : L.t solution =
    let ctx = T.prepare cfg in
    let n = Cfg_info.n_blocks cfg in
    let init = T.init ctx and boundary = T.boundary ctx in
    let order = cfg.Cfg_info.rpo in
    let pos = Array.make n max_int in
    Array.iteri (fun k b -> pos.(b) <- k) order;
    let widen_point b =
      List.exists (fun p -> pos.(p) >= pos.(b)) cfg.Cfg_info.preds.(b)
    in
    let input = Array.make n init in
    let output = Array.make n init in
    let joined b =
      let from_preds =
        List.fold_left
          (fun acc p -> L.join acc output.(p))
          init cfg.Cfg_info.preds.(b)
      in
      if b = 0 then L.join boundary from_preds else from_preds
    in
    (* ascending, widened *)
    let pending = Array.make n false in
    Array.iter (fun b -> pending.(b) <- true) order;
    let changed = ref true in
    while !changed do
      changed := false;
      Array.iter
        (fun b ->
          if pending.(b) then begin
            pending.(b) <- false;
            let incoming = joined b in
            let in_v =
              if widen_point b then L.widen input.(b) incoming else incoming
            in
            let out_v = T.transfer ctx b in_v in
            input.(b) <- in_v;
            if not (L.equal out_v output.(b)) then begin
              output.(b) <- out_v;
              List.iter (fun s -> pending.(s) <- true) cfg.Cfg_info.succs.(b);
              changed := true
            end
          end)
        order
    done;
    (* descending (narrowing), two truncated sweeps *)
    for _ = 1 to 2 do
      Array.iter
        (fun b ->
          let in_v = joined b in
          input.(b) <- in_v;
          output.(b) <- T.transfer ctx b in_v)
        order
    done;
    { inb = input; outb = output }
end

(* The two workhorse lattices. *)

module Reg_set_lattice = struct
  type t = Ilp_ir.Reg.Set.t

  let equal = Ilp_ir.Reg.Set.equal
  let join = Ilp_ir.Reg.Set.union

  let pp ppf s =
    Fmt.pf ppf "{%a}"
      (Fmt.list ~sep:Fmt.comma Ilp_ir.Reg.pp)
      (Ilp_ir.Reg.Set.elements s)
end

(* A set-with-top lattice for must-analyses: [Univ] is the value of
   paths not yet seen (the identity of intersection), so the entry
   boundary — typically [Known empty] — dominates as soon as it
   arrives. *)
module Must_set (S : Set.S) = struct
  type t = Univ | Known of S.t

  let equal a b =
    match (a, b) with
    | Univ, Univ -> true
    | Known x, Known y -> S.equal x y
    | Univ, Known _ | Known _, Univ -> false

  let join a b =
    match (a, b) with
    | Univ, v | v, Univ -> v
    | Known x, Known y -> Known (S.inter x y)

  let pp pp_elt ppf = function
    | Univ -> Fmt.string ppf "<univ>"
    | Known s ->
        Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma pp_elt) (S.elements s)
end

(* The flat (constant-propagation) lattice over an arbitrary value
   domain: Bot — no path has produced a value yet (the identity of
   join) — is refined to [Known v] by the first value seen, and two
   disagreeing values collapse to Top.  This is the per-variable
   lattice of every constant-style analysis; `Ilp_lang.Bounds` uses it
   to merge scalar environments at control-flow joins when deriving
   loop trip counts. *)
module Flat (V : sig
  type t

  val equal : t -> t -> bool
  val pp : t Fmt.t
end) =
struct
  type t = Bot | Known of V.t | Top

  let equal a b =
    match (a, b) with
    | Bot, Bot | Top, Top -> true
    | Known x, Known y -> V.equal x y
    | (Bot | Known _ | Top), _ -> false

  let join a b =
    match (a, b) with
    | Bot, v | v, Bot -> v
    | Top, _ | _, Top -> Top
    | Known x, Known y -> if V.equal x y then a else Top

  let pp ppf = function
    | Bot -> Fmt.string ppf "<bot>"
    | Top -> Fmt.string ppf "<top>"
    | Known v -> V.pp ppf v
end
