(** Generic iterative dataflow over a {!Cfg_info}.

    An analysis is a {!LATTICE} (the per-block abstract value) plus a
    {!TRANSFER} (per-function precomputed context, boundary/initial
    values, and the block transfer function); {!Forward} and
    {!Backward} are worklist solvers sweeping the reverse postorder
    (respectively the postorder) to a fixpoint, yielding per-block
    in/out arrays.

    Conventions every instance follows:
    - [init] is the solver's starting value everywhere: the lattice
      bottom for may-analyses (union join) and the universe top for
      must-analyses (intersection join), where it is also the identity
      of [join];
    - [boundary] enters at the entry block (forward) or at blocks
      without successors (backward);
    - blocks unreachable from the entry are never processed and keep
      [init]; instances reporting per-instruction facts must skip
      them. *)

module type LATTICE = sig
  type t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end

module type TRANSFER = sig
  module L : LATTICE

  type ctx
  (** Per-function precomputed state (use/def sets, gen/kill, ...). *)

  val prepare : Cfg_info.t -> ctx
  val init : ctx -> L.t
  val boundary : ctx -> L.t

  val transfer : ctx -> int -> L.t -> L.t
  (** [transfer ctx b v] pushes [v] through block [b] — input to output
      value (forward), output to input value (backward). *)
end

type 'a solution = { inb : 'a array; outb : 'a array }
(** Value at block entry ([inb]) and exit ([outb]), indexed like
    [cfg.blocks]. *)

module Forward (T : TRANSFER) : sig
  val solve : Cfg_info.t -> T.L.t solution
end

module Backward (T : TRANSFER) : sig
  val solve : Cfg_info.t -> T.L.t solution
end

(** A lattice with infinite (or impractically tall) ascending chains,
    extended with a widening operator: [widen old incoming] must
    over-approximate [join old incoming] and stabilise every ascending
    chain in finitely many steps. *)
module type LATTICE_W = sig
  include LATTICE

  val widen : t -> t -> t
end

module type TRANSFER_W = sig
  module L : LATTICE_W

  type ctx

  val prepare : Cfg_info.t -> ctx
  val init : ctx -> L.t
  val boundary : ctx -> L.t
  val transfer : ctx -> int -> L.t -> L.t
end

(** Forward solver for widening lattices: the worklist iteration applies
    [L.widen] to the block-entry value of every retreating-edge target
    (loop heads under the reverse postorder), guaranteeing termination,
    then runs two plain descending sweeps from the post-fixpoint — the
    narrowing pass — which recovers precision lost to widening while
    staying above the true fixpoint. *)
module Forward_widen (T : TRANSFER_W) : sig
  val solve : Cfg_info.t -> T.L.t solution
end

(** Register sets under union — the may-analysis workhorse. *)
module Reg_set_lattice : LATTICE with type t = Ilp_ir.Reg.Set.t

(** Sets extended with a top element for must-analyses: [Univ] is the
    value of paths not yet seen (the identity of intersection).
    Instances supply the element printer to obtain a full
    {!LATTICE}. *)
module Must_set (S : Set.S) : sig
  type t = Univ | Known of S.t

  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : S.elt Fmt.t -> t Fmt.t
end

(** The flat (constant-propagation) lattice over an arbitrary value
    domain: [Bot] (no path seen yet, the identity of [join]) is refined
    to [Known v] by the first value, and disagreeing values collapse to
    [Top].  [Ilp_lang.Bounds] instantiates it at [int] to merge scalar
    environments at control-flow joins. *)
module Flat (V : sig
  type t

  val equal : t -> t -> bool
  val pp : t Fmt.t
end) : sig
  type t = Bot | Known of V.t | Top

  val equal : t -> t -> bool
  val join : t -> t -> t
  val pp : t Fmt.t
end
