(** Value-range abstract interpretation: a reduced product of an
    interval domain and a congruence (stride) domain.

    The domains are language-agnostic — {!Ilp_lang.Absint} runs them
    structurally over MiniMod functions (with widening at loop heads and
    {!Ilp_lang.Bounds}-aware trip-count refinement) to prove array
    subscripts in bounds, while {!Ir} runs them over IR functions on the
    {!Dataflow.Forward_widen} solver to give {!Memdep} and
    {!Ilp_sched.Static_bound} register and memory-cell ranges.

    Soundness contract shared by every operation: the concrete result of
    the operation on any members of the argument sets is a member of the
    result set.  [join]/[widen] over-approximate set union, [meet]
    over-approximates intersection (returning either argument is always
    legal), and [widen] additionally stabilises every ascending chain. *)

(** Intervals over [int] with infinite endpoints. *)
module Interval : sig
  type bound = Ninf | Fin of int | Pinf

  type t = Bot | Iv of bound * bound  (** invariant: lo <= hi *)

  val top : t
  val of_const : int -> t
  val of_bounds : bound -> bound -> t
  (** Normalises crossed bounds to [Bot]. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
  val meet : t -> t -> t
  val widen : t -> t -> t
  val narrow : t -> t -> t
  val mem : int -> t -> bool
  val pp : t Fmt.t
end

(** Congruence classes [r + k*m].  Modulus [0] means the exact constant
    [r]; modulus [1] is top. *)
module Congruence : sig
  type t = Bot | Cg of int * int  (** invariant: m >= 0, 0 <= r < m when m > 0 *)

  val top : t
  val of_const : int -> t
  val make : int -> int -> t
  (** [make r m], normalised. *)

  val equal : t -> t -> bool
  val join : t -> t -> t
  val meet : t -> t -> t
  val mem : int -> t -> bool
  val pp : t Fmt.t
end

(** The reduced product. *)
module V : sig
  type t = { iv : Interval.t; cg : Congruence.t }

  val top : t
  val bot : t
  val of_const : int -> t
  val of_interval : Interval.t -> t
  val make : Interval.t -> Congruence.t -> t
  (** Reduced: each component sharpens the other (a singleton interval
      becomes an exact congruence, interval endpoints move inward to the
      nearest member of the congruence class, incompatible components
      collapse to bottom). *)

  val is_bot : t -> bool
  val is_const : t -> int option
  val equal : t -> t -> bool
  val join : t -> t -> t
  val meet : t -> t -> t
  val widen : t -> t -> t
  val narrow : t -> t -> t
  val mem : int -> t -> bool

  val of_counted : start:int -> step:int -> trips:int -> t
  (** Exact range of a counted-loop index over all [trips >= 1]
      iterations: interval from [start] to [start + (trips-1)*step]
      and congruence [start mod |step|]. *)

  (** Abstract transfer of the arithmetic the IR and MiniMod share.
      Division and remainder follow OCaml/[Exec] truncated semantics. *)

  val add : t -> t -> t
  val sub : t -> t -> t
  val mul : t -> t -> t
  val neg : t -> t
  val div : t -> t -> t
  val rem : t -> t -> t
  val band : t -> t -> t
  val bor : t -> t -> t
  val bxor : t -> t -> t
  val shl : t -> t -> t
  val shr : t -> t -> t
  val bool_result : t
  (** [0, 1] — comparisons and set-on-condition results. *)

  (** Comparison refinement: [assume_lt a b] are sharpened [(a, b)]
      under the assumption that the comparison held. *)

  val assume_lt : t -> t -> t * t
  val assume_le : t -> t -> t * t
  val assume_eq : t -> t -> t * t
  val assume_ne : t -> t -> t * t

  val separated : t -> t -> bool
  (** [separated a b]: no member of [a] equals any member of [b] —
      disjoint intervals or incompatible congruences.  The memory
      no-alias test. *)

  val excludes_zero : t -> bool
  (** Zero is not a member — the nonzero-difference no-alias test. *)

  val pp : t Fmt.t
  val to_string : t -> string
end

(** Register and scalar-memory ranges of an IR function, solved on
    {!Dataflow.Forward_widen}.  The environment tracks virtual (and
    physical) registers, named global scalars and stack slots; loads
    from tracked cells recover the stored range, so loop counters that
    live in stack slots keep their stride through the back edge. *)
module Ir : sig
  type env
  (** Abstract state at a program point; absent facts mean top. *)

  val unreachable : env
  val is_unreachable : env -> bool

  type t
  (** Per-block-entry environments of one function. *)

  val analyze : Ilp_ir.Func.t -> t

  val block_entry : t -> Ilp_ir.Label.t -> env
  (** Environment at the entry of the named block ({!unreachable} for
      blocks the analysis never reached). *)

  val step : env -> Ilp_ir.Instr.t -> env
  (** Push one instruction through the environment — re-walking a block
      from {!block_entry} yields the state before each instruction. *)

  val reg : env -> Ilp_ir.Reg.t -> V.t

  val operand : env -> Ilp_ir.Instr.operand -> V.t

  val address : env -> Ilp_ir.Instr.t -> V.t
  (** Range of the effective address of a load or store (base operand
      plus constant offset); top for other instructions. *)
end
