(* Value-range abstract interpretation: reduced product of intervals
   and congruences.

   Every transfer function obeys one contract: for any concrete values
   x in gamma(a) and y in gamma(b), the concrete result of the
   operation is in gamma(op a b).  Operations that cannot be bounded
   cheaply return top — always sound, never precise.  Arithmetic on
   interval endpoints deliberately mirrors OCaml's boxed-int semantics
   because both Exec and the MiniMod evaluator compute with native
   ints; the generators keep values far from [max_int], so endpoint
   arithmetic does not overflow in practice, and where it could
   (multiplication of huge constants) we saturate to infinity. *)

let rec gcd a b = if b = 0 then abs a else gcd b (a mod b)

(* Saturation guard: endpoint magnitudes beyond this collapse to an
   infinite bound, keeping products of wide ranges overflow-free. *)
let big = 1 lsl 40

module Interval = struct
  type bound = Ninf | Fin of int | Pinf
  type t = Bot | Iv of bound * bound

  let top = Iv (Ninf, Pinf)
  let of_const n = Iv (Fin n, Fin n)

  let cmp_bound a b =
    match (a, b) with
    | Ninf, Ninf | Pinf, Pinf -> 0
    | Ninf, _ -> -1
    | _, Ninf -> 1
    | Pinf, _ -> 1
    | _, Pinf -> -1
    | Fin x, Fin y -> compare x y

  let min_bound a b = if cmp_bound a b <= 0 then a else b
  let max_bound a b = if cmp_bound a b >= 0 then a else b

  let sat = function
    | Fin n when n > big -> Pinf
    | Fin n when n < -big -> Ninf
    | b -> b

  let of_bounds lo hi =
    let lo = sat lo and hi = sat hi in
    if cmp_bound lo hi > 0 then Bot else Iv (lo, hi)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Iv (l1, h1), Iv (l2, h2) -> l1 = l2 && h1 = h2
    | (Bot | Iv _), _ -> false

  let join a b =
    match (a, b) with
    | Bot, v | v, Bot -> v
    | Iv (l1, h1), Iv (l2, h2) -> Iv (min_bound l1 l2, max_bound h1 h2)

  let meet a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) ->
        let lo = max_bound l1 l2 and hi = min_bound h1 h2 in
        if cmp_bound lo hi > 0 then Bot else Iv (lo, hi)

  (* [widen old incoming]: any endpoint the incoming value pushes past
     the old one jumps straight to infinity, so ascending chains have
     length at most 2 per side. *)
  let widen old inc =
    match (old, inc) with
    | Bot, v | v, Bot -> v
    | Iv (l1, h1), Iv (l2, h2) ->
        let lo = if cmp_bound l2 l1 < 0 then Ninf else l1 in
        let hi = if cmp_bound h2 h1 > 0 then Pinf else h1 in
        Iv (lo, hi)

  (* [narrow old finer]: recover infinite endpoints from the finer
     value; finite endpoints of [old] are kept (sound as long as
     [finer] is itself an over-approximation, which descending
     iteration guarantees). *)
  let narrow old finer =
    match (old, finer) with
    | Bot, _ | _, Bot -> Bot
    | Iv (l1, h1), Iv (l2, h2) ->
        let lo = if l1 = Ninf then l2 else l1 in
        let hi = if h1 = Pinf then h2 else h1 in
        if cmp_bound lo hi > 0 then Bot else Iv (lo, hi)

  let mem n = function
    | Bot -> false
    | Iv (lo, hi) -> cmp_bound lo (Fin n) <= 0 && cmp_bound (Fin n) hi <= 0

  let pp_bound ppf = function
    | Ninf -> Fmt.string ppf "-inf"
    | Pinf -> Fmt.string ppf "+inf"
    | Fin n -> Fmt.int ppf n

  let pp ppf = function
    | Bot -> Fmt.string ppf "_|_"
    | Iv (lo, hi) -> Fmt.pf ppf "[%a,%a]" pp_bound lo pp_bound hi
end

module Congruence = struct
  (* Cg (r, m): the set { r + k*m }.  m = 0 is the constant r; m = 1 is
     top.  Normalised so 0 <= r < m whenever m > 0. *)
  type t = Bot | Cg of int * int

  let top = Cg (0, 1)
  let of_const n = Cg (n, 0)

  let make r m =
    let m = abs m in
    if m = 0 then Cg (r, 0) else Cg (((r mod m) + m) mod m, m)

  let equal a b =
    match (a, b) with
    | Bot, Bot -> true
    | Cg (r1, m1), Cg (r2, m2) -> r1 = r2 && m1 = m2
    | (Bot | Cg _), _ -> false

  let join a b =
    match (a, b) with
    | Bot, v | v, Bot -> v
    | Cg (r1, m1), Cg (r2, m2) -> make r1 (gcd (gcd m1 m2) (r1 - r2))

  let mem n = function
    | Bot -> false
    | Cg (r, 0) -> n = r
    | Cg (r, m) -> (((n - r) mod m) + m) mod m = 0

  (* Extended gcd: returns (g, x) with a*x = g (mod b), both a,b > 0. *)
  let ext_gcd a b =
    let rec go r0 r1 s0 s1 = if r1 = 0 then (r0, s0) else go r1 (r0 mod r1) s1 (s0 - (r0 / r1 * s1)) in
    go a b 1 0

  let meet a b =
    match (a, b) with
    | Bot, _ | _, Bot -> Bot
    | Cg (r1, 0), other | other, Cg (r1, 0) ->
        if mem r1 other then Cg (r1, 0) else Bot
    | Cg (_, 1), other | other, Cg (_, 1) -> other
    | Cg (r1, m1), Cg (r2, m2) ->
        let g = gcd m1 m2 in
        if (r1 - r2) mod g <> 0 then Bot
        else
          let l = m1 / g * m2 in
          if l > big then if m1 >= m2 then a else b
          else
            (* CRT: x = r1 (mod m1), x = r2 (mod m2) has the unique
               solution r1 + m1 * t (mod lcm) with
               t = (r2 - r1)/g * inv(m1/g) (mod m2/g). *)
            let _, inv = ext_gcd (m1 / g) (m2 / g) in
            let t = (r2 - r1) / g * inv mod (m2 / g) in
            make (r1 + (m1 * t)) l

  let pp ppf = function
    | Bot -> Fmt.string ppf "_|_"
    | Cg (r, 0) -> Fmt.pf ppf "=%d" r
    | Cg (_, 1) -> Fmt.string ppf "T"
    | Cg (r, m) -> Fmt.pf ppf "%d(mod %d)" r m
end

module V = struct
  type t = { iv : Interval.t; cg : Congruence.t }

  let top = { iv = Interval.top; cg = Congruence.top }
  let bot = { iv = Interval.Bot; cg = Congruence.Bot }

  let is_bot v =
    match (v.iv, v.cg) with Interval.Bot, _ | _, Congruence.Bot -> true | _ -> false

  let of_const n = { iv = Interval.of_const n; cg = Congruence.of_const n }

  (* Round a finite endpoint inward to the nearest member of Cg(r,m). *)
  let round_up_to r m = function
    | Interval.Fin l -> Interval.Fin (l + ((((r - l) mod m) + m) mod m))
    | b -> b

  let round_down_to r m = function
    | Interval.Fin h -> Interval.Fin (h - ((((h - r) mod m) + m) mod m))
    | b -> b

  let make iv cg =
    match (iv, cg) with
    | Interval.Bot, _ | _, Congruence.Bot -> bot
    | Interval.Iv (Fin a, Fin b), _ when a = b -> (
        (* singleton interval: the congruence must contain the constant *)
        if Congruence.mem a cg then of_const a else bot)
    | _, Congruence.Cg (r, 0) -> (
        match Interval.meet iv (Interval.of_const r) with
        | Interval.Bot -> bot
        | _ -> of_const r)
    | _, Congruence.Cg (_, 1) -> { iv; cg }
    | Interval.Iv (lo, hi), Congruence.Cg (r, m) -> (
        let lo = round_up_to r m lo and hi = round_down_to r m hi in
        match Interval.of_bounds lo hi with
        | Interval.Bot -> bot
        | Interval.Iv (Fin a, Fin b) when a = b -> of_const a
        | iv -> { iv; cg })

  let of_interval iv = make iv Congruence.top

  let is_const v =
    match v.iv with
    | Interval.Iv (Fin a, Fin b) when a = b && not (is_bot v) -> Some a
    | _ -> None

  let equal a b = Interval.equal a.iv b.iv && Congruence.equal a.cg b.cg
  let join a b = if is_bot a then b else if is_bot b then a
    else make (Interval.join a.iv b.iv) (Congruence.join a.cg b.cg)
  let meet a b = make (Interval.meet a.iv b.iv) (Congruence.meet a.cg b.cg)

  (* No reduction after widening: rounding endpoints inward could undo
     the jump to infinity and break termination. *)
  let widen old inc =
    if is_bot old then inc
    else if is_bot inc then old
    else { iv = Interval.widen old.iv inc.iv; cg = Congruence.join old.cg inc.cg }

  let narrow old finer =
    if is_bot finer then finer
    else make (Interval.narrow old.iv finer.iv) finer.cg

  let mem n v = Interval.mem n v.iv && Congruence.mem n v.cg

  let of_counted ~start ~step ~trips =
    if trips <= 0 then bot
    else
      let last = start + ((trips - 1) * step) in
      make
        (Interval.of_bounds (Fin (min start last)) (Fin (max start last)))
        (Congruence.make start step)

  (* --- transfer functions --- *)

  let lift2_const f a b =
    match (is_const a, is_const b) with
    | Some x, Some y -> f x y
    | _ -> None

  let bounds v =
    match v.iv with
    | Interval.Iv (lo, hi) -> (lo, hi)
    | Interval.Bot -> (Interval.Pinf, Interval.Ninf)

  let nonneg v = match bounds v with Fin l, _ -> l >= 0 | _ -> false

  (* Endpoint sums: on a lo side Ninf dominates, on a hi side Pinf
     dominates; valid intervals never pair Ninf with Pinf on the same
     side. *)
  let add_lo a b =
    match (a, b) with
    | Interval.Ninf, _ | _, Interval.Ninf -> Interval.Ninf
    | Interval.Pinf, _ | _, Interval.Pinf -> Interval.Pinf
    | Interval.Fin x, Interval.Fin y -> Interval.sat (Fin (x + y))

  let add_hi a b =
    match (a, b) with
    | Interval.Pinf, _ | _, Interval.Pinf -> Interval.Pinf
    | Interval.Ninf, _ | _, Interval.Ninf -> Interval.Ninf
    | Interval.Fin x, Interval.Fin y -> Interval.sat (Fin (x + y))

  let neg_bound = function
    | Interval.Ninf -> Interval.Pinf
    | Interval.Pinf -> Interval.Ninf
    | Interval.Fin n -> Interval.Fin (-n)

  let cg_add a b =
    match (a, b) with
    | Congruence.Bot, _ | _, Congruence.Bot -> Congruence.Bot
    | Congruence.Cg (r1, m1), Congruence.Cg (r2, m2) ->
        Congruence.make (r1 + r2) (gcd m1 m2)

  let cg_sub a b =
    match (a, b) with
    | Congruence.Bot, _ | _, Congruence.Bot -> Congruence.Bot
    | Congruence.Cg (r1, m1), Congruence.Cg (r2, m2) ->
        Congruence.make (r1 - r2) (gcd m1 m2)

  let cg_mul a b =
    match (a, b) with
    | Congruence.Bot, _ | _, Congruence.Bot -> Congruence.Bot
    | Congruence.Cg (r1, m1), Congruence.Cg (r2, m2) ->
        (* (r1 + k m1)(r2 + l m2) = r1 r2 + multiples of gcd-determined
           stride *)
        Congruence.make (r1 * r2) (gcd (gcd (m1 * r2) (m2 * r1)) (m1 * m2))

  let cg_neg = function
    | Congruence.Bot -> Congruence.Bot
    | Congruence.Cg (r, m) -> Congruence.make (-r) m

  let add a b =
    if is_bot a || is_bot b then bot
    else
      let l1, h1 = bounds a and l2, h2 = bounds b in
      make (Interval.of_bounds (add_lo l1 l2) (add_hi h1 h2)) (cg_add a.cg b.cg)

  let neg a =
    if is_bot a then bot
    else
      let lo, hi = bounds a in
      make (Interval.of_bounds (neg_bound hi) (neg_bound lo)) (cg_neg a.cg)

  let sub a b =
    if is_bot a || is_bot b then bot
    else
      let l1, h1 = bounds a and l2, h2 = bounds b in
      make
        (Interval.of_bounds (add_lo l1 (neg_bound h2)) (add_hi h1 (neg_bound l2)))
        (cg_sub a.cg b.cg)

  let mul_bound a b =
    match (a, b) with
    | Interval.Fin 0, _ | _, Interval.Fin 0 -> Interval.Fin 0
    | Interval.Fin x, Interval.Fin y -> Interval.sat (Fin (x * y))
    | Interval.Fin x, inf | inf, Interval.Fin x ->
        if x > 0 then inf else neg_bound inf
    | Interval.Ninf, Interval.Ninf | Interval.Pinf, Interval.Pinf ->
        Interval.Pinf
    | Interval.Ninf, Interval.Pinf | Interval.Pinf, Interval.Ninf ->
        Interval.Ninf

  let corners f a b =
    let l1, h1 = bounds a and l2, h2 = bounds b in
    let c1 = f l1 l2 and c2 = f l1 h2 and c3 = f h1 l2 and c4 = f h1 h2 in
    Interval.of_bounds
      (Interval.min_bound (Interval.min_bound c1 c2) (Interval.min_bound c3 c4))
      (Interval.max_bound (Interval.max_bound c1 c2) (Interval.max_bound c3 c4))

  let mul a b =
    if is_bot a || is_bot b then bot
    else make (corners mul_bound a b) (cg_mul a.cg b.cg)

  (* Truncated division, OCaml semantics.  Division by zero faults
     concretely; abstractly the faulting executions contribute no
     result, so ignoring the zero divisor is sound. *)
  let div a b =
    if is_bot a || is_bot b then bot
    else
      match is_const b with
      | Some 0 -> top
      | Some c ->
          let q x = match x with
            | Interval.Fin v -> Interval.Fin (v / c)
            | inf -> if c > 0 then inf else neg_bound inf
          in
          let l, h = bounds a in
          let c1 = q l and c2 = q h in
          make
            (Interval.of_bounds (Interval.min_bound c1 c2)
               (Interval.max_bound c1 c2))
            Congruence.top
      | None ->
          (* x / y with y >= 1 and x >= 0 shrinks: 0 <= x/y <= x *)
          if nonneg a && Interval.mem 0 b.iv = false && nonneg b then
            let _, h = bounds a in
            make (Interval.of_bounds (Fin 0) h) Congruence.top
          else top

  let rem a b =
    if is_bot a || is_bot b then bot
    else
      match lift2_const (fun x y -> if y = 0 then None else Some (x mod y)) a b with
      | Some r -> of_const r
      | None -> (
          match is_const b with
          | Some 0 -> top
          | Some c ->
              let c = abs c in
              if nonneg a then
                let _, h = bounds a in
                let hi =
                  Interval.min_bound h (Fin (c - 1))
                in
                let cg =
                  match a.cg with
                  | Congruence.Cg (r, m) when m > 0 && m mod c = 0 ->
                      (* every member is r (mod c) and nonnegative, so
                         truncated rem equals mathematical mod *)
                      Congruence.of_const (r mod c)
                  | _ -> Congruence.top
                in
                make (Interval.of_bounds (Fin 0) hi) cg
              else make (Interval.of_bounds (Fin (-(c - 1))) (Fin (c - 1))) Congruence.top
          | None ->
              (* non-constant divisor: |x mod y| < |y| and sign follows x *)
              let _, hb = bounds b in
              let lb_abs, _ = bounds b in
              let mag =
                match (lb_abs, hb) with
                | Interval.Fin l, Interval.Fin h ->
                    Some (max (abs l) (abs h) - 1)
                | _ -> None
              in
              match mag with
              | None -> top
              | Some m ->
                  let m = max m 0 in
                  if nonneg a then
                    let _, ha = bounds a in
                    make
                      (Interval.of_bounds (Fin 0)
                         (Interval.min_bound ha (Fin m)))
                      Congruence.top
                  else make (Interval.of_bounds (Fin (-m)) (Fin m)) Congruence.top)

  let is_pow2_mask c = c >= 0 && c land (c + 1) = 0

  (* x land mask with mask = 2^k - 1 is the mathematical residue
     x mod 2^k for *any* x (two's complement), hence always in
     [0, mask]; a congruence whose modulus is a multiple of 2^k pins
     the result exactly.  When the operand already lies in [0, mask]
     the mask is the identity, so the whole product — congruence
     included — passes through untouched (this is what keeps even/odd
     stride information alive across a subscript's safety mask). *)
  let band_mask a mask =
    (match bounds a with
    | Interval.Fin lo, Interval.Fin hi when lo >= 0 && hi <= mask -> a
    | _ ->
    let p = mask + 1 in
    let cg =
      match a.cg with
      | Congruence.Cg (r, m) when m > 0 && m mod p = 0 ->
          Congruence.of_const (((r mod p) + p) mod p)
      | _ -> Congruence.top
    in
    let hi =
      if nonneg a then
        let _, h = bounds a in
        Interval.min_bound h (Fin mask)
      else Interval.Fin mask
    in
    make (Interval.of_bounds (Fin 0) hi) cg)

  let band a b =
    if is_bot a || is_bot b then bot
    else
      match lift2_const (fun x y -> Some (x land y)) a b with
      | Some r -> of_const r
      | None -> (
          match (is_const a, is_const b) with
          | _, Some c when is_pow2_mask c -> band_mask a c
          | Some c, _ when is_pow2_mask c -> band_mask b c
          | _ ->
              if nonneg a && nonneg b then
                let _, h1 = bounds a and _, h2 = bounds b in
                make
                  (Interval.of_bounds (Fin 0) (Interval.min_bound h1 h2))
                  Congruence.top
              else if nonneg a then
                let _, h1 = bounds a in
                make (Interval.of_bounds (Fin 0) h1) Congruence.top
              else if nonneg b then
                let _, h2 = bounds b in
                make (Interval.of_bounds (Fin 0) h2) Congruence.top
              else top)

  (* Smallest 2^k - 1 covering n >= 0. *)
  let mask_above n =
    let rec go m = if m >= n then m else go ((2 * m) + 1) in
    go 0

  let bor a b =
    if is_bot a || is_bot b then bot
    else
      match lift2_const (fun x y -> Some (x lor y)) a b with
      | Some r -> of_const r
      | None -> (
          match (bounds a, bounds b) with
          | (Interval.Fin l1, Interval.Fin h1), (Interval.Fin l2, Interval.Fin h2)
            when l1 >= 0 && l2 >= 0 ->
              (* x lor y >= max x y and fits in the union of bit
                 widths *)
              make
                (Interval.of_bounds
                   (Fin (max l1 l2))
                   (Fin (mask_above (max h1 h2))))
                Congruence.top
          | _ -> top)

  let bxor a b =
    if is_bot a || is_bot b then bot
    else
      match lift2_const (fun x y -> Some (x lxor y)) a b with
      | Some r -> of_const r
      | None -> (
          match (bounds a, bounds b) with
          | (Interval.Fin l1, Interval.Fin h1), (Interval.Fin l2, Interval.Fin h2)
            when l1 >= 0 && l2 >= 0 ->
              make
                (Interval.of_bounds (Fin 0) (Fin (mask_above (max h1 h2))))
                Congruence.top
          | _ -> top)

  let shl a b =
    if is_bot a || is_bot b then bot
    else
      match is_const b with
      | Some c when c >= 0 && c < 62 -> mul a (of_const (1 lsl c))
      | _ -> top

  (* Logical right shift: only safe to bound when the operand is known
     nonnegative (where it coincides with arithmetic shift and is
     monotone). *)
  let shr a b =
    if is_bot a || is_bot b then bot
    else
      match is_const b with
      | Some c when c >= 0 && c < 62 && nonneg a -> (
          match bounds a with
          | Interval.Fin l, Interval.Fin h ->
              make
                (Interval.of_bounds (Fin (l lsr c)) (Fin (h lsr c)))
                Congruence.top
          | Interval.Fin l, Interval.Pinf ->
              make (Interval.of_bounds (Fin (l lsr c)) Pinf) Congruence.top
          | _ -> top)
      | _ -> top

  let bool_result = make (Interval.of_bounds (Fin 0) (Fin 1)) Congruence.top

  (* --- comparison refinement --- *)

  let pred_bound = function
    | Interval.Fin n -> Interval.Fin (n - 1)
    | b -> b

  let succ_bound = function
    | Interval.Fin n -> Interval.Fin (n + 1)
    | b -> b

  let clamp_hi v hi = meet v (make (Interval.of_bounds Ninf hi) Congruence.top)
  let clamp_lo v lo = meet v (make (Interval.of_bounds lo Pinf) Congruence.top)

  let assume_lt a b =
    if is_bot a || is_bot b then (bot, bot)
    else
      let _, hb = bounds b and la, _ = bounds a in
      (clamp_hi a (pred_bound hb), clamp_lo b (succ_bound la))

  let assume_le a b =
    if is_bot a || is_bot b then (bot, bot)
    else
      let _, hb = bounds b and la, _ = bounds a in
      (clamp_hi a hb, clamp_lo b la)

  let assume_eq a b =
    let m = meet a b in
    (m, m)

  let assume_ne a b =
    (* only endpoint-vs-constant refinement is available *)
    let shave v other =
      match is_const other with
      | None -> v
      | Some c -> (
          match v.iv with
          | Interval.Iv (Fin l, hi) when l = c ->
              make (Interval.of_bounds (Fin (l + 1)) hi) v.cg
          | Interval.Iv (lo, Fin h) when h = c ->
              make (Interval.of_bounds lo (Fin (h - 1))) v.cg
          | _ -> v)
    in
    (shave a b, shave b a)

  let separated a b =
    if is_bot a || is_bot b then false
    else
      (match (a.iv, b.iv) with
      | Interval.Iv (_, h1), Interval.Iv (l2, _)
        when Interval.cmp_bound h1 l2 < 0 ->
          true
      | Interval.Iv (l1, _), Interval.Iv (_, h2)
        when Interval.cmp_bound h2 l1 < 0 ->
          true
      | _ -> false)
      || Congruence.meet a.cg b.cg = Congruence.Bot

  let excludes_zero v = (not (is_bot v)) && not (mem 0 v)

  let pp ppf v =
    if is_bot v then Fmt.string ppf "_|_"
    else
      match v.cg with
      | Congruence.Cg (_, 1) -> Interval.pp ppf v.iv
      | _ -> Fmt.pf ppf "%a%a" Interval.pp v.iv Congruence.pp v.cg

  let to_string v = Fmt.str "%a" pp v
end

(* ------------------------------------------------------------------ *)
(* IR-level range analysis on the widening dataflow solver.            *)
(* ------------------------------------------------------------------ *)

module Ir = struct
  open Ilp_ir

  module Key = struct
    type t =
      | Kreg of int  (** raw register index (negative = virtual) *)
      | Kglobal of string  (** named global scalar cell *)
      | Kslot of string * int  (** stack-slot scalar cell: function, slot *)

    let compare = Stdlib.compare
  end

  module M = Map.Make (Key)

  (* Absent keys mean top, so the empty map is the "know nothing"
     state and joins drop any key the two sides disagree on to top for
     free. *)
  type env = Unreachable | Env of V.t M.t

  let unreachable = Unreachable
  let is_unreachable = function Unreachable -> true | Env _ -> false

  let find k m = match M.find_opt k m with Some v -> v | None -> V.top
  let set k v m = if V.equal v V.top then M.remove k m else M.add k v m

  let env_equal a b =
    match (a, b) with
    | Unreachable, Unreachable -> true
    | Env x, Env y -> M.equal V.equal x y
    | (Unreachable | Env _), _ -> false

  let merge_with f a b =
    match (a, b) with
    | Unreachable, v | v, Unreachable -> v
    | Env x, Env y ->
        Env
          (M.merge
             (fun _ l r ->
               match (l, r) with
               | Some l, Some r ->
                   let v = f l r in
                   if V.equal v V.top then None else Some v
               | _ -> None)
             x y)

  let env_join = merge_with V.join
  let env_widen = merge_with V.widen

  let reg env r =
    match env with
    | Unreachable -> V.bot
    | Env m -> find (Key.Kreg (Reg.index r)) m

  let operand env = function
    | Instr.Oimm n -> V.of_const n
    | Instr.Ofimm _ -> V.top
    | Instr.Oreg r -> reg env r

  (* The scalar memory cell a load/store touches, when it is uniquely
     named.  Scalar regions are one word, so the region itself
     identifies the cell. *)
  let cell_of (i : Instr.t) =
    match i.Instr.mem with
    | None -> None
    | Some mi -> (
        match mi.Mem_info.region with
        | Mem_info.Global name -> Some (Key.Kglobal name)
        | Mem_info.Stack_slot (f, slot) -> Some (Key.Kslot (f, slot))
        | Mem_info.Global_array _ | Mem_info.Global_array_view _
        | Mem_info.Stack_array _ | Mem_info.Arg_slot _ | Mem_info.Unknown ->
            None)

  (* A store we cannot attribute to a disjoint named region may hit any
     tracked cell. *)
  let clobber_cells m =
    M.filter (fun k _ -> match k with Key.Kreg _ -> true | _ -> false) m

  let clobber_globals m =
    M.filter
      (fun k _ -> match k with Key.Kglobal _ -> false | _ -> true)
      m

  let store_may_escape (i : Instr.t) =
    match i.Instr.mem with
    | None -> true
    | Some mi -> (
        match mi.Mem_info.region with Mem_info.Unknown -> true | _ -> false)

  let eval_op env (i : Instr.t) =
    let src n = operand env (List.nth i.Instr.srcs n) in
    match i.Instr.op with
    | Opcode.Add -> V.add (src 0) (src 1)
    | Opcode.Sub -> V.sub (src 0) (src 1)
    | Opcode.Mul -> V.mul (src 0) (src 1)
    | Opcode.Div -> V.div (src 0) (src 1)
    | Opcode.Rem -> V.rem (src 0) (src 1)
    | Opcode.Neg -> V.neg (src 0)
    | Opcode.Not ->
        (* lnot x = -1 - x, exactly *)
        V.sub (V.of_const (-1)) (src 0)
    | Opcode.And -> V.band (src 0) (src 1)
    | Opcode.Or -> V.bor (src 0) (src 1)
    | Opcode.Xor -> V.bxor (src 0) (src 1)
    | Opcode.Shl -> V.shl (src 0) (src 1)
    | Opcode.Shr | Opcode.Sra ->
        (* Sra coincides with Shr on the nonnegative ranges Shr can
           bound; both fall to top otherwise. *)
        V.shr (src 0) (src 1)
    | Opcode.Slt | Opcode.Sle | Opcode.Seq | Opcode.Sne | Opcode.Feq
    | Opcode.Flt | Opcode.Fle ->
        V.bool_result
    | Opcode.Mov | Opcode.Li -> src 0
    | Opcode.Fli | Opcode.Fadd | Opcode.Fsub | Opcode.Fneg | Opcode.Fmul
    | Opcode.Fdiv | Opcode.Itof | Opcode.Ftoi ->
        V.top
    | Opcode.Ld | Opcode.St | Opcode.Beq | Opcode.Bne | Opcode.Blt
    | Opcode.Ble | Opcode.Bgt | Opcode.Bge | Opcode.Jmp | Opcode.Call
    | Opcode.Ret | Opcode.Halt | Opcode.Nop ->
        V.top

  let step env (i : Instr.t) =
    match env with
    | Unreachable -> Unreachable
    | Env m -> (
        match i.Instr.op with
        | Opcode.St ->
            let m =
              if store_may_escape i then clobber_cells m
              else
                match cell_of i with
                | Some key -> set key (operand env (List.nth i.Instr.srcs 0)) m
                | None -> m
            in
            Env m
        | Opcode.Ld ->
            let v =
              match cell_of i with Some key -> find key m | None -> V.top
            in
            let m =
              match i.Instr.dst with
              | Some d -> set (Key.Kreg (Reg.index d)) v m
              | None -> m
            in
            Env m
        | Opcode.Call ->
            (* The callee may write any global; stack slots are
               per-activation and survive (regions_disjoint treats
               distinct functions' slots as disjoint, and a recursive
               activation writes its own frame). *)
            let m = clobber_globals m in
            let m =
              List.fold_left
                (fun m d -> M.remove (Key.Kreg (Reg.index d)) m)
                m (Instr.defs i)
            in
            Env m
        | _ -> (
            match i.Instr.dst with
            | None -> env
            | Some d ->
                let v = eval_op env i in
                Env (set (Key.Kreg (Reg.index d)) v m)))

  (* Refine the taken/fallthrough environments of a conditional branch
     on its two register operands. *)
  let refine_branch (i : Instr.t) ~taken env =
    match env with
    | Unreachable -> Unreachable
    | Env m -> (
        match (i.Instr.op, i.Instr.srcs) with
        | ( (Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Ble | Opcode.Bgt | Opcode.Bge),
            [ Instr.Oreg r1; o2 ] ) -> (
            let a = find (Key.Kreg (Reg.index r1)) m in
            let b = operand env o2 in
            let refined =
              match (i.Instr.op, taken) with
              | Opcode.Beq, true | Opcode.Bne, false -> Some (V.assume_eq a b)
              | Opcode.Beq, false | Opcode.Bne, true -> Some (V.assume_ne a b)
              | Opcode.Blt, true | Opcode.Bge, false -> Some (V.assume_lt a b)
              | Opcode.Ble, true | Opcode.Bgt, false -> Some (V.assume_le a b)
              | Opcode.Bge, true | Opcode.Blt, false ->
                  let b', a' = V.assume_le b a in
                  Some (a', b')
              | Opcode.Bgt, true | Opcode.Ble, false ->
                  let b', a' = V.assume_lt b a in
                  Some (a', b')
              | _ -> None
            in
            match refined with
            | None -> env
            | Some (a', b') ->
                if V.is_bot a' || V.is_bot b' then Unreachable
                else
                  let m = set (Key.Kreg (Reg.index r1)) a' m in
                  let m =
                    match o2 with
                    | Instr.Oreg r2 -> set (Key.Kreg (Reg.index r2)) b' m
                    | _ -> m
                  in
                  Env m)
        | _ -> env)

  (* Single-predecessor blocks inherit the outcome of the
     predecessor's conditional branch: the taken target (when it is
     not also the fallthrough) sees the condition hold, the
     fallthrough sees it fail.  This is what recovers a loop body's
     [i < limit] bound after widening blows the header interval to
     +inf — the descending sweeps then pull the header back down
     through the latch. *)
  let entry_refine (cfg : Cfg_info.t) b v =
    match cfg.Cfg_info.preds.(b) with
    | [ p ] -> (
        match List.rev cfg.Cfg_info.blocks.(p).Block.instrs with
        | term :: _ when Instr.is_branch term -> (
            match term.Instr.target with
            | Some tgt ->
                let lbl = cfg.Cfg_info.blocks.(b).Block.label in
                let is_target = Label.equal tgt lbl in
                let is_fallthrough = b = p + 1 in
                if is_target && not is_fallthrough then
                  refine_branch term ~taken:true v
                else if is_fallthrough && not is_target then
                  refine_branch term ~taken:false v
                else v
            | None -> v)
        | _ -> v)
    | _ -> v

  type t = { entries : (string, env) Hashtbl.t }

  module Env_lattice = struct
    type t = env

    let equal = env_equal
    let join = env_join
    let widen = env_widen
    let pp ppf _ = Fmt.string ppf "<range-env>"
  end

  module T = struct
    module L = Env_lattice

    type ctx = Cfg_info.t

    let prepare cfg = cfg
    let init _ = Unreachable
    let boundary _ = Env M.empty

    let transfer cfg b v =
      let v = entry_refine cfg b v in
      List.fold_left step v cfg.Cfg_info.blocks.(b).Block.instrs
  end

  module Solver = Dataflow.Forward_widen (T)

  let analyze (f : Func.t) =
    let cfg = Cfg_info.build f in
    let sol = Solver.solve cfg in
    let entries = Hashtbl.create 17 in
    Array.iteri
      (fun idx (blk : Block.t) ->
        Hashtbl.replace entries (Label.to_string blk.Block.label)
          (entry_refine cfg idx sol.Dataflow.inb.(idx)))
      cfg.Cfg_info.blocks;
    { entries }

  let block_entry t lbl =
    match Hashtbl.find_opt t.entries (Label.to_string lbl) with
    | Some e -> e
    | None -> Unreachable

  let address env (i : Instr.t) =
    match i.Instr.op with
    | Opcode.Ld ->
        V.add (operand env (List.nth i.Instr.srcs 0)) (V.of_const i.Instr.offset)
    | Opcode.St ->
        V.add (operand env (List.nth i.Instr.srcs 1)) (V.of_const i.Instr.offset)
    | _ -> V.top
end
