(* The static lint suite over one program, built on the dataflow
   instances:

   - use of a virtual register some path reaches unassigned
     (definite assignment)                                   -> error
   - a block unreachable from the function entry             -> warning
   - a pure computation whose result is never used
     (instruction-level liveness)                            -> warning
   - a pure computation available on every incoming path
     (available expressions)                                 -> info

   Errors mean the program can read arbitrary stale values; warnings
   and infos are missed-optimization smells, expected at low
   optimization levels.  [errors_only] runs just the error-severity
   analyses, cheap enough for the per-pass checking pipeline. *)

open Ilp_ir

let label_of (cfg : Cfg_info.t) bi =
  Label.to_string cfg.Cfg_info.blocks.(bi).Block.label

let def_assign_errors cfg fname =
  List.map
    (fun (e : Def_assign.error) ->
      Diagnostics.make Error ~check:"def-assign" ~func:fname
        ~block:(label_of cfg e.Def_assign.block)
        ~instr:(Instr.to_string e.Def_assign.instr)
        (Fmt.str "use of %a before every path assigns it" Reg.pp
           e.Def_assign.reg))
    (Def_assign.errors cfg)

let unreachable_warnings cfg fname =
  let acc = ref [] in
  for bi = Cfg_info.n_blocks cfg - 1 downto 0 do
    if not (Cfg_info.reachable cfg bi) then
      acc :=
        Diagnostics.make Warning ~check:"unreachable" ~func:fname
          ~block:(label_of cfg bi)
          "block is unreachable from the function entry"
        :: !acc
  done;
  !acc

let dead_code_warnings cfg fname =
  let live = Liveness.compute cfg in
  let acc = ref [] in
  Array.iteri
    (fun bi (b : Block.t) ->
      if Cfg_info.reachable cfg bi then begin
        let live_after = Liveness.instr_live_out cfg live bi in
        List.iteri
          (fun k (i : Instr.t) ->
            match i.Instr.dst with
            | Some d
              when Reg.is_virtual d
                   && Opcode.is_pure i.Instr.op
                   && not (Reg.Set.mem d live_after.(k)) ->
                acc :=
                  Diagnostics.make Warning ~check:"dead-code" ~func:fname
                    ~block:(label_of cfg bi) ~instr:(Instr.to_string i)
                    (Fmt.str "result %a is never used" Reg.pp d)
                  :: !acc
            | Some _ | None -> ())
          b.Block.instrs
      end)
    cfg.Cfg_info.blocks;
  List.rev !acc

let redundant_expr_infos cfg fname =
  List.map
    (fun (r : Avail_exprs.redundancy) ->
      Diagnostics.make Info ~check:"redundant-expr" ~func:fname
        ~block:(label_of cfg r.Avail_exprs.block)
        ~instr:(Instr.to_string r.Avail_exprs.instr)
        (Fmt.str "%a is already available on every incoming path"
           Avail_exprs.Expr.pp r.Avail_exprs.expr))
    (Avail_exprs.redundant cfg)

let check_func (f : Func.t) =
  let cfg = Cfg_info.build f in
  let fname = f.Func.name in
  def_assign_errors cfg fname
  @ unreachable_warnings cfg fname
  @ dead_code_warnings cfg fname
  @ redundant_expr_infos cfg fname

let check (p : Program.t) =
  List.concat_map check_func p.Program.functions

let errors_only (p : Program.t) =
  List.concat_map
    (fun (f : Func.t) ->
      def_assign_errors (Cfg_info.build f) f.Func.name)
    p.Program.functions
