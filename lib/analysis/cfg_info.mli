(** Control-flow-graph view of a function: blocks as an array, successor
    and predecessor edges, and a reverse postorder for dataflow
    passes. *)

open Ilp_ir

type t = {
  func : Func.t;
  blocks : Block.t array;
  index_of : (string, int) Hashtbl.t;  (** label text -> block index *)
  succs : int list array;
  preds : int list array;
  rpo : int array;  (** reverse postorder of reachable blocks *)
}

val build : Func.t -> t
val n_blocks : t -> int
val reachable : t -> int -> bool

val to_func : t -> Block.t array -> Func.t
(** Rebuild the function from (possibly rewritten) blocks. *)
