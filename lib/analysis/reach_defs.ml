(* Reaching definitions: which definition sites (register, defining
   instruction id) can reach each block boundary.  A forward
   may-analysis over the union lattice of definition sites.

   Per-block transfer is the textbook gen/kill: a definition of [r]
   kills every other definition site of [r] in the function and
   generates its own site; the last definition of [r] in a block is the
   one that survives into [gen]. *)

open Ilp_ir

module Site = struct
  type t = { reg : Reg.t; instr_id : int }

  let compare a b =
    match Reg.compare a.reg b.reg with
    | 0 -> compare a.instr_id b.instr_id
    | n -> n

  let pp ppf s = Fmt.pf ppf "%a@#%d" Reg.pp s.reg s.instr_id
end

module Set = Stdlib.Set.Make (Site)

module Transfer = struct
  module L = struct
    type t = Set.t

    let equal = Set.equal
    let join = Set.union
    let pp ppf s =
      Fmt.pf ppf "{%a}" (Fmt.list ~sep:Fmt.comma Site.pp) (Set.elements s)
  end

  type ctx = { gen : Set.t array; killed_regs : Reg.Set.t array }

  let prepare (cfg : Cfg_info.t) =
    let n = Cfg_info.n_blocks cfg in
    let gen = Array.make n Set.empty in
    let killed_regs = Array.make n Reg.Set.empty in
    Array.iteri
      (fun bi (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            List.iter
              (fun r ->
                (* a later def of [r] supersedes an earlier one in gen *)
                gen.(bi) <-
                  Set.add
                    { Site.reg = r; instr_id = i.Instr.id }
                    (Set.filter (fun s -> not (Reg.equal s.Site.reg r)) gen.(bi));
                killed_regs.(bi) <- Reg.Set.add r killed_regs.(bi))
              (Instr.defs i))
          b.Block.instrs)
      cfg.Cfg_info.blocks;
    { gen; killed_regs }

  let init _ = Set.empty
  let boundary _ = Set.empty

  let transfer ctx b in_v =
    Set.union ctx.gen.(b)
      (Set.filter
         (fun s -> not (Reg.Set.mem s.Site.reg ctx.killed_regs.(b)))
         in_v)
end

module Solver = Dataflow.Forward (Transfer)

type t = Set.t Dataflow.solution

let compute (cfg : Cfg_info.t) : t = Solver.solve cfg

let reaching_ids (sol : t) bi reg =
  Set.fold
    (fun s acc -> if Reg.equal s.Site.reg reg then s.Site.instr_id :: acc else acc)
    sol.Dataflow.inb.(bi) []
  |> List.sort compare
