(* Available expressions: a pure computation (opcode, source operands,
   offset) is available at a point when every path from the entry has
   evaluated it and none of its source registers has been redefined
   since.  A forward must-analysis over Must_set of syntactic
   expression keys.

   Moves are excluded (they are copies, not computations), as are pure
   ops without register sources (constant loads — trivially available
   and uninteresting).  A call additionally kills every expression with
   a physical source other than the stack pointer: the callee writes
   the return register and its own promoted homes. *)

open Ilp_ir

module Expr = struct
  type t = { eop : Opcode.t; esrcs : Instr.operand list; eoffset : int }

  let compare = Stdlib.compare

  let pp ppf e =
    Fmt.pf ppf "(%s %a%s)" (Opcode.mnemonic e.eop)
      (Fmt.list ~sep:(Fmt.any ", ") Instr.pp_operand)
      e.esrcs
      (if e.eoffset = 0 then "" else Printf.sprintf " +%d" e.eoffset)

  let src_regs e =
    List.filter_map
      (function Instr.Oreg r -> Some r | Instr.Oimm _ | Instr.Ofimm _ -> None)
      e.esrcs

  (* The expression an instruction computes, when it is a candidate. *)
  let of_instr (i : Instr.t) =
    match (i.Instr.op, i.Instr.dst) with
    | Opcode.Mov, _ | _, None -> None
    | op, Some _ when Opcode.is_pure op ->
        let e = { eop = op; esrcs = i.Instr.srcs; eoffset = i.Instr.offset } in
        if src_regs e = [] then None else Some e
    | _ -> None
end

module Set = Stdlib.Set.Make (Expr)
module M = Dataflow.Must_set (Set)

let kill_reg r s =
  Set.filter (fun e -> not (List.exists (Reg.equal r) (Expr.src_regs e))) s

let step (i : Instr.t) s =
  let s =
    if Instr.is_call i then
      Set.filter
        (fun e ->
          List.for_all
            (fun r -> Reg.is_virtual r || Reg.equal r Reg.sp)
            (Expr.src_regs e))
        s
    else s
  in
  let s = List.fold_left (fun s r -> kill_reg r s) s (Instr.defs i) in
  match Expr.of_instr i with
  | Some e
    when not
           (List.exists
              (fun r -> Some r = i.Instr.dst)
              (Expr.src_regs e)) ->
      Set.add e s
  | Some _ | None -> s

module Transfer = struct
  module L = struct
    type t = M.t = Univ | Known of Set.t

    let equal = M.equal
    let join = M.join
    let pp = M.pp Expr.pp
  end

  type ctx = Cfg_info.t

  let prepare cfg = cfg
  let init _ = L.Univ
  let boundary _ = L.Known Set.empty

  let transfer (cfg : ctx) b = function
    | L.Univ -> L.Univ
    | L.Known s ->
        L.Known
          (List.fold_left
             (fun s i -> step i s)
             s
             cfg.Cfg_info.blocks.(b).Block.instrs)
end

module Solver = Dataflow.Forward (Transfer)

type t = M.t Dataflow.solution

let compute (cfg : Cfg_info.t) : t = Solver.solve cfg

type redundancy = { block : int; instr : Instr.t; expr : Expr.t }

(* Re-evaluations of expressions already available on every path —
   missed CSE opportunities, reported as informational lint. *)
let redundant (cfg : Cfg_info.t) =
  let sol = compute cfg in
  let hits = ref [] in
  Array.iteri
    (fun bi (b : Block.t) ->
      match sol.Dataflow.inb.(bi) with
      | M.Univ -> ()
      | M.Known entry ->
          let avail = ref entry in
          List.iter
            (fun (i : Instr.t) ->
              (match Expr.of_instr i with
              | Some e when Set.mem e !avail ->
                  hits := { block = bi; instr = i; expr = e } :: !hits
              | Some _ | None -> ());
              avail := step i !avail)
            b.Block.instrs)
    cfg.Cfg_info.blocks;
  List.rev !hits
