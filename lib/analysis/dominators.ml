(* Dominator tree, computed with the Cooper–Harvey–Kennedy iterative
   algorithm over the reverse postorder. *)

type t = {
  idom : int array;  (** immediate dominator; entry maps to itself *)
  rpo_number : int array;  (** position of each block in reverse postorder *)
}

let compute (cfg : Cfg_info.t) =
  let n = Cfg_info.n_blocks cfg in
  let idom = Array.make n (-1) in
  let rpo_number = Array.make n max_int in
  Array.iteri (fun pos b -> rpo_number.(b) <- pos) cfg.Cfg_info.rpo;
  if n > 0 then idom.(0) <- 0;
  let intersect b1 b2 =
    let f1 = ref b1 and f2 = ref b2 in
    while !f1 <> !f2 do
      while rpo_number.(!f1) > rpo_number.(!f2) do
        f1 := idom.(!f1)
      done;
      while rpo_number.(!f2) > rpo_number.(!f1) do
        f2 := idom.(!f2)
      done
    done;
    !f1
  in
  let changed = ref true in
  while !changed do
    changed := false;
    Array.iter
      (fun b ->
        if b <> 0 then begin
          let processed_preds =
            List.filter (fun p -> idom.(p) >= 0) cfg.Cfg_info.preds.(b)
          in
          match processed_preds with
          | [] -> ()
          | first :: rest ->
              let new_idom = List.fold_left intersect first rest in
              if idom.(b) <> new_idom then begin
                idom.(b) <- new_idom;
                changed := true
              end
        end)
      cfg.Cfg_info.rpo
  done;
  { idom; rpo_number }

(* Does [a] dominate [b]?  (Reflexive.)  Unreachable blocks dominate
   nothing and are dominated by nothing. *)
let dominates t a b =
  if t.idom.(b) < 0 || t.idom.(a) < 0 then false
  else begin
    let rec climb x = if x = a then true else if x = 0 then a = 0 else climb t.idom.(x) in
    climb b
  end

(* Children of each node in the dominator tree. *)
let children t =
  let n = Array.length t.idom in
  let kids = Array.make n [] in
  for b = n - 1 downto 1 do
    let d = t.idom.(b) in
    if d >= 0 && d <> b then kids.(d) <- b :: kids.(d)
  done;
  kids
