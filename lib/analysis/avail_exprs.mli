(** Available expressions — a forward must-instance of the {!Dataflow}
    framework over syntactic (opcode, operands, offset) keys. *)

open Ilp_ir

module Expr : sig
  type t = { eop : Opcode.t; esrcs : Instr.operand list; eoffset : int }

  val compare : t -> t -> int
  val pp : t Fmt.t
  val src_regs : t -> Reg.t list

  val of_instr : Instr.t -> t option
  (** The expression a candidate instruction computes: pure, not a
      move, has a destination and at least one register source. *)
end

module Set : Set.S with type elt = Expr.t

module M : sig
  type t = Univ | Known of Set.t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type t = M.t Dataflow.solution

val compute : Cfg_info.t -> t
(** [Univ] marks blocks unreachable from the entry. *)

type redundancy = { block : int; instr : Instr.t; expr : Expr.t }

val redundant : Cfg_info.t -> redundancy list
(** Re-evaluations of expressions already available on every incoming
    path — missed CSE opportunities. *)
