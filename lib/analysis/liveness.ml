(* Backward liveness analysis over virtual registers, as an instance of
   the generic dataflow framework (Dataflow.Backward over the register
   set lattice).

   Physical registers (stack pointer, return register, promoted home
   registers) are excluded: they are dedicated and never reallocated, so
   only virtual registers need live ranges.

   The hand-rolled postorder solver this module used to contain survives
   verbatim in the property suite, where QCheck pins the framework
   instance to it block-for-block over hundreds of random programs. *)

open Ilp_ir

type t = { live_in : Reg.Set.t array; live_out : Reg.Set.t array }

let block_use_def (b : Block.t) =
  List.fold_left
    (fun (uses, defs) i ->
      let uses =
        List.fold_left
          (fun acc r ->
            if Reg.is_virtual r && not (Reg.Set.mem r defs) then
              Reg.Set.add r acc
            else acc)
          uses (Instr.uses i)
      in
      let defs =
        List.fold_left
          (fun acc r -> if Reg.is_virtual r then Reg.Set.add r acc else acc)
          defs (Instr.defs i)
      in
      (uses, defs))
    (Reg.Set.empty, Reg.Set.empty)
    b.Block.instrs

module Transfer = struct
  module L = Dataflow.Reg_set_lattice

  type ctx = { use : Reg.Set.t array; def : Reg.Set.t array }

  let prepare (cfg : Cfg_info.t) =
    let n = Cfg_info.n_blocks cfg in
    let use = Array.make n Reg.Set.empty in
    let def = Array.make n Reg.Set.empty in
    Array.iteri
      (fun i b ->
        let u, d = block_use_def b in
        use.(i) <- u;
        def.(i) <- d)
      cfg.Cfg_info.blocks;
    { use; def }

  let init _ = Reg.Set.empty
  let boundary _ = Reg.Set.empty

  let transfer ctx b out =
    Reg.Set.union ctx.use.(b) (Reg.Set.diff out ctx.def.(b))
end

module Solver = Dataflow.Backward (Transfer)

let compute (cfg : Cfg_info.t) =
  let s = Solver.solve cfg in
  { live_in = s.Dataflow.inb; live_out = s.Dataflow.outb }

(* Per-instruction live-out sets of one block, derived from the solved
   block-level facts by the usual backward walk; [live_out.(k)] is the
   set of virtual registers live immediately after instruction [k]. *)
let instr_live_out (cfg : Cfg_info.t) (live : t) bi =
  let b = cfg.Cfg_info.blocks.(bi) in
  let instrs = Array.of_list b.Block.instrs in
  let n = Array.length instrs in
  let result = Array.make n Reg.Set.empty in
  let current = ref live.live_out.(bi) in
  for k = n - 1 downto 0 do
    result.(k) <- !current;
    let i = instrs.(k) in
    List.iter
      (fun d -> if Reg.is_virtual d then current := Reg.Set.remove d !current)
      (Instr.defs i);
    List.iter
      (fun u -> if Reg.is_virtual u then current := Reg.Set.add u !current)
      (Instr.uses i)
  done;
  result
