(** Static memory-dependence analysis.

    Decides whether two memory instructions of one basic block can
    touch the same word, refining the conservative region test
    ({!Ilp_ir.Mem_info.disjoint}) the scheduler otherwise relies on.
    Two tiers: a flow-sensitive dataflow tracking each register as a
    symbolic base plus constant-offset interval (so values hoisted out
    of the block — loop counters, LICM'd constants — are visible), and
    a per-block symbolic evaluation folding addresses into linear
    combinations of hash-consed terms with exact native-[int]
    arithmetic.  A third tier evaluates symbolic differences that do
    not fold to a constant over the {!Range.V} reduced product: masked
    or scaled index terms with disjoint interval windows or
    incompatible strides prove the difference nonzero even when its
    exact value is unknown.

    A [No_alias] verdict is a proof obligation: {!Ilp_sched.Check_sched}
    re-derives it for every dependence edge the scheduler dropped, and
    [Diffcheck] compares per-address store streams dynamically. *)

open Ilp_ir

type alias = Must_alias | No_alias | May_alias

val equal_alias : alias -> alias -> bool
val pp_alias : alias Fmt.t

val conservative : Instr.t -> Instr.t -> alias
(** The refinement floor: [No_alias] exactly when
    {!Mem_info.disjoint} proves the annotations apart. *)

type t
(** Analysis result for one function. *)

val analyze : ?ranges:bool -> Func.t -> t
(** [ranges] (default [true]) enables the value-range tier; disabling
    it leaves only the symbolic constant-difference test, for measuring
    what the ranges buy. *)

val classifier : t -> Label.t -> Instr.t -> Instr.t -> alias
(** [classifier t label] classifies instruction pairs of the block
    named [label].  Both instructions must belong to that block;
    anything the analysis has no facts for falls back to
    {!conservative}. *)

val classify_block : Instr.t list -> Instr.t -> Instr.t -> alias
(** A single block in isolation, without cross-block facts — for tests
    and callers holding a bare instruction list. *)

type stats = {
  pairs : int;  (** ordered same-block pairs with at least one store *)
  no_alias : int;  (** pairs proven independent *)
  must_alias : int;  (** pairs proven to touch the same word *)
  pruned : int;
      (** no-alias pairs the conservative rule would have serialized —
          the DDG edges disambiguation removes *)
}

val func_stats : t -> Func.t -> stats
