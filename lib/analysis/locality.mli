(** Which virtual registers are block-local?

    A pass may delete the defining instruction of a virtual register
    only if every occurrence sits in one block; global passes create
    cross-block registers whose definitions must survive local
    cleanups. *)

open Ilp_ir

val block_local_vregs : Func.t -> Reg.t -> bool
(** A predicate valid for the function it was computed from. *)
