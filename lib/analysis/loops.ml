(* Natural loops and loop-nesting depth.

   A back edge is an edge b -> h where h dominates b; the natural loop of
   the edge is h plus every block that can reach b without passing
   through h.  Loop depth weights the register allocator's usage
   estimates and guides loop-invariant code motion. *)

type loop = { header : int; body : int list  (** includes the header *) }

type t = { loops : loop list; depth : int array }

let natural_loop (cfg : Cfg_info.t) header back_source =
  let in_loop = Hashtbl.create 16 in
  Hashtbl.replace in_loop header ();
  let rec add b =
    if not (Hashtbl.mem in_loop b) then begin
      Hashtbl.replace in_loop b ();
      List.iter add cfg.Cfg_info.preds.(b)
    end
  in
  add back_source;
  { header;
    body = Hashtbl.fold (fun b () acc -> b :: acc) in_loop [];
  }

let compute (cfg : Cfg_info.t) =
  let dom = Dominators.compute cfg in
  let n = Cfg_info.n_blocks cfg in
  let loops = ref [] in
  for b = 0 to n - 1 do
    List.iter
      (fun s ->
        if Dominators.dominates dom s b then
          loops := natural_loop cfg s b :: !loops)
      cfg.Cfg_info.succs.(b)
  done;
  (* merge loops sharing a header (multiple back edges) *)
  let tbl = Hashtbl.create 16 in
  List.iter
    (fun l ->
      match Hashtbl.find_opt tbl l.header with
      | None -> Hashtbl.replace tbl l.header l.body
      | Some body ->
          Hashtbl.replace tbl l.header (List.sort_uniq compare (body @ l.body)))
    !loops;
  let merged =
    Hashtbl.fold (fun header body acc -> { header; body } :: acc) tbl []
  in
  let depth = Array.make n 0 in
  List.iter
    (fun l -> List.iter (fun b -> depth.(b) <- depth.(b) + 1) l.body)
    merged;
  { loops = merged; depth }

let depth t b = if b < Array.length t.depth then t.depth.(b) else 0

(* Loops ordered innermost first (by body size). *)
let innermost_first t =
  List.sort (fun a b -> compare (List.length a.body) (List.length b.body)) t.loops
