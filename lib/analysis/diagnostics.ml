(* Shared currency of the static checkers: a severity, a stable
   location (function / block label / rendered instruction — never
   instruction ids, which depend on construction order), and a
   one-line message.  Renderings are deterministic so CI can diff
   them and tests can match on substrings. *)

type severity = Error | Warning | Info

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let pp_severity ppf s =
  Fmt.string ppf
    (match s with Error -> "error" | Warning -> "warning" | Info -> "info")

type t = {
  severity : severity;
  check : string;
  func : string;
  block : string option;
  instr : string option;
  message : string;
}

let make ?block ?instr severity ~check ~func message =
  { severity; check; func; block; instr; message }

let is_error d = d.severity = Error
let errors ds = List.filter is_error ds

let compare a b =
  let c = compare (severity_rank a.severity) (severity_rank b.severity) in
  if c <> 0 then c
  else
    let c = String.compare a.func b.func in
    if c <> 0 then c
    else
      let c = String.compare a.check b.check in
      if c <> 0 then c
      else
        let c = Stdlib.compare a.block b.block in
        if c <> 0 then c
        else
          let c = Stdlib.compare a.instr b.instr in
          if c <> 0 then c else String.compare a.message b.message

let pp ppf d =
  Fmt.pf ppf "%a: [%s] %s" pp_severity d.severity d.check d.func;
  (match d.block with Some b -> Fmt.pf ppf "/%s" b | None -> ());
  (match d.instr with Some i -> Fmt.pf ppf ": `%s`" i | None -> ());
  Fmt.pf ppf ": %s" d.message

let to_string d = Fmt.str "%a" pp d

let render ds =
  List.sort compare ds |> List.map to_string |> String.concat "\n"
