(** Backward liveness analysis over virtual registers — an instance of
    the {!Dataflow} framework ({!Dataflow.Backward} over
    {!Dataflow.Reg_set_lattice}).

    Physical registers (stack pointer, return register, promoted homes)
    are excluded: they are dedicated and never reallocated, so only
    virtual registers need live ranges. *)

open Ilp_ir

type t = { live_in : Reg.Set.t array; live_out : Reg.Set.t array }

val block_use_def : Block.t -> Reg.Set.t * Reg.Set.t
(** Upward-exposed uses and definitions of one block. *)

val compute : Cfg_info.t -> t

val instr_live_out : Cfg_info.t -> t -> int -> Reg.Set.t array
(** [instr_live_out cfg live bi] refines block [bi]'s solution to
    instruction granularity: element [k] is the set of virtual
    registers live immediately after the block's [k]-th instruction. *)
