(** Natural loops and loop-nesting depth.

    A back edge is an edge b → h with h dominating b; the natural loop
    of the edge is h plus every block reaching b without passing through
    h.  Loop depth weights the register allocator's usage estimates and
    guides loop-invariant code motion. *)

type loop = { header : int; body : int list  (** includes the header *) }

type t = { loops : loop list; depth : int array }

val compute : Cfg_info.t -> t

val depth : t -> int -> int
(** Nesting depth of a block (0 outside all loops). *)

val innermost_first : t -> loop list
(** Loops ordered smallest body first. *)
