(* Static memory-dependence analysis: may two memory operations touch
   the same word?

   The scheduler's conservative rule (Ddg, via [Mem_info.disjoint])
   keeps a store->load edge whenever the static region annotations
   cannot prove the accesses apart.  That rule loses exactly the cases
   unrolling creates: the copies of a[i] and a[i+1] compute their
   addresses through *different* virtual registers (and, after LICM,
   through constants hoisted out of the block), so the annotation's
   same-register side condition never fires.

   This module recovers those facts in two tiers:

   1. A flow-sensitive forward dataflow ("Addr_val"): each register maps
      to a symbolic base plus a constant-offset interval —
      [base + [lo, hi]] where the base is an absolute constant, a
      register's value at function entry, or the most recent result of a
      given instruction.  The transfer tracks Li/Mov/Add/Sub exactly;
      every other definition becomes its own base.  A definition site
      re-executing invalidates stale references to its previous value,
      which is what makes [Def] bases sound around loop back edges
      (affine induction steps survive as "Def(increment) + k").

   2. A per-block symbolic evaluation: every register holds a linear
      combination of hash-consed opaque terms (function-entry values,
      pre-block results seeded from tier 1, deterministic operator
      applications, fresh unknowns), folded with native [int] arithmetic
      — the executor's own arithmetic, so constant folding is exact,
      wrap-around included.  Loads are value-numbered through a small
      memory environment with store-to-load forwarding.

   Classification compares the two symbolic addresses: a difference that
   folds to a non-zero constant is [No_alias], to zero is [Must_alias];
   anything else falls back to the conservative [Mem_info.disjoint].
   The verdict therefore only ever refines the conservative analysis.

   Soundness under reordering: every term denotes a value fixed per
   block execution, computed by instructions whose register (RAW) edges
   the scheduler never removes, and a load's value number is killed by
   any store not provably to a different word — so a [No_alias] verdict
   established on the original instruction order remains valid in any
   DDG-respecting permutation of the block. *)

open Ilp_ir

type alias = Must_alias | No_alias | May_alias

let equal_alias (a : alias) (b : alias) = a = b

let pp_alias ppf = function
  | Must_alias -> Fmt.string ppf "must-alias"
  | No_alias -> Fmt.string ppf "no-alias"
  | May_alias -> Fmt.string ppf "may-alias"

let mem_of (i : Instr.t) =
  match i.Instr.mem with Some m -> m | None -> Mem_info.unknown

(* The refinement floor: what the scheduler already knows without any
   value tracking. *)
let conservative (i : Instr.t) (j : Instr.t) =
  if Mem_info.disjoint (mem_of i) (mem_of j) then No_alias else May_alias

(* ------------------------------------------------------------------ *)
(* Tier 1: interprocedural-block value tracking ("Addr_val").          *)

(* Intervals wider than this are dropped at joins and shifts: past a few
   unroll copies apart, a wide interval proves nothing and only delays
   the fixpoint. *)
let width_cap = 16

module Av = struct
  type base =
    | Abs  (** an absolute constant *)
    | Init of int  (** the value register [index] held at function entry *)
    | Def of int  (** the most recent result of instruction [id] *)

  type t = { base : base; lo : int; hi : int }

  let equal a b = a.base = b.base && a.lo = b.lo && a.hi = b.hi

  let pp_base ppf = function
    | Abs -> ()
    | Init r -> Fmt.pf ppf "%a@entry" Reg.pp (Reg.of_index r)
    | Def id -> Fmt.pf ppf "#%d" id

  let pp ppf { base; lo; hi } =
    if lo = hi then Fmt.pf ppf "%a%+d" pp_base base lo
    else Fmt.pf ppf "%a+[%d,%d]" pp_base base lo hi
end

module IntMap = Map.Make (Int)

module Lattice = struct
  (* [Univ] is the value of paths not yet seen (the join identity of a
     must-analysis); a map entry is a proven fact, an absent key is
     "unknown". *)
  type t = Univ | Env of Av.t IntMap.t

  let equal a b =
    match (a, b) with
    | Univ, Univ -> true
    | Env m1, Env m2 -> IntMap.equal Av.equal m1 m2
    | Univ, Env _ | Env _, Univ -> false

  let join a b =
    match (a, b) with
    | Univ, v | v, Univ -> v
    | Env m1, Env m2 ->
        Env
          (IntMap.merge
             (fun _ a b ->
               match (a, b) with
               | Some (a : Av.t), Some (b : Av.t) when a.base = b.base ->
                   let lo = min a.lo b.lo and hi = max a.hi b.hi in
                   if hi - lo <= width_cap then Some { a with lo; hi }
                   else None
               | _ -> None)
             m1 m2)

  let pp ppf = function
    | Univ -> Fmt.string ppf "<univ>"
    | Env m ->
        Fmt.pf ppf "{%a}"
          (Fmt.iter_bindings ~sep:Fmt.comma IntMap.iter (fun ppf (k, v) ->
               Fmt.pf ppf "%a=%a" Reg.pp (Reg.of_index k) Av.pp v))
          m
end

module Transfer = struct
  module L = Lattice

  type ctx = Cfg_info.t

  let prepare cfg = cfg
  let init _ = Lattice.Univ

  (* Every register enters the function holding its (unknown but fixed)
     entry value; copies of one entry value disambiguate against each
     other across blocks. *)
  let boundary (cfg : Cfg_info.t) =
    let m = ref IntMap.empty in
    List.iter
      (fun (b : Block.t) ->
        List.iter
          (fun (i : Instr.t) ->
            List.iter
              (fun r ->
                let k = Reg.index r in
                m :=
                  IntMap.add k
                    { Av.base = Av.Init k; lo = 0; hi = 0 }
                    !m)
              (Instr.uses i @ Instr.defs i))
          b.Block.instrs)
      cfg.Cfg_info.func.Func.blocks;
    Lattice.Env !m

  let shifted (v : Av.t) lo hi =
    let lo' = v.lo + lo and hi' = v.hi + hi in
    if hi' - lo' <= width_cap then Some { v with lo = lo'; hi = hi' }
    else None

  let step m (i : Instr.t) =
    (* references to instruction [i]'s previous result go stale the
       moment it executes again *)
    let m =
      IntMap.filter (fun _ (v : Av.t) -> v.base <> Av.Def i.Instr.id) m
    in
    let find r = IntMap.find_opt (Reg.index r) m in
    let set r v m = IntMap.add (Reg.index r) v m in
    let own_def () = { Av.base = Av.Def i.Instr.id; lo = 0; hi = 0 } in
    if Instr.is_call i then
      (* the callee may clobber anything but restores the stack
         pointer *)
      let m = IntMap.filter (fun k _ -> k = Reg.index Reg.sp) m in
      set Instr.ret_reg (own_def ()) m
    else
      match (i.Instr.op, i.Instr.dst, i.Instr.srcs) with
      | Opcode.Li, Some d, [ Instr.Oimm n ] ->
          set d { Av.base = Av.Abs; lo = n; hi = n } m
      | Opcode.Mov, Some d, [ Instr.Oreg s ] -> (
          match find s with
          | Some v -> set d v m
          | None -> set d (own_def ()) m)
      | (Opcode.Add | Opcode.Sub), Some d, [ Instr.Oreg s1; op2 ] ->
          let sub = i.Instr.op = Opcode.Sub in
          let v =
            match (find s1, op2) with
            | Some v1, Instr.Oimm n ->
                if sub then shifted v1 (-n) (-n) else shifted v1 n n
            | Some v1, Instr.Oreg s2 -> (
                match (v1, find s2) with
                | v1, Some { Av.base = Av.Abs; lo; hi } ->
                    if sub then shifted v1 (-hi) (-lo) else shifted v1 lo hi
                | { Av.base = Av.Abs; lo; hi; _ }, Some v2 when not sub ->
                    shifted v2 lo hi
                | _ -> None)
            | None, _ -> None
            | Some _, Instr.Ofimm _ -> None
          in
          set d (Option.value v ~default:(own_def ())) m
      | _, Some d, _ -> set d (own_def ()) m
      | _, None, _ -> m

  let transfer (cfg : ctx) bi v =
    match v with
    | Lattice.Univ -> Lattice.Univ
    | Lattice.Env m ->
        Lattice.Env
          (List.fold_left step m cfg.Cfg_info.blocks.(bi).Block.instrs)
end

module Solver = Dataflow.Forward (Transfer)

(* ------------------------------------------------------------------ *)
(* Tier 2: per-block symbolic addresses as linear combinations of      *)
(* hash-consed terms.                                                  *)

type tnode =
  | TInit of int  (** register [index]'s value at function entry *)
  | TPre of int  (** instruction [id]'s last result before block entry *)
  | TOpaque of int  (** a fresh unknown, fixed at its creation *)
  | TApp of Opcode.t * int list
      (** deterministic integer operator over term ids *)
  | TLin of (int * int) list * int  (** an embedded linear combination *)

type store = {
  tab : (tnode, int) Hashtbl.t;
  rev : (int, tnode) Hashtbl.t;
  mutable next_id : int;
  mutable next_opaque : int;
}

let new_store () =
  {
    tab = Hashtbl.create 64;
    rev = Hashtbl.create 64;
    next_id = 0;
    next_opaque = 0;
  }

let intern st n =
  match Hashtbl.find_opt st.tab n with
  | Some id -> id
  | None ->
      let id = st.next_id in
      st.next_id <- id + 1;
      Hashtbl.add st.tab n id;
      Hashtbl.add st.rev id n;
      id

let opaque st =
  let k = st.next_opaque in
  st.next_opaque <- k + 1;
  intern st (TOpaque k)

(* A value is [off + sum coeff * term]; coefficient lists are sorted by
   term id with no zero coefficients, so values are canonical and the
   folding is ordinary [int] arithmetic — identical to the executor's. *)
type lin = { coeffs : (int * int) list; off : int }

let lconst n = { coeffs = []; off = n }
let lterm t = { coeffs = [ (t, 1) ]; off = 0 }

let rec merge_coeffs xs ys =
  match (xs, ys) with
  | [], l | l, [] -> l
  | (t1, c1) :: r1, (t2, c2) :: r2 ->
      if t1 < t2 then (t1, c1) :: merge_coeffs r1 ys
      else if t1 > t2 then (t2, c2) :: merge_coeffs xs r2
      else
        let c = c1 + c2 in
        if c = 0 then merge_coeffs r1 r2 else (t1, c) :: merge_coeffs r1 r2

let ladd a b = { coeffs = merge_coeffs a.coeffs b.coeffs; off = a.off + b.off }

let lscale k a =
  if k = 0 then lconst 0
  else { coeffs = List.map (fun (t, c) -> (t, k * c)) a.coeffs; off = k * a.off }

let lsub a b = ladd a (lscale (-1) b)

let embed st l =
  match (l.coeffs, l.off) with
  | [ (t, 1) ], 0 -> t
  | coeffs, off -> intern st (TLin (coeffs, off))

(* Symbolically execute one straight-line block.  [seed] pre-populates
   the register environment from tier-1 facts; any other register read
   lazily binds a fresh opaque (memoized through the environment, so
   re-reads agree and redefinitions forget it).  Returns the symbolic
   address of every memory instruction, keyed by instruction id. *)
let exec_block st ~seed instrs =
  let env : (int, lin) Hashtbl.t = Hashtbl.create 64 in
  seed env;
  (* value-numbered memory: embedded address term -> (address, value) *)
  let memenv : (int, lin * lin) Hashtbl.t = Hashtbl.create 16 in
  let addrs : (int, lin) Hashtbl.t = Hashtbl.create 16 in
  let read_reg r =
    let k = Reg.index r in
    match Hashtbl.find_opt env k with
    | Some v -> v
    | None ->
        let v = lterm (opaque st) in
        Hashtbl.replace env k v;
        v
  in
  let operand = function
    | Instr.Oreg r -> read_reg r
    | Instr.Oimm n -> lconst n
    | Instr.Ofimm _ -> lterm (opaque st)
  in
  let set d v = Hashtbl.replace env (Reg.index d) v in
  let node op args =
    let args = List.map (embed st) args in
    let args =
      if Opcode.is_assoc_commutative op then List.sort compare args else args
    in
    lterm (intern st (TApp (op, args)))
  in
  List.iter
    (fun (i : Instr.t) ->
      if Instr.is_call i then begin
        (* the callee may read and write any register except the
           restored stack pointer, and any memory word *)
        let sp_v = read_reg Reg.sp in
        Hashtbl.reset env;
        Hashtbl.replace env (Reg.index Reg.sp) sp_v;
        Hashtbl.reset memenv;
        set Instr.ret_reg (lterm (opaque st))
      end
      else
        match (i.Instr.op, i.Instr.srcs) with
        | Opcode.Ld, [ base ] ->
            let addr = ladd (operand base) (lconst i.Instr.offset) in
            Hashtbl.replace addrs i.Instr.id addr;
            let key = embed st addr in
            let v =
              match Hashtbl.find_opt memenv key with
              | Some (_, v) -> v
              | None ->
                  let v = lterm (opaque st) in
                  Hashtbl.replace memenv key (addr, v);
                  v
            in
            Option.iter (fun d -> set d v) i.Instr.dst
        | Opcode.St, [ value; base ] ->
            let v = operand value in
            let addr = ladd (operand base) (lconst i.Instr.offset) in
            Hashtbl.replace addrs i.Instr.id addr;
            (* provably different words survive, the same word is
               forwarded, everything else is killed *)
            let keep =
              Hashtbl.fold
                (fun k ((ka, _) as e) acc ->
                  let d = lsub addr ka in
                  if d.coeffs = [] && d.off <> 0 then (k, e) :: acc else acc)
                memenv []
            in
            Hashtbl.reset memenv;
            List.iter (fun (k, e) -> Hashtbl.replace memenv k e) keep;
            Hashtbl.replace memenv (embed st addr) (addr, v)
        | op, srcs -> (
            match i.Instr.dst with
            | None -> ()  (* branches and the like only read registers *)
            | Some d ->
                let v =
                  match (op, srcs) with
                  | Opcode.Li, [ Instr.Oimm n ] -> lconst n
                  | Opcode.Mov, [ s ] -> operand s
                  | Opcode.Add, [ a; b ] -> ladd (operand a) (operand b)
                  | Opcode.Sub, [ a; b ] -> lsub (operand a) (operand b)
                  | Opcode.Neg, [ a ] -> lscale (-1) (operand a)
                  | Opcode.Mul, [ a; b ] ->
                      let va = operand a and vb = operand b in
                      if va.coeffs = [] then lscale va.off vb
                      else if vb.coeffs = [] then lscale vb.off va
                      else node Opcode.Mul [ va; vb ]
                  | ( ( Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Not
                      | Opcode.Shl | Opcode.Shr | Opcode.Sra | Opcode.Slt
                      | Opcode.Sle | Opcode.Seq | Opcode.Sne ),
                      args ) ->
                      (* pure deterministic integer functions: identical
                         applications yield identical values *)
                      node op (List.map operand args)
                  | _ ->
                      (* Div/Rem, floating point, conversions: opaque *)
                      lterm (opaque st)
                in
                set d v))
    instrs;
  addrs

(* ------------------------------------------------------------------ *)
(* Tier 3: value ranges over the symbolic terms.                       *)

(* When the symbolic difference of two addresses does not fold to a
   constant, its residual terms often still have provably small or
   strided footprints: a masked index (i & 7) lies in [0,7] whatever i
   is, a scaled one (2*i) is even.  Evaluating the difference over the
   {!Range.V} reduced product turns those facts into no-alias verdicts
   the purely symbolic tiers cannot reach — disjoint windows
   (base+8+[0,7] vs base+[0,7] differ by [1,15]) and incompatible
   strides (2i vs 2j+1 differ by an odd number) both exclude zero.

   Soundness: every term denotes one fixed value per block execution,
   and its range over-approximates that value across *all* executions,
   so the evaluated difference range contains the concrete difference
   of any single execution; if zero is excluded, the two accesses can
   never coincide. *)

type rangectx = {
  rstore : store;
  def_range : (int, Range.V.t) Hashtbl.t;
      (** instruction id -> range of its result over all executions *)
  init_range : int -> Range.V.t;  (** register index -> entry range *)
  memo : (int, Range.V.t) Hashtbl.t;
}

let rec term_range ctx tid =
  match Hashtbl.find_opt ctx.memo tid with
  | Some v -> v
  | None ->
      Hashtbl.replace ctx.memo tid Range.V.top;
      let v =
        match Hashtbl.find_opt ctx.rstore.rev tid with
        | None | Some (TOpaque _) -> Range.V.top
        | Some (TInit r) -> ctx.init_range r
        | Some (TPre id) ->
            Option.value
              (Hashtbl.find_opt ctx.def_range id)
              ~default:Range.V.top
        | Some (TApp (op, args)) -> (
            let rs = List.map (term_range ctx) args in
            match (op, rs) with
            | Opcode.And, [ a; b ] -> Range.V.band a b
            | Opcode.Or, [ a; b ] -> Range.V.bor a b
            | Opcode.Xor, [ a; b ] -> Range.V.bxor a b
            | Opcode.Not, [ a ] -> Range.V.sub (Range.V.of_const (-1)) a
            | Opcode.Shl, [ a; b ] -> Range.V.shl a b
            | (Opcode.Shr | Opcode.Sra), [ a; b ] -> Range.V.shr a b
            | Opcode.Mul, [ a; b ] -> Range.V.mul a b
            | (Opcode.Slt | Opcode.Sle | Opcode.Seq | Opcode.Sne), _ ->
                Range.V.bool_result
            | _ -> Range.V.top)
        | Some (TLin (coeffs, off)) -> lin_range_parts ctx coeffs off
      in
      Hashtbl.replace ctx.memo tid v;
      v

and lin_range_parts ctx coeffs off =
  List.fold_left
    (fun acc (t, c) ->
      Range.V.add acc (Range.V.mul (Range.V.of_const c) (term_range ctx t)))
    (Range.V.of_const off) coeffs

let lin_range ctx (l : lin) = lin_range_parts ctx l.coeffs l.off

let classify_with ?sharpen addrs (i : Instr.t) (j : Instr.t) =
  match
    (Hashtbl.find_opt addrs i.Instr.id, Hashtbl.find_opt addrs j.Instr.id)
  with
  | Some a, Some b -> (
      let d = lsub a b in
      if d.coeffs = [] then if d.off = 0 then Must_alias else No_alias
      else
        match sharpen with
        | Some ctx when Range.V.excludes_zero (lin_range ctx d) -> No_alias
        | _ -> conservative i j)
  | _ -> conservative i j

(* ------------------------------------------------------------------ *)
(* Per-function analysis.                                              *)

type t = {
  by_label : (string, (int, lin) Hashtbl.t) Hashtbl.t;
  sharpen : rangectx option;
}

let range_ctx st (f : Func.t) =
  let ir = Range.Ir.analyze f in
  let def_range = Hashtbl.create 64 in
  List.iter
    (fun (b : Block.t) ->
      let env = ref (Range.Ir.block_entry ir b.Block.label) in
      if not (Range.Ir.is_unreachable !env) then
        List.iter
          (fun (i : Instr.t) ->
            let env' = Range.Ir.step !env i in
            Option.iter
              (fun d ->
                Hashtbl.replace def_range i.Instr.id (Range.Ir.reg env' d))
              i.Instr.dst;
            env := env')
          b.Block.instrs)
    f.Func.blocks;
  let entry_env =
    match f.Func.blocks with
    | b :: _ -> Range.Ir.block_entry ir b.Block.label
    | [] -> Range.Ir.unreachable
  in
  let init_range k =
    if Range.Ir.is_unreachable entry_env then Range.V.top
    else Range.Ir.reg entry_env (Reg.of_index k)
  in
  { rstore = st; def_range; init_range; memo = Hashtbl.create 64 }

let analyze ?(ranges = true) (f : Func.t) =
  let cfg = Cfg_info.build f in
  let sol = Solver.solve cfg in
  let st = new_store () in
  let by_label = Hashtbl.create (Array.length cfg.Cfg_info.blocks) in
  Array.iteri
    (fun bi (b : Block.t) ->
      let facts =
        if Cfg_info.reachable cfg bi then sol.Dataflow.inb.(bi)
        else Lattice.Univ
      in
      let seed env =
        match facts with
        | Lattice.Univ -> ()
        | Lattice.Env m ->
            IntMap.iter
              (fun k (v : Av.t) ->
                if v.lo = v.hi then
                  let value =
                    match v.base with
                    | Av.Abs -> lconst v.lo
                    | Av.Init r -> ladd (lterm (intern st (TInit r))) (lconst v.lo)
                    | Av.Def id -> ladd (lterm (intern st (TPre id))) (lconst v.lo)
                  in
                  Hashtbl.replace env k value)
              m
      in
      let addrs = exec_block st ~seed b.Block.instrs in
      Hashtbl.replace by_label (Label.to_string b.Block.label) addrs)
    cfg.Cfg_info.blocks;
  { by_label; sharpen = (if ranges then Some (range_ctx st f) else None) }

let classifier t (label : Label.t) =
  match Hashtbl.find_opt t.by_label (Label.to_string label) with
  | Some addrs -> classify_with ?sharpen:t.sharpen addrs
  | None -> conservative

(* A block on its own, with no cross-block facts: for tests and callers
   holding an instruction list rather than a function. *)
let classify_block instrs =
  let st = new_store () in
  classify_with (exec_block st ~seed:(fun _ -> ()) instrs)

(* ------------------------------------------------------------------ *)
(* Disambiguation statistics (surfaced by [ilp lint]).                 *)

type stats = {
  pairs : int;  (** ordered same-block pairs with at least one store *)
  no_alias : int;  (** pairs proven independent *)
  must_alias : int;  (** pairs proven to touch the same word *)
  pruned : int;
      (** no-alias pairs the conservative rule would have serialized —
          the DDG edges disambiguation removes *)
}

let func_stats t (f : Func.t) =
  let pairs = ref 0
  and no_alias = ref 0
  and must_alias = ref 0
  and pruned = ref 0 in
  List.iter
    (fun (b : Block.t) ->
      let classify = classifier t b.Block.label in
      let mem_instrs =
        List.filter (fun i -> Instr.is_memory i) b.Block.instrs
      in
      let rec pair_up = function
        | [] -> []
        | i :: rest ->
            List.iter
              (fun j ->
                if Instr.is_store i || Instr.is_store j then begin
                  incr pairs;
                  match classify i j with
                  | No_alias ->
                      incr no_alias;
                      if not (Mem_info.disjoint (mem_of i) (mem_of j)) then
                        incr pruned
                  | Must_alias -> incr must_alias
                  | May_alias -> ()
                end)
              rest;
            pair_up rest
      in
      ignore (pair_up mem_instrs))
    f.Func.blocks;
  { pairs = !pairs; no_alias = !no_alias; must_alias = !must_alias;
    pruned = !pruned }
