(** The static lint suite: {!Def_assign} use-before-def errors,
    unreachable-block and dead-computation warnings
    (instruction-level {!Liveness}), and redundant-expression infos
    ({!Avail_exprs}), as {!Diagnostics}. *)

open Ilp_ir

val check_func : Func.t -> Diagnostics.t list
val check : Program.t -> Diagnostics.t list

val errors_only : Program.t -> Diagnostics.t list
(** Only the error-severity analyses (definite assignment) — cheap
    enough to run after every pass. *)
