(** Definite assignment of virtual registers — a forward must-instance
    of the {!Dataflow} framework over {!Dataflow.Must_set}. *)

open Ilp_ir

module M : sig
  type t = Univ | Known of Reg.Set.t

  val equal : t -> t -> bool
  val join : t -> t -> t
end

type t = M.t Dataflow.solution

val compute : Cfg_info.t -> t
(** [Univ] marks blocks unreachable from the entry. *)

type error = { block : int; instr : Instr.t; reg : Reg.t }

val errors : Cfg_info.t -> error list
(** Every virtual-register use in a reachable block that some path from
    the entry reaches without a prior assignment, in block then
    instruction order. *)
