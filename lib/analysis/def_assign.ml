(* Definite assignment: a virtual register may only be read once every
   path from the function entry has written it.  A forward must-analysis
   over Must_set (Reg.Set): the entry boundary is [Known empty], paths
   meet by intersection, and a block's transfer adds the virtual
   registers it defines.

   Virtual registers are function-local, so a use reached by an
   unassigned path would read an arbitrary stale value; the allocator
   guards against this dynamically (live-in at entry must be empty) —
   this instance localizes the defect to the exact instruction. *)

open Ilp_ir

module M = Dataflow.Must_set (Reg.Set)

module Transfer = struct
  module L = struct
    type t = M.t = Univ | Known of Reg.Set.t

    let equal = M.equal
    let join = M.join
    let pp = M.pp Reg.pp
  end

  type ctx = Reg.Set.t array  (** virtual registers defined per block *)

  let prepare (cfg : Cfg_info.t) =
    Array.map
      (fun (b : Block.t) ->
        List.fold_left
          (fun acc i ->
            List.fold_left
              (fun acc r ->
                if Reg.is_virtual r then Reg.Set.add r acc else acc)
              acc (Instr.defs i))
          Reg.Set.empty b.Block.instrs)
      cfg.Cfg_info.blocks

  let init _ = L.Univ
  let boundary _ = L.Known Reg.Set.empty

  let transfer ctx b = function
    | L.Univ -> L.Univ
    | L.Known s -> L.Known (Reg.Set.union s ctx.(b))
end

module Solver = Dataflow.Forward (Transfer)

type t = M.t Dataflow.solution

let compute (cfg : Cfg_info.t) : t = Solver.solve cfg

type error = { block : int; instr : Instr.t; reg : Reg.t }

(* Walk each reachable block with the solved entry fact, flagging every
   virtual use not definitely assigned at that point.  Unreachable
   blocks keep [Univ] and are skipped: execution cannot observe them. *)
let errors (cfg : Cfg_info.t) =
  let sol = compute cfg in
  let errs = ref [] in
  Array.iteri
    (fun bi (b : Block.t) ->
      match sol.Dataflow.inb.(bi) with
      | M.Univ -> ()
      | M.Known entry ->
          let assigned = ref entry in
          List.iter
            (fun (i : Instr.t) ->
              List.iter
                (fun r ->
                  if Reg.is_virtual r && not (Reg.Set.mem r !assigned) then
                    errs := { block = bi; instr = i; reg = r } :: !errs)
                (Instr.uses i);
              List.iter
                (fun r ->
                  if Reg.is_virtual r then assigned := Reg.Set.add r !assigned)
                (Instr.defs i))
            b.Block.instrs)
    cfg.Cfg_info.blocks;
  List.rev !errs
