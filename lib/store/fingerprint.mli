(** Canonical fingerprint of a compiled program.

    The trace store keys a capture by everything it depends on; the
    fingerprint covers the compiled program itself, so a trace written
    by one version of the compiler is invalidated the moment any pass
    produces different code — without trying to enumerate what might
    have changed.

    The hash is {e canonical}: it ignores every process-local identity.
    [Instr.id]s are skipped entirely, and generated block labels (fresh
    ["L_N"] names whose counters depend on what else the process
    compiled first) are replaced by their ordinal of first appearance in
    layout order.  Everything observable about execution is covered:
    globals and their initializers, function signatures and frame sizes,
    and per instruction the opcode, destination, operands, canonicalized
    target and constant offset.  [Mem_info] annotations are excluded —
    they steer the scheduler, not execution, and traces are
    schedule-invariant by construction. *)

val program : Ilp_ir.Program.t -> int64
(** FNV-1a over the canonical rendering described above.  Two programs
    compiled from the same source by the same compiler hash equal in any
    two processes; any difference in executed code changes the hash. *)
