(* Canonical program fingerprint — see the .mli for what is and is not
   covered.  The traversal order (globals, then functions in program
   order, blocks in layout order, instructions in block order) is the
   same flat order [Trace_buffer.pack] keys its streams by. *)

open Ilp_ir

let program (p : Program.t) =
  let h = ref Checksum.Fnv.empty in
  let int x = h := Checksum.Fnv.int !h x in
  let str s = h := Checksum.Fnv.string !h s in
  let i64 x = h := Checksum.Fnv.int64 !h x in
  (* block labels canonicalized by ordinal of first appearance *)
  let ordinal = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          let name = Label.to_string b.Block.label in
          if not (Hashtbl.mem ordinal name) then
            Hashtbl.add ordinal name (Hashtbl.length ordinal))
        f.Func.blocks)
    p.Program.functions;
  let label l =
    let name = Label.to_string l in
    match Hashtbl.find_opt ordinal name with
    | Some k ->
        int 0;
        int k
    | None ->
        (* not a block label: a function-name target (source-derived,
           stable across processes) *)
        int 1;
        str name
  in
  int (List.length p.Program.globals);
  List.iter
    (fun (g : Program.global) ->
      str g.Program.gname;
      int g.Program.words;
      match g.Program.init with
      | Program.Zero -> int 0
      | Program.Ints xs ->
          int 1;
          int (List.length xs);
          List.iter int xs
      | Program.Floats xs ->
          int 2;
          int (List.length xs);
          List.iter (fun x -> i64 (Int64.bits_of_float x)) xs)
    p.Program.globals;
  int (List.length p.Program.functions);
  List.iter
    (fun (f : Func.t) ->
      str f.Func.name;
      int f.Func.frame_size;
      int f.Func.n_params;
      int (List.length f.Func.blocks);
      List.iter
        (fun (b : Block.t) ->
          label b.Block.label;
          int (List.length b.Block.instrs);
          List.iter
            (fun (i : Instr.t) ->
              str (Opcode.show i.Instr.op);
              (match i.Instr.dst with
              | None -> int min_int
              | Some r -> int (Reg.index r));
              int (List.length i.Instr.srcs);
              List.iter
                (function
                  | Instr.Oreg r ->
                      int 0;
                      int (Reg.index r)
                  | Instr.Oimm n ->
                      int 1;
                      int n
                  | Instr.Ofimm x ->
                      int 2;
                      i64 (Int64.bits_of_float x))
                i.Instr.srcs;
              (match i.Instr.target with None -> int min_int | Some l -> label l);
              int i.Instr.offset)
            b.Block.instrs)
        f.Func.blocks)
    p.Program.functions;
  !h
