(* Filesystem layer of the trace store.  See the .mli. *)

type t = {
  root : string;
  hits : int Atomic.t;
  misses : int Atomic.t;
  rejects : int Atomic.t;
  writes : int Atomic.t;
}

let rec mkdir_p dir =
  if not (Sys.file_exists dir) then begin
    mkdir_p (Filename.dirname dir);
    try Unix.mkdir dir 0o755 with
    | Unix.Unix_error (Unix.EEXIST, _, _) -> ()
    | Unix.Unix_error (e, _, _) ->
        raise (Sys_error (dir ^ ": " ^ Unix.error_message e))
  end
  else if not (Sys.is_directory dir) then
    raise (Sys_error (dir ^ ": exists and is not a directory"))

let open_root root =
  mkdir_p root;
  { root;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
    rejects = Atomic.make 0;
    writes = Atomic.make 0;
  }

let root t = t.root

let key_for ~workload ~unroll_mode ~unroll_factor ~opt_level
    ~(config : Ilp_machine.Config.t) ~fingerprint =
  { Codec.workload;
    unroll_mode;
    unroll_factor;
    opt_level;
    temp_regs = config.Ilp_machine.Config.temp_regs;
    home_regs = config.Ilp_machine.Config.home_regs;
    fingerprint;
  }

let path_of t key = Filename.concat t.root (Codec.key_id key ^ ".trace")

(* one read: the whole file into a Bytes, then decode in memory *)
let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () ->
      let n = in_channel_length ic in
      let b = Bytes.create n in
      really_input ic b 0 n;
      b)

let touch path = try Unix.utimes path 0.0 0.0 with Unix.Unix_error _ -> ()

let lookup t key =
  let path = path_of t key in
  if not (Sys.file_exists path) then begin
    Atomic.incr t.misses;
    Ok None
  end
  else
    match Codec.decode_for key (read_file path) with
    | Ok packed ->
        Atomic.incr t.hits;
        touch path;
        Ok (Some packed)
    | Error msg ->
        Atomic.incr t.rejects;
        Error (Printf.sprintf "%s: %s" path msg)
    | exception Sys_error msg ->
        Atomic.incr t.rejects;
        Error msg

let save t key packed =
  let bytes = Codec.encode key packed in
  let path = path_of t key in
  let tmp =
    Printf.sprintf "%s.tmp.%d.%d" path (Unix.getpid ())
      (Domain.self () :> int)
  in
  let oc = open_out_bin tmp in
  (try
     output_bytes oc bytes;
     close_out oc
   with e ->
     close_out_noerr oc;
     (try Sys.remove tmp with Sys_error _ -> ());
     raise e);
  Sys.rename tmp path;
  Atomic.incr t.writes

type stats = { hits : int; misses : int; rejects : int; writes : int }

let stats (t : t) =
  { hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    rejects = Atomic.get t.rejects;
    writes = Atomic.get t.writes;
  }

let reset_stats (t : t) =
  Atomic.set t.hits 0;
  Atomic.set t.misses 0;
  Atomic.set t.rejects 0;
  Atomic.set t.writes 0

(* ---- maintenance --------------------------------------------------- *)

let is_trace f = Filename.check_suffix f ".trace"

type entry = {
  file : string;
  bytes : int;
  mtime : float;
  info : (Codec.key * Ilp_sim.Trace_buffer.packed, string) result;
}

let trace_files t =
  match Sys.readdir t.root with
  | files ->
      Array.to_list files
      |> List.filter is_trace
      |> List.map (Filename.concat t.root)
      |> List.sort compare
  | exception Sys_error _ -> []

let list t =
  trace_files t
  |> List.filter_map (fun file ->
         match Unix.stat file with
         | { Unix.st_size; st_mtime; _ } ->
             let info =
               try Codec.decode (read_file file)
               with Sys_error msg -> Error msg
             in
             Some { file; bytes = st_size; mtime = st_mtime; info }
         | exception Unix.Unix_error _ -> None)
  |> List.sort (fun a b -> compare b.mtime a.mtime)

let verify t =
  trace_files t
  |> List.map (fun file ->
         let base = Filename.basename file in
         let result =
           match
             try Codec.decode (read_file file)
             with Sys_error msg -> Error msg
           with
           | Error _ as e -> e
           | Ok (key, _) ->
               let expected = Codec.key_id key ^ ".trace" in
               if String.equal base expected then Ok key
               else
                 Error
                   (Printf.sprintf
                      "file name does not match its content address \
                       (key %s hashes to %s)"
                      (Codec.describe_key key) expected)
         in
         (base, result))

let gc t ~max_bytes =
  let entries =
    (* oldest first: eviction order *)
    List.sort (fun a b -> compare a.mtime b.mtime) (list t)
  in
  let total = List.fold_left (fun acc e -> acc + e.bytes) 0 entries in
  let rec evict total removed = function
    | [] -> List.rev removed
    | _ when total <= max_bytes -> List.rev removed
    | e :: rest ->
        (try Sys.remove e.file with Sys_error _ -> ());
        evict (total - e.bytes) ((Filename.basename e.file, e.bytes) :: removed)
          rest
  in
  evict total [] entries

let clear t =
  match Sys.readdir t.root with
  | files ->
      Array.fold_left
        (fun n f ->
          let is_tmp =
            (* leftover "<hash>.trace.tmp.<pid>.<domain>" files *)
            let rec has_tmp i =
              i + 4 <= String.length f
              && (String.sub f i 4 = ".tmp" || has_tmp (i + 1))
            in
            has_tmp 0
          in
          if is_trace f || is_tmp then begin
            (try Sys.remove (Filename.concat t.root f) with Sys_error _ -> ());
            n + 1
          end
          else n)
        0 files
  | exception Sys_error _ -> 0
