(** The trace store's on-disk format: a versioned, CRC-protected binary
    serialization of a packed trace plus the key that addresses it.

    Byte layout (all integers little-endian):

    {v
    offset  field
    0       magic "ILPTRACE" (8 bytes)
    8       format version (u32)
    12      key block:
              workload name        u16 length + bytes
              unroll mode          u8 (0 none, 1 naive, 2 careful)
              unroll factor        u16
              opt level            u8 (rank 0..4)
              temp_regs, home_regs u16 each
              program fingerprint  i64 (Fingerprint.program)
    .       payload:
              dyn_instrs           i64
              sink                 u8 tag (0 int, 1 float) + i64
              class_counts         u16 count + count x i64
              address streams      u32 n; each: u32 pos, u32 len,
                                   len x i64 (flat effective addresses)
              branch streams       u32 n; each: u32 pos, u32 bits,
                                   u32 words, words x i64 (62 bits/word)
    end-4   CRC-32 (u32) over bytes [0, end-4)
    v}

    Decoding checks, in order: minimum length, magic, format version,
    CRC, then key equality against the expected key — so corruption,
    truncation, version skew and key collisions each fail loudly with a
    distinct message, and a load never half-succeeds. *)

type unroll_mode =
  [ `None | `Naive | `Careful | `Naive_bounded | `Careful_bounded ]
(** [`Naive_bounded] / [`Careful_bounded] are the bound-aware variants
    (full unroll + remainder peeling enabled); they key distinct
    programs, so the tag keeps [describe_key] honest even though the
    fingerprint already separates the traces. *)

type key = {
  workload : string;
  unroll_mode : unroll_mode;
  unroll_factor : int;
  opt_level : int;  (** optimization-level rank, 0..4 *)
  temp_regs : int;
  home_regs : int;
  fingerprint : int64;  (** {!Fingerprint.program} of the pre-scheduled
                            program *)
}

val format_version : int

val key_id : key -> string
(** The content address: 16 hex digits of FNV-1a over the canonical key
    rendering.  Doubles as the file's base name. *)

val describe_key : key -> string
(** Human-readable one-liner for [ilp trace list]. *)

val equal_key : key -> key -> bool

val encode : key -> Ilp_sim.Trace_buffer.packed -> Bytes.t
(** The complete file image, CRC included. *)

val decode : Bytes.t -> (key * Ilp_sim.Trace_buffer.packed, string) result
(** Parse a file image, verifying magic, version and CRC.  Structural
    errors (impossible if the CRC passed, unless the encoder was buggy)
    are also reported as [Error]. *)

val decode_for :
  key -> Bytes.t -> (Ilp_sim.Trace_buffer.packed, string) result
(** {!decode}, then reject loudly when the stored key differs from the
    expected one — a hash collision or a renamed file. *)
