(** Content-addressed persistent trace store: capture once, replay
    forever.

    A store is a directory of [<fnv64>.trace] files, one per capture
    key (workload, unrolling, optimization level, register split,
    canonical program fingerprint — see {!Codec.key}).  The sweep
    engine looks a key up before executing a workload and writes the
    capture back after, so a warm sweep performs zero workload
    execution and goes straight to replay.

    Safety over availability: a file that fails any check — magic,
    format version, CRC, key equality, stream re-attachment — is
    rejected with a loud diagnostic and the caller falls back to a
    fresh capture.  Writes go through a temp file and [rename], so
    concurrent writers (domains of one sweep, or separate processes)
    never expose a torn file.

    A successful lookup touches the file's mtime, making
    {!gc}'s by-mtime eviction a true LRU. *)

type t

val open_root : string -> t
(** Open (creating if needed, including parents) a store rooted at the
    given directory.  Raises [Sys_error] if the path exists and is not
    a directory, or cannot be created. *)

val root : t -> string

val key_for :
  workload:string ->
  unroll_mode:Codec.unroll_mode ->
  unroll_factor:int ->
  opt_level:int ->
  config:Ilp_machine.Config.t ->
  fingerprint:int64 ->
  Codec.key
(** Build a capture key; the register split is read from [config] (the
    only part of a configuration the unscheduled compile — and hence
    the trace — depends on, see {!Ilp_machine.Config.split_key}). *)

val lookup :
  t -> Codec.key -> (Ilp_sim.Trace_buffer.packed option, string) result
(** [Ok (Some p)]: hit (mtime touched).  [Ok None]: miss, no file.
    [Error msg]: a file exists but was rejected — corrupt, truncated,
    version-skewed or key-colliding; the caller should warn and fall
    back to capture.  Updates {!stats} accordingly. *)

val save : t -> Codec.key -> Ilp_sim.Trace_buffer.packed -> unit
(** Write-back: atomic via temp file + rename.  Raises [Sys_error] on
    I/O failure (callers treat the store as best-effort and warn). *)

type stats = { hits : int; misses : int; rejects : int; writes : int }

val stats : t -> stats
val reset_stats : t -> unit

(** {1 Maintenance ([ilp trace] subcommands)} *)

type entry = {
  file : string;  (** absolute path *)
  bytes : int;  (** file size on disk *)
  mtime : float;
  info : (Codec.key * Ilp_sim.Trace_buffer.packed, string) result;
      (** full decode: the key and payload, or why the file is bad *)
}

val list : t -> entry list
(** Every [*.trace] file, newest mtime first, each fully decoded (a
    corrupt file lists as [Error] rather than failing the listing). *)

val verify : t -> (string * (Codec.key, string) result) list
(** Decode every file and additionally require that its name matches
    its key's content address; [(basename, result)] per file. *)

val gc : t -> max_bytes:int -> (string * int) list
(** Evict least-recently-used files (oldest mtime first) until the
    total size is at most [max_bytes]; returns the removed
    [(basename, bytes)]. *)

val clear : t -> int
(** Remove every trace (and stray temp) file; returns how many. *)
