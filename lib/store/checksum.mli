(** Self-contained hashes used by the trace store: FNV-1a (64-bit, the
    content address) and CRC-32 (IEEE, the on-disk integrity check).
    Both are implemented here rather than pulled in as dependencies —
    they are a handful of lines each and the store's file format pins
    their exact behaviour. *)

(** 64-bit FNV-1a, computed in [Int64] so the constants are exact on
    every platform.  Fold bytes into a running state; the final state is
    the hash. *)
module Fnv : sig
  type t = int64

  val empty : t
  (** The FNV-1a offset basis. *)

  val byte : t -> int -> t
  (** Fold one byte (low 8 bits of the argument). *)

  val string : t -> string -> t
  (** Fold every byte of the string, then its length (so
      ["ab"^"c"] and ["a"^"bc"] fed as two strings differ). *)

  val int : t -> int -> t
  (** Fold an OCaml int as 8 little-endian bytes. *)

  val int64 : t -> int64 -> t
  (** Fold 8 little-endian bytes. *)

  val to_hex : t -> string
  (** 16 lowercase hex digits. *)
end

(** CRC-32 (IEEE 802.3 polynomial, reflected), as used by zip/png. *)
module Crc32 : sig
  val bytes : ?crc:int -> Bytes.t -> pos:int -> len:int -> int
  (** CRC of [len] bytes starting at [pos]; [crc] continues a previous
      run (default: fresh).  The result fits 32 bits. *)
end
