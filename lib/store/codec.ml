(* On-disk trace format.  See the .mli for the byte layout. *)

module TB = Ilp_sim.Trace_buffer

type unroll_mode = [ `None | `Naive | `Careful | `Naive_bounded | `Careful_bounded ]

type key = {
  workload : string;
  unroll_mode : unroll_mode;
  unroll_factor : int;
  opt_level : int;
  temp_regs : int;
  home_regs : int;
  fingerprint : int64;
}

let magic = "ILPTRACE"
let format_version = 1

let mode_name = function
  | `None -> "none"
  | `Naive -> "naive"
  | `Careful -> "careful"
  | `Naive_bounded -> "naive-peel"
  | `Careful_bounded -> "careful-peel"

(* the canonical rendering the content address is computed over *)
let key_string k =
  Printf.sprintf "%s|%s|%d|O%d|t%d.h%d|%016Lx" k.workload
    (mode_name k.unroll_mode)
    k.unroll_factor k.opt_level k.temp_regs k.home_regs k.fingerprint

let key_id k = Checksum.Fnv.(to_hex (string empty (key_string k)))

let describe_key k =
  let unroll =
    match (k.unroll_mode, k.unroll_factor) with
    | `None, _ | _, 1 -> ""
    | m, f -> Printf.sprintf " %s-unroll %dx" (mode_name m) f
  in
  Printf.sprintf "%s -O%d%s t%d.h%d" k.workload k.opt_level unroll
    k.temp_regs k.home_regs

let equal_key a b =
  String.equal a.workload b.workload
  && a.unroll_mode = b.unroll_mode
  && a.unroll_factor = b.unroll_factor
  && a.opt_level = b.opt_level
  && a.temp_regs = b.temp_regs
  && a.home_regs = b.home_regs
  && Int64.equal a.fingerprint b.fingerprint

(* ---- encoding ------------------------------------------------------ *)

let add_u8 b x = Buffer.add_uint8 b (x land 0xff)
let add_u16 b x = Buffer.add_uint16_le b (x land 0xffff)
let add_u32 b x = Buffer.add_int32_le b (Int32.of_int x)
let add_i64 b x = Buffer.add_int64_le b (Int64.of_int x)

let add_str b s =
  add_u16 b (String.length s);
  Buffer.add_string b s

let mode_tag = function
  | `None -> 0
  | `Naive -> 1
  | `Careful -> 2
  | `Naive_bounded -> 3
  | `Careful_bounded -> 4

let encode k (pk : TB.packed) =
  let estimate =
    64 + String.length k.workload
    + (8 * Array.length pk.TB.p_class_counts)
    + Array.fold_left
        (fun acc (_, a) -> acc + 8 + (8 * Array.length a))
        0 pk.TB.p_addrs
    + Array.fold_left
        (fun acc (_, _, w) -> acc + 12 + (8 * Array.length w))
        0 pk.TB.p_branches
  in
  let b = Buffer.create estimate in
  Buffer.add_string b magic;
  add_u32 b format_version;
  (* key block *)
  add_str b k.workload;
  add_u8 b (mode_tag k.unroll_mode);
  add_u16 b k.unroll_factor;
  add_u8 b k.opt_level;
  add_u16 b k.temp_regs;
  add_u16 b k.home_regs;
  Buffer.add_int64_le b k.fingerprint;
  (* payload *)
  add_i64 b pk.TB.p_dyn_instrs;
  (match pk.TB.p_sink with
  | Ilp_sim.Value.Int n ->
      add_u8 b 0;
      add_i64 b n
  | Ilp_sim.Value.Float x ->
      add_u8 b 1;
      Buffer.add_int64_le b (Int64.bits_of_float x));
  add_u16 b (Array.length pk.TB.p_class_counts);
  Array.iter (add_i64 b) pk.TB.p_class_counts;
  add_u32 b (Array.length pk.TB.p_addrs);
  Array.iter
    (fun (pos, addrs) ->
      add_u32 b pos;
      add_u32 b (Array.length addrs);
      Array.iter (add_i64 b) addrs)
    pk.TB.p_addrs;
  add_u32 b (Array.length pk.TB.p_branches);
  Array.iter
    (fun (pos, bits, words) ->
      add_u32 b pos;
      add_u32 b bits;
      add_u32 b (Array.length words);
      Array.iter (add_i64 b) words)
    pk.TB.p_branches;
  let body = Buffer.to_bytes b in
  let crc = Checksum.Crc32.bytes body ~pos:0 ~len:(Bytes.length body) in
  let out = Bytes.create (Bytes.length body + 4) in
  Bytes.blit body 0 out 0 (Bytes.length body);
  Bytes.set_int32_le out (Bytes.length body) (Int32.of_int crc);
  out

(* ---- decoding ------------------------------------------------------ *)

exception Bad of string

let bad fmt = Printf.ksprintf (fun s -> raise (Bad s)) fmt

type cur = { buf : Bytes.t; limit : int; mutable pos : int }

let need c n =
  if c.pos + n > c.limit then
    bad "truncated: wanted %d bytes at offset %d of %d" n c.pos c.limit

let u8 c =
  need c 1;
  let x = Bytes.get_uint8 c.buf c.pos in
  c.pos <- c.pos + 1;
  x

let u16 c =
  need c 2;
  let x = Bytes.get_uint16_le c.buf c.pos in
  c.pos <- c.pos + 2;
  x

let u32 c =
  need c 4;
  let x = Int32.to_int (Bytes.get_int32_le c.buf c.pos) land 0xffffffff in
  c.pos <- c.pos + 4;
  x

let i64 c =
  need c 8;
  let x = Bytes.get_int64_le c.buf c.pos in
  c.pos <- c.pos + 8;
  x

let int_field c name =
  let x = i64 c in
  let n = Int64.to_int x in
  if Int64.of_int n <> x then bad "field %s out of range: %Ld" name x;
  n

let str c =
  let n = u16 c in
  need c n;
  let s = Bytes.sub_string c.buf c.pos n in
  c.pos <- c.pos + n;
  s

(* explicit loops everywhere below: the cursor is side-effecting, and
   [Array.init]'s application order is unspecified *)
let int_array c n name =
  if n < 0 || n > (c.limit - c.pos) / 8 then
    bad "%s: implausible element count %d" name n;
  let a = Array.make n 0 in
  for i = 0 to n - 1 do
    a.(i) <- Int64.to_int (i64 c)
  done;
  a

let decode bytes =
  try
    let len = Bytes.length bytes in
    if len < String.length magic + 4 + 4 then bad "truncated: %d bytes" len;
    if Bytes.sub_string bytes 0 (String.length magic) <> magic then
      bad "bad magic: not a trace-store file";
    let c = { buf = bytes; limit = len - 4; pos = String.length magic } in
    let version = u32 c in
    if version <> format_version then
      bad "format version skew: file has v%d, this build reads v%d" version
        format_version;
    let stored_crc =
      Int32.to_int (Bytes.get_int32_le bytes (len - 4)) land 0xffffffff
    in
    let crc = Checksum.Crc32.bytes bytes ~pos:0 ~len:(len - 4) in
    if crc <> stored_crc then
      bad "CRC mismatch: stored %08x, computed %08x (corrupt file)"
        stored_crc crc;
    let workload = str c in
    let unroll_mode =
      match u8 c with
      | 0 -> `None
      | 1 -> `Naive
      | 2 -> `Careful
      | 3 -> `Naive_bounded
      | 4 -> `Careful_bounded
      | t -> bad "unknown unroll-mode tag %d" t
    in
    let unroll_factor = u16 c in
    let opt_level = u8 c in
    let temp_regs = u16 c in
    let home_regs = u16 c in
    let fingerprint = i64 c in
    let key =
      { workload; unroll_mode; unroll_factor; opt_level; temp_regs;
        home_regs; fingerprint }
    in
    let p_dyn_instrs = int_field c "dyn_instrs" in
    let p_sink =
      match u8 c with
      | 0 -> Ilp_sim.Value.Int (int_field c "sink")
      | 1 -> Ilp_sim.Value.Float (Int64.float_of_bits (i64 c))
      | t -> bad "unknown sink tag %d" t
    in
    let n_classes = u16 c in
    let p_class_counts = Array.make n_classes 0 in
    for i = 0 to n_classes - 1 do
      p_class_counts.(i) <- int_field c "class_count"
    done;
    let n_addrs = u32 c in
    if n_addrs > c.limit - c.pos then
      bad "address streams: implausible count %d" n_addrs;
    let p_addrs = Array.make n_addrs (0, [||]) in
    for i = 0 to n_addrs - 1 do
      let pos = u32 c in
      let n = u32 c in
      p_addrs.(i) <- (pos, int_array c n "address stream")
    done;
    let n_branches = u32 c in
    if n_branches > c.limit - c.pos then
      bad "branch streams: implausible count %d" n_branches;
    let p_branches = Array.make n_branches (0, 0, [||]) in
    for i = 0 to n_branches - 1 do
      let pos = u32 c in
      let bits = u32 c in
      let words = u32 c in
      p_branches.(i) <- (pos, bits, int_array c words "branch stream")
    done;
    if c.pos <> c.limit then
      bad "trailing garbage: %d bytes past the payload" (c.limit - c.pos);
    Ok
      ( key,
        { TB.p_dyn_instrs; p_sink; p_class_counts; p_addrs; p_branches } )
  with Bad msg -> Error msg

let decode_for expect bytes =
  match decode bytes with
  | Error _ as e -> e
  | Ok (key, pk) ->
      if equal_key key expect then Ok pk
      else
        Error
          (Printf.sprintf
             "key collision: file holds %s (id %s), expected %s (id %s)"
             (describe_key key) (key_id key) (describe_key expect)
             (key_id expect))
