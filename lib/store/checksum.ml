(* FNV-1a (64-bit) and CRC-32 (IEEE), self-contained.  See the .mli. *)

module Fnv = struct
  type t = int64

  let empty = 0xcbf29ce484222325L
  let prime = 0x100000001b3L

  let byte h b =
    Int64.mul (Int64.logxor h (Int64.of_int (b land 0xff))) prime

  let int64 h x =
    let h = ref h in
    for k = 0 to 7 do
      h := byte !h (Int64.to_int (Int64.shift_right_logical x (8 * k)))
    done;
    !h

  let int h x = int64 h (Int64.of_int x)

  let string h s =
    let h = ref h in
    String.iter (fun c -> h := byte !h (Char.code c)) s;
    int !h (String.length s)

  let to_hex h = Printf.sprintf "%016Lx" h
end

module Crc32 = struct
  (* the standard reflected-polynomial table *)
  let table =
    lazy
      (Array.init 256 (fun n ->
           let c = ref n in
           for _ = 0 to 7 do
             c := if !c land 1 = 1 then 0xedb88320 lxor (!c lsr 1) else !c lsr 1
           done;
           !c))

  let bytes ?(crc = 0) b ~pos ~len =
    let table = Lazy.force table in
    let c = ref (crc lxor 0xffffffff) in
    for k = pos to pos + len - 1 do
      c := table.((!c lxor Char.code (Bytes.get b k)) land 0xff) lxor (!c lsr 8)
    done;
    !c lxor 0xffffffff
end
