(* Met: a board-level timing verifier in the spirit of Metronome.
   A synthesised gate-level netlist (a layered DAG) is traversed in
   topological order computing earliest/latest arrival times per gate,
   then required times propagate backward and slacks identify the
   critical path.  Index-chasing through netlist arrays with min/max
   logic — the fix-point/propagation character of a timing verifier. *)

let source =
  {|
# Netlist: layered DAG, 20 layers x 60 gates.
var layers : int = 20;
var per_layer : int = 60;
var ngates : int = 1200;
arr gtype : int[1200];        # 0 buf, 1 and, 2 or (affects delay)
arr fan0 : int[1200];         # first input gate index (-1 primary input)
arr fan1 : int[1200];         # second input (-1 none)
arr gdelay : int[1200];
arr arrive : int[1200];
arr late : int[1200];
arr required : int[1200];
arr slack : int[1200];
var mseed : int = 777;

fun mrand(n: int) : int {
  mseed = (mseed * 1103515245 + 12345) % 1073741824;
  return (mseed / 1024) % n;
}

fun build() {
  var g : int;
  var layer : int;
  var prev_base : int;
  for (g = 0; g < ngates; g = g + 1) {
    layer = g / per_layer;
    gtype[g] = mrand(3);
    gdelay[g] = 1 + gtype[g] + mrand(4);
    if (layer == 0) {
      fan0[g] = -1;
      fan1[g] = -1;
    } else {
      prev_base = (layer - 1) * per_layer;
      fan0[g] = prev_base + mrand(per_layer);
      if (mrand(4) != 0) {
        fan1[g] = prev_base + mrand(per_layer);
      } else {
        fan1[g] = -1;
      }
    }
  }
}

# forward propagation: earliest and latest arrival per gate
fun propagate() {
  var g : int;
  var a0 : int;
  var a1 : int;
  var l0 : int;
  var l1 : int;
  for (g = 0; g < ngates; g = g + 1) {
    a0 = 0; l0 = 0;
    a1 = 0; l1 = 0;
    if (fan0[g] >= 0) { a0 = arrive[fan0[g]]; l0 = late[fan0[g]]; }
    if (fan1[g] >= 0) { a1 = arrive[fan1[g]]; l1 = late[fan1[g]]; }
    if (a1 > a0) { a0 = a1; }        # max for earliest-possible output
    if (l1 > l0) { l0 = l1; }
    arrive[g] = a0 + gdelay[g];
    late[g] = l0 + gdelay[g] + gtype[g];
  }
}

# backward propagation of required times from the last layer
fun required_times(clock: int) {
  var g : int;
  var r : int;
  for (g = 0; g < ngates; g = g + 1) { required[g] = clock; }
  for (g = ngates - 1; g >= 0; g = g - 1) {
    r = required[g] - gdelay[g];
    if (fan0[g] >= 0 && r < required[fan0[g]]) { required[fan0[g]] = r; }
    if (fan1[g] >= 0 && r < required[fan1[g]]) { required[fan1[g]] = r; }
  }
}

fun slacks() : int {
  var g : int;
  var worst : int = 1000000;
  for (g = 0; g < ngates; g = g + 1) {
    slack[g] = required[g] - arrive[g];
    if (slack[g] < worst) { worst = slack[g]; }
  }
  return worst;
}

fun critical_count(threshold: int) : int {
  var g : int;
  var cnt : int = 0;
  for (g = 0; g < ngates; g = g + 1) {
    if (slack[g] <= threshold) { cnt = cnt + 1; }
  }
  return cnt;
}

fun main() {
  var round : int;
  var worst : int;
  var chk : int = 0;
  build();
  for (round = 0; round < 6; round = round + 1) {
    propagate();
    required_times(200 + round * 7);
    worst = slacks();
    chk = chk + worst + critical_count(worst + 3);
    # perturb a few delays, as after an engineering change
    gdelay[mrand(ngates)] = 1 + mrand(6);
    gdelay[mrand(ngates)] = 1 + mrand(6);
  }
  sink(chk);
}
|}

let workload =
  Workload.make "met" ~expected_sink:(Some (Workload.Exp_int 1583))
    ~description:
      "timing verifier: arrival/required-time propagation and slack \
       analysis over a synthesised 1200-gate netlist"
    source
