(* A 1-D in-place neighbour relaxation sweep: x[k] = wa*x[k] + wb*x[kn]
   with kn = k + 1, repeated over one array.

   The right-neighbour index deliberately flows through the scalar [kn]
   rather than appearing as the syntactic subscript [k + 1]: codegen's
   index peephole only folds literal offsets, so every unrolled copy's
   load of x[kn] carries its own opaque [Mem_info.Sym] base and the
   conservative disambiguator cannot relate it to the copy's store of
   x[k] — the cross-copy pairs serialise.  The memory-dependence
   analysis recovers kn = k + 1 as a linear term, proves the constant
   offsets apart, and lets the copies overlap.  This is the
   disambiguation stress workload behind BENCH_memdep.json.

   Not part of the paper's Section 4 suite: registered in
   [Registry.extras], not [Registry.all], so the aggregate figure
   sweeps are unchanged. *)

let n = 64
let sweeps = 40

let source =
  Printf.sprintf
    {|
# In-place neighbour smoothing: x[k] = wa*x[k] + wb*x[k+1], swept
# repeatedly over one array.
var n : int = %d;
arr x : real[%d];

fun init() {
  var i : int;
  for (i = 0; i < n; i = i + 1) {
    x[i] = real(((i * 37 + 11) %% 64) - 32) / 8.0;
  }
}

fun smooth(wa: real, wb: real) {
  var k : int;
  var kn : int;
  for (k = 0; k < n - 1; k = k + 1) {
    kn = k + 1;
    x[k] = wa * x[k] + wb * x[kn];
  }
}

fun main() {
  var s : int;
  var i : int;
  var chk : real = 0.0;
  init();
  for (s = 0; s < %d; s = s + 1) {
    smooth(0.75, 0.25);
  }
  for (i = 0; i < n; i = i + 1) {
    chk = chk + x[i];
  }
  sink(chk);
}
|}
    n n sweeps

let workload =
  Workload.make "smooth"
    ~description:
      "in-place 1-D neighbour relaxation; same-array store/load pairs at \
       unit offsets — the memory-disambiguation stress kernel"
    ~default_unroll:4 ~numeric:true source
