(* The benchmark suite of Section 4: eight programs, run on every machine
   configuration of the study. *)

let all : Workload.t list =
  [ Ccom.workload;
    Grr.workload;
    Linpack.workload;
    Livermore.workload;
    Met.workload;
    Stanford.workload;
    Whet.workload;
    Yacc.workload ]

(* Workloads outside the paper's eight-program suite: reachable by name
   (CLI, targeted experiments) but excluded from [all], so the aggregate
   Section 4 sweeps — and the tests pinning them — are unchanged. *)
let extras : Workload.t list = [ Smooth.workload; Redblack.workload ]
let names = List.map (fun w -> w.Workload.name) all

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) (all @ extras)

let numeric = List.filter (fun w -> w.Workload.numeric) all
let non_numeric = List.filter (fun w -> not w.Workload.numeric) all
