(* The benchmark suite of Section 4: eight programs, run on every machine
   configuration of the study. *)

let all : Workload.t list =
  [ Ccom.workload;
    Grr.workload;
    Linpack.workload;
    Livermore.workload;
    Met.workload;
    Stanford.workload;
    Whet.workload;
    Yacc.workload ]

let names = List.map (fun w -> w.Workload.name) all

let find name =
  List.find_opt (fun w -> String.equal w.Workload.name name) all

let numeric = List.filter (fun w -> w.Workload.numeric) all
let non_numeric = List.filter (fun w -> not w.Workload.numeric) all
