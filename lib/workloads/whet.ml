(* Whetstone.  The original depends on transcendental functions from the
   Fortran runtime; since the simulated machine has no math library, the
   benchmark carries its own (sin/cos by Taylor series, exp/log by
   series/Newton, sqrt by Newton), which is both faithful to the era and
   keeps the FP-heavy, call-heavy character of Whetstone. *)

let source =
  {|
# Whetstone with a software math library.
arr e1 : real[4];
var t : real = 0.499975;
var t1 : real = 0.50025;
var t2 : real = 2.0;

var pi : real = 3.14159265358979;

fun mysqrt(a: real) : real {
  var g : real;
  var i : int;
  if (a <= 0.0) { return 0.0; }
  g = a;
  if (g > 1.0) { g = a / 2.0; }
  for (i = 0; i < 12; i = i + 1) {
    g = 0.5 * (g + a / g);
  }
  return g;
}

fun mysin(x: real) : real {
  var term : real;
  var sum : real;
  var k : int;
  var x2 : real;
  # range reduce into [-pi, pi]
  while (x > pi) { x = x - 2.0 * pi; }
  while (x < -pi) { x = x + 2.0 * pi; }
  term = x;
  sum = x;
  x2 = x * x;
  for (k = 1; k < 8; k = k + 1) {
    term = -term * x2 / real((2 * k) * (2 * k + 1));
    sum = sum + term;
  }
  return sum;
}

fun mycos(x: real) : real {
  return mysin(x + pi / 2.0);
}

fun myatan(x: real) : real {
  var sum : real;
  var term : real;
  var x2 : real;
  var k : int;
  var flip : int = 0;
  var big : int = 0;
  if (x < 0.0) { x = -x; flip = 1; }
  if (x > 1.0) { x = 1.0 / x; big = 1; }
  term = x;
  sum = x;
  x2 = x * x;
  for (k = 1; k < 12; k = k + 1) {
    term = -term * x2;
    sum = sum + term / real(2 * k + 1);
  }
  if (big == 1) { sum = pi / 2.0 - sum; }
  if (flip == 1) { sum = -sum; }
  return sum;
}

fun myexp(x: real) : real {
  var sum : real = 1.0;
  var term : real = 1.0;
  var k : int;
  var neg : int = 0;
  if (x < 0.0) { x = -x; neg = 1; }
  for (k = 1; k < 16; k = k + 1) {
    term = term * x / real(k);
    sum = sum + term;
  }
  if (neg == 1) { sum = 1.0 / sum; }
  return sum;
}

fun mylog(a: real) : real {
  # Newton iterations on exp(y) = a
  var yv : real = 0.0;
  var i : int;
  var e : real;
  if (a <= 0.0) { return 0.0; }
  for (i = 0; i < 10; i = i + 1) {
    e = myexp(yv);
    yv = yv + (a - e) / e;
  }
  return yv;
}

# module 3: array elements
fun p0(n: int) {
  var i : int;
  for (i = 0; i < n; i = i + 1) {
    e1[0] = (e1[0] + e1[1] + e1[2] - e1[3]) * t;
    e1[1] = (e1[0] + e1[1] - e1[2] + e1[3]) * t;
    e1[2] = (e1[0] - e1[1] + e1[2] + e1[3]) * t;
    e1[3] = (-e1[0] + e1[1] + e1[2] + e1[3]) * t;
  }
}

# module 7: trig functions
fun p3(x: real, yy: real) : real {
  var xa : real;
  var xb : real;
  xa = t * myatan(t2 * mysin(x) * mycos(x) / (mycos(x + yy) + mycos(x - yy) - 1.0));
  xb = t * myatan(t2 * mysin(yy) * mycos(yy) / (mycos(x + yy) + mycos(x - yy) - 1.0));
  return xa + xb;
}

# module 8: procedure calls
var p8x : real;
var p8y : real;
var p8z : real;

fun p8(x: real, yy: real) {
  p8x = t * (x + yy);
  p8y = t * (p8x + yy);
  p8z = (p8x + p8y) / t2;
}

# module 11: standard functions
fun p11(n: int) : real {
  var i : int;
  var x : real = 0.75;
  for (i = 0; i < n; i = i + 1) {
    x = mysqrt(myexp(mylog(x) / t1));
  }
  return x;
}

fun main() {
  var chk : real = 0.0;
  var i : int;
  var x : real;
  var yy : real;

  e1[0] = 1.0; e1[1] = -1.0; e1[2] = -1.0; e1[3] = -1.0;
  p0(40);
  chk = chk + e1[0] + e1[1] + e1[2] + e1[3];

  # module 4: conditional jumps
  var j : int = 1;
  for (i = 0; i < 100; i = i + 1) {
    if (j == 1) { j = 2; } else { j = 3; }
    if (j > 2)  { j = 0; } else { j = 1; }
    if (j < 1)  { j = 1; } else { j = 0; }
  }
  chk = chk + real(j);

  # module 6: integer arithmetic
  var ik : int = 1;
  var il : int = 2;
  var im : int = 3;
  for (i = 0; i < 120; i = i + 1) {
    ik = ik * (il - ik) * (im - il);
    il = im * il - (im - ik) * il;
    im = (im + il) * ik;
    ik = ik % 97; il = il % 89; im = im % 83;
    if (ik < 0) { ik = -ik; }
    if (il < 0) { il = -il; }
    if (im < 0) { im = -im; }
  }
  chk = chk + real(ik + il + im);

  # module 7
  x = 0.5;
  yy = 0.5;
  for (i = 0; i < 8; i = i + 1) {
    x = p3(x, yy);
  }
  chk = chk + x;

  # module 8
  p8x = 1.0; p8y = 1.0; p8z = 1.0;
  for (i = 0; i < 60; i = i + 1) {
    p8(p8z, p8y);
  }
  chk = chk + p8z;

  # module 11
  chk = chk + p11(12);

  sink(chk);
}
|}

let workload =
  Workload.make "whet" ~expected_sink:(Some (Workload.Exp_float 0.10384052853857961))
    ~description:
      "Whetstone with a software math library (Taylor sin/atan/exp, Newton \
       sqrt/log); FP and call heavy"
    ~numeric:true source
