(* Grr: a printed-circuit-board router in the spirit of DEC WRL's grr —
   Lee's breadth-first wavefront algorithm on a grid with obstacles.
   Each net floods outward from its source until the target is reached,
   then backtraces the path and marks it as an obstacle for later nets.
   Queue management, grid indexing and data-dependent branches dominate,
   like the original router. *)

let source =
  {|
# 48 x 48 routing grid.
# cell values: 0 free, -1 obstacle, k>0 wavefront distance k
var w : int = 48;
arr grid : int[2304];
arr queue_x : int[4096];
arr queue_y : int[4096];
var qhead : int = 0;
var qtail : int = 0;
var rseed : int = 4242;

fun rrand(n: int) : int {
  rseed = (rseed * 1103515245 + 12345) % 1073741824;
  return (rseed / 1024) % n;
}

fun reset_wave() {
  var i : int;
  for (i = 0; i < 2304; i = i + 1) {
    if (grid[i] > 0) { grid[i] = 0; }
  }
}

fun enqueue(x: int, y: int) {
  queue_x[qtail] = x;
  queue_y[qtail] = y;
  qtail = (qtail + 1) % 4096;
}

# flood from (sx,sy); returns the distance to (tx,ty), or -1
fun flood(sx: int, sy: int, tx: int, ty: int) : int {
  var x : int;
  var y : int;
  var d : int;
  var found : int = -1;
  qhead = 0;
  qtail = 0;
  grid[sy * w + sx] = 1;
  enqueue(sx, sy);
  while (qhead != qtail && found < 0) {
    x = queue_x[qhead];
    y = queue_y[qhead];
    qhead = (qhead + 1) % 4096;
    d = grid[y * w + x];
    if (x == tx && y == ty) {
      found = d;
    } else {
      if (x > 0 && grid[y * w + x - 1] == 0) {
        grid[y * w + x - 1] = d + 1;
        enqueue(x - 1, y);
      }
      if (x < w - 1 && grid[y * w + x + 1] == 0) {
        grid[y * w + x + 1] = d + 1;
        enqueue(x + 1, y);
      }
      if (y > 0 && grid[(y - 1) * w + x] == 0) {
        grid[(y - 1) * w + x] = d + 1;
        enqueue(x, y - 1);
      }
      if (y < w - 1 && grid[(y + 1) * w + x] == 0) {
        grid[(y + 1) * w + x] = d + 1;
        enqueue(x, y + 1);
      }
    }
  }
  return found;
}

# walk back from the target along decreasing distances, marking the path
fun backtrace(tx: int, ty: int) : int {
  var x : int = tx;
  var y : int = ty;
  var d : int;
  var len : int = 0;
  var moved : int;
  d = grid[y * w + x];
  while (d > 1) {
    grid[y * w + x] = -1;       # path becomes an obstacle
    len = len + 1;
    moved = 0;
    if (moved == 0 && x > 0 && grid[y * w + x - 1] == d - 1) {
      x = x - 1; moved = 1;
    }
    if (moved == 0 && x < w - 1 && grid[y * w + x + 1] == d - 1) {
      x = x + 1; moved = 1;
    }
    if (moved == 0 && y > 0 && grid[(y - 1) * w + x] == d - 1) {
      y = y - 1; moved = 1;
    }
    if (moved == 0 && y < w - 1 && grid[(y + 1) * w + x] == d - 1) {
      y = y + 1; moved = 1;
    }
    if (moved == 0) { return -len; }
    d = d - 1;
  }
  grid[y * w + x] = -1;
  return len + 1;
}

fun place_obstacles() {
  var i : int;
  var x : int;
  var y : int;
  for (i = 0; i < 160; i = i + 1) {
    x = rrand(w);
    y = rrand(w);
    grid[y * w + x] = -1;
  }
}

fun main() {
  var net : int;
  var sx : int;
  var sy : int;
  var tx : int;
  var ty : int;
  var d : int;
  var routed : int = 0;
  var total_len : int = 0;
  var i : int;
  for (i = 0; i < 2304; i = i + 1) { grid[i] = 0; }
  place_obstacles();
  for (net = 0; net < 12; net = net + 1) {
    sx = rrand(w); sy = rrand(w);
    tx = rrand(w); ty = rrand(w);
    if (grid[sy * w + sx] == 0 && grid[ty * w + tx] == 0) {
      d = flood(sx, sy, tx, ty);
      if (d > 0) {
        total_len = total_len + backtrace(tx, ty);
        routed = routed + 1;
      }
    }
    reset_wave();
  }
  sink(routed * 100000 + total_len);
}
|}

let workload =
  Workload.make "grr" ~expected_sink:(Some (Workload.Exp_int 500244))
    ~description:
      "PC board router: Lee breadth-first wavefront expansion with \
       backtrace over a 48x48 grid"
    source
