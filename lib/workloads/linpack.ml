(* Linpack: LU factorisation with partial pivoting and back substitution,
   double precision, dominated by the daxpy inner loop exactly as the
   original.  The official Linpack ships with daxpy unrolled four times;
   here the loop is written cleanly and the AST-level unroller reproduces
   the official form (default_unroll = 4), so Figure 4-6 can sweep the
   unrolling factor mechanically. *)

let n = 32

let source =
  Printf.sprintf
    {|
# Linpack kernel: solve A x = b by LU factorisation (dgefa + dgesl).
var n : int = %d;
arr a : real[%d];     # n x n, row major: a[i*n + j]
arr b : real[%d];
arr x : real[%d];
var rs : int = 99;

fun fake_rand() : real {
  rs = (rs * 1103515245 + 12345) %% 1073741824;
  return real(rs) / 1073741824.0 - 0.5;
}

fun matgen() {
  var i : int;
  var j : int;
  for (i = 0; i < n; i = i + 1) {
    for (j = 0; j < n; j = j + 1) {
      a[i * n + j] = fake_rand();
    }
  }
  # diagonally dominant so pivoting stays tame
  for (i = 0; i < n; i = i + 1) {
    a[i * n + i] = a[i * n + i] + 4.0;
    b[i] = 1.0;
  }
}

# y[yoff..yoff+m-1] += da * x[xoff..xoff+m-1]  -- the daxpy inner loop
fun daxpy(m: int, da: real, xoff: int, yoff: int) {
  var k : int;
  if (da == 0.0) { return; }
  for (k = 0; k < m; k = k + 1) {
    a[yoff + k] = a[yoff + k] + da * a[xoff + k];
  }
}

fun idamax(m: int, off: int, stride: int) : int {
  var best : int = 0;
  var k : int;
  var v : real;
  var bv : real = a[off];
  if (bv < 0.0) { bv = -bv; }
  for (k = 1; k < m; k = k + 1) {
    v = a[off + k * stride];
    if (v < 0.0) { v = -v; }
    if (v > bv) { bv = v; best = k; }
  }
  return best;
}

fun dgefa() {
  var k : int;
  var i : int;
  var p : int;
  var t : real;
  var pivot : real;
  for (k = 0; k < n - 1; k = k + 1) {
    p = k + idamax(n - k, k * n + k, n);
    # swap rows k and p from column k on
    if (p != k) {
      for (i = k; i < n; i = i + 1) {
        t = a[k * n + i];
        a[k * n + i] = a[p * n + i];
        a[p * n + i] = t;
      }
      t = b[k]; b[k] = b[p]; b[p] = t;
    }
    pivot = a[k * n + k];
    for (i = k + 1; i < n; i = i + 1) {
      t = -(a[i * n + k] / pivot);
      a[i * n + k] = t;
      daxpy(n - k - 1, t, k * n + k + 1, i * n + k + 1);
    }
  }
}

fun dgesl() {
  var k : int;
  var i : int;
  var s : real;
  # forward elimination of b using stored multipliers
  for (k = 0; k < n - 1; k = k + 1) {
    for (i = k + 1; i < n; i = i + 1) {
      b[i] = b[i] + a[i * n + k] * b[k];
    }
  }
  # back substitution
  for (k = n - 1; k >= 0; k = k - 1) {
    s = b[k];
    for (i = k + 1; i < n; i = i + 1) {
      s = s - a[k * n + i] * x[i];
    }
    x[k] = s / a[k * n + k];
  }
}

fun main() {
  var i : int;
  var chk : real = 0.0;
  matgen();
  dgefa();
  dgesl();
  # residual-style checksum over the solution
  for (i = 0; i < n; i = i + 1) {
    chk = chk + x[i];
  }
  sink(chk);
}
|}
    n (n * n) n n


(* The careful variant: identical computation, but daxpy and the forward
   elimination access their source and destination rows through declared
   [view]s, encoding the interprocedural alias fact (source row <> 
   destination row) that the paper established by hand for its careful
   unrolling. *)
let careful_source =
  let plain = source in
  let views = "view adst of a;\nview asrc of a;\nview bdst of b;\nview bsrc of b;\n" in
  let daxpy_old =
    "  for (k = 0; k < m; k = k + 1) {\n    a[yoff + k] = a[yoff + k] + da * a[xoff + k];\n  }"
  in
  let daxpy_new =
    "  for (k = 0; k < m; k = k + 1) {\n    adst[yoff + k] = adst[yoff + k] + da * asrc[xoff + k];\n  }"
  in
  let fwd_old =
    "    for (i = k + 1; i < n; i = i + 1) {\n      b[i] = b[i] + a[i * n + k] * b[k];\n    }"
  in
  let fwd_new =
    "    for (i = k + 1; i < n; i = i + 1) {\n      bdst[i] = bdst[i] + a[i * n + k] * bsrc[k];\n    }"
  in
  let replace sub by str =
    match String.index_opt str sub.[0] with
    | _ ->
        let slen = String.length sub in
        let rec go i =
          if i + slen > String.length str then str
          else if String.sub str i slen = sub then
            String.sub str 0 i ^ by
            ^ String.sub str (i + slen) (String.length str - i - slen)
          else go (i + 1)
        in
        go 0
  in
  let plain = replace daxpy_old daxpy_new plain in
  let plain = replace fwd_old fwd_new plain in
  views ^ plain

let workload =
  Workload.make "linpack" ~expected_sink:(Some (Workload.Exp_float 8.5542581900912769))
    ~description:
      "LU factorisation + solve (dgefa/dgesl), daxpy-dominated, double \
       precision, official form unrolled 4x"
    ~careful_source ~default_unroll:4 ~numeric:true source
