(** The benchmark suite of Section 4: the paper's eight programs. *)

val all : Workload.t list
(** ccom, grr, linpack, livermore, met, stanford, whet, yacc — in that
    order. *)

val names : string list
val find : string -> Workload.t option

val numeric : Workload.t list
(** linpack, livermore, whet — the paper's "numeric benchmarks". *)

val non_numeric : Workload.t list
