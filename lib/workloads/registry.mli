(** The benchmark suite of Section 4: the paper's eight programs. *)

val all : Workload.t list
(** ccom, grr, linpack, livermore, met, stanford, whet, yacc — in that
    order. *)

val extras : Workload.t list
(** Workloads outside the paper's suite ([smooth], the symbolic
    memory-disambiguation stress kernel, and [redblack], its
    value-range counterpart): found by {!find} but never part of
    {!all}, {!names} or the aggregate sweeps. *)

val names : string list

val find : string -> Workload.t option
(** Looks up [all] and [extras] by name. *)

val numeric : Workload.t list
(** linpack, livermore, whet — the paper's "numeric benchmarks". *)

val non_numeric : Workload.t list
