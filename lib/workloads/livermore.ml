(* The first 14 Livermore loops, double precision, not unrolled (the
   paper's default).  Each kernel keeps the dependence structure of the
   original: kernels 5, 6 and 11 are the linear recurrences the paper
   singles out as benefiting little from unrolling. *)

let source =
  {|
# Livermore loops 1..14 over shared arrays, sized to keep the run short.
var n : int = 64;
arr xx : real[1001];
arr y  : real[1001];
arr z  : real[1001];
arr u  : real[1001];
arr v  : real[1001];
arr w  : real[1001];
arr px : real[375];    # 15 x 25 planes for kernel 7/13 style access
arr cx : real[375];
arr b  : real[400];    # kernel 4/5/6 band matrices
arr p  : real[512];    # kernel 13/14 particles
arr h  : real[512];
var q : real = 0.001;
var r : real = 4.86;
var t : real = 276.0;

fun init() {
  var k : int;
  for (k = 0; k < 1001; k = k + 1) {
    xx[k] = 0.001 * real(k % 31);
    y[k]  = 0.0013 * real(k % 29);
    z[k]  = 0.0017 * real(k % 37);
    u[k]  = 0.0019 * real(k % 41);
    v[k]  = 0.0007 * real(k % 23);
    w[k]  = 0.0011 * real(k % 43);
  }
  for (k = 0; k < 375; k = k + 1) {
    px[k] = 0.0002 * real(k % 19);
    cx[k] = 0.0003 * real(k % 17);
  }
  for (k = 0; k < 400; k = k + 1) { b[k] = 0.0004 * real(k % 13); }
  for (k = 0; k < 512; k = k + 1) {
    p[k] = 0.001 * real(k % 11);
    h[k] = 0.002 * real(k % 7);
  }
}

# kernel 1: hydro fragment
fun k1() {
  var k : int;
  for (k = 0; k < 400; k = k + 1) {
    xx[k] = q + y[k] * (r * z[k + 10] + t * z[k + 11]);
  }
}

# kernel 2: incomplete Cholesky conjugate gradient excerpt
fun k2() {
  var k : int;
  var ipntp : int = 0;
  var ipnt : int;
  var ii : int = 256;
  var i : int;
  while (ii > 0) {
    ipnt = ipntp;
    ipntp = ipntp + ii;
    ii = ii / 2;
    i = ipntp;
    for (k = ipnt + 1; k < ipntp; k = k + 2) {
      i = i + 1;
      xx[i] = xx[k] - v[k] * xx[k - 1] - v[k + 1] * xx[k + 1];
    }
  }
}

# kernel 3: inner product
fun k3() : real {
  var k : int;
  var qq : real = 0.0;
  for (k = 0; k < 400; k = k + 1) {
    qq = qq + z[k] * xx[k];
  }
  return qq;
}

# kernel 4: banded linear equations
fun k4() {
  var k : int;
  var l : int;
  var lw : int;
  var temp : real;
  for (l = 6; l < 400; l = l + 6) {
    lw = l - 6;
    temp = xx[l - 1];
    for (k = 0; k < 3; k = k + 1) {
      temp = temp - xx[lw + k * 4] * y[k];
    }
    xx[l - 1] = y[4] * temp;
  }
}

# kernel 5: tridiagonal elimination, below diagonal (recurrence)
fun k5() {
  var k : int;
  for (k = 1; k < 400; k = k + 1) {
    xx[k] = z[k] * (y[k] - xx[k - 1]);
  }
}

# kernel 6: general linear recurrence equations
fun k6() {
  var k : int;
  var j : int;
  var s : real;
  for (k = 1; k < 20; k = k + 1) {
    s = 0.0;
    for (j = 0; j < k; j = j + 1) {
      s = s + b[k * 20 + j] * w[k - j - 1];
    }
    w[k] = w[k] + s;
  }
}

# kernel 7: equation of state fragment
fun k7() {
  var k : int;
  for (k = 0; k < 300; k = k + 1) {
    xx[k] = u[k] + r * (z[k] + r * y[k])
          + t * (u[k + 3] + r * (u[k + 2] + r * u[k + 1])
          + t * (u[k + 6] + q * (u[k + 5] + q * u[k + 4])));
  }
}

# kernel 8: ADI integration (simplified two-plane sweep)
fun k8() {
  var k : int;
  var n1 : int = 0;
  var n2 : int = 120;
  for (k = 1; k < 100; k = k + 1) {
    px[n1 + k] = px[n2 + k] - q * (cx[n1 + k + 1] - cx[n1 + k - 1])
               + r * (cx[n2 + k + 1] - cx[n2 + k - 1]);
    px[n2 + k] = px[n1 + k] + t * cx[n2 + k];
  }
}

# kernel 9: numerical integration predictors
fun k9() {
  var k : int;
  for (k = 0; k < 100; k = k + 1) {
    px[k] = q + y[0] * (r * cx[k + 4] + t * cx[k + 5])
          + y[1] * (cx[k + 6] + cx[k + 7])
          + y[2] * (cx[k + 8] + cx[k + 9]);
  }
}

# kernel 10: numerical differentiation predictors
fun k10() {
  var k : int;
  var ar : real;
  var br : real;
  var cr : real;
  for (k = 0; k < 100; k = k + 1) {
    ar = cx[k + 4];
    br = ar - px[k + 4];
    px[k + 4] = ar;
    cr = br - px[k + 5];
    px[k + 5] = br;
    px[k + 6] = cr - px[k + 6];
  }
}

# kernel 11: first sum (prefix-sum recurrence)
fun k11() {
  var k : int;
  xx[0] = y[0];
  for (k = 1; k < 400; k = k + 1) {
    xx[k] = xx[k - 1] + y[k];
  }
}

# kernel 12: first difference
fun k12() {
  var k : int;
  for (k = 0; k < 400; k = k + 1) {
    xx[k] = y[k + 1] - y[k];
  }
}

# kernel 13: 2-D particle in cell (simplified integer/real mix)
fun k13() {
  var ip : int;
  var i1 : int;
  var j1 : int;
  for (ip = 0; ip < 128; ip = ip + 1) {
    i1 = int(p[ip] * 64.0) % 64;
    j1 = int(h[ip] * 64.0) % 64;
    if (i1 < 0) { i1 = -i1; }
    if (j1 < 0) { j1 = -j1; }
    p[ip] = p[ip] + 0.125 * (y[i1] + z[j1]);
    h[ip] = h[ip] + q * p[ip];
  }
}

# kernel 14: 1-D particle in cell (gather, compute, scatter)
fun k14() {
  var k : int;
  var ix : int;
  for (k = 0; k < 128; k = k + 1) {
    ix = int(h[k] * 32.0) % 32;
    if (ix < 0) { ix = -ix; }
    v[ix] = v[ix] + 1.0;
    p[k] = p[k] + v[ix] * q;
  }
}

fun main() {
  var iter : int;
  var chk : real = 0.0;
  var k : int;
  init();
  for (iter = 0; iter < 3; iter = iter + 1) {
    k1(); k2();
    chk = chk + k3();
    k4(); k5(); k6(); k7(); k8(); k9(); k10(); k11(); k12(); k13(); k14();
  }
  for (k = 0; k < 400; k = k + 1) { chk = chk + xx[k]; }
  for (k = 0; k < 375; k = k + 1) { chk = chk + px[k]; }
  sink(chk);
}
|}

let workload =
  Workload.make "livermore" ~expected_sink:(Some (Workload.Exp_float 204.56597325743354))
    ~description:
      "first 14 Livermore loops, double precision, not unrolled (kernels \
       5/6/11 are the recurrences of Section 4.4)"
    ~numeric:true source
