(* A benchmark: MiniMod source plus metadata.

   [expected_sink] is the checksum the program must leave in the sink
   cell; the test suite verifies it at every optimization level and on
   every machine configuration, which exercises the whole compiler for
   semantic preservation.  [default_unroll] reproduces the paper's
   "official" source forms (Linpack ships with its inner loops unrolled
   four times). *)

type expected = Exp_int of int | Exp_float of float  (** tolerance 1e-6 rel *)

type t = {
  name : string;
  description : string;
  source : string;
  careful_source : string option;
      (** variant annotated with the by-hand alias knowledge ([view]
          declarations) used for careful unrolling, as the paper's
          careful versions were separate hand-prepared sources *)
  expected_sink : expected option;
  default_unroll : int;  (** 1 = no unrolling *)
  numeric : bool;  (** floating-point dominated, as in Section 4.4 *)
}

let make ?(expected_sink = None) ?(default_unroll = 1) ?(numeric = false)
    ?careful_source ~description name source =
  { name; description; source; careful_source; expected_sink; default_unroll;
    numeric }

(* The source to compile when unrolling carefully. *)
let source_for_mode t mode =
  match mode with
  | `Careful -> Option.value t.careful_source ~default:t.source
  | `Naive -> t.source

(* MiniMod library snippets shared by several benchmarks. *)

(* Deterministic 30-bit linear congruential generator. *)
let lcg_snippet =
  {|
var seed : int = 12345;

fun next_rand() : int {
  seed = (seed * 1103515 + 12345) % 1073741824;
  if (seed < 0) { seed = -seed; }
  return seed;
}

fun rand_range(n: int) : int {
  return next_rand() % n;
}
|}
