(** A benchmark: MiniMod source plus metadata.

    [expected_sink] is the checksum the program must leave in the sink
    cell; the test suite verifies it at every optimization level and on
    every machine configuration.  [careful_source] is the hand-prepared
    variant with [view] alias annotations used for careful unrolling —
    as the paper's careful versions were separate hand-prepared
    sources.  [default_unroll] reproduces the "official" form (Linpack
    ships with its inner loops unrolled four times). *)

type expected = Exp_int of int | Exp_float of float

type t = {
  name : string;
  description : string;
  source : string;
  careful_source : string option;
  expected_sink : expected option;
  default_unroll : int;  (** 1 = no unrolling *)
  numeric : bool;  (** floating-point dominated, as in Section 4.4 *)
}

val make :
  ?expected_sink:expected option ->
  ?default_unroll:int ->
  ?numeric:bool ->
  ?careful_source:string ->
  description:string ->
  string ->
  string ->
  t

val source_for_mode : t -> [ `Careful | `Naive ] -> string
(** The careful variant when one exists, otherwise the plain source. *)

val lcg_snippet : string
(** A deterministic random-number generator in MiniMod, shared by
    benchmark authors. *)
