(* Red-black relaxation and a split ring buffer: store/load pairs whose
   independence is a *range* fact, not a constant-difference fact.

   Two kernels, both deliberately out of reach of the symbolic
   (constant-difference) disambiguation tiers:

   - [relax] updates the even cells of [grid] from its odd cells.  The
     write subscript [(j & 31) * 2] and the read subscript
     [((j + 1) & 31) * 2 + 1] involve two distinct masked terms, so
     their symbolic difference never folds; but the write is even and
     the read is odd — the congruence component of the range analysis
     proves the difference odd, hence nonzero.

   - [spin] writes the upper window of [ring] ([8 + (i & 7)], i.e.
     [8, 15]) while reading the lower window ([(i + 3) & 7], i.e.
     [0, 7]).  The masked terms are again distinct, but the interval
     footprints are disjoint: the difference lies in [1, 15].

   Every subscript is masked, so the static subscript sanitizer proves
   each access in bounds — this is also the all-[Proved_safe] extras
   workload of the sanitizer sweep.

   Not part of the paper's Section 4 suite: registered in
   [Registry.extras], not [Registry.all], so the aggregate figure
   sweeps are unchanged. *)

let sweeps = 48

let source =
  Printf.sprintf
    {|
# Red-black even/odd relaxation plus a split ring buffer; all
# subscripts masked into their windows.
arr grid : int[64];
arr ring : int[16];
var acc : int = 1;

fun relax(m: int) {
  var j : int;
  for (j = 0; j < m; j = j + 1) {
    grid[(j & 31) * 2] = grid[((j + 1) & 31) * 2 + 1] + j;
  }
}

fun colour(m: int) {
  var j : int;
  for (j = 0; j < m; j = j + 1) {
    grid[(j & 31) * 2 + 1] = grid[(j & 31) * 2 + 1] + (j & 3);
  }
}

fun spin(m: int) {
  var i : int;
  for (i = 0; i < m; i = i + 1) {
    ring[8 + (i & 7)] = acc;
    acc = (acc + ring[(i + 3) & 7] + i) & 1023;
  }
}

fun main() {
  var s : int;
  var i : int;
  var chk : int = 0;
  for (s = 0; s < %d; s = s + 1) {
    colour(32);
    relax(32);
    spin(16);
  }
  for (i = 0; i < 64; i = i + 1) {
    chk = (chk * 3 + grid[i]) & 65535;
  }
  for (i = 0; i < 16; i = i + 1) {
    chk = (chk * 3 + ring[i]) & 65535;
  }
  sink(chk + acc);
}
|}
    sweeps

let workload =
  Workload.make "redblack"
    ~description:
      "red-black even/odd relaxation and a split ring buffer; masked \
       store/load windows only value ranges can prove apart — the \
       range-disambiguation stress kernel"
    ~default_unroll:4 source
