(* Yacc: a table-driven LR(0)-style shift/reduce parser, the classic
   yacc-generated driver loop — indexed table lookups, a parser stack,
   and data-dependent branches.  The grammar is the usual expression
   grammar

       E -> E + T | T        T -> T * F | F        F -> ( E ) | id

   with its canonical 12-state SLR table encoded in arrays exactly as
   yacc would emit it.  The token stream is synthesised deterministically
   and re-parsed many times.  This is the paper's least-parallel
   benchmark (ILP around 1.6). *)

let source =
  {|
# SLR(1) parse tables for the expression grammar, yacc-style.
# tokens: 0=id 1=+ 2=* 3=( 4=) 5=$
# actions encoded: 0 = error, 100+s = shift to state s,
#                  200+r = reduce by production r, 999 = accept
arr action : int[72];     # 12 states x 6 terminals
arr goto_t : int[36];     # 12 states x 3 nonterminals (E T F)
arr prod_len : int[7];
arr prod_lhs : int[7];
arr stack : int[128];
arr tokens : int[4096];
var ntokens : int = 0;
var chk : int = 0;

fun set_action(s: int, t: int, v: int) { action[s * 6 + t] = v; }
fun set_goto(s: int, nt: int, v: int) { goto_t[s * 3 + nt] = v; }

fun init_tables() {
  var i : int;
  for (i = 0; i < 72; i = i + 1) { action[i] = 0; }
  for (i = 0; i < 36; i = i + 1) { goto_t[i] = 0; }
  # productions: 1: E->E+T (3)  2: E->T (1)  3: T->T*F (3)
  #              4: T->F (1)    5: F->(E) (3)  6: F->id (1)
  prod_len[1] = 3; prod_lhs[1] = 0;
  prod_len[2] = 1; prod_lhs[2] = 0;
  prod_len[3] = 3; prod_lhs[3] = 1;
  prod_len[4] = 1; prod_lhs[4] = 1;
  prod_len[5] = 3; prod_lhs[5] = 2;
  prod_len[6] = 1; prod_lhs[6] = 2;
  # canonical SLR table (Aho-Sethi-Ullman, Fig 4.31)
  set_action(0, 0, 105); set_action(0, 3, 104);
  set_action(1, 1, 106); set_action(1, 5, 999);
  set_action(2, 1, 202); set_action(2, 2, 107); set_action(2, 4, 202);
  set_action(2, 5, 202);
  set_action(3, 1, 204); set_action(3, 2, 204); set_action(3, 4, 204);
  set_action(3, 5, 204);
  set_action(4, 0, 105); set_action(4, 3, 104);
  set_action(5, 1, 206); set_action(5, 2, 206); set_action(5, 4, 206);
  set_action(5, 5, 206);
  set_action(6, 0, 105); set_action(6, 3, 104);
  set_action(7, 0, 105); set_action(7, 3, 104);
  set_action(8, 1, 106); set_action(8, 4, 111);
  set_action(9, 1, 201); set_action(9, 2, 107); set_action(9, 4, 201);
  set_action(9, 5, 201);
  set_action(10, 1, 203); set_action(10, 2, 203); set_action(10, 4, 203);
  set_action(10, 5, 203);
  set_action(11, 1, 205); set_action(11, 2, 205); set_action(11, 4, 205);
  set_action(11, 5, 205);
  set_goto(0, 0, 1); set_goto(0, 1, 2); set_goto(0, 2, 3);
  set_goto(4, 0, 8); set_goto(4, 1, 2); set_goto(4, 2, 3);
  set_goto(6, 1, 9); set_goto(6, 2, 3);
  set_goto(7, 2, 10);
}

var gseed : int = 313;

fun grand(n: int) : int {
  gseed = (gseed * 1103515245 + 12345) % 1073741824;
  return (gseed / 1024) % n;
}

# emit a random expression of bounded depth as a token stream
fun emit_expr(depth: int) {
  var shape : int;
  shape = grand(4);
  if (depth <= 0 || shape == 0) {
    tokens[ntokens] = 0;    # id
    ntokens = ntokens + 1;
    return;
  }
  if (shape == 1) {
    emit_expr(depth - 1);
    tokens[ntokens] = 1;    # +
    ntokens = ntokens + 1;
    emit_expr(depth - 1);
    return;
  }
  if (shape == 2) {
    emit_expr(depth - 1);
    tokens[ntokens] = 2;    # *
    ntokens = ntokens + 1;
    emit_expr(depth - 1);
    return;
  }
  tokens[ntokens] = 3;      # (
  ntokens = ntokens + 1;
  emit_expr(depth - 1);
  tokens[ntokens] = 4;      # )
  ntokens = ntokens + 1;
}

# the yacc driver loop
fun parse(start: int, stop: int) : int {
  var sp : int = 0;
  var pos : int = start;
  var tok : int;
  var act : int;
  var state : int;
  var reductions : int = 0;
  var prod : int;
  stack[0] = 0;
  while (1 == 1) {
    state = stack[sp];
    if (pos < stop) { tok = tokens[pos]; } else { tok = 5; }
    act = action[state * 6 + tok];
    if (act == 999) { return reductions; }
    if (act == 0) { return -1000000; }
    if (act >= 200) {
      prod = act - 200;
      sp = sp - prod_len[prod];
      state = stack[sp];
      sp = sp + 1;
      stack[sp] = goto_t[state * 3 + prod_lhs[prod]];
      reductions = reductions + 1;
    } else {
      sp = sp + 1;
      stack[sp] = act - 100;
      pos = pos + 1;
    }
  }
  return -1;
}

fun main() {
  var round : int;
  var r : int;
  init_tables();
  for (round = 0; round < 40; round = round + 1) {
    ntokens = 0;
    emit_expr(5);
    r = parse(0, ntokens);
    chk = chk + r + ntokens;
  }
  sink(chk);
}
|}

let workload =
  Workload.make "yacc" ~expected_sink:(Some (Workload.Exp_int 1210))
    ~description:
      "yacc-style table-driven SLR parser loop over synthesised expression \
       token streams"
    source
