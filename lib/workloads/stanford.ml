(* The Stanford (Hennessy) collection: Perm, Towers, Queens, Intmm, Mm,
   Puzzle (trit-packing flavour), Quick, Bubble, Tree (array-encoded
   binary tree).  Slightly-parallel integer code with heavy call and
   branch content, matching the paper's "stan" benchmark. *)

let source =
  {|
# Stanford collection.
var chk : int = 0;

# ---- Perm --------------------------------------------------------------
arr permarray : int[12];
var pctr : int = 0;

fun swap_perm(i: int, j: int) {
  var tv : int;
  tv = permarray[i];
  permarray[i] = permarray[j];
  permarray[j] = tv;
}

fun permute(n: int) {
  var k : int;
  pctr = pctr + 1;
  if (n != 1) {
    permute(n - 1);
    for (k = n - 1; k >= 1; k = k - 1) {
      swap_perm(n - 1, k - 1);
      permute(n - 1);
      swap_perm(n - 1, k - 1);
    }
  }
}

fun perm() {
  var i : int;
  for (i = 0; i < 6; i = i + 1) { permarray[i] = i; }
  permute(6);
  chk = chk + pctr;
}

# ---- Towers ------------------------------------------------------------
var moves : int = 0;

fun hanoi(n: int, from_: int, to_: int, via: int) {
  if (n == 1) {
    moves = moves + 1;
    return;
  }
  hanoi(n - 1, from_, via, to_);
  moves = moves + 1;
  hanoi(n - 1, via, to_, from_);
}

fun towers() {
  hanoi(10, 1, 3, 2);
  chk = chk + moves;
}

# ---- Queens ------------------------------------------------------------
arr qrow : int[8];
arr qa : int[16];
arr qb : int[16];
var solutions : int = 0;

fun tryq(c: int) {
  var r : int;
  if (c == 8) {
    solutions = solutions + 1;
    return;
  }
  for (r = 0; r < 8; r = r + 1) {
    if (qrow[r] == 0 && qa[r + c] == 0 && qb[r - c + 7] == 0) {
      qrow[r] = 1; qa[r + c] = 1; qb[r - c + 7] = 1;
      tryq(c + 1);
      qrow[r] = 0; qa[r + c] = 0; qb[r - c + 7] = 0;
    }
  }
}

fun queens() {
  var i : int;
  for (i = 0; i < 8; i = i + 1) { qrow[i] = 0; }
  for (i = 0; i < 16; i = i + 1) { qa[i] = 0; qb[i] = 0; }
  tryq(0);
  chk = chk + solutions;
}

# ---- Intmm -------------------------------------------------------------
arr ima : int[256];
arr imb : int[256];
arr imc : int[256];

fun intmm() {
  var i : int;
  var j : int;
  var k : int;
  var s : int;
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j < 16; j = j + 1) {
      ima[i * 16 + j] = (i + j) % 7 - 3;
      imb[i * 16 + j] = (i * j) % 5 - 2;
    }
  }
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j < 16; j = j + 1) {
      s = 0;
      for (k = 0; k < 16; k = k + 1) {
        s = s + ima[i * 16 + k] * imb[k * 16 + j];
      }
      imc[i * 16 + j] = s;
    }
  }
  chk = chk + imc[5 * 16 + 7] + imc[0] + imc[255];
}

# ---- Mm (real matrix multiply) ------------------------------------------
arr rma : real[256];
arr rmb : real[256];
arr rmc : real[256];

fun realmm() {
  var i : int;
  var j : int;
  var k : int;
  var s : real;
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j < 16; j = j + 1) {
      rma[i * 16 + j] = real((i + j) % 9) / 8.0 - 0.5;
      rmb[i * 16 + j] = real((i * j) % 11) / 10.0 - 0.5;
    }
  }
  for (i = 0; i < 16; i = i + 1) {
    for (j = 0; j < 16; j = j + 1) {
      s = 0.0;
      for (k = 0; k < 16; k = k + 1) {
        s = s + rma[i * 16 + k] * rmb[k * 16 + j];
      }
      rmc[i * 16 + j] = s;
    }
  }
  chk = chk + int(rmc[5 * 16 + 7] * 1000.0) + int(rmc[255] * 1000.0);
}

# ---- Quick -------------------------------------------------------------
arr sortlist : int[512];
var qseed : int = 74755;

fun qrand() : int {
  qseed = (qseed * 1309 + 13849) % 65536;
  return qseed;
}

fun quicksort(lo: int, hi: int) {
  var i : int;
  var j : int;
  var pivot : int;
  var tv : int;
  i = lo; j = hi;
  pivot = sortlist[(lo + hi) / 2];
  while (i <= j) {
    while (sortlist[i] < pivot) { i = i + 1; }
    while (pivot < sortlist[j]) { j = j - 1; }
    if (i <= j) {
      tv = sortlist[i]; sortlist[i] = sortlist[j]; sortlist[j] = tv;
      i = i + 1; j = j - 1;
    }
  }
  if (lo < j) { quicksort(lo, j); }
  if (i < hi) { quicksort(i, hi); }
}

fun quick() {
  var i : int;
  for (i = 0; i < 512; i = i + 1) { sortlist[i] = qrand(); }
  quicksort(0, 511);
  chk = chk + sortlist[0] + sortlist[255] + sortlist[511];
}

# ---- Bubble ------------------------------------------------------------
arr bubblelist : int[128];

fun bubble() {
  var i : int;
  var j : int;
  var tv : int;
  for (i = 0; i < 128; i = i + 1) { bubblelist[i] = qrand(); }
  for (i = 127; i >= 1; i = i - 1) {
    for (j = 0; j < i; j = j + 1) {
      if (bubblelist[j] > bubblelist[j + 1]) {
        tv = bubblelist[j];
        bubblelist[j] = bubblelist[j + 1];
        bubblelist[j + 1] = tv;
      }
    }
  }
  chk = chk + bubblelist[0] + bubblelist[64] + bubblelist[127];
}

# ---- Tree (array-encoded binary search tree) ----------------------------
arr tval : int[600];
arr tleft : int[600];
arr tright : int[600];
var tnodes : int = 0;

fun tree_insert(root: int, v: int) : int {
  if (root == -1) {
    tval[tnodes] = v;
    tleft[tnodes] = -1;
    tright[tnodes] = -1;
    tnodes = tnodes + 1;
    return tnodes - 1;
  }
  if (v < tval[root]) {
    tleft[root] = tree_insert(tleft[root], v);
  } else {
    tright[root] = tree_insert(tright[root], v);
  }
  return root;
}

fun tree_depth_sum(root: int, d: int) : int {
  if (root == -1) { return 0; }
  return d + tree_depth_sum(tleft[root], d + 1)
           + tree_depth_sum(tright[root], d + 1);
}

fun trees() {
  var i : int;
  var root : int = -1;
  tnodes = 0;
  for (i = 0; i < 500; i = i + 1) {
    root = tree_insert(root, qrand());
  }
  chk = chk + tree_depth_sum(root, 0);
}

# ---- Puzzle (bit-vector flavour) ----------------------------------------
arr pz : int[512];

fun puzzle() {
  var i : int;
  var k : int;
  var count : int = 0;
  for (i = 0; i < 512; i = i + 1) { pz[i] = (i * 7919) % 512; }
  for (k = 0; k < 20; k = k + 1) {
    for (i = 0; i < 511; i = i + 1) {
      if (pz[i] > pz[i + 1]) {
        pz[i] = pz[i] & pz[i + 1];
      } else {
        pz[i] = pz[i] | (pz[i + 1] >> 1);
      }
      if ((pz[i] & 1) == 1) { count = count + 1; }
    }
  }
  chk = chk + count;
}

fun main() {
  perm();
  towers();
  queens();
  intmm();
  realmm();
  quick();
  bubble();
  trees();
  puzzle();
  sink(chk);
}
|}

let workload =
  Workload.make "stanford" ~expected_sink:(Some (Workload.Exp_int 208635))
    ~description:
      "Hennessy Stanford collection: perm, towers, queens, intmm, mm, \
       quick, bubble, tree, puzzle"
    source
