(* Ccom: a small compiler, standing in for the paper's own C compiler
   front end.  It synthesises source text (as an integer character
   stream), lexes it, parses expressions by recursive descent into an
   array-allocated AST, folds constants, emits stack-machine code, and
   runs a peephole pass — the same lex/parse/tree-walk/emit phase
   structure and branchy, table-driven character of a real compiler. *)

let source =
  {|
# --- synthesized source text: characters as small ints -------------------
# char codes: 0..9 digits, 10 '+', 11 '-', 12 '*', 13 '(', 14 ')',
#             15 'x', 16 'y', 17 'z', 18 end
arr text : int[8192];
var textlen : int = 0;
var cseed : int = 20077;

fun crand(n: int) : int {
  cseed = (cseed * 1103515245 + 12345) % 1073741824;
  return (cseed / 1024) % n;
}

fun gen_expr(depth: int) {
  var shape : int;
  shape = crand(5);
  if (depth <= 0 || shape == 0) {
    if (crand(2) == 0) {
      text[textlen] = crand(10);         # digit literal
    } else {
      text[textlen] = 15 + crand(3);     # variable
    }
    textlen = textlen + 1;
    return;
  }
  if (shape == 1 || shape == 4) {
    gen_expr(depth - 1);
    text[textlen] = 10 + crand(3);       # + - *
    textlen = textlen + 1;
    gen_expr(depth - 1);
    return;
  }
  text[textlen] = 13;
  textlen = textlen + 1;
  gen_expr(depth - 1);
  text[textlen] = 14;
  textlen = textlen + 1;
}

# --- lexer ----------------------------------------------------------------
# token kinds: 0 num, 1 '+', 2 '-', 3 '*', 4 '(', 5 ')', 6 var, 7 eof
arr tok_kind : int[8192];
arr tok_val : int[8192];
var ntoks : int = 0;

fun lex() {
  var i : int = 0;
  var c : int;
  ntoks = 0;
  while (i < textlen) {
    c = text[i];
    if (c < 10) {
      tok_kind[ntoks] = 0; tok_val[ntoks] = c;
    } else {
      if (c == 10) { tok_kind[ntoks] = 1; }
      if (c == 11) { tok_kind[ntoks] = 2; }
      if (c == 12) { tok_kind[ntoks] = 3; }
      if (c == 13) { tok_kind[ntoks] = 4; }
      if (c == 14) { tok_kind[ntoks] = 5; }
      if (c >= 15) { tok_kind[ntoks] = 6; tok_val[ntoks] = c - 15; }
    }
    ntoks = ntoks + 1;
    i = i + 1;
  }
  tok_kind[ntoks] = 7;
  ntoks = ntoks + 1;
}

# --- parser: array-allocated AST -------------------------------------------
# node: op (0 num, 1 add, 2 sub, 3 mul, 4 var), lhs, rhs, val
arr nd_op : int[8192];
arr nd_lhs : int[8192];
arr nd_rhs : int[8192];
arr nd_val : int[8192];
var nnodes : int = 0;
var ppos : int = 0;

fun new_node(op: int, lhs: int, rhs: int, v: int) : int {
  nd_op[nnodes] = op;
  nd_lhs[nnodes] = lhs;
  nd_rhs[nnodes] = rhs;
  nd_val[nnodes] = v;
  nnodes = nnodes + 1;
  return nnodes - 1;
}

fun parse_primary() : int {
  var k : int;
  var e : int;
  k = tok_kind[ppos];
  if (k == 0) {
    ppos = ppos + 1;
    return new_node(0, -1, -1, tok_val[ppos - 1]);
  }
  if (k == 6) {
    ppos = ppos + 1;
    return new_node(4, -1, -1, tok_val[ppos - 1]);
  }
  if (k == 4) {
    ppos = ppos + 1;
    e = parse_sum();
    ppos = ppos + 1;     # ')'
    return e;
  }
  return new_node(0, -1, -1, 0);
}

fun parse_product() : int {
  var lhs : int;
  var rhs : int;
  lhs = parse_primary();
  while (tok_kind[ppos] == 3) {
    ppos = ppos + 1;
    rhs = parse_primary();
    lhs = new_node(3, lhs, rhs, 0);
  }
  return lhs;
}

fun parse_sum() : int {
  var lhs : int;
  var rhs : int;
  var k : int;
  lhs = parse_product();
  k = tok_kind[ppos];
  while (k == 1 || k == 2) {
    ppos = ppos + 1;
    rhs = parse_product();
    if (k == 1) { lhs = new_node(1, lhs, rhs, 0); }
    else { lhs = new_node(2, lhs, rhs, 0); }
    k = tok_kind[ppos];
  }
  return lhs;
}

# --- constant folding (tree walk) ------------------------------------------
fun fold(nd: int) : int {
  var l : int;
  var r : int;
  var op : int;
  op = nd_op[nd];
  if (op == 0 || op == 4) { return nd; }
  l = fold(nd_lhs[nd]);
  r = fold(nd_rhs[nd]);
  nd_lhs[nd] = l;
  nd_rhs[nd] = r;
  if (nd_op[l] == 0 && nd_op[r] == 0) {
    if (op == 1) { nd_val[nd] = nd_val[l] + nd_val[r]; }
    if (op == 2) { nd_val[nd] = nd_val[l] - nd_val[r]; }
    if (op == 3) { nd_val[nd] = nd_val[l] * nd_val[r]; }
    nd_op[nd] = 0;
    nd_lhs[nd] = -1;
    nd_rhs[nd] = -1;
  }
  return nd;
}

# --- code emission: stack machine ------------------------------------------
# ops: 0 push-const, 1 push-var, 2 add, 3 sub, 4 mul
arr code_op : int[16384];
arr code_arg : int[16384];
var ncode : int = 0;

fun emit(op: int, arg: int) {
  code_op[ncode] = op;
  code_arg[ncode] = arg;
  ncode = ncode + 1;
}

fun gen(nd: int) {
  var op : int;
  op = nd_op[nd];
  if (op == 0) { emit(0, nd_val[nd]); return; }
  if (op == 4) { emit(1, nd_val[nd]); return; }
  gen(nd_lhs[nd]);
  gen(nd_rhs[nd]);
  if (op == 1) { emit(2, 0); }
  if (op == 2) { emit(3, 0); }
  if (op == 3) { emit(4, 0); }
}

# --- "assembler": run the emitted code on a little stack VM ----------------
arr vmstack : int[256];

fun execute(envx: int, envy: int, envz: int) : int {
  var pc : int = 0;
  var sp : int = 0;
  var op : int;
  var a : int;
  var b2 : int;
  while (pc < ncode) {
    op = code_op[pc];
    if (op == 0) { vmstack[sp] = code_arg[pc]; sp = sp + 1; }
    if (op == 1) {
      a = code_arg[pc];
      if (a == 0) { vmstack[sp] = envx; }
      if (a == 1) { vmstack[sp] = envy; }
      if (a == 2) { vmstack[sp] = envz; }
      sp = sp + 1;
    }
    if (op >= 2) {
      b2 = vmstack[sp - 1];
      a = vmstack[sp - 2];
      sp = sp - 2;
      if (op == 2) { vmstack[sp] = a + b2; }
      if (op == 3) { vmstack[sp] = a - b2; }
      if (op == 4) { vmstack[sp] = a * b2; }
      sp = sp + 1;
    }
    pc = pc + 1;
  }
  return vmstack[0];
}

fun main() {
  var round : int;
  var root : int;
  var v : int;
  var chk : int = 0;
  for (round = 0; round < 24; round = round + 1) {
    textlen = 0;
    gen_expr(6);
    text[textlen] = 18;
    textlen = textlen + 1;
    lex();
    nnodes = 0;
    ppos = 0;
    root = parse_sum();
    root = fold(root);
    ncode = 0;
    gen(root);
    v = execute(2, 3, 5);
    chk = (chk + v + ncode + nnodes) % 1048576;
  }
  sink(chk);
}
|}

let workload =
  Workload.make "ccom" ~expected_sink:(Some (Workload.Exp_int 12132))
    ~description:
      "miniature compiler: lex, recursive-descent parse, constant fold, \
       stack-code emission and execution over synthesised sources"
    source
