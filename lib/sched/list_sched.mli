(** Machine-aware list scheduling of basic blocks — the paper's pipeline
    instruction scheduler (Section 3).

    Within each block, instructions reorder to minimize the stall time
    the in-order pipeline will see: nodes become ready when their
    dependence predecessors have issued and the edge latencies have
    elapsed; each simulated cycle issues up to the machine's width of
    ready nodes — respecting functional-unit issue latency and
    multiplicity — choosing by greatest critical-path height.  The
    emitted order is the issue order; run-time timing is re-derived by
    the simulator.

    Scheduling never crosses block boundaries (DESIGN.md, decision 3)
    and never reorders across calls.

    With [~memdep:true], each function is first run through
    {!Ilp_analysis.Memdep} and the per-block classifier is handed to
    {!Ddg.build}, so memory pairs proven [No_alias] carry no
    serialization edge; every removed edge is independently re-justified
    by {!Check_sched} when checking is enabled. *)

open Ilp_ir
open Ilp_machine

val schedule_block :
  ?classify:(Instr.t -> Instr.t -> Ilp_analysis.Memdep.alias) ->
  Config.t ->
  Block.t ->
  Block.t

val run_func : ?memdep:bool -> ?ranges:bool -> Config.t -> Func.t -> Func.t

val run : ?memdep:bool -> ?ranges:bool -> Config.t -> Program.t -> Program.t
(** [ranges] (default [true]) is passed to {!Ilp_analysis.Memdep.analyze}
    under [~memdep:true]: it enables the value-range disambiguation
    tier. *)
