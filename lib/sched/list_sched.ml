(* Machine-aware list scheduling of basic blocks (the paper's pipeline
   instruction scheduler, Section 3).

   Within each block the scheduler reorders instructions to minimise the
   stall time the in-order pipeline will see: nodes become ready when all
   dependence predecessors have been issued and their latencies have
   elapsed; each simulated cycle issues up to [issue_width] ready nodes —
   respecting functional-unit issue latency and multiplicity — choosing
   by greatest critical-path height.  The emitted order is the issue
   order; run-time timing is then re-derived by the simulator. *)

open Ilp_ir
open Ilp_machine

type unit_state = { spec : Config.unit_spec; free_at : int array }

let schedule_block (config : Config.t) (b : Block.t) =
  let ddg = Ddg.build config b.Block.instrs in
  let n = Array.length ddg.Ddg.instrs in
  if n <= 1 then b
  else begin
    let height = Ddg.heights config ddg in
    let unscheduled_preds = Array.make n 0 in
    Array.iteri
      (fun k ps -> unscheduled_preds.(k) <- List.length ps)
      ddg.Ddg.preds;
    let ready_time = Array.make n 0 in
    let scheduled = Array.make n false in
    let units =
      List.map
        (fun spec -> { spec; free_at = Array.make spec.Config.multiplicity 0 })
        config.Config.units
    in
    let free_unit cls cycle =
      match
        List.filter (fun u -> List.mem cls u.spec.Config.classes) units
      with
      | [] -> `Unconstrained
      | pools -> (
          let found = ref None in
          List.iter
            (fun u ->
              if !found = None then
                Array.iteri
                  (fun idx t ->
                    if !found = None && t <= cycle then found := Some (u, idx))
                  u.free_at)
            pools;
          match !found with Some (u, idx) -> `Free (u, idx) | None -> `Busy)
    in
    let order = ref [] in
    let emitted = ref 0 in
    let cycle = ref 0 in
    while !emitted < n do
      let issued_this_cycle = ref 0 in
      let progress = ref true in
      while
        !issued_this_cycle < config.Config.issue_width
        && !progress && !emitted < n
      do
        progress := false;
        (* best issuable node: ready, unit available, greatest height;
           ties broken toward the earliest original position *)
        let best = ref (-1) in
        let best_booking = ref `Unconstrained in
        for k = n - 1 downto 0 do
          if
            (not scheduled.(k))
            && unscheduled_preds.(k) = 0
            && ready_time.(k) <= !cycle
            && (!best < 0 || height.(k) >= height.(!best))
          then begin
            match free_unit (Instr.iclass ddg.Ddg.instrs.(k)) !cycle with
            | `Busy -> ()
            | booking ->
                best := k;
                best_booking := booking
          end
        done;
        if !best >= 0 then begin
          let k = !best in
          (match !best_booking with
          | `Free (u, idx) ->
              u.free_at.(idx) <- !cycle + u.spec.Config.issue_latency
          | `Unconstrained | `Busy -> ());
          scheduled.(k) <- true;
          order := k :: !order;
          incr emitted;
          incr issued_this_cycle;
          progress := true;
          List.iter
            (fun (s, w) ->
              unscheduled_preds.(s) <- unscheduled_preds.(s) - 1;
              ready_time.(s) <- max ready_time.(s) (!cycle + w))
            ddg.Ddg.succs.(k)
        end
      done;
      incr cycle
    done;
    let instrs = List.rev_map (fun k -> ddg.Ddg.instrs.(k)) !order in
    Block.make b.Block.label instrs
  end

let run_func config (f : Func.t) =
  Func.map_blocks (schedule_block config) f

let run config (p : Program.t) =
  Program.map_functions (run_func config) p
