(* Machine-aware list scheduling of basic blocks (the paper's pipeline
   instruction scheduler, Section 3).

   Within each block the scheduler reorders instructions to minimise the
   stall time the in-order pipeline will see: nodes become ready when all
   dependence predecessors have been issued and their latencies have
   elapsed; each simulated cycle issues up to [issue_width] ready nodes —
   respecting functional-unit issue latency and multiplicity — choosing
   by greatest critical-path height.  The emitted order is the issue
   order; run-time timing is then re-derived by the simulator.

   The [branch_ends_packet] ablation needs no special handling (and no
   legality assertion, see Check_sched): it narrows issue groups inside
   the timing model only.  The scheduler's internal cycle simulation may
   pack instructions behind a branch that such a machine would split
   into the next cycle, which can cost the emitted order some cycles
   under that ablation but can never change what the code computes — the
   simulator re-derives every issue-group boundary when it runs. *)

open Ilp_ir
open Ilp_machine

type unit_state = { spec : Config.unit_spec; free_at : int array }

let schedule_block ?classify (config : Config.t) (b : Block.t) =
  let ddg = Ddg.build ?classify config b.Block.instrs in
  let n = Array.length ddg.Ddg.instrs in
  if n <= 1 then b
  else begin
    let height = Ddg.heights config ddg in
    let unscheduled_preds = Array.make n 0 in
    Array.iteri
      (fun k ps -> unscheduled_preds.(k) <- List.length ps)
      ddg.Ddg.preds;
    let ready_time = Array.make n 0 in
    let scheduled = Array.make n false in
    let units =
      List.map
        (fun spec -> { spec; free_at = Array.make spec.Config.multiplicity 0 })
        config.Config.units
    in
    (* pools serving each class, computed once per block (as
       [Timing.create] does) instead of re-filtering the unit list for
       every candidate of the O(n^2) best-node scan *)
    let pools_by_class =
      Array.init Iclass.count (fun idx ->
          let c = Iclass.of_index idx in
          List.filter (fun u -> List.mem c u.spec.Config.classes) units)
    in
    let free_unit cls cycle =
      match pools_by_class.(Iclass.to_index cls) with
      | [] -> `Unconstrained
      | pools ->
          let rec search = function
            | [] -> `Busy
            | u :: rest ->
                let rec scan idx =
                  if idx >= Array.length u.free_at then search rest
                  else if u.free_at.(idx) <= cycle then `Free (u, idx)
                  else scan (idx + 1)
                in
                scan 0
          in
          search pools
    in
    let order = ref [] in
    let emitted = ref 0 in
    let cycle = ref 0 in
    while !emitted < n do
      let issued_this_cycle = ref 0 in
      let progress = ref true in
      while
        !issued_this_cycle < config.Config.issue_width
        && !progress && !emitted < n
      do
        progress := false;
        (* best issuable node: ready, unit available, greatest height;
           ties broken toward the earliest original position *)
        let best = ref (-1) in
        let best_booking = ref `Unconstrained in
        for k = n - 1 downto 0 do
          if
            (not scheduled.(k))
            && unscheduled_preds.(k) = 0
            && ready_time.(k) <= !cycle
            && (!best < 0 || height.(k) >= height.(!best))
          then begin
            match free_unit (Instr.iclass ddg.Ddg.instrs.(k)) !cycle with
            | `Busy -> ()
            | booking ->
                best := k;
                best_booking := booking
          end
        done;
        if !best >= 0 then begin
          let k = !best in
          (match !best_booking with
          | `Free (u, idx) ->
              u.free_at.(idx) <- !cycle + u.spec.Config.issue_latency
          | `Unconstrained | `Busy -> ());
          scheduled.(k) <- true;
          order := k :: !order;
          incr emitted;
          incr issued_this_cycle;
          progress := true;
          List.iter
            (fun (s, w) ->
              unscheduled_preds.(s) <- unscheduled_preds.(s) - 1;
              ready_time.(s) <- max ready_time.(s) (!cycle + w))
            ddg.Ddg.succs.(k)
        end
      done;
      incr cycle
    done;
    let instrs = List.rev_map (fun k -> ddg.Ddg.instrs.(k)) !order in
    Block.make b.Block.label instrs
  end

let run_func ?(memdep = false) ?(ranges = true) config (f : Func.t) =
  if memdep then begin
    let md = Ilp_analysis.Memdep.analyze ~ranges f in
    Func.map_blocks
      (fun (b : Block.t) ->
        let classify = Ilp_analysis.Memdep.classifier md b.Block.label in
        schedule_block ~classify config b)
      f
  end
  else Func.map_blocks (schedule_block config) f

let run ?memdep ?ranges config (p : Program.t) =
  Program.map_functions (run_func ?memdep ?ranges config) p
