(** Schedule legality checking.

    A scheduled block is legal when it is a permutation of the input
    block whose order respects every edge of the input block's
    dependence graph ({!Ddg.build}).  Edge weights are irrelevant to
    legality: the scheduler emits an issue {e order} and the in-order
    timing model re-derives every stall at simulation time, so ignoring
    a latency costs cycles, never correctness.  For the same reason the
    [branch_ends_packet] ablation needs no legality condition — it
    narrows issue groups inside the timing model and the emitted order
    is oblivious to issue-group boundaries.

    Run by {!Ilp_core.Ilp.schedule} after list scheduling when checking
    is enabled, and directly by the test suite's injected-defect
    tests. *)

open Ilp_ir
open Ilp_machine

exception Illegal of string
(** The scheduled code is not a DDG-respecting permutation of the
    input: an instruction was dropped, duplicated or invented, a
    dependence edge points backwards in the emitted order, the
    terminator is no longer last, or the block/function structure
    changed. *)

val check_block :
  ?classify:(Instr.t -> Instr.t -> Ilp_analysis.Memdep.alias) ->
  Config.t ->
  original:Block.t ->
  scheduled:Block.t ->
  unit
(** The checker always rebuilds the {e conservative} DDG of the
    original block.  A violated edge is legal only when [classify] is
    supplied, the edge carries nothing but the memory-ordering hazard
    ({!Ddg.kind_mem}), and the classifier — recomputed here from the
    original code, independently of whatever the scheduler used —
    proves the pair [No_alias]. *)

val check_func :
  ?memdep:bool ->
  ?ranges:bool ->
  Config.t ->
  original:Func.t ->
  scheduled:Func.t ->
  unit
(** With [~memdep:true], runs {!Ilp_analysis.Memdep.analyze} on the
    original function and re-justifies removed edges per block. *)

val check_program :
  ?memdep:bool ->
  ?ranges:bool ->
  Config.t ->
  original:Program.t ->
  scheduled:Program.t ->
  unit
(** Check every block of every function; functions and blocks must pair
    up positionally (scheduling never changes program structure). *)
