(* Static per-loop ILP bounds: machine-level lower bounds on the minor
   cycles each innermost-loop iteration must take, derived only from
   constraints the in-order timing model actually enforces.

   Recurrence bound.  Pick a register [r] with exactly one definition
   [d] in the loop body, in a block that dominates every latch (so it
   executes once per completed iteration), with no calls anywhere in
   the body (a callee could redefine [r] mid-iteration).  A use of [r]
   at or before [d]'s position in the straightened dominating-block
   sequence reads the value [d] produced in the {e previous} iteration;
   if that use feeds [d] again through same-iteration register RAW
   links, the timing model's issue rule

     issue(consumer) >= issue(producer) + latency(producer)

   closes a cycle of distance one iteration whose total latency is a
   per-iteration floor, independent of schedule, issue width or
   functional units.  The straightening is sound because dominating
   blocks of an innermost loop execute exactly once per completed
   iteration, in dominance (= reverse-postorder) order; RAW links are
   only followed for registers whose every body definition lies in the
   straightened sequence, so interleaved non-dominating blocks cannot
   inject an unseen write.

   Resource bound.  At most [issue_width] instructions issue per minor
   cycle, and a functional unit copy accepts one instruction per issue
   latency; the instructions of the dominating blocks alone therefore
   force [n / width] and [n_c / capacity_c] cycles per iteration.

   The whole-run floor combines the global resource bound over the
   dynamic stream with the per-loop recurrence bounds scaled by
   observed back-edge traversals: within one loop entry, [k] traversals
   chain [k-1] recurrence delays, and distinct innermost-loop regions
   of the dynamic stream never overlap under in-order issue, so the
   contributions add. *)

open Ilp_ir
open Ilp_machine

type loop_bound = {
  sb_func : string;
  sb_header : string;
  sb_blocks : int;
  sb_iter_instrs : int;
  sb_body_instrs : int;
  sb_recurrence : int;
  sb_resource : float;
  sb_ilp_ceiling : float;
  sb_header_first : int;
  sb_latch_lasts : int list;
}

type t = { bounds : loop_bound list }

module IntMap = Map.Make (Int)
module IntSet = Set.Make (Int)

let lat config (i : Instr.t) = Config.latency config (Instr.iclass i)

(* Unit capacity for one class, in instructions per minor cycle, and
   total copy count; [None] when the class is unconstrained. *)
let class_capacity config c =
  match Config.units_for config c with
  | [] -> None
  | units ->
      let cap =
        List.fold_left
          (fun acc (u : Config.unit_spec) ->
            acc
            +. float_of_int u.Config.multiplicity
               /. float_of_int u.Config.issue_latency)
          0.0 units
      in
      let copies =
        List.fold_left
          (fun acc (u : Config.unit_spec) -> acc + u.Config.multiplicity)
          0 units
      in
      Some (cap, copies)

(* Cycles per iteration the [instrs] need from issue width and unit
   capacity alone. *)
let resource_per_iter config (instrs : Instr.t list) =
  let n = List.length instrs in
  let width_bound =
    float_of_int n /. float_of_int config.Config.issue_width
  in
  let counts = Array.make Iclass.count 0 in
  List.iter
    (fun i ->
      let k = Iclass.to_index (Instr.iclass i) in
      counts.(k) <- counts.(k) + 1)
    instrs;
  let unit_bound = ref 0.0 in
  Array.iteri
    (fun k n_c ->
      if n_c > 0 then
        match class_capacity config (Iclass.of_index k) with
        | Some (cap, _) ->
            unit_bound := Float.max !unit_bound (float_of_int n_c /. cap)
        | None -> ())
    counts;
  Float.max width_bound !unit_bound

(* The longest register-carried recurrence of one straightened
   iteration: [chain] is the latch-dominating instruction sequence in
   execution order, [body_defs r] counts definitions of [r] over the
   whole loop body. *)
let recurrence config (chain : Instr.t array) body_defs =
  let n = Array.length chain in
  (* positions of every in-chain definition, per register *)
  let def_pos = Hashtbl.create 32 in
  Array.iteri
    (fun p i ->
      List.iter
        (fun r -> Hashtbl.replace def_pos (Reg.index r) p)
        (Instr.defs i))
    chain;
  (* a register is chain-tracked when all its body definitions are in
     the chain — its RAW links cannot be broken by a non-dominating
     block executing in between *)
  let chain_def_counts = Hashtbl.create 32 in
  Array.iter
    (fun i ->
      List.iter
        (fun r ->
          let k = Reg.index r in
          Hashtbl.replace chain_def_counts k
            (1 + Option.value (Hashtbl.find_opt chain_def_counts k) ~default:0))
        (Instr.defs i))
    chain;
  let tracked r =
    Option.value (Hashtbl.find_opt chain_def_counts r) ~default:0
    = body_defs r
  in
  let best = ref 0 in
  (* candidate recurrence registers: unique body definition, in-chain *)
  Hashtbl.iter
    (fun r p_d ->
      if body_defs r = 1 && tracked r then begin
        let d = chain.(p_d) in
        (* dp.(j): longest latency sum from a previous-iteration use of
           [r] to position [j], following same-iteration RAW links of
           chain-tracked registers; edge weight = producer latency *)
        let dp = Array.make n min_int in
        let last_def = Hashtbl.create 32 in
        for j = 0 to n - 1 do
          let i = chain.(j) in
          (* previous-iteration use of [r]: at or before its unique
             definition *)
          if
            j <= p_d
            && List.exists (fun u -> Reg.index u = r) (Instr.uses i)
          then dp.(j) <- max dp.(j) 0;
          List.iter
            (fun u ->
              let k = Reg.index u in
              if k <> r && tracked k then
                match Hashtbl.find_opt last_def k with
                | Some p when dp.(p) > min_int ->
                    dp.(j) <- max dp.(j) (dp.(p) + lat config chain.(p))
                | _ -> ())
            (Instr.uses i);
          List.iter
            (fun dr -> Hashtbl.replace last_def (Reg.index dr) j)
            (Instr.defs i)
        done;
        if dp.(p_d) > min_int then
          best := max !best (dp.(p_d) + lat config d)
      end)
    def_pos;
  !best

let analyze_func config (f : Func.t) acc =
  let cfg = Ilp_analysis.Cfg_info.build f in
  let doms = Ilp_analysis.Dominators.compute cfg in
  let loops = Ilp_analysis.Loops.compute cfg in
  let blocks = cfg.Ilp_analysis.Cfg_info.blocks in
  let all = loops.Ilp_analysis.Loops.loops in
  List.fold_left
    (fun acc (l : Ilp_analysis.Loops.loop) ->
      let body = IntSet.of_list l.Ilp_analysis.Loops.body in
      let innermost =
        List.for_all
          (fun (l' : Ilp_analysis.Loops.loop) ->
            l'.Ilp_analysis.Loops.header = l.Ilp_analysis.Loops.header
            || not (IntSet.mem l'.Ilp_analysis.Loops.header body))
          all
      in
      if not innermost then acc
      else begin
        let latches =
          List.filter
            (fun b ->
              List.mem l.Ilp_analysis.Loops.header cfg.Ilp_analysis.Cfg_info.succs.(b))
            l.Ilp_analysis.Loops.body
        in
        let dominating =
          List.filter
            (fun b ->
              List.for_all
                (fun latch -> Ilp_analysis.Dominators.dominates doms b latch)
                latches)
            l.Ilp_analysis.Loops.body
          |> List.sort (fun a b ->
                 compare
                   doms.Ilp_analysis.Dominators.rpo_number.(a)
                   doms.Ilp_analysis.Dominators.rpo_number.(b))
        in
        let chain =
          Array.of_list
            (List.concat_map
               (fun b -> blocks.(b).Block.instrs)
               dominating)
        in
        let body_instrs =
          List.concat_map
            (fun b -> blocks.(b).Block.instrs)
            l.Ilp_analysis.Loops.body
        in
        let has_call = List.exists Instr.is_call body_instrs in
        let body_defs =
          let t = Hashtbl.create 64 in
          List.iter
            (fun i ->
              List.iter
                (fun r ->
                  let k = Reg.index r in
                  Hashtbl.replace t k
                    (1 + Option.value (Hashtbl.find_opt t k) ~default:0))
                (Instr.defs i))
            body_instrs;
          fun r -> Option.value (Hashtbl.find_opt t r) ~default:0
        in
        let recur =
          if has_call || latches = [] then 0
          else recurrence config chain body_defs
        in
        let resource = resource_per_iter config (Array.to_list chain) in
        let per_iter = Float.max (float_of_int recur) resource in
        let n_body = List.length body_instrs in
        let ceiling =
          if per_iter <= 0.0 then infinity
          else
            float_of_int (n_body * config.Config.pipe_degree) /. per_iter
        in
        let header_block = blocks.(l.Ilp_analysis.Loops.header) in
        match header_block.Block.instrs with
        | [] -> acc
        | first :: _ ->
            let latch_lasts =
              List.filter_map
                (fun b ->
                  match List.rev blocks.(b).Block.instrs with
                  | last :: _ -> Some last.Instr.id
                  | [] -> None)
                latches
            in
            { sb_func = f.Func.name;
              sb_header = Label.to_string header_block.Block.label;
              sb_blocks = List.length l.Ilp_analysis.Loops.body;
              sb_iter_instrs = Array.length chain;
              sb_body_instrs = n_body;
              sb_recurrence = recur;
              sb_resource = resource;
              sb_ilp_ceiling = ceiling;
              sb_header_first = first.Instr.id;
              sb_latch_lasts = latch_lasts;
            }
            :: acc
      end)
    acc all

let analyze config (p : Program.t) =
  let bounds =
    List.fold_left
      (fun acc f -> analyze_func config f acc)
      [] p.Program.functions
  in
  { bounds = List.rev bounds }

(* ---- dynamic iteration counting ----------------------------------- *)

type counters = {
  (* header-first instr id -> index into the arrays below *)
  heads : (int, int) Hashtbl.t;
  latch_sets : IntSet.t array;
  trav : int array;
  entr : int array;
  by_loop : (string * string, int) Hashtbl.t;  (* (func, header) -> index *)
  mutable prev : int;
}

let counters t =
  let n = List.length t.bounds in
  let heads = Hashtbl.create n in
  let by_loop = Hashtbl.create n in
  let latch_sets = Array.make (max n 1) IntSet.empty in
  List.iteri
    (fun k (b : loop_bound) ->
      Hashtbl.replace heads b.sb_header_first k;
      Hashtbl.replace by_loop (b.sb_func, b.sb_header) k;
      latch_sets.(k) <- IntSet.of_list b.sb_latch_lasts)
    t.bounds;
  { heads;
    latch_sets;
    trav = Array.make (max n 1) 0;
    entr = Array.make (max n 1) 0;
    by_loop;
    prev = -1;
  }

let observer c (i : Instr.t) (_addr : int) =
  let id = i.Instr.id in
  (match Hashtbl.find_opt c.heads id with
  | Some k ->
      if IntSet.mem c.prev c.latch_sets.(k) then c.trav.(k) <- c.trav.(k) + 1
      else c.entr.(k) <- c.entr.(k) + 1
  | None -> ());
  c.prev <- id

let index_of c (b : loop_bound) =
  Hashtbl.find_opt c.by_loop (b.sb_func, b.sb_header)

let traversals c b =
  match index_of c b with Some k -> c.trav.(k) | None -> 0

let entries c b =
  match index_of c b with Some k -> c.entr.(k) | None -> 0

(* ---- whole-run cycle floor ----------------------------------------- *)

let resource_floor config ~dyn_instrs ~class_counts =
  let width = config.Config.issue_width in
  let floor = ref ((dyn_instrs + width - 1) / width) in
  Array.iteri
    (fun k n_c ->
      if n_c > 0 then
        match class_capacity config (Iclass.of_index k) with
        | Some (cap, copies) ->
            (* each of the [copies] unit copies may fire once at cycle
               zero before its issue latency gates it *)
            let need =
              int_of_float (ceil (float_of_int (n_c - copies) /. cap))
            in
            floor := max !floor need
        | None -> ())
    class_counts;
  max !floor 0

let recurrence_cycles t c =
  List.fold_left
    (fun acc (b : loop_bound) ->
      if b.sb_recurrence = 0 then acc
      else
        let chains = max 0 (traversals c b - entries c b) in
        acc + (chains * b.sb_recurrence))
    0 t.bounds

let cycles_lb config t c ~dyn_instrs ~class_counts =
  max
    (resource_floor config ~dyn_instrs ~class_counts)
    (recurrence_cycles t c)
