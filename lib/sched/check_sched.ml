(* Schedule legality checking.

   A scheduled block is legal when it is a permutation of the input
   block whose emitted order respects every edge of the input block's
   dependence graph.  Edge weights do not matter here: the scheduler
   emits an issue *order* and the in-order timing model re-derives all
   stall cycles at simulation time, so a schedule that ignores a
   latency is slow, not wrong — only an order violation (or a dropped,
   duplicated or invented instruction) changes semantics.

   The checker rebuilds the DDG of the *original* block, so it shares
   no state with the scheduler beyond [Ddg.build] itself; a scheduler
   bug that forgets an edge kind would still be caught as long as the
   graph construction is right, and a graph-construction bug that
   invents a cycle would surface here as an unsatisfiable order. *)

open Ilp_ir
open Ilp_machine

exception Illegal of string

let illegal fmt = Printf.ksprintf (fun s -> raise (Illegal s)) fmt

let check_block ?classify (config : Config.t) ~(original : Block.t)
    ~(scheduled : Block.t) =
  let where = Label.to_string original.Block.label in
  if not (Label.equal original.Block.label scheduled.Block.label) then
    illegal "block %s: label changed to %s" where
      (Label.to_string scheduled.Block.label);
  let n = List.length original.Block.instrs in
  if List.length scheduled.Block.instrs <> n then
    illegal "block %s: %d instructions scheduled from %d" where
      (List.length scheduled.Block.instrs)
      n;
  (* position of each instruction in the scheduled order, by identity *)
  let position : (int, int) Hashtbl.t = Hashtbl.create (2 * n) in
  List.iteri
    (fun k (i : Instr.t) ->
      if Hashtbl.mem position i.Instr.id then
        illegal "block %s: instruction duplicated: %s" where
          (Instr.to_string i);
      Hashtbl.add position i.Instr.id k)
    scheduled.Block.instrs;
  List.iter
    (fun (i : Instr.t) ->
      if not (Hashtbl.mem position i.Instr.id) then
        illegal "block %s: instruction dropped: %s" where
          (Instr.to_string i))
    original.Block.instrs;
  (* distinct ids and equal counts make the order a permutation; now
     every edge of the original block's *conservative* DDG must either
     point forward in it or — when a memory-dependence classifier is
     supplied — be re-justified as a removable edge: a pure memory
     hazard whose pair the classifier independently proves apart.  The
     classifier is recomputed from the original code, so a scheduler
     that dropped an edge it had no right to drop is still caught. *)
  let ddg = Ddg.build config original.Block.instrs in
  Array.iteri
    (fun src succs ->
      let src_i = ddg.Ddg.instrs.(src) in
      let src_pos = Hashtbl.find position src_i.Instr.id in
      List.iter
        (fun (dst, _weight) ->
          let dst_i = ddg.Ddg.instrs.(dst) in
          if src_pos >= Hashtbl.find position dst_i.Instr.id then begin
            let removable =
              match classify with
              | Some f ->
                  Ddg.edge_kinds ddg ~src ~dst = Ddg.kind_mem
                  && f src_i dst_i = Ilp_analysis.Memdep.No_alias
              | None -> false
            in
            if not removable then
              illegal
                "block %s: dependence violated: [%s] scheduled after [%s]"
                where (Instr.to_string src_i) (Instr.to_string dst_i)
          end)
        succs)
    ddg.Ddg.succs;
  (* the executor additionally assumes a terminator, if any, stays last
     (the DDG orders it after every node, so this is implied — assert it
     anyway as a cheap independent invariant) *)
  match Block.terminator original with
  | Some t -> (
      match List.rev scheduled.Block.instrs with
      | last :: _ when last.Instr.id = t.Instr.id -> ()
      | _ -> illegal "block %s: terminator not last after scheduling" where)
  | None -> ()

let check_func ?(memdep = false) ?(ranges = true) config
    ~(original : Func.t) ~(scheduled : Func.t) =
  if not (String.equal original.Func.name scheduled.Func.name) then
    illegal "function %s: name changed to %s" original.Func.name
      scheduled.Func.name;
  if List.length original.Func.blocks <> List.length scheduled.Func.blocks
  then
    illegal "function %s: block structure changed by scheduling"
      original.Func.name;
  let md =
    if memdep then Some (Ilp_analysis.Memdep.analyze ~ranges original)
    else None
  in
  List.iter2
    (fun (o : Block.t) s ->
      let classify =
        Option.map
          (fun md -> Ilp_analysis.Memdep.classifier md o.Block.label)
          md
      in
      check_block ?classify config ~original:o ~scheduled:s)
    original.Func.blocks scheduled.Func.blocks

let check_program ?memdep ?ranges config ~(original : Program.t)
    ~(scheduled : Program.t) =
  if
    List.length original.Program.functions
    <> List.length scheduled.Program.functions
  then illegal "program: function count changed by scheduling";
  List.iter2
    (fun o s -> check_func ?memdep ?ranges config ~original:o ~scheduled:s)
    original.Program.functions scheduled.Program.functions
