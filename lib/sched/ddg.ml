(* Data-dependence graph of one basic block.

   Nodes are the block's instructions; edges carry minimum issue
   distances in (minor) cycles:

   - RAW (flow): producer -> consumer, weight = producer's operation
     latency under the target machine;
   - WAR and WAW: weight 0 — in-order issue reads operands at issue, so
     the pair may share a cycle but must keep its order;
   - memory: store->store and load->store in order (weight 0),
     store->load with weight 1 (store-buffer forwarding), except when
     the alias analysis proves the accesses disjoint
     ([Mem_info.disjoint], or the optional [classify] refinement from
     [Ilp_analysis.Memdep] returning [No_alias]);
   - calls are scheduling barriers: ordered after every earlier node and
     before every later one;
   - a terminator is ordered after every other node so it stays last. *)

open Ilp_ir
open Ilp_machine

(* Edge-kind bits: one (src, dst) edge may carry several hazards; the
   legality checker needs to know whether an edge exists for *any*
   reason besides the (refinable) memory rule. *)
let kind_reg = 1
let kind_mem = 2
let kind_order = 4

type t = {
  instrs : Instr.t array;
  succs : (int * int) list array;  (** (dst, weight) *)
  preds : (int * int) list array;  (** (src, weight) *)
  n_edges : int;
  kinds : (int * int, int) Hashtbl.t;
  n_pruned : int;
}

let edge_kinds t ~src ~dst =
  Option.value (Hashtbl.find_opt t.kinds (src, dst)) ~default:0

let mem_of (i : Instr.t) =
  match i.Instr.mem with Some m -> m | None -> Mem_info.unknown

let build ?classify (config : Config.t) (instrs : Instr.t list) =
  let instrs = Array.of_list instrs in
  let n = Array.length instrs in
  let succs = Array.make n [] in
  let preds = Array.make n [] in
  let edge_set : (int * int, int) Hashtbl.t = Hashtbl.create (4 * n) in
  let kinds : (int * int, int) Hashtbl.t = Hashtbl.create (4 * n) in
  let n_edges = ref 0 in
  let n_pruned = ref 0 in
  let add_edge ~kind src dst weight =
    if src <> dst then begin
      Hashtbl.replace kinds (src, dst)
        (kind lor Option.value (Hashtbl.find_opt kinds (src, dst)) ~default:0);
      match Hashtbl.find_opt edge_set (src, dst) with
      | Some w when w >= weight -> ()
      | Some _ -> Hashtbl.replace edge_set (src, dst) weight
      | None ->
          Hashtbl.replace edge_set (src, dst) weight;
          incr n_edges
    end
  in
  (* last definition and uses-since-definition per register *)
  let last_def : (int, int) Hashtbl.t = Hashtbl.create 64 in
  let uses_since : (int, int list) Hashtbl.t = Hashtbl.create 64 in
  (* memory operations so far: (index, is_store, mem) *)
  let mem_ops = ref [] in
  let barrier = ref None in
  Array.iteri
    (fun k (i : Instr.t) ->
      let latency_of j =
        Config.latency config (Instr.iclass instrs.(j))
      in
      (* barrier ordering *)
      (match !barrier with Some b -> add_edge ~kind:kind_order b k 0 | None -> ());
      (* RAW *)
      List.iter
        (fun r ->
          match Hashtbl.find_opt last_def (Reg.index r) with
          | Some d -> add_edge ~kind:kind_reg d k (latency_of d)
          | None -> ())
        (Instr.uses i);
      (* WAR and WAW *)
      List.iter
        (fun d ->
          (match Hashtbl.find_opt uses_since (Reg.index d) with
          | Some users -> List.iter (fun u -> add_edge ~kind:kind_reg u k 0) users
          | None -> ());
          match Hashtbl.find_opt last_def (Reg.index d) with
          | Some prev -> add_edge ~kind:kind_reg prev k 0
          | None -> ())
        (Instr.defs i);
      (* memory ordering *)
      if Instr.is_memory i then begin
        let m = mem_of i in
        let is_store = Instr.is_store i in
        List.iter
          (fun (j, j_store, mj) ->
            if (is_store || j_store) && not (Mem_info.disjoint m mj) then
              match classify with
              | Some f
                when f instrs.(j) i = Ilp_analysis.Memdep.No_alias ->
                  (* the value analysis proves the pair apart where the
                     region annotations could not *)
                  incr n_pruned
              | _ ->
                  let weight = if j_store && not is_store then 1 else 0 in
                  add_edge ~kind:kind_mem j k weight)
          !mem_ops;
        mem_ops := (k, is_store, m) :: !mem_ops
      end;
      (* calls: order against everything, and become the new barrier *)
      if Instr.is_call i then begin
        for j = 0 to k - 1 do
          add_edge ~kind:kind_order j k 0
        done;
        barrier := Some k
      end;
      (* terminators stay last *)
      if Instr.is_terminator i then
        for j = 0 to k - 1 do
          add_edge ~kind:kind_order j k 0
        done;
      (* bookkeeping *)
      List.iter
        (fun r ->
          let k' = Reg.index r in
          let prev = Option.value (Hashtbl.find_opt uses_since k') ~default:[] in
          Hashtbl.replace uses_since k' (k :: prev))
        (Instr.uses i);
      List.iter
        (fun d ->
          Hashtbl.replace last_def (Reg.index d) k;
          Hashtbl.replace uses_since (Reg.index d) [])
        (Instr.defs i))
    instrs;
  Hashtbl.iter
    (fun (src, dst) weight ->
      succs.(src) <- (dst, weight) :: succs.(src);
      preds.(dst) <- (src, weight) :: preds.(dst))
    edge_set;
  { instrs; succs; preds; n_edges = !n_edges; kinds; n_pruned = !n_pruned }

(* Critical-path height of each node: the longest weighted path to any
   sink, plus the node's own latency.  Used as list-scheduling priority.

   Every edge runs from an earlier instruction to a later one ([build]
   only ever adds [j -> k] with [j < k]), so one reverse sweep sees each
   node after all of its successors.  No recursion: a recursive
   formulation follows successor chains and blows the stack on the long
   straight-line blocks high unroll factors produce. *)
let heights (config : Config.t) t =
  let n = Array.length t.instrs in
  let height = Array.make n 0 in
  for k = n - 1 downto 0 do
    (* height = time from this node's issue until the whole dependent
       subtree completes: at least its own latency, or a successor
       path (edge weights already carry the producer latency) *)
    let own = Config.latency config (Instr.iclass t.instrs.(k)) in
    height.(k) <-
      List.fold_left
        (fun acc (s, w) -> max acc (w + height.(s)))
        own t.succs.(k)
  done;
  height

(* The data-dependence parallelism of a block, ignoring resource limits:
   instruction count divided by critical-path length in unit-latency
   terms.  This is the "available parallelism" of code fragments like
   Figure 1-1 and Figure 4-7. *)
let available_parallelism (instrs : Instr.t list) =
  let unit_config = Config.make "unit" in
  let t = build unit_config instrs in
  let n = Array.length t.instrs in
  if n = 0 then 1.0
  else begin
    let h = heights unit_config t in
    let critical = Array.fold_left max 1 h in
    float_of_int n /. float_of_int critical
  end
