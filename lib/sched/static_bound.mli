(** Static per-loop ILP bounds.

    For every innermost loop of a compiled (scheduled, fully allocated)
    program this module derives two machine-specific lower bounds on the
    minor cycles one completed iteration must take:

    - a {e recurrence} bound: the longest register-carried dependence
      cycle through the loop — a register with a unique definition in
      the loop whose value feeds, through same-iteration register RAW
      chains, its own next definition.  The in-order timing model
      delays each link by the producer's operation latency, so [k]
      consecutive iterations cost at least [(k-1)] times the cycle's
      total latency, whatever the schedule;
    - a {e resource} bound: instructions executed every iteration
      divided by the issue width, and per instruction class by the
      declared functional-unit capacity.

    The minimum implied ILP ceiling — iteration instructions over the
    larger of the two cycle bounds, in instructions per base cycle — is
    the static prediction the [fig4_static_bounds] experiment checks
    measured ILP against.  Both bounds only use constraints the timing
    model actually enforces (register dependences, issue width, unit
    capacity); memory ordering, which the timing model does not model,
    contributes nothing.

    Dynamic iteration counts come from an execution observer that
    recognises back-edge traversals as (latch-last, header-first)
    adjacent instruction pairs in the dynamic stream. *)

open Ilp_ir
open Ilp_machine

type loop_bound = {
  sb_func : string;
  sb_header : string;  (** header block label *)
  sb_blocks : int;  (** blocks in the loop body *)
  sb_iter_instrs : int;
      (** instructions executed on every completed iteration (the
          latch-dominating blocks) *)
  sb_body_instrs : int;  (** instructions across the whole body *)
  sb_recurrence : int;
      (** minor cycles per completed iteration forced by the longest
          register-carried recurrence; 0 when none was provable *)
  sb_resource : float;
      (** minor cycles per completed iteration forced by issue width
          and functional-unit capacity *)
  sb_ilp_ceiling : float;
      (** static ILP ceiling in instructions per base cycle:
          [sb_body_instrs * pipe_degree / max(recurrence, resource)] *)
  sb_header_first : int;  (** instr id of the header's first instruction *)
  sb_latch_lasts : int list;  (** instr ids ending each latch block *)
}

type t = { bounds : loop_bound list }

val analyze : Config.t -> Program.t -> t
(** The program must be the binary that will run: bounds are derived
    from the scheduled instruction order. *)

(** {1 Dynamic iteration counting} *)

type counters

val counters : t -> counters

val observer : counters -> Instr.t -> int -> unit
(** Feed to {!Ilp_sim.Exec.run} (it has the executor's observer shape):
    counts back-edge traversals and loop entries per loop. *)

val traversals : counters -> loop_bound -> int
val entries : counters -> loop_bound -> int

(** {1 Whole-run cycle floor} *)

val resource_floor : Config.t -> dyn_instrs:int -> class_counts:int array -> int
(** Minor cycles the whole dynamic stream needs from issue width and
    unit capacity alone. *)

val recurrence_cycles : t -> counters -> int
(** Sum over innermost loops of (traversals - entries) times the loop's
    recurrence bound — cycles forced by loop-carried register chains. *)

val cycles_lb : Config.t -> t -> counters -> dyn_instrs:int -> class_counts:int array -> int
(** The combined lower bound on measured minor cycles: the larger of
    {!resource_floor} and {!recurrence_cycles}.  Every measured run of
    the same binary on the same configuration must satisfy
    [minor_cycles >= cycles_lb]. *)
