(** Data-dependence graphs of basic blocks.

    Nodes are the block's instructions; edges carry minimum issue
    distances in (minor) cycles:

    - RAW (flow): producer → consumer, weight = the producer's operation
      latency under the target machine;
    - WAR and WAW: weight 0 — in-order issue reads operands at issue, so
      the pair may share a cycle but must keep its order;
    - memory: store→store and load→store in order (weight 0),
      store→load with weight 1 (store-buffer forwarding), except when
      {!Ilp_ir.Mem_info.disjoint} proves the accesses independent;
    - calls are scheduling barriers;
    - a terminator is ordered after every other node. *)

open Ilp_ir
open Ilp_machine

type t = {
  instrs : Instr.t array;
  succs : (int * int) list array;  (** (successor, weight) *)
  preds : (int * int) list array;  (** (predecessor, weight) *)
  n_edges : int;
      (** distinct (src, dst) pairs — a pair carrying several hazards
          (say RAW and WAW) is one edge at the largest weight *)
}

val build : Config.t -> Instr.t list -> t
(** Every edge runs forward: [succs.(k)] only contains indices greater
    than [k]. *)

val heights : Config.t -> t -> int array
(** Critical-path height of each node: the time from the node's issue
    until its whole dependent subtree completes.  The list scheduler's
    priority function. *)

val available_parallelism : Instr.t list -> float
(** Instruction count divided by critical-path length under unit
    latencies, ignoring resource limits — the "parallelism" of code
    fragments as in Figure 1-1 and Figure 4-7. *)
