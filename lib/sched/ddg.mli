(** Data-dependence graphs of basic blocks.

    Nodes are the block's instructions; edges carry minimum issue
    distances in (minor) cycles:

    - RAW (flow): producer → consumer, weight = the producer's operation
      latency under the target machine;
    - WAR and WAW: weight 0 — in-order issue reads operands at issue, so
      the pair may share a cycle but must keep its order;
    - memory: store→store and load→store in order (weight 0),
      store→load with weight 1 (store-buffer forwarding), except when
      {!Ilp_ir.Mem_info.disjoint} — or the optional memory-dependence
      classifier — proves the accesses independent;
    - calls are scheduling barriers;
    - a terminator is ordered after every other node. *)

open Ilp_ir
open Ilp_machine

type t = {
  instrs : Instr.t array;
  succs : (int * int) list array;  (** (successor, weight) *)
  preds : (int * int) list array;  (** (predecessor, weight) *)
  n_edges : int;
      (** distinct (src, dst) pairs — a pair carrying several hazards
          (say RAW and WAW) is one edge at the largest weight *)
  kinds : (int * int, int) Hashtbl.t;
      (** per (src, dst): the union of {!kind_reg}, {!kind_mem},
          {!kind_order} bits that contributed the edge *)
  n_pruned : int;
      (** memory-hazard pairs the classifier proved [No_alias] where the
          region annotations alone could not — serialization edges the
          conservative graph would carry *)
}

(** Edge-kind bits. *)

val kind_reg : int
(** RAW, WAR or WAW on a register. *)

val kind_mem : int
(** The (refinable) memory-ordering rule. *)

val kind_order : int
(** Call barrier or terminator-last ordering. *)

val edge_kinds : t -> src:int -> dst:int -> int
(** The kind bits of edge (src, dst); [0] when there is no edge. *)

val build :
  ?classify:(Instr.t -> Instr.t -> Ilp_analysis.Memdep.alias) ->
  Config.t ->
  Instr.t list ->
  t
(** Every edge runs forward: [succs.(k)] only contains indices greater
    than [k].  [classify], when given, refines the memory rule: a pair
    it proves {!Ilp_analysis.Memdep.No_alias} keeps no serialization
    edge.  It is only ever consulted on pairs the conservative test
    would serialize, so a classifier that answers [May_alias]
    everywhere reproduces the conservative graph exactly. *)

val heights : Config.t -> t -> int array
(** Critical-path height of each node: the time from the node's issue
    until its whole dependent subtree completes.  The list scheduler's
    priority function. *)

val available_parallelism : Instr.t list -> float
(** Instruction count divided by critical-path length under unit
    latencies, ignoring resource limits — the "parallelism" of code
    fragments as in Figure 1-1 and Figure 4-7. *)
