(** Functions: ordered lists of basic blocks.

    The block order is the layout order, which determines fall-through
    targets; the first block is the entry.  [frame_size] is the number
    of stack words reserved by the prologue (locals, incoming-argument
    slots, spill slots) — the code generator emits the prologue and
    epilogue explicitly, so the simulator needs no special knowledge of
    frames. *)

type t = {
  name : string;
  blocks : Block.t list;
  frame_size : int;
  n_params : int;
}

val make : name:string -> frame_size:int -> n_params:int -> Block.t list -> t

val entry_label : t -> Label.t
(** Raises [Invalid_argument] on an empty function. *)

val find_block : t -> Label.t -> Block.t option

val instr_count : t -> int
(** Static instruction count. *)

val map_blocks : (Block.t -> Block.t) -> t -> t

val successors : t -> (Label.t * Label.t list) list
(** Per block in layout order: explicit branch targets plus
    fall-through. *)

val pp : t Fmt.t
