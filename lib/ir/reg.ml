(* Machine and virtual registers.

   The register file is unified (as on the MultiTitan): integer and
   floating-point values share one set of registers.  Register 0 is the
   stack pointer; all other indices are general purpose.  Code generation
   produces virtual registers (negative indices) which register allocation
   later maps onto the finite physical file. *)

type t = int [@@deriving eq, ord]

let sp = 0

let phys i =
  if i < 0 then invalid_arg "Reg.phys: negative index";
  i

(* Atomic so parallel compilations (sweep capture jobs) draw disjoint
   virtual registers. *)
let virt =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter (-1) - 1

let is_virtual r = r < 0
let is_physical r = r >= 0
let index r = r

(* Reconstruct a register from an index previously obtained with
   [index]; for tables keyed by raw indices. *)
let of_index i = i

let pp ppf r =
  if r = sp then Fmt.string ppf "sp"
  else if r < 0 then Fmt.pf ppf "v%d" (-r)
  else Fmt.pf ppf "r%d" r

let to_string r = Fmt.str "%a" pp r

module Set = Set.Make (Int)
module Map = Map.Make (Int)
module Table = Hashtbl.Make (struct
  type t = int

  let equal = Int.equal
  let hash = Hashtbl.hash
end)
