(* The fourteen instruction classes of the study (Section 3 of the paper).

   Operations in a given class are likely to have identical pipeline
   behaviour in any machine, so machine descriptions assign latencies and
   functional units per class. *)

type t =
  | Logical
  | Shift
  | Add_sub
  | Int_mul
  | Int_div
  | Move
  | Load
  | Store
  | Branch
  | Jump
  | Fp_add
  | Fp_mul
  | Fp_div
  | Fp_cvt
[@@deriving eq, ord, show { with_path = false }]

let all =
  [ Logical; Shift; Add_sub; Int_mul; Int_div; Move; Load; Store; Branch;
    Jump; Fp_add; Fp_mul; Fp_div; Fp_cvt ]

let count = List.length all

let to_index = function
  | Logical -> 0
  | Shift -> 1
  | Add_sub -> 2
  | Int_mul -> 3
  | Int_div -> 4
  | Move -> 5
  | Load -> 6
  | Store -> 7
  | Branch -> 8
  | Jump -> 9
  | Fp_add -> 10
  | Fp_mul -> 11
  | Fp_div -> 12
  | Fp_cvt -> 13

let of_index = function
  | 0 -> Logical
  | 1 -> Shift
  | 2 -> Add_sub
  | 3 -> Int_mul
  | 4 -> Int_div
  | 5 -> Move
  | 6 -> Load
  | 7 -> Store
  | 8 -> Branch
  | 9 -> Jump
  | 10 -> Fp_add
  | 11 -> Fp_mul
  | 12 -> Fp_div
  | 13 -> Fp_cvt
  | i -> invalid_arg (Printf.sprintf "Iclass.of_index: %d" i)

let name = function
  | Logical -> "logical"
  | Shift -> "shift"
  | Add_sub -> "add/sub"
  | Int_mul -> "int mul"
  | Int_div -> "int div"
  | Move -> "move"
  | Load -> "load"
  | Store -> "store"
  | Branch -> "branch"
  | Jump -> "jump"
  | Fp_add -> "FP add"
  | Fp_mul -> "FP mul"
  | Fp_div -> "FP div"
  | Fp_cvt -> "FP cvt"

let pp ppf c = Fmt.string ppf (name c)

let is_control = function
  | Branch | Jump -> true
  | Logical | Shift | Add_sub | Int_mul | Int_div | Move | Load | Store
  | Fp_add | Fp_mul | Fp_div | Fp_cvt ->
      false

let is_memory = function
  | Load | Store -> true
  | Logical | Shift | Add_sub | Int_mul | Int_div | Move | Branch | Jump
  | Fp_add | Fp_mul | Fp_div | Fp_cvt ->
      false

let is_floating_point = function
  | Fp_add | Fp_mul | Fp_div | Fp_cvt -> true
  | Logical | Shift | Add_sub | Int_mul | Int_div | Move | Load | Store
  | Branch | Jump ->
      false

(* "Simple operations" in the sense of Section 2: the vast majority of
   operations; excludes divides (an order of magnitude slower). *)
let is_simple = function
  | Int_div | Fp_div -> false
  | Logical | Shift | Add_sub | Int_mul | Move | Load | Store | Branch
  | Jump | Fp_add | Fp_mul | Fp_cvt ->
      true
