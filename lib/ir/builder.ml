(* Convenience constructors for hand-written IR fragments (tests,
   examples such as the Figure 1-1 code fragments). *)

open Instr

let rr op d a b = make op ~dst:d ~srcs:[ Oreg a; Oreg b ]
let ri op d a n = make op ~dst:d ~srcs:[ Oreg a; Oimm n ]
let un op d a = make op ~dst:d ~srcs:[ Oreg a ]

let add = rr Opcode.Add
let addi = ri Opcode.Add
let sub = rr Opcode.Sub
let mul = rr Opcode.Mul
let div = rr Opcode.Div
let and_ = rr Opcode.And
let or_ = rr Opcode.Or
let xor = rr Opcode.Xor
let shl = ri Opcode.Shl
let slt = rr Opcode.Slt
let mov d a = un Opcode.Mov d a
let li d n = make Opcode.Li ~dst:d ~srcs:[ Oimm n ]
let fli d f = make Opcode.Fli ~dst:d ~srcs:[ Ofimm f ]
let fadd = rr Opcode.Fadd
let fsub = rr Opcode.Fsub
let fmul = rr Opcode.Fmul
let fdiv = rr Opcode.Fdiv
let itof d a = un Opcode.Itof d a

let ld ?mem d ~base ~offset =
  make Opcode.Ld ~dst:d ~srcs:[ Oreg base ] ~offset ?mem

let st ?mem ~value ~base ~offset () =
  make Opcode.St ~srcs:[ Oreg value; Oreg base ] ~offset ?mem

let beq a b l = make Opcode.Beq ~srcs:[ Oreg a; Oreg b ] ~target:l
let bne a b l = make Opcode.Bne ~srcs:[ Oreg a; Oreg b ] ~target:l
let blt a b l = make Opcode.Blt ~srcs:[ Oreg a; Oreg b ] ~target:l
let bge a b l = make Opcode.Bge ~srcs:[ Oreg a; Oreg b ] ~target:l
let jmp l = make Opcode.Jmp ~target:l
let call l = make Opcode.Call ~target:l
let ret () = make Opcode.Ret
let halt () = make Opcode.Halt
let nop () = make Opcode.Nop

(* A one-block function wrapping [instrs]; appends [halt] if the last
   instruction is not already a terminator. *)
let single_block_main instrs =
  let instrs =
    match List.rev instrs with
    | last :: _ when Instr.is_terminator last -> instrs
    | _ -> instrs @ [ halt () ]
  in
  let block = Block.make (Label.of_string "main") instrs in
  Func.make ~name:"main" ~frame_size:0 ~n_params:0 [ block ]

let program_of_instrs instrs =
  Program.make ~globals:[] ~functions:[ single_block_main instrs ]
