(* Static description of the memory location touched by a load or store,
   attached by code generation and consumed by the alias analysis used
   during instruction scheduling (DESIGN.md, decision 5).

   A location is a region (which global, which stack slot, which array)
   plus a symbolic offset within it.  Two accesses are known independent
   when their regions are disjoint, or when they fall at provably
   different offsets of the same region. *)

type region =
  | Global of string  (** scalar global variable *)
  | Global_array of string  (** element of a global array *)
  | Global_array_view of string * string
      (** element of a global array accessed through a declared view:
          base array, view name.  Different views of one array are
          declared disjoint by the programmer (the stand-in for the
          paper's by-hand interprocedural alias analysis). *)
  | Stack_slot of string * int  (** local scalar: function name, slot *)
  | Stack_array of string * int  (** local array: function name, slot *)
  | Arg_slot of string * int  (** outgoing/incoming argument slot *)
  | Unknown
[@@deriving eq, ord, show { with_path = false }]

(* Offset of the access within its region, in words.  [Sym (v, c)] means
   "the value of virtual register [v] plus constant [c]".  Virtual
   registers are single-assignment by construction, so [v] names a fixed
   runtime value per block execution: two accesses [Sym (v, c1)] and
   [Sym (v, c2)] with [c1 <> c2] provably touch different words even
   after register allocation renames the physical operands.  This is
   what lets the scheduler prove that A[i] and A[i+1] from an unrolled
   loop do not collide.  Passes that substitute one value-equal register
   for another (CSE, copy propagation) should rewrite [Sym] fields the
   same way to preserve precision. *)
type offset =
  | Const of int
  | Sym of Reg.t * int
  | Top
[@@deriving eq, show { with_path = false }]

type t = { region : region; offset : offset }
[@@deriving eq, show { with_path = false }]

let unknown = { region = Unknown; offset = Top }
let make region offset = { region; offset }

let region_name = function
  | Global s | Global_array s | Global_array_view (s, _) -> Some s
  | Stack_slot _ | Stack_array _ | Arg_slot _ | Unknown -> None

(* Conservative region disjointness: distinct named regions never
   overlap (the compiler lays them out separately); [Unknown] may alias
   anything.  Scalar regions never overlap array regions of a different
   name.  Argument slots of two *different* callees can share memory
   (both sit just below the caller's stack pointer), so only slots of
   the same callee are compared. *)
let regions_disjoint r1 r2 =
  match (r1, r2) with
  | Unknown, _ | _, Unknown -> false
  | Global a, Global b -> not (String.equal a b)
  | Global_array a, Global_array b -> not (String.equal a b)
  (* distinct views of one array are declared disjoint; a view against
     the bare array stays conservative *)
  | Global_array_view (a, v), Global_array_view (b, w) ->
      (not (String.equal a b)) || not (String.equal v w)
  | Global_array_view (a, _), Global_array b
  | Global_array b, Global_array_view (a, _) ->
      not (String.equal a b)
  | Global_array_view (a, _), Global b
  | Global b, Global_array_view (a, _) ->
      not (String.equal a b)
  | Global_array_view _, (Stack_slot _ | Stack_array _ | Arg_slot _)
  | (Stack_slot _ | Stack_array _ | Arg_slot _), Global_array_view _ -> true
  | Stack_slot (f, i), Stack_slot (g, j) ->
      not (String.equal f g && i = j)
  | Stack_array (f, i), Stack_array (g, j) ->
      not (String.equal f g && i = j)
  | Arg_slot (f, i), Arg_slot (g, j) -> String.equal f g && i <> j
  | Global _, (Global_array _ | Stack_slot _ | Stack_array _ | Arg_slot _)
  | Global_array _, (Global _ | Stack_slot _ | Stack_array _ | Arg_slot _)
  | Stack_slot (_, _), (Global _ | Global_array _ | Stack_array _ | Arg_slot _)
  | Stack_array (_, _), (Global _ | Global_array _ | Stack_slot _ | Arg_slot _)
  | Arg_slot (_, _), (Global _ | Global_array _ | Stack_slot _ | Stack_array _)
    ->
      true

(* Offset disjointness within the same region.  The [Sym] case is only
   valid if the register still holds the same value at both accesses; the
   caller (the dependence-graph builder) is responsible for checking that
   the register is not redefined between the two. *)
let offsets_disjoint o1 o2 =
  match (o1, o2) with
  | Const a, Const b -> a <> b
  | Sym (r1, c1), Sym (r2, c2) -> Reg.equal r1 r2 && c1 <> c2
  | Top, _ | _, Top | Const _, Sym _ | Sym _, Const _ -> false

let disjoint t1 t2 =
  regions_disjoint t1.region t2.region
  || (equal_region t1.region t2.region && offsets_disjoint t1.offset t2.offset)

let pp ppf { region; offset } =
  let pp_off ppf = function
    | Const c -> Fmt.pf ppf "+%d" c
    | Sym (r, 0) -> Fmt.pf ppf "+%a" Reg.pp r
    | Sym (r, c) -> Fmt.pf ppf "+%a%+d" Reg.pp r c
    | Top -> Fmt.string ppf "+?"
  in
  match region with
  | Unknown -> Fmt.string ppf "?"
  | Global s -> Fmt.pf ppf "%s" s
  | Global_array s -> Fmt.pf ppf "%s[]%a" s pp_off offset
  | Global_array_view (s, v) -> Fmt.pf ppf "%s@%s[]%a" s v pp_off offset
  | Stack_slot (f, i) -> Fmt.pf ppf "%s.local%d" f i
  | Stack_array (f, i) -> Fmt.pf ppf "%s.array%d%a" f i pp_off offset
  | Arg_slot (f, i) -> Fmt.pf ppf "%s.arg%d" f i
