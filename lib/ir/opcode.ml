(* Opcodes of the target RISC instruction set.

   The set is modelled on the MultiTitan: a load/store architecture with
   register-register ALU operations, compare-and-branch, and a unified
   register file.  Each opcode belongs to exactly one of the fourteen
   instruction classes. *)

type t =
  (* integer arithmetic *)
  | Add
  | Sub
  | Neg
  | Mul
  | Div
  | Rem
  (* comparisons producing 0/1 *)
  | Slt
  | Sle
  | Seq
  | Sne
  (* logical *)
  | And
  | Or
  | Xor
  | Not
  (* shifts *)
  | Shl
  | Shr
  | Sra
  (* moves and immediates *)
  | Mov
  | Li
  | Fli
  | Nop
  (* floating point *)
  | Fadd
  | Fsub
  | Fneg
  | Fmul
  | Fdiv
  | Feq
  | Flt
  | Fle
  | Itof
  | Ftoi
  (* memory *)
  | Ld
  | St
  (* control *)
  | Beq
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Jmp
  | Call
  | Ret
  | Halt
[@@deriving eq, ord, show { with_path = false }]

let iclass = function
  | And | Or | Xor | Not -> Iclass.Logical
  | Shl | Shr | Sra -> Iclass.Shift
  | Add | Sub | Neg | Slt | Sle | Seq | Sne -> Iclass.Add_sub
  | Mul -> Iclass.Int_mul
  | Div | Rem -> Iclass.Int_div
  | Mov | Li | Fli | Nop -> Iclass.Move
  | Ld -> Iclass.Load
  | St -> Iclass.Store
  | Beq | Bne | Blt | Ble | Bgt | Bge -> Iclass.Branch
  | Jmp | Call | Ret | Halt -> Iclass.Jump
  | Fadd | Fsub | Fneg | Feq | Flt | Fle -> Iclass.Fp_add
  | Fmul -> Iclass.Fp_mul
  | Fdiv -> Iclass.Fp_div
  | Itof | Ftoi -> Iclass.Fp_cvt

let mnemonic = function
  | Add -> "add"
  | Sub -> "sub"
  | Neg -> "neg"
  | Mul -> "mul"
  | Div -> "div"
  | Rem -> "rem"
  | Slt -> "slt"
  | Sle -> "sle"
  | Seq -> "seq"
  | Sne -> "sne"
  | And -> "and"
  | Or -> "or"
  | Xor -> "xor"
  | Not -> "not"
  | Shl -> "shl"
  | Shr -> "shr"
  | Sra -> "sra"
  | Mov -> "mov"
  | Li -> "li"
  | Fli -> "fli"
  | Nop -> "nop"
  | Fadd -> "fadd"
  | Fsub -> "fsub"
  | Fneg -> "fneg"
  | Fmul -> "fmul"
  | Fdiv -> "fdiv"
  | Feq -> "feq"
  | Flt -> "flt"
  | Fle -> "fle"
  | Itof -> "itof"
  | Ftoi -> "ftoi"
  | Ld -> "ld"
  | St -> "st"
  | Beq -> "beq"
  | Bne -> "bne"
  | Blt -> "blt"
  | Ble -> "ble"
  | Bgt -> "bgt"
  | Bge -> "bge"
  | Jmp -> "jmp"
  | Call -> "call"
  | Ret -> "ret"
  | Halt -> "halt"

let pp ppf op = Fmt.string ppf (mnemonic op)

let is_branch = function
  | Beq | Bne | Blt | Ble | Bgt | Bge -> true
  | _ -> false

let is_terminator = function
  | Beq | Bne | Blt | Ble | Bgt | Bge | Jmp | Ret | Halt -> true
  | _ -> false

(* Is the operation a pure function of its operands?  Pure operations are
   candidates for common-subexpression elimination and dead-code removal. *)
let is_pure = function
  | Add | Sub | Neg | Mul | Div | Rem | Slt | Sle | Seq | Sne | And | Or
  | Xor | Not | Shl | Shr | Sra | Mov | Li | Fli | Fadd | Fsub | Fneg
  | Fmul | Fdiv | Feq | Flt | Fle | Itof | Ftoi ->
      true
  | Nop | Ld | St | Beq | Bne | Blt | Ble | Bgt | Bge | Jmp | Call | Ret
  | Halt ->
      false

(* Binary operations that are associative and commutative, used by the
   reassociation performed during careful loop unrolling. *)
let is_assoc_commutative = function
  | Add | Mul | And | Or | Xor | Fadd | Fmul -> true
  | _ -> false
