(** Code labels: names of basic blocks and function entry points. *)

type t

val equal : t -> t -> bool
val compare : t -> t -> int

val of_string : string -> t
val to_string : t -> string

val fresh : string -> t
(** [fresh prefix] is a label [prefix_N] distinct from every other label
    created through [fresh]. *)

val pp : t Fmt.t
val show : t -> string

module Map : Map.S with type key = t
module Set : Set.S with type elt = t
module Table : Hashtbl.S with type key = t
