(* Instructions.

   The encoding is deliberately uniform so that optimization passes can
   treat instructions generically: an optional destination register, a
   list of source operands, an optional control-flow target, and (for
   loads and stores) a static memory description plus a constant offset.

   Shapes by opcode:
   - ALU binary ops: dst = Some r, srcs = [reg; reg-or-imm]
   - unary ops (neg, not, mov, itof, ...): dst = Some r, srcs = [reg]
   - li / fli: dst = Some r, srcs = [imm]
   - ld:  dst = Some r, srcs = [base], offset c  means  r <- M[base+c]
   - st:  dst = None, srcs = [value; base], offset c  means  M[base+c] <- value
   - branches: srcs = [reg; reg], target = Some l (fall through otherwise)
   - jmp: target = Some l
   - call: target = Some f; the return value appears in [ret_reg]
   - ret: uses [ret_reg]
   - halt, nop: nothing *)

type operand = Oreg of Reg.t | Oimm of int | Ofimm of float
[@@deriving eq, show { with_path = false }]

type t = {
  id : int;
  op : Opcode.t;
  dst : Reg.t option;
  srcs : operand list;
  target : Label.t option;
  mem : Mem_info.t option;
  offset : int;
}

(* Return-value register of the calling convention. *)
let ret_reg = Reg.phys 1

(* Atomic so that compilations running in parallel domains (the sweep
   engine's capture phase) still get globally unique ids. *)
let next_id =
  let counter = Atomic.make 0 in
  fun () -> Atomic.fetch_and_add counter 1 + 1

let make ?dst ?(srcs = []) ?target ?mem ?(offset = 0) op =
  { id = next_id (); op; dst; srcs; target; mem; offset }

(* Rebuild [i] with a fresh identity; used when a pass duplicates code. *)
let copy i = { i with id = next_id () }

let with_srcs i srcs = { i with srcs }
let with_dst i dst = { i with dst }
let with_mem i mem = { i with mem = Some mem }

let iclass i = Opcode.iclass i.op

let defs i =
  match i.op with
  | Opcode.Call -> ( match i.dst with Some d -> [ d ] | None -> [ ret_reg ])
  | _ -> ( match i.dst with Some d -> [ d ] | None -> [])

let src_regs i =
  List.filter_map
    (function Oreg r -> Some r | Oimm _ | Ofimm _ -> None)
    i.srcs

let uses i =
  let base = src_regs i in
  match i.op with Opcode.Ret -> ret_reg :: base | _ -> base

let is_branch i = Opcode.is_branch i.op
let is_terminator i = Opcode.is_terminator i.op
let is_call i = i.op = Opcode.Call
let is_load i = i.op = Opcode.Ld
let is_store i = i.op = Opcode.St
let is_memory i = is_load i || is_store i

(* Substitute registers in sources (not destination). *)
let map_src_regs f i =
  let srcs =
    List.map
      (function
        | Oreg r -> Oreg (f r)
        | (Oimm _ | Ofimm _) as o -> o)
      i.srcs
  in
  { i with srcs }

let map_dst f i =
  match i.dst with None -> i | Some d -> { i with dst = Some (f d) }

let pp_operand ppf = function
  | Oreg r -> Reg.pp ppf r
  | Oimm n -> Fmt.int ppf n
  | Ofimm f -> Fmt.float ppf f

let pp ppf i =
  let pp_mem ppf () =
    match i.mem with
    | None -> ()
    | Some m -> Fmt.pf ppf "  ; %a" Mem_info.pp m
  in
  match i.op with
  | Opcode.Ld -> (
      match (i.dst, i.srcs) with
      | Some d, [ base ] ->
          Fmt.pf ppf "ld    %a <- %d(%a)%a" Reg.pp d i.offset pp_operand base
            pp_mem ()
      | _ -> Fmt.pf ppf "ld    <malformed>")
  | Opcode.St -> (
      match i.srcs with
      | [ v; base ] ->
          Fmt.pf ppf "st    %d(%a) <- %a%a" i.offset pp_operand base
            pp_operand v pp_mem ()
      | _ -> Fmt.pf ppf "st    <malformed>")
  | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Ble | Opcode.Bgt
  | Opcode.Bge ->
      Fmt.pf ppf "%-5s %a, %a"
        (Opcode.mnemonic i.op)
        (Fmt.list ~sep:Fmt.comma pp_operand)
        i.srcs
        Fmt.(option Label.pp)
        i.target
  | Opcode.Jmp | Opcode.Call ->
      Fmt.pf ppf "%-5s %a" (Opcode.mnemonic i.op) Fmt.(option Label.pp) i.target
  | Opcode.Ret | Opcode.Halt | Opcode.Nop ->
      Fmt.string ppf (Opcode.mnemonic i.op)
  | _ -> (
      match i.dst with
      | Some d ->
          Fmt.pf ppf "%-5s %a <- %a"
            (Opcode.mnemonic i.op)
            Reg.pp d
            (Fmt.list ~sep:Fmt.comma pp_operand)
            i.srcs
      | None ->
          Fmt.pf ppf "%-5s %a"
            (Opcode.mnemonic i.op)
            (Fmt.list ~sep:Fmt.comma pp_operand)
            i.srcs)

(* The horizontal box keeps [Fmt.comma]'s break hints as spaces:
   without it every hint turns into a newline, embedding line breaks
   in diagnostics and disassembly that quote an instruction. *)
let to_string i = Fmt.str "%a" (Fmt.hbox pp) i
