(* IR well-formedness checking, used by the test suite after every
   compilation stage and available to users debugging passes.

   Structural invariants (all stages):
   - operand shapes match each opcode (see Instr);
   - every branch/jump target resolves to a block label in the same
     function; every call target resolves to a function;
   - terminators appear only at block ends;
   - the last block of a function cannot fall off the end;
   - a program has a main function;
   - block labels are unique across the program, and no function name
     doubles as a basic-block label other than that function's own entry
     block (the executor aliases every function name to its entry, so a
     colliding label would silently redirect branches).

   Stage-specific invariants:
   - [`Virtual]: code straight out of the code generator or the
     optimizer — virtual registers allowed;
   - [`Allocated]: after register allocation — no virtual registers
     anywhere, and with [~max_reg] every physical register index stays
     below the configured register-file size. *)

type stage = [ `Virtual | `Allocated ]

type issue = { where : string; what : string }

let issue where fmt = Printf.ksprintf (fun what -> { where; what }) fmt

let check_operand_shape ~where (i : Instr.t) =
  let n_srcs = List.length i.Instr.srcs in
  let has_dst = i.Instr.dst <> None in
  let bad what = Some (issue where "%s: %s" (Instr.to_string i) what) in
  match i.Instr.op with
  | Opcode.Add | Opcode.Sub | Opcode.Mul | Opcode.Div | Opcode.Rem
  | Opcode.And | Opcode.Or | Opcode.Xor | Opcode.Shl | Opcode.Shr
  | Opcode.Sra | Opcode.Slt | Opcode.Sle | Opcode.Seq | Opcode.Sne
  | Opcode.Fadd | Opcode.Fsub | Opcode.Fmul | Opcode.Fdiv | Opcode.Feq
  | Opcode.Flt | Opcode.Fle ->
      if not has_dst then bad "binary op without destination"
      else if n_srcs <> 2 then bad "binary op needs two sources"
      else None
  | Opcode.Neg | Opcode.Not | Opcode.Fneg | Opcode.Mov | Opcode.Itof
  | Opcode.Ftoi ->
      if not has_dst then bad "unary op without destination"
      else if n_srcs <> 1 then bad "unary op needs one source"
      else None
  | Opcode.Li | Opcode.Fli ->
      if not has_dst then bad "immediate load without destination"
      else if n_srcs <> 1 then bad "immediate load needs one operand"
      else None
  | Opcode.Ld ->
      if not has_dst then bad "load without destination"
      else if n_srcs <> 1 then bad "load needs one base operand"
      else None
  | Opcode.St ->
      if has_dst then bad "store with a destination"
      else if n_srcs <> 2 then bad "store needs value and base"
      else None
  | Opcode.Beq | Opcode.Bne | Opcode.Blt | Opcode.Ble | Opcode.Bgt
  | Opcode.Bge ->
      if i.Instr.target = None then bad "branch without target"
      else if n_srcs <> 2 then bad "branch needs two sources"
      else None
  | Opcode.Jmp | Opcode.Call ->
      if i.Instr.target = None then bad "jump/call without target" else None
  | Opcode.Ret | Opcode.Halt | Opcode.Nop ->
      if n_srcs <> 0 then bad "nullary op with operands" else None

let check_func ~stage ~max_reg ~function_names (f : Func.t) =
  let issues = ref [] in
  let add i = issues := i :: !issues in
  let where = "function " ^ f.Func.name in
  let block_labels =
    List.map (fun b -> Label.to_string b.Block.label) f.Func.blocks
  in
  (match f.Func.blocks with
  | [] -> add (issue where "no blocks")
  | blocks -> (
      (* last block must not fall through into nothing *)
      match List.rev blocks with
      | last :: _ ->
          let rec find_terminated = function
            | [] -> false
            | b :: rest ->
                if Block.falls_through b then find_terminated rest else true
          in
          if Block.falls_through last && last.Block.instrs <> [] then
            add (issue where "last block can fall off the end");
          ignore find_terminated
      | [] -> ()));
  List.iter
    (fun (b : Block.t) ->
      let bwhere =
        Printf.sprintf "%s, block %s" where (Label.to_string b.Block.label)
      in
      let n = List.length b.Block.instrs in
      List.iteri
        (fun k (i : Instr.t) ->
          (match check_operand_shape ~where:bwhere i with
          | Some iss -> add iss
          | None -> ());
          (* terminators only at the end *)
          if Instr.is_terminator i && k <> n - 1 then
            add (issue bwhere "terminator %s before block end"
                   (Instr.to_string i));
          (* register stage *)
          (match stage with
          | `Allocated ->
              List.iter
                (fun reg ->
                  if Reg.is_virtual reg then
                    add (issue bwhere "virtual register %s after allocation"
                           (Reg.to_string reg))
                  else
                    match max_reg with
                    | Some limit when Reg.index reg >= limit ->
                        add
                          (issue bwhere
                             "register %s outside the register file (size %d)"
                             (Reg.to_string reg) limit)
                    | Some _ | None -> ())
                (Instr.defs i @ Instr.uses i)
          | `Virtual -> ());
          (* targets resolve *)
          match i.Instr.target with
          | Some t ->
              let name = Label.to_string t in
              if Instr.is_call i then begin
                if not (List.mem name function_names) then
                  add (issue bwhere "call to unknown function %s" name)
              end
              else if not (List.mem name block_labels) then
                add (issue bwhere "jump to unknown label %s" name)
          | None -> ())
        b.Block.instrs)
    f.Func.blocks;
  List.rev !issues

(* Program-level label checks: the executor resolves labels through one
   global table and aliases every function name to its entry block, so
   a duplicated block label — or a function name reused as a label
   elsewhere — silently redirects control.  Codegen labels each
   function's entry block with the function's own name; that self-alias
   is the one benign collision. *)
let check_program_labels (p : Program.t) =
  let issues = ref [] in
  let owner : (string, string) Hashtbl.t = Hashtbl.create 64 in
  List.iter
    (fun (f : Func.t) ->
      List.iter
        (fun (b : Block.t) ->
          let l = Label.to_string b.Block.label in
          (match Hashtbl.find_opt owner l with
          | Some other ->
              issues :=
                issue "program" "duplicate block label %s (in %s and %s)" l
                  other f.Func.name
                :: !issues
          | None -> ());
          Hashtbl.replace owner l f.Func.name)
        f.Func.blocks)
    p.Program.functions;
  List.iter
    (fun (f : Func.t) ->
      let entry_label =
        match f.Func.blocks with
        | b :: _ -> Some (Label.to_string b.Block.label)
        | [] -> None
      in
      match Hashtbl.find_opt owner f.Func.name with
      | Some _ when entry_label <> Some f.Func.name ->
          issues :=
            issue "program"
              "function name %s collides with a basic-block label"
              f.Func.name
            :: !issues
      | _ -> ())
    p.Program.functions;
  List.rev !issues

let check ?(stage = `Virtual) ?max_reg (p : Program.t) : issue list =
  let function_names =
    List.map (fun f -> f.Func.name) p.Program.functions
  in
  let issues =
    List.concat_map
      (check_func ~stage ~max_reg ~function_names)
      p.Program.functions
    @ check_program_labels p
  in
  let issues =
    if List.exists (fun f -> f.Func.name = "main") p.Program.functions then
      issues
    else issue "program" "no main function" :: issues
  in
  issues

let pp_issue ppf i = Fmt.pf ppf "%s: %s" i.where i.what

(* Raise on the first problem; for use in tests and assertions. *)
exception Invalid of string

let check_exn ?stage ?max_reg p =
  match check ?stage ?max_reg p with
  | [] -> ()
  | first :: _ -> raise (Invalid (Fmt.str "%a" pp_issue first))
