(** IR well-formedness checking, used by the test suite after every
    compilation stage and available when debugging passes.

    Checks operand shapes per opcode, label/function resolution,
    terminator placement, that the last block cannot fall off the end,
    program-wide label uniqueness (including function names reused as
    block labels, which would silently redirect control in the
    executor), and (at stage [`Allocated]) that no virtual registers
    remain. *)

type stage = [ `Virtual | `Allocated ]

type issue = { where : string; what : string }

val check : ?stage:stage -> Program.t -> issue list
(** Empty when the program is well formed.  Default stage [`Virtual]. *)

val pp_issue : issue Fmt.t

exception Invalid of string

val check_exn : ?stage:stage -> Program.t -> unit
(** Raises {!Invalid} with the first problem found. *)
