(** IR well-formedness checking, used by the test suite after every
    compilation stage and available when debugging passes.

    Checks operand shapes per opcode, label/function resolution,
    terminator placement, that the last block cannot fall off the end,
    program-wide label uniqueness (including function names reused as
    block labels, which would silently redirect control in the
    executor), and (at stage [`Allocated]) that no virtual registers
    remain and — given [~max_reg] — that every physical register index
    stays below the configured register-file size. *)

type stage = [ `Virtual | `Allocated ]

type issue = { where : string; what : string }

val check : ?stage:stage -> ?max_reg:int -> Program.t -> issue list
(** Empty when the program is well formed.  Default stage [`Virtual];
    [max_reg] (typically [Regfile.file_size config]) only applies at
    [`Allocated]. *)

val pp_issue : issue Fmt.t

exception Invalid of string

val check_exn : ?stage:stage -> ?max_reg:int -> Program.t -> unit
(** Raises {!Invalid} with the first problem found. *)
