(** Instructions.

    The encoding is uniform so passes can treat instructions
    generically: an optional destination register, a list of source
    operands, an optional control-flow target, and (for loads and
    stores) a static memory description plus a constant offset.

    Shapes by opcode:
    - ALU binary ops: [dst = Some r], [srcs = [reg; reg-or-imm]]
    - unary ops (neg, not, mov, itof, …): [dst = Some r], [srcs = [reg]]
    - li / fli: [dst = Some r], [srcs = [imm]]
    - ld: [dst = Some r], [srcs = [base]], [offset c] means
      r <- M\[base+c\]; the base may be a register or an absolute
      address immediate
    - st: [dst = None], [srcs = [value; base]], [offset c] means
      M\[base+c\] <- value
    - branches: [srcs = [reg; reg]], [target = Some l] (falls through
      when not taken)
    - jmp / call: [target = Some l]; the call's return value appears in
      {!ret_reg}
    - ret: uses {!ret_reg}; halt and nop carry nothing. *)

type operand = Oreg of Reg.t | Oimm of int | Ofimm of float

val equal_operand : operand -> operand -> bool
val pp_operand : operand Fmt.t

type t = {
  id : int;  (** unique identity, fresh at construction *)
  op : Opcode.t;
  dst : Reg.t option;
  srcs : operand list;
  target : Label.t option;
  mem : Mem_info.t option;
  offset : int;
}

val ret_reg : Reg.t
(** The return-value register of the calling convention (r1). *)

val make :
  ?dst:Reg.t ->
  ?srcs:operand list ->
  ?target:Label.t ->
  ?mem:Mem_info.t ->
  ?offset:int ->
  Opcode.t ->
  t
(** Build an instruction with a fresh [id]. *)

val copy : t -> t
(** Same fields, fresh [id]; for passes that duplicate code. *)

val with_srcs : t -> operand list -> t
val with_dst : t -> Reg.t option -> t
val with_mem : t -> Mem_info.t -> t

val iclass : t -> Iclass.t

val defs : t -> Reg.t list
(** Registers written: the destination, plus {!ret_reg} for calls. *)

val uses : t -> Reg.t list
(** Registers read: register sources, plus {!ret_reg} for returns. *)

val src_regs : t -> Reg.t list
(** Only the register operands among [srcs]. *)

val is_branch : t -> bool
val is_terminator : t -> bool
val is_call : t -> bool
val is_load : t -> bool
val is_store : t -> bool
val is_memory : t -> bool

val map_src_regs : (Reg.t -> Reg.t) -> t -> t
(** Substitute source registers (destination untouched). *)

val map_dst : (Reg.t -> Reg.t) -> t -> t

val pp : t Fmt.t
(** Assembly-like rendering, including the memory annotation as a
    comment. *)

val to_string : t -> string
