(* A function: an ordered list of basic blocks.

   The block order is the layout order, which determines fall-through
   targets.  The first block is the entry.  [frame_size] is the number of
   stack words reserved by the prologue (incoming arguments, locals,
   spill slots); the code generator emits the prologue/epilogue
   explicitly, so the simulator needs no special knowledge of frames. *)

type t = {
  name : string;
  blocks : Block.t list;
  frame_size : int;
  n_params : int;
}

let make ~name ~frame_size ~n_params blocks =
  { name; blocks; frame_size; n_params }

let entry_label f =
  match f.blocks with
  | [] -> invalid_arg ("Func.entry_label: empty function " ^ f.name)
  | b :: _ -> b.Block.label

let find_block f label =
  List.find_opt (fun b -> Label.equal b.Block.label label) f.blocks

let instr_count f =
  List.fold_left (fun acc b -> acc + Block.size b) 0 f.blocks

let map_blocks fn f = { f with blocks = List.map fn f.blocks }

(* Successor labels of each block, in layout order: explicit branch
   targets plus fall-through.  Used by CFG analyses. *)
let successors f =
  let rec walk = function
    | [] -> []
    | b :: rest ->
        let explicit = Block.branch_targets b in
        let fallthrough =
          if Block.falls_through b then
            match rest with
            | next :: _ -> [ next.Block.label ]
            | [] -> []
          else []
        in
        (b.Block.label, explicit @ fallthrough) :: walk rest
  in
  walk f.blocks

let pp ppf f =
  Fmt.pf ppf "func %s (params=%d, frame=%d):@." f.name f.n_params
    f.frame_size;
  List.iter (Block.pp ppf) f.blocks
