(** The fourteen instruction classes of the study (Section 3 of the
    paper).

    The paper groups the MultiTitan operations "into fourteen classes,
    selected so that operations in a given class are likely to have
    identical pipeline behavior in any machine"; machine descriptions
    assign operation latencies and functional units per class. *)

type t =
  | Logical  (** and, or, xor, not *)
  | Shift  (** shifts left and right *)
  | Add_sub  (** integer add, subtract, compares *)
  | Int_mul  (** integer multiply *)
  | Int_div  (** integer divide and modulo (not "simple") *)
  | Move  (** register moves and immediate loads *)
  | Load  (** single-word load *)
  | Store  (** single-word store *)
  | Branch  (** conditional compare-and-branch *)
  | Jump  (** unconditional jump, call, return, halt *)
  | Fp_add  (** FP add, subtract, negate, compare *)
  | Fp_mul  (** FP multiply *)
  | Fp_div  (** FP divide (not "simple") *)
  | Fp_cvt  (** int/FP conversions *)

val equal : t -> t -> bool
val compare : t -> t -> int

val all : t list
(** All classes, in [to_index] order. *)

val count : int
(** [List.length all], i.e. 14. *)

val to_index : t -> int
(** A dense index in [0, count), for array-based tables. *)

val of_index : int -> t
(** Inverse of [to_index].  Raises [Invalid_argument] out of range. *)

val name : t -> string
(** Human-readable name, e.g. ["add/sub"]. *)

val pp : t Fmt.t
val show : t -> string

val is_control : t -> bool
(** Branches and jumps. *)

val is_memory : t -> bool
(** Loads and stores. *)

val is_floating_point : t -> bool

val is_simple : t -> bool
(** "Simple operations" in the sense of Section 2: the vast majority of
    operations; excludes the divides, which take an order of magnitude
    longer and occur rarely. *)
