(** Opcodes of the target RISC instruction set.

    The set is modelled on the MultiTitan: a load/store architecture
    with register-register ALU operations, compare-and-branch, and a
    unified register file.  Each opcode belongs to exactly one of the
    fourteen {!Iclass.t} instruction classes. *)

type t =
  | Add
  | Sub
  | Neg
  | Mul
  | Div
  | Rem
  | Slt  (** set if less than *)
  | Sle  (** set if less or equal *)
  | Seq  (** set if equal *)
  | Sne  (** set if not equal *)
  | And
  | Or
  | Xor
  | Not
  | Shl  (** shift left *)
  | Shr  (** logical shift right *)
  | Sra  (** arithmetic shift right *)
  | Mov
  | Li  (** load integer immediate *)
  | Fli  (** load FP immediate *)
  | Nop
  | Fadd
  | Fsub
  | Fneg
  | Fmul
  | Fdiv
  | Feq  (** FP compare, result 0/1 *)
  | Flt
  | Fle
  | Itof  (** int to FP *)
  | Ftoi  (** FP to int (truncating) *)
  | Ld  (** load word *)
  | St  (** store word *)
  | Beq  (** compare-and-branch *)
  | Bne
  | Blt
  | Ble
  | Bgt
  | Bge
  | Jmp
  | Call
  | Ret
  | Halt

val equal : t -> t -> bool
val compare : t -> t -> int

val iclass : t -> Iclass.t
(** The instruction class the opcode belongs to. *)

val mnemonic : t -> string
val pp : t Fmt.t
val show : t -> string

val is_branch : t -> bool
(** Conditional branches only. *)

val is_terminator : t -> bool
(** May end a basic block: branches, [Jmp], [Ret], [Halt] — but not
    [Call], which returns to the next instruction. *)

val is_pure : t -> bool
(** A pure function of its register operands: candidate for CSE and
    dead-code elimination.  Memory operations, control flow and calls
    are impure.  [Div]/[Rem] are pure but can fault, so passes that
    speculate must still exclude them. *)

val is_assoc_commutative : t -> bool
(** Associative and commutative binary operations, eligible for the
    reassociation performed by careful loop unrolling (Section 4.4). *)
