(* A whole program: global data plus functions.

   Memory is word addressed.  Global variables are laid out from
   [globals_base] upward; the stack grows downward from the top of the
   simulated memory.  The function named "main" is the entry point. *)

type init = Zero | Ints of int list | Floats of float list

type global = { gname : string; words : int; init : init }

type t = { globals : global list; functions : Func.t list }

let globals_base = 1024

let make ~globals ~functions = { globals; functions }

let find_function p name =
  List.find_opt (fun f -> String.equal f.Func.name name) p.functions

let main p =
  match find_function p "main" with
  | Some f -> f
  | None -> invalid_arg "Program.main: no function named main"

(* Address of each global under the standard layout. *)
let layout p =
  let table = Hashtbl.create 16 in
  let next = ref globals_base in
  List.iter
    (fun g ->
      Hashtbl.replace table g.gname !next;
      next := !next + g.words)
    p.globals;
  (table, !next)

let global_address p name =
  let table, _ = layout p in
  match Hashtbl.find_opt table name with
  | Some a -> a
  | None -> invalid_arg ("Program.global_address: unknown global " ^ name)

let instr_count p =
  List.fold_left (fun acc f -> acc + Func.instr_count f) 0 p.functions

let map_functions fn p = { p with functions = List.map fn p.functions }

let pp ppf p =
  List.iter
    (fun g -> Fmt.pf ppf "global %s : %d words@." g.gname g.words)
    p.globals;
  List.iter (fun f -> Fmt.pf ppf "@.%a" Func.pp f) p.functions
