(** Basic blocks: a label and a straight-line instruction sequence.

    Control enters only at the top and leaves only at the bottom.  The
    final instruction may be a terminator (jump, conditional branch,
    return, halt); a block whose last instruction is not a terminator
    falls through to the next block in function layout order, as does
    the not-taken side of a conditional branch. *)

type t = { label : Label.t; instrs : Instr.t list }

val make : Label.t -> Instr.t list -> t

val terminator : t -> Instr.t option
(** The final instruction when it is a terminator. *)

val split_terminator : t -> Instr.t list * Instr.t option
(** The body and, separately, the terminator if there is one. *)

val branch_targets : t -> Label.t list
(** Labels this block can transfer to explicitly (branches and jumps;
    call targets excluded). *)

val falls_through : t -> bool
(** Whether execution can continue into the next block in layout
    order: no terminator, or a conditional branch. *)

val size : t -> int

val map_instrs : (Instr.t -> Instr.t) -> t -> t

val pp : t Fmt.t
