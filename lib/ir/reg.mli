(** Machine and virtual registers.

    The register file is unified (integer and floating-point values share
    one set of registers, as on the MultiTitan).  Physical registers have
    non-negative indices; register 0 is the stack pointer.  Virtual
    registers, produced by code generation before register allocation, have
    negative indices. *)

type t = private int

val equal : t -> t -> bool
val compare : t -> t -> int

val sp : t
(** The stack pointer, physical register 0. *)

val phys : int -> t
(** [phys i] is physical register [i].  Raises [Invalid_argument] if
    [i < 0]. *)

val virt : unit -> t
(** [virt ()] is a fresh virtual register, distinct from all previous
    ones. *)

val is_virtual : t -> bool
val is_physical : t -> bool

val index : t -> int
(** The raw index (negative for virtual registers). *)

val of_index : int -> t
(** Inverse of [index], for tables keyed by raw indices. *)

val pp : t Fmt.t
val to_string : t -> string

module Set : Set.S with type elt = t
module Map : Map.S with type key = t
module Table : Hashtbl.S with type key = t
