(** Static descriptions of the memory cells touched by loads and stores,
    attached by code generation and consumed by the alias analysis that
    prunes memory edges in the scheduler's dependence graphs.

    A location is a {!region} (which global, which stack slot, which
    array) plus a symbolic {!offset} within it.  Two accesses are known
    independent when their regions are disjoint, or when they fall at
    provably different offsets of the same region. *)

type region =
  | Global of string  (** scalar global variable *)
  | Global_array of string  (** element of a global array *)
  | Global_array_view of string * string
      (** element of a global array accessed through a declared view:
          (base array, view name).  Different views of one array are
          declared non-overlapping by the programmer — the stand-in for
          the paper's by-hand interprocedural alias analysis
          (Section 4.4). *)
  | Stack_slot of string * int  (** local scalar: function name, slot *)
  | Stack_array of string * int  (** local array: function name, slot *)
  | Arg_slot of string * int
      (** argument slot: callee name, argument index.  Slots of
          different callees may overlap in memory. *)
  | Unknown  (** may alias anything *)

val equal_region : region -> region -> bool
val compare_region : region -> region -> int

(** Offset of the access within its region, in words.

    [Sym (v, c)] means "the value of virtual register [v] plus constant
    [c]".  Virtual registers are single-assignment by construction, so
    [v] names one fixed runtime value per block execution: accesses at
    [Sym (v, c1)] and [Sym (v, c2)] with [c1 <> c2] provably touch
    different words even after register allocation renames the physical
    operands.  This is what lets the scheduler prove that A\[i\] and
    A\[i+1\] from an unrolled loop do not collide. *)
type offset =
  | Const of int
  | Sym of Reg.t * int
  | Top

val equal_offset : offset -> offset -> bool

type t = { region : region; offset : offset }

val equal : t -> t -> bool

val unknown : t
(** [Unknown] region, [Top] offset: may alias anything. *)

val make : region -> offset -> t

val region_name : region -> string option
(** The global symbol a region refers to, if any. *)

val regions_disjoint : region -> region -> bool
(** Conservative: [true] only when the two regions can never overlap in
    the standard layout. *)

val offsets_disjoint : offset -> offset -> bool
(** Within one region: [true] only when the two offsets provably
    differ. *)

val disjoint : t -> t -> bool
(** [disjoint a b] is [true] when the two accesses can never touch the
    same word: disjoint regions, or equal regions at provably different
    offsets. *)

val pp : t Fmt.t
