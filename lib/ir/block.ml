(* A basic block: a label and a straight-line instruction sequence.

   Control enters only at the top and leaves only at the bottom.  The
   final instruction may be a terminator (jump, conditional branch,
   return, halt); a block whose last instruction is not a terminator
   falls through to the next block in function order, as does the
   not-taken side of a conditional branch. *)

type t = { label : Label.t; instrs : Instr.t list }

let make label instrs = { label; instrs }

let terminator b =
  match List.rev b.instrs with
  | last :: _ when Instr.is_terminator last -> Some last
  | _ -> None

(* Instructions excluding the final terminator, plus the terminator. *)
let split_terminator b =
  match List.rev b.instrs with
  | last :: rest when Instr.is_terminator last -> (List.rev rest, Some last)
  | _ -> (b.instrs, None)

(* Labels this block can branch to (not counting fall-through). *)
let branch_targets b =
  List.filter_map
    (fun i ->
      if Instr.is_terminator i || Instr.is_branch i then
        match i.Instr.target with
        | Some l when i.Instr.op <> Opcode.Call -> Some l
        | _ -> None
      else None)
    b.instrs

(* Whether execution can continue to the next block in layout order. *)
let falls_through b =
  match terminator b with
  | None -> true
  | Some t -> Instr.is_branch t (* conditional: not-taken falls through *)

let size b = List.length b.instrs

let map_instrs f b = { b with instrs = List.map f b.instrs }

let pp ppf b =
  Fmt.pf ppf "%a:@." Label.pp b.label;
  List.iter (fun i -> Fmt.pf ppf "    %a@." Instr.pp i) b.instrs
