(** Whole programs: global data plus functions.

    Memory is word addressed.  Globals are laid out from
    {!globals_base} upward in declaration order; the stack grows
    downward from the top of the simulated memory.  The function named
    ["main"] is the entry point. *)

type init = Zero | Ints of int list | Floats of float list

type global = { gname : string; words : int; init : init }

type t = { globals : global list; functions : Func.t list }

val globals_base : int
(** Address of the first global (1024). *)

val make : globals:global list -> functions:Func.t list -> t

val find_function : t -> string -> Func.t option

val main : t -> Func.t
(** Raises [Invalid_argument] when there is no main. *)

val layout : t -> (string, int) Hashtbl.t * int
(** Address of each global under the standard layout, and the first
    address past the globals. *)

val global_address : t -> string -> int
(** Raises [Invalid_argument] for unknown names. *)

val instr_count : t -> int
(** Static instruction count over all functions. *)

val map_functions : (Func.t -> Func.t) -> t -> t

val pp : t Fmt.t
