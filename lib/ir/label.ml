(* Code labels.  A label names a basic block within a function, or a
   function entry point (for calls). *)

type t = string [@@deriving eq, ord, show]

let of_string s = s
let to_string l = l

let fresh =
  let counter = ref 0 in
  fun prefix ->
    incr counter;
    Printf.sprintf "%s_%d" prefix !counter

let pp = Fmt.string

module Map = Map.Make (String)
module Set = Set.Make (String)
module Table = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)
