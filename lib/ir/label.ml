(* Code labels.  A label names a basic block within a function, or a
   function entry point (for calls). *)

type t = string [@@deriving eq, ord, show]

let of_string s = s
let to_string l = l

(* Atomic so parallel compilations (sweep capture jobs) never mint the
   same label twice. *)
let fresh =
  let counter = Atomic.make 0 in
  fun prefix -> Printf.sprintf "%s_%d" prefix (Atomic.fetch_and_add counter 1 + 1)

let pp = Fmt.string

module Map = Map.Make (String)
module Set = Set.Make (String)
module Table = Hashtbl.Make (struct
  type t = string

  let equal = String.equal
  let hash = Hashtbl.hash
end)
