(** Convenience constructors for hand-written IR fragments (tests and
    examples such as the Figure 1-1 code fragments). *)

val rr : Opcode.t -> Reg.t -> Reg.t -> Reg.t -> Instr.t
(** [rr op d a b]: register-register binary operation. *)

val ri : Opcode.t -> Reg.t -> Reg.t -> int -> Instr.t
(** [ri op d a n]: register-immediate binary operation. *)

val un : Opcode.t -> Reg.t -> Reg.t -> Instr.t
(** [un op d a]: unary operation. *)

val add : Reg.t -> Reg.t -> Reg.t -> Instr.t
val addi : Reg.t -> Reg.t -> int -> Instr.t
val sub : Reg.t -> Reg.t -> Reg.t -> Instr.t
val mul : Reg.t -> Reg.t -> Reg.t -> Instr.t
val div : Reg.t -> Reg.t -> Reg.t -> Instr.t
val and_ : Reg.t -> Reg.t -> Reg.t -> Instr.t
val or_ : Reg.t -> Reg.t -> Reg.t -> Instr.t
val xor : Reg.t -> Reg.t -> Reg.t -> Instr.t
val shl : Reg.t -> Reg.t -> int -> Instr.t
val slt : Reg.t -> Reg.t -> Reg.t -> Instr.t
val mov : Reg.t -> Reg.t -> Instr.t
val li : Reg.t -> int -> Instr.t
val fli : Reg.t -> float -> Instr.t
val fadd : Reg.t -> Reg.t -> Reg.t -> Instr.t
val fsub : Reg.t -> Reg.t -> Reg.t -> Instr.t
val fmul : Reg.t -> Reg.t -> Reg.t -> Instr.t
val fdiv : Reg.t -> Reg.t -> Reg.t -> Instr.t
val itof : Reg.t -> Reg.t -> Instr.t

val ld : ?mem:Mem_info.t -> Reg.t -> base:Reg.t -> offset:int -> Instr.t
val st :
  ?mem:Mem_info.t -> value:Reg.t -> base:Reg.t -> offset:int -> unit -> Instr.t

val beq : Reg.t -> Reg.t -> Label.t -> Instr.t
val bne : Reg.t -> Reg.t -> Label.t -> Instr.t
val blt : Reg.t -> Reg.t -> Label.t -> Instr.t
val bge : Reg.t -> Reg.t -> Label.t -> Instr.t
val jmp : Label.t -> Instr.t
val call : Label.t -> Instr.t
val ret : unit -> Instr.t
val halt : unit -> Instr.t
val nop : unit -> Instr.t

val single_block_main : Instr.t list -> Func.t
(** A one-block ["main"] wrapping the instructions; appends [halt] when
    the last instruction is not already a terminator. *)

val program_of_instrs : Instr.t list -> Program.t
(** A whole program with no globals around {!single_block_main}. *)
