(* Local constant propagation, constant folding, algebraic
   simplification, and a little strength reduction (multiplication by a
   power of two becomes a shift).

   Works block by block: a table maps registers to known constants;
   instructions whose operands are all known fold to load-immediates.
   Division and modulo fold only when the divisor is a nonzero constant
   (folding must not hide a runtime fault). *)

open Ilp_ir

type const = Cint of int | Cfloat of float

let log2_exact n =
  if n <= 0 then None
  else
    let rec go k v = if v = 1 then Some k else go (k + 1) (v / 2) in
    if n land (n - 1) = 0 then go 0 n else None

let fold_int op a b =
  match op with
  | Opcode.Add -> Some (a + b)
  | Opcode.Sub -> Some (a - b)
  | Opcode.Mul -> Some (a * b)
  | Opcode.Div -> if b = 0 then None else Some (a / b)
  | Opcode.Rem -> if b = 0 then None else Some (a mod b)
  | Opcode.And -> Some (a land b)
  | Opcode.Or -> Some (a lor b)
  | Opcode.Xor -> Some (a lxor b)
  | Opcode.Shl -> Some (a lsl b)
  | Opcode.Shr -> Some (a lsr b)
  | Opcode.Sra -> Some (a asr b)
  | Opcode.Slt -> Some (if a < b then 1 else 0)
  | Opcode.Sle -> Some (if a <= b then 1 else 0)
  | Opcode.Seq -> Some (if a = b then 1 else 0)
  | Opcode.Sne -> Some (if a <> b then 1 else 0)
  | _ -> None

let fold_float op a b =
  match op with
  | Opcode.Fadd -> Some (a +. b)
  | Opcode.Fsub -> Some (a -. b)
  | Opcode.Fmul -> Some (a *. b)
  | Opcode.Fdiv -> Some (a /. b)
  | _ -> None

let run_block (b : Block.t) =
  let consts : (int, const) Hashtbl.t = Hashtbl.create 32 in
  let known = function
    | Instr.Oimm n -> Some (Cint n)
    | Instr.Ofimm f -> Some (Cfloat f)
    | Instr.Oreg r -> Hashtbl.find_opt consts (Reg.index r)
  in
  let invalidate_defs (i : Instr.t) =
    List.iter (fun d -> Hashtbl.remove consts (Reg.index d)) (Instr.defs i);
    (* calls clobber every physical register except the stack pointer
       (the callee writes its own promoted home registers) *)
    if Instr.is_call i then begin
      let stale =
        Hashtbl.fold
          (fun k _ acc ->
            if k >= 0 && k <> Reg.index Reg.sp then k :: acc else acc)
          consts []
      in
      List.iter (Hashtbl.remove consts) stale
    end
  in
  let record d c = Hashtbl.replace consts (Reg.index d) c in
  let rewrite (i : Instr.t) =
    let dst = i.Instr.dst in
    (* never touch stack-pointer arithmetic: the prologue/epilogue
       instructions are recognised structurally by the register
       allocator when it grows the frame for spill slots *)
    if dst = Some Reg.sp then begin
      List.iter (fun d -> Hashtbl.remove consts (Reg.index d)) (Instr.defs i);
      i
    end
    else
    match (i.Instr.op, dst, List.map known i.Instr.srcs) with
    | Opcode.Li, Some d, [ Some (Cint n) ] ->
        invalidate_defs i;
        record d (Cint n);
        i
    | Opcode.Fli, Some d, [ Some (Cfloat f) ] ->
        invalidate_defs i;
        record d (Cfloat f);
        i
    | Opcode.Mov, Some d, [ Some c ] ->
        invalidate_defs i;
        record d c;
        (match c with
        | Cint n -> Instr.make Opcode.Li ~dst:d ~srcs:[ Instr.Oimm n ]
        | Cfloat f -> Instr.make Opcode.Fli ~dst:d ~srcs:[ Instr.Ofimm f ])
    | Opcode.Neg, Some d, [ Some (Cint a) ] ->
        invalidate_defs i;
        record d (Cint (-a));
        Instr.make Opcode.Li ~dst:d ~srcs:[ Instr.Oimm (-a) ]
    | Opcode.Fneg, Some d, [ Some (Cfloat a) ] ->
        invalidate_defs i;
        record d (Cfloat (-.a));
        Instr.make Opcode.Fli ~dst:d ~srcs:[ Instr.Ofimm (-.a) ]
    | Opcode.Not, Some d, [ Some (Cint a) ] ->
        invalidate_defs i;
        record d (Cint (lnot a));
        Instr.make Opcode.Li ~dst:d ~srcs:[ Instr.Oimm (lnot a) ]
    | Opcode.Itof, Some d, [ Some (Cint a) ] ->
        invalidate_defs i;
        let f = float_of_int a in
        record d (Cfloat f);
        Instr.make Opcode.Fli ~dst:d ~srcs:[ Instr.Ofimm f ]
    | Opcode.Ftoi, Some d, [ Some (Cfloat a) ] ->
        invalidate_defs i;
        let n = int_of_float a in
        record d (Cint n);
        Instr.make Opcode.Li ~dst:d ~srcs:[ Instr.Oimm n ]
    | op, Some d, [ Some (Cint a); Some (Cint b) ] -> (
        match fold_int op a b with
        | Some r ->
            invalidate_defs i;
            record d (Cint r);
            Instr.make Opcode.Li ~dst:d ~srcs:[ Instr.Oimm r ]
        | None ->
            invalidate_defs i;
            i)
    | op, Some d, [ Some (Cfloat a); Some (Cfloat b) ] -> (
        match fold_float op a b with
        | Some r ->
            invalidate_defs i;
            record d (Cfloat r);
            Instr.make Opcode.Fli ~dst:d ~srcs:[ Instr.Ofimm r ]
        | None ->
            invalidate_defs i;
            i)
    (* algebraic identities with one constant operand *)
    | Opcode.Add, Some d, [ None; Some (Cint 0) ] -> (
        match i.Instr.srcs with
        | [ Instr.Oreg a; _ ] ->
            invalidate_defs i;
            Instr.make Opcode.Mov ~dst:d ~srcs:[ Instr.Oreg a ]
        | _ ->
            invalidate_defs i;
            i)
    | Opcode.Mul, Some d, [ None; Some (Cint b) ] -> (
        match (i.Instr.srcs, log2_exact b) with
        | [ Instr.Oreg a; _ ], Some k when k > 0 ->
            invalidate_defs i;
            Instr.make Opcode.Shl ~dst:d ~srcs:[ Instr.Oreg a; Instr.Oimm k ]
        | [ Instr.Oreg a; _ ], _ when b = 1 ->
            invalidate_defs i;
            Instr.make Opcode.Mov ~dst:d ~srcs:[ Instr.Oreg a ]
        | _ ->
            invalidate_defs i;
            i
        )
    | _ ->
        invalidate_defs i;
        i
  in
  Block.make b.Block.label (List.map rewrite b.Block.instrs)

let run_func (f : Func.t) = Func.map_blocks run_block f

let run (p : Program.t) = Program.map_functions run_func p
