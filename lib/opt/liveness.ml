(* Backward liveness analysis over virtual registers.

   Physical registers (stack pointer, return register, promoted home
   registers) are excluded: they are dedicated and never reallocated, so
   only virtual registers need live ranges. *)

open Ilp_ir

type t = { live_in : Reg.Set.t array; live_out : Reg.Set.t array }

let block_use_def (b : Block.t) =
  List.fold_left
    (fun (uses, defs) i ->
      let uses =
        List.fold_left
          (fun acc r ->
            if Reg.is_virtual r && not (Reg.Set.mem r defs) then
              Reg.Set.add r acc
            else acc)
          uses (Instr.uses i)
      in
      let defs =
        List.fold_left
          (fun acc r -> if Reg.is_virtual r then Reg.Set.add r acc else acc)
          defs (Instr.defs i)
      in
      (uses, defs))
    (Reg.Set.empty, Reg.Set.empty)
    b.Block.instrs

let compute (cfg : Cfg_info.t) =
  let n = Cfg_info.n_blocks cfg in
  let use = Array.make n Reg.Set.empty in
  let def = Array.make n Reg.Set.empty in
  Array.iteri
    (fun i b ->
      let u, d = block_use_def b in
      use.(i) <- u;
      def.(i) <- d)
    cfg.Cfg_info.blocks;
  let live_in = Array.make n Reg.Set.empty in
  let live_out = Array.make n Reg.Set.empty in
  let changed = ref true in
  while !changed do
    changed := false;
    (* iterate in postorder (reverse of rpo) for fast convergence *)
    for k = Array.length cfg.Cfg_info.rpo - 1 downto 0 do
      let b = cfg.Cfg_info.rpo.(k) in
      let out =
        List.fold_left
          (fun acc s -> Reg.Set.union acc live_in.(s))
          Reg.Set.empty cfg.Cfg_info.succs.(b)
      in
      let inn = Reg.Set.union use.(b) (Reg.Set.diff out def.(b)) in
      if not (Reg.Set.equal out live_out.(b) && Reg.Set.equal inn live_in.(b))
      then begin
        live_out.(b) <- out;
        live_in.(b) <- inn;
        changed := true
      end
    done
  done;
  { live_in; live_out }
