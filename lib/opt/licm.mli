(** Loop-invariant code motion.

    For each natural loop a preheader block is inserted in front of the
    header and invariant instructions move into it.  Pure ALU
    operations with invariant operands speculate freely (they cannot
    fault; integer divide/modulo excluded); loads require no aliasing
    store and no call in the loop, and either an always-valid scalar
    cell (global, stack slot, argument slot) or a block dominating
    every loop exit.  Instructions writing physical registers never
    move; with a call in the loop no physical register except the stack
    pointer counts as invariant. *)

open Ilp_ir

val run_func : Func.t -> Func.t
val run : Program.t -> Program.t
