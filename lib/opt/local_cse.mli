(** Local common-subexpression elimination by value numbering, including
    copy propagation, redundant-load elimination, and store-to-load
    forwarding.

    Loads stay available until a store that may alias them (decided by
    {!Ilp_ir.Mem_info.disjoint}) or a call.  Calls clobber memory, the
    return register, and every home register (callees write their own
    promoted variables).  Only single-assignment virtual registers serve
    as substitution representatives — a physical register could be
    redefined after the fact and orphan rewritten uses.  Destinations
    that escape their block, or that are physical, are kept (degrading
    to moves where a value is already available). *)

open Ilp_ir

val run_func : Func.t -> Func.t
val run : Program.t -> Program.t
