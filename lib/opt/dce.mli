(** Dead-code elimination for pure instructions.

    Removes pure instructions whose destination is a virtual register
    never read afterwards (per block, with cross-block uses accounted
    through liveness).  Stores, calls and control flow are never
    removed.  Iterates to a fixed point. *)

open Ilp_ir

val run_func : Func.t -> Func.t
(** One backward pass per block. *)

val run : Program.t -> Program.t
(** To a fixed point. *)
