(* Global common-subexpression elimination: dominator-tree value
   numbering over pure register operations.

   Walking the dominator tree with a scoped expression table makes an
   expression available exactly in the blocks its computation dominates.
   Loads are not handled here (a path between the two occurrences could
   contain an aliasing store); [Local_cse] covers loads within blocks.

   When a repeated computation's destination is a block-local virtual
   register the instruction is deleted and later uses substituted;
   otherwise it degrades to a register move, which later cleanup passes
   can remove. *)

open Ilp_ir
open Ilp_analysis

type key_operand = Kvn of int | Kimm of int | Kfimm of float

type key = Opcode.t * key_operand list * int

let run_func (f : Func.t) =
  let cfg = Cfg_info.build f in
  let dom = Dominators.compute cfg in
  let kids = Dominators.children dom in
  let deletable = Locality.block_local_vregs f in
  let next_vn = ref 0 in
  let fresh_vn () =
    incr next_vn;
    !next_vn
  in
  let vn_of_reg : (int, int) Hashtbl.t = Hashtbl.create 128 in
  let rep_of_vn : (int, Reg.t) Hashtbl.t = Hashtbl.create 128 in
  let expr_table : (key, int) Hashtbl.t = Hashtbl.create 128 in
  let reg_vn r =
    match Hashtbl.find_opt vn_of_reg (Reg.index r) with
    | Some v -> v
    | None ->
        let v = fresh_vn () in
        Hashtbl.replace vn_of_reg (Reg.index r) v;
        if Reg.is_virtual r then Hashtbl.replace rep_of_vn v r;
        v
  in
  let operand_key = function
    | Instr.Oreg r -> Kvn (reg_vn r)
    | Instr.Oimm n -> Kimm n
    | Instr.Ofimm f -> Kfimm f
  in
  let canonical r =
    match Hashtbl.find_opt vn_of_reg (Reg.index r) with
    | None -> r
    | Some v -> (
        match Hashtbl.find_opt rep_of_vn v with
        | Some rep when Reg.is_virtual rep || Reg.equal rep r -> rep
        | Some _ | None -> r)
  in
  let new_blocks = Array.copy cfg.Cfg_info.blocks in
  let rec walk bi =
    let b = new_blocks.(bi) in
    let undo : (key * int option) list ref = ref [] in
    let process acc (i : Instr.t) =
      let i = Subst.apply canonical i in
      match (i.Instr.op, i.Instr.dst) with
      | op, Some d
        when Opcode.is_pure op && op <> Opcode.Mov && op <> Opcode.Li
             && op <> Opcode.Fli && Reg.is_virtual d -> (
          (* Li/Fli are excluded: unifying a constant across blocks can
             stretch its live range over a call and force a spill that
             costs more than rematerializing the immediate *)
          let key : key =
            (op, List.map operand_key i.Instr.srcs, i.Instr.offset)
          in
          match Hashtbl.find_opt expr_table key with
          | Some v when Hashtbl.mem rep_of_vn v ->
              let rep =
                match Hashtbl.find_opt rep_of_vn v with
                | Some r -> r
                | None -> assert false
              in
              Hashtbl.replace vn_of_reg (Reg.index d) v;
              if deletable d then acc
              else Instr.make Opcode.Mov ~dst:d ~srcs:[ Instr.Oreg rep ] :: acc
          | Some _ | None ->
              let v = fresh_vn () in
              Hashtbl.replace vn_of_reg (Reg.index d) v;
              Hashtbl.replace rep_of_vn v d;
              undo := (key, Hashtbl.find_opt expr_table key) :: !undo;
              Hashtbl.replace expr_table key v;
              i :: acc)
      | _, _ ->
          (* physical destinations get a fresh, unrepresented value; a
             call invalidates every physical register except the stack
             pointer (the callee writes its own home registers) *)
          List.iter
            (fun dreg ->
              if Reg.is_physical dreg then
                Hashtbl.replace vn_of_reg (Reg.index dreg) (fresh_vn ()))
            (Instr.defs i);
          if Instr.is_call i then begin
            let stale =
              Hashtbl.fold
                (fun k _ acc ->
                  if k >= 0 && k <> Reg.index Reg.sp then k :: acc else acc)
                vn_of_reg []
            in
            List.iter
              (fun k -> Hashtbl.replace vn_of_reg k (fresh_vn ()))
              stale
          end;
          i :: acc
    in
    let instrs = List.rev (List.fold_left process [] b.Block.instrs) in
    new_blocks.(bi) <- Block.make b.Block.label instrs;
    List.iter walk kids.(bi);
    (* leave scope: restore sibling-invisible expressions *)
    List.iter
      (fun (key, prev) ->
        match prev with
        | Some v -> Hashtbl.replace expr_table key v
        | None -> Hashtbl.remove expr_table key)
      !undo
  in
  if Array.length new_blocks > 0 then walk 0;
  Cfg_info.to_func cfg new_blocks

let run (p : Program.t) = Program.map_functions run_func p
