(* Loop-invariant code motion.

   For each natural loop a preheader block is inserted in front of the
   header, and invariant instructions move into it:

   - pure ALU operations whose operands are loop invariant are hoisted
     unconditionally (they cannot fault, so speculation is safe; integer
     divide and modulo are excluded because they can fault);
   - loads are hoisted only when no store or call in the loop may alias
     them *and* their block dominates every loop exit (a speculated load
     could fault on an address that the loop would never compute).

   Instructions writing physical registers are never moved. *)

open Ilp_ir
open Ilp_analysis

let is_hoistable_op op =
  Opcode.is_pure op && op <> Opcode.Div && op <> Opcode.Rem

(* Process one loop of [f]; returns the rewritten function and whether
   anything moved. *)
let process_loop (f : Func.t) (cfg : Cfg_info.t) (dom : Dominators.t)
    (loop : Loops.loop) =
  let in_loop = Array.make (Cfg_info.n_blocks cfg) false in
  List.iter (fun b -> in_loop.(b) <- true) loop.Loops.body;
  let header = loop.Loops.header in
  (* registers defined inside the loop *)
  let defined_in_loop = ref Reg.Set.empty in
  let loop_stores = ref [] in
  let loop_has_call = ref false in
  List.iter
    (fun bi ->
      List.iter
        (fun (i : Instr.t) ->
          List.iter
            (fun d -> defined_in_loop := Reg.Set.add d !defined_in_loop)
            (Instr.defs i);
          if Instr.is_call i then loop_has_call := true;
          if Instr.is_store i then
            loop_stores :=
              (match i.Instr.mem with
              | Some m -> m
              | None -> Mem_info.unknown)
              :: !loop_stores)
        cfg.Cfg_info.blocks.(bi).Block.instrs)
    loop.Loops.body;
  (* sources of loop exit edges, for the load-safety condition *)
  let exit_sources =
    List.filter
      (fun bi -> List.exists (fun s -> not in_loop.(s)) cfg.Cfg_info.succs.(bi))
      loop.Loops.body
  in
  (* A load may move to the preheader if it cannot fault when executed
     speculatively.  Scalar cells (globals, stack slots, argument slots)
     have compiler-chosen, always-valid addresses, so they may speculate
     freely; array accesses are only hoisted from blocks that dominate
     every loop exit (the loop would have executed them anyway). *)
  let load_safe bi (i : Instr.t) =
    match i.Instr.mem with
    | Some { Mem_info.region = Mem_info.Global _ | Mem_info.Stack_slot _
                               | Mem_info.Arg_slot _; _ } ->
        true
    | Some _ | None ->
        List.for_all (fun e -> Dominators.dominates dom bi e) exit_sources
  in
  (* iterate: an instruction becomes invariant once all its operands are
     invariant (defined outside, or by an already-hoisted instruction) *)
  let hoisted : (int, unit) Hashtbl.t = Hashtbl.create 16 in
  let hoisted_list = ref [] in
  let invariant_reg r =
    (* with a call in the loop, every physical register except the stack
       pointer may change (promoted home registers are written by
       callees) *)
    if
      !loop_has_call && Reg.is_physical r && not (Reg.equal r Reg.sp)
    then false
    else
      (not (Reg.Set.mem r !defined_in_loop))
      || Hashtbl.mem hoisted (Reg.index r)
  in
  let try_hoist bi (i : Instr.t) =
    if Hashtbl.mem hoisted (match i.Instr.dst with
                            | Some d -> Reg.index d
                            | None -> max_int)
    then false
    else
      match i.Instr.dst with
      | Some d when Reg.is_virtual d -> (
          let srcs_ok = List.for_all invariant_reg (Instr.uses i) in
          match i.Instr.op with
          | Opcode.Ld ->
              if
                srcs_ok
                && (not !loop_has_call)
                && (match i.Instr.mem with
                   | Some m ->
                       List.for_all (Mem_info.disjoint m) !loop_stores
                   | None -> false)
                && load_safe bi i
              then begin
                Hashtbl.replace hoisted (Reg.index d) ();
                hoisted_list := i :: !hoisted_list;
                true
              end
              else false
          | op when is_hoistable_op op && srcs_ok ->
              Hashtbl.replace hoisted (Reg.index d) ();
              hoisted_list := i :: !hoisted_list;
              true
          | _ -> false)
      | Some _ | None -> false
  in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun bi ->
        List.iter
          (fun i ->
            let already =
              match i.Instr.dst with
              | Some d -> Hashtbl.mem hoisted (Reg.index d)
              | None -> true
            in
            if (not already) && try_hoist bi i then changed := true)
          cfg.Cfg_info.blocks.(bi).Block.instrs)
      loop.Loops.body
  done;
  if !hoisted_list = [] then (f, false)
  else begin
    let moved i =
      match i.Instr.dst with
      | Some d -> Hashtbl.mem hoisted (Reg.index d)
      | None -> false
    in
    let header_label = cfg.Cfg_info.blocks.(header).Block.label in
    let ph_label =
      Label.fresh (Label.to_string header_label ^ ".ph")
    in
    let preheader = Block.make ph_label (List.rev !hoisted_list) in
    (* rewrite blocks: remove moved instructions; retarget out-of-loop
       branches to the header; force in-loop fall-through into the header
       to use an explicit jump (the preheader will sit in between) *)
    let n = Cfg_info.n_blocks cfg in
    let new_blocks = ref [] in
    for bi = n - 1 downto 0 do
      let b = cfg.Cfg_info.blocks.(bi) in
      let instrs =
        List.filter (fun i -> in_loop.(bi) = false || not (moved i)) b.Block.instrs
      in
      let instrs =
        if in_loop.(bi) then instrs
        else
          List.map
            (fun (i : Instr.t) ->
              match i.Instr.target with
              | Some t
                when Label.equal t header_label
                     && (Instr.is_branch i || i.Instr.op = Opcode.Jmp) ->
                  { i with Instr.target = Some ph_label }
              | _ -> i)
            instrs
      in
      (* in-loop layout predecessor falling through into the header *)
      let instrs =
        if
          in_loop.(bi) && bi + 1 = header
          && Block.falls_through (Block.make b.Block.label instrs)
        then instrs @ [ Instr.make Opcode.Jmp ~target:header_label ]
        else instrs
      in
      let rebuilt = Block.make b.Block.label instrs in
      if bi = header then new_blocks := preheader :: rebuilt :: !new_blocks
      else new_blocks := rebuilt :: !new_blocks
    done;
    ({ f with Func.blocks = !new_blocks }, true)
  end

(* Hoist every loop, innermost first, recomputing analyses after each
   change (block indices shift when a preheader is inserted). *)
let run_func (f : Func.t) =
  let rec go f budget =
    if budget = 0 then f
    else begin
      let cfg = Cfg_info.build f in
      let dom = Dominators.compute cfg in
      let loops = Loops.compute cfg in
      (* find the first loop (innermost first) with something to move *)
      let rec try_loops = function
        | [] -> f
        | l :: rest ->
            let f', moved = process_loop f cfg dom l in
            if moved then go f' (budget - 1) else try_loops rest
      in
      try_loops (Loops.innermost_first loops)
    end
  in
  go f 64

let run (p : Program.t) = Program.map_functions run_func p
