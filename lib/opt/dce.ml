(* Dead-code elimination for pure instructions.

   An instruction is dead when it is pure and its destination is a
   virtual register that is never read afterwards.  For block-local
   registers one backward pass per block decides this exactly;
   cross-block registers are kept alive whenever any other block reads
   them (computed from liveness).  Stores, calls and control flow are
   never removed. *)

open Ilp_ir
open Ilp_analysis

let run_func (f : Func.t) =
  let cfg = Cfg_info.build f in
  let live = Liveness.compute cfg in
  let blocks =
    Array.mapi
      (fun bi (b : Block.t) ->
        let needed = ref live.Liveness.live_out.(bi) in
        let keep_physical r = Reg.is_physical r in
        let process kept (i : Instr.t) =
          let dead =
            Opcode.is_pure i.Instr.op
            && (match i.Instr.dst with
               | Some d ->
                   (not (keep_physical d)) && not (Reg.Set.mem d !needed)
               | None -> i.Instr.op = Opcode.Nop)
          in
          if dead then kept
          else begin
            (match i.Instr.dst with
            | Some d -> needed := Reg.Set.remove d !needed
            | None -> ());
            List.iter
              (fun r ->
                if Reg.is_virtual r then needed := Reg.Set.add r !needed)
              (Instr.uses i);
            i :: kept
          end
        in
        let instrs = List.fold_left process [] (List.rev b.Block.instrs) in
        Block.make b.Block.label instrs)
      cfg.Cfg_info.blocks
  in
  Cfg_info.to_func cfg blocks

(* Iterate to a fixed point: removing one instruction can make its
   operands' producers dead in turn.  Convergence is fast because each
   round strictly shrinks the program. *)
let rec fixpoint_func f =
  let f' = run_func f in
  if Func.instr_count f' < Func.instr_count f then fixpoint_func f' else f'

let run (p : Program.t) = Program.map_functions fixpoint_func p
