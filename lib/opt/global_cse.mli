(** Global common-subexpression elimination: dominator-tree value
    numbering over pure register operations.

    An expression is available exactly in the blocks its computation
    dominates (scoped table over the dominator tree).  Loads are not
    handled across blocks (an intervening path could contain an aliasing
    store); {!Local_cse} covers those within blocks.  Immediate loads
    ([li]/[fli]) are excluded: unifying constants across blocks can
    stretch a live range over a call and force a spill costlier than
    rematerialising. *)

open Ilp_ir

val run_func : Func.t -> Func.t
val run : Program.t -> Program.t
