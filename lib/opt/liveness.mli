(** Backward liveness analysis over virtual registers.

    Physical registers (stack pointer, return register, promoted homes)
    are excluded: they are dedicated and never reallocated, so only
    virtual registers need live ranges. *)

open Ilp_ir

type t = { live_in : Reg.Set.t array; live_out : Reg.Set.t array }

val block_use_def : Block.t -> Reg.Set.t * Reg.Set.t
(** Upward-exposed uses and definitions of one block. *)

val compute : Cfg_info.t -> t
