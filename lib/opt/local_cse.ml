(* Local common-subexpression elimination by value numbering, including
   copy propagation, redundant-load elimination, and store-to-load
   forwarding.

   Each register holds a value number; pure instructions are keyed by
   (opcode, operand value numbers); a repeated computation whose result
   is in a still-valid register is deleted and its destination
   substituted.  Loads are available until a store that may alias them
   (decided by [Mem_info.disjoint]) or a call; a load that exactly
   matches an earlier store's cell forwards the stored register.

   Destinations that are physical registers are never deleted (their
   assignment is observable), only their operands are cleaned. *)

open Ilp_ir
open Ilp_analysis

type key_operand = Kvn of int | Kimm of int | Kfimm of float

type key = Opcode.t * key_operand list * int  (** opcode, operands, offset *)

let run_block ~deletable (b : Block.t) =
  let next_vn = ref 0 in
  let fresh_vn () =
    incr next_vn;
    !next_vn
  in
  (* value number of each register index *)
  let vn_of_reg : (int, int) Hashtbl.t = Hashtbl.create 64 in
  (* representative register of each value number *)
  let rep_of_vn : (int, Reg.t) Hashtbl.t = Hashtbl.create 64 in
  (* known pure expressions *)
  let expr_table : (key, int) Hashtbl.t = Hashtbl.create 64 in
  (* available loads and forwarded stores: (mem, base vn, offset, value vn) *)
  let avail_mem : (Mem_info.t * key_operand * int * int) list ref = ref [] in
  (* Only virtual registers may serve as representatives: they are
     single-assignment, so a substitution through them can never be
     invalidated by a later redefinition.  A physical register (the
     return register, a promoted home) may be redefined after the fact,
     which would orphan any use already rewritten to it. *)
  let reg_vn r =
    match Hashtbl.find_opt vn_of_reg (Reg.index r) with
    | Some v -> v
    | None ->
        let v = fresh_vn () in
        Hashtbl.replace vn_of_reg (Reg.index r) v;
        if Reg.is_virtual r then Hashtbl.replace rep_of_vn v r;
        v
  in
  let operand_key = function
    | Instr.Oreg r -> Kvn (reg_vn r)
    | Instr.Oimm n -> Kimm n
    | Instr.Ofimm f -> Kfimm f
  in
  (* substitute each source register by the representative of its value
     number, which performs copy propagation *)
  let canonical r =
    match Hashtbl.find_opt vn_of_reg (Reg.index r) with
    | None -> r
    | Some v -> (
        match Hashtbl.find_opt rep_of_vn v with Some rep -> rep | None -> r)
  in
  let set_vn d v =
    Hashtbl.replace vn_of_reg (Reg.index d) v;
    if Reg.is_virtual d && not (Hashtbl.mem rep_of_vn v) then
      Hashtbl.replace rep_of_vn v d
  in
  (* a redefined register invalidates value numbers that used it as
     representative *)
  let kill_def d =
    (match Hashtbl.find_opt vn_of_reg (Reg.index d) with
    | Some old -> (
        match Hashtbl.find_opt rep_of_vn old with
        | Some rep when Reg.equal rep d -> Hashtbl.remove rep_of_vn old
        | Some _ | None -> ())
    | None -> ());
    Hashtbl.remove vn_of_reg (Reg.index d)
  in
  let kill_aliasing_mem (store_mem : Mem_info.t) =
    avail_mem :=
      List.filter (fun (m, _, _, _) -> Mem_info.disjoint m store_mem) !avail_mem
  in
  let process acc (i : Instr.t) =
    let i = Subst.apply canonical i in
    match i.Instr.op with
    | Opcode.Call ->
        (* calls clobber memory, the return register, and every home
           register (the callee writes its own promoted variables); only
           the stack pointer survives *)
        avail_mem := [];
        Hashtbl.reset expr_table;
        let stale =
          Hashtbl.fold
            (fun k _ acc -> if k >= 0 && k <> Reg.index Reg.sp then k :: acc else acc)
            vn_of_reg []
        in
        List.iter (fun k -> kill_def (Reg.of_index k)) stale;
        List.iter kill_def (Instr.defs i);
        i :: acc
    | Opcode.St -> (
        match (i.Instr.srcs, i.Instr.mem) with
        | [ value; base ], Some mem ->
            kill_aliasing_mem mem;
            (* remember the stored cell for store-to-load forwarding *)
            let value_vn =
              match value with
              | Instr.Oreg r -> Some (reg_vn r)
              | Instr.Oimm _ | Instr.Ofimm _ -> None
            in
            (match value_vn with
            | Some v ->
                avail_mem :=
                  (mem, operand_key base, i.Instr.offset, v) :: !avail_mem
            | None -> ());
            i :: acc
        | _ ->
            avail_mem := [];
            i :: acc)
    | Opcode.Ld -> (
        match (i.Instr.dst, i.Instr.srcs, i.Instr.mem) with
        | Some d, [ base ], Some mem -> (
            let base_key = operand_key base in
            let hit =
              List.find_opt
                (fun (m, bk, off, _) ->
                  Mem_info.equal m mem && bk = base_key
                  && off = i.Instr.offset)
                !avail_mem
            in
            match hit with
            | Some (_, _, _, value_vn) when deletable d -> (
                match Hashtbl.find_opt rep_of_vn value_vn with
                | Some _ ->
                    (* load is redundant: reuse the representative *)
                    kill_def d;
                    set_vn d value_vn;
                    acc
                | None ->
                    kill_def d;
                    let v = fresh_vn () in
                    set_vn d v;
                    avail_mem :=
                      (mem, base_key, i.Instr.offset, v) :: !avail_mem;
                    i :: acc)
            | Some _ | None ->
                kill_def d;
                let v = fresh_vn () in
                set_vn d v;
                avail_mem := (mem, base_key, i.Instr.offset, v) :: !avail_mem;
                i :: acc)
        | _ ->
            List.iter kill_def (Instr.defs i);
            i :: acc)
    | op when Opcode.is_pure op -> (
        match i.Instr.dst with
        | Some d -> (
            let key : key = (op, List.map operand_key i.Instr.srcs, i.Instr.offset) in
            (* moves are pure copies: propagate the value number *)
            if op = Opcode.Mov then begin
              match i.Instr.srcs with
              | [ Instr.Oreg s ] when Reg.is_virtual s ->
                  let v = reg_vn s in
                  kill_def d;
                  set_vn d v;
                  if deletable d then acc else i :: acc
              | [ Instr.Oreg s ] ->
                  (* physical source: no propagation (it may be
                     redefined before the copy's uses) *)
                  ignore s;
                  kill_def d;
                  set_vn d (fresh_vn ());
                  i :: acc
              | _ ->
                  kill_def d;
                  let v = fresh_vn () in
                  set_vn d v;
                  i :: acc
            end
            else
              match Hashtbl.find_opt expr_table key with
              | Some v when deletable d && Hashtbl.mem rep_of_vn v ->
                  kill_def d;
                  set_vn d v;
                  acc
              | Some _ | None ->
                  kill_def d;
                  let v = fresh_vn () in
                  set_vn d v;
                  Hashtbl.replace expr_table key v;
                  i :: acc)
        | None -> i :: acc)
    | _ ->
        List.iter kill_def (Instr.defs i);
        i :: acc
  in
  let instrs = List.rev (List.fold_left process [] b.Block.instrs) in
  Block.make b.Block.label instrs

let run_func (f : Func.t) =
  let deletable = Locality.block_local_vregs f in
  Func.map_blocks (run_block ~deletable) f

let run (p : Program.t) = Program.map_functions run_func p
