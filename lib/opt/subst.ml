(* Register substitution that keeps memory annotations in step: when a
   pass replaces register [v] by a value-equal register [w] in operands,
   the symbolic [Mem_info.Sym] offsets are rewritten identically so the
   scheduler's alias precision survives (see Mem_info). *)

open Ilp_ir

let apply_mem lookup (i : Instr.t) =
  match i.Instr.mem with
  | Some { Mem_info.region; offset = Mem_info.Sym (r, c) } ->
      (* [Sym] bases must stay virtual: a virtual register names one
         fixed value forever, while a physical register can be
         redefined, which would let two accesses claim disjointness
         while actually touching the same word.  When the substitution
         target is physical the original virtual name is kept — it is
         still a valid value identity even if its defining instruction
         was deleted. *)
      let r' = lookup r in
      let base = if Reg.is_virtual r' then r' else r in
      Instr.with_mem i (Mem_info.make region (Mem_info.Sym (base, c)))
  | Some _ | None -> i

let apply lookup (i : Instr.t) =
  let i = Instr.map_src_regs lookup i in
  apply_mem lookup i
