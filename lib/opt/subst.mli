(** Register substitution that keeps memory annotations in step.

    When a pass replaces register [v] by a value-equal register [w] in
    operands, the symbolic [Mem_info.Sym] offsets rewrite identically so
    the scheduler's alias precision survives — except that a [Sym] base
    is never replaced by a {e physical} register, which could be
    redefined and would poison the value-identity claim (the original
    virtual name stays valid even if its defining instruction was
    deleted). *)

open Ilp_ir

val apply : (Reg.t -> Reg.t) -> Instr.t -> Instr.t
(** Substitute sources and the memory annotation. *)

val apply_mem : (Reg.t -> Reg.t) -> Instr.t -> Instr.t
(** Substitute only the memory annotation. *)
