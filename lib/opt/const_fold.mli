(** Local constant propagation, constant folding, algebraic
    simplification, and light strength reduction (multiplication by a
    power of two becomes a shift).

    Per basic block; integer division and modulo fold only when the
    divisor is a nonzero constant, so folding never hides a runtime
    fault.  Stack-pointer arithmetic is never rewritten: the register
    allocator recognises the prologue/epilogue structurally. *)

open Ilp_ir

val run_block : Block.t -> Block.t
val run_func : Func.t -> Func.t
val run : Program.t -> Program.t
