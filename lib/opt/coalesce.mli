(** Copy coalescing: fold [op v <- …; mov h <- v] into [op h <- …]
    when the intermediate window neither touches [h] nor (for physical
    [h]) contains a call, and the move is [v]'s only reader.

    Home promotion turns stores to promoted variables into moves; most
    copy freshly computed values and disappear here, as in the paper's
    compiler. *)

open Ilp_ir

val run_func : Func.t -> Func.t
val run : Program.t -> Program.t
