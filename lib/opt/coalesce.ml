(* Copy coalescing: fold [op v <- ...; ...; mov h <- v] into
   [op h <- ...] when it is safe, deleting the move.

   Home promotion turns every store to a promoted variable into a
   register move; most of those moves copy a freshly computed value and
   disappear here, as they would in the paper's compiler.

   Safety conditions for a move at position [j] copying virtual [v]
   (defined at position [i] in the same block) into [h]:
   - [v]'s only reader is the move (it is block-local, and no other use
     exists in the block);
   - [h] is neither read nor written in (i, j): writing it earlier must
     not change what intermediate instructions see, nor be clobbered;
   - no call sits in (i, j) when [h] is physical: calls clobber every
     physical register except the stack pointer, so the value must not
     reach [h] until after the call — which is impossible if the def
     itself moves into [h]. *)

open Ilp_ir
open Ilp_analysis

let occurrences_of reg (i : Instr.t) =
  List.exists (Reg.equal reg) (Instr.defs i)
  || List.exists (Reg.equal reg) (Instr.uses i)

let run_block ~deletable (b : Block.t) =
  let instrs = ref (Array.of_list b.Block.instrs) in
  let changed = ref true in
  let rounds = ref 0 in
  while !changed && !rounds < 8 do
    changed := false;
    incr rounds;
    let arr = !instrs in
    let n = Array.length arr in
    (* def position and use positions of each virtual register *)
    let def_pos : (int, int) Hashtbl.t = Hashtbl.create 32 in
    let use_count : (int, int) Hashtbl.t = Hashtbl.create 32 in
    Array.iteri
      (fun k i ->
        List.iter
          (fun d ->
            if Reg.is_virtual d then
              if Hashtbl.mem def_pos (Reg.index d) then
                (* multiple defs: disqualify *)
                Hashtbl.replace def_pos (Reg.index d) (-1)
              else Hashtbl.replace def_pos (Reg.index d) k)
          (Instr.defs i);
        List.iter
          (fun u ->
            if Reg.is_virtual u then
              Hashtbl.replace use_count (Reg.index u)
                (1 + Option.value (Hashtbl.find_opt use_count (Reg.index u))
                       ~default:0))
          (Instr.uses i))
      arr;
    let try_coalesce j =
      match arr.(j).Instr.op with
      | Opcode.Mov -> (
          match (arr.(j).Instr.dst, arr.(j).Instr.srcs) with
          | Some h, [ Instr.Oreg v ]
            when Reg.is_virtual v && deletable v
                 && Hashtbl.find_opt use_count (Reg.index v) = Some 1 -> (
              match Hashtbl.find_opt def_pos (Reg.index v) with
              | Some i when i >= 0 && i < j ->
                  let window_ok = ref true in
                  for k = i + 1 to j - 1 do
                    if
                      occurrences_of h arr.(k)
                      || (Reg.is_physical h && Instr.is_call arr.(k))
                    then window_ok := false
                  done;
                  if !window_ok then begin
                    arr.(i) <- { (arr.(i)) with Instr.dst = Some h };
                    arr.(j) <- Instr.make Opcode.Nop;
                    changed := true
                  end
              | Some _ | None -> ())
          | _ -> ())
      | _ -> ()
    in
    for j = 0 to n - 1 do
      try_coalesce j
    done;
    if !changed then
      instrs :=
        Array.of_list
          (List.filter
             (fun i -> i.Instr.op <> Opcode.Nop)
             (Array.to_list arr))
  done;
  Block.make b.Block.label (Array.to_list !instrs)

let run_func (f : Func.t) =
  let deletable = Locality.block_local_vregs f in
  Func.map_blocks (run_block ~deletable) f

let run (p : Program.t) = Program.map_functions run_func p
