(* The machine-taxonomy diagrams of Section 2 (Figures 2-1 through 2-7)
   and the start-up transient of Figure 4-2, rendered from the same
   issue model that produces all the measurements.

     dune exec examples/pipeline_diagrams.exe *)

let () =
  print_string (Ilp_core.Experiments.render_fig2_diagrams ());
  print_newline ();
  print_string (Ilp_core.Experiments.render_fig4_2 ());
  (* a dependent chain, to contrast with the independent streams above *)
  let chain = Ilp_sim.Diagram.dependent_instrs 5 in
  Fmt.pr "@.serial chain on a superscalar degree 3 (no parallelism to exploit):@.";
  print_string (Ilp_sim.Diagram.render (Ilp_machine.Presets.superscalar 3) chain)
