(* Describing a custom machine, exactly as the paper's Section 3
   interface allowed: per-class operation latencies, functional units
   with issue latency and multiplicity, issue width, and the register
   split.  Here: a dual-issue machine with one pipelined FP unit and a
   2-cycle load, compared against its ideal-unit twin.

     dune exec examples/custom_machine.exe *)

open Ilp_machine
open Ilp_ir

let my_machine =
  Config.make "dual-issue-1fpu" ~issue_width:2 ~temp_regs:16 ~home_regs:26
    ~latencies:
      (Config.latency_table
         [ (Iclass.Load, 2); (Iclass.Fp_add, 2); (Iclass.Fp_mul, 3);
           (Iclass.Fp_div, 12); (Iclass.Int_div, 12); (Iclass.Int_mul, 2) ])
    ~units:
      [ { Config.unit_name = "fpu";
          classes = [ Iclass.Fp_add; Iclass.Fp_mul; Iclass.Fp_div; Iclass.Fp_cvt ];
          issue_latency = 1;
          multiplicity = 1;
        };
        { Config.unit_name = "mem";
          classes = [ Iclass.Load; Iclass.Store ];
          issue_latency = 1;
          multiplicity = 1;
        } ]

let ideal_twin = Presets.superscalar 2

let () =
  Fmt.pr "custom machine description:@.%a@.@." Config.pp my_machine;
  Fmt.pr "%-12s %-18s %-18s@." "benchmark" my_machine.Config.name
    ideal_twin.Config.name;
  List.iter
    (fun w ->
      let measure config =
        (Ilp_core.Ilp.measure ~level:Ilp_core.Ilp.O4 config
           w.Ilp_workloads.Workload.source)
          .Ilp_sim.Metrics.speedup
      in
      Fmt.pr "%-12s %-18.3f %-18.3f@." w.Ilp_workloads.Workload.name
        (measure my_machine) (measure ideal_twin))
    Ilp_workloads.Registry.all;
  Fmt.pr
    "@.Real latencies and a single FP unit absorb much of the dual-issue@.\
     benefit: the machine is already partly superpipelined (its average@.\
     degree of superpipelining exceeds one), as Section 2.7 predicts.@.";
  let avg =
    Superpipelining.average_degree my_machine
      Superpipelining.paper_frequencies
  in
  Fmt.pr "average degree of superpipelining: %.2f@." avg
