(* The CRAY-1 case study of Sections 2.7 and 4.2: the machine's average
   degree of superpipelining is already ~4.4, so parallel instruction
   issue buys almost nothing — unless one (incorrectly) simulates it
   with unit latencies, which is the mistake the paper calls out.

     dune exec examples/cray1_study.exe *)

let () =
  print_string (Ilp_core.Experiments.render_table2_1 ());
  print_newline ();
  print_string (Ilp_core.Experiments.render_fig4_3 ());
  print_newline ();
  print_string (Ilp_core.Experiments.render_fig4_4 ())
