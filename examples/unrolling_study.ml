(* Loop unrolling and available parallelism (the Figure 4-6 experiment),
   plus a look at the scheduled code so the effect is visible.

     dune exec examples/unrolling_study.exe *)

let () =
  print_string (Ilp_core.Experiments.render_fig4_6 ());
  (* show the scheduled inner loop at careful 4x *)
  let w =
    match Ilp_workloads.Registry.find "linpack" with
    | Some w -> w
    | None -> assert false
  in
  let config =
    Ilp_machine.Config.make "ss16-40temps" ~issue_width:16 ~temp_regs:40
  in
  let program =
    Ilp_core.Ilp.compile
      ~unroll:
        { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Careful; factor = 4;
          bounds = false }
      ~level:Ilp_core.Ilp.O4 config
      (Ilp_workloads.Workload.source_for_mode w `Careful)
  in
  match Ilp_ir.Program.find_function program "daxpy" with
  | Some f ->
      Fmt.pr "@.daxpy after careful 4x unrolling, scheduled for a wide machine@.";
      Fmt.pr "(note the four independent load/multiply/add/store chains):@.@.";
      Fmt.pr "%a@." Ilp_ir.Func.pp f
  | None -> ()
