(* Section 5.1: how cache misses dilute the gains of parallel issue.
   Sweeps the miss penalty on a blocking cache and reports the speedup a
   3-issue machine retains over single issue.

     dune exec examples/cache_study.exe *)

open Ilp_machine

let () =
  print_string (Ilp_core.Experiments.render_table5_1 ());
  print_newline ();
  print_string (Ilp_core.Experiments.render_sec5_1 ());
  Fmt.pr "@.miss-penalty sweep (stanford, 64-line cache, 3-issue vs 1-issue):@.@.";
  let w =
    match Ilp_workloads.Registry.find "stanford" with
    | Some w -> w
    | None -> assert false
  in
  Fmt.pr "%8s  %12s  %12s  %8s@." "penalty" "1-issue cyc" "3-issue cyc"
    "speedup";
  List.iter
    (fun penalty ->
      let cycles config =
        let cache =
          Ilp_sim.Cache.create ~lines:64 ~line_words:4 ~penalty ()
        in
        let program =
          Ilp_core.Ilp.compile ~level:Ilp_core.Ilp.O4 config
            w.Ilp_workloads.Workload.source
        in
        (Ilp_sim.Metrics.measure ~cache config program).Ilp_sim.Metrics
          .base_cycles
      in
      let narrow = cycles Presets.base in
      let wide = cycles (Presets.superscalar 3) in
      Fmt.pr "%8d  %12.0f  %12.0f  %8.2f@." penalty narrow wide
        (narrow /. wide))
    [ 0; 6; 12; 30; 70 ];
  Fmt.pr
    "@.As the miss penalty grows toward the paper's 'future machine' (70@.\
     cycles, Table 5-1), the parallel-issue speedup collapses: cache@.\
     behaviour, not issue width, bounds performance.@."
