(* Quickstart: compile a MiniMod program, run it on several machines, and
   read out the instruction-level parallelism.

     dune exec examples/quickstart.exe *)

let source =
  {|
# dot product plus a recurrence: some parallel work, some serial work
arr x : real[256];
arr y : real[256];

fun main() {
  var i : int;
  var dot : real = 0.0;
  for (i = 0; i < 256; i = i + 1) {
    x[i] = real(i % 17) / 16.0;
    y[i] = real(i % 11) / 16.0;
  }
  for (i = 0; i < 256; i = i + 1) {
    dot = dot + x[i] * y[i];
  }
  # first-order recurrence: inherently serial
  for (i = 1; i < 256; i = i + 1) {
    x[i] = x[i] + 0.5 * x[i - 1];
  }
  sink(dot + x[255]);
}
|}

let () =
  Fmt.pr "== quickstart: one program, four machines ==@.@.";
  let machines =
    [ Ilp_machine.Presets.base;
      Ilp_machine.Presets.superscalar 4;
      Ilp_machine.Presets.superpipelined 4;
      Ilp_machine.Presets.multititan ]
  in
  List.iter
    (fun machine ->
      let r = Ilp_core.Ilp.measure ~level:Ilp_core.Ilp.O4 machine source in
      Fmt.pr "%-18s %8d instrs  %10.1f base cycles  ILP %.3f  sink %a@."
        machine.Ilp_machine.Config.name r.Ilp_sim.Metrics.dyn_instrs
        r.Ilp_sim.Metrics.base_cycles r.Ilp_sim.Metrics.speedup
        Ilp_sim.Value.pp r.Ilp_sim.Metrics.sink)
    machines;
  Fmt.pr
    "@.The same checksum on every machine shows the compiler preserved@.\
     semantics; the cycle counts show how much of the program's@.\
     instruction-level parallelism each machine exploits.@."
