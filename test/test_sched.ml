(* Dependence-graph and list-scheduler tests. *)

open Ilp_ir
open Ilp_machine

let r = Reg.phys

let edge_exists ddg src dst =
  List.exists (fun (d, _) -> d = dst) ddg.Ilp_sched.Ddg.succs.(src)

let test_raw_edges () =
  let instrs =
    [ Builder.li (r 1) 1;               (* 0 *)
      Builder.add (r 2) (r 1) (r 1);    (* 1: RAW on 0 *)
      Builder.add (r 3) (r 2) (r 1) ]   (* 2: RAW on 0 and 1 *)
  in
  let ddg = Ilp_sched.Ddg.build Presets.base instrs in
  Alcotest.(check bool) "0 -> 1" true (edge_exists ddg 0 1);
  Alcotest.(check bool) "1 -> 2" true (edge_exists ddg 1 2);
  Alcotest.(check bool) "0 -> 2" true (edge_exists ddg 0 2);
  Alcotest.(check bool) "no back edge" false (edge_exists ddg 2 0)

let test_war_waw_edges () =
  let instrs =
    [ Builder.add (r 2) (r 1) (r 1);    (* 0 reads r1 *)
      Builder.li (r 1) 5;               (* 1: WAR with 0 *)
      Builder.li (r 1) 6 ]              (* 2: WAW with 1 *)
  in
  let ddg = Ilp_sched.Ddg.build Presets.base instrs in
  Alcotest.(check bool) "WAR 0 -> 1" true (edge_exists ddg 0 1);
  Alcotest.(check bool) "WAW 1 -> 2" true (edge_exists ddg 1 2)

let test_memory_edges () =
  let mem_a off = Mem_info.make (Mem_info.Global_array "a") (Mem_info.Const off) in
  let mem_b off = Mem_info.make (Mem_info.Global_array "b") (Mem_info.Const off) in
  let st m = Builder.st ~mem:m ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let ld m = Builder.ld ~mem:m (r 3) ~base:(r 2) ~offset:0 in
  (* aliasing store -> load is ordered *)
  let ddg = Ilp_sched.Ddg.build Presets.base [ st (mem_a 0); ld (mem_a 0) ] in
  Alcotest.(check bool) "st a -> ld a" true (edge_exists ddg 0 1);
  (* provably disjoint: no edge *)
  let ddg2 = Ilp_sched.Ddg.build Presets.base [ st (mem_a 0); ld (mem_a 1) ] in
  Alcotest.(check bool) "st a[0] vs ld a[1] free" false (edge_exists ddg2 0 1);
  let ddg3 = Ilp_sched.Ddg.build Presets.base [ st (mem_a 0); ld (mem_b 0) ] in
  Alcotest.(check bool) "different arrays free" false (edge_exists ddg3 0 1);
  (* loads never depend on loads (distinct destinations, same cell) *)
  let ld2 m dst = Builder.ld ~mem:m dst ~base:(r 2) ~offset:0 in
  let ddg4 =
    Ilp_sched.Ddg.build Presets.base [ ld2 (mem_a 0) (r 5); ld2 (mem_a 0) (r 6) ]
  in
  Alcotest.(check bool) "ld ld free" false (edge_exists ddg4 0 1);
  (* stores to the same place are ordered *)
  let ddg5 = Ilp_sched.Ddg.build Presets.base [ st (mem_a 0); st (mem_a 0) ] in
  Alcotest.(check bool) "st st ordered" true (edge_exists ddg5 0 1);
  (* unannotated memory operations are fully conservative *)
  let bare_st = Builder.st ~value:(r 1) ~base:(r 2) ~offset:0 () in
  let bare_ld = Builder.ld (r 3) ~base:(r 4) ~offset:9 in
  let ddg6 = Ilp_sched.Ddg.build Presets.base [ bare_st; bare_ld ] in
  Alcotest.(check bool) "bare st -> ld ordered" true (edge_exists ddg6 0 1)

let test_call_barrier () =
  let instrs =
    [ Builder.li (r 4) 1;
      Builder.call (Label.of_string "f");
      Builder.li (r 5) 2 ]
  in
  let ddg = Ilp_sched.Ddg.build Presets.base instrs in
  Alcotest.(check bool) "before -> call" true (edge_exists ddg 0 1);
  Alcotest.(check bool) "call -> after" true (edge_exists ddg 1 2)

let test_terminator_last () =
  let instrs =
    [ Builder.li (r 4) 1;
      Builder.li (r 5) 2;
      Builder.beq (r 4) (r 5) (Label.of_string "x") ]
  in
  let ddg = Ilp_sched.Ddg.build Presets.base instrs in
  Alcotest.(check bool) "0 -> branch" true (edge_exists ddg 0 2);
  Alcotest.(check bool) "1 -> branch" true (edge_exists ddg 1 2)

let test_available_parallelism () =
  (* Figure 1-1 *)
  let parallel =
    [ Builder.ld (r 11) ~base:(r 2) ~offset:23;
      Builder.addi (r 3) (r 3) 1;
      Builder.fadd (r 14) (r 14) (r 13) ]
  in
  Helpers.check_float "three independent" 3.0
    (Ilp_sched.Ddg.available_parallelism parallel);
  let serial =
    [ Builder.addi (r 3) (r 3) 1;
      Builder.add (r 4) (r 3) (r 2);
      Builder.st ~value:(r 10) ~base:(r 4) ~offset:0 () ]
  in
  Helpers.check_float "serial chain" 1.0
    (Ilp_sched.Ddg.available_parallelism serial);
  Helpers.check_float "empty block" 1.0
    (Ilp_sched.Ddg.available_parallelism [])

(* [n_edges] counts distinct (src, dst) pairs: when two hazards hit the
   same pair — here a WAR edge (weight 0) from the store's address
   register to the load's destination, then an aliasing store→load
   memory edge (weight 1) raising its weight — the pair is one edge. *)
let test_edge_count_no_duplicates () =
  let instrs =
    [ Builder.st ~value:(r 6) ~base:(r 4) ~offset:0 ();  (* reads r6 *)
      Builder.ld (r 6) ~base:(r 4) ~offset:0 ]           (* writes r6 *)
  in
  let ddg = Ilp_sched.Ddg.build Presets.base instrs in
  let listed =
    Array.fold_left (fun acc ss -> acc + List.length ss) 0 ddg.Ilp_sched.Ddg.succs
  in
  Alcotest.(check int) "one distinct edge" 1 ddg.Ilp_sched.Ddg.n_edges;
  Alcotest.(check int) "n_edges = edges listed" listed ddg.Ilp_sched.Ddg.n_edges;
  (* the merged edge keeps the larger (memory) weight *)
  Alcotest.(check (list (pair int int))) "weight raised to 1" [ (1, 1) ]
    ddg.Ilp_sched.Ddg.succs.(0)

(* Critical-path heights over a dependence chain far deeper than the
   OCaml stack: the reverse-sweep implementation must not overflow. *)
let test_heights_deep_chain () =
  let n = 100_000 in
  let chain = List.init n (fun _ -> Builder.addi (r 5) (r 5) 1) in
  let ddg = Ilp_sched.Ddg.build Presets.base chain in
  let height = Ilp_sched.Ddg.heights Presets.base ddg in
  Alcotest.(check int) "chain head height" n height.(0);
  Alcotest.(check int) "chain tail height" 1 height.(n - 1)

let schedule_order config instrs =
  let b = Block.make (Label.of_string "b") instrs in
  let b' = Ilp_sched.List_sched.schedule_block config b in
  List.map (fun i -> i.Instr.id) b'.Block.instrs

let test_schedule_preserves_instrs () =
  let instrs =
    [ Builder.li (r 1) 1;
      Builder.li (r 2) 2;
      Builder.add (r 3) (r 1) (r 2);
      Builder.li (r 4) 4;
      Builder.add (r 5) (r 3) (r 4) ]
  in
  let before = List.sort compare (List.map (fun i -> i.Instr.id) instrs) in
  let after = List.sort compare (schedule_order Presets.base instrs) in
  Alcotest.(check (list int)) "same multiset" before after

let test_schedule_respects_deps () =
  (* long-latency producer: scheduler hoists independent work between
     producer and consumer *)
  let config =
    Config.make "lat3"
      ~latencies:(Config.latency_table [ (Iclass.Load, 3) ])
  in
  let producer = Builder.ld (r 1) ~base:(Reg.sp) ~offset:0 in
  let consumer = Builder.add (r 2) (r 1) (r 1) in
  let indep1 = Builder.li (r 3) 1 in
  let indep2 = Builder.li (r 4) 2 in
  let order = schedule_order config [ producer; consumer; indep1; indep2 ] in
  let pos id = ref 0 |> fun p -> List.iteri (fun i x -> if x = id then p := i) order; !p in
  Alcotest.(check bool) "consumer after producer" true
    (pos consumer.Instr.id > pos producer.Instr.id);
  Alcotest.(check bool) "independents fill the latency" true
    (pos indep1.Instr.id < pos consumer.Instr.id
    && pos indep2.Instr.id < pos consumer.Instr.id)

let test_schedule_keeps_terminator_last () =
  let instrs =
    [ Builder.li (r 1) 1;
      Builder.beq (r 1) (r 1) (Label.of_string "x") ]
  in
  let order = schedule_order (Presets.superscalar 4) instrs in
  Alcotest.(check int) "branch last"
    (List.nth instrs 1).Instr.id
    (List.nth order 1)

(* End-to-end: scheduling must never change results, and should not
   make any machine slower on scheduled code vs original order. *)
let test_schedule_semantics_and_cycles () =
  let src =
    {|
arr a : real[64];
fun main() {
  var i : int;
  var s : real = 0.0;
  for (i = 0; i < 64; i = i + 1) { a[i] = real(i) * 0.5; }
  for (i = 0; i < 60; i = i + 1) {
    s = s + a[i] * a[i + 1] - a[i + 2] / (a[i + 3] + 2.0);
  }
  sink(s);
}
|}
  in
  let config = Presets.multititan in
  let unsched = Helpers.measure ~config ~level:Ilp_core.Ilp.O0 src in
  let sched = Helpers.measure ~config ~level:Ilp_core.Ilp.O1 src in
  Alcotest.check Helpers.value_testable "same result"
    unsched.Ilp_sim.Metrics.sink sched.Ilp_sim.Metrics.sink;
  Alcotest.(check bool) "scheduling does not hurt" true
    (sched.Ilp_sim.Metrics.base_cycles
    <= unsched.Ilp_sim.Metrics.base_cycles +. 1.0)

let tests =
  [ Alcotest.test_case "RAW edges" `Quick test_raw_edges;
    Alcotest.test_case "WAR/WAW edges" `Quick test_war_waw_edges;
    Alcotest.test_case "memory edges" `Quick test_memory_edges;
    Alcotest.test_case "call barrier" `Quick test_call_barrier;
    Alcotest.test_case "terminator ordered last" `Quick test_terminator_last;
    Alcotest.test_case "available parallelism" `Quick test_available_parallelism;
    Alcotest.test_case "edge count merges duplicate pairs" `Quick
      test_edge_count_no_duplicates;
    Alcotest.test_case "heights on a 100k chain" `Quick test_heights_deep_chain;
    Alcotest.test_case "schedule preserves instrs" `Quick test_schedule_preserves_instrs;
    Alcotest.test_case "schedule respects deps" `Quick test_schedule_respects_deps;
    Alcotest.test_case "terminator stays last" `Quick test_schedule_keeps_terminator_last;
    Alcotest.test_case "scheduling end to end" `Quick test_schedule_semantics_and_cycles ]
