(* Validator tests, plus pipeline-stage validation of the whole
   benchmark suite: every stage of the compiler must emit well-formed
   IR. *)

open Ilp_ir
open Ilp_machine

let r = Reg.phys

let test_accepts_good_program () =
  let p =
    Builder.program_of_instrs
      [ Builder.li (r 4) 1; Builder.add (r 5) (r 4) (r 4) ]
  in
  Alcotest.(check int) "no issues" 0 (List.length (Validate.check p))

let expect_issue name p =
  match Validate.check p with
  | [] -> Alcotest.failf "%s: expected an issue" name
  | _ -> ()

let test_rejects_malformed_operands () =
  (* binary op with one source *)
  let bad = Instr.make Opcode.Add ~dst:(r 5) ~srcs:[ Instr.Oreg (r 4) ] in
  expect_issue "malformed add" (Builder.program_of_instrs [ bad ]);
  (* store with a destination *)
  let bad_st =
    Instr.make Opcode.St ~dst:(r 5)
      ~srcs:[ Instr.Oreg (r 4); Instr.Oreg (r 6) ]
  in
  expect_issue "store with dst" (Builder.program_of_instrs [ bad_st ]);
  (* branch without target *)
  let bad_b = Instr.make Opcode.Beq ~srcs:[ Instr.Oreg (r 4); Instr.Oreg (r 5) ] in
  expect_issue "branch without target" (Builder.program_of_instrs [ bad_b ])

let test_rejects_unknown_targets () =
  let p =
    Program.make ~globals:[]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main")
                [ Builder.jmp (Label.of_string "nowhere") ] ]
        ]
  in
  expect_issue "unknown label" p;
  let p2 =
    Program.make ~globals:[]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main")
                [ Builder.call (Label.of_string "ghost"); Builder.halt () ] ]
        ]
  in
  expect_issue "unknown function" p2

let test_rejects_mid_block_terminator () =
  let p =
    Program.make ~globals:[]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main")
                [ Builder.halt (); Builder.li (r 4) 1; Builder.halt () ] ]
        ]
  in
  expect_issue "terminator mid block" p

let test_rejects_no_main () =
  let p =
    Program.make ~globals:[]
      ~functions:
        [ Func.make ~name:"f" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "f") [ Builder.ret () ] ] ]
  in
  expect_issue "no main" p

let test_virtuals_flagged_after_allocation () =
  let v = Reg.virt () in
  let p =
    Builder.program_of_instrs [ Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm 1 ] ]
  in
  Alcotest.(check int) "fine at virtual stage" 0
    (List.length (Validate.check ~stage:`Virtual p));
  match Validate.check ~stage:`Allocated p with
  | [] -> Alcotest.fail "expected virtual-register issue"
  | _ -> ()

(* The executor aliases function names to their entry blocks through one
   global label table, so label collisions silently redirect control
   unless caught. *)
let collision_program () =
  Program.make ~globals:[]
    ~functions:
      [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
          [ Block.make (Label.of_string "main")
              [ Builder.jmp (Label.of_string "f") ];
            Block.make (Label.of_string "f") [ Builder.halt () ] ];
        Func.make ~name:"f" ~frame_size:0 ~n_params:0
          [ Block.make (Label.of_string "fstart") [ Builder.ret () ] ]
      ]

let test_rejects_label_collisions () =
  (* a function name reused as a block label elsewhere *)
  expect_issue "function name shadows block label" (collision_program ());
  (* the same block label in two functions *)
  let dup =
    Program.make ~globals:[]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main")
                [ Builder.call (Label.of_string "g"); Builder.halt () ];
              Block.make (Label.of_string "shared") [ Builder.halt () ] ];
          Func.make ~name:"g" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "g") [ Builder.ret () ];
              Block.make (Label.of_string "shared") [ Builder.ret () ] ]
        ]
  in
  expect_issue "duplicate block label" dup;
  (* the benign self-alias: each entry block labelled with its own
     function's name *)
  let fine =
    Program.make ~globals:[]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main")
                [ Builder.call (Label.of_string "g"); Builder.halt () ] ];
          Func.make ~name:"g" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "g") [ Builder.ret () ] ]
        ]
  in
  Alcotest.(check int) "self-alias accepted" 0
    (List.length (Validate.check fine))

let test_exec_faults_on_collision () =
  Alcotest.(check bool) "executor refuses the shadowing program" true
    (match Ilp_sim.Exec.run (collision_program ()) with
    | exception Ilp_sim.Exec.Fault _ -> true
    | _ -> false)

let test_register_file_bounds () =
  (* after allocation every physical register must fit the machine's
     register file; an index past the split is a validation issue *)
  let p idx =
    Builder.program_of_instrs [ Builder.li (r idx) 1; Builder.halt () ]
  in
  let config = Ilp_machine.Config.make "tiny" ~temp_regs:4 ~home_regs:4 in
  let max_reg = Ilp_regalloc.Regfile.file_size config in
  Alcotest.(check int) "in-bounds register accepted" 0
    (List.length (Validate.check ~stage:`Allocated ~max_reg (p (max_reg - 1))));
  (match Validate.check ~stage:`Allocated ~max_reg (p max_reg) with
  | [] -> Alcotest.fail "register outside the file: expected an issue"
  | _ -> ());
  (* the bound is only meaningful once allocated *)
  Alcotest.(check int) "virtual stage ignores the bound" 0
    (List.length (Validate.check ~stage:`Virtual ~max_reg (p max_reg)))

let test_check_exn () =
  let good = Builder.program_of_instrs [ Builder.li (r 4) 1 ] in
  Validate.check_exn good;
  let bad = Instr.make Opcode.Add ~dst:(r 5) ~srcs:[] in
  Alcotest.(check bool) "raises" true
    (match Validate.check_exn (Builder.program_of_instrs [ bad ]) with
    | exception Validate.Invalid _ -> true
    | _ -> false)

(* Every stage of the pipeline, on every benchmark, must produce
   well-formed IR. *)
let stage_tests =
  let config = Presets.multititan in
  List.map
    (fun w ->
      Alcotest.test_case ("pipeline stages: " ^ w.Ilp_workloads.Workload.name)
        `Slow
        (fun () ->
          let tast = Ilp_core.Ilp.frontend w.Ilp_workloads.Workload.source in
          let stage name check_stage p =
            match Validate.check ~stage:check_stage p with
            | [] -> ()
            | iss :: _ ->
                Alcotest.failf "%s: %s" name (Fmt.str "%a" Validate.pp_issue iss)
          in
          let p0 = Ilp_lang.Codegen.gen_program tast in
          stage "codegen" `Virtual p0;
          let p2 = Ilp_core.Ilp.local_cleanup p0 in
          stage "local cleanup" `Virtual p2;
          let p3 =
            p2 |> Ilp_opt.Licm.run |> Ilp_opt.Global_cse.run
            |> Ilp_core.Ilp.local_cleanup
          in
          stage "global opts" `Virtual p3;
          let p4 =
            Ilp_regalloc.Global_alloc.run config p3
            |> Ilp_core.Ilp.local_cleanup |> Ilp_opt.Coalesce.run
          in
          stage "global alloc" `Virtual p4;
          let p5 = Ilp_regalloc.Temp_alloc.run config p4 in
          stage "temp alloc" `Allocated p5;
          let p6 = Ilp_sched.List_sched.run config p5 in
          stage "scheduled" `Allocated p6))
    Ilp_workloads.Registry.all

let tests =
  [ Alcotest.test_case "accepts good program" `Quick test_accepts_good_program;
    Alcotest.test_case "rejects malformed operands" `Quick
      test_rejects_malformed_operands;
    Alcotest.test_case "rejects unknown targets" `Quick
      test_rejects_unknown_targets;
    Alcotest.test_case "rejects mid-block terminator" `Quick
      test_rejects_mid_block_terminator;
    Alcotest.test_case "rejects missing main" `Quick test_rejects_no_main;
    Alcotest.test_case "virtuals flagged after allocation" `Quick
      test_virtuals_flagged_after_allocation;
    Alcotest.test_case "rejects label collisions" `Quick
      test_rejects_label_collisions;
    Alcotest.test_case "executor faults on collision" `Quick
      test_exec_faults_on_collision;
    Alcotest.test_case "register-file bounds" `Quick
      test_register_file_bounds;
    Alcotest.test_case "check_exn" `Quick test_check_exn ]
  @ stage_tests
