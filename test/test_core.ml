(* Core-layer tests: the compilation pipeline driver, report rendering,
   pipeline diagrams, and cheap experiment invariants. *)

open Ilp_machine

let test_opt_level_names () =
  Alcotest.(check int) "five levels" 5 (List.length Ilp_core.Ilp.all_levels);
  Alcotest.(check string) "O0 name" "none"
    (Ilp_core.Ilp.opt_level_name Ilp_core.Ilp.O0);
  Alcotest.(check bool) "ranks ordered" true
    (Ilp_core.Ilp.level_rank Ilp_core.Ilp.O0
    < Ilp_core.Ilp.level_rank Ilp_core.Ilp.O4)

let test_report_table () =
  let t =
    Ilp_core.Report.table ~header:[ "a"; "bb" ]
      [ [ "1"; "2" ]; [ "333"; "4" ] ]
  in
  Alcotest.(check int) "four lines" 4
    (List.length (String.split_on_char '\n' t));
  Alcotest.(check bool) "contains data" true
    (Astring.String.is_infix ~affix:"333" t
     || String.length t > 0 && String.contains t '3')

let test_report_chart () =
  let chart =
    Ilp_core.Report.line_chart
      [ { Ilp_core.Report.label = 'X'; points = [ (1.0, 1.0); (2.0, 2.0) ] } ]
  in
  Alcotest.(check bool) "plots the label" true (String.contains chart 'X');
  Alcotest.(check string) "empty data" "(no data)"
    (Ilp_core.Report.line_chart [])

let test_diagram_shapes () =
  let d =
    Ilp_sim.Diagram.render Presets.base (Ilp_sim.Diagram.independent_instrs 4)
  in
  Alcotest.(check bool) "has execute stage" true (String.contains d 'E');
  Alcotest.(check bool) "has fetch stage" true (String.contains d 'F');
  (* superscalar diagram issues three in the same cycle: three E's in
     the same column; cheap check: diagram renders without exception *)
  let d3 =
    Ilp_sim.Diagram.render (Presets.superscalar 3)
      (Ilp_sim.Diagram.independent_instrs 6)
  in
  Alcotest.(check bool) "superscalar renders" true (String.length d3 > 0)

let test_fig1_1_values () =
  let r = Ilp_core.Experiments.fig1_1 () in
  Helpers.check_float "fragment (a)" 3.0 r.Ilp_core.Experiments.parallel_fragment;
  Helpers.check_float "fragment (b)" 1.0 r.Ilp_core.Experiments.serial_fragment

let test_fig4_3_grid () =
  let grid = Ilp_core.Experiments.fig4_3 () in
  (* bottom row is the superscalar axis 1..5; top row is m=5 *)
  Alcotest.(check (list int)) "m=1 row" [ 1; 2; 3; 4; 5 ]
    (List.nth grid 4);
  Alcotest.(check (list int)) "m=5 row" [ 5; 10; 15; 20; 25 ]
    (List.hd grid)

let test_fig4_7_values () =
  let r = Ilp_core.Experiments.fig4_7 () in
  Helpers.check_float_rel ~tol:0.01 "original 1.67" 1.67
    r.Ilp_core.Experiments.original;
  Helpers.check_float_rel ~tol:0.01 "branch 1.33" 1.33
    r.Ilp_core.Experiments.branch_optimized;
  Helpers.check_float "bottleneck 1.50" 1.5
    r.Ilp_core.Experiments.bottleneck_optimized

let test_table5_1_values () =
  match Ilp_core.Experiments.table5_1 () with
  | [ vax; titan; future ] ->
      Helpers.check_float "vax 0.6" 0.6 vax.Ilp_core.Experiments.miss_cost_instrs;
      Helpers.check_float_rel ~tol:0.01 "titan 8.6" 8.571
        titan.Ilp_core.Experiments.miss_cost_instrs;
      Helpers.check_float "future 140" 140.0
        future.Ilp_core.Experiments.miss_cost_instrs
  | _ -> Alcotest.fail "expected three rows"

let test_experiments_registry () =
  Alcotest.(check bool) "fig4_1 registered" true
    (Ilp_core.Experiments.find "fig4_1" <> None);
  Alcotest.(check bool) "unknown rejected" true
    (Ilp_core.Experiments.find "fig9_9" = None);
  Alcotest.(check bool) "fig4_5_unroll registered" true
    (Ilp_core.Experiments.find "fig4_5_unroll" <> None);
  Alcotest.(check int) "twenty-two experiments" 22
    (List.length Ilp_core.Experiments.all)

let test_sec5_1_analytic () =
  let r = Ilp_core.Experiments.sec5_1 () in
  Helpers.check_float_rel ~tol:0.01 "33 percent" 33.3
    r.Ilp_core.Experiments.analytic_improvement_with_cache;
  Helpers.check_float "100 percent" 100.0
    r.Ilp_core.Experiments.analytic_improvement_no_cache;
  Alcotest.(check bool) "cache dilutes simulated speedup" true
    (r.Ilp_core.Experiments.simulated_speedup_with_cache
    < r.Ilp_core.Experiments.simulated_speedup_no_cache)

let tests =
  [ Alcotest.test_case "opt level names" `Quick test_opt_level_names;
    Alcotest.test_case "report table" `Quick test_report_table;
    Alcotest.test_case "report chart" `Quick test_report_chart;
    Alcotest.test_case "diagram shapes" `Quick test_diagram_shapes;
    Alcotest.test_case "figure 1-1" `Quick test_fig1_1_values;
    Alcotest.test_case "figure 4-3 grid" `Quick test_fig4_3_grid;
    Alcotest.test_case "figure 4-7" `Quick test_fig4_7_values;
    Alcotest.test_case "table 5-1" `Quick test_table5_1_values;
    Alcotest.test_case "experiment registry" `Quick test_experiments_registry;
    Alcotest.test_case "section 5.1" `Slow test_sec5_1_analytic ]
