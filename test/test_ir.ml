(* Unit tests for the IR substrate: registers, instruction classes,
   opcodes, instructions, memory annotations, blocks and functions. *)

open Ilp_ir

let test_reg_basics () =
  Alcotest.(check bool) "sp is physical" true (Reg.is_physical Reg.sp);
  Alcotest.(check int) "sp index" 0 (Reg.index Reg.sp);
  let v1 = Reg.virt () and v2 = Reg.virt () in
  Alcotest.(check bool) "virtuals distinct" false (Reg.equal v1 v2);
  Alcotest.(check bool) "virtual is virtual" true (Reg.is_virtual v1);
  Alcotest.(check bool) "phys is not virtual" false (Reg.is_virtual (Reg.phys 7));
  Alcotest.(check bool) "roundtrip" true
    (Reg.equal v1 (Reg.of_index (Reg.index v1)))

let test_reg_invalid () =
  Alcotest.check_raises "negative phys" (Invalid_argument "Reg.phys: negative index")
    (fun () -> ignore (Reg.phys (-1)))

let test_reg_pp () =
  Alcotest.(check string) "sp prints" "sp" (Reg.to_string Reg.sp);
  Alcotest.(check string) "phys prints" "r5" (Reg.to_string (Reg.phys 5))

let test_iclass_roundtrip () =
  List.iter
    (fun c ->
      Alcotest.(check bool)
        (Iclass.name c ^ " roundtrip")
        true
        (Iclass.equal c (Iclass.of_index (Iclass.to_index c))))
    Iclass.all;
  Alcotest.(check int) "fourteen classes" 14 Iclass.count

let test_iclass_predicates () =
  Alcotest.(check bool) "branch is control" true (Iclass.is_control Iclass.Branch);
  Alcotest.(check bool) "load is memory" true (Iclass.is_memory Iclass.Load);
  Alcotest.(check bool) "fpdiv not simple" false (Iclass.is_simple Iclass.Fp_div);
  Alcotest.(check bool) "intdiv not simple" false (Iclass.is_simple Iclass.Int_div);
  Alcotest.(check bool) "add is simple" true (Iclass.is_simple Iclass.Add_sub);
  Alcotest.(check bool) "fpadd is fp" true (Iclass.is_floating_point Iclass.Fp_add)

let test_opcode_classes () =
  Alcotest.(check bool) "add class" true
    (Iclass.equal (Opcode.iclass Opcode.Add) Iclass.Add_sub);
  Alcotest.(check bool) "ld class" true
    (Iclass.equal (Opcode.iclass Opcode.Ld) Iclass.Load);
  Alcotest.(check bool) "beq class" true
    (Iclass.equal (Opcode.iclass Opcode.Beq) Iclass.Branch);
  Alcotest.(check bool) "call class" true
    (Iclass.equal (Opcode.iclass Opcode.Call) Iclass.Jump);
  Alcotest.(check bool) "fmul class" true
    (Iclass.equal (Opcode.iclass Opcode.Fmul) Iclass.Fp_mul)

let test_opcode_predicates () =
  Alcotest.(check bool) "add pure" true (Opcode.is_pure Opcode.Add);
  Alcotest.(check bool) "ld impure" false (Opcode.is_pure Opcode.Ld);
  Alcotest.(check bool) "st impure" false (Opcode.is_pure Opcode.St);
  Alcotest.(check bool) "call impure" false (Opcode.is_pure Opcode.Call);
  Alcotest.(check bool) "beq terminator" true (Opcode.is_terminator Opcode.Beq);
  Alcotest.(check bool) "call not terminator" false (Opcode.is_terminator Opcode.Call);
  Alcotest.(check bool) "fadd assoc-comm" true (Opcode.is_assoc_commutative Opcode.Fadd);
  Alcotest.(check bool) "sub not assoc-comm" false (Opcode.is_assoc_commutative Opcode.Sub)

let test_instr_defs_uses () =
  let r = Reg.phys in
  let add = Builder.add (r 5) (r 6) (r 7) in
  Alcotest.(check (list int)) "add defs" [ 5 ] (List.map Reg.index (Instr.defs add));
  Alcotest.(check (list int)) "add uses" [ 6; 7 ] (List.map Reg.index (Instr.uses add));
  let st = Builder.st ~value:(r 3) ~base:(r 4) ~offset:2 () in
  Alcotest.(check (list int)) "st defs" [] (List.map Reg.index (Instr.defs st));
  Alcotest.(check (list int)) "st uses" [ 3; 4 ] (List.map Reg.index (Instr.uses st));
  let call = Builder.call (Label.of_string "f") in
  Alcotest.(check (list int)) "call defs ret" [ Reg.index Instr.ret_reg ]
    (List.map Reg.index (Instr.defs call));
  let ret = Builder.ret () in
  Alcotest.(check (list int)) "ret uses ret_reg" [ Reg.index Instr.ret_reg ]
    (List.map Reg.index (Instr.uses ret));
  let li = Builder.li (r 2) 42 in
  Alcotest.(check (list int)) "li uses nothing" [] (List.map Reg.index (Instr.uses li))

let test_instr_ids_unique () =
  let r = Reg.phys in
  let a = Builder.add (r 1) (r 2) (r 3) in
  let b = Builder.add (r 1) (r 2) (r 3) in
  Alcotest.(check bool) "fresh ids" false (a.Instr.id = b.Instr.id);
  let c = Instr.copy a in
  Alcotest.(check bool) "copy has fresh id" false (a.Instr.id = c.Instr.id)

let test_instr_map_src () =
  let r = Reg.phys in
  let add = Builder.add (r 5) (r 6) (r 7) in
  let mapped = Instr.map_src_regs (fun _ -> r 9) add in
  Alcotest.(check (list int)) "srcs mapped" [ 9; 9 ]
    (List.map Reg.index (Instr.uses mapped));
  Alcotest.(check (list int)) "dst unchanged" [ 5 ]
    (List.map Reg.index (Instr.defs mapped))

let test_mem_region_disjoint () =
  let open Mem_info in
  let check msg expected r1 r2 =
    Alcotest.(check bool) msg expected (regions_disjoint r1 r2)
  in
  check "different globals" true (Global "a") (Global "b");
  check "same global" false (Global "a") (Global "a");
  check "different arrays" true (Global_array "a") (Global_array "b");
  check "scalar vs array" true (Global "a") (Global_array "a");
  check "unknown aliases all" false Unknown (Global "a");
  check "stack slots same fn" true (Stack_slot ("f", 0)) (Stack_slot ("f", 1));
  check "stack slot same" false (Stack_slot ("f", 0)) (Stack_slot ("f", 0));
  check "stack slots different fns" true (Stack_slot ("f", 0)) (Stack_slot ("g", 0));
  (* arg slots of different callees can overlap in memory *)
  check "arg slots different callees" false (Arg_slot ("f", 0)) (Arg_slot ("g", 0));
  check "arg slots same callee" true (Arg_slot ("f", 0)) (Arg_slot ("f", 1));
  (* declared-disjoint views *)
  check "two views of one array" true
    (Global_array_view ("a", "src")) (Global_array_view ("a", "dst"));
  check "same view" false
    (Global_array_view ("a", "src")) (Global_array_view ("a", "src"));
  check "view vs bare array" false (Global_array_view ("a", "src")) (Global_array "a");
  check "view vs other array" true (Global_array_view ("a", "src")) (Global_array "b")

let test_mem_offset_disjoint () =
  let open Mem_info in
  let v = Reg.virt () in
  let w = Reg.virt () in
  Alcotest.(check bool) "const offsets differ" true
    (offsets_disjoint (Const 1) (Const 2));
  Alcotest.(check bool) "const offsets equal" false
    (offsets_disjoint (Const 1) (Const 1));
  Alcotest.(check bool) "same sym, different const" true
    (offsets_disjoint (Sym (v, 0)) (Sym (v, 1)));
  Alcotest.(check bool) "same sym, same const" false
    (offsets_disjoint (Sym (v, 2)) (Sym (v, 2)));
  Alcotest.(check bool) "different syms" false
    (offsets_disjoint (Sym (v, 0)) (Sym (w, 1)));
  Alcotest.(check bool) "top matches anything" false
    (offsets_disjoint Top (Const 0))

let test_mem_full_disjoint () =
  let open Mem_info in
  let v = Reg.virt () in
  let a0 = make (Global_array "a") (Sym (v, 0)) in
  let a1 = make (Global_array "a") (Sym (v, 1)) in
  let b0 = make (Global_array "b") (Sym (v, 0)) in
  Alcotest.(check bool) "a[v] vs a[v+1]" true (disjoint a0 a1);
  Alcotest.(check bool) "a[v] vs a[v]" false (disjoint a0 a0);
  Alcotest.(check bool) "a[v] vs b[v]" true (disjoint a0 b0)

let test_block_structure () =
  let r = Reg.phys in
  let l = Label.of_string "target" in
  let b =
    Block.make (Label.of_string "b")
      [ Builder.add (r 1) (r 2) (r 3); Builder.beq (r 1) (r 2) l ]
  in
  Alcotest.(check bool) "has terminator" true (Block.terminator b <> None);
  Alcotest.(check bool) "cond branch falls through" true (Block.falls_through b);
  Alcotest.(check (list string)) "branch targets" [ "target" ]
    (List.map Label.to_string (Block.branch_targets b));
  let b2 = Block.make (Label.of_string "b2") [ Builder.jmp l ] in
  Alcotest.(check bool) "jmp does not fall through" false (Block.falls_through b2);
  let b3 = Block.make (Label.of_string "b3") [ Builder.add (r 1) (r 2) (r 3) ] in
  Alcotest.(check bool) "no terminator falls through" true (Block.falls_through b3);
  Alcotest.(check int) "size" 2 (Block.size b)

let test_func_successors () =
  let r = Reg.phys in
  let l1 = Label.of_string "one" and l2 = Label.of_string "two" in
  let f =
    Func.make ~name:"f" ~frame_size:0 ~n_params:0
      [ Block.make l1 [ Builder.beq (r 1) (r 2) l1 ];
        Block.make l2 [ Builder.ret () ] ]
  in
  let succs = Func.successors f in
  Alcotest.(check (list string)) "block one: taken + fallthrough"
    [ "one"; "two" ]
    (List.map Label.to_string (List.assoc l1 succs));
  Alcotest.(check (list string)) "block two: none" []
    (List.map Label.to_string (List.assoc l2 succs));
  Alcotest.(check int) "instr count" 2 (Func.instr_count f)

let test_program_layout () =
  let p =
    Program.make
      ~globals:
        [ { Program.gname = "a"; words = 1; init = Program.Zero };
          { Program.gname = "b"; words = 10; init = Program.Zero };
          { Program.gname = "c"; words = 2; init = Program.Zero } ]
      ~functions:[ Builder.single_block_main [ Builder.halt () ] ]
  in
  Alcotest.(check int) "a at base" Program.globals_base (Program.global_address p "a");
  Alcotest.(check int) "b after a" (Program.globals_base + 1) (Program.global_address p "b");
  Alcotest.(check int) "c after b" (Program.globals_base + 11) (Program.global_address p "c")

let tests =
  [ Alcotest.test_case "reg basics" `Quick test_reg_basics;
    Alcotest.test_case "reg invalid" `Quick test_reg_invalid;
    Alcotest.test_case "reg printing" `Quick test_reg_pp;
    Alcotest.test_case "iclass roundtrip" `Quick test_iclass_roundtrip;
    Alcotest.test_case "iclass predicates" `Quick test_iclass_predicates;
    Alcotest.test_case "opcode classes" `Quick test_opcode_classes;
    Alcotest.test_case "opcode predicates" `Quick test_opcode_predicates;
    Alcotest.test_case "instr defs/uses" `Quick test_instr_defs_uses;
    Alcotest.test_case "instr ids unique" `Quick test_instr_ids_unique;
    Alcotest.test_case "instr map srcs" `Quick test_instr_map_src;
    Alcotest.test_case "mem region disjointness" `Quick test_mem_region_disjoint;
    Alcotest.test_case "mem offset disjointness" `Quick test_mem_offset_disjoint;
    Alcotest.test_case "mem full disjointness" `Quick test_mem_full_disjoint;
    Alcotest.test_case "block structure" `Quick test_block_structure;
    Alcotest.test_case "func successors" `Quick test_func_successors;
    Alcotest.test_case "program layout" `Quick test_program_layout ]
