(* Optimization-pass unit tests: each pass must preserve semantics and
   have its intended static effect on instruction counts. *)

open Ilp_ir

let compile_raw src = Ilp_lang.Codegen.gen_program (Ilp_lang.Semant.compile_source src)

let static_count = Program.instr_count

let finish config p = Ilp_regalloc.Temp_alloc.run config p

let run_program p =
  (Ilp_sim.Exec.run (finish Ilp_machine.Presets.base p)).Ilp_sim.Exec.sink

let check_preserves name pass src =
  let p = compile_raw src in
  let before = run_program p in
  let after = run_program (pass p) in
  Alcotest.check Helpers.value_testable name before after

let simple_src =
  {|
var g : int = 3;
arr a : int[16];
fun f(x: int) : int { return x * 2 + g; }
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 16; i = i + 1) { a[i] = f(i) + f(i); }
  for (i = 0; i < 16; i = i + 1) { s = s + a[i]; }
  if (s > 100) { s = s - 100; } else { s = s + 7; }
  sink(s);
}
|}

(* --- constant folding --- *)

let test_const_fold_folds () =
  let src = "fun main() { sink(2 + 3 * 4); }" in
  let p = compile_raw src in
  let folded = Ilp_opt.Const_fold.run p |> Ilp_opt.Dce.run in
  Alcotest.(check bool) "fewer instructions" true
    (static_count folded < static_count p);
  Alcotest.check Helpers.value_testable "value" (Ilp_sim.Value.Int 14)
    (run_program folded)

let test_const_fold_strength_reduction () =
  let src = "fun main() { var x : int = 7; sink(x * 8); }" in
  let p = Ilp_opt.Const_fold.run (compile_raw src) in
  let has_shl =
    List.exists
      (fun f ->
        List.exists
          (fun b ->
            List.exists (fun i -> i.Instr.op = Opcode.Shl) b.Block.instrs)
          f.Func.blocks)
      p.Program.functions
  in
  Alcotest.(check bool) "mul by 8 became shift" true has_shl;
  Alcotest.check Helpers.value_testable "value" (Ilp_sim.Value.Int 56)
    (run_program p)

let test_const_fold_division_guard () =
  (* folding must not hide division by zero *)
  let src = "fun main() { var z : int = 0; if (z > 0) { sink(1 / z); } sink(9); }" in
  Alcotest.check Helpers.value_testable "guarded division fine"
    (Ilp_sim.Value.Int 9)
    (run_program (Ilp_opt.Const_fold.run (compile_raw src)))

let test_const_fold_preserves () =
  check_preserves "const fold preserves" Ilp_opt.Const_fold.run simple_src

let test_const_fold_float () =
  let src = "fun main() { sink(1.5 * 2.0 + 0.25); }" in
  let v = run_program (Ilp_opt.Const_fold.run (compile_raw src)) in
  match v with
  | Ilp_sim.Value.Float f -> Helpers.check_float "folded float" 3.25 f
  | _ -> Alcotest.fail "expected float"

(* --- local CSE --- *)

let test_cse_removes_redundant_loads () =
  let src =
    {|
var g : int = 5;
fun main() { sink(g + g + g); }
|}
  in
  let p = compile_raw src in
  let optimized = Ilp_opt.Local_cse.run p |> Ilp_opt.Dce.run in
  Alcotest.(check bool) "loads deduplicated" true
    (static_count optimized < static_count p);
  Alcotest.check Helpers.value_testable "value" (Ilp_sim.Value.Int 15)
    (run_program optimized)

let test_cse_respects_stores () =
  (* a store between two loads of the same cell kills availability *)
  let src =
    {|
var g : int = 5;
fun main() {
  var a : int = g;
  g = 7;
  sink(a + g);
}
|}
  in
  Alcotest.check Helpers.value_testable "store kills CSE"
    (Ilp_sim.Value.Int 12)
    (run_program (Ilp_opt.Local_cse.run (compile_raw src)))

let test_cse_store_forwarding () =
  let src =
    {|
arr a : int[8];
fun main() {
  a[3] = 41;
  sink(a[3] + 1);
}
|}
  in
  Alcotest.check Helpers.value_testable "store-to-load forward"
    (Ilp_sim.Value.Int 42)
    (run_program (Ilp_opt.Local_cse.run (compile_raw src)))

let test_cse_call_clobbers () =
  let src =
    {|
var g : int = 1;
fun bump() { g = g + 10; }
fun main() {
  var a : int = g;
  bump();
  sink(a + g);
}
|}
  in
  check_preserves "call clobbers memory" Ilp_opt.Local_cse.run src

let test_cse_preserves () =
  check_preserves "local cse preserves" Ilp_opt.Local_cse.run simple_src

(* --- DCE --- *)

let test_dce_removes_dead () =
  let src =
    {|
fun main() {
  var dead1 : int = 1 + 2;
  var dead2 : int = dead1 * 3;
  sink(5);
}
|}
  in
  let p = compile_raw src in
  (* dead stores to locals stay (stores are not pure), but their pure
     feeding computations go once CSE/copyprop expose them; here we
     check DCE on a pure chain via cse first *)
  let cleaned = Ilp_opt.Local_cse.run p |> Ilp_opt.Dce.run in
  Alcotest.(check bool) "some code removed" true
    (static_count cleaned <= static_count p);
  Alcotest.check Helpers.value_testable "value" (Ilp_sim.Value.Int 5)
    (run_program cleaned)

let test_dce_keeps_stores_and_calls () =
  let src =
    {|
var g : int = 0;
fun effect() : int { g = g + 1; return 0; }
fun main() {
  var unused : int;
  unused = effect();
  unused = effect();
  sink(g);
}
|}
  in
  Alcotest.check Helpers.value_testable "calls kept"
    (Ilp_sim.Value.Int 2)
    (run_program (Ilp_opt.Dce.run (compile_raw src)))

let test_dce_preserves () =
  check_preserves "dce preserves" Ilp_opt.Dce.run simple_src

(* --- LICM --- *)

let licm_src =
  {|
var g : int = 10;
arr a : int[64];
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 64; i = i + 1) {
    a[i] = g * 3 + i;        # g*3 is invariant
  }
  for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
  sink(s);
}
|}

let test_licm_hoists () =
  let p = compile_raw licm_src |> Ilp_opt.Local_cse.run |> Ilp_opt.Dce.run in
  let before = static_count p in
  let hoisted = Ilp_opt.Licm.run p in
  (* static count grows slightly (preheader), dynamic count must shrink *)
  ignore before;
  let dyn prog =
    (Ilp_sim.Exec.run (finish Ilp_machine.Presets.base prog)).Ilp_sim.Exec
      .dyn_instrs
  in
  Alcotest.(check bool) "dynamic count shrinks" true (dyn hoisted < dyn p);
  Alcotest.check Helpers.value_testable "semantics" (run_program p)
    (run_program hoisted)

let test_licm_zero_trip () =
  (* a loop that never runs: hoisted scalar loads must not fault *)
  let src =
    {|
var g : int = 2;
fun main() {
  var i : int;
  var s : int = 0;
  var n : int = 0;
  for (i = 0; i < n; i = i + 1) { s = s + g; }
  sink(s);
}
|}
  in
  check_preserves "zero-trip loop" Ilp_opt.Licm.run src

let test_licm_respects_aliasing_stores () =
  (* the loop stores into a; loads of a must not be hoisted *)
  let src =
    {|
arr a : int[8];
fun main() {
  var i : int;
  a[0] = 1;
  for (i = 1; i < 8; i = i + 1) {
    a[i] = a[0] + i;
    a[0] = a[0] + 1;
  }
  sink(a[7] + a[0]);
}
|}
  in
  check_preserves "aliasing stores respected" Ilp_opt.Licm.run src

let test_licm_call_in_loop () =
  let src =
    {|
var g : int = 3;
fun bump() { g = g + 1; }
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 5; i = i + 1) {
    s = s + g * 2;   # g*2 not invariant: bump() changes g
    bump();
  }
  sink(s);
}
|}
  in
  check_preserves "call blocks hoisting" Ilp_opt.Licm.run src

(* --- global CSE --- *)

let test_gcse_across_blocks () =
  let src =
    {|
fun main() {
  var x : int = 6;
  var a : int = x * 7;
  var b : int = 0;
  if (a > 10) { b = x * 7; } else { b = 1; }
  sink(a + b);
}
|}
  in
  check_preserves "gcse preserves" Ilp_opt.Global_cse.run src

let test_gcse_dominator_scoping () =
  (* an expression computed in one arm must not be reused in the other *)
  let src =
    {|
fun main() {
  var x : int = 6;
  var b : int = 0;
  if (x > 0) { b = x * 7; } else { b = x * 7 + 1; }
  sink(b);
}
|}
  in
  check_preserves "sibling scoping" Ilp_opt.Global_cse.run src

(* --- whole pipeline on a battery of small programs --- *)

let battery =
  [ ("arith", "fun main() { sink((1 + 2) * (3 + 4) - 5 % 3); }", 19);
    ("logic", "fun main() { sink((12 & 10) | (1 << 4) ^ 3); }", 27);
    ("shortcircuit",
     {|
var calls : int = 0;
fun t() : int { calls = calls + 1; return 1; }
fun main() {
  var x : int = 0;
  if (x != 0 && t() == 1) { x = 99; }
  if (x == 0 || t() == 2) { x = x + 1; }
  sink(x * 100 + calls);
}
|},
     100);
    ("nested-calls",
     {|
fun add3(a: int, b: int, c: int) : int { return a + b + c; }
fun main() { sink(add3(add3(1,2,3), add3(4,5,6), 7)); }
|},
     28);
    ("recursion",
     {|
fun ack(m: int, n: int) : int {
  if (m == 0) { return n + 1; }
  if (n == 0) { return ack(m - 1, 1); }
  return ack(m - 1, ack(m, n - 1));
}
fun main() { sink(ack(2, 3)); }
|},
     9);
    ("while-break-style",
     {|
fun main() {
  var n : int = 27;
  var steps : int = 0;
  while (n != 1) {
    if (n % 2 == 0) { n = n / 2; } else { n = 3 * n + 1; }
    steps = steps + 1;
  }
  sink(steps);
}
|},
     111) ]

let test_battery_all_levels () =
  List.iter
    (fun (name, src, expected) ->
      List.iter
        (fun level ->
          let v = Helpers.sink_of ~level src in
          Alcotest.check Helpers.value_testable
            (Printf.sprintf "%s @ %s" name (Ilp_core.Ilp.opt_level_name level))
            (Ilp_sim.Value.Int expected) v)
        Ilp_core.Ilp.all_levels)
    battery

let tests =
  [ Alcotest.test_case "const fold folds" `Quick test_const_fold_folds;
    Alcotest.test_case "strength reduction" `Quick test_const_fold_strength_reduction;
    Alcotest.test_case "division guard" `Quick test_const_fold_division_guard;
    Alcotest.test_case "const fold preserves" `Quick test_const_fold_preserves;
    Alcotest.test_case "const fold float" `Quick test_const_fold_float;
    Alcotest.test_case "cse removes loads" `Quick test_cse_removes_redundant_loads;
    Alcotest.test_case "cse respects stores" `Quick test_cse_respects_stores;
    Alcotest.test_case "store forwarding" `Quick test_cse_store_forwarding;
    Alcotest.test_case "cse call clobbers" `Quick test_cse_call_clobbers;
    Alcotest.test_case "cse preserves" `Quick test_cse_preserves;
    Alcotest.test_case "dce removes dead" `Quick test_dce_removes_dead;
    Alcotest.test_case "dce keeps effects" `Quick test_dce_keeps_stores_and_calls;
    Alcotest.test_case "dce preserves" `Quick test_dce_preserves;
    Alcotest.test_case "licm hoists" `Quick test_licm_hoists;
    Alcotest.test_case "licm zero-trip" `Quick test_licm_zero_trip;
    Alcotest.test_case "licm aliasing" `Quick test_licm_respects_aliasing_stores;
    Alcotest.test_case "licm call in loop" `Quick test_licm_call_in_loop;
    Alcotest.test_case "gcse across blocks" `Quick test_gcse_across_blocks;
    Alcotest.test_case "gcse scoping" `Quick test_gcse_dominator_scoping;
    Alcotest.test_case "battery all levels" `Quick test_battery_all_levels ]
