(* The generic dataflow framework's instances (reaching definitions,
   definite assignment, available expressions, the lint suite on top of
   them) and the independent register-allocation verifier — including
   the injected-defect tests: a clobbered live range and a
   use-before-def must each be caught statically, with diagnostics
   naming function, block and instruction. *)

open Ilp_ir
open Ilp_machine
open Ilp_analysis

let r = Reg.phys
let l = Label.of_string

let contains s sub =
  let n = String.length s and m = String.length sub in
  let rec go i = i + m <= n && (String.sub s i m = sub || go (i + 1)) in
  go 0

(* a diamond where [assign_right] controls whether the right arm also
   defines [v] *)
let diamond_with ~assign_right v =
  let use =
    Instr.make Opcode.Add ~dst:(r 5) ~srcs:[ Instr.Oreg v; Instr.Oimm 1 ]
  in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry")
          [ Builder.li (r 4) 1; Builder.beq (r 4) (r 4) (l "right") ];
        Block.make (l "left")
          [ Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm 7 ];
            Builder.jmp (l "join") ];
        Block.make (l "right")
          (if assign_right then
             [ Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm 9 ] ]
           else [ Builder.li (r 6) 9 ]);
        Block.make (l "join") [ use; Builder.halt () ] ]
  in
  (f, use)

(* --- reaching definitions ------------------------------------------------ *)

let test_reach_defs_diamond () =
  let v = Reg.virt () in
  let f, _ = diamond_with ~assign_right:true v in
  let cfg = Cfg_info.build f in
  let sol = Reach_defs.compute cfg in
  Alcotest.(check int) "two defs of v reach the join" 2
    (List.length (Reach_defs.reaching_ids sol 3 v));
  Alcotest.(check int) "no defs of v reach the entry" 0
    (List.length (Reach_defs.reaching_ids sol 0 v))

let test_reach_defs_kill () =
  (* a redefinition kills the earlier site within one path *)
  let v = Reg.virt () in
  let d1 = Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm 1 ] in
  let d2 = Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm 2 ] in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "a") [ d1; d2 ];
        Block.make (l "b")
          [ Instr.make Opcode.Add ~dst:(r 5)
              ~srcs:[ Instr.Oreg v; Instr.Oimm 1 ];
            Builder.halt () ] ]
  in
  let sol = Reach_defs.compute (Cfg_info.build f) in
  Alcotest.(check (list int)) "only the later def survives"
    [ d2.Instr.id ]
    (Reach_defs.reaching_ids sol 1 v)

(* --- definite assignment ------------------------------------------------- *)

let test_def_assign_clean () =
  let v = Reg.virt () in
  let f, _ = diamond_with ~assign_right:true v in
  Alcotest.(check int) "no errors when both arms assign" 0
    (List.length (Def_assign.errors (Cfg_info.build f)))

let test_def_assign_catches_use_before_def () =
  (* injected defect: the right arm skips the assignment, so some path
     reaches the use with [v] unassigned — caught statically, locating
     function, block and instruction *)
  let v = Reg.virt () in
  let f, use = diamond_with ~assign_right:false v in
  match Def_assign.errors (Cfg_info.build f) with
  | [ e ] ->
      Alcotest.(check int) "error in the join block" 3 e.Def_assign.block;
      Alcotest.(check int) "error at the use" use.Instr.id
        e.Def_assign.instr.Instr.id;
      Alcotest.(check bool) "error names v" true
        (Reg.equal v e.Def_assign.reg)
  | es ->
      Alcotest.failf "expected exactly one use-before-def error, got %d"
        (List.length es)

let test_def_assign_unreachable_is_univ () =
  let v = Reg.virt () in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry") [ Builder.li (r 4) 1; Builder.jmp (l "exit") ];
        Block.make (l "orphan")
          [ Instr.make Opcode.Add ~dst:(r 5)
              ~srcs:[ Instr.Oreg v; Instr.Oimm 1 ];
            Builder.jmp (l "exit") ];
        Block.make (l "exit") [ Builder.halt () ] ]
  in
  let cfg = Cfg_info.build f in
  let sol = Def_assign.compute cfg in
  Alcotest.(check bool) "unreachable block keeps Univ" true
    (sol.Dataflow.inb.(1) = Def_assign.M.Univ);
  Alcotest.(check int) "uses in unreachable code are not flagged" 0
    (List.length (Def_assign.errors cfg))

(* --- available expressions ----------------------------------------------- *)

let avail_diamond ~both_arms =
  let a = Reg.virt () and t1 = Reg.virt () and t2 = Reg.virt () in
  let compute dst =
    Instr.make Opcode.Add ~dst ~srcs:[ Instr.Oreg a; Instr.Oimm 1 ]
  in
  let recompute = compute (Reg.virt ()) in
  ( Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry")
          [ Instr.make Opcode.Li ~dst:a ~srcs:[ Instr.Oimm 5 ];
            Builder.li (r 4) 1;
            Builder.beq (r 4) (r 4) (l "right") ];
        Block.make (l "left") [ compute t1; Builder.jmp (l "join") ];
        Block.make (l "right")
          (if both_arms then [ compute t2 ] else [ Builder.li (r 6) 0 ]);
        Block.make (l "join") [ recompute; Builder.halt () ] ],
    recompute )

let test_avail_exprs_redundant_on_diamond () =
  let f, recompute = avail_diamond ~both_arms:true in
  match Avail_exprs.redundant (Cfg_info.build f) with
  | [ hit ] ->
      Alcotest.(check int) "recomputation at the join flagged" recompute.Instr.id
        hit.Avail_exprs.instr.Instr.id;
      Alcotest.(check int) "in the join block" 3 hit.Avail_exprs.block
  | hits -> Alcotest.failf "expected one redundancy, got %d" (List.length hits)

let test_avail_exprs_must_not_may () =
  (* available on one path only: not redundant *)
  let f, _ = avail_diamond ~both_arms:false in
  Alcotest.(check int) "one-armed expression is not available" 0
    (List.length (Avail_exprs.redundant (Cfg_info.build f)))

let test_avail_exprs_killed_by_redefinition () =
  let a = Reg.virt () in
  let compute () =
    Instr.make Opcode.Add ~dst:(Reg.virt ())
      ~srcs:[ Instr.Oreg a; Instr.Oimm 1 ]
  in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "b")
          [ Instr.make Opcode.Li ~dst:a ~srcs:[ Instr.Oimm 5 ];
            compute ();
            Instr.make Opcode.Li ~dst:a ~srcs:[ Instr.Oimm 6 ];
            compute ();
            Builder.halt () ] ]
  in
  Alcotest.(check int) "redefining a source kills the expression" 0
    (List.length (Avail_exprs.redundant (Cfg_info.build f)))

(* --- instruction-level liveness ------------------------------------------ *)

let test_instr_live_out () =
  let v1 = Reg.virt () and v2 = Reg.virt () in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "b")
          [ Instr.make Opcode.Li ~dst:v1 ~srcs:[ Instr.Oimm 1 ];
            Instr.make Opcode.Li ~dst:v2 ~srcs:[ Instr.Oimm 2 ];
            Instr.make Opcode.Add ~dst:(r 5)
              ~srcs:[ Instr.Oreg v1; Instr.Oreg v2 ];
            Builder.halt () ] ]
  in
  let cfg = Cfg_info.build f in
  let live = Liveness.compute cfg in
  let after = Liveness.instr_live_out cfg live 0 in
  Alcotest.(check bool) "v1 live after its def" true (Reg.Set.mem v1 after.(0));
  Alcotest.(check bool) "v2 not yet live after v1's def" false
    (Reg.Set.mem v2 after.(0));
  Alcotest.(check bool) "both live after v2's def" true
    (Reg.Set.mem v1 after.(1) && Reg.Set.mem v2 after.(1));
  Alcotest.(check bool) "dead after the add" true
    (Reg.Set.is_empty after.(2))

(* --- lint and diagnostics ------------------------------------------------ *)

let test_lint_dead_code_and_unreachable () =
  let dead = Reg.virt () in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry")
          [ Instr.make Opcode.Li ~dst:dead ~srcs:[ Instr.Oimm 3 ];
            Builder.jmp (l "exit") ];
        Block.make (l "orphan") [ Builder.li (r 4) 0; Builder.jmp (l "exit") ];
        Block.make (l "exit") [ Builder.halt () ] ]
  in
  let ds = Lint.check_func f in
  let by check =
    List.filter (fun d -> String.equal d.Diagnostics.check check) ds
  in
  Alcotest.(check int) "one dead-code warning" 1 (List.length (by "dead-code"));
  Alcotest.(check int) "one unreachable warning" 1
    (List.length (by "unreachable"));
  Alcotest.(check int) "no errors" 0 (List.length (Diagnostics.errors ds));
  match by "unreachable" with
  | [ d ] ->
      Alcotest.(check (option string)) "warning names the orphan block"
        (Some "orphan") d.Diagnostics.block
  | _ -> Alcotest.fail "unreachable warning missing"

let test_lint_use_before_def_diagnostic () =
  (* the statically caught use-before-def carries a full location *)
  let v = Reg.virt () in
  let f, use = diamond_with ~assign_right:false v in
  match Diagnostics.errors (Lint.check_func f) with
  | [ d ] ->
      Alcotest.(check bool) "severity error" true (Diagnostics.is_error d);
      Alcotest.(check string) "check name" "def-assign" d.Diagnostics.check;
      Alcotest.(check string) "function named" "main" d.Diagnostics.func;
      Alcotest.(check (option string)) "block named" (Some "join")
        d.Diagnostics.block;
      Alcotest.(check (option string)) "instruction named"
        (Some (Instr.to_string use))
        d.Diagnostics.instr
  | ds -> Alcotest.failf "expected one error, got %d" (List.length ds)

let test_diagnostics_render_stable () =
  let d1 = Diagnostics.make Diagnostics.Warning ~check:"z" ~func:"f" "later" in
  let d2 =
    Diagnostics.make Diagnostics.Error ~check:"a" ~func:"f" ~block:"b" "first"
  in
  let rendered = Diagnostics.render [ d1; d2 ] in
  let rendered' = Diagnostics.render [ d2; d1 ] in
  Alcotest.(check string) "order-independent rendering" rendered rendered';
  Alcotest.(check bool) "errors sort first" true
    (String.length rendered > 5 && String.sub rendered 0 5 = "error")

(* --- register-allocation verifier ---------------------------------------- *)

let clobber_pair ~good =
  (* v1 and v2 are simultaneously live; a correct allocation separates
     them, the injected defect folds both onto r4 *)
  let v1 = Reg.virt () and v2 = Reg.virt () and v3 = Reg.virt () in
  let i2 = Instr.make Opcode.Li ~dst:v2 ~srcs:[ Instr.Oimm 2 ] in
  let before =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry")
          [ Instr.make Opcode.Li ~dst:v1 ~srcs:[ Instr.Oimm 1 ];
            i2;
            Instr.make Opcode.Add ~dst:v3
              ~srcs:[ Instr.Oreg v1; Instr.Oreg v2 ];
            Builder.halt () ] ]
  in
  let assign x =
    if Reg.equal x v1 then r 4
    else if Reg.equal x v2 then if good then r 5 else r 4
    else if Reg.equal x v3 then r 4
    else x
  in
  let after =
    Func.map_blocks
      (fun b ->
        Block.make b.Block.label
          (List.map
             (fun i -> Instr.map_dst assign (Instr.map_src_regs assign i))
             b.Block.instrs))
      before
  in
  (before, after, i2)

let test_regalloc_verify_accepts_good_assignment () =
  let before, after, _ = clobber_pair ~good:true in
  Alcotest.(check int) "clean allocation passes" 0
    (List.length
       (Ilp_regalloc.Regalloc_verify.check_temp_alloc Presets.base ~before
          ~after))

let test_regalloc_verify_catches_clobber () =
  (* injected defect: both live values on r4 — caught statically, the
     diagnostic naming function, block and the clobbering instruction *)
  let before, after, i2 = clobber_pair ~good:false in
  let ds =
    Ilp_regalloc.Regalloc_verify.check_temp_alloc Presets.base ~before ~after
  in
  Alcotest.(check bool) "at least one error" true (ds <> []);
  let d = List.hd ds in
  Alcotest.(check string) "check name" "temp-alloc" d.Diagnostics.check;
  Alcotest.(check string) "function named" "main" d.Diagnostics.func;
  Alcotest.(check (option string)) "block named" (Some "entry")
    d.Diagnostics.block;
  Alcotest.(check (option string)) "clobbering def named"
    (Some (Instr.to_string i2))
    d.Diagnostics.instr

let test_regalloc_verify_partition_bound () =
  (* an assignment outside the temp pool is flagged even when no
     clobbering occurs *)
  let config = Config.make "tiny" ~temp_regs:2 in
  let v = Reg.virt () in
  let before =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry")
          [ Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm 1 ];
            Instr.make Opcode.Add ~dst:(r 4)
              ~srcs:[ Instr.Oreg v; Instr.Oimm 1 ];
            Builder.halt () ] ]
  in
  let out_of_pool = r (Ilp_regalloc.Regfile.home_base config) in
  let assign x = if Reg.equal x v then out_of_pool else x in
  let after =
    Func.map_blocks
      (fun b ->
        Block.make b.Block.label
          (List.map
             (fun i -> Instr.map_dst assign (Instr.map_src_regs assign i))
             b.Block.instrs))
      before
  in
  let ds =
    Ilp_regalloc.Regalloc_verify.check_temp_alloc config ~before ~after
  in
  Alcotest.(check bool) "partition violation flagged" true
    (List.exists
       (fun d -> contains d.Diagnostics.message "outside the temp partition")
       ds)

let test_regalloc_verify_recursive_home_caught () =
  (* injected defect: a local of a self-recursive function promoted to a
     home register — the recursive instance would clobber its caller *)
  let slot_mem =
    Mem_info.make (Mem_info.Stack_slot ("f", 0)) (Mem_info.Const 0)
  in
  let store =
    Builder.st ~mem:slot_mem ~value:(r 5) ~base:Reg.sp ~offset:0 ()
  in
  (* every instruction except the promoted store is the same value in
     [before] and [after], so its id is preserved as a real allocator
     rewrite would *)
  let li5 = Builder.li (r 5) 1 in
  let callf = Builder.call (l "f") in
  let retf = Builder.ret () in
  let main_fn =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "main") [ Builder.call (l "f"); Builder.halt () ] ]
  in
  let func_of body =
    Func.make ~name:"f" ~frame_size:1 ~n_params:0 [ Block.make (l "f") body ]
  in
  let before =
    Program.make ~globals:[]
      ~functions:[ func_of [ li5; store; callf; retf ]; main_fn ]
  in
  let home = r (Ilp_regalloc.Regfile.home_base Presets.base) in
  let promoted = Builder.mov home (r 5) in
  let after =
    Program.make ~globals:[]
      ~functions:[ func_of [ li5; promoted; callf; retf ]; main_fn ]
  in
  let ds =
    Ilp_regalloc.Regalloc_verify.check_global_alloc Presets.base ~before
      ~after
  in
  match ds with
  | [ d ] ->
      Alcotest.(check string) "function named" "f" d.Diagnostics.func;
      Alcotest.(check bool) "cycle named in the message" true
        (contains d.Diagnostics.message "call-graph cycle")
  | _ ->
      Alcotest.failf "expected exactly one error, got: %s"
        (Diagnostics.render ds)

let test_cyclic_functions () =
  let fn name body = Func.make ~name ~frame_size:0 ~n_params:0 body in
  let p =
    Program.make ~globals:[]
      ~functions:
        [ fn "even"
            [ Block.make (l "even") [ Builder.call (l "odd"); Builder.ret () ] ];
          fn "odd"
            [ Block.make (l "odd") [ Builder.call (l "even"); Builder.ret () ] ];
          fn "leaf" [ Block.make (l "leaf") [ Builder.ret () ] ];
          fn "main"
            [ Block.make (l "main") [ Builder.call (l "even"); Builder.halt () ] ]
        ]
  in
  let cyclic = Ilp_regalloc.Regalloc_verify.cyclic_functions p in
  Alcotest.(check bool) "mutual recursion detected" true
    (cyclic "even" && cyclic "odd");
  Alcotest.(check bool) "leaf and main are acyclic" false
    (cyclic "leaf" || cyclic "main")

(* --- the allocators pass their own verifier on every workload ------------ *)

let test_workload_allocations_verify () =
  (* compile ~check runs Regalloc_verify at both allocator seams; the
     sweep covers every workload on several presets and unroll factors *)
  let configs =
    [ Presets.base; Presets.multititan; Presets.cray1 ();
      Presets.superscalar 4 ]
  in
  List.iter
    (fun w ->
      List.iter
        (fun config ->
          List.iter
            (fun factor ->
              let unroll =
                if factor = 1 then None
                else
                  Some
                    { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Naive; factor;
                      bounds = false }
              in
              ignore
                (Ilp_core.Ilp.compile ?unroll ~check:true
                   ~level:Ilp_core.Ilp.O4 config
                   w.Ilp_workloads.Workload.source))
            [ 1; 3 ])
        configs)
    Ilp_workloads.Registry.all

let tests =
  [ Alcotest.test_case "reaching defs on a diamond" `Quick
      test_reach_defs_diamond;
    Alcotest.test_case "reaching defs kill" `Quick test_reach_defs_kill;
    Alcotest.test_case "definite assignment clean" `Quick
      test_def_assign_clean;
    Alcotest.test_case "use-before-def caught statically" `Quick
      test_def_assign_catches_use_before_def;
    Alcotest.test_case "unreachable blocks stay Univ" `Quick
      test_def_assign_unreachable_is_univ;
    Alcotest.test_case "available exprs: redundant on diamond" `Quick
      test_avail_exprs_redundant_on_diamond;
    Alcotest.test_case "available exprs: must not may" `Quick
      test_avail_exprs_must_not_may;
    Alcotest.test_case "available exprs: killed by redefinition" `Quick
      test_avail_exprs_killed_by_redefinition;
    Alcotest.test_case "instruction-level live-out" `Quick test_instr_live_out;
    Alcotest.test_case "lint: dead code and unreachable" `Quick
      test_lint_dead_code_and_unreachable;
    Alcotest.test_case "lint: use-before-def diagnostic" `Quick
      test_lint_use_before_def_diagnostic;
    Alcotest.test_case "diagnostics render stably" `Quick
      test_diagnostics_render_stable;
    Alcotest.test_case "regalloc verify: good assignment" `Quick
      test_regalloc_verify_accepts_good_assignment;
    Alcotest.test_case "regalloc verify: clobber caught statically" `Quick
      test_regalloc_verify_catches_clobber;
    Alcotest.test_case "regalloc verify: partition bound" `Quick
      test_regalloc_verify_partition_bound;
    Alcotest.test_case "regalloc verify: recursive home caught" `Quick
      test_regalloc_verify_recursive_home_caught;
    Alcotest.test_case "call-graph cycles (Tarjan)" `Quick
      test_cyclic_functions;
    Alcotest.test_case "workload allocations verify" `Slow
      test_workload_allocations_verify ]
