(* QCheck wrapper around the shared random-MiniMod generator.

   The generator itself — AST, rendering, generation and shrinking —
   lives in Ilp_lang.Gen_prog so that the standalone fuzzer ([ilp fuzz])
   and the property tests draw from the same definition of "random
   program".  Here it only gets adapted to QCheck2: generation from
   QCheck's random state, shrinking via Gen_prog.shrink_step. *)

open QCheck2

let prog : Ilp_lang.Gen_prog.prog Gen.t =
  Gen.make_primitive ~gen:Ilp_lang.Gen_prog.generate
    ~shrink:Ilp_lang.Gen_prog.shrink_step

let program : string Gen.t = Gen.map Ilp_lang.Gen_prog.render prog

(* The unrolling-adversarial mode: boundary trip counts around the
   checked factors, down-counting and inclusive headers, degenerate
   directions, index self-assignment, unknown scalar bounds. *)
let unroll_heavy_prog : Ilp_lang.Gen_prog.prog Gen.t =
  Gen.make_primitive
    ~gen:(Ilp_lang.Gen_prog.generate ~mode:`Unroll_heavy)
    ~shrink:Ilp_lang.Gen_prog.shrink_step

let unroll_heavy_program : string Gen.t =
  Gen.map Ilp_lang.Gen_prog.render unroll_heavy_prog

(* The aliasing-adversarial mode: affine indices over shared index
   locals, copies, small offsets before the mask. *)
let alias_heavy_prog : Ilp_lang.Gen_prog.prog Gen.t =
  Gen.make_primitive
    ~gen:(Ilp_lang.Gen_prog.generate ~mode:`Alias_heavy)
    ~shrink:Ilp_lang.Gen_prog.shrink_step

let alias_heavy_program : string Gen.t =
  Gen.map Ilp_lang.Gen_prog.render alias_heavy_prog

(* The range-adversarial mode: stride-2/3 index arithmetic, split array
   windows, near-extent loop bounds, widening-stressing accumulators. *)
let range_heavy_prog : Ilp_lang.Gen_prog.prog Gen.t =
  Gen.make_primitive
    ~gen:(Ilp_lang.Gen_prog.generate ~mode:`Range_heavy)
    ~shrink:Ilp_lang.Gen_prog.shrink_step

let range_heavy_program : string Gen.t =
  Gen.map Ilp_lang.Gen_prog.render range_heavy_prog
