(* A QCheck generator of random, well-typed, terminating, fault-free
   MiniMod programs, used for differential testing: whatever the program
   computes, every optimization level and machine configuration must
   compute the same thing.

   Safety by construction:
   - array subscripts are masked (& (size-1)) with power-of-two sizes,
     so they are always in range;
   - divisors and modulus operands are (expr & mask) + positive-constant,
     never zero;
   - loops are bounded counted loops, never while, so everything
     terminates;
   - a bounded number of calls to at most two straight-line helper
     functions, so there is no unbounded recursion. *)

open QCheck2

type ctx = {
  int_vars : string list;  (** readable scalars *)
  writable : string list;  (** assignable scalars (excludes live loop vars) *)
  arrays : (string * int) list;  (** name, power-of-two size *)
}

let arr_words = 16

(* --- integer expressions ------------------------------------------------ *)

let rec int_expr ctx depth : string Gen.t =
  let open Gen in
  if depth = 0 then int_leaf ctx
  else
    frequency
      [ (2, int_leaf ctx);
        (3, int_binop ctx depth);
        (1, int_div_mod ctx depth);
        (1, map (Printf.sprintf "(-%s)") (int_expr ctx (depth - 1)));
        (1, int_comparison ctx depth);
        (1, array_read ctx depth) ]

and int_leaf ctx =
  let open Gen in
  let consts = map string_of_int (int_range 0 64) in
  match ctx.int_vars with
  | [] -> consts
  | vars -> oneof [ consts; oneofl vars ]

and int_binop ctx depth =
  let open Gen in
  let* op = oneofl [ "+"; "-"; "*"; "&"; "|"; "^" ] in
  let* a = int_expr ctx (depth - 1) in
  let* b = int_expr ctx (depth - 1) in
  return (Printf.sprintf "(%s %s %s)" a op b)

and int_div_mod ctx depth =
  let open Gen in
  let* op = oneofl [ "/"; "%" ] in
  let* a = int_expr ctx (depth - 1) in
  let* b = int_expr ctx (depth - 1) in
  let* k = int_range 1 9 in
  (* divisor = (b & 7) + k, always in [k, k+7] and nonzero *)
  return (Printf.sprintf "(%s %s ((%s & 7) + %d))" a op b k)

and int_comparison ctx depth =
  let open Gen in
  let* op = oneofl [ "=="; "!="; "<"; "<="; ">"; ">=" ] in
  let* a = int_expr ctx (depth - 1) in
  let* b = int_expr ctx (depth - 1) in
  return (Printf.sprintf "(%s %s %s)" a op b)

and array_read ctx depth =
  let open Gen in
  match ctx.arrays with
  | [] -> int_leaf ctx
  | arrays ->
      let* name, size = oneofl arrays in
      let* idx = int_expr ctx (depth - 1) in
      return (Printf.sprintf "%s[(%s) & %d]" name idx (size - 1))

(* --- conditions ---------------------------------------------------------- *)

let condition ctx : string Gen.t =
  let open Gen in
  let* shape = int_range 0 3 in
  let* a = int_expr ctx 1 in
  let* b = int_expr ctx 1 in
  match shape with
  | 0 -> return (Printf.sprintf "(%s) < (%s)" a b)
  | 1 -> return (Printf.sprintf "(%s) == (%s)" a b)
  | 2 ->
      let* c = int_expr ctx 1 in
      return (Printf.sprintf "(%s) < (%s) && (%s) != 0" a b c)
  | _ ->
      let* c = int_expr ctx 1 in
      return (Printf.sprintf "(%s) >= (%s) || (%s) > 3" a b c)

(* --- statements ----------------------------------------------------------- *)

let assign ctx : string Gen.t =
  let open Gen in
  match ctx.writable with
  | [] -> return ""
  | vars ->
      let* v = oneofl vars in
      let* e = int_expr ctx 2 in
      return (Printf.sprintf "%s = %s;" v e)

let array_write ctx : string Gen.t =
  let open Gen in
  match ctx.arrays with
  | [] -> assign ctx
  | arrays ->
      let* name, size = oneofl arrays in
      let* idx = int_expr ctx 1 in
      let* e = int_expr ctx 2 in
      return (Printf.sprintf "%s[(%s) & %d] = %s;" name idx (size - 1) e)

let rec stmt ctx depth loop_vars : string Gen.t =
  let open Gen in
  if depth = 0 then oneof [ assign ctx; array_write ctx ]
  else
    frequency
      [ (4, assign ctx);
        (3, array_write ctx);
        (2, if_stmt ctx depth loop_vars);
        (2, for_stmt ctx depth loop_vars) ]

and block ctx depth loop_vars : string Gen.t =
  let open Gen in
  let* n = int_range 1 4 in
  let* stmts = list_repeat n (stmt ctx (depth - 1) loop_vars) in
  return (String.concat "\n    " stmts)

and if_stmt ctx depth loop_vars =
  let open Gen in
  let* cond = condition ctx in
  let* then_ = block ctx depth loop_vars in
  let* has_else = bool in
  if has_else then
    let* else_ = block ctx depth loop_vars in
    return (Printf.sprintf "if (%s) {\n    %s\n  } else {\n    %s\n  }" cond then_ else_)
  else return (Printf.sprintf "if (%s) {\n    %s\n  }" cond then_)

and for_stmt ctx depth loop_vars =
  let open Gen in
  match loop_vars with
  | [] -> assign ctx
  | lv :: rest ->
      let* trips = int_range 1 12 in
      (* the loop variable is readable in the body but never assignable,
         so the loop always terminates *)
      let ctx' = { ctx with int_vars = lv :: ctx.int_vars } in
      let* body = block ctx' depth rest in
      return
        (Printf.sprintf "for (%s = 0; %s < %d; %s = %s + 1) {\n    %s\n  }" lv
           lv trips lv lv body)

(* --- whole program --------------------------------------------------------- *)

let program : string Gen.t =
  let open Gen in
  let* n_globals = int_range 1 3 in
  let* n_locals = int_range 1 3 in
  let* n_arrays = int_range 1 2 in
  let globals = List.init n_globals (fun i -> Printf.sprintf "g%d" i) in
  let locals = List.init n_locals (fun i -> Printf.sprintf "x%d" i) in
  let arrays = List.init n_arrays (fun i -> (Printf.sprintf "a%d" i, arr_words)) in
  let* g_inits = list_repeat n_globals (int_range 0 20) in
  let* l_inits = list_repeat n_locals (int_range 0 20) in
  let ctx = { int_vars = globals @ locals; writable = globals @ locals; arrays } in
  let loop_vars = [ "i"; "j" ] in
  (* helper function called from main *)
  let* helper_body =
    int_expr { int_vars = [ "p"; "q" ]; writable = []; arrays = [] } 2
  in
  let* n_stmts = int_range 2 6 in
  let* stmts = list_repeat n_stmts (stmt ctx 2 loop_vars) in
  let* call_helper = bool in
  let buf = Buffer.create 512 in
  List.iteri
    (fun i g ->
      Buffer.add_string buf
        (Printf.sprintf "var %s : int = %d;\n" g (List.nth g_inits i)))
    globals;
  List.iter
    (fun (a, size) ->
      Buffer.add_string buf (Printf.sprintf "arr %s : int[%d];\n" a size))
    arrays;
  Buffer.add_string buf
    (Printf.sprintf "fun helper(p: int, q: int) : int { return %s; }\n"
       helper_body);
  Buffer.add_string buf "fun main() {\n";
  List.iteri
    (fun i x ->
      Buffer.add_string buf
        (Printf.sprintf "  var %s : int = %d;\n" x (List.nth l_inits i)))
    locals;
  Buffer.add_string buf "  var i : int = 0;\n  var j : int = 0;\n";
  List.iter
    (fun s -> Buffer.add_string buf ("  " ^ s ^ "\n"))
    stmts;
  if call_helper then
    Buffer.add_string buf
      (Printf.sprintf "  %s = helper(%s, %s);\n" (List.hd locals)
         (List.hd ctx.int_vars)
         (List.nth ctx.int_vars (List.length ctx.int_vars - 1)));
  (* observable result: mix everything into the sink *)
  let mix =
    String.concat " + "
      (List.map (fun v -> v) (globals @ locals)
      @ List.concat_map
          (fun (a, _) -> [ a ^ "[0]"; a ^ "[7]"; a ^ "[15]" ])
          arrays
      @ [ "i"; "j" ])
  in
  Buffer.add_string buf (Printf.sprintf "  sink(%s);\n}\n" mix);
  return (Buffer.contents buf)
