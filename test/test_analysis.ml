(* Direct tests for the CFG analyses: construction, dominators, natural
   loops, and liveness — on hand-built control-flow shapes. *)

open Ilp_ir
open Ilp_analysis

let r = Reg.phys
let l = Label.of_string

(* a diamond:  entry -> (left | right) -> join *)
let diamond () =
  Func.make ~name:"main" ~frame_size:0 ~n_params:0
    [ Block.make (l "entry")
        [ Builder.li (r 4) 1; Builder.beq (r 4) (r 4) (l "right") ];
      Block.make (l "left") [ Builder.li (r 5) 2; Builder.jmp (l "join") ];
      Block.make (l "right") [ Builder.li (r 5) 3 ];
      Block.make (l "join") [ Builder.halt () ] ]

(* a loop:  entry -> header -> body -> header; header -> exit *)
let loop_shape () =
  Func.make ~name:"main" ~frame_size:0 ~n_params:0
    [ Block.make (l "entry") [ Builder.li (r 4) 0 ];
      Block.make (l "header")
        [ Builder.li (r 5) 10; Builder.bge (r 4) (r 5) (l "exit") ];
      Block.make (l "body")
        [ Builder.addi (r 4) (r 4) 1; Builder.jmp (l "header") ];
      Block.make (l "exit") [ Builder.halt () ] ]

let test_cfg_diamond () =
  let cfg = Cfg_info.build (diamond ()) in
  Alcotest.(check int) "four blocks" 4 (Cfg_info.n_blocks cfg);
  (* entry: fallthrough to left, branch to right *)
  Alcotest.(check (list int)) "entry succs" [ 1; 2 ] cfg.Cfg_info.succs.(0);
  Alcotest.(check (list int)) "left succs" [ 3 ] cfg.Cfg_info.succs.(1);
  Alcotest.(check (list int)) "right succs" [ 3 ] cfg.Cfg_info.succs.(2);
  Alcotest.(check (list int)) "join succs" [] cfg.Cfg_info.succs.(3);
  Alcotest.(check int) "join preds" 2 (List.length cfg.Cfg_info.preds.(3));
  Alcotest.(check bool) "all reachable" true
    (List.for_all (Cfg_info.reachable cfg) [ 0; 1; 2; 3 ])

let test_cfg_rpo () =
  let cfg = Cfg_info.build (diamond ()) in
  (* reverse postorder visits entry first and join last *)
  Alcotest.(check int) "entry first" 0 cfg.Cfg_info.rpo.(0);
  Alcotest.(check int) "join last" 3
    cfg.Cfg_info.rpo.(Array.length cfg.Cfg_info.rpo - 1)

let test_dominators_diamond () =
  let cfg = Cfg_info.build (diamond ()) in
  let dom = Dominators.compute cfg in
  Alcotest.(check int) "entry self-dominated" 0 dom.Dominators.idom.(0);
  Alcotest.(check int) "left idom entry" 0 dom.Dominators.idom.(1);
  Alcotest.(check int) "right idom entry" 0 dom.Dominators.idom.(2);
  Alcotest.(check int) "join idom entry (not a branch arm)" 0
    dom.Dominators.idom.(3);
  Alcotest.(check bool) "entry dominates all" true
    (List.for_all (Dominators.dominates dom 0) [ 0; 1; 2; 3 ]);
  Alcotest.(check bool) "left does not dominate join" false
    (Dominators.dominates dom 1 3);
  Alcotest.(check bool) "dominance is reflexive" true
    (Dominators.dominates dom 2 2)

let test_dominators_chain () =
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "a") [ Builder.li (r 4) 1 ];
        Block.make (l "b") [ Builder.li (r 5) 2 ];
        Block.make (l "c") [ Builder.halt () ] ]
  in
  let dom = Dominators.compute (Cfg_info.build f) in
  Alcotest.(check int) "b idom a" 0 dom.Dominators.idom.(1);
  Alcotest.(check int) "c idom b" 1 dom.Dominators.idom.(2);
  let kids = Dominators.children dom in
  Alcotest.(check (list int)) "a's dom children" [ 1 ] kids.(0);
  Alcotest.(check (list int)) "b's dom children" [ 2 ] kids.(1)

let test_loops_detects_natural_loop () =
  let cfg = Cfg_info.build (loop_shape ()) in
  let loops = Loops.compute cfg in
  Alcotest.(check int) "one loop" 1 (List.length loops.Loops.loops);
  (match loops.Loops.loops with
  | [ lp ] ->
      Alcotest.(check int) "header is block 1" 1 lp.Loops.header;
      Alcotest.(check (list int)) "body is header+body" [ 1; 2 ]
        (List.sort compare lp.Loops.body)
  | _ -> Alcotest.fail "expected one loop");
  Alcotest.(check int) "entry depth 0" 0 (Loops.depth loops 0);
  Alcotest.(check int) "header depth 1" 1 (Loops.depth loops 1);
  Alcotest.(check int) "body depth 1" 1 (Loops.depth loops 2);
  Alcotest.(check int) "exit depth 0" 0 (Loops.depth loops 3)

let test_loops_nested () =
  (* entry -> h1 -> h2 -> b2 -> h2 ; h2 -> l1latch -> h1 ; h1 -> exit *)
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry") [ Builder.li (r 4) 0 ];
        Block.make (l "h1")
          [ Builder.li (r 5) 3; Builder.bge (r 4) (r 5) (l "exit") ];
        Block.make (l "h2")
          [ Builder.li (r 6) 3; Builder.bge (r 4) (r 6) (l "l1latch") ];
        Block.make (l "b2")
          [ Builder.addi (r 4) (r 4) 1; Builder.jmp (l "h2") ];
        Block.make (l "l1latch")
          [ Builder.addi (r 4) (r 4) 1; Builder.jmp (l "h1") ];
        Block.make (l "exit") [ Builder.halt () ] ]
  in
  let loops = Loops.compute (Cfg_info.build f) in
  Alcotest.(check int) "two loops" 2 (List.length loops.Loops.loops);
  (* h2 and b2 are in both loops *)
  Alcotest.(check int) "inner blocks depth 2" 2 (Loops.depth loops 2);
  Alcotest.(check int) "outer-only blocks depth 1" 1 (Loops.depth loops 4);
  (* innermost first puts the smaller loop first *)
  match Loops.innermost_first loops with
  | inner :: _ ->
      Alcotest.(check int) "inner header is h2" 2 inner.Loops.header
  | [] -> Alcotest.fail "no loops"

let test_dominators_unreachable () =
  (* entry jumps straight to exit; orphan is never entered *)
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry") [ Builder.li (r 4) 1; Builder.jmp (l "exit") ];
        Block.make (l "orphan")
          [ Builder.li (r 5) 2; Builder.jmp (l "exit") ];
        Block.make (l "exit") [ Builder.halt () ] ]
  in
  let cfg = Cfg_info.build f in
  Alcotest.(check bool) "orphan unreachable" false (Cfg_info.reachable cfg 1);
  let dom = Dominators.compute cfg in
  Alcotest.(check int) "unreachable idom is -1" (-1) dom.Dominators.idom.(1);
  Alcotest.(check bool) "unreachable dominates nothing, not even itself"
    false
    (Dominators.dominates dom 1 1);
  Alcotest.(check bool) "unreachable does not dominate exit" false
    (Dominators.dominates dom 1 2);
  Alcotest.(check bool) "entry does not dominate the unreachable block"
    false
    (Dominators.dominates dom 0 1);
  Alcotest.(check int) "entry is its own idom" 0 dom.Dominators.idom.(0);
  Alcotest.(check bool) "entry self-dominates" true
    (Dominators.dominates dom 0 0);
  Alcotest.(check bool) "reachable dominance stays reflexive" true
    (Dominators.dominates dom 2 2);
  Alcotest.(check int) "exit idom skips the orphan" 0 dom.Dominators.idom.(2);
  let kids = Dominators.children dom in
  Alcotest.(check (list int)) "orphan has no dominator children" [] kids.(1)

let test_liveness_straightline () =
  let v1 = Reg.virt () and v2 = Reg.virt () in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "a")
          [ Instr.make Opcode.Li ~dst:v1 ~srcs:[ Instr.Oimm 1 ] ];
        Block.make (l "b")
          [ Instr.make Opcode.Add ~dst:v2
              ~srcs:[ Instr.Oreg v1; Instr.Oimm 2 ];
            Builder.halt () ] ]
  in
  let cfg = Cfg_info.build f in
  let live = Liveness.compute cfg in
  Alcotest.(check bool) "v1 live out of a" true
    (Reg.Set.mem v1 live.Liveness.live_out.(0));
  Alcotest.(check bool) "v1 live into b" true
    (Reg.Set.mem v1 live.Liveness.live_in.(1));
  Alcotest.(check bool) "v2 not live into b" false
    (Reg.Set.mem v2 live.Liveness.live_in.(1));
  Alcotest.(check bool) "nothing live into entry" true
    (Reg.Set.is_empty live.Liveness.live_in.(0))

let test_liveness_around_loop () =
  (* a value defined before a loop and used inside stays live around the
     back edge *)
  let v = Reg.virt () in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "entry")
          [ Instr.make Opcode.Li ~dst:v ~srcs:[ Instr.Oimm 7 ];
            Builder.li (r 4) 0 ];
        Block.make (l "header")
          [ Builder.li (r 5) 9; Builder.bge (r 4) (r 5) (l "exit") ];
        Block.make (l "body")
          [ Instr.make Opcode.Add ~dst:(r 6)
              ~srcs:[ Instr.Oreg v; Instr.Oreg (r 4) ];
            Builder.addi (r 4) (r 4) 1;
            Builder.jmp (l "header") ];
        Block.make (l "exit") [ Builder.halt () ] ]
  in
  let live = Liveness.compute (Cfg_info.build f) in
  Alcotest.(check bool) "live into header" true
    (Reg.Set.mem v live.Liveness.live_in.(1));
  Alcotest.(check bool) "live out of body (back edge)" true
    (Reg.Set.mem v live.Liveness.live_out.(2));
  Alcotest.(check bool) "dead at exit" false
    (Reg.Set.mem v live.Liveness.live_in.(3))

let test_locality () =
  let v_local = Reg.virt () and v_cross = Reg.virt () in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (l "a")
          [ Instr.make Opcode.Li ~dst:v_local ~srcs:[ Instr.Oimm 1 ];
            Instr.make Opcode.Add ~dst:v_cross
              ~srcs:[ Instr.Oreg v_local; Instr.Oimm 1 ] ];
        Block.make (l "b")
          [ Instr.make Opcode.Add ~dst:(r 5)
              ~srcs:[ Instr.Oreg v_cross; Instr.Oimm 1 ];
            Builder.halt () ] ]
  in
  let deletable = Locality.block_local_vregs f in
  Alcotest.(check bool) "block-local vreg deletable" true (deletable v_local);
  Alcotest.(check bool) "cross-block vreg not deletable" false
    (deletable v_cross);
  Alcotest.(check bool) "physical never deletable" false (deletable (r 5))

let tests =
  [ Alcotest.test_case "cfg diamond" `Quick test_cfg_diamond;
    Alcotest.test_case "cfg reverse postorder" `Quick test_cfg_rpo;
    Alcotest.test_case "dominators diamond" `Quick test_dominators_diamond;
    Alcotest.test_case "dominators chain" `Quick test_dominators_chain;
    Alcotest.test_case "natural loop detection" `Quick
      test_loops_detects_natural_loop;
    Alcotest.test_case "nested loops" `Quick test_loops_nested;
    Alcotest.test_case "dominators with unreachable blocks" `Quick
      test_dominators_unreachable;
    Alcotest.test_case "liveness straight line" `Quick
      test_liveness_straightline;
    Alcotest.test_case "liveness around loop" `Quick test_liveness_around_loop;
    Alcotest.test_case "locality" `Quick test_locality ]
