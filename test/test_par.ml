(* Domain-pool tests.

   Two layers: QCheck properties of [Ilp_par.Pool] itself (a map over
   the pool is indistinguishable from [Array.map], including which
   exception escapes), and a determinism suite asserting that the
   parallel sweep engine renders experiments byte-identically to the
   serial engine at every job count. *)

module Pool = Ilp_par.Pool
module Experiments = Ilp_core.Experiments

(* ------------------------------------------------------------------ *)
(* Pool properties                                                     *)

let prop_map_is_array_map =
  QCheck2.Test.make ~count:100
    ~name:"Pool.map = Array.map, order preserved (jobs 1-4)"
    ~print:QCheck2.Print.(pair int (list int))
    QCheck2.Gen.(pair (int_range 1 4) (list_size (int_bound 200) int))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let f x = (x * x) - (3 * x) in
      let expected = Array.map f xs in
      Pool.with_pool ~jobs (fun pool -> Pool.map pool f xs = expected))

exception Boom of int

let prop_lowest_index_exception =
  QCheck2.Test.make ~count:100
    ~name:"Pool.map raises the lowest-index worker exception"
    ~print:QCheck2.Print.(triple int int (list bool))
    QCheck2.Gen.(
      triple (int_range 1 4) (int_range 1 100)
        (list_size (int_range 1 100) bool))
    (fun (jobs, n, fail_flags) ->
      let fails = Array.of_list fail_flags in
      let n = max n (Array.length fails) in
      let first_failure = ref None in
      Array.iteri
        (fun i b -> if b && !first_failure = None then first_failure := Some i)
        fails;
      let f i =
        if i < Array.length fails && fails.(i) then raise (Boom i) else i
      in
      let items = Array.init n (fun i -> i) in
      let outcome =
        Pool.with_pool ~jobs (fun pool ->
            match Pool.map pool f items with
            | _ -> None
            | exception Boom i -> Some i)
      in
      outcome = !first_failure)

(* Chunked chains: item (v, k) takes k bounded steps, each adding 1, so
   the expected result is v + k — and every step count, including 0,
   must agree with the serial fold. *)
let prop_map_chunked =
  QCheck2.Test.make ~count:100
    ~name:"Pool.map_chunked = serial chain fold (jobs 1-4)"
    ~print:QCheck2.Print.(pair int (list (pair int int)))
    QCheck2.Gen.(
      pair (int_range 1 4)
        (list_size (int_bound 100) (pair small_int (int_bound 8))))
    (fun (jobs, xs) ->
      let xs = Array.of_list xs in
      let advance (acc, k) =
        if k = 0 then Pool.Done acc else Pool.More (acc + 1, k - 1)
      in
      let expected = Array.map (fun (v, k) -> v + k) xs in
      Pool.with_pool ~jobs (fun pool ->
          Pool.map_chunked pool ~start:advance ~step:advance xs = expected))

let qcheck_tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_map_is_array_map; prop_lowest_index_exception; prop_map_chunked ]

(* ------------------------------------------------------------------ *)
(* Pool unit tests                                                     *)

let test_map_reduce () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let xs = Array.init 50 (fun i -> i + 1) in
      Alcotest.(check int)
        "sum of squares 1..50" 42_925
        (Pool.map_reduce pool
           ~map:(fun x -> x * x)
           ~reduce:( + ) ~init:0 xs);
      (* a non-commutative reduce exposes any ordering violation *)
      Alcotest.(check string)
        "left fold in index order" "abcde"
        (Pool.map_reduce pool
           ~map:(fun c -> String.make 1 c)
           ~reduce:( ^ ) ~init:""
           [| 'a'; 'b'; 'c'; 'd'; 'e' |]))

let test_pool_reuse () =
  Pool.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "pool width" 4 (Pool.jobs pool);
      for round = 1 to 5 do
        let xs = Array.init (17 * round) (fun i -> i) in
        Alcotest.(check (array int))
          (Printf.sprintf "batch %d" round)
          (Array.map (fun x -> x + round) xs)
          (Pool.map pool (fun x -> x + round) xs)
      done;
      Alcotest.(check (array int)) "empty batch" [||]
        (Pool.map pool (fun x -> x) [||]))

let test_map_list () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check (list string))
        "map_list preserves order"
        [ "1"; "2"; "3" ]
        (Pool.map_list pool string_of_int [ 1; 2; 3 ]))

let test_shutdown_rejects_use () =
  let pool = Pool.create ~jobs:2 in
  Pool.shutdown pool;
  Pool.shutdown pool (* idempotent *);
  Alcotest.(check bool) "map after shutdown is an error" true
    (match Pool.map pool (fun x -> x) [| 1 |] with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_jobs_clamped () =
  Pool.with_pool ~jobs:0 (fun pool ->
      Alcotest.(check int) "jobs clamped to 1" 1 (Pool.jobs pool))

(* Nested batches on one pool used to deadlock (the inner batch waited
   for workers parked in the outer one); they must raise instead, and
   the pool must stay usable afterwards. *)
let test_nested_batch_rejected () =
  Pool.with_pool ~jobs:2 (fun pool ->
      Alcotest.(check bool) "nested map raises Invalid_argument" true
        (match
           Pool.map pool (fun x -> Pool.map pool (fun y -> y) [| x |]) [| 1 |]
         with
        | _ -> false
        | exception Invalid_argument _ -> true);
      Alcotest.(check (array int)) "pool still usable after rejection"
        [| 2; 4; 6 |]
        (Pool.map pool (fun x -> 2 * x) [| 1; 2; 3 |]))

(* Two failing items in one batch: with work stealing either may run
   first, but the lower index must win deterministically. *)
let test_two_raisers_lowest_wins () =
  Pool.with_pool ~jobs:4 (fun pool ->
      let f i = if i = 23 || i = 77 then raise (Boom i) else i in
      Alcotest.(check int) "lowest-index exception escapes" 23
        (match Pool.map pool f (Array.init 100 Fun.id) with
        | _ -> -1
        | exception Boom i -> i))

(* The same guarantee when the failure happens mid-chain in a chunked
   map, with every item several chunks long. *)
let test_chunked_failure_lowest_wins () =
  Pool.with_pool ~jobs:3 (fun pool ->
      let start i = Pool.More (i, 0) in
      let step (i, n) =
        if (i = 30 || i = 60) && n = 2 then raise (Boom i)
        else if n = 5 then Pool.Done i
        else Pool.More (i, n + 1)
      in
      Alcotest.(check int) "lowest-index chain failure escapes" 30
        (match Pool.map_chunked pool ~start ~step (Array.init 80 Fun.id) with
        | _ -> -1
        | exception Boom i -> i))

(* ------------------------------------------------------------------ *)
(* engine determinism: parallel sweeps render byte-identically          *)

let determinism_case (name, render) =
  Alcotest.test_case ("serial = jobs 1/2/4: " ^ name) `Slow (fun () ->
      let serial = Experiments.with_jobs 0 render in
      List.iter
        (fun jobs ->
          Alcotest.(check string)
            (Printf.sprintf "%s, jobs=%d" name jobs)
            serial
            (Experiments.with_jobs jobs render))
        [ 1; 2; 4 ])

let determinism_tests =
  List.map determinism_case
    [ ("fig4_1", Experiments.render_fig4_1);
      ("fig4_5", Experiments.render_fig4_5);
      ("ablation_class_conflicts", Experiments.render_ablation_class_conflicts)
    ]

let tests =
  qcheck_tests
  @ [ Alcotest.test_case "map_reduce" `Quick test_map_reduce;
      Alcotest.test_case "pool reuse across batches" `Quick test_pool_reuse;
      Alcotest.test_case "map_list" `Quick test_map_list;
      Alcotest.test_case "shutdown" `Quick test_shutdown_rejects_use;
      Alcotest.test_case "jobs clamped" `Quick test_jobs_clamped;
      Alcotest.test_case "nested batch rejected" `Quick
        test_nested_batch_rejected;
      Alcotest.test_case "two raisers: lowest index wins" `Quick
        test_two_raisers_lowest_wins;
      Alcotest.test_case "chunked failure: lowest index wins" `Quick
        test_chunked_failure_lowest_wins ]
  @ determinism_tests
