(* Value-range abstract interpretation: the interval x congruence
   product, the MiniMod subscript sanitizer, range-sharpened memory
   disambiguation, and static per-loop ILP bounds.

   The headline property at the end is dynamic soundness: on random
   programs (all four generator modes), every executed array subscript
   lies in the array's static index range and every value stored to a
   global int scalar lies in its static invariant range — checked
   against the actual dynamic stream of the compiled program. *)

open Ilp_machine
open Ilp_ir
module R = Ilp_analysis.Range
module A = Ilp_lang.Absint

(* --- domain algebra ---------------------------------------------------- *)

let test_interval_algebra () =
  let open R.Interval in
  let a = of_bounds (Fin 0) (Fin 10) and b = of_bounds (Fin 5) (Fin 20) in
  Alcotest.(check bool) "join keeps both" true
    (mem 0 (join a b) && mem 20 (join a b));
  Alcotest.(check bool) "meet is the overlap" true
    (mem 7 (meet a b) && not (mem 3 (meet a b)));
  (* widening jumps an unstable bound to infinity; narrowing pulls it
     back once the sequence stabilises *)
  let w = widen a (of_bounds (Fin 0) (Fin 11)) in
  Alcotest.(check bool) "widen blows the growing bound" true (mem 1000000 w);
  let n = narrow w (of_bounds (Fin 0) (Fin 11)) in
  Alcotest.(check bool) "narrow recovers the bound" true (not (mem 12 n))

let test_congruence_algebra () =
  let open R.Congruence in
  let odd = make 1 2 in
  Alcotest.(check bool) "odd members" true (mem 3 odd && not (mem 4 odd));
  let j = join (of_const 2) (of_const 6) in
  Alcotest.(check bool) "join of 2 and 6 divides by 4" true
    (mem 10 j && not (mem 4 j))

let test_product_strides () =
  (* (x & 15) * 2 [+ 1]: the shapes redblack and the range-heavy fuzz
     corpus hammer *)
  let masked = R.V.band R.V.top (R.V.of_const 15) in
  let even = R.V.mul masked (R.V.of_const 2) in
  let odd = R.V.add even (R.V.of_const 1) in
  Alcotest.(check bool) "even stride in [0,30]" true
    (R.V.mem 30 even && not (R.V.mem 31 even) && not (R.V.mem 3 even));
  Alcotest.(check bool) "odd stride excludes evens" true
    (R.V.mem 31 odd && not (R.V.mem 30 odd));
  Alcotest.(check bool) "even and odd are separated" true
    (R.V.separated even odd);
  Alcotest.(check bool) "difference excludes zero" true
    (R.V.excludes_zero (R.V.sub odd even));
  (* a full-extent mask over a value already inside it is the identity:
     congruence survives *)
  Alcotest.(check bool) "identity mask keeps the product" true
    (R.V.equal odd (R.V.band odd (R.V.of_const 31)))

let test_separated_windows () =
  let upper = R.V.add (R.V.of_const 8) (R.V.band R.V.top (R.V.of_const 7)) in
  let lower = R.V.band R.V.top (R.V.of_const 7) in
  Alcotest.(check bool) "windows separated" true (R.V.separated upper lower);
  Alcotest.(check bool) "window difference nonzero" true
    (R.V.excludes_zero (R.V.sub upper lower))

let test_of_counted () =
  let v = R.V.of_counted ~start:0 ~step:2 ~trips:5 in
  Alcotest.(check bool) "hits the lattice points" true
    (R.V.mem 0 v && R.V.mem 8 v);
  Alcotest.(check bool) "skips odd and beyond" true
    (not (R.V.mem 3 v) && not (R.V.mem 10 v))

(* --- the subscript sanitizer ------------------------------------------- *)

let analyze_src ?unroll src =
  let tast = Ilp_lang.Semant.compile_source src in
  let tast =
    match unroll with
    | Some { Ilp_core.Ilp.mode; factor; bounds } ->
        Ilp_lang.Unroll.program ~bounds mode factor tast
    | None -> tast
  in
  A.analyze tast

let test_sanitize_proves_oob () =
  let t =
    analyze_src
      {|
arr a : int[8];
fun main() {
  var i : int;
  for (i = 0; i < 4; i = i + 1) { a[8 + (i & 3)] = i; }
  sink(a[0]);
}
|}
  in
  let _, oob, _ = A.counts t in
  Alcotest.(check bool) "the overrunning store is proved oob" true (oob >= 1);
  (* an overlapping range is only Unknown, never Proved_oob *)
  let t2 =
    analyze_src
      {|
arr a : int[8];
fun main() {
  var i : int;
  for (i = 0; i < 12; i = i + 1) { a[i] = i; }
  sink(a[0]);
}
|}
  in
  let _, oob2, unknown2 = A.counts t2 in
  Alcotest.(check int) "overlap is not proved oob" 0 oob2;
  Alcotest.(check bool) "overlap is flagged unknown" true (unknown2 >= 1)

let test_sanitize_proves_safe () =
  let t =
    analyze_src
      {|
arr a : int[32];
fun main() {
  var i : int;
  for (i = 0; i < 100; i = i + 1) { a[(i & 15) * 2 + 1] = a[(i & 15) * 2] + i; }
  sink(a[1]);
}
|}
  in
  let safe, oob, unknown = A.counts t in
  Alcotest.(check int) "no oob" 0 oob;
  Alcotest.(check int) "no unknown" 0 unknown;
  Alcotest.(check bool) "all sites proved safe" true (safe >= 3)

(* The CI gate: no benchmark — rolled or at its shipped unroll factor —
   has an access the analysis proves out of bounds; the masked-subscript
   workloads are fully proved safe. *)
let test_workloads_no_oob () =
  List.iter
    (fun (w : Ilp_workloads.Workload.t) ->
      let specs =
        None
        ::
        (if w.Ilp_workloads.Workload.default_unroll > 1 then
           [ Some
               { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Naive;
                 factor = w.Ilp_workloads.Workload.default_unroll;
                 bounds = false;
               } ]
         else [])
      in
      List.iter
        (fun unroll ->
          let t = analyze_src ?unroll w.Ilp_workloads.Workload.source in
          let safe, oob, unknown = A.counts t in
          if oob <> 0 then
            Alcotest.failf "%s: %d access(es) proved out of bounds"
              w.Ilp_workloads.Workload.name oob;
          if
            List.mem w.Ilp_workloads.Workload.name
              [ "whet"; "smooth"; "redblack" ]
            && unknown <> 0
          then
            Alcotest.failf "%s: expected fully proved safe, got %d/%d unknown"
              w.Ilp_workloads.Workload.name unknown
              (safe + unknown))
        specs)
    (Ilp_workloads.Registry.all @ Ilp_workloads.Registry.extras)

(* --- range-sharpened memory disambiguation ----------------------------- *)

let prescheduled source =
  Ilp_core.Ilp.compile_unscheduled ~level:Ilp_core.Ilp.O4 Presets.base source

let func program name =
  match Program.find_function program name with
  | Some f -> f
  | None -> Alcotest.failf "compiled program lost %s" name

let redblack_source () =
  let w = Ilp_workloads.Registry.find "redblack" |> Option.get in
  w.Ilp_workloads.Workload.source

let test_redblack_range_pruning () =
  let program = prescheduled (redblack_source ()) in
  List.iter
    (fun fname ->
      let f = func program fname in
      let without =
        Ilp_analysis.Memdep.func_stats
          (Ilp_analysis.Memdep.analyze ~ranges:false f)
          f
      in
      let with_r =
        Ilp_analysis.Memdep.func_stats (Ilp_analysis.Memdep.analyze f) f
      in
      if with_r.Ilp_analysis.Memdep.pruned <= without.Ilp_analysis.Memdep.pruned
      then
        Alcotest.failf
          "%s: ranges should prune strictly more edges (%d vs %d)" fname
          with_r.Ilp_analysis.Memdep.pruned without.Ilp_analysis.Memdep.pruned)
    [ "relax"; "spin" ];
  (* the interleaved same-parity kernel must stay must-alias *)
  let f = func program "colour" in
  let s =
    Ilp_analysis.Memdep.func_stats (Ilp_analysis.Memdep.analyze f) f
  in
  Alcotest.(check bool) "colour keeps must-alias pairs" true
    (s.Ilp_analysis.Memdep.must_alias > 0)

let test_ranges_checksum_identical () =
  (* schedules with and without range sharpening execute identically *)
  let source = redblack_source () in
  let sink ranges =
    let p =
      Ilp_core.Ilp.compile ~check:true ~memdep:true ~ranges
        ~level:Ilp_core.Ilp.O4 (Presets.superscalar 4) source
    in
    (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink
  in
  Alcotest.check Helpers.value_testable "same checksum" (sink false)
    (sink true)

(* --- static per-loop ILP bounds ---------------------------------------- *)

module SB = Ilp_sched.Static_bound

let measure_with_bounds config source =
  let program =
    Ilp_core.Ilp.compile ~memdep:true ~level:Ilp_core.Ilp.O4 config source
  in
  let sb = SB.analyze config program in
  let c = SB.counters sb in
  let tm = Ilp_sim.Timing.create config in
  let outcome =
    Ilp_sim.Exec.run
      ~observers:[ Ilp_sim.Timing.observer tm; SB.observer c ]
      program
  in
  Ilp_sim.Timing.finish tm;
  let lb =
    SB.cycles_lb config sb c ~dyn_instrs:outcome.Ilp_sim.Exec.dyn_instrs
      ~class_counts:outcome.Ilp_sim.Exec.class_counts
  in
  (sb, c, Ilp_sim.Timing.minor_cycles tm, lb)

let test_static_bound_recurrence () =
  let source =
    {|
var s : int = 0;
fun main() {
  var i : int;
  for (i = 0; i < 200; i = i + 1) { s = (s * 3 + i) & 65535; }
  sink(s);
}
|}
  in
  let config = Presets.superscalar 4 in
  let sb, c, measured, lb = measure_with_bounds config source in
  let rec_loops =
    List.filter (fun (b : SB.loop_bound) -> b.SB.sb_recurrence > 0) sb.SB.bounds
  in
  Alcotest.(check bool) "a recurrence-bound loop was found" true
    (rec_loops <> []);
  let b = List.hd rec_loops in
  (* s -> s*3 -> +i -> &mask: three unit-latency links back into s *)
  Alcotest.(check bool) "recurrence spans the whole chain" true
    (b.SB.sb_recurrence >= 3);
  Alcotest.(check bool) "the loop iterated" true (SB.traversals c b >= 199);
  Alcotest.(check bool) "measured respects the floor" true (measured >= lb);
  (* 200 iterations x >=3 cycles each must show up in the floor *)
  Alcotest.(check bool) "recurrence dominates the floor" true (lb >= 3 * 199)

let test_static_bound_workloads () =
  List.iter
    (fun config ->
      List.iter
        (fun name ->
          let w = Ilp_workloads.Registry.find name |> Option.get in
          let unroll =
            if w.Ilp_workloads.Workload.default_unroll > 1 then
              Some
                { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Naive;
                  factor = w.Ilp_workloads.Workload.default_unroll;
                  bounds = false;
                }
            else None
          in
          let program =
            Ilp_core.Ilp.compile ?unroll ~memdep:true ~level:Ilp_core.Ilp.O4
              config w.Ilp_workloads.Workload.source
          in
          let sb = SB.analyze config program in
          let c = SB.counters sb in
          let tm = Ilp_sim.Timing.create config in
          let outcome =
            Ilp_sim.Exec.run
              ~observers:[ Ilp_sim.Timing.observer tm; SB.observer c ]
              program
          in
          Ilp_sim.Timing.finish tm;
          let lb =
            SB.cycles_lb config sb c
              ~dyn_instrs:outcome.Ilp_sim.Exec.dyn_instrs
              ~class_counts:outcome.Ilp_sim.Exec.class_counts
          in
          if Ilp_sim.Timing.minor_cycles tm < lb then
            Alcotest.failf "%s on %s: measured %d < static floor %d" name
              config.Config.name
              (Ilp_sim.Timing.minor_cycles tm)
              lb)
        [ "whet"; "linpack"; "stanford" ])
    [ Presets.superscalar 8; Presets.cray1 () ]

(* --- lint / sanitize exit codes (the CLI binary) ----------------------- *)

let cli = "../bin/ilp_cli.exe"

let oob_source =
  "arr a : int[8];\nfun main() {\n  a[9] = 1;\n  sink(a[0]);\n}\n"

let with_oob_file f =
  let path = Filename.temp_file "ilp_oob" ".mm" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      Out_channel.with_open_text path (fun oc ->
          Out_channel.output_string oc oob_source);
      f path)

let test_cli_exit_codes () =
  if not (Sys.file_exists cli) then
    Alcotest.skip ()
  else begin
    let run fmt = Printf.ksprintf Sys.command fmt in
    Alcotest.(check int) "lint text, clean benchmark" 0
      (run "%s lint -b whet > /dev/null 2>&1" cli);
    Alcotest.(check int) "lint json, clean benchmark" 0
      (run "%s lint -b whet --json > /dev/null 2>&1" cli);
    Alcotest.(check int) "sanitize, clean benchmark" 0
      (run "%s sanitize -b redblack > /dev/null 2>&1" cli);
    with_oob_file (fun path ->
        Alcotest.(check int) "lint text, proved oob" 1
          (run "%s lint --file %s > /dev/null 2>&1" cli path);
        Alcotest.(check int) "lint json, proved oob" 1
          (run "%s lint --file %s --json > /dev/null 2>&1" cli path);
        Alcotest.(check int) "sanitize, proved oob" 1
          (run "%s sanitize --file %s > /dev/null 2>&1" cli path))
  end

(* --- dynamic soundness of the exported ranges -------------------------- *)

(* Compile [prog] and run it, checking every executed array subscript
   against the static per-array index range and every stored global
   scalar value against its static invariant — for both the plain O0
   binary and a careful bound-aware unrolled O4 binary (the analysis is
   of the rolled program either way: its ranges must cover every run). *)
let check_ranges_sound (prog : Ilp_lang.Gen_prog.prog) =
  let source = Ilp_lang.Gen_prog.render prog in
  let absint = A.analyze (Ilp_lang.Semant.compile_source source) in
  let check_binary ?unroll level =
    let program = Ilp_core.Ilp.compile ?unroll ~level Presets.base source in
    let layout, _ = Program.layout program in
    let arrays =
      List.filter_map
        (fun (name, words) ->
          match Hashtbl.find_opt layout name with
          | Some base -> Some (name, base, words, A.index_range absint name)
          | None -> None)
        prog.Ilp_lang.Gen_prog.arrays
    in
    let scalars =
      List.filter_map
        (fun (name, _) ->
          match Hashtbl.find_opt layout name with
          | Some addr -> Some (addr, name, A.scalar_range absint name)
          | None -> None)
        prog.Ilp_lang.Gen_prog.globals
    in
    let failed = ref None in
    let fail fmt = Printf.ksprintf (fun m -> failed := Some m) fmt in
    let observer _ addr =
      if addr >= 0 && !failed = None then
        List.iter
          (fun (name, base, words, range) ->
            if addr >= base && addr < base + words then
              if not (R.V.mem (addr - base) range) then
                fail "%s[%d] executed outside static index range %s" name
                  (addr - base) (R.V.to_string range))
          arrays
    in
    let on_store _ addr value =
      if !failed = None then
        List.iter
          (fun (saddr, name, range) ->
            if addr = saddr then
              match value with
              | Ilp_sim.Value.Int n ->
                  if not (R.V.mem n range) then
                    fail "%s := %d outside static range %s" name n
                      (R.V.to_string range)
              | Ilp_sim.Value.Float _ -> ())
          scalars
    in
    ignore (Ilp_sim.Exec.run ~observer ~on_store program);
    match !failed with Some m -> failwith m | None -> ()
  in
  (* no generated access is ever proved out of bounds: subscripts are
     in range by construction and the analysis is sound *)
  let _, oob, _ = A.counts absint in
  if oob > 0 then failwith "generated program wrongly proved out of bounds";
  check_binary Ilp_core.Ilp.O0;
  check_binary
    ~unroll:
      { Ilp_core.Ilp.mode = Ilp_lang.Unroll.Careful; factor = 4; bounds = true }
    Ilp_core.Ilp.O4;
  true

let prop_ranges_sound name gen =
  QCheck2.Test.make ~count:25
    ~name:(Printf.sprintf "%s programs: observed values in static ranges" name)
    ~print:Ilp_lang.Gen_prog.render gen check_ranges_sound

let tests =
  [ Alcotest.test_case "interval algebra" `Quick test_interval_algebra;
    Alcotest.test_case "congruence algebra" `Quick test_congruence_algebra;
    Alcotest.test_case "product: strides and masks" `Quick
      test_product_strides;
    Alcotest.test_case "product: separated windows" `Quick
      test_separated_windows;
    Alcotest.test_case "product: counted loops" `Quick test_of_counted;
    Alcotest.test_case "sanitize: proves out-of-bounds" `Quick
      test_sanitize_proves_oob;
    Alcotest.test_case "sanitize: proves strided stores safe" `Quick
      test_sanitize_proves_safe;
    Alcotest.test_case "sanitize: no workload proved oob" `Slow
      test_workloads_no_oob;
    Alcotest.test_case "memdep: ranges prune redblack" `Quick
      test_redblack_range_pruning;
    Alcotest.test_case "memdep: range schedules are sound" `Quick
      test_ranges_checksum_identical;
    Alcotest.test_case "static bound: counted-loop recurrence" `Quick
      test_static_bound_recurrence;
    Alcotest.test_case "static bound: measured >= floor on workloads" `Slow
      test_static_bound_workloads;
    Alcotest.test_case "cli: lint and sanitize exit codes" `Slow
      test_cli_exit_codes;
    QCheck_alcotest.to_alcotest (prop_ranges_sound "random" Gen_minimod.prog);
    QCheck_alcotest.to_alcotest
      (prop_ranges_sound "alias-heavy" Gen_minimod.alias_heavy_prog);
    QCheck_alcotest.to_alcotest
      (prop_ranges_sound "unroll-heavy" Gen_minimod.unroll_heavy_prog);
    QCheck_alcotest.to_alcotest
      (prop_ranges_sound "range-heavy" Gen_minimod.range_heavy_prog) ]
