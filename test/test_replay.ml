(* Trace-buffer tests: replayed timing must reproduce direct-observer
   timing bit for bit — cycles, stalls, speedup, issue histogram, and
   cache behaviour — for every workload on every machine preset, and
   replay must refuse (rather than misreport) a binary that is not a
   schedule-sibling of the captured program. *)

open Ilp_machine
module Timing = Ilp_sim.Timing
module Trace_buffer = Ilp_sim.Trace_buffer
module Metrics = Ilp_sim.Metrics
module W = Ilp_workloads.Workload

let level = Ilp_core.Ilp.O4

(* every preset family of the paper's evaluation *)
let presets =
  [ Presets.base;
    Presets.multititan;
    Presets.cray1 ();
    Presets.cray1_unit_latencies ();
    Presets.underpipelined;
    Presets.superscalar 2;
    Presets.superscalar 4;
    Presets.superscalar 8;
    Presets.superpipelined 2;
    Presets.superpipelined 4;
    Presets.superpipelined 8;
    Presets.superpipelined_superscalar ~n:2 ~m:2;
    Presets.superscalar_with_class_conflicts 4 ]

let fingerprint (t : Timing.t) =
  ( Timing.instrs t,
    Timing.minor_cycles t,
    t.Timing.stall_cycles,
    Timing.speedup t,
    Array.to_list t.Timing.issue_histogram )

let direct_timing ?cache config binary =
  let t = Timing.create ?cache config in
  ignore (Ilp_sim.Exec.run ~observer:(Timing.observer t) binary);
  Timing.finish t;
  t

let replay_timing ?cache config trace binary =
  let t = Timing.create ?cache config in
  Trace_buffer.replay trace binary t;
  Timing.finish t;
  t

let check_equal name d r =
  if fingerprint d <> fingerprint r then
    Alcotest.failf "%s: replayed timing differs from direct timing" name;
  Alcotest.(check int)
    (name ^ ": histogram sums to minor cycles")
    (Timing.minor_cycles r)
    (Array.fold_left ( + ) 0 r.Timing.issue_histogram)

(* One capture per workload serves every preset. *)
let workload_tests =
  List.map
    (fun w ->
      Alcotest.test_case ("replay = direct: " ^ w.W.name) `Slow (fun () ->
          let source = w.W.source in
          let pre =
            Ilp_core.Ilp.compile_unscheduled ~level Presets.base source
          in
          let trace = Trace_buffer.capture pre in
          List.iter
            (fun config ->
              let binary = Ilp_core.Ilp.schedule ~level config pre in
              let name = w.W.name ^ "/" ^ config.Config.name in
              check_equal name
                (direct_timing config binary)
                (replay_timing config trace binary))
            presets))
    Ilp_workloads.Registry.all

let fresh_cache () =
  Ilp_sim.Cache.create ~lines:64 ~line_words:4 ~penalty:12 ()

let test_replay_with_cache () =
  let w =
    match Ilp_workloads.Registry.find "whet" with
    | Some w -> w
    | None -> Alcotest.fail "no whet workload"
  in
  let pre = Ilp_core.Ilp.compile_unscheduled ~level Presets.base w.W.source in
  let trace = Trace_buffer.capture pre in
  List.iter
    (fun config ->
      let binary = Ilp_core.Ilp.schedule ~level config pre in
      let name = "whet+cache/" ^ config.Config.name in
      check_equal name
        (direct_timing ~cache:(fresh_cache ()) config binary)
        (replay_timing ~cache:(fresh_cache ()) config trace binary))
    [ Presets.base; Presets.superscalar 4; Presets.multititan ]

let test_measure_replay_equals_measure () =
  let w =
    match Ilp_workloads.Registry.find "yacc" with
    | Some w -> w
    | None -> Alcotest.fail "no yacc workload"
  in
  let config = Presets.superscalar 4 in
  let pre = Ilp_core.Ilp.compile_unscheduled ~level config w.W.source in
  let trace = Trace_buffer.capture pre in
  let binary = Ilp_core.Ilp.schedule ~level config pre in
  let d = Metrics.measure config binary in
  let r = Metrics.measure_replay config trace binary in
  Alcotest.(check int) "dyn_instrs" d.Metrics.dyn_instrs r.Metrics.dyn_instrs;
  Alcotest.(check int) "minor_cycles" d.Metrics.minor_cycles r.Metrics.minor_cycles;
  Alcotest.(check int) "stall_cycles" d.Metrics.stall_cycles r.Metrics.stall_cycles;
  Helpers.check_float "speedup" d.Metrics.speedup r.Metrics.speedup;
  Alcotest.check Helpers.value_testable "sink" d.Metrics.sink r.Metrics.sink;
  Alcotest.(check (array int)) "class_counts" d.Metrics.class_counts
    r.Metrics.class_counts

(* ------------------------------------------------------------------ *)
(* segmented replay                                                    *)

(* Replay [trace] over [binary] cut into segments of the given sizes
   (cycled; 0-length segments replay nothing), checkpointing the timing
   model with [Timing.snapshot]/[Timing.resume] at every boundary —
   exactly the chain a parallel sweep schedules.  [sizes] must contain
   a positive entry so the walk makes progress. *)
let segmented_timing ?cache config trace binary (sizes : int array) =
  if not (Array.exists (fun s -> s > 0) sizes) then
    invalid_arg "segmented_timing: all-zero segment sizes";
  let pr = Trace_buffer.prepare trace binary in
  let cu = Trace_buffer.start pr in
  let t = ref (Timing.create ?cache config) in
  let k = ref 0 in
  while not (Trace_buffer.cursor_done cu) do
    let size = sizes.(!k mod Array.length sizes) in
    incr k;
    Trace_buffer.replay_steps pr cu !t ~max_steps:size;
    if not (Trace_buffer.cursor_done cu) then
      t := Timing.resume (Timing.snapshot !t)
  done;
  Timing.finish !t;
  !t

(* one shared capture for the segmentation tests (yacc is the smallest
   non-trivial workload: ~49k dynamic instructions) *)
let seg_fixture =
  lazy
    (let w =
       match Ilp_workloads.Registry.find "yacc" with
       | Some w -> w
       | None -> Alcotest.fail "no yacc workload"
     in
     let pre =
       Ilp_core.Ilp.compile_unscheduled ~level Presets.base w.W.source
     in
     (pre, Trace_buffer.capture pre))

let test_segmented_equals_replay_all_presets () =
  let pre, trace = Lazy.force seg_fixture in
  let n = Trace_buffer.dyn_instrs trace in
  (* mixed cuts including empty segments; one-segment whole trace; and
     a segment larger than the trace *)
  let cut_patterns =
    [ [| 0; 1; 7; 1000; 0; 5000 |]; [| n |]; [| n + 42 |]; [| 313 |] ]
  in
  List.iter
    (fun config ->
      let binary = Ilp_core.Ilp.schedule ~level config pre in
      let reference = fingerprint (replay_timing config trace binary) in
      List.iteri
        (fun i sizes ->
          let name =
            Printf.sprintf "yacc/%s, cut pattern %d" config.Config.name i
          in
          if fingerprint (segmented_timing config trace binary sizes)
             <> reference
          then Alcotest.failf "%s: segmented replay differs" name)
        cut_patterns)
    presets

let prop_segmented_random_cuts =
  QCheck2.Test.make ~count:25
    ~name:"segmented replay = replay at random cut positions"
    ~print:QCheck2.Print.(pair int (list int))
    QCheck2.Gen.(
      pair (int_bound (List.length presets - 1))
        (list_size (int_bound 12) (int_bound 4000)))
    (fun (preset_idx, sizes) ->
      let pre, trace = Lazy.force seg_fixture in
      let config = List.nth presets preset_idx in
      let binary = Ilp_core.Ilp.schedule ~level config pre in
      (* keep the generated cuts (including zeros) but guarantee
         progress by appending a positive size *)
      let sizes = Array.of_list (sizes @ [ 997 ]) in
      fingerprint (segmented_timing config trace binary sizes)
      = fingerprint (replay_timing config trace binary))

let test_measure_replay_segmented_with_cache () =
  let pre, trace = Lazy.force seg_fixture in
  List.iter
    (fun config ->
      let binary = Ilp_core.Ilp.schedule ~level config pre in
      List.iter
        (fun segment ->
          let r =
            Metrics.measure_replay ~cache:(fresh_cache ()) config trace binary
          in
          let s =
            Metrics.measure_replay_segmented ~cache:(fresh_cache ()) ~segment
              config trace binary
          in
          let name =
            Printf.sprintf "yacc+cache/%s, segment %d" config.Config.name
              segment
          in
          Alcotest.(check int)
            (name ^ ": minor_cycles")
            r.Metrics.minor_cycles s.Metrics.minor_cycles;
          Alcotest.(check int)
            (name ^ ": stall_cycles")
            r.Metrics.stall_cycles s.Metrics.stall_cycles;
          Alcotest.(check int)
            (name ^ ": dyn_instrs")
            r.Metrics.dyn_instrs s.Metrics.dyn_instrs;
          Helpers.check_float (name ^ ": speedup") r.Metrics.speedup
            s.Metrics.speedup)
        [ 1000; 1 lsl 17 ])
    [ Presets.base; Presets.superscalar 4 ]

let test_divergence_on_foreign_binary () =
  let find name =
    match Ilp_workloads.Registry.find name with
    | Some w -> w
    | None -> Alcotest.fail ("no workload " ^ name)
  in
  let config = Presets.base in
  let whet = find "whet" and yacc = find "yacc" in
  let pre_whet =
    Ilp_core.Ilp.compile_unscheduled ~level config whet.W.source
  in
  let trace = Trace_buffer.capture pre_whet in
  let foreign =
    Ilp_core.Ilp.compile ~level config yacc.W.source
  in
  Alcotest.(check bool) "foreign binary raises Divergence" true
    (match
       Trace_buffer.replay trace foreign (Timing.create config)
     with
    | exception Trace_buffer.Divergence _ -> true
    | () -> false)

let test_footprint_reported () =
  let w =
    match Ilp_workloads.Registry.find "whet" with
    | Some w -> w
    | None -> Alcotest.fail "no whet workload"
  in
  let pre = Ilp_core.Ilp.compile_unscheduled ~level Presets.base w.W.source in
  let trace = Trace_buffer.capture pre in
  Alcotest.(check bool) "non-trivial footprint" true
    (Trace_buffer.footprint_words trace > 0);
  Alcotest.(check bool) "bounded by dynamic memory accesses" true
    (Trace_buffer.footprint_words trace < Trace_buffer.dyn_instrs trace * 4)

let tests =
  [ Alcotest.test_case "replay = direct with cache" `Slow
      test_replay_with_cache;
    Alcotest.test_case "segmented = replay, all presets" `Slow
      test_segmented_equals_replay_all_presets;
    QCheck_alcotest.to_alcotest prop_segmented_random_cuts;
    Alcotest.test_case "measure_replay_segmented = measure_replay (cache)"
      `Slow test_measure_replay_segmented_with_cache;
    Alcotest.test_case "measure_replay = measure" `Slow
      test_measure_replay_equals_measure;
    Alcotest.test_case "foreign binary diverges" `Quick
      test_divergence_on_foreign_binary;
    Alcotest.test_case "trace footprint" `Quick test_footprint_reported ]
  @ workload_tests
