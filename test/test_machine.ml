(* Machine configurations, presets, and the average degree of
   superpipelining (Table 2-1). *)

open Ilp_ir
open Ilp_machine

let test_base_machine () =
  let c = Presets.base in
  Alcotest.(check int) "issue width" 1 c.Config.issue_width;
  Alcotest.(check int) "pipe degree" 1 c.Config.pipe_degree;
  List.iter
    (fun cls ->
      Alcotest.(check int) (Iclass.name cls ^ " latency") 1 (Config.latency c cls))
    Iclass.all

let test_superscalar () =
  let c = Presets.superscalar 4 in
  Alcotest.(check int) "width 4" 4 c.Config.issue_width;
  Alcotest.(check int) "degree 1" 1 c.Config.pipe_degree;
  Alcotest.(check int) "unit latency" 1 (Config.latency c Iclass.Add_sub)

let test_superpipelined () =
  let c = Presets.superpipelined 3 in
  Alcotest.(check int) "width 1" 1 c.Config.issue_width;
  Alcotest.(check int) "degree 3" 3 c.Config.pipe_degree;
  (* all latencies scale with the degree *)
  List.iter
    (fun cls ->
      Alcotest.(check int) (Iclass.name cls ^ " latency") 3 (Config.latency c cls))
    Iclass.all

let test_sps () =
  let c = Presets.superpipelined_superscalar ~n:2 ~m:4 in
  Alcotest.(check int) "width" 2 c.Config.issue_width;
  Alcotest.(check int) "degree" 4 c.Config.pipe_degree;
  Alcotest.(check int) "latency" 4 (Config.latency c Iclass.Logical)

let test_invalid_configs () =
  Alcotest.check_raises "zero width" (Invalid_argument "Config.make: issue_width < 1")
    (fun () -> ignore (Config.make "bad" ~issue_width:0));
  Alcotest.check_raises "zero degree" (Invalid_argument "Config.make: pipe_degree < 1")
    (fun () -> ignore (Config.make "bad" ~pipe_degree:0))

let test_multititan_latencies () =
  let c = Presets.multititan in
  Alcotest.(check int) "logical 1" 1 (Config.latency c Iclass.Logical);
  Alcotest.(check int) "load 2" 2 (Config.latency c Iclass.Load);
  Alcotest.(check int) "branch 2" 2 (Config.latency c Iclass.Branch);
  Alcotest.(check int) "fp 3" 3 (Config.latency c Iclass.Fp_add)

let test_cray1_latencies () =
  let c = Presets.cray1 () in
  Alcotest.(check int) "shift 2" 2 (Config.latency c Iclass.Shift);
  Alcotest.(check int) "addsub 3" 3 (Config.latency c Iclass.Add_sub);
  Alcotest.(check int) "load 11" 11 (Config.latency c Iclass.Load);
  Alcotest.(check int) "store 1" 1 (Config.latency c Iclass.Store);
  Alcotest.(check int) "fp 7" 7 (Config.latency c Iclass.Fp_add)

(* The headline numbers of Table 2-1. *)
let test_average_degree_table_2_1 () =
  let mt =
    Superpipelining.average_degree Presets.multititan
      Superpipelining.paper_frequencies
  in
  Helpers.check_float "MultiTitan avg degree" 1.7 mt;
  let cray =
    Superpipelining.average_degree (Presets.cray1 ())
      Superpipelining.paper_frequencies
  in
  Helpers.check_float "CRAY-1 avg degree" 4.4 cray

let test_average_degree_base_is_one () =
  Helpers.check_float "base machine degree 1" 1.0
    (Superpipelining.average_degree Presets.base
       Superpipelining.paper_frequencies)

let test_superpipelining_table_rows () =
  let rows, total =
    Superpipelining.table Presets.multititan Superpipelining.paper_frequencies
  in
  Alcotest.(check int) "seven active classes" 7 (List.length rows);
  Helpers.check_float "total matches" 1.7 total;
  let contribution_sum =
    List.fold_left
      (fun acc r -> acc +. r.Superpipelining.contribution)
      0.0 rows
  in
  Helpers.check_float "contributions sum to total" total contribution_sum

let test_frequencies_of_assoc () =
  let f =
    Superpipelining.frequencies_of_assoc
      [ (Iclass.Load, 0.5); (Iclass.Store, 0.5) ]
  in
  Helpers.check_float "total" 1.0 (Superpipelining.total f);
  Helpers.check_float "avg over loads/stores on multititan" 2.0
    (Superpipelining.average_degree Presets.multititan f)

let test_unit_constraints () =
  let c = Presets.underpipelined in
  Alcotest.(check bool) "load constrained" true
    (Config.has_unit_constraint c Iclass.Load);
  Alcotest.(check bool) "add unconstrained" false
    (Config.has_unit_constraint c Iclass.Add_sub);
  let conflicted = Presets.superscalar_with_class_conflicts 4 in
  List.iter
    (fun cls ->
      Alcotest.(check bool)
        (Iclass.name cls ^ " has a unit")
        true
        (Config.has_unit_constraint conflicted cls))
    Iclass.all

let test_by_name () =
  Alcotest.(check bool) "base resolves" true (Presets.by_name "base" <> None);
  Alcotest.(check bool) "cray1 resolves" true (Presets.by_name "cray1" <> None);
  Alcotest.(check bool) "unknown rejects" true (Presets.by_name "pdp11" = None)

let test_max_latency () =
  Alcotest.(check int) "base" 1 (Config.max_latency Presets.base);
  Alcotest.(check int) "cray" 25 (Config.max_latency (Presets.cray1 ()))

let tests =
  [ Alcotest.test_case "base machine" `Quick test_base_machine;
    Alcotest.test_case "superscalar" `Quick test_superscalar;
    Alcotest.test_case "superpipelined" `Quick test_superpipelined;
    Alcotest.test_case "superpipelined superscalar" `Quick test_sps;
    Alcotest.test_case "invalid configs rejected" `Quick test_invalid_configs;
    Alcotest.test_case "multititan latencies" `Quick test_multititan_latencies;
    Alcotest.test_case "cray1 latencies" `Quick test_cray1_latencies;
    Alcotest.test_case "table 2-1 averages" `Quick test_average_degree_table_2_1;
    Alcotest.test_case "base avg degree = 1" `Quick test_average_degree_base_is_one;
    Alcotest.test_case "table rows consistent" `Quick test_superpipelining_table_rows;
    Alcotest.test_case "frequencies helper" `Quick test_frequencies_of_assoc;
    Alcotest.test_case "unit constraints" `Quick test_unit_constraints;
    Alcotest.test_case "presets by name" `Quick test_by_name;
    Alcotest.test_case "max latency" `Quick test_max_latency ]
