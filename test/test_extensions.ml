(* Tests for the extension features: copy coalescing, trace capture,
   per-function profiling, the branch-packet ablation switch, issue
   histograms, and the vector-machine pieces. *)

open Ilp_ir
open Ilp_machine

let r = Reg.phys

(* --- coalescing --- *)

let count_movs (p : Program.t) =
  List.fold_left
    (fun acc (f : Func.t) ->
      List.fold_left
        (fun acc (b : Block.t) ->
          acc
          + List.length
              (List.filter (fun i -> i.Instr.op = Opcode.Mov) b.Block.instrs))
        acc f.Func.blocks)
    0 p.Program.functions

let test_coalesce_folds_move () =
  let v = Reg.virt () in
  let h = r 30 in
  let block =
    [ Builder.li (r 4) 7;
      Instr.make Opcode.Add ~dst:v ~srcs:[ Instr.Oreg (r 4); Instr.Oimm 1 ];
      Instr.make Opcode.Mov ~dst:h ~srcs:[ Instr.Oreg v ] ]
  in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (Label.of_string "main") (block @ [ Builder.halt () ]) ]
  in
  let f' = Ilp_opt.Coalesce.run_func f in
  Alcotest.(check int) "one instruction removed" 3 (Func.instr_count f');
  (* the add now writes h directly *)
  let has_direct =
    List.exists
      (fun (b : Block.t) ->
        List.exists
          (fun i -> i.Instr.op = Opcode.Add && i.Instr.dst = Some h)
          b.Block.instrs)
      f'.Func.blocks
  in
  Alcotest.(check bool) "add retargeted" true has_direct

let test_coalesce_blocked_by_intermediate_use () =
  (* h is read between the def and the move: folding would change what
     the reader sees *)
  let v = Reg.virt () in
  let h = r 30 in
  let block =
    [ Builder.li (r 4) 7;
      Instr.make Opcode.Add ~dst:v ~srcs:[ Instr.Oreg (r 4); Instr.Oimm 1 ];
      Instr.make Opcode.Add ~dst:(r 5) ~srcs:[ Instr.Oreg h; Instr.Oimm 0 ];
      Instr.make Opcode.Mov ~dst:h ~srcs:[ Instr.Oreg v ];
      Builder.halt () ]
  in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (Label.of_string "main") block ]
  in
  let f' = Ilp_opt.Coalesce.run_func f in
  Alcotest.(check int) "nothing removed" 5 (Func.instr_count f')

let test_coalesce_blocked_by_call () =
  (* a call between def and move clobbers physical destinations *)
  let v = Reg.virt () in
  let h = r 30 in
  let block =
    [ Instr.make Opcode.Add ~dst:v ~srcs:[ Instr.Oreg (r 4); Instr.Oimm 1 ];
      Builder.call (Label.of_string "f");
      Instr.make Opcode.Mov ~dst:h ~srcs:[ Instr.Oreg v ];
      Builder.halt () ]
  in
  let f =
    Func.make ~name:"main" ~frame_size:0 ~n_params:0
      [ Block.make (Label.of_string "main") block ]
  in
  let f' = Ilp_opt.Coalesce.run_func f in
  Alcotest.(check int) "nothing removed" 4 (Func.instr_count f')

let test_coalesce_reduces_benchmark_moves () =
  let w = Option.get (Ilp_workloads.Registry.find "yacc") in
  let config = Presets.base in
  let tast = Ilp_core.Ilp.frontend w.Ilp_workloads.Workload.source in
  let p = Ilp_lang.Codegen.gen_program tast in
  let p = Ilp_core.Ilp.local_cleanup p in
  let p = Ilp_regalloc.Global_alloc.run config p |> Ilp_core.Ilp.local_cleanup in
  let coalesced = Ilp_opt.Coalesce.run p in
  Alcotest.(check bool) "fewer static moves" true
    (count_movs coalesced < count_movs p);
  let sink prog =
    (Ilp_sim.Exec.run (Ilp_regalloc.Temp_alloc.run config prog))
      .Ilp_sim.Exec.sink
  in
  Alcotest.check Helpers.value_testable "semantics preserved" (sink p)
    (sink coalesced)

(* --- trace --- *)

let test_trace_capture () =
  let p =
    Builder.program_of_instrs
      [ Builder.li (r 4) 1; Builder.li (r 5) 2; Builder.add (r 6) (r 4) (r 5) ]
  in
  let entries, outcome = Ilp_sim.Trace.capture ~limit:2 p in
  Alcotest.(check int) "limited to 2" 2 (List.length entries);
  Alcotest.(check int) "outcome complete" 4 outcome.Ilp_sim.Exec.dyn_instrs;
  let rendered = Ilp_sim.Trace.render entries in
  Alcotest.(check bool) "renders li" true
    (String.length rendered > 0 && String.contains rendered 'l')

let test_trace_addresses () =
  let p =
    Builder.program_of_instrs
      [ Builder.li (r 4) 2048;
        Builder.st ~value:(r 4) ~base:(r 4) ~offset:1 ();
        Builder.ld (r 5) ~base:(r 4) ~offset:1 ]
  in
  let entries, _ = Ilp_sim.Trace.capture p in
  let addresses = List.map (fun e -> e.Ilp_sim.Trace.address) entries in
  Alcotest.(check (list int)) "addresses recorded" [ -1; 2049; 2049; -1 ]
    addresses

(* --- per-function profile --- *)

let test_per_function_counts () =
  let src =
    {|
fun helper(x: int) : int { return x * 2; }
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + helper(i); }
  sink(s);
}
|}
  in
  let outcome = Helpers.run_source src in
  let names = List.map fst outcome.Ilp_sim.Exec.per_function in
  Alcotest.(check bool) "main present" true (List.mem "main" names);
  Alcotest.(check bool) "helper present" true (List.mem "helper" names);
  let total =
    List.fold_left (fun acc (_, c) -> acc + c) 0
      outcome.Ilp_sim.Exec.per_function
  in
  Alcotest.(check int) "counts add up" outcome.Ilp_sim.Exec.dyn_instrs total;
  (* heaviest first *)
  match outcome.Ilp_sim.Exec.per_function with
  | (_, c1) :: (_, c2) :: _ ->
      Alcotest.(check bool) "sorted descending" true (c1 >= c2)
  | _ -> Alcotest.fail "expected at least two functions"

(* --- branch_ends_packet ablation --- *)

let test_branch_packet_costs_cycles () =
  let free = Config.make "free" ~issue_width:4 in
  let limited = Config.make "bep" ~issue_width:4 ~branch_ends_packet:true in
  let instrs =
    [ Builder.li (r 4) 1;
      Builder.beq (r 4) (r 4) (Label.of_string "x");
      Builder.li (r 5) 2;
      Builder.li (r 6) 3 ]
  in
  let cycles config =
    let t = Ilp_sim.Timing.create config in
    List.iter (fun i -> Ilp_sim.Timing.issue t i (-1)) instrs;
    Ilp_sim.Timing.minor_cycles t
  in
  Alcotest.(check bool) "branch packet break costs a cycle" true
    (cycles limited > cycles free);
  (* suite-level: limited config must never beat the free one *)
  let w = Option.get (Ilp_workloads.Registry.find "grr") in
  let s config =
    (Ilp_core.Ilp.measure ~level:Ilp_core.Ilp.O4 config
       w.Ilp_workloads.Workload.source)
      .Ilp_sim.Metrics.speedup
  in
  Alcotest.(check bool) "grr slower with packet breaks" true
    (s limited < s free)

(* --- issue histogram --- *)

let test_issue_histogram_sums () =
  let config = Presets.superscalar 3 in
  let t = Ilp_sim.Timing.create config in
  List.iter
    (fun i -> Ilp_sim.Timing.issue t i (-1))
    (Ilp_sim.Diagram.independent_instrs 9);
  (* three full cycles of 3; the last cycle is still open, so the
     histogram records the closed ones *)
  Alcotest.(check int) "buckets" 4
    (Array.length t.Ilp_sim.Timing.issue_histogram);
  Alcotest.(check int) "two closed 3-wide cycles" 2
    t.Ilp_sim.Timing.issue_histogram.(3)

(* --- vector pieces --- *)

let test_vector_diagram () =
  let d = Ilp_sim.Diagram.render_vector ~vector_length:4 [ "vload"; "vadd" ] in
  Alcotest.(check bool) "mentions vload" true
    (String.length d > 0
    &&
    let lines = String.split_on_char '\n' d in
    List.exists (fun l -> String.length l >= 5 && String.sub l 0 5 = "vload") lines)

let test_vector_equivalence_direction () =
  let re = Ilp_core.Experiments.sec2_3_vector () in
  Alcotest.(check bool) "4-issue beats base" true
    (re.Ilp_core.Experiments.superscalar_cycles_per_element
    < re.Ilp_core.Experiments.base_cycles_per_element)

let tests =
  [ Alcotest.test_case "coalesce folds move" `Quick test_coalesce_folds_move;
    Alcotest.test_case "coalesce blocked by use" `Quick
      test_coalesce_blocked_by_intermediate_use;
    Alcotest.test_case "coalesce blocked by call" `Quick
      test_coalesce_blocked_by_call;
    Alcotest.test_case "coalesce on a benchmark" `Quick
      test_coalesce_reduces_benchmark_moves;
    Alcotest.test_case "trace capture" `Quick test_trace_capture;
    Alcotest.test_case "trace addresses" `Quick test_trace_addresses;
    Alcotest.test_case "per-function counts" `Quick test_per_function_counts;
    Alcotest.test_case "branch packet ablation" `Quick
      test_branch_packet_costs_cycles;
    Alcotest.test_case "issue histogram" `Quick test_issue_histogram_sums;
    Alcotest.test_case "vector diagram" `Quick test_vector_diagram;
    Alcotest.test_case "vector equivalence" `Slow
      test_vector_equivalence_direction ]
