(* Frontend tests: lexer, parser, and semantic analysis. *)

open Ilp_lang

let parse src = Parser.parse_program src
let check src = Semant.compile_source src

let expect_semant_error name src =
  match check src with
  | exception Semant.Error _ -> ()
  | exception Parser.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected an error" name

let expect_parse_error name src =
  match parse src with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "%s: expected a parse error" name

(* --- lexer --- *)

let test_lexer_tokens () =
  let lx = Lexer.make "var x == <= >> && 3 4.5 # comment\n foo" in
  let toks = ref [] in
  let rec drain () =
    let t, _ = Lexer.next lx in
    if t <> Lexer.EOF then begin
      toks := t :: !toks;
      drain ()
    end
  in
  drain ();
  Alcotest.(check (list string)) "token stream"
    [ "var"; "identifier x"; "=="; "<="; ">>"; "&&"; "3"; "4.5"; "identifier foo" ]
    (List.rev !toks |> List.map Lexer.token_name)

let test_lexer_comments () =
  let count_tokens src =
    let lx = Lexer.make src in
    let rec go n =
      let t, _ = Lexer.next lx in
      if t = Lexer.EOF then n else go (n + 1)
    in
    go 0
  in
  Alcotest.(check int) "hash comment" 1 (count_tokens "x # y z w");
  Alcotest.(check int) "slash comment" 1 (count_tokens "x // y z w");
  Alcotest.(check int) "comment then token" 2 (count_tokens "x # c\n y")

let test_lexer_positions () =
  let lx = Lexer.make "a\n  b" in
  let _, p1 = Lexer.next lx in
  let _, p2 = Lexer.next lx in
  Alcotest.(check int) "first line" 1 p1.Ast.line;
  Alcotest.(check int) "second line" 2 p2.Ast.line;
  Alcotest.(check int) "second col" 3 p2.Ast.col

let test_lexer_bad_char () =
  Alcotest.(check bool) "bad char raises" true
    (match Lexer.next (Lexer.make "$") with
    | exception Lexer.Error _ -> true
    | _ -> false)

(* --- parser --- *)

let test_parser_precedence () =
  (* 1 + 2 * 3 parses as 1 + (2 * 3) *)
  let prog = parse "fun main() { sink(1 + 2 * 3); }" in
  match prog with
  | [ Ast.Dfun { Ast.fbody = [ { Ast.snode = Ast.Ssink e; _ } ]; _ } ] -> (
      match e.Ast.enode with
      | Ast.Ebinary (Ast.Badd, _, { Ast.enode = Ast.Ebinary (Ast.Bmul, _, _); _ })
        ->
          ()
      | _ -> Alcotest.fail "wrong precedence shape")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parser_left_assoc () =
  (* a - b - c parses as (a - b) - c *)
  let prog = parse "fun main() { sink(7 - 2 - 1); }" in
  match prog with
  | [ Ast.Dfun { Ast.fbody = [ { Ast.snode = Ast.Ssink e; _ } ]; _ } ] -> (
      match e.Ast.enode with
      | Ast.Ebinary (Ast.Bsub, { Ast.enode = Ast.Ebinary (Ast.Bsub, _, _); _ }, _)
        ->
          ()
      | _ -> Alcotest.fail "subtraction must be left associative")
  | _ -> Alcotest.fail "unexpected program shape"

let test_parser_comparison_vs_shift () =
  (* a << b < c parses as (a << b) < c *)
  let prog = parse "fun main() { sink((1 << 2) < 3); }" in
  Alcotest.(check int) "parsed one decl" 1 (List.length prog)

let test_parser_for_forms () =
  let ok = parse "fun main() { var i : int; for (i = 0; i < 9; i = i + 2) { } }" in
  Alcotest.(check int) "upward loop" 1 (List.length ok);
  let down = parse "fun main() { var i : int; for (i = 9; i >= 0; i = i - 1) { } }" in
  Alcotest.(check int) "downward loop" 1 (List.length down);
  expect_parse_error "wrong loop var"
    "fun main() { var i : int; var j : int; for (i = 0; j < 9; i = i + 1) { } }"

let test_parser_dangling_else () =
  let prog =
    parse
      "fun main() { var x : int = 1; if (x > 0) { x = 1; } else if (x < 0) { x = 2; } else { x = 3; } }"
  in
  Alcotest.(check int) "chained else-if parses" 1 (List.length prog)

let test_parser_view_decl () =
  let prog = parse "arr a : real[4];\nview av of a;\nfun main() { }" in
  Alcotest.(check int) "three decls" 3 (List.length prog)

let test_parser_errors () =
  expect_parse_error "missing semi" "fun main() { var x : int = 1 }";
  expect_parse_error "missing paren" "fun main() { sink(1; }";
  expect_parse_error "bad top decl" "int x;";
  expect_parse_error "unterminated block" "fun main() { var x : int;"

(* --- semantic analysis --- *)

let test_semant_types () =
  let p = check "fun main() { var x : real = 1.5; var y : real = x + 1.0; sink(y); }" in
  Alcotest.(check int) "one function" 1 (List.length p.Tast.tfuncs)

let test_semant_promotion () =
  (* int promotes to real implicitly *)
  let p = check "fun main() { var x : real = 1; sink(x + 2); }" in
  ignore p;
  (* real to int requires a cast *)
  expect_semant_error "real to int" "fun main() { var x : int = 1.5; }";
  ignore (check "fun main() { var x : int = int(1.5); sink(x); }")

let test_semant_undeclared () =
  expect_semant_error "undeclared var" "fun main() { sink(zz); }";
  expect_semant_error "undeclared fn" "fun main() { sink(f(1)); }";
  expect_semant_error "undeclared array" "fun main() { sink(a[0]); }"

let test_semant_duplicates () =
  expect_semant_error "dup local" "fun main() { var x : int; var x : int; }";
  expect_semant_error "dup global" "var g : int;\nvar g : int;\nfun main() { }";
  expect_semant_error "dup fn" "fun f() { }\nfun f() { }\nfun main() { }"

let test_semant_arrays () =
  expect_semant_error "array as scalar" "arr a : int[4];\nfun main() { sink(a); }";
  expect_semant_error "scalar as array" "var x : int;\nfun main() { sink(x[0]); }";
  expect_semant_error "real index" "arr a : int[4];\nfun main() { sink(a[1.5]); }";
  expect_semant_error "zero-size array" "arr a : int[0];\nfun main() { }"

let test_semant_calls () =
  expect_semant_error "arity" "fun f(x: int) : int { return x; }\nfun main() { sink(f(1, 2)); }";
  expect_semant_error "arg type" "fun f(x: int) : int { return x; }\nfun main() { sink(f(1.5)); }";
  expect_semant_error "void in expr" "fun f() { }\nfun main() { sink(f()); }";
  (* statement call of a void function is fine *)
  ignore (check "fun f() { }\nfun main() { f(); }")

let test_semant_returns () =
  expect_semant_error "missing value" "fun f() : int { return; }\nfun main() { }";
  expect_semant_error "unexpected value" "fun f() { return 1; }\nfun main() { }";
  expect_semant_error "wrong type" "fun f() : int { return 1.5; }\nfun main() { }"

let test_semant_conditions () =
  expect_semant_error "real condition" "fun main() { if (1.5) { } }";
  expect_semant_error "logical on reals" "fun main() { sink(1.0 && 2.0); }";
  ignore (check "fun main() { if (1.0 < 2.0) { } }")

let test_semant_no_main () =
  expect_semant_error "no main" "fun f() { }"

let test_semant_for_var () =
  expect_semant_error "real loop var"
    "fun main() { var x : real; for (x = 0; x < 5; x = x + 1) { } }";
  expect_semant_error "undeclared loop var"
    "fun main() { for (i = 0; i < 5; i = i + 1) { } }"

let test_semant_views () =
  ignore (check "arr a : real[4];\nview av of a;\nfun main() { av[0] = 1.0; sink(av[0]); }");
  expect_semant_error "view of scalar" "var x : int;\nview xv of x;\nfun main() { }";
  expect_semant_error "view of nothing" "view av of a;\nfun main() { }";
  expect_semant_error "duplicate view name"
    "arr a : real[4];\nvar av : int;\nview av of a;\nfun main() { }"

let tests =
  [ Alcotest.test_case "lexer tokens" `Quick test_lexer_tokens;
    Alcotest.test_case "lexer comments" `Quick test_lexer_comments;
    Alcotest.test_case "lexer positions" `Quick test_lexer_positions;
    Alcotest.test_case "lexer bad char" `Quick test_lexer_bad_char;
    Alcotest.test_case "parser precedence" `Quick test_parser_precedence;
    Alcotest.test_case "parser left assoc" `Quick test_parser_left_assoc;
    Alcotest.test_case "parser shift vs compare" `Quick test_parser_comparison_vs_shift;
    Alcotest.test_case "parser for forms" `Quick test_parser_for_forms;
    Alcotest.test_case "parser dangling else" `Quick test_parser_dangling_else;
    Alcotest.test_case "parser view decl" `Quick test_parser_view_decl;
    Alcotest.test_case "parser errors" `Quick test_parser_errors;
    Alcotest.test_case "semant types" `Quick test_semant_types;
    Alcotest.test_case "semant promotion" `Quick test_semant_promotion;
    Alcotest.test_case "semant undeclared" `Quick test_semant_undeclared;
    Alcotest.test_case "semant duplicates" `Quick test_semant_duplicates;
    Alcotest.test_case "semant arrays" `Quick test_semant_arrays;
    Alcotest.test_case "semant calls" `Quick test_semant_calls;
    Alcotest.test_case "semant returns" `Quick test_semant_returns;
    Alcotest.test_case "semant conditions" `Quick test_semant_conditions;
    Alcotest.test_case "semant no main" `Quick test_semant_no_main;
    Alcotest.test_case "semant for var" `Quick test_semant_for_var;
    Alcotest.test_case "semant views" `Quick test_semant_views ]
