(* Loop-unrolling tests: semantics preservation for every factor, mode
   and bound setting, remainder-loop handling and elimination,
   accumulator reassociation, bound classification, and the parallelism
   effects of Figure 4-6. *)

open Ilp_core
module T = Ilp_lang.Tast
module U = Ilp_lang.Unroll

let unroll ?(bounds = false) mode factor = Some { Ilp.mode; factor; bounds }

(* Every semantics check runs the full grid: both modes, both bound
   settings (classic remainder loops vs full unroll + peeling), factors
   dividing and not dividing the trip counts. *)
let check_factors ?(tol = 0.0) name src expected =
  List.iter
    (fun mode ->
      List.iter
        (fun bounds ->
          List.iter
            (fun factor ->
              let v =
                Helpers.sink_of
                  ?unroll:(unroll ~bounds mode factor)
                  ~level:Ilp_core.Ilp.O4 src
              in
              let label =
                Printf.sprintf "%s %s%s x%d" name
                  (match mode with
                  | Ilp_lang.Unroll.Naive -> "naive"
                  | _ -> "careful")
                  (if bounds then "+bounds" else "")
                  factor
              in
              match (expected, v) with
              | Ilp_sim.Value.Int a, Ilp_sim.Value.Int b ->
                  if a <> b then Alcotest.failf "%s: %d <> %d" label b a
              | Ilp_sim.Value.Float a, Ilp_sim.Value.Float b ->
                  Helpers.check_float_rel ~tol:(max tol 1e-12) label a b
              | _ -> Alcotest.failf "%s: type mismatch" label)
            [ 1; 2; 3; 4; 5; 7; 10 ])
        [ false; true ])
    [ Ilp_lang.Unroll.Naive; Ilp_lang.Unroll.Careful ]

let test_unroll_exact_multiple () =
  (* trip count 12, factors dividing and not dividing it *)
  let src =
    {|
arr a : int[12];
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 12; i = i + 1) { a[i] = i * i; }
  for (i = 0; i < 12; i = i + 1) { s = s + a[i]; }
  sink(s);
}
|}
  in
  check_factors "exact" src (Ilp_sim.Value.Int 506)

let test_unroll_remainder () =
  (* trip count 13: remainder loop must run for non-dividing factors *)
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 13; i = i + 1) { s = s + i; }
  sink(s);
}
|}
  in
  check_factors "remainder" src (Ilp_sim.Value.Int 78)

let test_unroll_zero_trip () =
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 100;
  for (i = 5; i < 5; i = i + 1) { s = s + 1; }
  for (i = 9; i < 5; i = i + 1) { s = s + 1; }
  sink(s);
}
|}
  in
  check_factors "zero trip" src (Ilp_sim.Value.Int 100)

let test_unroll_downward () =
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 20; i >= 3; i = i - 1) { s = s + i; }
  sink(s);
}
|}
  in
  (* 3 + 4 + ... + 20 = 207 *)
  check_factors "downward" src (Ilp_sim.Value.Int 207)

let test_unroll_step2 () =
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 21; i = i + 2) { s = s + i; }
  sink(s);
}
|}
  in
  (* 0+2+...+20 = 110 *)
  check_factors "step 2" src (Ilp_sim.Value.Int 110)

let test_unroll_loop_var_after () =
  (* the loop variable's final value is observable *)
  let src =
    {|
fun main() {
  var i : int;
  for (i = 0; i < 10; i = i + 3) { }
  sink(i);
}
|}
  in
  check_factors "final loop var" src (Ilp_sim.Value.Int 12)

let test_unroll_int_accumulator () =
  (* careful mode reassociates integer sums exactly *)
  let src =
    {|
arr a : int[40];
fun main() {
  var i : int;
  var s : int = 0;
  var p : int = 1;
  for (i = 0; i < 40; i = i + 1) { a[i] = i % 7 + 1; }
  for (i = 0; i < 40; i = i + 1) { s = s + a[i]; }
  for (i = 0; i < 10; i = i + 1) { p = p * a[i]; }
  sink(s * 1000 + p % 1000);
}
|}
  in
  let expected = Helpers.sink_of ~level:Ilp_core.Ilp.O0 src in
  check_factors "int accumulators" src expected

let test_unroll_observed_accumulator () =
  (* regression (found by the differential fuzzer): a statement shaped
     like an accumulation must not be split into partials when the body
     also reads the variable elsewhere — [x0 = x2] observes the true
     running product, which the partials don't carry.  Likewise a
     variable accumulated under two different operators cannot be
     reassociated under either. *)
  let src =
    {|
fun main() {
  var x0 : int = 16;
  var x2 : int = 10;
  var t : int = 1;
  var j : int;
  for (j = 0; j < 4; j = j + 1) {
    x0 = x2;
    x2 = x2 * 16;
  }
  for (j = 0; j < 6; j = j + 1) {
    t = t + 2;
    t = t * 3;
  }
  sink(x0 + x2 + t + j);
}
|}
  in
  check_factors "observed accumulator" src
    (Helpers.sink_of ~level:Ilp_core.Ilp.O0 src)

let test_unroll_float_accumulator_reassociates () =
  (* reassociation perturbs FP rounding: allow a relative tolerance *)
  let src =
    {|
arr a : real[64];
fun main() {
  var i : int;
  var s : real = 0.0;
  for (i = 0; i < 64; i = i + 1) { a[i] = 1.0 / real(i + 1); }
  for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
  sink(s);
}
|}
  in
  check_factors ~tol:1e-9 "float accumulator" src
    (Helpers.sink_of ~level:Ilp_core.Ilp.O0 src)

let test_unroll_store_load_cross_iteration () =
  (* recurrences must stay correct when unrolled *)
  let src =
    {|
arr a : real[50];
fun main() {
  var i : int;
  a[0] = 1.0;
  for (i = 1; i < 50; i = i + 1) { a[i] = a[i - 1] * 0.9 + 0.1; }
  sink(a[49]);
}
|}
  in
  check_factors "recurrence" src (Helpers.sink_of ~level:Ilp_core.Ilp.O0 src)

let test_unroll_skips_outer_loops () =
  (* only innermost loops unroll; nest must stay correct *)
  let src =
    {|
arr m : int[36];
fun main() {
  var i : int;
  var j : int;
  var s : int = 0;
  for (i = 0; i < 6; i = i + 1) {
    for (j = 0; j < 6; j = j + 1) { m[i * 6 + j] = i * j; }
  }
  for (i = 0; i < 36; i = i + 1) { s = s + m[i]; }
  sink(s);
}
|}
  in
  check_factors "nest" src (Ilp_sim.Value.Int 225)

let test_unroll_increases_parallelism () =
  (* the Figure 4-6 effect, in miniature: careful unrolling of a
     reduction increases measured parallelism *)
  let src =
    {|
arr x : real[200];
arr y : real[200];
fun main() {
  var i : int;
  var s : real = 0.0;
  for (i = 0; i < 200; i = i + 1) { x[i] = real(i); y[i] = real(200 - i); }
  for (i = 0; i < 200; i = i + 1) { s = s + x[i] * y[i]; }
  sink(s);
}
|}
  in
  let config = Ilp_machine.Config.make "wide" ~issue_width:16 ~temp_regs:40 in
  let ilp u =
    (Helpers.measure ~config ?unroll:u src).Ilp_sim.Metrics.speedup
  in
  let base = ilp None in
  let careful = ilp (unroll Ilp_lang.Unroll.Careful 4) in
  Alcotest.(check bool)
    (Printf.sprintf "careful 4x (%.2f) beats rolled (%.2f)" careful base)
    true (careful > base *. 1.2)

let test_unroll_loops_with_return_untouched () =
  let src =
    {|
arr a : int[20];
fun find(v: int) : int {
  var i : int;
  for (i = 0; i < 20; i = i + 1) {
    if (a[i] == v) { return i; }
  }
  return -1;
}
fun main() {
  var i : int;
  for (i = 0; i < 20; i = i + 1) { a[i] = i * 3; }
  sink(find(27) * 100 + find(5));
}
|}
  in
  check_factors "loop with return" src (Ilp_sim.Value.Int 899)

(* --- bound analysis: classification, skip counters, peel/full ---------- *)

let program_stats ?bounds mode factor src =
  U.program_stats ?bounds mode factor (Ilp_lang.Semant.compile_source src)

let stats_of ?bounds mode factor src =
  snd (program_stats ?bounds mode factor src)

let rec count_fors stmts =
  List.fold_left
    (fun n s ->
      n
      +
      match s with
      | T.TSfor (_, body) -> 1 + count_fors body
      | T.TSif (_, a, b) -> count_fors a + count_fors b
      | T.TSwhile (_, body) -> count_fors body
      | _ -> 0)
    0 stmts

let count_fors_prog (p : T.tprogram) =
  List.fold_left (fun n (f : T.tfunc) -> n + count_fors f.T.tf_body) 0 p.T.tfuncs

let check_skip name src reason =
  List.iter
    (fun bounds ->
      let p, st =
        program_stats ~bounds Ilp_lang.Unroll.Careful 4 src
      in
      Alcotest.(check int)
        (Printf.sprintf "%s: %s count (bounds=%b)" name
           (U.skip_reason_name reason) bounds)
        1
        (U.skip_count st reason);
      (* a skipped loop is left byte-for-byte alone *)
      Alcotest.(check bool)
        (Printf.sprintf "%s: program untouched (bounds=%b)" name bounds)
        true
        (T.equal_tprogram p (Ilp_lang.Semant.compile_source src)))
    [ false; true ]

let test_skip_index_mutated () =
  (* regression: the substitution-based transform rewrites reads of the
     index in copy [j] to [i + j*step], so a body that assigns the index
     — even the identity [i = i;] — executes a real mutation once
     unrolled.  Such loops must be skipped, and counted as such. *)
  let self_assign =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 10; i = i + 1) { i = i; s = s + i; }
  sink(s);
}
|}
  in
  check_skip "self assign" self_assign Ilp_lang.Unroll.Index_mutated;
  check_factors "self assign" self_assign (Ilp_sim.Value.Int 45);
  let increment =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 10; i = i + 1) { s = s + i; i = i + 1; }
  sink(s);
}
|}
  in
  (* the body's own increment makes the original visit 0, 2, 4, 6, 8 *)
  check_skip "body increments index" increment Ilp_lang.Unroll.Index_mutated;
  check_factors "body increments index" increment (Ilp_sim.Value.Int 20)

let test_skip_direction_mismatch () =
  (* regression: the classic transform shifts the main-loop limit by
     -(factor-1)*step; on a zero-trip loop whose step fights the
     comparison ([i > 2] while counting up) that shift makes the
     condition true on entry and the unrolled "zero-trip" loop runs
     forever.  The loop must be recognised and skipped — this test
     terminating at factors >= 4 is the regression. *)
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 7;
  for (i = 0; i > 2; i = i + 1) { s = s + 1; }
  sink(s);
}
|}
  in
  check_skip "direction mismatch" src Ilp_lang.Unroll.Direction_mismatch;
  check_factors "direction mismatch" src (Ilp_sim.Value.Int 7)

let test_classify_degenerate_step () =
  (* the frontend rejects a literal zero step, so exercise the
     classifier directly: a hand-built header with [tf_step = 0] must
     come back degenerate, never counted *)
  let iv = { T.vr_name = "i"; vr_ty = T.Tint; vr_kind = T.Vlocal } in
  let hdr step =
    { T.tf_var = iv; tf_init = T.int_expr 0; tf_cmp = Ilp_lang.Ast.Blt;
      tf_limit = T.int_expr 10; tf_step = step }
  in
  (match Ilp_lang.Bounds.classify Ilp_lang.Bounds.Env.empty (hdr 0) [] with
  | Ilp_lang.Bounds.Degenerate_step -> ()
  | c ->
      Alcotest.failf "step 0 classified %s"
        (match c with
        | Ilp_lang.Bounds.Counted _ -> "counted"
        | _ -> "other"));
  (match Ilp_lang.Bounds.classify Ilp_lang.Bounds.Env.empty (hdr (-1)) [] with
  | Ilp_lang.Bounds.Direction_mismatch -> ()
  | _ -> Alcotest.fail "negative step under < not flagged");
  match Ilp_lang.Bounds.classify Ilp_lang.Bounds.Env.empty (hdr 3) [] with
  | Ilp_lang.Bounds.Counted { start = 0; step = 3; trips = 4 } -> ()
  | _ -> Alcotest.fail "well-formed constant header not counted"

let test_skip_limit_mutated () =
  (* the lowering re-evaluates the limit every iteration, so a body
     that assigns a variable the limit reads changes the iteration
     space; unrolling against a shifted stale limit miscompiles.  Here
     the original meets in the middle after 5 iterations. *)
  let src =
    {|
fun main() {
  var i : int;
  var n : int = 10;
  var s : int = 0;
  for (i = 0; i < n; i = i + 1) { n = n - 1; s = s + 1; }
  sink(s * 100 + n);
}
|}
  in
  check_skip "limit mutated" src Ilp_lang.Unroll.Limit_mutated;
  check_factors "limit mutated" src (Ilp_sim.Value.Int 505)

let test_skip_loop_var_in_limit () =
  (* a limit reading the loop variable is re-evaluated against the
     moving index — structurally never unrollable.  (Not executed: the
     original program is an infinite loop by design.) *)
  let src =
    {|
fun f() {
  var i : int;
  for (i = 0; i < i + 3; i = i + 1) { }
}
fun main() { sink(0); }
|}
  in
  check_skip "loop var in limit" src Ilp_lang.Unroll.Limit_mutated

let test_full_unroll_eliminates_loop () =
  (* trips 6 <= threshold 8: with bounds on, no loop survives at all *)
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 6; i = i + 1) { s = s + i * i; }
  sink(s + i);
}
|}
  in
  List.iter
    (fun mode ->
      let p, st = program_stats ~bounds:true mode 4 src in
      Alcotest.(check int) "one loop fully unrolled" 1 st.U.full;
      Alcotest.(check int) "no loop left" 0 (count_fors_prog p);
      let classic, _ = program_stats ~bounds:false mode 4 src in
      Alcotest.(check int) "classic keeps main + remainder" 2
        (count_fors_prog classic))
    [ Ilp_lang.Unroll.Naive; Ilp_lang.Unroll.Careful ];
  check_factors "full unroll" src (Ilp_sim.Value.Int 61)

let test_peel_eliminates_remainder () =
  (* trips 13, factor 4: peeling runs one leading copy straight-line and
     leaves exactly one loop of 12 iterations — the classic transform's
     remainder loop (and its dynamic compare/branch work) is gone *)
  let src =
    {|
arr a : int[13];
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 13; i = i + 1) { a[i] = 2 * i + 1; s = s + a[i]; }
  sink(s * 10 + i);
}
|}
  in
  let p, st = program_stats ~bounds:true Ilp_lang.Unroll.Careful 4 src in
  Alcotest.(check int) "one loop peeled" 1 st.U.peeled;
  Alcotest.(check int) "exactly one loop left" 1 (count_fors_prog p);
  let classic, _ = program_stats ~bounds:false Ilp_lang.Unroll.Careful 4 src in
  Alcotest.(check int) "classic keeps main + remainder" 2
    (count_fors_prog classic);
  (* zero remainder-loop dynamic instructions: the peeled compilation
     must execute strictly fewer instructions than the classic one *)
  let dyn bounds =
    (Helpers.run_source ~level:Ilp_core.Ilp.O4
       ?unroll:(unroll ~bounds Ilp_lang.Unroll.Careful 4) src)
      .Ilp_sim.Exec.dyn_instrs
  in
  let peeled = dyn true and classic_dyn = dyn false in
  Alcotest.(check bool)
    (Printf.sprintf "peel executes fewer instructions (%d < %d)" peeled
       classic_dyn)
    true (peeled < classic_dyn);
  check_factors "peel" src (Ilp_sim.Value.Int 1703)

let test_boundary_trip_counts () =
  (* deterministic sweep of the off-by-one landscape: for each factor,
     trip counts 0, 1, factor-1, factor, factor+1, counting up and
     down, every mode and bound setting, against the O0 reference *)
  List.iter
    (fun factor ->
      List.iter
        (fun trips ->
          let up =
            Printf.sprintf
              "fun main() {\n\
              \  var i : int;\n\
              \  var s : int = 0;\n\
              \  for (i = 0; i < %d; i = i + 1) { s = s + i * i + 1; }\n\
              \  sink(s * 100 + i);\n\
               }\n"
              trips
          in
          let down =
            Printf.sprintf
              "fun main() {\n\
              \  var i : int;\n\
              \  var s : int = 0;\n\
              \  for (i = %d; i > 0; i = i - 1) { s = s + i * i + 1; }\n\
              \  sink(s * 100 + i);\n\
               }\n"
              trips
          in
          List.iter
            (fun (dir, src) ->
              let expected = Helpers.sink_of ~level:Ilp_core.Ilp.O0 src in
              List.iter
                (fun mode ->
                  List.iter
                    (fun bounds ->
                      let v =
                        Helpers.sink_of
                          ?unroll:(unroll ~bounds mode factor)
                          ~level:Ilp_core.Ilp.O4 src
                      in
                      if not (Ilp_sim.Value.equal v expected) then
                        Alcotest.failf
                          "%s trips=%d factor=%d bounds=%b: %a <> %a" dir
                          trips factor bounds Ilp_sim.Value.pp v
                          Ilp_sim.Value.pp expected)
                    [ false; true ])
                [ Ilp_lang.Unroll.Naive; Ilp_lang.Unroll.Careful ])
            [ ("up", up); ("down", down) ])
        [ 0; 1; factor - 1; factor; factor + 1 ])
    [ 2; 3; 4; 8 ]

(* --- composite-subtraction subscripts (flatten_sum) -------------------- *)

let test_normalize_index () =
  (* ((k + 2) - j) - 1 and (k - (j + 1)) - 2 + 2 both canonicalise to
     base (k - j) plus a trailing constant, so copies of a subscript
     like livermore's w[k - j - 1] CSE to a shared base term *)
  let v name = T.var_expr { T.vr_name = name; vr_ty = T.Tint; vr_kind = T.Vlocal } in
  let bin op a b = { T.tnode = T.Tbinary (op, a, b); tty = T.Tint } in
  let ( +! ) = bin Ilp_lang.Ast.Badd and ( -! ) = bin Ilp_lang.Ast.Bsub in
  let k = v "k" and j = v "j" in
  let check label e expected =
    let got = U.normalize_index e in
    if not (T.equal_texpr got expected) then
      Alcotest.failf "%s: normalised to %s, wanted %s" label
        (T.show_texpr got) (T.show_texpr expected)
  in
  check "((k+2)-j)-1"
    ((k +! T.int_expr 2) -! j -! T.int_expr 1)
    ((k -! j) +! T.int_expr 1);
  check "(k-(j+1))-1"
    ((k -! (j +! T.int_expr 1)) -! T.int_expr 1)
    ((k -! j) -! T.int_expr 2);
  check "k-j" (k -! j) (k -! j);
  check "5-(j-2)"
    (T.int_expr 5 -! (j -! T.int_expr 2))
    ((T.int_expr 0 -! j) +! T.int_expr 7)

let test_composite_subscript_cse () =
  (* the livermore kernel-3 shape: with a composite subtraction
     subscript, careful mode's canonicalisation lets local CSE share
     the (k - j) base between the unrolled copies, so the careful
     compilation executes no more instructions than the naive one *)
  let src =
    {|
arr b : real[40];
arr w : real[40];
fun main() {
  var j : int;
  var k : int = 20;
  var s : real = 0.0;
  for (j = 0; j < 20; j = j + 1) { b[j + 20] = real(j); w[j] = real(j + 1); }
  for (j = 0; j < 18; j = j + 1) { s = s + b[k + j] * w[k - j - 1]; }
  sink(s);
}
|}
  in
  let dyn mode =
    (Helpers.run_source ~level:Ilp_core.Ilp.O4 ?unroll:(unroll mode 2) src)
      .Ilp_sim.Exec.dyn_instrs
  in
  let naive = dyn Ilp_lang.Unroll.Naive
  and careful = dyn Ilp_lang.Unroll.Careful in
  Alcotest.(check bool)
    (Printf.sprintf "careful x2 (%d) executes fewer instructions than \
                     naive x2 (%d)" careful naive)
    true (careful < naive);
  check_factors ~tol:1e-9 "composite subscript" src
    (Helpers.sink_of ~level:Ilp_core.Ilp.O0 src)

let tests =
  [ Alcotest.test_case "exact multiple" `Quick test_unroll_exact_multiple;
    Alcotest.test_case "remainder loop" `Quick test_unroll_remainder;
    Alcotest.test_case "zero trip" `Quick test_unroll_zero_trip;
    Alcotest.test_case "downward loop" `Quick test_unroll_downward;
    Alcotest.test_case "step 2" `Quick test_unroll_step2;
    Alcotest.test_case "final loop variable" `Quick test_unroll_loop_var_after;
    Alcotest.test_case "int accumulators" `Quick test_unroll_int_accumulator;
    Alcotest.test_case "observed accumulator" `Quick test_unroll_observed_accumulator;
    Alcotest.test_case "float accumulator" `Quick test_unroll_float_accumulator_reassociates;
    Alcotest.test_case "cross-iteration recurrence" `Quick test_unroll_store_load_cross_iteration;
    Alcotest.test_case "nested loops" `Quick test_unroll_skips_outer_loops;
    Alcotest.test_case "parallelism increases" `Quick test_unroll_increases_parallelism;
    Alcotest.test_case "loops with return untouched" `Quick test_unroll_loops_with_return_untouched;
    Alcotest.test_case "index-mutating bodies skipped" `Quick test_skip_index_mutated;
    Alcotest.test_case "direction mismatch skipped" `Quick test_skip_direction_mismatch;
    Alcotest.test_case "degenerate step classified" `Quick test_classify_degenerate_step;
    Alcotest.test_case "limit mutation skipped" `Quick test_skip_limit_mutated;
    Alcotest.test_case "loop var in limit skipped" `Quick test_skip_loop_var_in_limit;
    Alcotest.test_case "full unroll eliminates loop" `Quick test_full_unroll_eliminates_loop;
    Alcotest.test_case "peel eliminates remainder" `Quick test_peel_eliminates_remainder;
    Alcotest.test_case "boundary trip counts" `Quick test_boundary_trip_counts;
    Alcotest.test_case "subscript normalisation" `Quick test_normalize_index;
    Alcotest.test_case "composite subscript CSE" `Quick test_composite_subscript_cse ]
