(* Loop-unrolling tests: semantics preservation for every factor and
   mode, remainder-loop handling, accumulator reassociation, and the
   parallelism effects of Figure 4-6. *)

open Ilp_core

let unroll mode factor = Some { Ilp.mode; factor }

let check_factors ?(tol = 0.0) name src expected =
  List.iter
    (fun mode ->
      List.iter
        (fun factor ->
          let v =
            Helpers.sink_of ?unroll:(unroll mode factor)
              ~level:Ilp_core.Ilp.O4 src
          in
          let label =
            Printf.sprintf "%s %s x%d" name
              (match mode with Ilp_lang.Unroll.Naive -> "naive" | _ -> "careful")
              factor
          in
          match (expected, v) with
          | Ilp_sim.Value.Int a, Ilp_sim.Value.Int b ->
              if a <> b then Alcotest.failf "%s: %d <> %d" label b a
          | Ilp_sim.Value.Float a, Ilp_sim.Value.Float b ->
              Helpers.check_float_rel ~tol:(max tol 1e-12) label a b
          | _ -> Alcotest.failf "%s: type mismatch" label)
        [ 1; 2; 3; 4; 5; 7; 10 ])
    [ Ilp_lang.Unroll.Naive; Ilp_lang.Unroll.Careful ]

let test_unroll_exact_multiple () =
  (* trip count 12, factors dividing and not dividing it *)
  let src =
    {|
arr a : int[12];
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 12; i = i + 1) { a[i] = i * i; }
  for (i = 0; i < 12; i = i + 1) { s = s + a[i]; }
  sink(s);
}
|}
  in
  check_factors "exact" src (Ilp_sim.Value.Int 506)

let test_unroll_remainder () =
  (* trip count 13: remainder loop must run for non-dividing factors *)
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 13; i = i + 1) { s = s + i; }
  sink(s);
}
|}
  in
  check_factors "remainder" src (Ilp_sim.Value.Int 78)

let test_unroll_zero_trip () =
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 100;
  for (i = 5; i < 5; i = i + 1) { s = s + 1; }
  for (i = 9; i < 5; i = i + 1) { s = s + 1; }
  sink(s);
}
|}
  in
  check_factors "zero trip" src (Ilp_sim.Value.Int 100)

let test_unroll_downward () =
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 20; i >= 3; i = i - 1) { s = s + i; }
  sink(s);
}
|}
  in
  (* 3 + 4 + ... + 20 = 207 *)
  check_factors "downward" src (Ilp_sim.Value.Int 207)

let test_unroll_step2 () =
  let src =
    {|
fun main() {
  var i : int;
  var s : int = 0;
  for (i = 0; i < 21; i = i + 2) { s = s + i; }
  sink(s);
}
|}
  in
  (* 0+2+...+20 = 110 *)
  check_factors "step 2" src (Ilp_sim.Value.Int 110)

let test_unroll_loop_var_after () =
  (* the loop variable's final value is observable *)
  let src =
    {|
fun main() {
  var i : int;
  for (i = 0; i < 10; i = i + 3) { }
  sink(i);
}
|}
  in
  check_factors "final loop var" src (Ilp_sim.Value.Int 12)

let test_unroll_int_accumulator () =
  (* careful mode reassociates integer sums exactly *)
  let src =
    {|
arr a : int[40];
fun main() {
  var i : int;
  var s : int = 0;
  var p : int = 1;
  for (i = 0; i < 40; i = i + 1) { a[i] = i % 7 + 1; }
  for (i = 0; i < 40; i = i + 1) { s = s + a[i]; }
  for (i = 0; i < 10; i = i + 1) { p = p * a[i]; }
  sink(s * 1000 + p % 1000);
}
|}
  in
  let expected = Helpers.sink_of ~level:Ilp_core.Ilp.O0 src in
  check_factors "int accumulators" src expected

let test_unroll_observed_accumulator () =
  (* regression (found by the differential fuzzer): a statement shaped
     like an accumulation must not be split into partials when the body
     also reads the variable elsewhere — [x0 = x2] observes the true
     running product, which the partials don't carry.  Likewise a
     variable accumulated under two different operators cannot be
     reassociated under either. *)
  let src =
    {|
fun main() {
  var x0 : int = 16;
  var x2 : int = 10;
  var t : int = 1;
  var j : int;
  for (j = 0; j < 4; j = j + 1) {
    x0 = x2;
    x2 = x2 * 16;
  }
  for (j = 0; j < 6; j = j + 1) {
    t = t + 2;
    t = t * 3;
  }
  sink(x0 + x2 + t + j);
}
|}
  in
  check_factors "observed accumulator" src
    (Helpers.sink_of ~level:Ilp_core.Ilp.O0 src)

let test_unroll_float_accumulator_reassociates () =
  (* reassociation perturbs FP rounding: allow a relative tolerance *)
  let src =
    {|
arr a : real[64];
fun main() {
  var i : int;
  var s : real = 0.0;
  for (i = 0; i < 64; i = i + 1) { a[i] = 1.0 / real(i + 1); }
  for (i = 0; i < 64; i = i + 1) { s = s + a[i]; }
  sink(s);
}
|}
  in
  check_factors ~tol:1e-9 "float accumulator" src
    (Helpers.sink_of ~level:Ilp_core.Ilp.O0 src)

let test_unroll_store_load_cross_iteration () =
  (* recurrences must stay correct when unrolled *)
  let src =
    {|
arr a : real[50];
fun main() {
  var i : int;
  a[0] = 1.0;
  for (i = 1; i < 50; i = i + 1) { a[i] = a[i - 1] * 0.9 + 0.1; }
  sink(a[49]);
}
|}
  in
  check_factors "recurrence" src (Helpers.sink_of ~level:Ilp_core.Ilp.O0 src)

let test_unroll_skips_outer_loops () =
  (* only innermost loops unroll; nest must stay correct *)
  let src =
    {|
arr m : int[36];
fun main() {
  var i : int;
  var j : int;
  var s : int = 0;
  for (i = 0; i < 6; i = i + 1) {
    for (j = 0; j < 6; j = j + 1) { m[i * 6 + j] = i * j; }
  }
  for (i = 0; i < 36; i = i + 1) { s = s + m[i]; }
  sink(s);
}
|}
  in
  check_factors "nest" src (Ilp_sim.Value.Int 225)

let test_unroll_increases_parallelism () =
  (* the Figure 4-6 effect, in miniature: careful unrolling of a
     reduction increases measured parallelism *)
  let src =
    {|
arr x : real[200];
arr y : real[200];
fun main() {
  var i : int;
  var s : real = 0.0;
  for (i = 0; i < 200; i = i + 1) { x[i] = real(i); y[i] = real(200 - i); }
  for (i = 0; i < 200; i = i + 1) { s = s + x[i] * y[i]; }
  sink(s);
}
|}
  in
  let config = Ilp_machine.Config.make "wide" ~issue_width:16 ~temp_regs:40 in
  let ilp u =
    (Helpers.measure ~config ?unroll:u src).Ilp_sim.Metrics.speedup
  in
  let base = ilp None in
  let careful = ilp (unroll Ilp_lang.Unroll.Careful 4) in
  Alcotest.(check bool)
    (Printf.sprintf "careful 4x (%.2f) beats rolled (%.2f)" careful base)
    true (careful > base *. 1.2)

let test_unroll_loops_with_return_untouched () =
  let src =
    {|
arr a : int[20];
fun find(v: int) : int {
  var i : int;
  for (i = 0; i < 20; i = i + 1) {
    if (a[i] == v) { return i; }
  }
  return -1;
}
fun main() {
  var i : int;
  for (i = 0; i < 20; i = i + 1) { a[i] = i * 3; }
  sink(find(27) * 100 + find(5));
}
|}
  in
  check_factors "loop with return" src (Ilp_sim.Value.Int 899)

let tests =
  [ Alcotest.test_case "exact multiple" `Quick test_unroll_exact_multiple;
    Alcotest.test_case "remainder loop" `Quick test_unroll_remainder;
    Alcotest.test_case "zero trip" `Quick test_unroll_zero_trip;
    Alcotest.test_case "downward loop" `Quick test_unroll_downward;
    Alcotest.test_case "step 2" `Quick test_unroll_step2;
    Alcotest.test_case "final loop variable" `Quick test_unroll_loop_var_after;
    Alcotest.test_case "int accumulators" `Quick test_unroll_int_accumulator;
    Alcotest.test_case "observed accumulator" `Quick test_unroll_observed_accumulator;
    Alcotest.test_case "float accumulator" `Quick test_unroll_float_accumulator_reassociates;
    Alcotest.test_case "cross-iteration recurrence" `Quick test_unroll_store_load_cross_iteration;
    Alcotest.test_case "nested loops" `Quick test_unroll_skips_outer_loops;
    Alcotest.test_case "parallelism increases" `Quick test_unroll_increases_parallelism;
    Alcotest.test_case "loops with return untouched" `Quick test_unroll_loops_with_return_untouched ]
