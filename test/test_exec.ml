(* Executor semantics: every opcode, control flow, calls, memory, and
   fault behaviour, using hand-built IR and small MiniMod programs. *)

open Ilp_ir

let sink_addr = Program.globals_base

let run_main instrs =
  let p =
    Program.make
      ~globals:[ { Program.gname = "__sink"; words = 1; init = Program.Zero } ]
      ~functions:[ Builder.single_block_main instrs ]
  in
  Ilp_sim.Exec.run p

(* evaluate a sequence that leaves its result in r9, then store to sink *)
let eval instrs =
  let r = Reg.phys in
  let all =
    instrs @ [ Builder.st ~value:(r 9) ~base:(r 8) ~offset:0 () ]
  in
  let with_base = Builder.li (Reg.phys 8) sink_addr :: all in
  (run_main with_base).Ilp_sim.Exec.sink

let check_int name expected instrs =
  Alcotest.check Helpers.value_testable name (Ilp_sim.Value.Int expected)
    (eval instrs)

let check_flt name expected instrs =
  match eval instrs with
  | Ilp_sim.Value.Float f -> Helpers.check_float name expected f
  | Ilp_sim.Value.Int _ -> Alcotest.failf "%s: expected float" name

let r = Reg.phys

let test_int_arith () =
  check_int "add" 7 [ Builder.li (r 1) 3; Builder.li (r 2) 4; Builder.add (r 9) (r 1) (r 2) ];
  check_int "sub" (-1) [ Builder.li (r 1) 3; Builder.li (r 2) 4; Builder.sub (r 9) (r 1) (r 2) ];
  check_int "mul" 12 [ Builder.li (r 1) 3; Builder.li (r 2) 4; Builder.mul (r 9) (r 1) (r 2) ];
  check_int "div" 3 [ Builder.li (r 1) 13; Builder.li (r 2) 4; Builder.div (r 9) (r 1) (r 2) ];
  check_int "rem" 1
    [ Builder.li (r 1) 13; Builder.li (r 2) 4;
      Instr.make Opcode.Rem ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1); Instr.Oreg (r 2) ] ];
  check_int "neg" (-5)
    [ Builder.li (r 1) 5; Instr.make Opcode.Neg ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1) ] ]

let test_int_logic_shift () =
  check_int "and" 0b100 [ Builder.li (r 1) 0b110; Builder.li (r 2) 0b101; Builder.and_ (r 9) (r 1) (r 2) ];
  check_int "or" 0b111 [ Builder.li (r 1) 0b110; Builder.li (r 2) 0b101; Builder.or_ (r 9) (r 1) (r 2) ];
  check_int "xor" 0b011 [ Builder.li (r 1) 0b110; Builder.li (r 2) 0b101; Builder.xor (r 9) (r 1) (r 2) ];
  check_int "shl" 40 [ Builder.li (r 1) 5; Builder.shl (r 9) (r 1) 3 ];
  check_int "sra" (-2)
    [ Builder.li (r 1) (-8);
      Instr.make Opcode.Sra ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1); Instr.Oimm 2 ] ];
  check_int "not" (-1)
    [ Builder.li (r 1) 0; Instr.make Opcode.Not ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1) ] ]

let test_comparisons () =
  check_int "slt true" 1 [ Builder.li (r 1) 2; Builder.li (r 2) 3; Builder.slt (r 9) (r 1) (r 2) ];
  check_int "slt false" 0 [ Builder.li (r 1) 3; Builder.li (r 2) 3; Builder.slt (r 9) (r 1) (r 2) ];
  check_int "seq" 1
    [ Builder.li (r 1) 3;
      Instr.make Opcode.Seq ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1); Instr.Oimm 3 ] ];
  check_int "sne" 1
    [ Builder.li (r 1) 3;
      Instr.make Opcode.Sne ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1); Instr.Oimm 4 ] ]

let test_float_ops () =
  check_flt "fadd" 3.5 [ Builder.fli (r 1) 1.25; Builder.fli (r 2) 2.25; Builder.fadd (r 9) (r 1) (r 2) ];
  check_flt "fsub" (-1.0) [ Builder.fli (r 1) 1.25; Builder.fli (r 2) 2.25; Builder.fsub (r 9) (r 1) (r 2) ];
  check_flt "fmul" 2.5 [ Builder.fli (r 1) 1.25; Builder.fli (r 2) 2.0; Builder.fmul (r 9) (r 1) (r 2) ];
  check_flt "fdiv" 0.625 [ Builder.fli (r 1) 1.25; Builder.fli (r 2) 2.0; Builder.fdiv (r 9) (r 1) (r 2) ];
  check_flt "itof" 7.0 [ Builder.li (r 1) 7; Builder.itof (r 9) (r 1) ];
  check_int "ftoi" 7
    [ Builder.fli (r 1) 7.9; Instr.make Opcode.Ftoi ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1) ] ];
  check_int "flt" 1
    [ Builder.fli (r 1) 1.0; Builder.fli (r 2) 2.0;
      Instr.make Opcode.Flt ~dst:(r 9) ~srcs:[ Instr.Oreg (r 1); Instr.Oreg (r 2) ] ]

let test_memory_roundtrip () =
  check_int "store/load" 42
    [ Builder.li (r 1) 42;
      Builder.li (r 2) 2000;
      Builder.st ~value:(r 1) ~base:(r 2) ~offset:5 ();
      Builder.ld (r 9) ~base:(r 2) ~offset:5 ]

let test_absolute_addressing () =
  check_int "absolute base" 9
    [ Builder.li (r 1) 9;
      Instr.make Opcode.St ~srcs:[ Instr.Oreg (r 1); Instr.Oimm 3000 ];
      Instr.make Opcode.Ld ~dst:(r 9) ~srcs:[ Instr.Oimm 3000 ] ]

let test_branches () =
  let skip = Label.of_string "skip" in
  let p =
    Program.make
      ~globals:[ { Program.gname = "__sink"; words = 1; init = Program.Zero } ]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main")
                [ Builder.li (r 1) 1;
                  Builder.li (r 2) 2;
                  Builder.li (r 9) 111;
                  Builder.blt (r 1) (r 2) skip;
                  Builder.li (r 9) 222 (* skipped *) ];
              Block.make skip
                [ Builder.li (r 8) sink_addr;
                  Builder.st ~value:(r 9) ~base:(r 8) ~offset:0 ();
                  Builder.halt () ] ]
        ]
  in
  Alcotest.check Helpers.value_testable "taken branch skips"
    (Ilp_sim.Value.Int 111) (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink

let test_call_stack () =
  (* call a function that sets r1, main sinks it; ret addr is off-memory *)
  let f_label = Label.of_string "f" in
  let p =
    Program.make
      ~globals:[ { Program.gname = "__sink"; words = 1; init = Program.Zero } ]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main")
                [ Builder.call f_label;
                  Builder.li (r 8) sink_addr;
                  Builder.st ~value:Instr.ret_reg ~base:(r 8) ~offset:0 ();
                  Builder.halt () ] ];
          Func.make ~name:"f" ~frame_size:0 ~n_params:0
            [ Block.make f_label
                [ Builder.li Instr.ret_reg 77; Builder.ret () ] ]
        ]
  in
  Alcotest.check Helpers.value_testable "call/ret" (Ilp_sim.Value.Int 77)
    (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink

let expect_fault name instrs =
  match run_main instrs with
  | exception Ilp_sim.Exec.Fault _ -> ()
  | _ -> Alcotest.failf "%s: expected a fault" name

let test_faults () =
  expect_fault "div by zero"
    [ Builder.li (r 1) 1; Builder.li (r 2) 0; Builder.div (r 9) (r 1) (r 2) ];
  expect_fault "oob load"
    [ Builder.li (r 1) (-5); Builder.ld (r 9) ~base:(r 1) ~offset:0 ];
  expect_fault "jump to unknown label"
    [ Builder.jmp (Label.of_string "nowhere") ];
  (* FP instruction on integer words is a dynamic type error *)
  match
    run_main [ Builder.li (r 1) 1; Builder.fadd (r 9) (r 1) (r 1) ]
  with
  | exception Ilp_sim.Value.Type_error _ -> ()
  | _ -> Alcotest.fail "expected a type error"

(* max_steps guard *)
let test_step_guard () =
  let back = Label.of_string "main" in
  let p =
    Program.make ~globals:[]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make back [ Builder.jmp back ] ] ]
  in
  let options = { Ilp_sim.Exec.default_options with Ilp_sim.Exec.max_steps = 1000 } in
  match Ilp_sim.Exec.run ~options p with
  | exception Ilp_sim.Exec.Fault _ -> ()
  | _ -> Alcotest.fail "expected step-limit fault"

let test_class_counts () =
  let outcome =
    run_main
      [ Builder.li (r 1) 1;
        Builder.add (r 2) (r 1) (r 1);
        Builder.add (r 3) (r 2) (r 1);
        Builder.fli (r 4) 1.0;
        Builder.fadd (r 5) (r 4) (r 4) ]
  in
  let count cls = outcome.Ilp_sim.Exec.class_counts.(Iclass.to_index cls) in
  Alcotest.(check int) "two moves (li)" 2 (count Iclass.Move);
  Alcotest.(check int) "two adds" 2 (count Iclass.Add_sub);
  Alcotest.(check int) "one fp add" 1 (count Iclass.Fp_add);
  Alcotest.(check int) "one jump (halt)" 1 (count Iclass.Jump);
  Alcotest.(check int) "dyn instrs" 6 outcome.Ilp_sim.Exec.dyn_instrs

let test_global_init () =
  let p =
    Program.make
      ~globals:
        [ { Program.gname = "__sink"; words = 1; init = Program.Zero };
          { Program.gname = "g"; words = 1; init = Program.Ints [ 123 ] };
          { Program.gname = "fs"; words = 2; init = Program.Floats [ 1.5; 2.5 ] } ]
      ~functions:
        [ Builder.single_block_main
            [ Instr.make Opcode.Ld ~dst:(r 9) ~srcs:[ Instr.Oimm (sink_addr + 1) ];
              Builder.li (r 8) sink_addr;
              Builder.st ~value:(r 9) ~base:(r 8) ~offset:0 () ] ]
  in
  Alcotest.check Helpers.value_testable "initialized global"
    (Ilp_sim.Value.Int 123) (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink

let test_empty_block_skipped () =
  (* jumping to an empty block falls through to the next *)
  let empty = Label.of_string "empty" in
  let after = Label.of_string "after" in
  let p =
    Program.make
      ~globals:[ { Program.gname = "__sink"; words = 1; init = Program.Zero } ]
      ~functions:
        [ Func.make ~name:"main" ~frame_size:0 ~n_params:0
            [ Block.make (Label.of_string "main") [ Builder.jmp empty ];
              Block.make empty [];
              Block.make after
                [ Builder.li (r 9) 5;
                  Builder.li (r 8) sink_addr;
                  Builder.st ~value:(r 9) ~base:(r 8) ~offset:0 ();
                  Builder.halt () ] ]
        ]
  in
  Alcotest.check Helpers.value_testable "empty block fallthrough"
    (Ilp_sim.Value.Int 5) (Ilp_sim.Exec.run p).Ilp_sim.Exec.sink

let tests =
  [ Alcotest.test_case "integer arithmetic" `Quick test_int_arith;
    Alcotest.test_case "logic and shifts" `Quick test_int_logic_shift;
    Alcotest.test_case "comparisons" `Quick test_comparisons;
    Alcotest.test_case "floating point" `Quick test_float_ops;
    Alcotest.test_case "memory roundtrip" `Quick test_memory_roundtrip;
    Alcotest.test_case "absolute addressing" `Quick test_absolute_addressing;
    Alcotest.test_case "branches" `Quick test_branches;
    Alcotest.test_case "call stack" `Quick test_call_stack;
    Alcotest.test_case "faults" `Quick test_faults;
    Alcotest.test_case "step guard" `Quick test_step_guard;
    Alcotest.test_case "class counts" `Quick test_class_counts;
    Alcotest.test_case "global initialization" `Quick test_global_init;
    Alcotest.test_case "empty blocks skipped" `Quick test_empty_block_skipped ]
