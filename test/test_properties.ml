(* Property-based tests (QCheck).

   The headline property is differential compiler testing: random
   well-formed MiniMod programs must compute the same checksum at every
   optimization level, on every machine, and under unrolling.  Smaller
   properties cover the data structures and the scheduler. *)

open Ilp_ir
open Ilp_machine

let count = 60 (* random programs per differential property *)

let value_key = function
  | Ilp_sim.Value.Int n -> Printf.sprintf "i%d" n
  | Ilp_sim.Value.Float f -> Printf.sprintf "f%.17g" f

let safe_sink ?config ?level ?unroll src =
  try value_key (Helpers.sink_of ?config ?level ?unroll src)
  with e -> Printf.sprintf "EXN:%s" (Printexc.to_string e)

let prop_levels_agree =
  QCheck2.Test.make ~count ~name:"random programs: all opt levels agree"
    ~print:(fun s -> s)
    Gen_minimod.program
    (fun src ->
      let reference = safe_sink ~level:Ilp_core.Ilp.O0 src in
      List.for_all
        (fun level -> String.equal (safe_sink ~level src) reference)
        Ilp_core.Ilp.all_levels)

let prop_machines_agree =
  QCheck2.Test.make ~count ~name:"random programs: machines agree"
    ~print:(fun s -> s)
    Gen_minimod.program
    (fun src ->
      let reference = safe_sink ~config:Presets.base src in
      List.for_all
        (fun config -> String.equal (safe_sink ~config src) reference)
        [ Presets.superscalar 4; Presets.superpipelined 3; Presets.multititan;
          Presets.cray1 (); Presets.superscalar_with_class_conflicts 3 ])

let prop_unrolling_agrees =
  QCheck2.Test.make ~count ~name:"random programs: unrolling agrees"
    ~print:(fun s -> s)
    Gen_minimod.program
    (fun src ->
      let reference = safe_sink src in
      List.for_all
        (fun factor ->
          List.for_all
            (fun mode ->
              String.equal
                (safe_sink
                   ~unroll:{ Ilp_core.Ilp.mode; factor; bounds = false }
                   src)
                reference)
            [ Ilp_lang.Unroll.Naive; Ilp_lang.Unroll.Careful ])
        [ 2; 3; 4 ])

let prop_bound_unrolling_agrees =
  (* the adversarial corpus for the bound-aware unroller: boundary trip
     counts around every checked factor, down-counting and inclusive
     headers, degenerate directions, index self-assignment, unknown
     bounds — identical results for every factor x mode x bound setting,
     including the full-unroll and peeling paths *)
  QCheck2.Test.make ~count:40
    ~name:"unroll-heavy programs: all unroll specs agree"
    ~print:(fun s -> s)
    Gen_minimod.unroll_heavy_program
    (fun src ->
      let reference = safe_sink src in
      List.for_all
        (fun factor ->
          List.for_all
            (fun mode ->
              List.for_all
                (fun bounds ->
                  String.equal
                    (safe_sink
                       ~unroll:{ Ilp_core.Ilp.mode; factor; bounds }
                       src)
                    reference)
                [ false; true ])
            [ Ilp_lang.Unroll.Naive; Ilp_lang.Unroll.Careful ])
        [ 2; 3; 4; 8 ])

let prop_tiny_temp_pools_agree =
  QCheck2.Test.make ~count:30 ~name:"random programs: tiny temp pools agree"
    ~print:(fun s -> s)
    Gen_minimod.program
    (fun src ->
      let reference = safe_sink src in
      List.for_all
        (fun temps ->
          let config = Config.make "tiny" ~temp_regs:temps in
          String.equal (safe_sink ~config src) reference)
        [ 3; 5 ])

let replay_fingerprint (r : Ilp_sim.Metrics.run) =
  Printf.sprintf "%d/%d/%d/%.12g" r.Ilp_sim.Metrics.dyn_instrs
    r.Ilp_sim.Metrics.minor_cycles r.Ilp_sim.Metrics.stall_cycles
    r.Ilp_sim.Metrics.speedup

let prop_replay_matches_direct =
  QCheck2.Test.make ~count:40
    ~name:"random programs: trace replay = direct timing"
    ~print:(fun s -> s)
    Gen_minimod.program
    (fun src ->
      let agree ?cache_penalty config =
        try
          let level = Ilp_core.Ilp.O4 in
          let pre = Ilp_core.Ilp.compile_unscheduled ~level config src in
          let trace = Ilp_sim.Trace_buffer.capture pre in
          let binary = Ilp_core.Ilp.schedule ~level config pre in
          let cache () =
            Option.map
              (fun penalty ->
                Ilp_sim.Cache.create ~lines:16 ~line_words:4 ~penalty ())
              cache_penalty
          in
          let direct =
            Ilp_sim.Metrics.measure ?cache:(cache ()) config binary
          in
          let replayed =
            Ilp_sim.Metrics.measure_replay ?cache:(cache ()) config trace
              binary
          in
          String.equal (replay_fingerprint direct)
            (replay_fingerprint replayed)
        with Ilp_sim.Exec.Fault _ -> true
      in
      agree Presets.base
      && agree (Presets.superscalar 4)
      && agree (Presets.superpipelined 3)
      && agree (Presets.superscalar_with_class_conflicts 3)
      && agree ~cache_penalty:8 (Presets.cray1 ()))

(* --- scheduler properties over random straight-line blocks --------------- *)

let gen_block : Instr.t list QCheck2.Gen.t =
  let open QCheck2.Gen in
  let reg = map (fun i -> Reg.phys (4 + i)) (int_range 0 11) in
  let gen_instr =
    let* shape = int_range 0 5 in
    match shape with
    | 0 ->
        let* d = reg and* n = int_range 0 99 in
        return (Builder.li d n)
    | 1 | 2 ->
        let* d = reg and* a = reg and* b = reg in
        let* op = oneofl [ Opcode.Add; Opcode.Sub; Opcode.Mul; Opcode.And; Opcode.Xor ] in
        return (Instr.make op ~dst:d ~srcs:[ Instr.Oreg a; Instr.Oreg b ])
    | 3 ->
        let* d = reg and* a = reg and* n = int_range 0 7 in
        return (Instr.make Opcode.Add ~dst:d ~srcs:[ Instr.Oreg a; Instr.Oimm n ])
    | 4 ->
        let* d = reg and* off = int_range (-16) (-1) in
        return
          (Builder.ld d ~base:Reg.sp ~offset:off
             |> fun i ->
             Instr.with_mem i
               (Mem_info.make (Mem_info.Stack_slot ("main", off))
                  (Mem_info.Const off)))
    | _ ->
        let* v = reg and* off = int_range (-16) (-1) in
        return
          (Builder.st ~value:v ~base:Reg.sp ~offset:off ()
             |> fun i ->
             Instr.with_mem i
               (Mem_info.make (Mem_info.Stack_slot ("main", off))
                  (Mem_info.Const off)))
  in
  let* n = int_range 1 25 in
  list_repeat n gen_instr

let exec_block instrs =
  let r = Reg.phys in
  (* initialize the registers the block may read, then run and hash the
     register file and touched memory *)
  let inits = List.init 12 (fun k -> Builder.li (r (4 + k)) (k * 7 + 1)) in
  let p = Builder.program_of_instrs (inits @ instrs) in
  let outcome = Ilp_sim.Exec.run p in
  let regs =
    Array.to_list (Array.sub outcome.Ilp_sim.Exec.regs 0 32)
    |> List.map Ilp_sim.Value.to_string
  in
  let mem_top = 1 lsl 20 in
  let touched =
    List.init 16 (fun k ->
        Ilp_sim.Value.to_string outcome.Ilp_sim.Exec.memory.(mem_top - 8 + k - 16))
  in
  String.concat "," (regs @ touched)

let prop_scheduling_preserves_semantics =
  QCheck2.Test.make ~count:200
    ~name:"list scheduling preserves straight-line semantics"
    ~print:(fun instrs ->
      String.concat "\n" (List.map Instr.to_string instrs))
    gen_block
    (fun instrs ->
      let config = Presets.superscalar 4 in
      let b = Block.make (Label.of_string "b") instrs in
      let scheduled = Ilp_sched.List_sched.schedule_block config b in
      String.equal (exec_block instrs)
        (exec_block scheduled.Block.instrs))

let prop_scheduling_is_permutation =
  QCheck2.Test.make ~count:200 ~name:"list scheduling emits a permutation"
    gen_block
    (fun instrs ->
      let b = Block.make (Label.of_string "b") instrs in
      let scheduled =
        Ilp_sched.List_sched.schedule_block (Presets.cray1 ()) b
      in
      let ids l = List.sort compare (List.map (fun i -> i.Instr.id) l) in
      ids instrs = ids scheduled.Block.instrs)

let prop_available_parallelism_bounds =
  QCheck2.Test.make ~count:200 ~name:"available parallelism within bounds"
    gen_block
    (fun instrs ->
      let p = Ilp_sched.Ddg.available_parallelism instrs in
      let n = float_of_int (List.length instrs) in
      p >= 1.0 /. n && p <= n +. 1e-9)

(* --- dataflow-framework properties ---------------------------------------- *)

(* The hand-rolled postorder liveness solver that predates the generic
   dataflow framework, preserved verbatim as the reference the framework
   instance (Ilp_analysis.Liveness) is pinned to, block for block. *)
module Reference_liveness = struct
  open Ilp_analysis

  let compute (cfg : Cfg_info.t) =
    let n = Cfg_info.n_blocks cfg in
    let use = Array.make n Reg.Set.empty in
    let def = Array.make n Reg.Set.empty in
    Array.iteri
      (fun i b ->
        let u, d = Liveness.block_use_def b in
        use.(i) <- u;
        def.(i) <- d)
      cfg.Cfg_info.blocks;
    let live_in = Array.make n Reg.Set.empty in
    let live_out = Array.make n Reg.Set.empty in
    let changed = ref true in
    while !changed do
      changed := false;
      (* iterate in postorder (reverse of rpo) for fast convergence *)
      for k = Array.length cfg.Cfg_info.rpo - 1 downto 0 do
        let b = cfg.Cfg_info.rpo.(k) in
        let out =
          List.fold_left
            (fun acc s -> Reg.Set.union acc live_in.(s))
            Reg.Set.empty cfg.Cfg_info.succs.(b)
        in
        let inn = Reg.Set.union use.(b) (Reg.Set.diff out def.(b)) in
        if
          not
            (Reg.Set.equal out live_out.(b) && Reg.Set.equal inn live_in.(b))
        then begin
          live_out.(b) <- out;
          live_in.(b) <- inn;
          changed := true
        end
      done
    done;
    (live_in, live_out)
end

let prop_framework_liveness_matches_reference =
  QCheck2.Test.make ~count:200
    ~name:"framework liveness = hand-rolled reference, block for block"
    ~print:(fun s -> s)
    Gen_minimod.program
    (fun src ->
      let p =
        Ilp_lang.Codegen.gen_program (Ilp_lang.Semant.compile_source src)
      in
      List.for_all
        (fun (f : Func.t) ->
          let cfg = Ilp_analysis.Cfg_info.build f in
          let live = Ilp_analysis.Liveness.compute cfg in
          let ref_in, ref_out = Reference_liveness.compute cfg in
          let n = Ilp_analysis.Cfg_info.n_blocks cfg in
          List.for_all
            (fun bi ->
              Reg.Set.equal live.Ilp_analysis.Liveness.live_in.(bi) ref_in.(bi)
              && Reg.Set.equal
                   live.Ilp_analysis.Liveness.live_out.(bi)
                   ref_out.(bi))
            (List.init n Fun.id))
        p.Program.functions)

(* --- structure properties ------------------------------------------------- *)

let gen_region : Mem_info.region QCheck2.Gen.t =
  let open QCheck2.Gen in
  let* shape = int_range 0 6 in
  let* name = oneofl [ "a"; "b" ] in
  let* k = int_range 0 3 in
  match shape with
  | 0 -> return (Mem_info.Global name)
  | 1 -> return (Mem_info.Global_array name)
  | 2 -> return (Mem_info.Global_array_view (name, if k < 2 then "v1" else "v2"))
  | 3 -> return (Mem_info.Stack_slot (name, k))
  | 4 -> return (Mem_info.Stack_array (name, k))
  | 5 -> return (Mem_info.Arg_slot (name, k))
  | _ -> return Mem_info.Unknown

let prop_region_disjoint_symmetric =
  QCheck2.Test.make ~count:500 ~name:"region disjointness is symmetric"
    QCheck2.Gen.(pair gen_region gen_region)
    (fun (r1, r2) ->
      Mem_info.regions_disjoint r1 r2 = Mem_info.regions_disjoint r2 r1)

let prop_region_not_self_disjoint =
  QCheck2.Test.make ~count:200 ~name:"no region is disjoint from itself"
    gen_region
    (fun r -> not (Mem_info.regions_disjoint r r))

let prop_means =
  QCheck2.Test.make ~count:300
    ~name:"harmonic <= geometric <= arithmetic mean"
    QCheck2.Gen.(list_size (int_range 1 10) (float_range 0.1 10.0))
    (fun xs ->
      let h = Ilp_sim.Metrics.harmonic_mean xs in
      let g = Ilp_sim.Metrics.geometric_mean xs in
      let a = Ilp_sim.Metrics.arithmetic_mean xs in
      h <= g +. 1e-9 && g <= a +. 1e-9)

let prop_cache_miss_rate_bounds =
  QCheck2.Test.make ~count:200 ~name:"cache miss rate in [0,1]"
    QCheck2.Gen.(list_size (int_range 1 100) (int_range 0 4096))
    (fun addrs ->
      let cache = Ilp_sim.Cache.create ~lines:16 ~line_words:4 ~penalty:5 () in
      List.iter (fun a -> ignore (Ilp_sim.Cache.access cache a)) addrs;
      let r = Ilp_sim.Cache.miss_rate cache in
      r >= 0.0 && r <= 1.0
      && Ilp_sim.Cache.accesses cache = List.length addrs)

let prop_repeated_access_hits =
  QCheck2.Test.make ~count:200 ~name:"immediate re-access always hits"
    QCheck2.Gen.(int_range 0 100000)
    (fun addr ->
      let cache = Ilp_sim.Cache.create ~lines:16 ~line_words:4 ~penalty:5 () in
      ignore (Ilp_sim.Cache.access cache addr);
      Ilp_sim.Cache.access cache addr)

let tests =
  List.map QCheck_alcotest.to_alcotest
    [ prop_levels_agree; prop_machines_agree; prop_unrolling_agrees;
      prop_bound_unrolling_agrees;
      prop_tiny_temp_pools_agree; prop_replay_matches_direct;
      prop_scheduling_preserves_semantics;
      prop_scheduling_is_permutation; prop_available_parallelism_bounds;
      prop_framework_liveness_matches_reference;
      prop_region_disjoint_symmetric; prop_region_not_self_disjoint;
      prop_means; prop_cache_miss_rate_bounds; prop_repeated_access_hits ]
